//===- solver/path_condition.cpp ------------------------------------------===//

#include "solver/path_condition.h"

#include <algorithm>
#include <cassert>

using namespace gillian;

namespace {

/// splitmix64 finalizer: decorrelates per-conjunct hashes so the
/// commutative XOR combine below stays collision-resistant (a plain XOR of
/// raw hashes would cancel structured bit patterns).
uint64_t mixConjunct(uint64_t H) {
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ull;
  H = (H ^ (H >> 27)) * 0x94D049BB133111EBull;
  return H ^ (H >> 31);
}

} // namespace

void PathCondition::add(const Expr &E) {
  if (TriviallyFalse || !E || E.isTrue())
    return;
  if (E.isFalse()) {
    TriviallyFalse = true;
    Conjuncts.clear();
    Hash = 0;
    return;
  }
  if (E.kind() == ExprKind::BinOp && E.binOpKind() == BinOpKind::And) {
    add(E.child(0));
    add(E.child(1));
    return;
  }
  // Canonical insertion: binary-search the sorted position; equal element
  // already present means the conjunct is a duplicate.
  auto It =
      std::lower_bound(Conjuncts.begin(), Conjuncts.end(), E, ExprOrdering());
  if (It != Conjuncts.end() && *It == E)
    return;
  Conjuncts.insert(It, E);
  // XOR of mixed hashes commutes, so the hash is insertion-order- (and
  // position-) independent; dedup above rules out self-cancellation.
  Hash ^= mixConjunct(E.hash());
}

void PathCondition::addAll(const PathCondition &Other) {
  if (Other.TriviallyFalse) {
    TriviallyFalse = true;
    Conjuncts.clear();
    Hash = 0;
    return;
  }
  for (const Expr &E : Other.Conjuncts)
    add(E);
}

PathCondition PathCondition::fromSortedConjuncts(std::vector<Expr> Sorted) {
  assert(std::is_sorted(Sorted.begin(), Sorted.end(), ExprOrdering()) &&
         "slice conjuncts must already be canonical");
  PathCondition P;
  P.Conjuncts = std::move(Sorted);
  for (const Expr &E : P.Conjuncts)
    P.Hash ^= mixConjunct(E.hash());
  return P;
}

Expr PathCondition::asExpr() const {
  if (TriviallyFalse)
    return Expr::boolE(false);
  Expr Out = Expr::boolE(true);
  bool First = true;
  for (const Expr &E : Conjuncts) {
    Out = First ? E : Expr::andE(Out, E);
    First = false;
  }
  return Out;
}

bool PathCondition::contains(const PathCondition &Other) const {
  if (TriviallyFalse)
    return true; // false entails everything
  if (Other.TriviallyFalse)
    return false;
  // Both conjunct lists are sorted under ExprOrdering (whose equivalence
  // is structural equality), so containment is a single merge-walk.
  return std::includes(Conjuncts.begin(), Conjuncts.end(),
                       Other.Conjuncts.begin(), Other.Conjuncts.end(),
                       ExprOrdering());
}

std::string PathCondition::toString() const {
  if (TriviallyFalse)
    return "false";
  if (Conjuncts.empty())
    return "true";
  std::string Out;
  for (size_t I = 0, N = Conjuncts.size(); I != N; ++I) {
    if (I)
      Out += " /\\ ";
    Out += Conjuncts[I].toString();
  }
  return Out;
}

void PathCondition::collectLVars(std::set<InternedString> &Out) const {
  for (const Expr &E : Conjuncts)
    E.collectLVars(Out);
}
