//===- linear/suites.cpp --------------------------------------------------===//

#include "linear/suites.h"

using namespace gillian::linear;

namespace {

// ---------- basic: concrete grow/size/load/store -------------------------
constexpr std::string_view Basic = R"gil(
proc test_grow_returns_old_size(args) {
  0: a := @grow([4]);
  1: b := @grow([2]);
  2: ifgoto (a == 0) 4;
  3: fail ["grow must return the old size", a];
  4: ifgoto (b == 4) 6;
  5: fail ["second grow sees the grown size", b];
  6: s := @msize([]);
  7: ifgoto (s == 6) 9;
  8: fail ["size after two grows", s];
  9: return true;
}
proc test_zero_init(args) {
  0: r := @grow([8]);
  1: v := @load([3]);
  2: ifgoto (v == 0) 4;
  3: fail ["linear memory is zero-initialised", v];
  4: return true;
}
proc test_concrete_roundtrip(args) {
  0: r := @grow([4]);
  1: t := @store([2, 42]);
  2: v := @load([2]);
  3: ifgoto (v == 42) 5;
  4: fail ["store/load roundtrip", v];
  5: w := @load([1]);
  6: ifgoto (w == 0) 8;
  7: fail ["neighbour cell must stay zero", w];
  8: return true;
}
)gil";

// ---------- symbolic: symbolic offsets through the alias loop ------------
constexpr std::string_view Symbolic = R"gil(
proc test_symbolic_store_load(args) {
  0: r := @grow([8]);
  1: i := isym(0);
  2: ifgoto (typeof(i) == ^Int) 4;
  3: vanish;
  4: ifgoto (0 <= i) 6;
  5: vanish;
  6: ifgoto (i < 8) 8;
  7: vanish;
  8: t := @store([i, 42]);
  9: v := @load([i]);
  10: ifgoto (v == 42) 12;
  11: fail ["load after store at the same symbolic offset", v];
  12: return true;
}
proc test_symbolic_alias(args) {
  0: r := @grow([4]);
  1: i := isym(0);
  2: ifgoto (typeof(i) == ^Int) 4;
  3: vanish;
  4: j := isym(1);
  5: ifgoto (typeof(j) == ^Int) 7;
  6: vanish;
  7: ifgoto (0 <= i) 9;
  8: vanish;
  9: ifgoto (i < 4) 11;
  10: vanish;
  11: ifgoto (0 <= j) 13;
  12: vanish;
  13: ifgoto (j < 4) 15;
  14: vanish;
  15: t := @store([i, 1]);
  16: u := @store([j, 2]);
  17: v := @load([i]);
  18: ifgoto (i == j) 22;
  19: ifgoto (v == 1) 21;
  20: fail ["distinct offsets must not alias", v];
  21: return true;
  22: ifgoto (v == 2) 24;
  23: fail ["aliased store must shadow the earlier one", v];
  24: return true;
}
proc test_unwritten_symbolic_reads_zero(args) {
  0: r := @grow([4]);
  1: i := isym(0);
  2: ifgoto (typeof(i) == ^Int) 4;
  3: vanish;
  4: ifgoto (0 <= i) 6;
  5: vanish;
  6: ifgoto (i < 4) 8;
  7: vanish;
  8: v := @load([i]);
  9: ifgoto (v == 0) 11;
  10: fail ["unwritten memory must read 0", v];
  11: return true;
}
)gil";

// ---------- bounds: edge offsets and grow interaction ---------------------
constexpr std::string_view Bounds = R"gil(
proc test_last_cell(args) {
  0: r := @grow([4]);
  1: t := @store([3, 7]);
  2: v := @load([3]);
  3: ifgoto (v == 7) 5;
  4: fail ["last cell must be addressable", v];
  5: return true;
}
proc test_grow_preserves_contents(args) {
  0: r := @grow([2]);
  1: t := @store([1, 5]);
  2: g := @grow([2]);
  3: v := @load([1]);
  4: ifgoto (v == 5) 6;
  5: fail ["grow must preserve contents", v];
  6: w := @load([3]);
  7: ifgoto (w == 0) 9;
  8: fail ["grown region must read 0", w];
  9: return true;
}
)gil";

// ---------- seeded: faults the engine must re-detect ----------------------
constexpr std::string_view Seeded = R"gil(
proc test_off_by_one_load(args) {
  0: r := @grow([4]);
  1: i := isym(0);
  2: ifgoto (typeof(i) == ^Int) 4;
  3: vanish;
  4: ifgoto (0 <= i) 6;
  5: vanish;
  6: ifgoto (i <= 4) 8;
  7: vanish;
  8: v := @load([i]);
  9: return v;
}
proc test_negative_grow(args) {
  0: r := @grow([-1]);
  1: return r;
}
)gil";

} // namespace

const std::vector<LinearSuite> &gillian::linear::linearSuites() {
  static const std::vector<LinearSuite> Suites = {
      {"basic", Basic},
      {"symbolic", Symbolic},
      {"bounds", Bounds},
  };
  return Suites;
}

const std::vector<LinearSuite> &gillian::linear::linearSeededSuites() {
  static const std::vector<LinearSuite> Suites = {
      {"seeded", Seeded},
  };
  return Suites;
}
