//===- obs/journal/journal_io.h - Journal binary file format ---*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary-framed on-disk journal format (DESIGN.md §4i):
///
///   "GJL1"                       4-byte magic
///   varint version (= 1)
///   varint string-count          string table, first-seen order over the
///   { varint len, bytes } ...      canonical event stream; index 0 = ""
///   varint event-count
///   events ...                   per event: 4 raw bytes Kind A B C, then
///                                varints Path Aux WallNs Step Proc Cmd X
///                                (Proc — and X of Action events — are
///                                string-table indices)
///   "GJND"                       4-byte end frame (truncation guard)
///
/// Varints are LEB128 (7 bits per byte, minimal length), which together
/// with the string table keeps Table-1-suite journals at a few MB. The
/// writer is canonical — serialize(parse(bytes)) == bytes — which the
/// round-trip test pins down.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_JOURNAL_JOURNAL_IO_H
#define GILLIAN_OBS_JOURNAL_JOURNAL_IO_H

#include "obs/journal/journal.h"

#include <string>
#include <string_view>
#include <vector>

namespace gillian::obs::journal {

/// A journal decoupled from the process's interner: Strings is the table
/// (index 0 is always ""), and event Proc / Action-X fields are table
/// indices. This is what files store and what the analysis layer consumes.
struct JournalData {
  std::vector<std::string> Strings;
  std::vector<Event> Events;

  const std::string &str(uint32_t Idx) const {
    static const std::string Empty;
    return Idx < Strings.size() ? Strings[Idx] : Empty;
  }
};

/// Snapshots the live journal and rewrites interned-string ids into a
/// fresh first-seen-order string table.
JournalData capture();

/// Canonical serialization of \p D (see the file-format comment above).
std::string serializeJournal(const JournalData &D);

/// Parses \p Bytes; returns false (with \p Err set) on bad magic, bad
/// version, truncation, varint overflow, or out-of-range string-table
/// indices. On success the re-serialization of \p Out is byte-identical
/// to the writer's output for the same data.
bool parseJournal(std::string_view Bytes, JournalData &Out, std::string &Err);

/// Serializes and writes atomically (temp file + rename, like saveCache).
/// Bumps journal bytes/files counters; \p BytesOut gets the file size.
bool writeJournalFile(const JournalData &D, const std::string &Path,
                      uint64_t *BytesOut, std::string *Err);

/// Reads and parses \p Path.
bool readJournalFile(const std::string &Path, JournalData &Out,
                     std::string &Err);

} // namespace gillian::obs::journal

#endif // GILLIAN_OBS_JOURNAL_JOURNAL_IO_H
