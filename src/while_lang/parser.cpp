//===- while_lang/parser.cpp ----------------------------------------------===//

#include "while_lang/parser.h"

#include "gil/parser.h"
#include "support/diagnostics.h"
#include "support/lexer.h"

using namespace gillian;
using namespace gillian::whilelang;

namespace {

std::optional<GilType> freshType(std::string_view Name) {
  if (Name == "fresh_int") return GilType::Int;
  if (Name == "fresh_num") return GilType::Num;
  if (Name == "fresh_str") return GilType::Str;
  if (Name == "fresh_bool") return GilType::Bool;
  return std::nullopt;
}

class WhileParser {
public:
  explicit WhileParser(std::string_view Src) : Toks(tokenize(Src)) {}

  Result<Program> run() {
    Program P;
    while (!cur().is(TokenKind::Eof)) {
      Result<FuncDecl> F = parseFunction();
      if (!F)
        return Err(F.error());
      P.Funcs.push_back(F.take());
    }
    return P;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t A = 1) const {
    size_t I = Pos + A;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void bump() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  Err here(const std::string &Msg) { return Err(diagAtToken(cur(), Msg)); }

  bool eatPunct(std::string_view P) {
    if (!cur().isPunct(P))
      return false;
    bump();
    return true;
  }

  Result<Expr> parseExpr() {
    Result<Expr> E = parseExprAt(Toks, Pos);
    return E;
  }

  Result<FuncDecl> parseFunction() {
    if (!cur().isIdent("function"))
      return here("expected 'function'");
    bump();
    if (!cur().is(TokenKind::Ident))
      return here("expected function name");
    FuncDecl F;
    F.Name = InternedString::get(cur().Text);
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    if (!cur().isPunct(")")) {
      while (true) {
        if (!cur().is(TokenKind::Ident))
          return here("expected parameter name");
        F.Params.push_back(InternedString::get(cur().Text));
        bump();
        if (eatPunct(","))
          continue;
        break;
      }
    }
    if (!eatPunct(")"))
      return here("expected ')'");
    Result<std::vector<Stmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    F.Body = Body.take();
    return F;
  }

  Result<std::vector<Stmt>> parseBlock() {
    if (!eatPunct("{"))
      return here("expected '{'");
    std::vector<Stmt> Out;
    while (!cur().isPunct("}")) {
      if (cur().is(TokenKind::Eof))
        return here("unterminated block");
      Result<Stmt> S = parseStmt();
      if (!S)
        return Err(S.error());
      Out.push_back(S.take());
    }
    bump(); // '}'
    return Out;
  }

  Result<Stmt> parseStmt() {
    // Keyword statements.
    if (cur().isIdent("if"))
      return parseIf();
    if (cur().isIdent("while"))
      return parseWhileLoop();
    if (cur().isIdent("return"))
      return parseSimpleExprStmt(StmtKind::Return);
    if (cur().isIdent("assume"))
      return parseSimpleExprStmt(StmtKind::Assume);
    if (cur().isIdent("assert"))
      return parseSimpleExprStmt(StmtKind::Assert);
    if (cur().isIdent("dispose"))
      return parseSimpleExprStmt(StmtKind::Dispose);

    if (!cur().is(TokenKind::Ident))
      return here("expected a statement");

    // `x := ...` or `x.p := ...`.
    InternedString X = InternedString::get(cur().Text);
    if (peek().isPunct(".")) {
      // e.p := e' with a variable base.
      Stmt S;
      S.Kind = StmtKind::Mutate;
      S.E = Expr::pvar(X);
      bump();
      bump();
      if (!cur().is(TokenKind::Ident) && !cur().is(TokenKind::String))
        return here("expected property name");
      S.Prop = InternedString::get(cur().Text);
      bump();
      if (!eatPunct(":="))
        return here("expected ':='");
      Result<Expr> V = parseExpr();
      if (!V)
        return Err(V.error());
      S.E2 = V.take();
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }

    bump();
    if (!eatPunct(":="))
      return here("expected ':='");
    return parseAssignRhs(X);
  }

  Result<Stmt> parseAssignRhs(InternedString X) {
    Stmt S;
    S.X = X;

    // x := { p: e, ... }   — object creation.
    if (cur().isPunct("{")) {
      bump();
      S.Kind = StmtKind::New;
      if (!cur().isPunct("}")) {
        while (true) {
          if (!cur().is(TokenKind::Ident) && !cur().is(TokenKind::String))
            return here("expected property name");
          InternedString P = InternedString::get(cur().Text);
          bump();
          if (!eatPunct(":"))
            return here("expected ':'");
          Result<Expr> V = parseExpr();
          if (!V)
            return Err(V.error());
          S.Props.emplace_back(P, V.take());
          if (eatPunct(","))
            continue;
          break;
        }
      }
      if (!eatPunct("}"))
        return here("expected '}'");
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }

    // x := fresh_T() / fresh_val() — symbolic inputs.
    if (cur().is(TokenKind::Ident) && peek().isPunct("(") &&
        (freshType(cur().Text) || cur().Text == "fresh_val")) {
      S.Kind = StmtKind::Fresh;
      S.FreshType = freshType(cur().Text);
      bump();
      bump();
      if (!eatPunct(")"))
        return here("expected ')'");
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }

    // x := f(e1, ..., en) — static call (identifier followed by '(').
    if (cur().is(TokenKind::Ident) && peek().isPunct("(") &&
        !isExprKeyword(cur().Text)) {
      S.Kind = StmtKind::Call;
      S.Callee = InternedString::get(cur().Text);
      bump();
      bump();
      if (!cur().isPunct(")")) {
        while (true) {
          Result<Expr> A = parseExpr();
          if (!A)
            return Err(A.error());
          S.Args.push_back(A.take());
          if (eatPunct(","))
            continue;
          break;
        }
      }
      if (!eatPunct(")"))
        return here("expected ')'");
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }

    // x := e.p — property lookup (identifier base followed by '.').
    if (cur().is(TokenKind::Ident) && peek().isPunct(".")) {
      S.Kind = StmtKind::Lookup;
      S.E = Expr::pvar(InternedString::get(cur().Text));
      bump();
      bump();
      if (!cur().is(TokenKind::Ident) && !cur().is(TokenKind::String))
        return here("expected property name");
      S.Prop = InternedString::get(cur().Text);
      bump();
      if (!eatPunct(";"))
        return here("expected ';'");
      return S;
    }

    // Otherwise a plain expression assignment.
    S.Kind = StmtKind::Assign;
    Result<Expr> E = parseExpr();
    if (!E)
      return Err(E.error());
    S.E = E.take();
    if (!eatPunct(";"))
      return here("expected ';'");
    return S;
  }

  /// Identifiers that start GIL expression keyword operators and must not
  /// be mistaken for function calls.
  static bool isExprKeyword(const std::string &S) {
    return S == "typeof" || S == "len" || S == "slen" || S == "hd" ||
           S == "tl" || S == "to_num" || S == "to_int" || S == "num_to_str" ||
           S == "str_to_num" || S == "l_nth" || S == "s_nth";
  }

  Result<Stmt> parseIf() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<Expr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    Stmt S;
    S.Kind = StmtKind::If;
    S.E = C.take();
    Result<std::vector<Stmt>> Then = parseBlock();
    if (!Then)
      return Err(Then.error());
    S.Then = Then.take();
    if (cur().isIdent("else")) {
      bump();
      Result<std::vector<Stmt>> Else = parseBlock();
      if (!Else)
        return Err(Else.error());
      S.Else = Else.take();
    }
    return S;
  }

  Result<Stmt> parseWhileLoop() {
    bump();
    if (!eatPunct("("))
      return here("expected '('");
    Result<Expr> C = parseExpr();
    if (!C)
      return Err(C.error());
    if (!eatPunct(")"))
      return here("expected ')'");
    Stmt S;
    S.Kind = StmtKind::While;
    S.E = C.take();
    Result<std::vector<Stmt>> Body = parseBlock();
    if (!Body)
      return Err(Body.error());
    S.Then = Body.take();
    return S;
  }

  Result<Stmt> parseSimpleExprStmt(StmtKind K) {
    bump();
    Stmt S;
    S.Kind = K;
    // Parentheses are part of the expression grammar, so `assume (e);`
    // and `return x;` both parse uniformly.
    Result<Expr> E = parseExpr();
    if (!E)
      return Err(E.error());
    S.E = E.take();
    if (!eatPunct(";"))
      return here("expected ';'");
    return S;
  }
};

} // namespace

Result<Program> gillian::whilelang::parseWhile(std::string_view Source) {
  return WhileParser(Source).run();
}
