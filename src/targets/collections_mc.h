//===- targets/collections_mc.h - Collections-C-style MC library -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4.2 evaluation workload: a Collections-C-style data-structure
/// library written in MC, with symbolic test suites mirroring the Table 2
/// rows (array, deque, list, pqueue, queue, rbuf, slist, stack, treetbl,
/// treeset). Elements are i64 payloads (Collections-C stores void*).
///
/// collectionsBuggyLibrary() seeds analogues of four of the five §4.2
/// findings:
///   1. an off-by-one buffer overflow in the dynamic array's bounds check;
///   2. undefined behaviour from relational pointer comparison across
///      objects in the list;
///   3. a freed-pointer comparison in deque clearing;
///   4. over-allocation in the ring buffer (benign for the operations,
///      caught by a capacity assertion).
/// Finding 5 (the weak string-hash) concerned the hashtable, which the
/// paper's own solver could not test either — we follow it in omitting
/// hashtable/hashset (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_TARGETS_COLLECTIONS_MC_H
#define GILLIAN_TARGETS_COLLECTIONS_MC_H

#include <string>
#include <string_view>
#include <vector>

namespace gillian::targets {

std::string_view collectionsLibrary();
std::string_view collectionsBuggyLibrary();

struct CollectionsSuite {
  std::string_view Name;
  std::string_view Source;
};

/// One suite per Table 2 row.
const std::vector<CollectionsSuite> &collectionsSuites();

} // namespace gillian::targets

#endif // GILLIAN_TARGETS_COLLECTIONS_MC_H
