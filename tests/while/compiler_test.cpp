//===- tests/while/compiler_test.cpp --------------------------------------===//
//
// Golden tests for the Fig. 2 compilation rules plus concrete-execution
// checks that the compiled GIL behaves like the source program.
//
//===----------------------------------------------------------------------===//

#include "while_lang/compiler.h"

#include "engine/test_runner.h"
#include "while_lang/memory.h"
#include "gil/parser.h"
#include "while_lang/parser.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

Prog compile(std::string_view Src) {
  Result<Prog> P = compileWhileSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  return P.ok() ? P.take() : Prog();
}

Value runMain(std::string_view Src) {
  Prog P = compile(Src);
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<WhileCMem>(P, "main", Opts, Stats);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  if (!R.ok())
    return Value();
  EXPECT_EQ(R->Kind, OutcomeKind::Return)
      << "error value: " << R->Val.toString();
  return R->Val;
}

OutcomeKind runMainOutcome(std::string_view Src) {
  Prog P = compile(Src);
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<WhileCMem>(P, "main", Opts, Stats);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R->Kind : OutcomeKind::Error;
}

} // namespace

TEST(WhileCompiler, AssumeCompilesPerFig2) {
  // T(assume e) = pc: ifgoto e (pc+2); pc+1: vanish.
  Prog P = compile("function main() { assume (true); return 1; }");
  const Proc *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  ASSERT_GE(Main->Body.size(), 3u);
  EXPECT_EQ(Main->Body[0].Kind, CmdKind::IfGoto);
  EXPECT_EQ(Main->Body[0].Target, 2u);
  EXPECT_EQ(Main->Body[1].Kind, CmdKind::Vanish);
}

TEST(WhileCompiler, AssertCompilesPerFig2) {
  // T(assert e) = pc: ifgoto e (pc+2); pc+1: fail.
  Prog P = compile("function main() { assert (true); return 1; }");
  const Proc *Main = P.find("main");
  EXPECT_EQ(Main->Body[0].Kind, CmdKind::IfGoto);
  EXPECT_EQ(Main->Body[0].Target, 2u);
  EXPECT_EQ(Main->Body[1].Kind, CmdKind::Fail);
}

TEST(WhileCompiler, NewCompilesToUSymPlusMutates) {
  // T(x := {p: e, ...}) = pc: x := uSym_j; pc+i: mutate([x, p_i, e_i]).
  Prog P = compile("function main() { o := { a: 1, b: 2 }; return 0; }");
  const Proc *Main = P.find("main");
  EXPECT_EQ(Main->Body[0].Kind, CmdKind::USym);
  EXPECT_EQ(Main->Body[1].Kind, CmdKind::Action);
  EXPECT_EQ(Main->Body[1].Action, actMutate());
  EXPECT_EQ(Main->Body[2].Kind, CmdKind::Action);
  EXPECT_EQ(Main->Body[2].Action, actMutate());
}

TEST(WhileCompiler, LookupCompilesToAction) {
  Prog P = compile("function main() { o := { a: 1 }; x := o.a; return x; }");
  const Proc *Main = P.find("main");
  const Cmd &C = Main->Body[2];
  EXPECT_EQ(C.Kind, CmdKind::Action);
  EXPECT_EQ(C.Action, actLookup());
}

TEST(WhileCompiler, FreshSitesAreDistinct) {
  Prog P = compile(
      "function main() { a := {}; b := {}; x := fresh_int(); return 0; }");
  const Proc *Main = P.find("main");
  EXPECT_EQ(Main->Body[0].Kind, CmdKind::USym);
  EXPECT_EQ(Main->Body[1].Kind, CmdKind::USym);
  EXPECT_EQ(Main->Body[2].Kind, CmdKind::ISym);
  EXPECT_NE(Main->Body[0].Site, Main->Body[1].Site);
  EXPECT_NE(Main->Body[1].Site, Main->Body[2].Site);
}

// --- Execution-level goldens (control flow correctness) -------------------

TEST(WhileCompiler, StraightLineExecution) {
  EXPECT_EQ(runMain("function main() { x := 2; y := x * 3; return y + 1; }"),
            Value::intV(7));
}

TEST(WhileCompiler, IfElseBothBranches) {
  const char *Tpl = R"(
    function main() {
      x := %d;
      if (x < 10) { r := "low"; } else { r := "high"; }
      return r;
    })";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), Tpl, 5);
  EXPECT_EQ(runMain(Buf), Value::strV("low"));
  std::snprintf(Buf, sizeof(Buf), Tpl, 15);
  EXPECT_EQ(runMain(Buf), Value::strV("high"));
}

TEST(WhileCompiler, IfWithoutElse) {
  EXPECT_EQ(runMain("function main() { r := 1; if (false) { r := 2; } "
                    "return r; }"),
            Value::intV(1));
}

TEST(WhileCompiler, WhileLoopComputesSum) {
  EXPECT_EQ(runMain(R"(
    function main() {
      i := 0; s := 0;
      while (i < 5) { s := s + i; i := i + 1; }
      return s;
    })"),
            Value::intV(10));
}

TEST(WhileCompiler, NestedLoops) {
  EXPECT_EQ(runMain(R"(
    function main() {
      i := 0; c := 0;
      while (i < 3) {
        j := 0;
        while (j < 4) { c := c + 1; j := j + 1; }
        i := i + 1;
      }
      return c;
    })"),
            Value::intV(12));
}

TEST(WhileCompiler, FunctionCallsWithMultipleArgs) {
  EXPECT_EQ(runMain(R"(
    function main() { r := addmul(2, 3, 4); return r; }
    function addmul(a, b, c) { return a + b * c; }
  )"),
            Value::intV(14));
}

TEST(WhileCompiler, RecursionFibonacci) {
  EXPECT_EQ(runMain(R"(
    function main() { r := fib(10); return r; }
    function fib(n) {
      if (n < 2) { return n; }
      a := fib(n - 1);
      b := fib(n - 2);
      return a + b;
    })"),
            Value::intV(55));
}

TEST(WhileCompiler, ObjectsLookupMutateDispose) {
  EXPECT_EQ(runMain(R"(
    function main() {
      o := { x: 1, y: 2 };
      o.x := 10;
      a := o.x;
      b := o.y;
      dispose o;
      return a + b;
    })"),
            Value::intV(12));
}

TEST(WhileCompiler, UseAfterDisposeIsMemoryFault) {
  EXPECT_EQ(runMainOutcome(R"(
    function main() {
      o := { x: 1 };
      dispose o;
      a := o.x;
      return a;
    })"),
            OutcomeKind::Error);
}

TEST(WhileCompiler, MissingPropertyIsMemoryFault) {
  EXPECT_EQ(runMainOutcome(
                "function main() { o := { x: 1 }; a := o.nope; return a; }"),
            OutcomeKind::Error);
}

TEST(WhileCompiler, AssertFailureIsError) {
  EXPECT_EQ(runMainOutcome("function main() { assert (1 == 2); return 0; }"),
            OutcomeKind::Error);
}

TEST(WhileCompiler, ImplicitReturnZero) {
  EXPECT_EQ(runMain("function main() { x := 5; }"), Value::intV(0));
}

TEST(WhileCompiler, AliasedObjectsShareMutations) {
  EXPECT_EQ(runMain(R"(
    function main() {
      o := { v: 1 };
      p := o;
      p.v := 42;
      r := o.v;
      return r;
    })"),
            Value::intV(42));
}

TEST(WhileCompiler, ParseErrorsAreReported) {
  EXPECT_FALSE(compileWhileSource("function main() { x := ; }").ok());
  EXPECT_FALSE(compileWhileSource("function main() { if x { } }").ok());
  EXPECT_FALSE(compileWhileSource("garbage").ok());
}

TEST(WhileCompiler, CompiledGilRoundTripsThroughTextualFormat) {
  // Compiled programs print to textual GIL and reparse to an equivalent
  // program (print -> parse -> print is a fixpoint), and the reparsed
  // program executes identically.
  const char *Src = R"(
    function main() {
      o := { a: 1, b: "two" };
      s := 0;
      i := 0;
      while (i < 3) { s := s + i; i := i + 1; }
      x := o.a;
      r := helper(s, x);
      assert (r == 4);
      return r;
    }
    function helper(a, b) { return a / 2 * b + 1; })";
  Prog P1 = compile(Src);
  std::string Printed = P1.toString();
  Result<Prog> P2 = parseGilProg(Printed);
  ASSERT_TRUE(P2.ok()) << P2.error() << "\n" << Printed;
  EXPECT_EQ(P2->toString(), Printed) << "print/parse must be a fixpoint";

  EngineOptions Opts;
  ExecStats S1, S2;
  auto R1 = runConcrete<WhileCMem>(P1, "main", Opts, S1);
  auto R2 = runConcrete<WhileCMem>(*P2, "main", Opts, S2);
  ASSERT_TRUE(R1.ok() && R2.ok());
  EXPECT_EQ(R1->Kind, R2->Kind);
  EXPECT_EQ(R1->Val, R2->Val);
  EXPECT_EQ(S1.CmdsExecuted, S2.CmdsExecuted);
}
