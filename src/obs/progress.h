//===- obs/progress.h - Live exploration progress signals ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide progress signals the live introspection layer
/// (DESIGN.md §4d) samples: how many paths have finished, how many solver
/// queries have been answered, and how deep each worker's deque currently
/// is. They are deliberately *global* where ExecStats/SolverStats are
/// per-run instances — a /progress scrape or a heartbeat tick must see the
/// whole process without knowing which Interpreter or Solver is live.
///
/// Cost: one relaxed atomic add per finished path / solver query and one
/// relaxed store per deque mutation — all rare next to the work they
/// account (a path executes many commands; a query runs simplifier +
/// cache + possibly Z3), so the signals stay on unconditionally.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_PROGRESS_H
#define GILLIAN_OBS_PROGRESS_H

#include "obs/counters.h"

#include <array>
#include <atomic>
#include <cstdint>

namespace gillian::obs {

/// Monotone progress counters (all outcomes count as "finished": a path
/// that errored or hit a budget still finished exploring).
struct ProgressCounters : CounterSet<ProgressCounters> {
  Counter PathsFinished{*this, "paths_finished", "progress"};
  Counter SolverQueries{*this, "solver_queries", "progress"};
  /// Symbolic tests started (runSymbolicTest entries).
  Counter TestsStarted{*this, "tests_started", "progress"};
};

/// The process-wide instance the interpreter and solver record into.
inline ProgressCounters &progressCounters() {
  static ProgressCounters C;
  return C;
}

/// Sampled per-worker deque depths of the (single) live exploration pool —
/// a dynamically-sized Gauge family, so it lives outside the static
/// CounterSet schemas. Workers beyond MaxWorkers are untracked (depth
/// writes are dropped); the scheduler supports more, the dashboard does
/// not need them individually.
class WorkerDepthGauges {
public:
  static constexpr size_t MaxWorkers = 64;

  static WorkerDepthGauges &instance();

  /// Called by the pool constructor: widens the tracked range to \p N
  /// workers (clamped to MaxWorkers) and zeroes the newly-visible slots.
  void configure(uint32_t N) {
    if (N > MaxWorkers)
      N = MaxWorkers;
    for (uint32_t I = 0; I < N; ++I)
      Depth[I].set(0);
    Tracked.store(N, std::memory_order_relaxed);
  }

  void set(size_t Worker, uint64_t QueueDepth) {
    if (Worker < MaxWorkers)
      Depth[Worker].set(QueueDepth);
  }

  uint32_t tracked() const { return Tracked.load(std::memory_order_relaxed); }
  uint64_t depth(size_t Worker) const {
    return Worker < MaxWorkers ? Depth[Worker].load() : 0;
  }

private:
  std::array<Gauge, MaxWorkers> Depth{}; ///< standalone (unregistered) gauges
  std::atomic<uint32_t> Tracked{0};
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_PROGRESS_H
