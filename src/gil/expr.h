//===- gil/expr.h - GIL / logical expressions (§2.1, §2.3) -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expressions shared between GIL programs and the symbolic machinery.
///
/// The paper distinguishes program expressions (e ∈ E: values, program
/// variables, operators) from logical expressions (ê ∈ Ê: values, logical
/// variables, operators). We use one immutable expression type covering
/// both: program expressions never contain LVar nodes, and symbolic-store
/// substitution maps PVar nodes away, yielding pure logical expressions.
/// Nodes are shared (shallow copies are O(1)) and carry precomputed hashes
/// so the solver layers can memoise on expressions cheaply.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_GIL_EXPR_H
#define GILLIAN_GIL_EXPR_H

#include "gil/ops.h"
#include "gil/value.h"
#include "support/result.h"

#include <functional>
#include <memory>
#include <set>
#include <vector>

namespace gillian {

enum class ExprKind : uint8_t {
  Lit,   ///< literal value
  PVar,  ///< program variable x ∈ X
  LVar,  ///< logical variable x̂ ∈ X̂ (spelled with a leading '#')
  UnOp,  ///< ⊖ e
  BinOp, ///< e1 ⊕ e2
  List,  ///< [e1, ..., en] (n-ary list construction)
};

/// An immutable, shared expression. Copying is O(1).
class Expr {
  struct Node;

public:
  /// Null expression; only valid as a placeholder. All factories produce
  /// non-null expressions and all accessors require one.
  Expr() = default;

  static Expr lit(Value V);
  static Expr intE(int64_t I) { return lit(Value::intV(I)); }
  static Expr numE(double D) { return lit(Value::numV(D)); }
  static Expr strE(std::string_view S) { return lit(Value::strV(S)); }
  static Expr boolE(bool B) { return lit(Value::boolV(B)); }
  static Expr pvar(InternedString X);
  static Expr pvar(std::string_view X) { return pvar(InternedString::get(X)); }
  static Expr lvar(InternedString X);
  static Expr lvar(std::string_view X) { return lvar(InternedString::get(X)); }
  static Expr unOp(UnOpKind Op, Expr E);
  static Expr binOp(BinOpKind Op, Expr A, Expr B);
  static Expr list(std::vector<Expr> Elems);

  // Frequent combinators.
  static Expr eq(Expr A, Expr B) { return binOp(BinOpKind::Eq, A, B); }
  static Expr lt(Expr A, Expr B) { return binOp(BinOpKind::Lt, A, B); }
  static Expr le(Expr A, Expr B) { return binOp(BinOpKind::Le, A, B); }
  static Expr add(Expr A, Expr B) { return binOp(BinOpKind::Add, A, B); }
  static Expr sub(Expr A, Expr B) { return binOp(BinOpKind::Sub, A, B); }
  static Expr andE(Expr A, Expr B) { return binOp(BinOpKind::And, A, B); }
  static Expr orE(Expr A, Expr B) { return binOp(BinOpKind::Or, A, B); }
  static Expr notE(Expr E) { return unOp(UnOpKind::Not, E); }
  static Expr typeOf(Expr E) { return unOp(UnOpKind::TypeOf, E); }
  /// typeof(E) == T, the standard typing constraint.
  static Expr hasType(Expr E, GilType T) {
    return eq(typeOf(E), lit(Value::typeV(T)));
  }

  bool isNull() const { return !N; }
  explicit operator bool() const { return N != nullptr; }

  ExprKind kind() const;
  const Value &litValue() const;
  InternedString varName() const; ///< PVar or LVar name
  UnOpKind unOpKind() const;
  BinOpKind binOpKind() const;
  size_t numChildren() const;
  const Expr &child(size_t I) const;

  bool isLit() const { return N && kind() == ExprKind::Lit; }
  bool isLitBool(bool B) const {
    return isLit() && litValue().isBool() && litValue().asBool() == B;
  }
  bool isTrue() const { return isLitBool(true); }
  bool isFalse() const { return isLitBool(false); }
  bool isLVar() const { return N && kind() == ExprKind::LVar; }
  bool isPVar() const { return N && kind() == ExprKind::PVar; }

  size_t hash() const;

  /// Stable address of the shared node — an identity key for memo tables.
  /// Valid only while some Expr still references the node, so any table
  /// keyed on it must also hold the Expr to pin the node alive (a recycled
  /// address would otherwise alias a dead entry).
  const void *identity() const { return N.get(); }

  /// Structural equality (hash-accelerated).
  friend bool operator==(const Expr &A, const Expr &B);
  friend bool operator!=(const Expr &A, const Expr &B) { return !(A == B); }

  /// Renders in textual-GIL syntax; round-trips through parseGilExpr.
  std::string toString() const;

  /// Adds every logical variable occurring in this expression to \p Out.
  void collectLVars(std::set<InternedString> &Out) const;
  /// Adds every program variable occurring in this expression to \p Out.
  void collectPVars(std::set<InternedString> &Out) const;
  /// True if any LVar or uninterpreted-symbol literal occurs (i.e., the
  /// expression is not fully concrete... symbols are concrete values, so
  /// this checks LVars only).
  bool hasLVars() const;

  /// Replaces every PVar x with Lookup(x); unresolved variables (null
  /// results) are an error reported by the caller side via the returned
  /// null Expr.
  Expr substPVars(
      const std::function<Expr(InternedString)> &Lookup) const;

  /// Replaces every LVar x̂ with Lookup(x̂); variables mapped to null stay.
  Expr substLVars(
      const std::function<Expr(InternedString)> &Lookup) const;

  /// Concrete big-step evaluation (the JeKρ of §2.3). LVars are an error;
  /// PVars are resolved through \p StoreLookup (null result = unbound).
  Result<Value> evalConcrete(
      const std::function<const Value *(InternedString)> &StoreLookup) const;

  /// Evaluates a closed expression (no PVars, no LVars).
  Result<Value> evalClosed() const;

private:
  std::shared_ptr<const Node> N;
};

bool operator==(const Expr &A, const Expr &B);

/// A deterministic strict weak ordering on expressions (hash-major, with a
/// structural tie-break), so expressions can key ordered maps — symbolic
/// memories are maps from location *expressions* (Defs 2.4, §2.4, §4.1).
struct ExprOrdering {
  bool operator()(const Expr &A, const Expr &B) const;
};

} // namespace gillian

template <> struct std::hash<gillian::Expr> {
  size_t operator()(const gillian::Expr &E) const noexcept { return E.hash(); }
};

#endif // GILLIAN_GIL_EXPR_H
