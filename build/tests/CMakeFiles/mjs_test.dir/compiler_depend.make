# Empty compiler generated dependencies file for mjs_test.
# This may be replaced when dependencies are built.
