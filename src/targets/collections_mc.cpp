//===- targets/collections_mc.cpp -----------------------------------------===//

#include "targets/collections_mc.h"

using namespace gillian::targets;

namespace {

/// The library. Structures hold i64 payloads; every structure is heap-
/// allocated and manipulated through typed pointers, Collections-C style.
constexpr std::string_view Library = R"mc(
// ---------- array: dynamic array with capacity doubling ----------------
struct Array { buffer: ptr<i64>; size: i64; capacity: i64; }

fn arr_new(cap: i64) -> ptr<Array> {
  var a: ptr<Array> = alloc(Array, 1);
  a->buffer = alloc(i64, cap);
  a->size = 0;
  a->capacity = cap;
  return a;
}
fn arr_expand(a: ptr<Array>) -> i64 {
  var ncap: i64 = a->capacity * 2;
  var nbuf: ptr<i64> = alloc(i64, ncap);
  for (var i: i64 = 0; i < a->size; i = i + 1) { nbuf[i] = a->buffer[i]; }
  free(a->buffer);
  a->buffer = nbuf;
  a->capacity = ncap;
  return 0;
}
fn arr_add(a: ptr<Array>, v: i64) -> i64 {
  if (a->size >= a->capacity) { arr_expand(a); }
  a->buffer[a->size] = v;
  a->size = a->size + 1;
  return 0;
}
fn arr_get(a: ptr<Array>, idx: i64) -> i64 {
  assert(0 <= idx && idx < a->size);
  return a->buffer[idx];
}
fn arr_set(a: ptr<Array>, idx: i64, v: i64) -> i64 {
  assert(0 <= idx && idx < a->size);
  a->buffer[idx] = v;
  return 0;
}
fn arr_remove_at(a: ptr<Array>, idx: i64) -> i64 {
  assert(0 <= idx && idx < a->size);
  var v: i64 = a->buffer[idx];
  for (var i: i64 = idx; i < a->size - 1; i = i + 1) {
    a->buffer[i] = a->buffer[i + 1];
  }
  a->size = a->size - 1;
  return v;
}
fn arr_index_of(a: ptr<Array>, v: i64) -> i64 {
  for (var i: i64 = 0; i < a->size; i = i + 1) {
    if (a->buffer[i] == v) { return i; }
  }
  return -1;
}
fn arr_destroy(a: ptr<Array>) -> i64 {
  free(a->buffer);
  free(a);
  return 0;
}

// ---------- list: doubly-linked with sentinel-free head/tail ------------
struct LNode { val: i64; next: ptr<LNode>; prev: ptr<LNode>; }
struct List { head: ptr<LNode>; tail: ptr<LNode>; size: i64; }

fn list_new() -> ptr<List> {
  var l: ptr<List> = alloc(List, 1);
  l->head = null;
  l->tail = null;
  l->size = 0;
  return l;
}
fn list_add_last(l: ptr<List>, v: i64) -> i64 {
  var n: ptr<LNode> = alloc(LNode, 1);
  n->val = v;
  n->next = null;
  n->prev = l->tail;
  if (l->tail == null) { l->head = n; } else { l->tail->next = n; }
  l->tail = n;
  l->size = l->size + 1;
  return 0;
}
fn list_add_first(l: ptr<List>, v: i64) -> i64 {
  var n: ptr<LNode> = alloc(LNode, 1);
  n->val = v;
  n->prev = null;
  n->next = l->head;
  if (l->head == null) { l->tail = n; } else { l->head->prev = n; }
  l->head = n;
  l->size = l->size + 1;
  return 0;
}
fn list_get(l: ptr<List>, idx: i64) -> i64 {
  assert(0 <= idx && idx < l->size);
  var cur: ptr<LNode> = l->head;
  for (var i: i64 = 0; i < idx; i = i + 1) { cur = cur->next; }
  return cur->val;
}
fn list_contains(l: ptr<List>, v: i64) -> i64 {
  var cur: ptr<LNode> = l->head;
  while (cur != null) {
    if (cur->val == v) { return 1; }
    cur = cur->next;
  }
  return 0;
}
fn list_remove_first(l: ptr<List>, out_ok: ptr<i64>) -> i64 {
  if (l->head == null) { out_ok[0] = 0; return 0; }
  var n: ptr<LNode> = l->head;
  var v: i64 = n->val;
  l->head = n->next;
  if (l->head == null) { l->tail = null; } else { l->head->prev = null; }
  free(n);
  l->size = l->size - 1;
  out_ok[0] = 1;
  return v;
}
fn list_reverse(l: ptr<List>) -> i64 {
  var cur: ptr<LNode> = l->head;
  var tmp: ptr<LNode> = null;
  while (cur != null) {
    tmp = cur->prev;
    cur->prev = cur->next;
    cur->next = tmp;
    cur = cur->prev;
  }
  tmp = l->head;
  l->head = l->tail;
  l->tail = tmp;
  return 0;
}

// ---------- slist: singly-linked -----------------------------------------
struct SNode { val: i64; next: ptr<SNode>; }
struct SList { head: ptr<SNode>; size: i64; }

fn sl_new() -> ptr<SList> {
  var l: ptr<SList> = alloc(SList, 1);
  l->head = null;
  l->size = 0;
  return l;
}
fn sl_push(l: ptr<SList>, v: i64) -> i64 {
  var n: ptr<SNode> = alloc(SNode, 1);
  n->val = v;
  n->next = l->head;
  l->head = n;
  l->size = l->size + 1;
  return 0;
}
fn sl_pop(l: ptr<SList>, out_ok: ptr<i64>) -> i64 {
  if (l->head == null) { out_ok[0] = 0; return 0; }
  var n: ptr<SNode> = l->head;
  var v: i64 = n->val;
  l->head = n->next;
  free(n);
  l->size = l->size - 1;
  out_ok[0] = 1;
  return v;
}
fn sl_get(l: ptr<SList>, idx: i64) -> i64 {
  assert(0 <= idx && idx < l->size);
  var cur: ptr<SNode> = l->head;
  for (var i: i64 = 0; i < idx; i = i + 1) { cur = cur->next; }
  return cur->val;
}
fn sl_index_of(l: ptr<SList>, v: i64) -> i64 {
  var cur: ptr<SNode> = l->head;
  var i: i64 = 0;
  while (cur != null) {
    if (cur->val == v) { return i; }
    cur = cur->next;
    i = i + 1;
  }
  return -1;
}

// ---------- rbuf: fixed-capacity ring buffer ------------------------------
struct RBuf { data: ptr<i64>; cap: i64; head: i64; size: i64; }

fn rb_new(cap: i64) -> ptr<RBuf> {
  var r: ptr<RBuf> = alloc(RBuf, 1);
  r->data = alloc(i64, cap);
  r->cap = cap;
  r->head = 0;
  r->size = 0;
  return r;
}
fn rb_enqueue(r: ptr<RBuf>, v: i64) -> i64 {
  if (r->size == r->cap) { return 0; }  // full: drop
  var tail: i64 = (r->head + r->size) % r->cap;
  r->data[tail] = v;
  r->size = r->size + 1;
  return 1;
}
fn rb_dequeue(r: ptr<RBuf>, out_ok: ptr<i64>) -> i64 {
  if (r->size == 0) { out_ok[0] = 0; return 0; }
  var v: i64 = r->data[r->head];
  r->head = (r->head + 1) % r->cap;
  r->size = r->size - 1;
  out_ok[0] = 1;
  return v;
}

// ---------- deque: ring-buffer-backed double-ended queue ------------------
struct Deque { data: ptr<i64>; cap: i64; head: i64; size: i64; }

fn dq_new(cap: i64) -> ptr<Deque> {
  var d: ptr<Deque> = alloc(Deque, 1);
  d->data = alloc(i64, cap);
  d->cap = cap;
  d->head = 0;
  d->size = 0;
  return d;
}
fn dq_grow(d: ptr<Deque>) -> i64 {
  var ncap: i64 = d->cap * 2;
  var nbuf: ptr<i64> = alloc(i64, ncap);
  for (var i: i64 = 0; i < d->size; i = i + 1) {
    nbuf[i] = d->data[(d->head + i) % d->cap];
  }
  free(d->data);
  d->data = nbuf;
  d->cap = ncap;
  d->head = 0;
  return 0;
}
fn dq_add_last(d: ptr<Deque>, v: i64) -> i64 {
  if (d->size == d->cap) { dq_grow(d); }
  d->data[(d->head + d->size) % d->cap] = v;
  d->size = d->size + 1;
  return 0;
}
fn dq_add_first(d: ptr<Deque>, v: i64) -> i64 {
  if (d->size == d->cap) { dq_grow(d); }
  d->head = (d->head + d->cap - 1) % d->cap;
  d->data[d->head] = v;
  d->size = d->size + 1;
  return 0;
}
fn dq_remove_first(d: ptr<Deque>, out_ok: ptr<i64>) -> i64 {
  if (d->size == 0) { out_ok[0] = 0; return 0; }
  var v: i64 = d->data[d->head];
  d->head = (d->head + 1) % d->cap;
  d->size = d->size - 1;
  out_ok[0] = 1;
  return v;
}
fn dq_remove_last(d: ptr<Deque>, out_ok: ptr<i64>) -> i64 {
  if (d->size == 0) { out_ok[0] = 0; return 0; }
  var v: i64 = d->data[(d->head + d->size - 1) % d->cap];
  d->size = d->size - 1;
  out_ok[0] = 1;
  return v;
}
fn dq_clear(d: ptr<Deque>) -> i64 {
  free(d->data);
  d->data = alloc(i64, d->cap);
  d->head = 0;
  d->size = 0;
  return 0;
}

// ---------- queue / stack: thin adapters -----------------------------------
fn q_new() -> ptr<Deque> { return dq_new(4); }
fn q_enqueue(q: ptr<Deque>, v: i64) -> i64 { return dq_add_last(q, v); }
fn q_dequeue(q: ptr<Deque>, out_ok: ptr<i64>) -> i64 {
  return dq_remove_first(q, out_ok);
}

fn st_new() -> ptr<Array> { return arr_new(4); }
fn st_push(s: ptr<Array>, v: i64) -> i64 { return arr_add(s, v); }
fn st_pop(s: ptr<Array>, out_ok: ptr<i64>) -> i64 {
  if (s->size == 0) { out_ok[0] = 0; return 0; }
  out_ok[0] = 1;
  return arr_remove_at(s, s->size - 1);
}

// ---------- pqueue: binary min-heap on a dynamic array ----------------------
fn pq_new() -> ptr<Array> { return arr_new(4); }
fn pq_push(p: ptr<Array>, v: i64) -> i64 {
  arr_add(p, v);
  var i: i64 = p->size - 1;
  while (i > 0) {
    var parent: i64 = (i - 1) / 2;
    if (p->buffer[parent] <= p->buffer[i]) { return 0; }
    var tmp: i64 = p->buffer[parent];
    p->buffer[parent] = p->buffer[i];
    p->buffer[i] = tmp;
    i = parent;
  }
  return 0;
}
fn pq_pop(p: ptr<Array>, out_ok: ptr<i64>) -> i64 {
  if (p->size == 0) { out_ok[0] = 0; return 0; }
  var top: i64 = p->buffer[0];
  p->buffer[0] = p->buffer[p->size - 1];
  p->size = p->size - 1;
  var i: i64 = 0;
  while (1) {
    var l: i64 = 2 * i + 1;
    var r: i64 = 2 * i + 2;
    var m: i64 = i;
    if (l < p->size && p->buffer[l] < p->buffer[m]) { m = l; }
    if (r < p->size && p->buffer[r] < p->buffer[m]) { m = r; }
    if (m == i) { out_ok[0] = 1; return top; }
    var tmp: i64 = p->buffer[m];
    p->buffer[m] = p->buffer[i];
    p->buffer[i] = tmp;
    i = m;
  }
  out_ok[0] = 1;
  return top;
}

// ---------- treetbl: unbalanced BST map (key -> value) ----------------------
struct TNode { key: i64; value: i64; left: ptr<TNode>; right: ptr<TNode>; }
struct TreeTbl { root: ptr<TNode>; size: i64; }

fn tt_new() -> ptr<TreeTbl> {
  var t: ptr<TreeTbl> = alloc(TreeTbl, 1);
  t->root = null;
  t->size = 0;
  return t;
}
fn tt_put(t: ptr<TreeTbl>, k: i64, v: i64) -> i64 {
  var n: ptr<TNode> = alloc(TNode, 1);
  n->key = k; n->value = v; n->left = null; n->right = null;
  if (t->root == null) { t->root = n; t->size = 1; return 1; }
  var cur: ptr<TNode> = t->root;
  while (1) {
    if (k == cur->key) { cur->value = v; free(n); return 0; }
    if (k < cur->key) {
      if (cur->left == null) { cur->left = n; t->size = t->size + 1; return 1; }
      cur = cur->left;
    } else {
      if (cur->right == null) { cur->right = n; t->size = t->size + 1; return 1; }
      cur = cur->right;
    }
  }
  return 0;
}
fn tt_get(t: ptr<TreeTbl>, k: i64, out_ok: ptr<i64>) -> i64 {
  var cur: ptr<TNode> = t->root;
  while (cur != null) {
    if (k == cur->key) { out_ok[0] = 1; return cur->value; }
    if (k < cur->key) { cur = cur->left; } else { cur = cur->right; }
  }
  out_ok[0] = 0;
  return 0;
}
fn tt_min_key(t: ptr<TreeTbl>, out_ok: ptr<i64>) -> i64 {
  if (t->root == null) { out_ok[0] = 0; return 0; }
  var cur: ptr<TNode> = t->root;
  while (cur->left != null) { cur = cur->left; }
  out_ok[0] = 1;
  return cur->key;
}

// ---------- treeset: set on the treetbl --------------------------------------
fn ts_new() -> ptr<TreeTbl> { return tt_new(); }
fn ts_add(s: ptr<TreeTbl>, v: i64) -> i64 { return tt_put(s, v, 1); }
fn ts_contains(s: ptr<TreeTbl>, v: i64) -> i64 {
  var ok: ptr<i64> = alloc(i64, 1);
  tt_get(s, v, ok);
  var r: i64 = ok[0];
  free(ok);
  return r;
}
fn ts_size(s: ptr<TreeTbl>) -> i64 { return s->size; }
)mc";

/// Seeds four of the five §4.2 finding analogues (see header).
std::string makeBuggyLibrary() {
  std::string S(Library);

  // Finding 1: off-by-one bounds check in the dynamic array — `>` lets
  // size == capacity through, and the subsequent write lands one past the
  // end of the buffer.
  std::string Orig = "if (a->size >= a->capacity) { arr_expand(a); }";
  std::string Bug = "if (a->size > a->capacity) { arr_expand(a); }";
  auto P = S.find(Orig);
  if (P != std::string::npos)
    S.replace(P, Orig.size(), Bug);

  // Finding 2: relational pointer comparison across objects in
  // list_contains (a "cur < tail"-style loop condition, defined only
  // within one object but nodes are separate allocations).
  Orig = "fn list_contains(l: ptr<List>, v: i64) -> i64 {\n"
         "  var cur: ptr<LNode> = l->head;\n"
         "  while (cur != null) {";
  Bug = "fn list_contains(l: ptr<List>, v: i64) -> i64 {\n"
        "  var cur: ptr<LNode> = l->head;\n"
        "  while (cur != null && !(l->tail < cur)) {";
  P = S.find(Orig);
  if (P != std::string::npos)
    S.replace(P, Orig.size(), Bug);

  // Finding 3: freed-pointer comparison in dq_clear — inspecting the old
  // buffer pointer after free() is undefined.
  Orig = "fn dq_clear(d: ptr<Deque>) -> i64 {\n"
         "  free(d->data);\n"
         "  d->data = alloc(i64, d->cap);";
  Bug = "fn dq_clear(d: ptr<Deque>) -> i64 {\n"
        "  var old: ptr<i64> = d->data;\n"
        "  free(d->data);\n"
        "  if (old == d->data) { d->head = 0; }\n"
        "  d->data = alloc(i64, d->cap);";
  P = S.find(Orig);
  if (P != std::string::npos)
    S.replace(P, Orig.size(), Bug);

  // Finding 4: ring-buffer over-allocation (one element too many) —
  // behaviourally benign, caught only by the capacity assertion.
  Orig = "r->data = alloc(i64, cap);\n  r->cap = cap;";
  Bug = "r->data = alloc(i64, cap + 1);\n  r->cap = cap;";
  P = S.find(Orig);
  if (P != std::string::npos)
    S.replace(P, Orig.size(), Bug);

  return S;
}

} // namespace

std::string_view gillian::targets::collectionsLibrary() { return Library; }

std::string_view gillian::targets::collectionsBuggyLibrary() {
  static const std::string Buggy = makeBuggyLibrary();
  return Buggy;
}
