//===- tests/soundness/replay_harness.h - Thm 3.6 as a test ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable restricted soundness / completeness (Theorem 3.6): for every
/// terminal symbolic trace of a program,
///
///  1. take the final path condition π' and ask the solver for a verified
///     model ε of it (the "initial configuration restricted by the final
///     configuration", cf ⇃cf' — strengthening the initial state with π'
///     is what directs the concrete run down this trace);
///  2. build the *initial* concrete state: empty memory, and the concrete
///     allocator scripted so the (site, k)-th interpreted allocation
///     returns ε(#i_site_k) (Def 3.8's allocator interpretation);
///  3. run concretely and check the concrete outcome matches the symbolic
///     one under ε: same outcome kind, and for returns, JêKε equals the
///     concrete value (restricted soundness); the concrete run must exist
///     at all (restricted completeness).
///
/// Instantiated per language by providing the memory-model pair. This is
/// the strongest no-false-positives evidence the test suite produces:
/// every symbolic bug report replays as a real concrete failure.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_TESTS_REPLAY_HARNESS_H
#define GILLIAN_TESTS_REPLAY_HARNESS_H

#include "engine/interpreter.h"
#include "engine/test_runner.h"

#include <gtest/gtest.h>

#include <string>

namespace gillian::testing {

struct ReplaySummary {
  int TracesReplayed = 0;
  int TracesSkippedNoModel = 0; ///< solver could not produce a model
  int Returns = 0;
  int Errors = 0;
};

/// Scripted values for every interpreted symbol the symbolic trace
/// allocated: bound by the model when the path condition mentions them,
/// default otherwise (an unconstrained symbol cannot influence the path).
inline Model extendModelOverAllocations(const Model &M,
                                        const AllocRecord &Rec) {
  Model Out = M;
  for (const auto &[Site, Count] : Rec.sites()) {
    for (uint32_t K = 0; K < Count; ++K) {
      InternedString Name = InternedString::get(iSymName(Site, K));
      if (!Out.lookup(Name))
        Out.bind(Name, Value::intV(0));
    }
  }
  return Out;
}

/// Replays every terminal trace of `Entry` in \p P; reports via gtest.
/// \p CMem0 is the initial concrete memory (normally empty).
template <typename SMem, typename CMem>
ReplaySummary replayAllTraces(const Prog &P, std::string_view Entry,
                              EngineOptions Opts = EngineOptions()) {
  using SSt = SymbolicState<SMem>;
  using CSt = ConcreteState<CMem>;
  ReplaySummary Sum;

  Solver Slv(Opts.Solver);
  ExecStats SStats;
  Interpreter<SSt> SI(P, Opts, SStats);
  Result<std::vector<TraceResult<SSt>>> Traces =
      SI.run(InternedString::get(Entry), Expr::list({}),
             SSt(SMem(), &Slv, &Opts));
  EXPECT_TRUE(Traces.ok()) << (Traces.ok() ? "" : Traces.error());
  if (!Traces.ok())
    return Sum;
  EXPECT_FALSE(Traces->empty());

  for (TraceResult<SSt> &T : *Traces) {
    if (T.Kind == OutcomeKind::Bound)
      continue; // budget cuts have no terminal concrete counterpart

    const PathCondition &PC = T.Final.pathCondition();
    std::optional<Model> M = Slv.verifiedModel(PC);
    if (!M && T.Kind != OutcomeKind::Vanish) {
      // Solver incompleteness: nothing to replay, but record it so a
      // systematically model-less suite would be noticed.
      ++Sum.TracesSkippedNoModel;
      continue;
    }
    if (T.Kind == OutcomeKind::Vanish)
      continue; // vanish cuts are internal; no outcome to compare

    Model Eps = extendModelOverAllocations(
        *M, T.Final.allocator().record());

    // Restricted completeness: the directed concrete run must exist.
    CSt Init;
    for (const auto &[Site, Count] : T.Final.allocator().record().sites())
      for (uint32_t K = 0; K < Count; ++K) {
        const Value *V =
            Eps.lookup(InternedString::get(iSymName(Site, K)));
        EXPECT_NE(V, nullptr);
        if (V)
          Init.allocator().scriptISym(Site, K, *V);
      }

    ExecStats CStats;
    Result<TraceResult<CSt>> CR =
        runConcrete<CMem>(P, Entry, Opts, CStats, std::move(Init));
    EXPECT_TRUE(CR.ok()) << (CR.ok() ? "" : CR.error())
        << " (restricted completeness: directed run must exist)";
    if (!CR.ok())
      continue;
    ++Sum.TracesReplayed;

    // Restricted soundness: same outcome, same value under ε.
    EXPECT_EQ(CR->Kind, T.Kind)
        << "symbolic trace with PC " << PC.toString() << " and model "
        << Eps.toString() << " diverged concretely (symbolic value: "
        << T.Val.toString() << ", concrete value: " << CR->Val.toString()
        << ")";
    if (CR->Kind != T.Kind)
      continue;

    if (T.Kind == OutcomeKind::Return) {
      ++Sum.Returns;
      Result<Value> Expected = Eps.eval(T.Val);
      EXPECT_TRUE(Expected.ok())
          << "symbolic return value " << T.Val.toString()
          << " uninterpretable under " << Eps.toString();
      if (!Expected.ok())
        continue;
      EXPECT_EQ(*Expected, CR->Val)
          << "return values diverge under " << Eps.toString();
    } else if (T.Kind == OutcomeKind::Error) {
      ++Sum.Errors;
      // Error payloads carry human-readable messages whose concrete
      // renderings embed concrete values; compare the stable category
      // prefix (up to the first ':').
      Result<Value> Expected = Eps.eval(T.Val);
      if (Expected.ok() && Expected->isStr() && CR->Val.isStr()) {
        std::string SMsg(Expected->asStr().str());
        std::string CMsg(CR->Val.asStr().str());
        std::string SCat = SMsg.substr(0, SMsg.find(':'));
        std::string CCat = CMsg.substr(0, CMsg.find(':'));
        EXPECT_EQ(SCat, CCat) << "error categories diverge: '" << SMsg
                              << "' vs '" << CMsg << "'";
      }
    }
  }
  return Sum;
}

} // namespace gillian::testing

#endif // GILLIAN_TESTS_REPLAY_HARNESS_H
