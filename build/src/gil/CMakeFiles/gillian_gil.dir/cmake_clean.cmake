file(REMOVE_RECURSE
  "CMakeFiles/gillian_gil.dir/expr.cpp.o"
  "CMakeFiles/gillian_gil.dir/expr.cpp.o.d"
  "CMakeFiles/gillian_gil.dir/ops.cpp.o"
  "CMakeFiles/gillian_gil.dir/ops.cpp.o.d"
  "CMakeFiles/gillian_gil.dir/parser.cpp.o"
  "CMakeFiles/gillian_gil.dir/parser.cpp.o.d"
  "CMakeFiles/gillian_gil.dir/prog.cpp.o"
  "CMakeFiles/gillian_gil.dir/prog.cpp.o.d"
  "CMakeFiles/gillian_gil.dir/value.cpp.o"
  "CMakeFiles/gillian_gil.dir/value.cpp.o.d"
  "libgillian_gil.a"
  "libgillian_gil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_gil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
