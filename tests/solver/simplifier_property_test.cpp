//===- tests/solver/simplifier_property_test.cpp --------------------------===//
//
// Property-based testing of the simplifier over randomly generated
// expressions (deterministic splitmix64 seeds):
//
//  * closed expressions: simplification never changes the evaluated value
//    and never turns a faulting evaluation into a succeeding one;
//  * open expressions: simplification commutes with substitution of a
//    random environment (simplify-then-substitute evaluates like
//    substitute-then-evaluate) — the semantic core of the §2.3 [EvalExpr]
//    lifting;
//  * idempotence on every generated expression.
//
//===----------------------------------------------------------------------===//

#include "solver/simplifier.h"

#include "solver/model.h"

#include "support/rng.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

/// Random expression generator. Depth-bounded; mixes every operator and
/// all value kinds, with a small pool of logical variables.
class ExprGen {
public:
  explicit ExprGen(uint64_t Seed) : R(Seed) {}

  Expr gen(int Depth) {
    if (Depth <= 0 || R.below(4) == 0)
      return leaf();
    switch (R.below(3)) {
    case 0:
      return Expr::unOp(randomUnOp(), gen(Depth - 1));
    case 1:
      return Expr::binOp(randomBinOp(), gen(Depth - 1), gen(Depth - 1));
    default: {
      std::vector<Expr> Elems;
      for (uint64_t I = 0, N = R.below(3); I <= N; ++I)
        Elems.push_back(gen(Depth - 1));
      return Expr::list(std::move(Elems));
    }
    }
  }

  /// A model binding every pool variable to a random value.
  Model randomModel() {
    Model M;
    for (int I = 0; I < PoolSize; ++I)
      M.bind(InternedString::get("#p" + std::to_string(I)), leafValue());
    return M;
  }

private:
  static constexpr int PoolSize = 4;
  Rng R;

  Value leafValue() {
    switch (R.below(6)) {
    case 0: return Value::intV(R.range(-4, 4));
    case 1: return Value::numV(static_cast<double>(R.range(-4, 4)) / 2.0);
    case 2: return Value::boolV(R.flip());
    case 3: return Value::strV(R.flip() ? "a" : "bc");
    case 4: return Value::symV(R.flip() ? "$s1" : "$s2");
    default:
      return Value::listV({Value::intV(R.range(0, 2))});
    }
  }

  Expr leaf() {
    if (R.below(3) == 0)
      return Expr::lvar("#p" + std::to_string(R.below(PoolSize)));
    return Expr::lit(leafValue());
  }

  UnOpKind randomUnOp() {
    constexpr UnOpKind Ops[] = {
        UnOpKind::Neg,     UnOpKind::Not,      UnOpKind::TypeOf,
        UnOpKind::ListLen, UnOpKind::StrLen,   UnOpKind::Head,
        UnOpKind::Tail,    UnOpKind::ToNum,    UnOpKind::ToInt,
        UnOpKind::NumToStr};
    return Ops[R.below(std::size(Ops))];
  }

  BinOpKind randomBinOp() {
    constexpr BinOpKind Ops[] = {
        BinOpKind::Add,     BinOpKind::Sub,       BinOpKind::Mul,
        BinOpKind::Div,     BinOpKind::Mod,       BinOpKind::Eq,
        BinOpKind::Lt,      BinOpKind::Le,        BinOpKind::And,
        BinOpKind::Or,      BinOpKind::StrCat,    BinOpKind::ListNth,
        BinOpKind::ListConcat, BinOpKind::Cons};
    return Ops[R.below(std::size(Ops))];
  }
};

} // namespace

TEST(SimplifierProperty, ClosedExpressionsPreserveValueOrFault) {
  int Evaluated = 0;
  for (uint64_t Seed = 1; Seed <= 400; ++Seed) {
    ExprGen G(Seed);
    Model Empty = G.randomModel(); // also closes over pool vars
    Expr E = G.gen(4).substLVars([&](InternedString X) -> Expr {
      const Value *V = Empty.lookup(X);
      return V ? Expr::lit(*V) : Expr();
    });
    Result<Value> Before = E.evalClosed();
    Expr S = simplify(E);
    Result<Value> After = S.evalClosed();
    if (Before.ok()) {
      ++Evaluated;
      ASSERT_TRUE(After.ok())
          << "simplification must not introduce a fault: " << E.toString()
          << " -> " << S.toString();
      EXPECT_EQ(*Before, *After)
          << E.toString() << " -> " << S.toString();
    }
    // A faulting expression may stay faulting or (for discarded total
    // subterms) become defined; both are allowed by the [EvalExpr]
    // contract. What must never happen is a *different* defined value,
    // which the Before.ok() branch above pins down.
  }
  EXPECT_GT(Evaluated, 50) << "generator must produce evaluable cases";
}

TEST(SimplifierProperty, OpenExpressionsCommuteWithSubstitution) {
  int Compared = 0;
  for (uint64_t Seed = 1000; Seed <= 1300; ++Seed) {
    ExprGen G(Seed);
    Expr E = G.gen(4);
    Model M = G.randomModel();
    Result<Value> Direct = M.eval(E);
    Result<Value> Simplified = M.eval(simplify(E));
    if (Direct.ok()) {
      ++Compared;
      ASSERT_TRUE(Simplified.ok())
          << E.toString() << " -> " << simplify(E).toString()
          << " under " << M.toString();
      EXPECT_EQ(*Direct, *Simplified)
          << E.toString() << " under " << M.toString();
    }
  }
  EXPECT_GT(Compared, 40);
}

TEST(SimplifierProperty, Idempotent) {
  for (uint64_t Seed = 2000; Seed <= 2300; ++Seed) {
    ExprGen G(Seed);
    Expr E = G.gen(5);
    Expr S1 = simplify(E);
    Expr S2 = simplify(S1);
    EXPECT_EQ(S1, S2) << E.toString();
  }
}

TEST(SimplifierProperty, CachedAgreesWithUncached) {
  resetSimplifyCache();
  for (uint64_t Seed = 3000; Seed <= 3200; ++Seed) {
    ExprGen G(Seed);
    Expr E = G.gen(4);
    EXPECT_EQ(simplify(E), simplifyCached(E)) << E.toString();
  }
}
