//===- tests/soundness/replay_while_test.cpp ------------------------------===//
//
// Theorem 3.6 instantiated for While: every terminal symbolic trace of
// each program replays concretely to the same outcome under a verified
// model of its final path condition. Programs are chosen to cover every
// engine feature: branching, loops, calls, heap actions, aliasing,
// faults, and symbolic inputs of every type.
//
//===----------------------------------------------------------------------===//

#include "replay_harness.h"

#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::testing;
using namespace gillian::whilelang;

namespace {

struct ReplayCase {
  const char *Name;
  const char *Source;
  int MinTraces; ///< sanity floor on how many traces must replay
};

class WhileReplay : public ::testing::TestWithParam<ReplayCase> {};

} // namespace

TEST_P(WhileReplay, TerminalTracesReplayConcretely) {
  const ReplayCase &C = GetParam();
  Result<Prog> P = compileWhileSource(C.Source);
  ASSERT_TRUE(P.ok()) << P.error();
  ReplaySummary Sum = replayAllTraces<WhileSMem, WhileCMem>(*P, "main");
  EXPECT_GE(Sum.TracesReplayed, C.MinTraces);
  EXPECT_EQ(Sum.TracesSkippedNoModel, 0)
      << "solver failed to produce models; soundness untested for some "
         "traces";
}

INSTANTIATE_TEST_SUITE_P(
    Programs, WhileReplay,
    ::testing::Values(
        ReplayCase{"straight_line",
                   "function main() { x := 1; y := x * 3; return y; }", 1},
        ReplayCase{"symbolic_branch",
                   R"(function main() {
                        x := fresh_int();
                        if (x < 0) { r := 0 - x; } else { r := x; }
                        return r;
                      })",
                   2},
        ReplayCase{"nested_branches",
                   R"(function main() {
                        a := fresh_int(); b := fresh_int();
                        r := 0;
                        if (a < b) { r := r + 1; }
                        if (b < a) { r := r + 2; }
                        if (a == b) { r := r + 4; }
                        return r;
                      })",
                   3},
        ReplayCase{"assert_failure_path",
                   R"(function main() {
                        x := fresh_int();
                        assume (0 <= x && x <= 3);
                        assert (x < 3);
                        return x;
                      })",
                   2},
        ReplayCase{"heap_roundtrip",
                   R"(function main() {
                        v := fresh_int();
                        o := { a: v, b: 2 };
                        o.a := v + 1;
                        r := o.a;
                        dispose o;
                        return r;
                      })",
                   1},
        ReplayCase{"heap_fault_branch",
                   R"(function main() {
                        x := fresh_int();
                        o := { a: 1 };
                        if (0 < x) { o.b := 2; }
                        r := o.b;
                        return r;
                      })",
                   2},
        ReplayCase{"bounded_loop",
                   R"(function main() {
                        n := fresh_int();
                        assume (0 <= n && n < 4);
                        i := 0; s := 0;
                        while (i < n) { s := s + i; i := i + 1; }
                        return s;
                      })",
                   4},
        ReplayCase{"interprocedural",
                   R"(function main() {
                        a := fresh_int();
                        r := relu(a);
                        return r;
                      }
                      function relu(x) {
                        if (x < 0) { return 0; }
                        return x;
                      })",
                   2},
        ReplayCase{"bool_and_str_inputs",
                   R"(function main() {
                        b := fresh_bool();
                        s := fresh_str();
                        assume (slen(s) == 2);
                        if (b) { return s @+ "!"; }
                        return s;
                      })",
                   2},
        ReplayCase{"use_after_dispose",
                   R"(function main() {
                        o := { v: 1 };
                        dispose o;
                        r := o.v;
                        return r;
                      })",
                   1},
        ReplayCase{"division_fault_guarded",
                   R"(function main() {
                        d := fresh_int();
                        assume (0 - 2 <= d && d <= 2);
                        r := 10 / d;
                        return r;
                      })",
                   2}),
    [](const ::testing::TestParamInfo<ReplayCase> &Info) {
      return Info.param.Name;
    });
