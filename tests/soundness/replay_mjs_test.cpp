//===- tests/soundness/replay_mjs_test.cpp --------------------------------===//
//
// Theorem 3.6 instantiated for the JS memory model: symbolic MJS traces
// replay concretely under verified models — including traces through the
// branching getProp, dynamic property keys, deletion and TypeError
// worlds.
//
//===----------------------------------------------------------------------===//

#include "replay_harness.h"

#include "mjs/compiler.h"
#include "mjs/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::testing;

namespace {

struct ReplayCase {
  const char *Name;
  const char *Source;
  int MinTraces;
};

class MjsReplay : public ::testing::TestWithParam<ReplayCase> {};

} // namespace

TEST_P(MjsReplay, TerminalTracesReplayConcretely) {
  const ReplayCase &C = GetParam();
  Result<Prog> P = compileMjsSource(C.Source);
  ASSERT_TRUE(P.ok()) << P.error();
  ReplaySummary Sum = replayAllTraces<MjsSMem, MjsCMem>(*P, "main");
  EXPECT_GE(Sum.TracesReplayed, C.MinTraces);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, MjsReplay,
    ::testing::Values(
        ReplayCase{"object_roundtrip",
                   R"(function main() {
                        var v = symb_number();
                        var o = { a: v, b: "t" };
                        o.a = o.a + 1;
                        return o.a;
                      })",
                   1},
        ReplayCase{"branch_on_heap_value",
                   R"(function main() {
                        var v = symb_number();
                        var o = { data: v };
                        if (o.data < 0) { return "neg"; }
                        return "nonneg";
                      })",
                   2},
        ReplayCase{"typeerror_world",
                   R"(function main() {
                        var v = symb_any();
                        return v + 1;
                      })",
                   1},
        ReplayCase{"deletion_and_undefined",
                   R"(function main() {
                        var b = symb_bool();
                        var o = { p: 1 };
                        if (b) { delete o.p; }
                        return o.p;
                      })",
                   2},
        ReplayCase{"array_walk",
                   R"(function main() {
                        var a = [1, 2, 3];
                        var s = 0;
                        for (var i = 0; i < a.length; i = i + 1) {
                          s = s + a[i];
                        }
                        return s;
                      })",
                   1},
        ReplayCase{"string_truthiness",
                   R"(function main() {
                        var s = symb_string();
                        if (s) { return "nonempty"; }
                        return "empty";
                      })",
                   2}),
    [](const ::testing::TestParamInfo<ReplayCase> &Info) {
      return Info.param.Name;
    });
