//===- engine/interpreter.h - The GIL interpreter (Fig. 1) -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL semantics of Fig. 1, written once and instantiated both
/// concretely (ConcreteState<M>) and symbolically (SymbolicState<M>) —
/// the template parameter is the paper's state-model parameter S, and the
/// rules below are the transition rules p ⊢ ⟨σ, cs, i⟩ ⇝ ⟨σ', cs', j⟩^o.
///
/// Exploration strategy is factored out of the semantics: step() executes
/// ONE command of one configuration and reports its successors and
/// finished paths to a caller-supplied sink. run() drives it with the
/// classic sequential depth-first worklist; the parallel scheduler
/// (engine/scheduler/exploration_scheduler.h) drives the same step() from
/// a work-stealing pool — configurations after a branch are path-disjoint,
/// so they can execute on different threads with no coordination beyond
/// the (thread-safe) shared solver.
///
/// Branch points (conditional gotos with both sides feasible, branching
/// memory actions) emit extra configurations. Loops unroll up to a
/// per-frame back-jump bound; paths cut by a budget finish with the Bound
/// outcome so the caveat surfaces in results ("bounded verification", §1).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_INTERPRETER_H
#define GILLIAN_ENGINE_INTERPRETER_H

#include "engine/options.h"
#include "engine/state.h"
#include "engine/stats.h"
#include "engine/summary/record.h"
#include "engine/summary/summary_store.h"
#include "gil/prog.h"
#include "obs/coverage.h"
#include "obs/journal/journal.h"
#include "obs/progress.h"
#include "obs/query_profile.h"
#include "obs/span.h"
#include "obs/summary_stats.h"
#include "obs/trace_ring.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gillian {

/// Def 2.1's requirement that GIL states expose the proper actions: the
/// exact interface the interpreter consumes.
template <typename St>
concept StateModel =
    std::copyable<St> && requires(St S, const St CS, const Expr &E,
                                  InternedString X,
                                  typename St::ValueT V, uint32_t Site) {
      typename St::ValueT;
      typename St::StoreT;
      { CS.evalExpr(E) } -> std::same_as<Result<typename St::ValueT>>;
      { S.setVar(X, V) };
      { CS.getStore() } -> std::same_as<typename St::StoreT>;
      { S.setStore(CS.getStore()) };
      {
        CS.assumeValue(V)
      } -> std::same_as<Result<std::optional<St>>>;
      { S.allocUSym(Site) } -> std::same_as<typename St::ValueT>;
      { S.allocISym(Site) } -> std::same_as<typename St::ValueT>;
      {
        CS.execAction(X, V)
      } -> std::same_as<Result<std::vector<StateBranch<St>>>>;
      {
        CS.asProcId(V)
      } -> std::same_as<std::optional<InternedString>>;
      { St::errorValue(std::string()) } -> std::same_as<typename St::ValueT>;
    };

/// The extra surface the procedure summary cache (engine/summary/) needs
/// from a state model: a path condition over Expr values it can slice and
/// splice, plus the solver/options plumbing to build recording entry
/// states. SymbolicState models it; ConcreteState does not (concrete runs
/// never consult the store — replay is a path-condition transformation).
template <typename St>
concept SummarizableState =
    StateModel<St> && std::same_as<typename St::ValueT, Expr> &&
    requires(St S, const St CS, const Expr &E) {
      { CS.pathCondition() } -> std::same_as<const PathCondition &>;
      { S.spliceConjunct(E) };
      { CS.solver() } -> std::same_as<Solver &>;
      { CS.options() } -> std::same_as<const EngineOptions &>;
      requires std::constructible_from<St, typename St::MemT, Solver *,
                                       const EngineOptions *>;
    };

/// Terminal outcomes o ∈ O (§2.1), extended with the bounded-exploration
/// outcome so budget cuts are never silently conflated with success.
enum class OutcomeKind : uint8_t {
  Return, ///< N(v): top-level return
  Error,  ///< E(v): fail command, memory fault, or runtime type error
  Vanish, ///< silent path cut (assume-false)
  Bound,  ///< path cut by the loop/step budget
};

std::string_view outcomeKindName(OutcomeKind K);

/// A finished path: its outcome, outcome value, and final state (which,
/// symbolically, carries the final path condition used for counter-models
/// and for the §3 restriction-based replay).
template <StateModel St> struct TraceResult {
  OutcomeKind Kind;
  typename St::ValueT Val;
  St Final;
};

/// An inner stack frame ⟨f, x, ρ, i⟩ (§2.1 call stacks).
template <StateModel St> struct Frame {
  InternedString ProcName;
  InternedString RetVar;
  typename St::StoreT SavedStore;
  size_t RetIdx;
  uint32_t SavedBackjumps; ///< caller's loop budget, restored on return
};

template <StateModel St> class Interpreter {
public:
  /// A configuration ⟨σ, cs, i⟩ of Fig. 1 (state, call stack, program
  /// point) plus the current procedure and this path's back-jump count.
  /// Configurations produced by distinct branches share no mutable data:
  /// states are value types built on copy-on-write structures, so two
  /// configurations can step on different threads concurrently.
  struct Config {
    St State;
    std::vector<Frame<St>> Stack;
    InternedString CurProc;
    size_t I;
    uint32_t Backjumps;
    /// Summary replay position (engine/summary/): while set, step()
    /// replays one SummaryNode per call instead of executing Body[I] —
    /// CurProc/I stay parked at the Call command until the terminal
    /// splices its outcome back into this caller.
    std::shared_ptr<const SummaryEntry> Replay;
    uint32_t ReplayNode = 0;
    /// Execution-journal path-node id (obs/journal/): extended with k
    /// fresh ids at every k>=2-output step, mirroring the scheduler's
    /// branch-trace PathId rules. 0 while the journal is disabled.
    uint64_t JPath = 0;
    /// Cumulative step() count from the root along this path's lineage —
    /// the journal events' intra-path clock.
    uint32_t JSteps = 0;
  };

  Interpreter(const Prog &P, const EngineOptions &Opts, ExecStats &Stats)
      : P(P), Opts(Opts), Stats(Stats) {
    // Register every procedure's IfGoto sites up front so branch-coverage
    // totals are static: a branch no path ever reaches reports as
    // uncovered instead of silently missing from the denominator.
    if (obs::ObsConfig::coverage())
      for (const auto &[Name, Proc] : P.procs()) {
        uint32_t Sites = 0;
        for (const Cmd &C : Proc.Body)
          if (C.Kind == CmdKind::IfGoto)
            ++Sites;
        obs::BranchCoverage::instance().registerProc(Name.id(), Sites);
      }
    // Summary eligibility is syntactic and per-procedure: decide it once
    // here (with the content fingerprint that keys the process-wide
    // store) so the Call hot path is one hash-map probe.
    if constexpr (SummarizableState<St>)
      if (Opts.UseSummaries)
        for (const auto &[Name, Proc] : P.procs())
          if (summaryEligible(Proc))
            SummaryFp.emplace(Name.id(), summaryFingerprint(Proc));
  }

  const EngineOptions &options() const { return Opts; }
  ExecStats &stats() { return Stats; }

  /// Builds the initial configuration for procedure \p Entry applied to
  /// \p Arg in state \p Init. Err(...) reports engine-level misuse
  /// (unknown entry procedure).
  Result<Config> makeInitialConfig(InternedString Entry,
                                   typename St::ValueT Arg, St Init) {
    const Proc *Main = P.find(Entry);
    if (!Main)
      return Err("unknown entry procedure '" + std::string(Entry.str()) +
                 "'");
    typename St::StoreT Store;
    Store.set(Main->Param, std::move(Arg));
    Init.setStore(std::move(Store));
    Config C{std::move(Init), {}, Entry, 0, 0, nullptr};
    if (obs::journal::enabled()) {
      C.JPath = obs::journal::allocPathIds(1);
      obs::journal::emitRoot(C.JPath, Entry.id());
    }
    return C;
  }

  /// The IfGoto site control will reach from \p C without branching or
  /// transferring control: scans forward from C.I over straight-line
  /// commands (assignments, symbol allocations) in the current procedure
  /// and returns the first IfGoto as (procedure id, command index), or
  /// nullopt if a call/return/action/terminal comes first. Pure
  /// inspection — no evaluation, no solver queries — so path-selection
  /// strategies (the coverage-guided frontier) can score a configuration
  /// without stepping it.
  std::optional<std::pair<uint32_t, uint32_t>>
  nextBranchSite(const Config &C) const {
    const Proc *Cur = P.find(C.CurProc);
    if (!Cur)
      return std::nullopt;
    for (size_t I = C.I; I < Cur->Body.size(); ++I) {
      switch (Cur->Body[I].Kind) {
      case CmdKind::IfGoto:
        return std::make_pair(C.CurProc.id(), static_cast<uint32_t>(I));
      case CmdKind::Assign:
      case CmdKind::USym:
      case CmdKind::ISym:
        continue; // straight-line: cannot branch or leave the procedure
      default:
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Runs procedure \p Entry with argument \p Arg from state \p Init,
  /// exploring all paths with the sequential depth-first worklist.
  /// Err(...) reports engine-level misuse (unknown entry procedure);
  /// program-level failures are Error outcomes.
  Result<std::vector<TraceResult<St>>>
  run(InternedString Entry, typename St::ValueT Arg, St Init) {
    Result<Config> Start =
        makeInitialConfig(Entry, std::move(Arg), std::move(Init));
    if (!Start)
      return Err(Start.error());

    obs::Span ExploreSpan(obs::SpanKind::Explore, &Stats.EngineNs);
    std::vector<TraceResult<St>> Results;
    std::vector<Config> Work;
    Work.push_back(Start.take());
    uint64_t Steps = 0;

    // The sequential sink: successors go straight onto the depth-first
    // worklist, finished paths straight into the result vector.
    struct WorklistSink {
      std::vector<Config> &Work;
      std::vector<TraceResult<St>> &Results;
      void cont(Config C) { Work.push_back(std::move(C)); }
      void done(OutcomeKind K, typename St::ValueT V, St S) {
        Results.push_back({K, std::move(V), std::move(S)});
      }
    } Sink{Work, Results};

    while (!Work.empty()) {
      bool StepsOut = Opts.MaxSteps && Steps >= Opts.MaxSteps;
      bool PathsOut =
          Opts.MaxPaths && Results.size() >= Opts.MaxPaths;
      if (StepsOut || PathsOut) {
        // Out of budget: remaining configurations become Bound outcomes,
        // routed through finish() so outcome accounting has exactly one
        // code path (it used to bump PathsBounded inline here, duplicating
        // the counting logic). The outcome value names *which* budget
        // tripped — a MaxPaths cut used to masquerade as "step budget
        // exhausted" (steps win when both trip at once).
        for (Config &C : Work) {
          journalEnd(C, OutcomeKind::Bound,
                     StepsOut ? obs::journal::BudgetKind::Steps
                              : obs::journal::BudgetKind::Paths);
          finish(Sink, OutcomeKind::Bound,
                 St::errorValue(StepsOut ? "step budget exhausted"
                                         : "path budget exhausted"),
                 std::move(C.State));
        }
        break;
      }
      Config C = std::move(Work.back());
      Work.pop_back();
      ++Steps;
      step(std::move(C), Sink);
    }
    return Results;
  }

  /// Executes one command of \p C, reporting successors and finished
  /// paths to \p S (a StepSink). Thread-safe for path-disjoint
  /// configurations: mutable state is confined to C, the sink, and the
  /// atomic counters in Stats.
  template <typename Sink> void step(Config C, Sink &S) {
    ++C.JSteps;
    if constexpr (SummarizableState<St>)
      if (C.Replay) {
        replayStep(std::move(C), S);
        return;
      }
    obs::DetailSpan StepSpan(obs::SpanKind::Step);
    const Proc *Cur = P.find(C.CurProc);
    assert(Cur && "current procedure disappeared");
    if (C.I >= Cur->Body.size()) {
      fail(S, std::move(C),
           "control fell off the end of procedure '" +
               std::string(C.CurProc.str()) + "'");
      return;
    }
    const Cmd &Command = Cur->Body[C.I];
    ++Stats.CmdsExecuted;
    // Publish the executing GIL site so the solver's hot-query profiler
    // can attribute every query this command issues (three word-sized
    // thread-local writes; restored when the command completes).
    obs::QueryOriginScope QueryOrigin(C.CurProc.id(),
                                      static_cast<uint32_t>(C.I));

    switch (Command.Kind) {
    case CmdKind::Assign: {
      // [Assignment]: σ.(setVar_x ∘ eval_e)
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      C.State.setVar(Command.X, V.take());
      ++C.I;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::IfGoto: {
      // [IfGoto-True] / [IfGoto-False]: branch on assume(e) / assume(¬e).
      Result<typename St::ValueT> CondT = C.State.evalExpr(Command.E);
      if (!CondT) {
        fail(S, std::move(C), CondT.error());
        return;
      }
      Result<typename St::ValueT> CondF =
          C.State.evalExpr(Expr::notE(Command.E));

      // Journal attribution: snapshot the thread's solver query sequence
      // around each assume so the decision's verdict layer / wall / PC
      // delta can be recorded (a few thread-local reads; skipped when
      // the journal is off).
      const bool JOn = obs::journal::enabled();
      obs::journal::QueryAttribution &QA = obs::journal::queryAttribution();
      uint32_t JPc0 = 0;
      uint64_t TSeq0 = 0, TWall0 = 0;
      if (JOn) {
        JPc0 = journalPcSize(C.State);
        TSeq0 = QA.Seq;
        TWall0 = QA.CumWallNs;
      }
      Result<std::optional<St>> TrueSt = C.State.assumeValue(*CondT);
      if (!TrueSt) {
        fail(S, std::move(C), TrueSt.error());
        return;
      }
      uint64_t TWall = 0, FSeq0 = 0, FWall0 = 0;
      uint8_t TLayer = 0, TVerd = 0, FLayer = 0, FVerd = 0;
      if (JOn) {
        TWall = QA.CumWallNs - TWall0;
        if (QA.Seq != TSeq0) {
          TLayer = QA.Layer;
          TVerd = QA.Verdict;
        }
        FSeq0 = QA.Seq;
        FWall0 = QA.CumWallNs;
      }
      std::optional<St> FalseSt;
      if (CondF) {
        Result<std::optional<St>> FS = C.State.assumeValue(*CondF);
        if (FS)
          FalseSt = std::move(*FS);
        // An error evaluating ¬e after e evaluated cleanly cannot happen
        // (Not of a Bool); a failed assume is simply an infeasible branch.
      }
      uint64_t FWall = 0;
      if (JOn) {
        FWall = QA.CumWallNs - FWall0;
        if (QA.Seq != FSeq0) {
          FLayer = QA.Layer;
          FVerd = QA.Verdict;
        }
      }

      bool TookBoth = TrueSt->has_value() && FalseSt.has_value();
      if (TookBoth) {
        ++Stats.Branches;
        obs::TraceRecorder::record(obs::TraceEventKind::BranchTaken, 0, 2);
      }
      obs::BranchCoverage::recordBranch(
          C.CurProc.id(), static_cast<uint32_t>(C.I),
          (FalseSt.has_value() ? obs::BranchFalseBit : 0) |
              (TrueSt->has_value() ? obs::BranchTrueBit : 0));

      // Both-feasible is a 2-output step: allocate the children's journal
      // node ids in production order (false first), mirroring the
      // scheduler's PathId extension.
      uint64_t JChild = 0;
      if (JOn) {
        if (TookBoth)
          JChild = obs::journal::allocPathIds(2);
        obs::journal::emitBranch(
            C.JPath, C.JSteps, C.CurProc.id(), static_cast<uint32_t>(C.I),
            /*Side=*/0, FalseSt.has_value(),
            static_cast<obs::journal::Verdict>(FVerd),
            static_cast<obs::journal::VerdictLayer>(FLayer),
            FalseSt.has_value() ? journalPcSize(*FalseSt) - JPc0 : 0, FWall,
            TookBoth ? JChild : 0);
        obs::journal::emitBranch(
            C.JPath, C.JSteps, C.CurProc.id(), static_cast<uint32_t>(C.I),
            /*Side=*/1, TrueSt->has_value(),
            static_cast<obs::journal::Verdict>(TVerd),
            static_cast<obs::journal::VerdictLayer>(TLayer),
            TrueSt->has_value() ? journalPcSize(**TrueSt) - JPc0 : 0, TWall,
            TookBoth ? JChild + 1 : 0);
      }

      if (FalseSt.has_value()) {
        Config FC = C;
        FC.State = std::move(*FalseSt);
        if (TookBoth)
          FC.JPath = JChild;
        ++FC.I;
        S.cont(std::move(FC));
      }
      if (TrueSt->has_value()) {
        if (TookBoth)
          C.JPath = JChild + 1;
        bool Backjump = Command.Target <= C.I;
        if (Backjump && ++C.Backjumps > Opts.LoopBound) {
          if (JOn)
            obs::journal::emitPathEnd(
                C.JPath, C.JSteps, C.CurProc.id(),
                static_cast<uint32_t>(C.I),
                static_cast<uint8_t>(OutcomeKind::Bound),
                obs::journal::BudgetKind::Loop);
          finish(S, OutcomeKind::Bound,
                 St::errorValue("loop bound reached"), std::move(C.State));
          return;
        }
        C.State = std::move(**TrueSt);
        C.I = Command.Target;
        S.cont(std::move(C));
      }
      return;
    }

    case CmdKind::Call: {
      // [Call]: resolve callee, push frame, enter with store [y -> v].
      ++Stats.ProcCalls;
      Result<typename St::ValueT> Callee = C.State.evalExpr(Command.E);
      if (!Callee) {
        fail(S, std::move(C), Callee.error());
        return;
      }
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.Arg);
      if (!Arg) {
        fail(S, std::move(C), Arg.error());
        return;
      }
      std::optional<InternedString> F = C.State.asProcId(*Callee);
      if (!F) {
        fail(S, std::move(C), "call target is not a procedure");
        return;
      }
      const Proc *PP = P.find(*F);
      if (!PP) {
        fail(S, std::move(C),
             "call to unknown procedure '" + std::string(F->str()) + "'");
        return;
      }
      if (C.Stack.size() >= Opts.MaxCallDepth) {
        journalEnd(C, OutcomeKind::Bound, obs::journal::BudgetKind::Depth);
        finish(S, OutcomeKind::Bound,
               St::errorValue("call depth bound reached"),
               std::move(C.State));
        return;
      }
      if constexpr (SummarizableState<St>)
        if (!SummaryFp.empty() && trySummary(C, *F, PP, *Arg, S))
          return;
      // The frame records the *caller's* procedure, store, resume index
      // and loop budget, all restored on return.
      C.Stack.push_back(Frame<St>{C.CurProc, Command.X, C.State.getStore(),
                                  C.I + 1, C.Backjumps});
      typename St::StoreT Store;
      Store.set(PP->Param, Arg.take());
      C.State.setStore(std::move(Store));
      C.CurProc = *F;
      C.I = 0;
      C.Backjumps = 0;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::Return: {
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      if (C.Stack.empty()) {
        // [Top Return]: N(v).
        journalEnd(C, OutcomeKind::Return, obs::journal::BudgetKind::None);
        finish(S, OutcomeKind::Return, V.take(), std::move(C.State));
        return;
      }
      // [Return]: restore caller store, bind the return variable.
      Frame<St> F = std::move(C.Stack.back());
      C.Stack.pop_back();
      C.State.setStore(std::move(F.SavedStore));
      C.State.setVar(F.RetVar, V.take());
      C.CurProc = F.ProcName;
      C.I = F.RetIdx;
      C.Backjumps = F.SavedBackjumps;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::Fail: {
      // [Fail]: E(v).
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      journalEnd(C, OutcomeKind::Error, obs::journal::BudgetKind::None);
      finish(S, OutcomeKind::Error, V.take(), std::move(C.State));
      return;
    }

    case CmdKind::Vanish:
      journalEnd(C, OutcomeKind::Vanish, obs::journal::BudgetKind::None);
      finish(S, OutcomeKind::Vanish, St::errorValue("vanish"),
             std::move(C.State));
      return;

    case CmdKind::Action: {
      // [Action]: σ.(setVar_x ∘ α ∘ eval_e).
      ++Stats.ActionCalls;
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.E);
      if (!Arg) {
        fail(S, std::move(C), Arg.error());
        return;
      }
      const bool JOn = obs::journal::enabled();
      uint32_t JPc0 = JOn ? journalPcSize(C.State) : 0;
      Result<std::vector<StateBranch<St>>> Branches =
          C.State.execAction(Command.Action, *Arg);
      if (!Branches) {
        fail(S, std::move(C), Branches.error());
        return;
      }
      if (Branches->size() > 1) {
        Stats.Branches += Branches->size() - 1;
        obs::TraceRecorder::record(obs::TraceEventKind::BranchTaken, 0,
                                   static_cast<uint32_t>(Branches->size()));
      }
      // k >= 2 action outputs (error finishes included, production order)
      // are a multi-output step: allocate k child node ids, one per
      // branch, and record the action plus one Branch edge per output.
      const size_t NOut = Branches->size();
      uint64_t JChild = 0;
      if (JOn) {
        uint32_t NErr = 0;
        for (const StateBranch<St> &B : *Branches)
          NErr += B.IsError ? 1 : 0;
        if (NOut >= 2)
          JChild = obs::journal::allocPathIds(static_cast<uint32_t>(NOut));
        obs::journal::emitAction(C.JPath, C.JSteps, C.CurProc.id(),
                                 static_cast<uint32_t>(C.I),
                                 Command.Action.id(),
                                 static_cast<uint32_t>(NOut), NErr,
                                 NOut >= 2 ? JChild : 0);
      }
      uint32_t JIdx = 0;
      for (StateBranch<St> &B : *Branches) {
        uint64_t JP = NOut >= 2 ? JChild + JIdx : C.JPath;
        if (JOn && NOut >= 2)
          obs::journal::emitBranch(
              C.JPath, C.JSteps, C.CurProc.id(), static_cast<uint32_t>(C.I),
              static_cast<uint8_t>(JIdx > 255 ? 255 : JIdx), /*Taken=*/true,
              obs::journal::Verdict::None, obs::journal::VerdictLayer::None,
              journalPcSize(B.State) - JPc0, 0, JP);
        ++JIdx;
        if (B.IsError) {
          if (JOn)
            obs::journal::emitPathEnd(JP, C.JSteps, C.CurProc.id(),
                                      static_cast<uint32_t>(C.I),
                                      static_cast<uint8_t>(OutcomeKind::Error),
                                      obs::journal::BudgetKind::None);
          finish(S, OutcomeKind::Error, std::move(B.Ret),
                 std::move(B.State));
          continue;
        }
        Config NC = C;
        NC.State = std::move(B.State);
        NC.State.setVar(Command.X, std::move(B.Ret));
        NC.JPath = JP;
        ++NC.I;
        S.cont(std::move(NC));
      }
      return;
    }

    case CmdKind::USym: {
      // [uSym]: fresh uninterpreted symbol from the built-in allocator.
      typename St::ValueT V = C.State.allocUSym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::ISym: {
      // [iSym]: fresh interpreted symbol (logical variable / scripted
      // value).
      typename St::ValueT V = C.State.allocISym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      S.cont(std::move(C));
      return;
    }
    }
    fail(S, std::move(C), "unknown command kind");
  }

  /// Records a finished path: bumps the per-outcome counter, then hands
  /// the TraceResult to the sink. Public so exploration drivers (the
  /// parallel scheduler's budget cuts) account outcomes identically.
  template <typename Sink>
  void finish(Sink &S, OutcomeKind K, typename St::ValueT V, St State) {
    switch (K) {
    case OutcomeKind::Return: ++Stats.PathsFinished; break;
    case OutcomeKind::Error: ++Stats.PathsErrored; break;
    case OutcomeKind::Vanish: ++Stats.PathsVanished; break;
    case OutcomeKind::Bound: ++Stats.PathsBounded; break;
    }
    obs::TraceRecorder::record(obs::TraceEventKind::PathFinished,
                               static_cast<uint8_t>(K));
    ++obs::progressCounters().PathsFinished;
    S.done(K, std::move(V), std::move(State));
  }

public:
  /// Journal PathEnd emission for a config about to finish. Public so the
  /// parallel scheduler's budget cuts record their terminations too.
  static void journalEnd(const Config &C, OutcomeKind K,
                         obs::journal::BudgetKind Budget) {
    if (obs::journal::enabled())
      obs::journal::emitPathEnd(C.JPath, C.JSteps, C.CurProc.id(),
                                static_cast<uint32_t>(C.I),
                                static_cast<uint8_t>(K), Budget);
  }

private:
  /// Path-condition size for journal PC-delta accounting (0 for state
  /// models without a path condition — concrete runs).
  static uint32_t journalPcSize([[maybe_unused]] const St &S) {
    if constexpr (SummarizableState<St>)
      return static_cast<uint32_t>(S.pathCondition().conjuncts().size());
    else
      return 0;
  }

  template <typename Sink>
  void fail(Sink &S, Config C, const std::string &Msg) {
    journalEnd(C, OutcomeKind::Error, obs::journal::BudgetKind::None);
    finish(S, OutcomeKind::Error, St::errorValue(Msg), std::move(C.State));
  }

  //===--------------------------------------------------------------------//
  // Procedure summary cache (engine/summary/, DESIGN.md §4g)
  //===--------------------------------------------------------------------//

  /// Answers the call `Command.X := F(Arg)` at C from the process-wide
  /// summary store if F is eligible: looks up (fingerprint, Arg,
  /// arg-reachable PC slice), records the execution tree on a miss, and
  /// arms C for replay. Returns false (leaving C untouched) when F is
  /// ineligible or negative-cached — the caller executes for real.
  template <typename Sink>
  bool trySummary(Config &C, InternedString F, const Proc *PP,
                  const Expr &Arg, Sink &S) {
    auto It = SummaryFp.find(F.id());
    obs::SummaryGlobalStats &G = obs::summaryGlobalStats();
    if (It == SummaryFp.end()) {
      ++G.Ineligible;
      return false;
    }
    SummaryKey Key;
    Key.Fingerprint = It->second;
    Key.Arg = Arg;
    Key.Slice = summarySliceForArg(C.State.pathCondition(), Arg);

    ProcedureSummaryStore &Store = ProcedureSummaryStore::process();
    std::shared_ptr<const SummaryEntry> E = Store.lookup(Key);
    if (E && E->Negative) {
      ++G.Ineligible;
      return false;
    }
    bool WasHit = E != nullptr;
    if (E) {
      ++G.Hits;
    } else {
      ++G.Misses;
      // Record from a synthetic entry state: the caller's solver and
      // options, store [param -> Arg], path condition = the key slice —
      // so recorded conjuncts and values splice back verbatim.
      St EntrySt(typename St::MemT{}, &C.State.solver(),
                 &C.State.options());
      typename St::StoreT EntryStore;
      EntryStore.set(PP->Param, Arg);
      EntrySt.setStore(std::move(EntryStore));
      for (const Expr &Cj : Key.Slice.conjuncts())
        EntrySt.spliceConjunct(Cj);
      std::shared_ptr<SummaryEntry> Rec = summary::recordSummary<St>(
          std::move(EntrySt), *PP, F, Key.Fingerprint, Opts);
      if (!Rec) {
        ++G.RecordOverflows;
        auto Neg = std::make_shared<SummaryEntry>();
        Neg->ProcName = F;
        Neg->Fingerprint = Key.Fingerprint;
        Neg->Negative = true;
        Store.insert(Key, std::move(Neg));
        return false;
      }
      E = std::move(Rec);
      Store.insert(Key, E);
      // Fall through to replay: the recording call observes exactly what
      // every later hit observes.
    }
    // Journal: one Summary event per armed replay, sited at the callee
    // (the spliced summary's procedure) and the caller's Call index.
    if (obs::journal::enabled())
      obs::journal::emitSummary(C.JPath, C.JSteps, F.id(),
                                static_cast<uint32_t>(C.I), WasHit);
    C.Replay = std::move(E);
    C.ReplayNode = 0;
    S.cont(std::move(C));
    return true;
  }

  /// Splices one recorded conjunct batch into \p State and re-runs the
  /// feasibility decision re-execution's assumeValue made at that point:
  /// prune iff the full, updated path condition is trivially false or
  /// the solver refutes it. Identical conjuncts, identical query,
  /// identical point — so the verdict matches re-execution bit-exactly.
  /// Empty batches run the check too: the recorded delta being empty
  /// only means the callee added nothing new, not that the *caller's*
  /// condition was feasible — actions can strengthen it between checks,
  /// and the callee's assumes are where re-execution would notice.
  static bool spliceFeasible(St &State, const std::vector<Expr> &Batch) {
    for (const Expr &Cj : Batch)
      State.spliceConjunct(Cj);
    if (State.pathCondition().isTriviallyFalse())
      return false;
    return State.solver().maybeSat(State.pathCondition());
  }

  /// Replays one SummaryNode edge. The edge's single-feasible IfGoto
  /// batches (batch j >= 1, pairing with Cov[j-1]) are re-checked in
  /// order; batch 0 — the branch-in delta — was already spliced and
  /// checked by the parent split (and is empty for the root). A Split
  /// checks each child's branch-in batch right here, where step()'s
  /// IfGoto would have queried, then emits the surviving children false
  /// first, true second — step()'s emission order — so result order and
  /// PathId assignment survive replay. Dead edges vanish silently, like
  /// the assume-pruned original. Engine-layer stats and coverage events
  /// produced here are bit-identical to re-executing the body; only
  /// solver counters differ (that difference is the win).
  template <typename Sink> void replayStep(Config C, Sink &S) {
    obs::DetailSpan StepSpan(obs::SpanKind::Step);
    obs::QueryOriginScope QueryOrigin(C.CurProc.id(),
                                      static_cast<uint32_t>(C.I));
    const SummaryEntry &E = *C.Replay;
    const SummaryNode &N = E.Nodes[C.ReplayNode];
    obs::SummaryGlobalStats &G = obs::summaryGlobalStats();
    const bool JOn = obs::journal::enabled();
    obs::journal::QueryAttribution &QA = obs::journal::queryAttribution();

    for (size_t J = 1; J < N.Batches.size(); ++J) {
      uint32_t JPc0 = JOn ? journalPcSize(C.State) : 0;
      uint64_t JSeq0 = JOn ? QA.Seq : 0, JWall0 = JOn ? QA.CumWallNs : 0;
      bool Ok = spliceFeasible(C.State, N.Batches[J]);
      if (JOn) {
        // Mirror re-execution's two per-side events for this recorded
        // single-feasible IfGoto: the recorded-taken side carries the
        // splice query's attribution; the other side was infeasible at
        // record time (hence under the stronger caller condition too).
        uint8_t Layer = 0, Verd = 0;
        if (QA.Seq != JSeq0) {
          Layer = QA.Layer;
          Verd = QA.Verdict;
        }
        uint8_t TakenSide =
            (N.Cov[J - 1].Bits & obs::BranchTrueBit) ? 1 : 0;
        obs::journal::emitBranch(
            C.JPath, C.JSteps, E.ProcName.id(), N.Cov[J - 1].CmdIdx,
            TakenSide, Ok, static_cast<obs::journal::Verdict>(Verd),
            static_cast<obs::journal::VerdictLayer>(Layer),
            Ok ? journalPcSize(C.State) - JPc0 : 0, QA.CumWallNs - JWall0,
            0);
        obs::journal::emitBranch(C.JPath, C.JSteps, E.ProcName.id(),
                                 N.Cov[J - 1].CmdIdx, TakenSide ^ 1,
                                 /*Taken=*/false,
                                 obs::journal::Verdict::None,
                                 obs::journal::VerdictLayer::None, 0, 0, 0);
      }
      if (!Ok) {
        // Re-execution would prune at this IfGoto: the recorded-taken
        // side goes unsat under the caller's full condition and the
        // other side was already infeasible at record time. It executed
        // the commands up to and including the IfGoto and recorded a
        // no-feasible-sides coverage event, then emitted nothing.
        Stats.CmdsExecuted += N.Cov[J - 1].CmdsAt;
        obs::BranchCoverage::recordBranch(E.ProcName.id(),
                                          N.Cov[J - 1].CmdIdx, 0);
        ++G.ReplayInfeasible;
        return;
      }
      obs::BranchCoverage::recordBranch(E.ProcName.id(), N.Cov[J - 1].CmdIdx,
                                        N.Cov[J - 1].Bits);
    }
    Stats.CmdsExecuted += N.Cmds;

    switch (N.Kind) {
    case SummaryNodeKind::Split: {
      // The final Cov event is this split's IfGoto; its bits are
      // recomputed from the children's branch-in checks, which replicate
      // the two assumeValue queries step() would have issued here.
      uint32_t JSite = N.Cov.empty() ? 0 : N.Cov.back().CmdIdx;
      Config FC = C;
      FC.ReplayNode = N.FalseChild;
      uint32_t FPc0 = JOn ? journalPcSize(FC.State) : 0;
      uint64_t FSeq0 = JOn ? QA.Seq : 0, FWall0 = JOn ? QA.CumWallNs : 0;
      bool FOk = E.Nodes[N.FalseChild].Batches.empty() ||
                 spliceFeasible(FC.State,
                                E.Nodes[N.FalseChild].Batches.front());
      uint64_t FWall = JOn ? QA.CumWallNs - FWall0 : 0;
      uint8_t FLayer = 0, FVerd = 0;
      if (JOn && QA.Seq != FSeq0) {
        FLayer = QA.Layer;
        FVerd = QA.Verdict;
      }
      C.ReplayNode = N.TrueChild;
      uint32_t TPc0 = JOn ? journalPcSize(C.State) : 0;
      uint64_t TSeq0 = JOn ? QA.Seq : 0, TWall0 = JOn ? QA.CumWallNs : 0;
      bool TOk = E.Nodes[N.TrueChild].Batches.empty() ||
                 spliceFeasible(C.State,
                                E.Nodes[N.TrueChild].Batches.front());
      if (FOk && TOk) {
        ++Stats.Branches;
        obs::TraceRecorder::record(obs::TraceEventKind::BranchTaken, 0, 2);
      }
      if (JOn) {
        uint64_t TWall = QA.CumWallNs - TWall0;
        uint8_t TLayer = 0, TVerd = 0;
        if (QA.Seq != TSeq0) {
          TLayer = QA.Layer;
          TVerd = QA.Verdict;
        }
        uint64_t JChild = 0;
        if (FOk && TOk)
          JChild = obs::journal::allocPathIds(2);
        obs::journal::emitBranch(
            C.JPath, C.JSteps, E.ProcName.id(), JSite, 0, FOk,
            static_cast<obs::journal::Verdict>(FVerd),
            static_cast<obs::journal::VerdictLayer>(FLayer),
            FOk ? journalPcSize(FC.State) - FPc0 : 0, FWall,
            (FOk && TOk) ? JChild : 0);
        obs::journal::emitBranch(
            C.JPath, C.JSteps, E.ProcName.id(), JSite, 1, TOk,
            static_cast<obs::journal::Verdict>(TVerd),
            static_cast<obs::journal::VerdictLayer>(TLayer),
            TOk ? journalPcSize(C.State) - TPc0 : 0, TWall,
            (FOk && TOk) ? JChild + 1 : 0);
        if (FOk && TOk) {
          FC.JPath = JChild;
          C.JPath = JChild + 1;
        }
      }
      if (!N.Cov.empty())
        obs::BranchCoverage::recordBranch(
            E.ProcName.id(), N.Cov.back().CmdIdx,
            (FOk ? obs::BranchFalseBit : 0u) |
                (TOk ? obs::BranchTrueBit : 0u));
      if (!FOk)
        ++G.ReplayInfeasible;
      if (!TOk)
        ++G.ReplayInfeasible;
      if (FOk)
        S.cont(std::move(FC));
      if (TOk)
        S.cont(std::move(C));
      return;
    }
    case SummaryNodeKind::Dead:
      // Both-infeasible IfGoto: re-emit its zero-bit coverage event;
      // the path vanishes without an outcome, exactly like the
      // assume-pruned original emits nothing.
      if (JOn && !N.Cov.empty()) {
        obs::journal::emitBranch(C.JPath, C.JSteps, E.ProcName.id(),
                                 N.Cov.back().CmdIdx, 0, /*Taken=*/false,
                                 obs::journal::Verdict::None,
                                 obs::journal::VerdictLayer::None, 0, 0, 0);
        obs::journal::emitBranch(C.JPath, C.JSteps, E.ProcName.id(),
                                 N.Cov.back().CmdIdx, 1, /*Taken=*/false,
                                 obs::journal::Verdict::None,
                                 obs::journal::VerdictLayer::None, 0, 0, 0);
      }
      if (!N.Cov.empty())
        obs::BranchCoverage::recordBranch(E.ProcName.id(),
                                          N.Cov.back().CmdIdx,
                                          N.Cov.back().Bits);
      return;
    case SummaryNodeKind::Return: {
      ++G.ReplayedOutcomes;
      const Proc *Cur = P.find(C.CurProc);
      assert(Cur && "current procedure disappeared");
      const Cmd &Command = Cur->Body[C.I]; // still the Call command
      C.Replay.reset();
      C.State.setVar(Command.X, N.Val);
      ++C.I;
      S.cont(std::move(C));
      return;
    }
    case SummaryNodeKind::Error:
    case SummaryNodeKind::Vanish: {
      ++G.ReplayedOutcomes;
      OutcomeKind K = N.Kind == SummaryNodeKind::Error ? OutcomeKind::Error
                                                       : OutcomeKind::Vanish;
      journalEnd(C, K, obs::journal::BudgetKind::None);
      C.Replay.reset();
      finish(S, K, N.Val, std::move(C.State));
      return;
    }
    }
  }

  const Prog &P;
  const EngineOptions &Opts;
  ExecStats &Stats;
  /// Eligible procedures of P: interned name id -> content fingerprint.
  /// Empty when summaries are off or St is not summarizable.
  std::unordered_map<uint32_t, uint64_t> SummaryFp;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_INTERPRETER_H
