//===- solver/native/query_service.cpp ------------------------------------===//

#include "solver/native/query_service.h"

#include "obs/native_stats.h"
#include "solver/solver.h"

#include <algorithm>

using namespace gillian;
using namespace gillian::native;

namespace {
thread_local bool IsServiceWorker = false;
} // namespace

struct SolverService::Pending {
  PathCondition PC;
  const void *Owner = nullptr;
  SolveFn Fn;
  SolverStats *St = nullptr; ///< submitter's stats (alive while it waits)
  std::promise<SatResult> Prom;
  std::shared_future<SatResult> Fut;
  bool Started = false;
  bool Done = false;
};

SolverService &SolverService::process() {
  static SolverService S;
  return S;
}

bool SolverService::onWorkerThread() { return IsServiceWorker; }

void SolverService::ensureWorkers(unsigned MaxWorkers) {
  while (Workers.size() < MaxWorkers)
    Workers.emplace_back([this] { workerMain(); });
}

SatResult SolverService::checkSat(const void *Owner, const PathCondition &PC,
                                  unsigned MaxWorkers, const SolveFn &Fn,
                                  SolverStats &Stats) {
  obs::NativeGlobalStats &G = obs::nativeGlobalStats();
  // A service worker submitting to its own pool would deadlock it; a
  // disabled service has nowhere to run. Both solve inline.
  if (MaxWorkers == 0 || IsServiceWorker) {
    ++Stats.AsyncInlineRuns;
    ++G.AsyncInlineRuns;
    return Fn(PC);
  }

  std::shared_future<SatResult> Fut;
  {
    std::unique_lock<std::mutex> L(Mu);
    ensureWorkers(MaxWorkers);

    // Deduplicate against in-flight identical queries of the same owner:
    // sibling branches under parallel exploration often re-ask the exact
    // same canonical condition before the first answer lands.
    for (const PendingPtr &P : InFlight)
      if (!P->Done && P->Owner == Owner && P->PC.hash() == PC.hash() &&
          P->PC == PC) {
        ++Stats.AsyncDedupHits;
        ++G.AsyncDedupHits;
        Fut = P->Fut;
        break;
      }

    if (!Fut.valid()) {
      if (Queue.size() >= QueueCap) {
        ++Stats.AsyncInlineRuns;
        ++G.AsyncInlineRuns;
        L.unlock();
        return Fn(PC); // overflow: degrade to the inline path
      }
      PendingPtr P = std::make_shared<Pending>();
      P->PC = PC;
      P->Owner = Owner;
      P->Fn = Fn;
      P->St = &Stats;
      P->Fut = P->Prom.get_future().share();
      InFlight.push_back(P);
      Queue.push_back(P);
      ++Stats.AsyncSubmitted;
      ++G.AsyncSubmitted;
      Stats.AsyncQueueDepth.set(Queue.size());
      G.AsyncQueueDepth.set(Queue.size());
      WorkCV.notify_one();
      Fut = P->Fut;
    }
  }
  return Fut.get();
}

void SolverService::applySubsumption(const PendingPtr &Done, SatResult R) {
  if (R == SatResult::Unknown)
    return;
  obs::NativeGlobalStats &G = obs::nativeGlobalStats();
  for (const PendingPtr &E : InFlight) {
    if (E == Done || E->Done || E->Started || E->Owner != Done->Owner)
      continue;
    // Sat of a superset condition answers every subset it contains; Unsat
    // of a subset answers every superset (canonical conjunct containment).
    bool Resolves = (R == SatResult::Sat && Done->PC.contains(E->PC)) ||
                    (R == SatResult::Unsat && E->PC.contains(Done->PC));
    if (Resolves) {
      E->Done = true;
      E->Prom.set_value(R);
      ++E->St->AsyncSubsumedHits;
      ++G.AsyncSubsumedHits;
    }
  }
}

void SolverService::workerMain() {
  IsServiceWorker = true;
  obs::NativeGlobalStats &G = obs::nativeGlobalStats();
  std::unique_lock<std::mutex> L(Mu);
  while (true) {
    WorkCV.wait(L, [this] { return Stopping || !Queue.empty(); });
    if (Stopping)
      return;

    // Drain a small batch: subsumption-resolved entries are skipped, live
    // ones are solved back-to-back on this thread's warm sessions.
    std::vector<PendingPtr> Batch;
    while (!Queue.empty() && Batch.size() < BatchMax) {
      PendingPtr P = Queue.front();
      Queue.pop_front();
      if (P->Done)
        continue;
      P->Started = true;
      Batch.push_back(P);
    }
    G.AsyncQueueDepth.set(Queue.size());
    if (Batch.empty())
      continue;
    ++ActiveWorkers;
    if (Batch[0]->St)
      ++Batch[0]->St->AsyncBatches;
    ++G.AsyncBatches;

    for (const PendingPtr &P : Batch) {
      L.unlock();
      SatResult R = SatResult::Unknown;
      try {
        R = P->Fn(P->PC);
      } catch (...) {
        // A throwing solve must still resolve the future (Unknown keeps
        // the caller sound: it falls back / treats as possibly-Sat).
      }
      L.lock();
      P->Done = true;
      P->Prom.set_value(R);
      applySubsumption(P, R);
      InFlight.erase(std::remove_if(InFlight.begin(), InFlight.end(),
                                    [](const PendingPtr &E) {
                                      return E->Done;
                                    }),
                     InFlight.end());
    }

    --ActiveWorkers;
    if (ActiveWorkers == 0 && InFlight.empty())
      IdleCV.notify_all();
  }
}

void SolverService::flush() {
  std::unique_lock<std::mutex> L(Mu);
  IdleCV.wait(L, [this] { return ActiveWorkers == 0 && InFlight.empty(); });
  // Drop subsumption-resolved leftovers so queueDepth() reads 0 when idle.
  while (!Queue.empty() && Queue.front()->Done)
    Queue.pop_front();
  obs::nativeGlobalStats().AsyncQueueDepth.set(Queue.size());
}

size_t SolverService::queueDepth() {
  std::lock_guard<std::mutex> L(Mu);
  return Queue.size();
}

size_t SolverService::workers() {
  std::lock_guard<std::mutex> L(Mu);
  return Workers.size();
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}
