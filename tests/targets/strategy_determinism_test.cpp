//===- tests/targets/strategy_determinism_test.cpp ------------------------===//
//
// Path-selection strategies decide *when* a configuration runs, never
// *whether* or *what it computes*. On the evaluation workloads (MJS
// Buckets, MC Collections) every strategy at every worker count must
// produce the identical branch-trace-sorted result sequence — not just
// the same multiset, the same order — because the scheduler sorts
// results by branch trace before returning them.
//
// Also covered here: seeded random-path reproducibility under a path
// budget on a real suite, and the coverage-guided smoke property (full
// branch coverage on a Buckets structure within no larger a path budget
// than oldest-first needs).
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/coverage.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

/// Runs every `test_*` procedure of \p P under strategy \p S at \p Workers
/// and renders each finished path as "test|kind|value|path-condition" in
/// the order the scheduler returned it. SequentialFallback is disabled so
/// every configuration — including OldestFirst at one worker — goes
/// through the pool and shares its branch-trace result order.
template <typename M>
std::vector<std::string> orderedTraces(const Prog &P, SelectionStrategy S,
                                       uint32_t Workers,
                                       uint64_t MaxPaths = 0,
                                       uint64_t Seed = 0x9E3779B97F4A7C15ull) {
  EngineOptions Opts;
  Opts.Scheduler.Strategy = S;
  Opts.Scheduler.Workers = Workers;
  Opts.Scheduler.Seed = Seed;
  Opts.Scheduler.SequentialFallback = false;
  Opts.MaxPaths = MaxPaths;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  std::vector<std::string> Sigs;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    for (TraceResult<St> &R : *Traces)
      Sigs.push_back(T + "|" + std::string(outcomeKindName(R.Kind)) + "|" +
                     R.Val.toString() + "|" +
                     R.Final.pathCondition().toString());
  }
  return Sigs;
}

constexpr SelectionStrategy AllStrategies[] = {
    SelectionStrategy::OldestFirst, SelectionStrategy::RandomPath,
    SelectionStrategy::SubtreeSize, SelectionStrategy::CoverageGuided};

template <typename M>
void expectStrategyIndependent(const Prog &P, std::string_view Name) {
  const std::vector<std::string> Baseline =
      orderedTraces<M>(P, SelectionStrategy::OldestFirst, 1);
  EXPECT_FALSE(Baseline.empty()) << Name;
  for (SelectionStrategy S : AllStrategies)
    for (uint32_t Workers : {1u, 2u, 8u}) {
      if (S == SelectionStrategy::OldestFirst && Workers == 1)
        continue; // that is the baseline itself
      EXPECT_EQ(Baseline, orderedTraces<M>(P, S, Workers))
          << Name << " strategy=" << strategyName(S)
          << " workers=" << Workers;
    }
}

/// Smallest geometric path budget (per test procedure) under which
/// strategy \p S drives branch coverage to \p Achievable on \p P;
/// UINT64_MAX if no budget up to 4096 suffices.
template <typename M>
uint64_t minimalBudgetForCoverage(const Prog &P, SelectionStrategy S,
                                  uint64_t Achievable) {
  for (uint64_t B = 1; B <= 4096; B *= 2) {
    obs::BranchCoverage::instance().reset();
    orderedTraces<M>(P, S, /*Workers=*/1, /*MaxPaths=*/B);
    uint64_t Covered = 0, Total = 0;
    obs::BranchCoverage::instance().totals(Covered, Total);
    if (Covered >= Achievable)
      return B;
  }
  return UINT64_MAX;
}

Result<Prog> compileBuckets(const BucketsSuite &S) {
  return mjs::compileMjsSource(std::string(bucketsLibrary()) + "\n" +
                               std::string(S.Source));
}

/// The strategy × workers product over every suite would multiply the
/// already-thorough parallel_determinism_test by 12; two structures per
/// language keep this binary fast while still crossing both memory
/// models. (Worker-count invariance over *all* suites stays covered by
/// parallel_determinism_test.)
std::vector<BucketsSuite> bucketsSubset() {
  const std::vector<BucketsSuite> &All = bucketsSuites();
  return {All.begin(), All.begin() + std::min<size_t>(2, All.size())};
}

std::vector<CollectionsSuite> collectionsSubset() {
  const std::vector<CollectionsSuite> &All = collectionsSuites();
  return {All.begin(), All.begin() + std::min<size_t>(2, All.size())};
}

class BucketsStrategyTest : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsStrategyTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

} // namespace

TEST_P(BucketsStrategyTest, ResultSequenceIsStrategyInvariant) {
  const BucketsSuite &S = GetParam();
  Result<Prog> P = compileBuckets(S);
  ASSERT_TRUE(P.ok()) << P.error();
  expectStrategyIndependent<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    TwoStructures, BucketsStrategyTest,
    ::testing::ValuesIn(bucketsSubset()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsStrategyTest, ResultSequenceIsStrategyInvariant) {
  const CollectionsSuite &S = GetParam();
  Result<Prog> P = mc::compileMcSource(std::string(collectionsLibrary()) +
                                       "\n" + std::string(S.Source));
  ASSERT_TRUE(P.ok()) << P.error();
  expectStrategyIndependent<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    TwoStructures, CollectionsStrategyTest,
    ::testing::ValuesIn(collectionsSubset()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(StrategySeeding, RandomPathIsReproducibleOnBuckets) {
  // Under a path budget the seed decides *which* paths finish; the same
  // seed must pick the same ones, a different seed is free to differ.
  Result<Prog> P = compileBuckets(bucketsSuites().front());
  ASSERT_TRUE(P.ok()) << P.error();
  auto Run = [&](uint64_t Seed) {
    return orderedTraces<mjs::MjsSMem>(*P, SelectionStrategy::RandomPath,
                                       /*Workers=*/1, /*MaxPaths=*/4, Seed);
  };
  EXPECT_EQ(Run(42), Run(42));
}

TEST(StrategyCoverage, CoverageGuidedNeedsNoMorePathsThanOldestFirst) {
  // Target the bst structure: the front suite (array) reaches full
  // coverage at budget 1 for every strategy, leaving the property
  // nothing to distinguish; bst needs several paths per procedure.
  const std::vector<BucketsSuite> &All = bucketsSuites();
  auto It = std::find_if(All.begin(), All.end(), [](const BucketsSuite &S) {
    return S.Name == "bst";
  });
  ASSERT_NE(It, All.end());
  Result<Prog> P = compileBuckets(*It);
  ASSERT_TRUE(P.ok()) << P.error();

  // What full coverage means for this program: whatever an unbounded run
  // reaches (some outcomes may be statically infeasible).
  obs::BranchCoverage::instance().reset();
  orderedTraces<mjs::MjsSMem>(*P, SelectionStrategy::OldestFirst, 1);
  uint64_t Achievable = 0, Total = 0;
  obs::BranchCoverage::instance().totals(Achievable, Total);
  ASSERT_GT(Achievable, 0u);

  uint64_t Oldest = minimalBudgetForCoverage<mjs::MjsSMem>(
      *P, SelectionStrategy::OldestFirst, Achievable);
  uint64_t Guided = minimalBudgetForCoverage<mjs::MjsSMem>(
      *P, SelectionStrategy::CoverageGuided, Achievable);
  ASSERT_NE(Oldest, UINT64_MAX);
  ASSERT_NE(Guided, UINT64_MAX);
  EXPECT_LE(Guided, Oldest);
  obs::BranchCoverage::instance().reset(); // leave no residue for others
}

