//===- obs/progress.cpp ---------------------------------------------------===//

#include "obs/progress.h"

using namespace gillian::obs;

WorkerDepthGauges &WorkerDepthGauges::instance() {
  static WorkerDepthGauges G;
  return G;
}
