file(REMOVE_RECURSE
  "CMakeFiles/gillian_while.dir/compiler.cpp.o"
  "CMakeFiles/gillian_while.dir/compiler.cpp.o.d"
  "CMakeFiles/gillian_while.dir/memory.cpp.o"
  "CMakeFiles/gillian_while.dir/memory.cpp.o.d"
  "CMakeFiles/gillian_while.dir/parser.cpp.o"
  "CMakeFiles/gillian_while.dir/parser.cpp.o.d"
  "libgillian_while.a"
  "libgillian_while.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_while.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
