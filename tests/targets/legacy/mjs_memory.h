//===- tests/targets/legacy/mjs_memory.h ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/mjs/memory.h as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::mjs -> gillian::legacy.
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- mjs/memory.h - MJS memories (§4.1) ----------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JS memory models of §4.1: a memory is a pair of a heap and a
/// metadata table. Concretely, h : U × S ⇀ V and m : U ⇀ V. Symbolically
/// — and this is what distinguishes JS from While — *both* the location
/// and the property name are logical expressions: ĥ : Ê × Ê ⇀ Ê, because
/// JS has computed property access. The symbolic getProp implements the
/// paper's branching [SGetProp] rule: execution may branch on the looked-
/// up (location, property) pair equalling any stored pair permitted by
/// the path condition, with the branch condition el = e'l ∧ ep = e'p
/// passed back to the state.
///
/// The action set (eight actions): newObj, delObj, getProp, setProp,
/// delProp, hasProp, getMeta, setMeta. Reading an absent property of an
/// existing object yields $undefined (JS semantics); touching a deleted
/// or never-allocated object is a memory fault (TypeError analogue).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_LEGACY_MJS_MEMORY_H
#define GILLIAN_LEGACY_MJS_MEMORY_H

#include "engine/state.h"
#include "gil/expr.h"
#include "solver/model.h"
#include "support/cow_map.h"

namespace gillian::legacy {

// Action names.
InternedString actNewObj();
InternedString actDelObj();
InternedString actGetProp();
InternedString actSetProp();
InternedString actDelProp();
InternedString actHasProp();
InternedString actGetMeta();
InternedString actSetMeta();

/// The `undefined` and `null` constants (uninterpreted symbols, §2.1).
Value jsUndefined();
Value jsNull();

/// Concrete JS memory: heap + metadata table.
class MjsCMem {
public:
  using PropMap = CowMap<InternedString, Value>;

  Result<Value> execAction(InternedString Act, const Value &Arg);

  const CowMap<InternedString, PropMap> &heap() const { return Heap; }
  const CowMap<InternedString, Value> &metadata() const { return Meta; }
  bool isDeleted(InternedString Loc) const { return Deleted.contains(Loc); }

  // Construction hooks for tests and memory interpretation.
  void defineObject(InternedString Loc, Value MetaVal);
  void setProp(InternedString Loc, InternedString P, Value V);
  void setMetaValue(InternedString Loc, Value V) { Meta.set(Loc, std::move(V)); }
  void markDeleted(InternedString Loc) { Deleted.set(Loc, true); }

  std::string toString() const;

private:
  Result<InternedString> liveLoc(const Value &Loc, const char *What) const;

  CowMap<InternedString, PropMap> Heap;
  CowMap<InternedString, Value> Meta;
  CowMap<InternedString, bool> Deleted;
};

/// Symbolic JS memory: ĥ : Ê × Ê ⇀ Ê plus metadata and deletion tracking.
class MjsSMem {
public:
  using PropMap = CowMap<Expr, Expr, ExprOrdering>;
  using ObjMap = CowMap<Expr, PropMap, ExprOrdering>;

  Result<std::vector<SymActionBranch<MjsSMem>>>
  execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
             Solver &S) const;

  const ObjMap &heap() const { return Heap; }
  const CowMap<Expr, Expr, ExprOrdering> &metadata() const { return Meta; }
  const CowMap<Expr, bool, ExprOrdering> &deleted() const { return Deleted; }

  void defineObject(const Expr &Loc, Expr MetaVal);
  void setProp(const Expr &Loc, const Expr &P, Expr V);

  std::string toString() const;

private:
  struct Ctx; // per-action helper (defined in memory.cpp)

  ObjMap Heap;
  CowMap<Expr, Expr, ExprOrdering> Meta;
  CowMap<Expr, bool, ExprOrdering> Deleted;
};

static_assert(ConcreteMemoryModel<MjsCMem>);
static_assert(SymbolicMemoryModel<MjsSMem>);

/// Memory interpretation I_JS: evaluates locations, property names and
/// values under ε (Def 3.7 instance for the JS memory).
Result<MjsCMem> interpretMemory(const Model &Eps, const MjsSMem &SMem);

} // namespace gillian::legacy

#endif // GILLIAN_LEGACY_MJS_MEMORY_H
