//===- mjs/runtime.cpp ----------------------------------------------------===//

#include "mjs/runtime.h"

#include "gil/parser.h"

#include <cassert>

using namespace gillian;
using namespace gillian::mjs;

namespace {

/// The runtime, in textual GIL. Labels are verified by the parser.
constexpr std::string_view RuntimeGil = R"(
// JS truthiness: false, +-0, NaN, "", undefined and null are falsy.
proc __mjs_truthy(v) {
  0: ifgoto (typeof(v) == ^Bool) 5;
  1: ifgoto (typeof(v) == ^Num) 6;
  2: ifgoto (typeof(v) == ^Str) 7;
  3: ifgoto (v == $undefined || v == $null) 8;
  4: return true;
  5: return v;
  6: return !(v == 0.0 || v == -0.0 || v == nan);
  7: return !(slen(v) == 0);
  8: return false;
}

// JS `+`: numeric addition or string concatenation; anything else is a
// TypeError in MJS (stricter than ES5's ToPrimitive cascade).
proc __mjs_add(args) {
  0: a := l_nth(args, 0);
  1: b := l_nth(args, 1);
  2: ifgoto (typeof(a) == ^Num && typeof(b) == ^Num) 5;
  3: ifgoto (typeof(a) == ^Str && typeof(b) == ^Str) 6;
  4: fail "TypeError: + requires two numbers or two strings";
  5: return a + b;
  6: return a @+ b;
}

// JS typeof (objects, including null, answer "object").
proc __mjs_typeof(v) {
  0: ifgoto (typeof(v) == ^Num) 5;
  1: ifgoto (typeof(v) == ^Str) 6;
  2: ifgoto (typeof(v) == ^Bool) 7;
  3: ifgoto (v == $undefined) 8;
  4: return "object";
  5: return "number";
  6: return "string";
  7: return "boolean";
  8: return "undefined";
}

// Property-key conversion: strings pass through, numbers render JS-style
// ("0", not "0.0"); anything else is a TypeError in MJS.
proc __mjs_topropname(v) {
  0: ifgoto (typeof(v) == ^Str) 4;
  1: ifgoto (typeof(v) == ^Num) 3;
  2: fail "TypeError: invalid property key";
  3: return num_to_str(v);
  4: return v;
}
)";

} // namespace

std::string_view gillian::mjs::runtimeSource() { return RuntimeGil; }

void gillian::mjs::linkRuntime(Prog &P) {
  static const Prog *Runtime = [] {
    Result<Prog> R = parseGilProg(RuntimeGil);
    assert(R.ok() && "MJS runtime failed to parse");
    if (!R.ok())
      return new Prog();
    return new Prog(R.take());
  }();
  for (const auto &[Name, Proc] : Runtime->procs())
    P.add(Proc);
}
