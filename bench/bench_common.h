//===- bench/bench_common.h - Shared bench-driver plumbing ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The argument parsing and cold-start idiom shared by the five bench
/// drivers. Every driver accepts:
///
///   --workers=N / --workers N   worker count of the parallel
///                               configurations (default 4, the acceptance
///                               target's core count)
///   --json / --no-json          emit / suppress the trailing
///                               machine-readable JSON line (default on)
///
/// Arguments the parser consumes are removed from argv, so drivers built
/// on google-benchmark can hand the remainder to benchmark::Initialize.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_BENCH_BENCH_COMMON_H
#define GILLIAN_BENCH_BENCH_COMMON_H

#include "solver/incremental_session.h"
#include "solver/simplifier.h"
#include "solver/solver_cache.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gillian::bench {

struct BenchArgs {
  uint32_t Workers = 4; ///< worker count of the parallel configurations
  bool Json = true;     ///< emit the trailing machine-readable JSON line
};

/// Parses (and strips from argv) the shared driver arguments; exits with a
/// diagnostic on a malformed value.
inline BenchArgs parseBenchArgs(int &argc, char **argv) {
  BenchArgs Args;
  auto parseWorkers = [](const char *Value) -> uint32_t {
    char *End = nullptr;
    unsigned long N = std::strtoul(Value, &End, 10);
    if (End == Value || *End != '\0' || N == 0 || N > 1024) {
      std::fprintf(stderr, "invalid --workers value: %s\n", Value);
      std::exit(2);
    }
    return static_cast<uint32_t>(N);
  };
  int Out = 1;
  for (int In = 1; In < argc; ++In) {
    const char *A = argv[In];
    if (std::strncmp(A, "--workers=", 10) == 0) {
      Args.Workers = parseWorkers(A + 10);
    } else if (std::strcmp(A, "--workers") == 0) {
      if (In + 1 >= argc) {
        std::fprintf(stderr, "--workers needs a value\n");
        std::exit(2);
      }
      Args.Workers = parseWorkers(argv[++In]);
    } else if (std::strcmp(A, "--json") == 0) {
      Args.Json = true;
    } else if (std::strcmp(A, "--no-json") == 0) {
      Args.Json = false;
    } else {
      argv[Out++] = argv[In];
    }
  }
  argc = Out;
  argv[argc] = nullptr;
  return Args;
}

/// A genuinely cold solver for the next timed configuration: clears the
/// process-wide result cache, the sharded simplifier memo, and every
/// thread's incremental Z3 sessions + encoding memos (runSuite feeds all
/// three, which would otherwise warm every later row).
inline void coldStart() {
  resetSimplifyCache();
  SolverCache::process().clear();
  IncrementalSessionPool::invalidateAll();
  IncrementalSessionPool::forThread().reset();
}

inline double seconds(std::chrono::steady_clock::time_point From) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       From)
      .count();
}

} // namespace gillian::bench

#endif // GILLIAN_BENCH_BENCH_COMMON_H
