//===- obs/counters.h - Self-registering counter sets ----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter registry of the observability core (DESIGN.md §4c).
///
/// A *counter set* is a plain struct whose members are `Counter`s, each
/// declaring its JSON name and category inline:
///
///   struct ExecStats : obs::CounterSet<ExecStats> {
///     obs::Counter CmdsExecuted{*this, "cmds_executed", "engine"};
///     ...
///   };
///
/// The schema (name, category, byte offset of every counter) is built
/// exactly once per set type, by constructing one probe instance under a
/// thread-local build scope; after that, copy / merge / delta / JSON
/// emission are generic walks over the schema. Adding a counter is ONE
/// line — the declaration — where the previous design needed four edit
/// sites (field, forEach entry, JSON format string, JSON argument).
///
/// Counters are relaxed atomics: one set instance can be shared by every
/// worker of the parallel exploration scheduler and still sum exactly.
/// Copies and arithmetic read/write relaxed; they are aggregation
/// conveniences for quiescent points, not cross-thread synchronisation.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_COUNTERS_H
#define GILLIAN_OBS_COUNTERS_H

#include "obs/json_writer.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <typeinfo>
#include <vector>

namespace gillian::obs {

/// What a registered field *means*, which decides how the generic
/// operations and exporters treat it:
///  * Counter — monotone event count; merge() sums across instances and
///    deltaSince() subtracts (Prometheus type "counter").
///  * Gauge — sampled last-value (frontier size, queue depth); summation
///    across threads or snapshots is meaningless, so merge() skips gauges
///    and deltaSince() carries the current value through (Prometheus type
///    "gauge").
enum class FieldKind : uint8_t { Counter, Gauge };

/// One registered field of a set: its JSON key, its category (grouping
/// key of the unified stats exporter), its byte offset within the owning
/// struct, and its kind.
struct CounterField {
  const char *Name;
  const char *Category;
  size_t Offset;
  FieldKind Kind;
};

/// The per-set-type field list, built once by a probe construction.
class CounterSchema {
public:
  void add(const char *Name, const char *Category, size_t Offset,
           FieldKind Kind) {
    Fields.push_back({Name, Category, Offset, Kind});
  }
  const std::vector<CounterField> &fields() const { return Fields; }

private:
  std::vector<CounterField> Fields;
};

namespace detail {
/// Non-null only while a probe instance is being constructed to build a
/// schema; carries the type being probed so counters of any *other*
/// nested set type do not mis-register.
struct SchemaBuildScope {
  CounterSchema *Schema;
  const std::type_info *Type;
};
SchemaBuildScope *&activeSchemaBuild();
} // namespace detail

template <typename Derived> class CounterSet;

/// A relaxed atomic uint64 that self-registers into its owning set's
/// schema during the one-time probe construction. Drop-in for the
/// previous raw `std::atomic<uint64_t>` fields: supports ++, += N,
/// fetch_add, load/store, and implicit conversion to uint64_t.
class Counter {
public:
  template <typename Owner>
  Counter(CounterSet<Owner> &Set, const char *Name, const char *Category) {
    registerField(Set, Name, Category, FieldKind::Counter);
  }

  Counter(const Counter &O) : V(O.load()) {}
  Counter &operator=(const Counter &O) {
    store(O.load());
    return *this;
  }

  uint64_t load(std::memory_order MO = std::memory_order_relaxed) const {
    return V.load(MO);
  }
  void store(uint64_t N,
             std::memory_order MO = std::memory_order_relaxed) {
    V.store(N, MO);
  }
  uint64_t fetch_add(uint64_t N,
                     std::memory_order MO = std::memory_order_relaxed) {
    return V.fetch_add(N, MO);
  }

  Counter &operator++() {
    fetch_add(1);
    return *this;
  }
  void operator++(int) { fetch_add(1); }
  Counter &operator+=(uint64_t N) {
    fetch_add(N);
    return *this;
  }

  operator uint64_t() const { return load(); }

protected:
  /// For subclasses (Gauge) and standalone instances that never register.
  Counter() = default;

  template <typename Owner>
  void registerField(CounterSet<Owner> &Set, const char *Name,
                     const char *Category, FieldKind Kind) {
    detail::SchemaBuildScope *B = detail::activeSchemaBuild();
    if (B && *B->Type == typeid(Owner)) {
      auto *Base = reinterpret_cast<const char *>(
          static_cast<const Owner *>(&Set));
      B->Schema->add(Name, Category,
                     static_cast<size_t>(
                         reinterpret_cast<const char *>(this) - Base),
                     Kind);
    }
  }

private:
  std::atomic<uint64_t> V{0};
};

/// A sampled last-value slot (frontier size, per-worker deque depth, pool
/// occupancy). Same storage and relaxed-atomic access as Counter, but it
/// registers as FieldKind::Gauge, so the generic set operations treat it
/// with last-value semantics: merge()/addFrom() leave the destination's
/// gauges untouched (cross-thread summation of instantaneous values is
/// meaningless), and deltaSince() carries the newer snapshot's value
/// through unchanged. A default-constructed Gauge is standalone
/// (unregistered) — used for dynamically-sized families like the
/// per-worker depth array, which cannot be static schema fields.
class Gauge : public Counter {
public:
  Gauge() = default;
  template <typename Owner>
  Gauge(CounterSet<Owner> &Set, const char *Name, const char *Category) {
    registerField(Set, Name, Category, FieldKind::Gauge);
  }

  /// Last-value write (alias of store, named for call-site clarity).
  void set(uint64_t V) { store(V); }

  /// Relative updates for gauges that mirror an external atomic counter
  /// (the exploration pool's frontier size): increments and decrements
  /// are commutative atomic RMWs, so concurrent updates can never
  /// publish a stale absolute value the way racing set(load ± 1) pairs
  /// can — after balanced add/sub traffic the gauge reads exactly the
  /// mirrored count.
  void add(uint64_t N) { fetch_add(N); }
  void sub(uint64_t N) { fetch_add(~N + 1); } // two's-complement -N
};

/// CRTP base providing the schema and the generic operations. The Derived
/// struct keeps its public field names (call sites and tests are
/// untouched) and forwards its copy/merge/delta operators here.
template <typename Derived> class CounterSet {
public:
  /// The field list of Derived; built on first use by constructing one
  /// probe instance (thread-safe via the magic static).
  static const CounterSchema &schema() {
    static const CounterSchema S = buildSchema();
    return S;
  }

  void copyFrom(const Derived &O) {
    for (const CounterField &F : schema().fields())
      at(F.Offset).store(O.at(F.Offset).load());
  }
  void addFrom(const Derived &O) {
    for (const CounterField &F : schema().fields())
      if (F.Kind == FieldKind::Counter)
        at(F.Offset).fetch_add(O.at(F.Offset).load());
    // Gauges are sampled last-values: summing two instantaneous readings
    // is meaningless, so merge() leaves the destination's gauges alone.
  }
  /// Counter-wise `*this - Earlier` (for before/after snapshots). Gauges
  /// carry the *newer* snapshot's value through unchanged — the last
  /// sampled value is the meaningful "delta" of a last-value slot.
  Derived deltaSince(const Derived &Earlier) const {
    Derived D;
    for (const CounterField &F : schema().fields())
      D.at(F.Offset).store(F.Kind == FieldKind::Gauge
                               ? at(F.Offset).load()
                               : at(F.Offset).load() -
                                     Earlier.at(F.Offset).load());
    return D;
  }
  void resetCounters() {
    for (const CounterField &F : schema().fields())
      at(F.Offset).store(0);
  }

  /// Emits every registered counter as `"name":value` fields into an
  /// already-open JSON object. The single schema walk is what retires the
  /// hand-maintained per-struct format strings.
  void countersInto(JsonWriter &W) const {
    for (const CounterField &F : schema().fields())
      W.field(F.Name, at(F.Offset).load());
  }

  /// Generic read-only walk: \p Fn(const CounterField &, uint64_t value)
  /// for every registered field. The hook the generic exporters (JSON,
  /// Prometheus text exposition) are built on.
  template <typename Fn> void forEachField(Fn &&F) const {
    for (const CounterField &Fd : schema().fields())
      F(Fd, at(Fd.Offset).load());
  }

  /// Convenience: the full `{...}` object (counters only; derived rates
  /// are appended by the owning type's JSON entry point).
  std::string countersJson() const {
    JsonWriter W;
    W.beginObject();
    countersInto(W);
    W.endObject();
    return W.take();
  }

protected:
  CounterSet() = default;
  CounterSet(const CounterSet &) = default;
  CounterSet &operator=(const CounterSet &) = default;

private:
  Counter &at(size_t Off) {
    return *reinterpret_cast<Counter *>(reinterpret_cast<char *>(self()) +
                                        Off);
  }
  const Counter &at(size_t Off) const {
    return *reinterpret_cast<const Counter *>(
        reinterpret_cast<const char *>(self()) + Off);
  }
  Derived *self() { return static_cast<Derived *>(this); }
  const Derived *self() const { return static_cast<const Derived *>(this); }

  static CounterSchema buildSchema() {
    CounterSchema S;
    detail::SchemaBuildScope Scope{&S, &typeid(Derived)};
    detail::SchemaBuildScope *&Active = detail::activeSchemaBuild();
    detail::SchemaBuildScope *Prev = Active;
    Active = &Scope;
    {
      Derived Probe; // Counter ctors register into Scope
      (void)Probe;
    }
    Active = Prev;
    return S;
  }

  friend class Counter;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_COUNTERS_H
