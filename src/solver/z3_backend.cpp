//===- solver/z3_backend.cpp ----------------------------------------------===//

#include "solver/z3_backend.h"

#ifdef GILLIAN_HAVE_Z3

#include <z3++.h>

#include <cmath>
#include <map>
#include <string>

using namespace gillian;

namespace {

/// Thrown (internally only) when a subterm has no Z3 encoding; caught at
/// conjunct granularity so the conjunct is dropped rather than the query
/// aborted.
struct Unsupported {
  std::string What;
};

/// Encodes GIL expressions of one query into Z3 terms.
class Encoder {
public:
  Encoder(z3::context &Ctx, const TypeEnv &Types) : Ctx(Ctx), Types(Types) {}

  /// The inferred GIL type of \p E; throws Unsupported when undetermined.
  GilType typeOf(const Expr &E) {
    auto T = staticType(E, Types);
    if (!T)
      throw Unsupported{"untypeable term " + E.toString()};
    return *T;
  }

  z3::expr var(InternedString Name, GilType T) {
    std::string N(Name.str());
    switch (T) {
    case GilType::Int: return Ctx.int_const(N.c_str());
    case GilType::Num: return Ctx.real_const(N.c_str());
    case GilType::Bool: return Ctx.bool_const(N.c_str());
    case GilType::Str: return Ctx.constant(N.c_str(), Ctx.string_sort());
    case GilType::Sym:
    case GilType::Type:
    case GilType::Proc:
      // Tagged-integer encodings share the Int sort; tags never mix
      // because equality across differently-typed terms folds to false
      // before reaching Z3.
      return Ctx.int_const(N.c_str());
    case GilType::List:
      throw Unsupported{"list-typed logical variable " + N};
    }
    throw Unsupported{"bad type"};
  }

  z3::expr lit(const Value &V) {
    switch (V.type()) {
    case GilType::Int:
      return Ctx.int_val(static_cast<int64_t>(V.asInt()));
    case GilType::Num: {
      double D = V.asNum();
      if (std::isnan(D) || std::isinf(D))
        throw Unsupported{"non-finite Num literal"};
      // Exact binary-to-rational conversion.
      int Exp = 0;
      double Frac = std::frexp(D, &Exp); // D = Frac * 2^Exp, |Frac| in [0.5,1)
      int64_t Mant = static_cast<int64_t>(std::ldexp(Frac, 53));
      Exp -= 53;
      z3::expr M = Ctx.real_val(Mant);
      z3::expr Two = Ctx.real_val(2);
      z3::expr Scale = Ctx.real_val(1);
      for (int I = 0; I < std::abs(Exp); ++I)
        Scale = Scale * Two;
      return Exp >= 0 ? M * Scale : M / Scale;
    }
    case GilType::Bool:
      return Ctx.bool_val(V.asBool());
    case GilType::Str:
      return Ctx.string_val(std::string(V.asStr().str()));
    case GilType::Sym:
      SymByCode[V.asSym().id()] = V.asSym();
      return Ctx.int_val(static_cast<int64_t>(V.asSym().id()));
    case GilType::Type:
      return Ctx.int_val(static_cast<int64_t>(V.asType()));
    case GilType::Proc:
      return Ctx.int_val(static_cast<int64_t>(V.asProc().id()));
    case GilType::List:
      throw Unsupported{"list literal in SMT position"};
    }
    throw Unsupported{"bad literal"};
  }

  /// Widens an Int term to Real when the other operand is Num.
  z3::expr widen(z3::expr E, GilType From, GilType To) {
    if (From == GilType::Int && To == GilType::Num)
      return z3::to_real(E);
    return E;
  }

  z3::expr encode(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Lit:
      return lit(E.litValue());
    case ExprKind::LVar:
      return var(E.varName(), Types.lookup(E.varName()).value_or(GilType::Int));
    case ExprKind::PVar:
      throw Unsupported{"program variable in pure formula"};
    case ExprKind::List:
      throw Unsupported{"list construction in SMT position"};
    case ExprKind::UnOp:
      return encodeUnOp(E);
    case ExprKind::BinOp:
      return encodeBinOp(E);
    }
    throw Unsupported{"bad expression"};
  }

  const std::map<uint32_t, InternedString> &symbolCodes() const {
    return SymByCode;
  }

private:
  z3::expr encodeUnOp(const Expr &E) {
    const Expr &C = E.child(0);
    switch (E.unOpKind()) {
    case UnOpKind::Neg:
      return -encode(C);
    case UnOpKind::Not:
      return !encode(C);
    case UnOpKind::ToNum: {
      GilType T = typeOf(C);
      z3::expr X = encode(C);
      return T == GilType::Int ? z3::to_real(X) : X;
    }
    case UnOpKind::ToInt: {
      GilType T = typeOf(C);
      z3::expr X = encode(C);
      if (T == GilType::Int)
        return X;
      // GIL to_int truncates toward zero; SMT real2int floors.
      auto Real2Int = [&](const z3::expr &R) {
        Z3_ast A = Z3_mk_real2int(Ctx, R);
        Ctx.check_error();
        return z3::expr(Ctx, A);
      };
      z3::expr F = Real2Int(X);
      return z3::ite(X >= Ctx.real_val(0), F, -Real2Int(-X));
    }
    case UnOpKind::StrLen: {
      z3::expr X = encode(C);
      return X.length();
    }
    case UnOpKind::TypeOf: {
      // Only reachable for terms whose type is statically known (other
      // cases fold earlier or bail).
      GilType T = typeOf(C);
      return Ctx.int_val(static_cast<int64_t>(T));
    }
    default:
      throw Unsupported{std::string("unary ") +
                        std::string(unOpSpelling(E.unOpKind()))};
    }
  }

  /// Truncating division/modulo over SMT's Euclidean div/mod.
  z3::expr truncDiv(z3::expr A, z3::expr B, bool WantMod) {
    z3::expr Q = A / B;          // SMT-LIB Euclidean quotient over Int
    z3::expr R = z3::mod(A, B);  // non-negative remainder
    z3::expr Zero = Ctx.int_val(0);
    z3::expr One = Ctx.int_val(1);
    z3::expr Qt = z3::ite(
        R == Zero, Q,
        z3::ite(A < Zero, z3::ite(B > Zero, Q + One, Q - One), Q));
    if (!WantMod)
      return Qt;
    return A - B * Qt;
  }

  z3::expr encodeBinOp(const Expr &E) {
    BinOpKind Op = E.binOpKind();
    const Expr &EA = E.child(0), &EB = E.child(1);
    switch (Op) {
    case BinOpKind::And:
      return encode(EA) && encode(EB);
    case BinOpKind::Or:
      return encode(EA) || encode(EB);
    case BinOpKind::Eq: {
      auto TA = staticType(EA, Types), TB = staticType(EB, Types);
      if (!TA || !TB)
        throw Unsupported{"equality between untyped terms"};
      if (*TA != *TB)
        return Ctx.bool_val(false); // GIL equality is structural
      if (*TA == GilType::List)
        throw Unsupported{"list equality (should have been decomposed)"};
      return encode(EA) == encode(EB);
    }
    case BinOpKind::Lt:
    case BinOpKind::Le: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      if (TA == GilType::Str || TB == GilType::Str)
        throw Unsupported{"string comparison"};
      GilType W = (TA == GilType::Num || TB == GilType::Num) ? GilType::Num
                                                             : GilType::Int;
      z3::expr A = widen(encode(EA), TA, W);
      z3::expr B = widen(encode(EB), TB, W);
      return Op == BinOpKind::Lt ? A < B : A <= B;
    }
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      GilType W = (TA == GilType::Num || TB == GilType::Num) ? GilType::Num
                                                             : GilType::Int;
      z3::expr A = widen(encode(EA), TA, W);
      z3::expr B = widen(encode(EB), TB, W);
      switch (Op) {
      case BinOpKind::Add: return A + B;
      case BinOpKind::Sub: return A - B;
      case BinOpKind::Mul: return A * B;
      case BinOpKind::Div:
        // Int division is truncating in GIL; Real division is exact.
        return W == GilType::Int ? truncDiv(A, B, /*WantMod=*/false) : A / B;
      default: break;
      }
      throw Unsupported{"unreachable"};
    }
    case BinOpKind::Mod: {
      GilType TA = typeOf(EA), TB = typeOf(EB);
      if (TA != GilType::Int || TB != GilType::Int)
        throw Unsupported{"non-integer modulo"};
      return truncDiv(encode(EA), encode(EB), /*WantMod=*/true);
    }
    case BinOpKind::StrCat: {
      z3::expr A = encode(EA), B = encode(EB);
      z3::expr_vector Parts(Ctx);
      Parts.push_back(A);
      Parts.push_back(B);
      return z3::concat(Parts);
    }
    default:
      throw Unsupported{std::string("binary ") +
                        std::string(binOpSpelling(Op))};
    }
  }

  z3::context &Ctx;
  const TypeEnv &Types;
  std::map<uint32_t, InternedString> SymByCode;
};

/// Converts one Z3 model value back into a GIL value of type \p T.
std::optional<Value> decodeModelValue(z3::context &Ctx, const z3::expr &V,
                                      GilType T,
                                      const std::map<uint32_t, InternedString>
                                          &SymCodes,
                                      uint32_t &FreshSym) {
  (void)Ctx;
  switch (T) {
  case GilType::Int: {
    int64_t I = 0;
    if (V.is_numeral_i64(I))
      return Value::intV(I);
    return std::nullopt;
  }
  case GilType::Num: {
    if (!V.is_numeral())
      return std::nullopt;
    int64_t Num = 0, Den = 1;
    if (V.numerator().is_numeral_i64(Num) &&
        V.denominator().is_numeral_i64(Den) && Den != 0)
      return Value::numV(static_cast<double>(Num) /
                         static_cast<double>(Den));
    // Fall back through a decimal rendering for huge rationals.
    std::string S = V.get_decimal_string(17);
    if (!S.empty() && S.back() == '?')
      S.pop_back();
    return Value::numV(std::strtod(S.c_str(), nullptr));
  }
  case GilType::Bool:
    if (V.is_true())
      return Value::boolV(true);
    if (V.is_false())
      return Value::boolV(false);
    return std::nullopt;
  case GilType::Str:
    if (V.is_string_value())
      return Value::strV(V.get_string());
    return std::nullopt;
  case GilType::Sym: {
    int64_t Code = 0;
    if (!V.is_numeral_i64(Code))
      return std::nullopt;
    auto It = SymCodes.find(static_cast<uint32_t>(Code));
    if (It != SymCodes.end())
      return Value::symV(It->second);
    // A symbol the formula never named: any fresh one will do.
    return Value::symV("$z3_" + std::to_string(FreshSym++));
  }
  case GilType::Type: {
    int64_t Code = 0;
    if (V.is_numeral_i64(Code) && Code >= 0 && Code <= 7)
      return Value::typeV(static_cast<GilType>(Code));
    return std::nullopt;
  }
  case GilType::Proc:
  case GilType::List:
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

bool gillian::z3Available() { return true; }

Z3Outcome gillian::checkSatZ3(const PathCondition &PC, const TypeEnv &Types,
                              bool WantModel) {
  Z3Outcome Out;
  if (PC.isTriviallyFalse()) {
    Out.Verdict = SatResult::Unsat;
    return Out;
  }
  try {
    // One long-lived context *per thread*: constants intern per spelling,
    // and context creation dominates small-query latency, but Z3 contexts
    // are not thread-safe — so each exploration worker gets its own,
    // lazily, for the lifetime of its thread. Each query gets a fresh
    // solver over the thread's context.
    static thread_local z3::context Ctx;
    z3::solver S(Ctx);
    Encoder Enc(Ctx, Types);
    size_t Encoded = 0;
    for (const Expr &C : PC.conjuncts()) {
      try {
        S.add(Enc.encode(C));
        ++Encoded;
      } catch (const Unsupported &) {
        Out.DroppedConjuncts = true;
      }
    }
    z3::check_result R = S.check();
    if (R == z3::unsat) {
      Out.Verdict = SatResult::Unsat; // subset already contradictory
      return Out;
    }
    if (R == z3::unknown) {
      Out.Verdict = SatResult::Unknown;
      return Out;
    }
    Out.Verdict = Out.DroppedConjuncts ? SatResult::Unknown : SatResult::Sat;
    if (!WantModel)
      return Out;

    z3::model M = S.get_model();
    Model GM;
    std::set<InternedString> LVars;
    PC.collectLVars(LVars);
    uint32_t FreshSym = 0;
    for (InternedString X : LVars) {
      GilType T = Types.lookup(X).value_or(GilType::Int);
      z3::expr V = M.eval(Enc.var(X, T), /*model_completion=*/true);
      auto GV = decodeModelValue(Ctx, V, T, Enc.symbolCodes(), FreshSym);
      if (!GV) {
        Out.CandidateModel.reset();
        return Out;
      }
      GM.bind(X, std::move(*GV));
    }
    Out.CandidateModel = std::move(GM);
    return Out;
  } catch (const z3::exception &) {
    Out.Verdict = SatResult::Unknown;
    Out.CandidateModel.reset();
    return Out;
  } catch (const Unsupported &) {
    Out.Verdict = SatResult::Unknown;
    return Out;
  }
}

#else // !GILLIAN_HAVE_Z3

using namespace gillian;

bool gillian::z3Available() { return false; }

Z3Outcome gillian::checkSatZ3(const PathCondition &, const TypeEnv &, bool) {
  return Z3Outcome{};
}

#endif // GILLIAN_HAVE_Z3
