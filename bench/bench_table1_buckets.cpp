//===- bench/bench_table1_buckets.cpp -------------------------------------===//
//
// Regenerates Table 1 of the paper (§4.1): symbolic testing of the
// Buckets-style library with Gillian-JS (our MJS instantiation).
//
// Columns, as in the paper: per data structure, the number of symbolic
// tests (#T), the number of executed GIL commands, the time in the
// JaVerT 2.0 baseline configuration (no simplifier, no solver caching),
// and the time in the Gillian configuration. Absolute numbers differ from
// the paper (different hardware, different substrate); the shape to check
// is the J2/GJS ratio (paper: roughly 2x) and the relative per-structure
// ordering.
//
//===----------------------------------------------------------------------===//

#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "solver/simplifier.h"
#include "targets/buckets_mjs.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::targets;

namespace {

struct Row {
  std::string Name;
  uint64_t Tests = 0;
  uint64_t GilCmds = 0;
  double TimeJ2 = 0;
  double TimeGjs = 0;
  uint64_t Bugs = 0;
};

double seconds(std::chrono::steady_clock::time_point From) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       From)
      .count();
}

} // namespace

int main() {
  std::printf("Table 1: Buckets.js-style symbolic test suites "
              "(Gillian-JS / MJS)\n");
  std::printf("%-8s %4s %12s %10s %10s %8s\n", "Name", "#T", "GIL Cmds",
              "Time(J2)", "Time(GJS)", "Speedup");

  Row Total;
  Total.Name = "Total";
  for (const BucketsSuite &S : bucketsSuites()) {
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = compileMjsSource(Src);
    if (!P) {
      std::fprintf(stderr, "compile error in %s: %s\n",
                   std::string(S.Name).c_str(), P.error().c_str());
      return 1;
    }

    // Baseline: the JaVerT 2.0 configuration.
    resetSimplifyCache();
    EngineOptions J2 = EngineOptions::legacyJaVerT2();
    auto T0 = std::chrono::steady_clock::now();
    SuiteResult RJ2 = runSuite<MjsSMem>(S.Name, *P, J2);
    double SecJ2 = seconds(T0);

    // Gillian configuration.
    resetSimplifyCache();
    EngineOptions Gjs;
    T0 = std::chrono::steady_clock::now();
    SuiteResult RGjs = runSuite<MjsSMem>(S.Name, *P, Gjs);
    double SecGjs = seconds(T0);

    std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx\n",
                std::string(S.Name).c_str(),
                static_cast<unsigned long long>(RGjs.Tests),
                static_cast<unsigned long long>(RGjs.GilCmds), SecJ2,
                SecGjs, SecGjs > 0 ? SecJ2 / SecGjs : 0.0);

    Total.Tests += RGjs.Tests;
    Total.GilCmds += RGjs.GilCmds;
    Total.TimeJ2 += SecJ2;
    Total.TimeGjs += SecGjs;
    Total.Bugs += RGjs.Bugs.size() + RJ2.Bugs.size();
  }
  std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx\n", "Total",
              static_cast<unsigned long long>(Total.Tests),
              static_cast<unsigned long long>(Total.GilCmds), Total.TimeJ2,
              Total.TimeGjs,
              Total.TimeGjs > 0 ? Total.TimeJ2 / Total.TimeGjs : 0.0);
  std::printf("\nBug reports on the healthy library: %llu (expected 0 — "
              "the suite is a bounded-verification baseline, as in the "
              "paper, which re-detected only previously-known bugs)\n",
              static_cast<unsigned long long>(Total.Bugs));
  std::printf("Paper shape check: 74 tests; J2 slower than GJS overall and on "
              "the solver-heavy rows (paper: ~2x overall; sub-millisecond "
              "rows are noise-dominated).\n"
              "Our measured gap is larger than the paper's because this "
              "baseline removes result caching entirely, on which our "
              "engine leans harder than JaVerT 2.0 did (J2 cached inside "
              "its custom solver); see bench_ablation_engine for the "
              "decomposition.\n");
  return Total.Bugs == 0 ? 0 : 1;
}
