//===- gil/ops.cpp --------------------------------------------------------===//

#include "gil/ops.h"

#include <cmath>
#include <cstdlib>

using namespace gillian;

std::string_view gillian::unOpSpelling(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg: return "-";
  case UnOpKind::Not: return "!";
  case UnOpKind::BitNot: return "~";
  case UnOpKind::TypeOf: return "typeof";
  case UnOpKind::ListLen: return "len";
  case UnOpKind::StrLen: return "slen";
  case UnOpKind::Head: return "hd";
  case UnOpKind::Tail: return "tl";
  case UnOpKind::ToNum: return "to_num";
  case UnOpKind::ToInt: return "to_int";
  case UnOpKind::NumToStr: return "num_to_str";
  case UnOpKind::StrToNum: return "str_to_num";
  }
  return "<bad-unop>";
}

std::string_view gillian::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add: return "+";
  case BinOpKind::Sub: return "-";
  case BinOpKind::Mul: return "*";
  case BinOpKind::Div: return "/";
  case BinOpKind::Mod: return "%";
  case BinOpKind::Eq: return "==";
  case BinOpKind::Lt: return "<";
  case BinOpKind::Le: return "<=";
  case BinOpKind::And: return "&&";
  case BinOpKind::Or: return "||";
  case BinOpKind::StrCat: return "@+";
  case BinOpKind::StrNth: return "s_nth";
  case BinOpKind::ListNth: return "l_nth";
  case BinOpKind::ListConcat: return "++";
  case BinOpKind::Cons: return "::";
  case BinOpKind::BitAnd: return "&";
  case BinOpKind::BitOr: return "|";
  case BinOpKind::BitXor: return "^^";
  case BinOpKind::Shl: return "<<";
  case BinOpKind::Shr: return ">>";
  }
  return "<bad-binop>";
}

bool gillian::isBooleanResult(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Eq:
  case BinOpKind::Lt:
  case BinOpKind::Le:
  case BinOpKind::And:
  case BinOpKind::Or:
    return true;
  default:
    return false;
  }
}

bool gillian::isArithmetic(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
  case BinOpKind::Sub:
  case BinOpKind::Mul:
  case BinOpKind::Div:
    return true;
  default:
    return false;
  }
}

static Err typeError(std::string_view Op, const Value &V) {
  return Err("type error: operator '" + std::string(Op) +
             "' not applicable to " + V.toString());
}

static Err typeError(std::string_view Op, const Value &A, const Value &B) {
  return Err("type error: operator '" + std::string(Op) +
             "' not applicable to " + A.toString() + " and " + B.toString());
}

Result<Value> gillian::evalUnOp(UnOpKind Op, const Value &V) {
  switch (Op) {
  case UnOpKind::Neg:
    if (V.isInt())
      return Value::intV(-V.asInt());
    if (V.isNum())
      return Value::numV(-V.asNum());
    return typeError("-", V);
  case UnOpKind::Not:
    if (V.isBool())
      return Value::boolV(!V.asBool());
    return typeError("!", V);
  case UnOpKind::BitNot:
    if (V.isInt())
      return Value::intV(~V.asInt());
    return typeError("~", V);
  case UnOpKind::TypeOf:
    return Value::typeV(V.type());
  case UnOpKind::ListLen:
    if (V.isList())
      return Value::intV(static_cast<int64_t>(V.asList().size()));
    return typeError("len", V);
  case UnOpKind::StrLen:
    if (V.isStr())
      return Value::intV(static_cast<int64_t>(V.asStr().str().size()));
    return typeError("slen", V);
  case UnOpKind::Head:
    if (V.isList() && !V.asList().empty())
      return V.asList().front();
    return typeError("hd", V);
  case UnOpKind::Tail:
    if (V.isList() && !V.asList().empty())
      return Value::listV(std::vector<Value>(V.asList().begin() + 1,
                                             V.asList().end()));
    return typeError("tl", V);
  case UnOpKind::ToNum:
    if (V.isNumeric())
      return Value::numV(V.asDouble());
    return typeError("to_num", V);
  case UnOpKind::ToInt:
    if (V.isInt())
      return V;
    if (V.isNum()) {
      double D = V.asNum();
      if (std::isnan(D) || std::isinf(D))
        return Err("to_int applied to non-finite number");
      return Value::intV(static_cast<int64_t>(std::trunc(D)));
    }
    return typeError("to_int", V);
  case UnOpKind::NumToStr: {
    if (!V.isNumeric())
      return typeError("num_to_str", V);
    if (V.isInt())
      return Value::strV(std::to_string(V.asInt()));
    // JS-style rendering: integral doubles print without a fraction, so
    // computed property names o[0] and the literal key "0" coincide.
    double D = V.asNum();
    if (std::trunc(D) == D && std::abs(D) < 9.007199254740992e15)
      return Value::strV(std::to_string(static_cast<int64_t>(D)));
    return Value::strV(Value::numV(D).toString());
  }
  case UnOpKind::StrToNum: {
    if (!V.isStr())
      return typeError("str_to_num", V);
    std::string S(V.asStr().str());
    char *End = nullptr;
    double D = std::strtod(S.c_str(), &End);
    if (End != S.c_str() + S.size() || S.empty())
      return Err("str_to_num applied to malformed numeral " + V.toString());
    return Value::numV(D);
  }
  }
  return Err("unknown unary operator");
}

/// Shared arithmetic: exact on Int×Int, double otherwise.
static Result<Value> arith(BinOpKind Op, const Value &A, const Value &B) {
  if (!A.isNumeric() || !B.isNumeric())
    return typeError(binOpSpelling(Op), A, B);
  if (A.isInt() && B.isInt()) {
    int64_t X = A.asInt(), Y = B.asInt();
    switch (Op) {
    case BinOpKind::Add: return Value::intV(X + Y);
    case BinOpKind::Sub: return Value::intV(X - Y);
    case BinOpKind::Mul: return Value::intV(X * Y);
    case BinOpKind::Div:
      if (Y == 0)
        return Err("integer division by zero");
      return Value::intV(X / Y);
    default: break;
    }
  }
  double X = A.asDouble(), Y = B.asDouble();
  switch (Op) {
  case BinOpKind::Add: return Value::numV(X + Y);
  case BinOpKind::Sub: return Value::numV(X - Y);
  case BinOpKind::Mul: return Value::numV(X * Y);
  case BinOpKind::Div: return Value::numV(X / Y);
  default: break;
  }
  return Err("unreachable arithmetic operator");
}

static Result<Value> compare(BinOpKind Op, const Value &A, const Value &B) {
  bool Strict = Op == BinOpKind::Lt;
  if (A.isNumeric() && B.isNumeric()) {
    double X = A.asDouble(), Y = B.asDouble();
    return Value::boolV(Strict ? X < Y : X <= Y);
  }
  if (A.isStr() && B.isStr()) {
    auto X = A.asStr().str(), Y = B.asStr().str();
    return Value::boolV(Strict ? X < Y : X <= Y);
  }
  return typeError(binOpSpelling(Op), A, B);
}

Result<Value> gillian::evalBinOp(BinOpKind Op, const Value &A,
                                 const Value &B) {
  switch (Op) {
  case BinOpKind::Add:
  case BinOpKind::Sub:
  case BinOpKind::Mul:
  case BinOpKind::Div:
    return arith(Op, A, B);
  case BinOpKind::Mod:
    if (A.isInt() && B.isInt()) {
      if (B.asInt() == 0)
        return Err("integer modulo by zero");
      return Value::intV(A.asInt() % B.asInt());
    }
    if (A.isNumeric() && B.isNumeric())
      return Value::numV(std::fmod(A.asDouble(), B.asDouble()));
    return typeError("%", A, B);
  case BinOpKind::Eq:
    return Value::boolV(A == B);
  case BinOpKind::Lt:
  case BinOpKind::Le:
    return compare(Op, A, B);
  case BinOpKind::And:
    if (A.isBool() && B.isBool())
      return Value::boolV(A.asBool() && B.asBool());
    return typeError("&&", A, B);
  case BinOpKind::Or:
    if (A.isBool() && B.isBool())
      return Value::boolV(A.asBool() || B.asBool());
    return typeError("||", A, B);
  case BinOpKind::StrCat:
    if (A.isStr() && B.isStr())
      return Value::strV(std::string(A.asStr().str()) +
                         std::string(B.asStr().str()));
    return typeError("@+", A, B);
  case BinOpKind::StrNth: {
    if (!A.isStr() || !B.isInt())
      return typeError("s_nth", A, B);
    auto S = A.asStr().str();
    int64_t I = B.asInt();
    if (I < 0 || static_cast<size_t>(I) >= S.size())
      return Err("string index " + std::to_string(I) + " out of bounds for " +
                 A.toString());
    return Value::strV(std::string(1, S[static_cast<size_t>(I)]));
  }
  case BinOpKind::ListNth: {
    if (!A.isList() || !B.isInt())
      return typeError("l_nth", A, B);
    int64_t I = B.asInt();
    if (I < 0 || static_cast<size_t>(I) >= A.asList().size())
      return Err("list index " + std::to_string(I) + " out of bounds for " +
                 A.toString());
    return A.asList()[static_cast<size_t>(I)];
  }
  case BinOpKind::ListConcat: {
    if (!A.isList() || !B.isList())
      return typeError("++", A, B);
    std::vector<Value> Out = A.asList();
    Out.insert(Out.end(), B.asList().begin(), B.asList().end());
    return Value::listV(std::move(Out));
  }
  case BinOpKind::Cons: {
    if (!B.isList())
      return typeError("::", A, B);
    std::vector<Value> Out;
    Out.reserve(B.asList().size() + 1);
    Out.push_back(A);
    Out.insert(Out.end(), B.asList().begin(), B.asList().end());
    return Value::listV(std::move(Out));
  }
  case BinOpKind::BitAnd:
  case BinOpKind::BitOr:
  case BinOpKind::BitXor: {
    if (!A.isInt() || !B.isInt())
      return typeError(binOpSpelling(Op), A, B);
    int64_t X = A.asInt(), Y = B.asInt();
    if (Op == BinOpKind::BitAnd)
      return Value::intV(X & Y);
    if (Op == BinOpKind::BitOr)
      return Value::intV(X | Y);
    return Value::intV(X ^ Y);
  }
  case BinOpKind::Shl:
  case BinOpKind::Shr: {
    if (!A.isInt() || !B.isInt())
      return typeError(binOpSpelling(Op), A, B);
    int64_t Sh = B.asInt();
    if (Sh < 0 || Sh > 63)
      return Err("shift amount " + std::to_string(Sh) + " out of range");
    if (Op == BinOpKind::Shl)
      return Value::intV(static_cast<int64_t>(
          static_cast<uint64_t>(A.asInt()) << static_cast<uint64_t>(Sh)));
    return Value::intV(A.asInt() >> Sh);
  }
  }
  return Err("unknown binary operator");
}
