file(REMOVE_RECURSE
  "libgillian_support.a"
)
