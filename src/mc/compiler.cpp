//===- mc/compiler.cpp ----------------------------------------------------===//

#include "mc/compiler.h"

#include "mc/memory.h"
#include "mc/parser.h"

#include <limits>

using namespace gillian;
using namespace gillian::mc;

namespace {

/// Compiler-internal types: an MC value type, or the boolean of
/// comparisons/conditions (which never flows into memory).
struct CType {
  bool IsBool = false;
  bool IsRawNull = false; ///< the literal `null` (assignable to any ptr)
  McType T;

  static CType boolT() {
    CType C;
    C.IsBool = true;
    return C;
  }
  static CType of(McType T) {
    CType C;
    C.T = std::move(T);
    return C;
  }
  static CType nullT() {
    CType C;
    C.T = McType::pointer(McType::scalar(ScalarKind::I8));
    C.IsRawNull = true;
    return C;
  }

  bool isInt() const { return !IsBool && T.isInt(); }
  bool isFloat() const { return !IsBool && T.isFloat(); }
  bool isPtr() const { return !IsBool && T.isPtr(); }
};

/// Loose C-style compatibility for assignments and parameter passing.
bool compatible(const CType &Dst, const CType &Src) {
  if (Dst.IsBool || Src.IsBool)
    return Dst.IsBool && Src.IsBool;
  if (Dst.T.isPtr())
    return Src.T.isPtr(); // any pointer (incl. null) into any pointer
  if (Dst.T.isInt())
    return Src.T.isInt();
  if (Dst.T.isFloat())
    return Src.T.isFloat();
  return Dst.T == Src.T;
}

struct TypedExpr {
  Expr E;
  CType Ty;
};

class McCompiler {
public:
  Result<Prog> run(const CProgram &P) {
    for (const CStructDecl &S : P.Structs) {
      std::vector<std::pair<InternedString, McType>> Fields;
      for (const auto &[N, T] : S.Fields)
        Fields.emplace_back(InternedString::get(N), T);
      Result<bool> R = Layouts.add(InternedString::get(S.Name), Fields);
      if (!R)
        return Err(R.error());
    }
    Program = &P;
    Prog Out;
    for (const CFunc &F : P.Funcs) {
      Result<Proc> R = compileFunc(F);
      if (!R)
        return Err(R.error());
      Out.add(R.take());
    }
    return Out;
  }

private:
  LayoutTable Layouts;
  const CProgram *Program = nullptr;
  std::vector<Cmd> Body;
  std::map<std::string, CType> Vars;
  const CFunc *CurFunc = nullptr;
  uint32_t NextSite = 0;
  uint32_t NextTemp = 0;

  /// The address (chunk, block, offset, type) of a memory access.
  struct Address {
    Chunk Ch;
    Expr Block, Offset;
    McType ValType;
  };

  InternedString freshTemp() {
    return InternedString::get("_t" + std::to_string(NextTemp++));
  }
  size_t pc() const { return Body.size(); }
  void emit(Cmd C) { Body.push_back(std::move(C)); }

  static Expr ptrBlock(const Expr &P) {
    return Expr::binOp(BinOpKind::ListNth, P, Expr::intE(0));
  }
  static Expr ptrOffset(const Expr &P) {
    return Expr::binOp(BinOpKind::ListNth, P, Expr::intE(1));
  }

  void emitFailUnless(Expr Cond, const std::string &Msg) {
    size_t Here = pc();
    emit(Cmd::ifGoto(std::move(Cond), Here + 2));
    emit(Cmd::fail(Expr::strE(Msg)));
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  Result<TypedExpr> compileExpr(const CExprPtr &E) {
    switch (E->Kind) {
    case CExprKind::IntLit:
      return TypedExpr{Expr::intE(E->IntVal),
                       CType::of(McType::scalar(ScalarKind::I64))};
    case CExprKind::FloatLit:
      return TypedExpr{Expr::numE(E->FloatVal),
                       CType::of(McType::scalar(ScalarKind::F64))};
    case CExprKind::Null:
      return TypedExpr{nullPtrE(), CType::nullT()};
    case CExprKind::Var: {
      auto It = Vars.find(E->Name);
      if (It == Vars.end())
        return Err("unknown variable '" + E->Name + "'");
      return TypedExpr{Expr::pvar(E->Name), It->second};
    }
    case CExprKind::Unary:
      return compileUnary(*E);
    case CExprKind::Binary:
      return compileBinary(*E);
    case CExprKind::Field: {
      Result<Address> Addr = fieldAddress(*E);
      if (!Addr)
        return Err(Addr.error());
      return emitLoad(*Addr);
    }
    case CExprKind::Index: {
      Result<Address> Addr = indexAddress(*E);
      if (!Addr)
        return Err(Addr.error());
      return emitLoad(*Addr);
    }
    case CExprKind::Call:
      return compileCall(*E);
    case CExprKind::SizeOf: {
      Result<int64_t> Sz = Layouts.sizeOf(E->Type);
      if (!Sz)
        return Err(Sz.error());
      return TypedExpr{Expr::intE(*Sz),
                       CType::of(McType::scalar(ScalarKind::I64))};
    }
    case CExprKind::Alloc:
      return compileAlloc(*E);
    }
    return Err("unknown MC expression kind");
  }

  Result<TypedExpr> compileUnary(const CExpr &E) {
    Result<TypedExpr> C = compileExpr(E.Lhs);
    if (!C)
      return C;
    if (E.UOp == CUnOp::Neg) {
      if (!C->Ty.isInt() && !C->Ty.isFloat())
        return Err("unary '-' requires a numeric operand");
      return TypedExpr{Expr::unOp(UnOpKind::Neg, C->E), C->Ty};
    }
    if (!C->Ty.IsBool)
      return Err("'!' requires a boolean operand");
    return TypedExpr{Expr::notE(C->E), CType::boolT()};
  }

  /// Pointer arithmetic p + i: [b, off + i * sizeof(pointee)].
  Result<TypedExpr> pointerArith(const TypedExpr &P, const TypedExpr &I,
                                 bool Subtract) {
    if (!P.Ty.T.pointee())
      return Err("pointer arithmetic on an untyped pointer");
    Result<int64_t> Sz = Layouts.sizeOf(*P.Ty.T.pointee());
    if (!Sz)
      return Err(Sz.error());
    Expr Delta = Expr::binOp(BinOpKind::Mul, I.E, Expr::intE(*Sz));
    if (Subtract)
      Delta = Expr::unOp(UnOpKind::Neg, Delta);
    Expr NewOff = Expr::add(ptrOffset(P.E), Delta);
    return TypedExpr{Expr::list({ptrBlock(P.E), NewOff}), P.Ty};
  }

  Result<TypedExpr> compileBinary(const CExpr &E) {
    if (E.BOp == CBinOp::And || E.BOp == CBinOp::Or) {
      // Short-circuit (the rhs may dereference pointers the lhs guards).
      Result<TypedExpr> A = compileExpr(E.Lhs);
      if (!A)
        return A;
      if (!A->Ty.IsBool)
        return Err("'&&'/'||' require boolean operands");
      InternedString T = freshTemp();
      emit(Cmd::assign(T, A->E));
      Expr SkipIf = E.BOp == CBinOp::And ? Expr::notE(Expr::pvar(T))
                                         : Expr::pvar(T);
      size_t SkipIdx = pc();
      emit(Cmd::ifGoto(SkipIf, 0)); // patched
      Result<TypedExpr> B = compileExpr(E.Rhs);
      if (!B)
        return B;
      if (!B->Ty.IsBool)
        return Err("'&&'/'||' require boolean operands");
      emit(Cmd::assign(T, B->E));
      Body[SkipIdx].Target = pc();
      return TypedExpr{Expr::pvar(T), CType::boolT()};
    }

    Result<TypedExpr> A = compileExpr(E.Lhs);
    if (!A)
      return A;
    Result<TypedExpr> B = compileExpr(E.Rhs);
    if (!B)
      return B;

    switch (E.BOp) {
    case CBinOp::Add:
    case CBinOp::Sub: {
      if (A->Ty.isPtr() && B->Ty.isInt())
        return pointerArith(*A, *B, E.BOp == CBinOp::Sub);
      if (A->Ty.isInt() && B->Ty.isPtr() && E.BOp == CBinOp::Add)
        return pointerArith(*B, *A, false);
      [[fallthrough]];
    }
    case CBinOp::Mul:
    case CBinOp::Div:
    case CBinOp::Mod: {
      bool Ints = A->Ty.isInt() && B->Ty.isInt();
      bool Floats = A->Ty.isFloat() && B->Ty.isFloat();
      if (!Ints && !Floats)
        return Err("arithmetic requires two integers or two floats");
      BinOpKind Op = E.BOp == CBinOp::Add   ? BinOpKind::Add
                     : E.BOp == CBinOp::Sub ? BinOpKind::Sub
                     : E.BOp == CBinOp::Mul ? BinOpKind::Mul
                     : E.BOp == CBinOp::Div ? BinOpKind::Div
                                            : BinOpKind::Mod;
      if (Ints && (Op == BinOpKind::Div || Op == BinOpKind::Mod))
        emitFailUnless(Expr::notE(Expr::eq(B->E, Expr::intE(0))),
                       "UB: integer division by zero");
      McType RT = Ints ? McType::scalar(ScalarKind::I64)
                       : McType::scalar(ScalarKind::F64);
      return TypedExpr{Expr::binOp(Op, A->E, B->E), CType::of(RT)};
    }
    case CBinOp::Eq:
    case CBinOp::Ne: {
      Expr R;
      if (A->Ty.isPtr() && B->Ty.isPtr()) {
        InternedString T = freshTemp();
        emit(Cmd::action(T, actComparePtr(),
                         Expr::list({Expr::strE("eq"), A->E, B->E})));
        R = Expr::pvar(T);
      } else if ((A->Ty.isInt() && B->Ty.isInt()) ||
                 (A->Ty.isFloat() && B->Ty.isFloat()) ||
                 (A->Ty.IsBool && B->Ty.IsBool)) {
        R = Expr::eq(A->E, B->E);
      } else {
        return Err("'=='/'!=' on incompatible types");
      }
      if (E.BOp == CBinOp::Ne)
        R = Expr::notE(R);
      return TypedExpr{R, CType::boolT()};
    }
    case CBinOp::Lt:
    case CBinOp::Le:
    case CBinOp::Gt:
    case CBinOp::Ge: {
      bool Swap = E.BOp == CBinOp::Gt || E.BOp == CBinOp::Ge;
      bool Strict = E.BOp == CBinOp::Lt || E.BOp == CBinOp::Gt;
      const TypedExpr &L = Swap ? *B : *A;
      const TypedExpr &Rr = Swap ? *A : *B;
      if (L.Ty.isPtr() && Rr.Ty.isPtr()) {
        // Relational pointer comparison: UB across objects — routed
        // through the comparePtr action, which enforces it.
        InternedString T = freshTemp();
        emit(Cmd::action(T, actComparePtr(),
                         Expr::list({Expr::strE(Strict ? "lt" : "le"), L.E,
                                     Rr.E})));
        return TypedExpr{Expr::pvar(T), CType::boolT()};
      }
      if (!((L.Ty.isInt() && Rr.Ty.isInt()) ||
            (L.Ty.isFloat() && Rr.Ty.isFloat())))
        return Err("comparison on incompatible types");
      return TypedExpr{Expr::binOp(Strict ? BinOpKind::Lt : BinOpKind::Le,
                                   L.E, Rr.E),
                       CType::boolT()};
    }
    default:
      return Err("unhandled binary operator");
    }
  }

  Result<Address> fieldAddress(const CExpr &E) {
    Result<TypedExpr> Base = compileExpr(E.Lhs);
    if (!Base)
      return Err(Base.error());
    if (!Base->Ty.isPtr() || !Base->Ty.T.pointee() ||
        !Base->Ty.T.pointee()->isStruct())
      return Err("'->' requires a pointer to a struct");
    const StructLayout *L =
        Layouts.find(Base->Ty.T.pointee()->structName());
    if (!L)
      return Err("unknown struct");
    const FieldLayout *F = L->field(InternedString::get(E.Name));
    if (!F)
      return Err("struct " + std::string(L->Name.str()) +
                 " has no field '" + E.Name + "'");
    if (F->Type.isStruct())
      return Err("aggregate field access requires a pointer; use '+'");
    Address A;
    A.Ch = Chunk::forScalar(F->Type.scalarKind());
    A.Block = ptrBlock(Base->E);
    A.Offset = Expr::add(ptrOffset(Base->E), Expr::intE(F->Offset));
    A.ValType = F->Type;
    return A;
  }

  Result<Address> indexAddress(const CExpr &E) {
    Result<TypedExpr> Base = compileExpr(E.Lhs);
    if (!Base)
      return Err(Base.error());
    Result<TypedExpr> Idx = compileExpr(E.Rhs);
    if (!Idx)
      return Err(Idx.error());
    if (!Base->Ty.isPtr() || !Base->Ty.T.pointee())
      return Err("indexing requires a typed pointer");
    if (!Idx->Ty.isInt())
      return Err("index must be an integer");
    const McType &Elem = *Base->Ty.T.pointee();
    if (Elem.isStruct())
      return Err("indexing a struct pointer loads an aggregate; index a "
                 "scalar pointer or use (p + i)->field");
    Result<int64_t> Sz = Layouts.sizeOf(Elem);
    if (!Sz)
      return Err(Sz.error());
    Address A;
    A.Ch = Chunk::forScalar(Elem.scalarKind());
    A.Block = ptrBlock(Base->E);
    A.Offset = Expr::add(ptrOffset(Base->E),
                         Expr::binOp(BinOpKind::Mul, Idx->E,
                                     Expr::intE(*Sz)));
    A.ValType = Elem;
    return A;
  }

  Result<TypedExpr> emitLoad(const Address &A) {
    InternedString T = freshTemp();
    emit(Cmd::action(T, actLoad(),
                     Expr::list({Expr::lit(chunkValue(A.Ch)), A.Block,
                                 A.Offset})));
    return TypedExpr{Expr::pvar(T), CType::of(A.ValType)};
  }

  void emitStore(const Address &A, const Expr &V) {
    emit(Cmd::action(freshTemp(), actStore(),
                     Expr::list({Expr::lit(chunkValue(A.Ch)), A.Block,
                                 A.Offset, V})));
  }

  Result<TypedExpr> compileAlloc(const CExpr &E) {
    Result<TypedExpr> Count = compileExpr(E.Lhs);
    if (!Count)
      return Count;
    if (!Count->Ty.isInt())
      return Err("alloc count must be an integer");
    Result<int64_t> Sz = Layouts.sizeOf(E.Type);
    if (!Sz)
      return Err(Sz.error());
    InternedString B = freshTemp();
    emit(Cmd::uSym(B, NextSite++));
    InternedString T = freshTemp();
    emit(Cmd::action(
        T, actAlloc(),
        Expr::list({Expr::pvar(B),
                    Expr::binOp(BinOpKind::Mul, Count->E,
                                Expr::intE(*Sz))})));
    return TypedExpr{Expr::pvar(T), CType::of(McType::pointer(E.Type))};
  }

  Result<TypedExpr> compileCall(const CExpr &E) {
    const std::string &F = E.Name;

    // Casts.
    if (F == "i64" || F == "i32" || F == "i8" || F == "f64") {
      if (E.Args.size() != 1)
        return Err(F + "() cast takes one argument");
      Result<TypedExpr> A = compileExpr(E.Args[0]);
      if (!A)
        return A;
      if (F == "f64") {
        if (A->Ty.isFloat())
          return TypedExpr{A->E, A->Ty};
        if (!A->Ty.isInt())
          return Err("f64() requires a numeric argument");
        return TypedExpr{Expr::unOp(UnOpKind::ToNum, A->E),
                         CType::of(McType::scalar(ScalarKind::F64))};
      }
      Expr V = A->E;
      if (A->Ty.isFloat()) {
        emitFailUnless(
            Expr::andE(Expr::notE(Expr::eq(
                           V, Expr::numE(
                                  std::numeric_limits<double>::infinity()))),
                       Expr::andE(
                           Expr::notE(Expr::eq(
                               V,
                               Expr::numE(-std::numeric_limits<
                                          double>::infinity()))),
                           Expr::notE(Expr::eq(
                               V, Expr::numE(std::numeric_limits<
                                             double>::quiet_NaN()))))),
            "UB: float-to-integer cast of a non-finite value");
        V = Expr::unOp(UnOpKind::ToInt, V);
      } else if (!A->Ty.isInt()) {
        return Err(F + "() requires a numeric argument");
      }
      int64_t Bits = F == "i64" ? 64 : (F == "i32" ? 32 : 8);
      if (Bits < 64)
        V = Expr::binOp(BinOpKind::Shr,
                        Expr::binOp(BinOpKind::Shl, V,
                                    Expr::intE(64 - Bits)),
                        Expr::intE(64 - Bits));
      ScalarKind K = F == "i64" ? ScalarKind::I64
                                : (F == "i32" ? ScalarKind::I32
                                              : ScalarKind::I8);
      return TypedExpr{V, CType::of(McType::scalar(K))};
    }

    // Memory builtins.
    if (F == "allocsize") {
      // Introspection: the byte size of the block a pointer points into
      // (the blockSize action). Used by capacity-audit assertions.
      if (E.Args.size() != 1)
        return Err("allocsize() takes one argument");
      Result<TypedExpr> P = compileExpr(E.Args[0]);
      if (!P)
        return P;
      if (!P->Ty.isPtr())
        return Err("allocsize() requires a pointer");
      InternedString T = freshTemp();
      emit(Cmd::action(T, actBlockSize(), Expr::list({ptrBlock(P->E)})));
      return TypedExpr{Expr::pvar(T),
                       CType::of(McType::scalar(ScalarKind::I64))};
    }
    if (F == "free") {
      if (E.Args.size() != 1)
        return Err("free() takes one argument");
      Result<TypedExpr> P = compileExpr(E.Args[0]);
      if (!P)
        return P;
      if (!P->Ty.isPtr())
        return Err("free() requires a pointer");
      InternedString T = freshTemp();
      emit(Cmd::action(T, actFree(), Expr::list({P->E})));
      return TypedExpr{Expr::intE(0),
                       CType::of(McType::scalar(ScalarKind::I64))};
    }
    if (F == "memcpy" || F == "memset") {
      bool Cpy = F == "memcpy";
      if (E.Args.size() != 3)
        return Err(F + "() takes three arguments");
      Result<TypedExpr> A0 = compileExpr(E.Args[0]);
      Result<TypedExpr> A1 = compileExpr(E.Args[1]);
      Result<TypedExpr> A2 = compileExpr(E.Args[2]);
      if (!A0 || !A1 || !A2)
        return Err(!A0 ? A0.error() : (!A1 ? A1.error() : A2.error()));
      if (!A0->Ty.isPtr())
        return Err(F + "() requires a destination pointer");
      InternedString T = freshTemp();
      if (Cpy) {
        if (!A1->Ty.isPtr() || !A2->Ty.isInt())
          return Err("memcpy(dst, src, bytes)");
        emit(Cmd::action(T, actMemcpy(),
                         Expr::list({ptrBlock(A0->E), ptrOffset(A0->E),
                                     ptrBlock(A1->E), ptrOffset(A1->E),
                                     A2->E})));
      } else {
        if (!A1->Ty.isInt() || !A2->Ty.isInt())
          return Err("memset(p, byte, bytes)");
        emit(Cmd::action(T, actMemset(),
                         Expr::list({ptrBlock(A0->E), ptrOffset(A0->E),
                                     A2->E, A1->E})));
      }
      return TypedExpr{Expr::intE(0),
                       CType::of(McType::scalar(ScalarKind::I64))};
    }

    // Symbolic inputs.
    if (F == "symb_i64" || F == "symb_f64") {
      InternedString T = freshTemp();
      emit(Cmd::iSym(T, NextSite++));
      GilType GT = F == "symb_i64" ? GilType::Int : GilType::Num;
      size_t Here = pc();
      emit(Cmd::ifGoto(Expr::hasType(Expr::pvar(T), GT), Here + 2));
      emit(Cmd::vanish());
      return TypedExpr{
          Expr::pvar(T),
          CType::of(McType::scalar(F == "symb_i64" ? ScalarKind::I64
                                                   : ScalarKind::F64))};
    }

    // User functions.
    const CFunc *Callee = Program->find(F);
    if (!Callee)
      return Err("call to unknown function '" + F + "'");
    if (Callee->Params.size() != E.Args.size())
      return Err("'" + F + "' expects " +
                 std::to_string(Callee->Params.size()) + " arguments");
    std::vector<Expr> Args;
    for (size_t I = 0; I != E.Args.size(); ++I) {
      Result<TypedExpr> A = compileExpr(E.Args[I]);
      if (!A)
        return A;
      if (!compatible(CType::of(Callee->Params[I].second), A->Ty))
        return Err("'" + F + "' argument " + std::to_string(I + 1) +
                   " type mismatch");
      Args.push_back(A->E);
    }
    InternedString T = freshTemp();
    emit(Cmd::call(T, Expr::strE(F), Expr::list(std::move(Args))));
    return TypedExpr{Expr::pvar(T), CType::of(Callee->RetType)};
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  Result<bool> compileBlock(const std::vector<CStmt> &Stmts) {
    for (const CStmt &S : Stmts) {
      Result<bool> R = compileStmt(S);
      if (!R)
        return R;
    }
    return true;
  }

  /// Conditions in MC are booleans; integer literals 0/1 also accepted
  /// for `for(;;)`.
  Result<Expr> compileCond(const CExprPtr &E) {
    Result<TypedExpr> C = compileExpr(E);
    if (!C)
      return Err(C.error());
    if (C->Ty.IsBool)
      return C->E;
    if (C->Ty.isInt() && C->E.isLit())
      return Expr::boolE(C->E.litValue().asInt() != 0);
    return Err("condition must be a boolean expression");
  }

  Result<bool> compileStmt(const CStmt &S) {
    switch (S.Kind) {
    case CStmtKind::VarDecl: {
      Result<TypedExpr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      if (!compatible(CType::of(S.DeclType), E->Ty))
        return Err("initialiser type mismatch for '" + S.Name + "'");
      Vars[S.Name] = CType::of(S.DeclType);
      emit(Cmd::assign(InternedString::get(S.Name), E->E));
      return true;
    }
    case CStmtKind::Assign: {
      auto It = Vars.find(S.Name);
      if (It == Vars.end())
        return Err("assignment to undeclared variable '" + S.Name + "'");
      Result<TypedExpr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      if (!compatible(It->second, E->Ty))
        return Err("assignment type mismatch for '" + S.Name + "'");
      emit(Cmd::assign(InternedString::get(S.Name), E->E));
      return true;
    }
    case CStmtKind::FieldSet:
    case CStmtKind::IndexSet: {
      CExpr Shim;
      Shim.Kind = S.Kind == CStmtKind::FieldSet ? CExprKind::Field
                                                : CExprKind::Index;
      Shim.Lhs = S.Base;
      Shim.Name = S.Name;
      Shim.Rhs = S.Idx;
      Result<Address> A = S.Kind == CStmtKind::FieldSet
                              ? fieldAddress(Shim)
                              : indexAddress(Shim);
      if (!A)
        return Err(A.error());
      Result<TypedExpr> V = compileExpr(S.E);
      if (!V)
        return Err(V.error());
      if (!compatible(CType::of(A->ValType), V->Ty))
        return Err("stored value type mismatch");
      emitStore(*A, V->E);
      return true;
    }
    case CStmtKind::ExprStmt: {
      Result<TypedExpr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      emit(Cmd::assign(freshTemp(), E->E));
      return true;
    }
    case CStmtKind::Return: {
      Result<TypedExpr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      emit(Cmd::ret(E->E));
      return true;
    }
    case CStmtKind::Assume: {
      Result<Expr> C = compileCond(S.E);
      if (!C)
        return Err(C.error());
      size_t Here = pc();
      emit(Cmd::ifGoto(*C, Here + 2));
      emit(Cmd::vanish());
      return true;
    }
    case CStmtKind::Assert: {
      Result<Expr> C = compileCond(S.E);
      if (!C)
        return Err(C.error());
      size_t Here = pc();
      emit(Cmd::ifGoto(*C, Here + 2));
      emit(Cmd::fail(Expr::strE("assertion failure")));
      return true;
    }
    case CStmtKind::If: {
      Result<Expr> C = compileCond(S.E);
      if (!C)
        return Err(C.error());
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(*C, 0)); // patched: THEN
      Result<bool> E1 = compileBlock(S.Else);
      if (!E1)
        return E1;
      size_t GotoEnd = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Body[CondIdx].Target = pc();
      Result<bool> T1 = compileBlock(S.Then);
      if (!T1)
        return T1;
      Body[GotoEnd].Target = pc();
      return true;
    }
    case CStmtKind::While:
    case CStmtKind::For: {
      if (S.Kind == CStmtKind::For) {
        Result<bool> I = compileBlock(S.Init);
        if (!I)
          return I;
      }
      size_t Loop = pc();
      Result<Expr> C = compileCond(S.E);
      if (!C)
        return Err(C.error());
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(*C, CondIdx + 2));
      size_t GotoEnd = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Result<bool> B = compileBlock(S.Then);
      if (!B)
        return B;
      if (S.Kind == CStmtKind::For) {
        Result<bool> St = compileBlock(S.Step);
        if (!St)
          return St;
      }
      emit(Cmd::ifGoto(Expr::boolE(true), Loop));
      Body[GotoEnd].Target = pc();
      return true;
    }
    }
    return Err("unknown MC statement kind");
  }

  Result<Proc> compileFunc(const CFunc &F) {
    Body.clear();
    Vars.clear();
    CurFunc = &F;
    Proc P;
    P.Name = InternedString::get(F.Name);
    P.Param = InternedString::get("_args");
    for (size_t K = 0; K != F.Params.size(); ++K) {
      Vars[F.Params[K].first] = CType::of(F.Params[K].second);
      emit(Cmd::assign(InternedString::get(F.Params[K].first),
                       Expr::binOp(BinOpKind::ListNth,
                                   Expr::pvar(P.Param),
                                   Expr::intE(static_cast<int64_t>(K)))));
    }
    Result<bool> R = compileBlock(F.Body);
    if (!R)
      return Err("in fn " + F.Name + ": " + R.error());
    // Implicit return of a zero value of the return type.
    if (F.RetType.isPtr())
      emit(Cmd::ret(nullPtrE()));
    else if (F.RetType.isFloat())
      emit(Cmd::ret(Expr::numE(0)));
    else
      emit(Cmd::ret(Expr::intE(0)));
    P.Body = std::move(Body);
    Body.clear();
    return P;
  }
};

} // namespace

Result<Prog> gillian::mc::compileMc(const CProgram &P) {
  return McCompiler().run(P);
}

Result<Prog> gillian::mc::compileMcSource(std::string_view Source) {
  Result<CProgram> P = parseMc(Source);
  if (!P)
    return Err("MC parse error: " + P.error());
  return compileMc(*P);
}
