//===- engine/interpreter.h - The GIL interpreter (Fig. 1) -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIL semantics of Fig. 1, written once and instantiated both
/// concretely (ConcreteState<M>) and symbolically (SymbolicState<M>) —
/// the template parameter is the paper's state-model parameter S, and the
/// rules below are the transition rules p ⊢ ⟨σ, cs, i⟩ ⇝ ⟨σ', cs', j⟩^o.
///
/// Exploration strategy is factored out of the semantics: step() executes
/// ONE command of one configuration and reports its successors and
/// finished paths to a caller-supplied sink. run() drives it with the
/// classic sequential depth-first worklist; the parallel scheduler
/// (engine/scheduler/exploration_scheduler.h) drives the same step() from
/// a work-stealing pool — configurations after a branch are path-disjoint,
/// so they can execute on different threads with no coordination beyond
/// the (thread-safe) shared solver.
///
/// Branch points (conditional gotos with both sides feasible, branching
/// memory actions) emit extra configurations. Loops unroll up to a
/// per-frame back-jump bound; paths cut by a budget finish with the Bound
/// outcome so the caveat surfaces in results ("bounded verification", §1).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_INTERPRETER_H
#define GILLIAN_ENGINE_INTERPRETER_H

#include "engine/options.h"
#include "engine/state.h"
#include "engine/stats.h"
#include "gil/prog.h"
#include "obs/coverage.h"
#include "obs/progress.h"
#include "obs/query_profile.h"
#include "obs/span.h"
#include "obs/trace_ring.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gillian {

/// Def 2.1's requirement that GIL states expose the proper actions: the
/// exact interface the interpreter consumes.
template <typename St>
concept StateModel =
    std::copyable<St> && requires(St S, const St CS, const Expr &E,
                                  InternedString X,
                                  typename St::ValueT V, uint32_t Site) {
      typename St::ValueT;
      typename St::StoreT;
      { CS.evalExpr(E) } -> std::same_as<Result<typename St::ValueT>>;
      { S.setVar(X, V) };
      { CS.getStore() } -> std::same_as<typename St::StoreT>;
      { S.setStore(CS.getStore()) };
      {
        CS.assumeValue(V)
      } -> std::same_as<Result<std::optional<St>>>;
      { S.allocUSym(Site) } -> std::same_as<typename St::ValueT>;
      { S.allocISym(Site) } -> std::same_as<typename St::ValueT>;
      {
        CS.execAction(X, V)
      } -> std::same_as<Result<std::vector<StateBranch<St>>>>;
      {
        CS.asProcId(V)
      } -> std::same_as<std::optional<InternedString>>;
      { St::errorValue(std::string()) } -> std::same_as<typename St::ValueT>;
    };

/// Terminal outcomes o ∈ O (§2.1), extended with the bounded-exploration
/// outcome so budget cuts are never silently conflated with success.
enum class OutcomeKind : uint8_t {
  Return, ///< N(v): top-level return
  Error,  ///< E(v): fail command, memory fault, or runtime type error
  Vanish, ///< silent path cut (assume-false)
  Bound,  ///< path cut by the loop/step budget
};

std::string_view outcomeKindName(OutcomeKind K);

/// A finished path: its outcome, outcome value, and final state (which,
/// symbolically, carries the final path condition used for counter-models
/// and for the §3 restriction-based replay).
template <StateModel St> struct TraceResult {
  OutcomeKind Kind;
  typename St::ValueT Val;
  St Final;
};

/// An inner stack frame ⟨f, x, ρ, i⟩ (§2.1 call stacks).
template <StateModel St> struct Frame {
  InternedString ProcName;
  InternedString RetVar;
  typename St::StoreT SavedStore;
  size_t RetIdx;
  uint32_t SavedBackjumps; ///< caller's loop budget, restored on return
};

template <StateModel St> class Interpreter {
public:
  /// A configuration ⟨σ, cs, i⟩ of Fig. 1 (state, call stack, program
  /// point) plus the current procedure and this path's back-jump count.
  /// Configurations produced by distinct branches share no mutable data:
  /// states are value types built on copy-on-write structures, so two
  /// configurations can step on different threads concurrently.
  struct Config {
    St State;
    std::vector<Frame<St>> Stack;
    InternedString CurProc;
    size_t I;
    uint32_t Backjumps;
  };

  Interpreter(const Prog &P, const EngineOptions &Opts, ExecStats &Stats)
      : P(P), Opts(Opts), Stats(Stats) {
    // Register every procedure's IfGoto sites up front so branch-coverage
    // totals are static: a branch no path ever reaches reports as
    // uncovered instead of silently missing from the denominator.
    if (obs::ObsConfig::coverage())
      for (const auto &[Name, Proc] : P.procs()) {
        uint32_t Sites = 0;
        for (const Cmd &C : Proc.Body)
          if (C.Kind == CmdKind::IfGoto)
            ++Sites;
        obs::BranchCoverage::instance().registerProc(Name.id(), Sites);
      }
  }

  const EngineOptions &options() const { return Opts; }
  ExecStats &stats() { return Stats; }

  /// Builds the initial configuration for procedure \p Entry applied to
  /// \p Arg in state \p Init. Err(...) reports engine-level misuse
  /// (unknown entry procedure).
  Result<Config> makeInitialConfig(InternedString Entry,
                                   typename St::ValueT Arg, St Init) {
    const Proc *Main = P.find(Entry);
    if (!Main)
      return Err("unknown entry procedure '" + std::string(Entry.str()) +
                 "'");
    typename St::StoreT Store;
    Store.set(Main->Param, std::move(Arg));
    Init.setStore(std::move(Store));
    return Config{std::move(Init), {}, Entry, 0, 0};
  }

  /// The IfGoto site control will reach from \p C without branching or
  /// transferring control: scans forward from C.I over straight-line
  /// commands (assignments, symbol allocations) in the current procedure
  /// and returns the first IfGoto as (procedure id, command index), or
  /// nullopt if a call/return/action/terminal comes first. Pure
  /// inspection — no evaluation, no solver queries — so path-selection
  /// strategies (the coverage-guided frontier) can score a configuration
  /// without stepping it.
  std::optional<std::pair<uint32_t, uint32_t>>
  nextBranchSite(const Config &C) const {
    const Proc *Cur = P.find(C.CurProc);
    if (!Cur)
      return std::nullopt;
    for (size_t I = C.I; I < Cur->Body.size(); ++I) {
      switch (Cur->Body[I].Kind) {
      case CmdKind::IfGoto:
        return std::make_pair(C.CurProc.id(), static_cast<uint32_t>(I));
      case CmdKind::Assign:
      case CmdKind::USym:
      case CmdKind::ISym:
        continue; // straight-line: cannot branch or leave the procedure
      default:
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Runs procedure \p Entry with argument \p Arg from state \p Init,
  /// exploring all paths with the sequential depth-first worklist.
  /// Err(...) reports engine-level misuse (unknown entry procedure);
  /// program-level failures are Error outcomes.
  Result<std::vector<TraceResult<St>>>
  run(InternedString Entry, typename St::ValueT Arg, St Init) {
    Result<Config> Start =
        makeInitialConfig(Entry, std::move(Arg), std::move(Init));
    if (!Start)
      return Err(Start.error());

    obs::Span ExploreSpan(obs::SpanKind::Explore, &Stats.EngineNs);
    std::vector<TraceResult<St>> Results;
    std::vector<Config> Work;
    Work.push_back(Start.take());
    uint64_t Steps = 0;

    // The sequential sink: successors go straight onto the depth-first
    // worklist, finished paths straight into the result vector.
    struct WorklistSink {
      std::vector<Config> &Work;
      std::vector<TraceResult<St>> &Results;
      void cont(Config C) { Work.push_back(std::move(C)); }
      void done(OutcomeKind K, typename St::ValueT V, St S) {
        Results.push_back({K, std::move(V), std::move(S)});
      }
    } Sink{Work, Results};

    while (!Work.empty()) {
      bool StepsOut = Opts.MaxSteps && Steps >= Opts.MaxSteps;
      bool PathsOut =
          Opts.MaxPaths && Results.size() >= Opts.MaxPaths;
      if (StepsOut || PathsOut) {
        // Out of budget: remaining configurations become Bound outcomes,
        // routed through finish() so outcome accounting has exactly one
        // code path (it used to bump PathsBounded inline here, duplicating
        // the counting logic). The outcome value names *which* budget
        // tripped — a MaxPaths cut used to masquerade as "step budget
        // exhausted" (steps win when both trip at once).
        for (Config &C : Work)
          finish(Sink, OutcomeKind::Bound,
                 St::errorValue(StepsOut ? "step budget exhausted"
                                         : "path budget exhausted"),
                 std::move(C.State));
        break;
      }
      Config C = std::move(Work.back());
      Work.pop_back();
      ++Steps;
      step(std::move(C), Sink);
    }
    return Results;
  }

  /// Executes one command of \p C, reporting successors and finished
  /// paths to \p S (a StepSink). Thread-safe for path-disjoint
  /// configurations: mutable state is confined to C, the sink, and the
  /// atomic counters in Stats.
  template <typename Sink> void step(Config C, Sink &S) {
    obs::DetailSpan StepSpan(obs::SpanKind::Step);
    const Proc *Cur = P.find(C.CurProc);
    assert(Cur && "current procedure disappeared");
    if (C.I >= Cur->Body.size()) {
      fail(S, std::move(C),
           "control fell off the end of procedure '" +
               std::string(C.CurProc.str()) + "'");
      return;
    }
    const Cmd &Command = Cur->Body[C.I];
    ++Stats.CmdsExecuted;
    // Publish the executing GIL site so the solver's hot-query profiler
    // can attribute every query this command issues (three word-sized
    // thread-local writes; restored when the command completes).
    obs::QueryOriginScope QueryOrigin(C.CurProc.id(),
                                      static_cast<uint32_t>(C.I));

    switch (Command.Kind) {
    case CmdKind::Assign: {
      // [Assignment]: σ.(setVar_x ∘ eval_e)
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      C.State.setVar(Command.X, V.take());
      ++C.I;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::IfGoto: {
      // [IfGoto-True] / [IfGoto-False]: branch on assume(e) / assume(¬e).
      Result<typename St::ValueT> CondT = C.State.evalExpr(Command.E);
      if (!CondT) {
        fail(S, std::move(C), CondT.error());
        return;
      }
      Result<typename St::ValueT> CondF =
          C.State.evalExpr(Expr::notE(Command.E));

      Result<std::optional<St>> TrueSt = C.State.assumeValue(*CondT);
      if (!TrueSt) {
        fail(S, std::move(C), TrueSt.error());
        return;
      }
      std::optional<St> FalseSt;
      if (CondF) {
        Result<std::optional<St>> FS = C.State.assumeValue(*CondF);
        if (FS)
          FalseSt = std::move(*FS);
        // An error evaluating ¬e after e evaluated cleanly cannot happen
        // (Not of a Bool); a failed assume is simply an infeasible branch.
      }

      bool TookBoth = TrueSt->has_value() && FalseSt.has_value();
      if (TookBoth) {
        ++Stats.Branches;
        obs::TraceRecorder::record(obs::TraceEventKind::BranchTaken, 0, 2);
      }
      obs::BranchCoverage::recordBranch(
          C.CurProc.id(), static_cast<uint32_t>(C.I),
          (FalseSt.has_value() ? obs::BranchFalseBit : 0) |
              (TrueSt->has_value() ? obs::BranchTrueBit : 0));

      if (FalseSt.has_value()) {
        Config FC = C;
        FC.State = std::move(*FalseSt);
        ++FC.I;
        S.cont(std::move(FC));
      }
      if (TrueSt->has_value()) {
        bool Backjump = Command.Target <= C.I;
        if (Backjump && ++C.Backjumps > Opts.LoopBound) {
          finish(S, OutcomeKind::Bound,
                 St::errorValue("loop bound reached"), std::move(C.State));
          return;
        }
        C.State = std::move(**TrueSt);
        C.I = Command.Target;
        S.cont(std::move(C));
      }
      return;
    }

    case CmdKind::Call: {
      // [Call]: resolve callee, push frame, enter with store [y -> v].
      ++Stats.ProcCalls;
      Result<typename St::ValueT> Callee = C.State.evalExpr(Command.E);
      if (!Callee) {
        fail(S, std::move(C), Callee.error());
        return;
      }
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.Arg);
      if (!Arg) {
        fail(S, std::move(C), Arg.error());
        return;
      }
      std::optional<InternedString> F = C.State.asProcId(*Callee);
      if (!F) {
        fail(S, std::move(C), "call target is not a procedure");
        return;
      }
      const Proc *PP = P.find(*F);
      if (!PP) {
        fail(S, std::move(C),
             "call to unknown procedure '" + std::string(F->str()) + "'");
        return;
      }
      if (C.Stack.size() >= Opts.MaxCallDepth) {
        finish(S, OutcomeKind::Bound,
               St::errorValue("call depth bound reached"),
               std::move(C.State));
        return;
      }
      // The frame records the *caller's* procedure, store, resume index
      // and loop budget, all restored on return.
      C.Stack.push_back(Frame<St>{C.CurProc, Command.X, C.State.getStore(),
                                  C.I + 1, C.Backjumps});
      typename St::StoreT Store;
      Store.set(PP->Param, Arg.take());
      C.State.setStore(std::move(Store));
      C.CurProc = *F;
      C.I = 0;
      C.Backjumps = 0;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::Return: {
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      if (C.Stack.empty()) {
        // [Top Return]: N(v).
        finish(S, OutcomeKind::Return, V.take(), std::move(C.State));
        return;
      }
      // [Return]: restore caller store, bind the return variable.
      Frame<St> F = std::move(C.Stack.back());
      C.Stack.pop_back();
      C.State.setStore(std::move(F.SavedStore));
      C.State.setVar(F.RetVar, V.take());
      C.CurProc = F.ProcName;
      C.I = F.RetIdx;
      C.Backjumps = F.SavedBackjumps;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::Fail: {
      // [Fail]: E(v).
      Result<typename St::ValueT> V = C.State.evalExpr(Command.E);
      if (!V) {
        fail(S, std::move(C), V.error());
        return;
      }
      finish(S, OutcomeKind::Error, V.take(), std::move(C.State));
      return;
    }

    case CmdKind::Vanish:
      finish(S, OutcomeKind::Vanish, St::errorValue("vanish"),
             std::move(C.State));
      return;

    case CmdKind::Action: {
      // [Action]: σ.(setVar_x ∘ α ∘ eval_e).
      ++Stats.ActionCalls;
      Result<typename St::ValueT> Arg = C.State.evalExpr(Command.E);
      if (!Arg) {
        fail(S, std::move(C), Arg.error());
        return;
      }
      Result<std::vector<StateBranch<St>>> Branches =
          C.State.execAction(Command.Action, *Arg);
      if (!Branches) {
        fail(S, std::move(C), Branches.error());
        return;
      }
      if (Branches->size() > 1) {
        Stats.Branches += Branches->size() - 1;
        obs::TraceRecorder::record(obs::TraceEventKind::BranchTaken, 0,
                                   static_cast<uint32_t>(Branches->size()));
      }
      for (StateBranch<St> &B : *Branches) {
        if (B.IsError) {
          finish(S, OutcomeKind::Error, std::move(B.Ret),
                 std::move(B.State));
          continue;
        }
        Config NC = C;
        NC.State = std::move(B.State);
        NC.State.setVar(Command.X, std::move(B.Ret));
        ++NC.I;
        S.cont(std::move(NC));
      }
      return;
    }

    case CmdKind::USym: {
      // [uSym]: fresh uninterpreted symbol from the built-in allocator.
      typename St::ValueT V = C.State.allocUSym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      S.cont(std::move(C));
      return;
    }

    case CmdKind::ISym: {
      // [iSym]: fresh interpreted symbol (logical variable / scripted
      // value).
      typename St::ValueT V = C.State.allocISym(Command.Site);
      C.State.setVar(Command.X, std::move(V));
      ++C.I;
      S.cont(std::move(C));
      return;
    }
    }
    fail(S, std::move(C), "unknown command kind");
  }

  /// Records a finished path: bumps the per-outcome counter, then hands
  /// the TraceResult to the sink. Public so exploration drivers (the
  /// parallel scheduler's budget cuts) account outcomes identically.
  template <typename Sink>
  void finish(Sink &S, OutcomeKind K, typename St::ValueT V, St State) {
    switch (K) {
    case OutcomeKind::Return: ++Stats.PathsFinished; break;
    case OutcomeKind::Error: ++Stats.PathsErrored; break;
    case OutcomeKind::Vanish: ++Stats.PathsVanished; break;
    case OutcomeKind::Bound: ++Stats.PathsBounded; break;
    }
    obs::TraceRecorder::record(obs::TraceEventKind::PathFinished,
                               static_cast<uint8_t>(K));
    ++obs::progressCounters().PathsFinished;
    S.done(K, std::move(V), std::move(State));
  }

private:
  template <typename Sink>
  void fail(Sink &S, Config C, const std::string &Msg) {
    finish(S, OutcomeKind::Error, St::errorValue(Msg), std::move(C.State));
  }

  const Prog &P;
  const EngineOptions &Opts;
  ExecStats &Stats;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_INTERPRETER_H
