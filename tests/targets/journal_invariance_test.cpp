//===- tests/targets/journal_invariance_test.cpp --------------------------===//
//
// The journal-invariance property (DESIGN.md §4i): the execution journal
// records *what the semantics did*, not *when the scheduler ran it*. On
// the evaluation workloads (MJS Buckets, MC Collections) the reconstructed
// path forest — roots in test order, children by branch index, per-node
// events canonicalised to semantic content — must be identical across
// worker counts {1, 2, 8} and strategies {oldest, coverage}. Node ids,
// verdict layers, wall times and spawn priorities are run-dependent and
// excluded by canonicalTreeSignature; everything else must align exactly.
//
// Also pinned here, on journals from a real exploration rather than
// hand-made events: the serialize→parse→serialize byte round-trip, and
// capture()'s losslessness (every emitted event is in the snapshot).
//
// Runs under TSan in CI: the emission path (interpreter + scheduler
// workers) and the capture path race by design and must be clean.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/journal/analysis.h"
#include "obs/journal/journal.h"
#include "obs/journal/journal_io.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;
using namespace gillian::obs::journal;

namespace {

/// Explores every `test_*` procedure of \p P under (strategy, workers)
/// with the journal on and returns the captured journal. Tests run in
/// declaration order on the calling thread, so root node ids are assigned
/// in test order at every worker count.
template <typename M>
JournalData journalOf(const Prog &P, SelectionStrategy S, uint32_t Workers) {
  reset();
  setEnabled(true);
  EngineOptions Opts;
  Opts.Scheduler.Strategy = S;
  Opts.Scheduler.Workers = Workers;
  Opts.Scheduler.SequentialFallback = false;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T;
  }
  JournalData D = capture();
  setEnabled(false);
  reset();
  return D;
}

constexpr uint32_t WorkerCounts[] = {1, 2, 8};
constexpr SelectionStrategy Strategies[] = {SelectionStrategy::OldestFirst,
                                            SelectionStrategy::CoverageGuided};

template <typename M>
void expectJournalInvariant(const Prog &P, std::string_view Name) {
  const JournalData Baseline =
      journalOf<M>(P, SelectionStrategy::OldestFirst, 1);
  ASSERT_FALSE(Baseline.Events.empty()) << Name;
  const std::string BaseSig = canonicalTreeSignature(Baseline);

  for (SelectionStrategy S : Strategies)
    for (uint32_t W : WorkerCounts) {
      if (S == SelectionStrategy::OldestFirst && W == 1)
        continue; // the baseline itself
      JournalData D = journalOf<M>(P, S, W);
      EXPECT_EQ(BaseSig, canonicalTreeSignature(D))
          << Name << " strategy=" << strategyName(S) << " workers=" << W;
    }
}

Result<Prog> compileBuckets(const BucketsSuite &S) {
  return mjs::compileMjsSource(std::string(bucketsLibrary()) + "\n" +
                               std::string(S.Source));
}

/// Two structures per language: crosses both memory models while keeping
/// the 6-configuration product per suite affordable (the same trade as
/// strategy_determinism_test).
std::vector<BucketsSuite> bucketsSubset() {
  const std::vector<BucketsSuite> &All = bucketsSuites();
  return {All.begin(), All.begin() + std::min<size_t>(2, All.size())};
}

std::vector<CollectionsSuite> collectionsSubset() {
  const std::vector<CollectionsSuite> &All = collectionsSuites();
  return {All.begin(), All.begin() + std::min<size_t>(2, All.size())};
}

class BucketsJournalTest : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsJournalTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

} // namespace

TEST_P(BucketsJournalTest, ForestIsWorkerAndStrategyInvariant) {
  const BucketsSuite &S = GetParam();
  Result<Prog> P = compileBuckets(S);
  ASSERT_TRUE(P.ok()) << P.error();
  expectJournalInvariant<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    TwoStructures, BucketsJournalTest, ::testing::ValuesIn(bucketsSubset()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsJournalTest, ForestIsWorkerAndStrategyInvariant) {
  const CollectionsSuite &S = GetParam();
  Result<Prog> P = mc::compileMcSource(std::string(collectionsLibrary()) +
                                       "\n" + std::string(S.Source));
  ASSERT_TRUE(P.ok()) << P.error();
  expectJournalInvariant<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    TwoStructures, CollectionsJournalTest,
    ::testing::ValuesIn(collectionsSubset()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(JournalRealRunTest, CaptureIsLosslessAndRoundTrips) {
  Result<Prog> P = compileBuckets(bucketsSuites().front());
  ASSERT_TRUE(P.ok()) << P.error();
  reset();
  setEnabled(true);
  EngineOptions Opts;
  Opts.Scheduler.Workers = 4;
  Opts.Scheduler.SequentialFallback = false;
  Solver Slv(Opts.Solver);
  ExecStats Stats;
  using St = SymbolicState<mjs::MjsSMem>;
  for (const std::string &T : testProcs(*P)) {
    St Init(mjs::MjsSMem(), &Slv, &Opts);
    Interpreter<St> Interp(*P, Opts, Stats);
    ASSERT_TRUE(runExploration(Interp, InternedString::get(T),
                               Expr::list({}), std::move(Init))
                    .ok());
  }
  JournalData D = capture();
  EXPECT_EQ(static_cast<uint64_t>(D.Events.size()), eventsEmitted());
  setEnabled(false);
  reset();
  ASSERT_FALSE(D.Events.empty());

  // Byte-identical round trip on a real journal, including its string
  // table and every varint edge the workload produced.
  std::string Bytes = serializeJournal(D);
  JournalData Back;
  std::string Err;
  ASSERT_TRUE(parseJournal(Bytes, Back, Err)) << Err;
  EXPECT_EQ(serializeJournal(Back), Bytes);

  // Every path that terminated has exactly one PathEnd, and every
  // branch-created child id is unique (the forest is a forest).
  std::vector<uint64_t> Children;
  for (const Event &E : D.Events)
    if (E.Kind == static_cast<uint8_t>(EventKind::Branch) && E.Aux != 0)
      Children.push_back(E.Aux);
  std::sort(Children.begin(), Children.end());
  EXPECT_EQ(std::adjacent_find(Children.begin(), Children.end()),
            Children.end());
}
