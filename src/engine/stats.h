//===- engine/stats.h - Execution statistics -------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters reported by the evaluation harness. "GIL commands" is the
/// metric of Tables 1 and 2 in the paper.
///
/// Counters are relaxed atomics so one ExecStats instance can be shared by
/// every worker of the parallel exploration scheduler and still sum
/// exactly — the counts are schedule-independent, only the interleaving of
/// increments varies. Copies and arithmetic read/write relaxed; they are
/// aggregation conveniences for quiescent points (end of a run), not
/// cross-thread synchronisation.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_STATS_H
#define GILLIAN_ENGINE_STATS_H

#include <atomic>
#include <cstdint>

namespace gillian {

struct ExecStats {
  std::atomic<uint64_t> CmdsExecuted{0}; ///< GIL commands (Tables 1/2)
  std::atomic<uint64_t> Branches{0};     ///< points where execution split
  std::atomic<uint64_t> PathsFinished{0};
  std::atomic<uint64_t> PathsVanished{0};
  std::atomic<uint64_t> PathsErrored{0};
  std::atomic<uint64_t> PathsBounded{0}; ///< cut by loop/step budgets
  std::atomic<uint64_t> ActionCalls{0};
  std::atomic<uint64_t> ProcCalls{0};

  // Solver effort attributed to this execution (filled by the symbolic
  // test runner from SolverStats deltas; zero for concrete runs).
  std::atomic<uint64_t> SolverQueries{0};
  std::atomic<uint64_t> SolverCacheHits{0}; ///< full-query + slice hits
  std::atomic<uint64_t> SolverIncReuses{0}; ///< Z3 answers on a reused prefix
  std::atomic<uint64_t> SolverNs{0}; ///< wall-time inside the solver
  std::atomic<uint64_t> EngineNs{0}; ///< wall-time of the exploration loop

  ExecStats() = default;
  ExecStats(const ExecStats &O) { *this = O; }

  ExecStats &operator=(const ExecStats &O) {
    forEach(O, [](std::atomic<uint64_t> &A, const std::atomic<uint64_t> &B) {
      A.store(B.load(std::memory_order_relaxed), std::memory_order_relaxed);
    });
    return *this;
  }

  ExecStats &operator+=(const ExecStats &O) {
    forEach(O, [](std::atomic<uint64_t> &A, const std::atomic<uint64_t> &B) {
      A.fetch_add(B.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    });
    return *this;
  }

  /// Explicit name for summing per-worker snapshots into an aggregate.
  void merge(const ExecStats &O) { *this += O; }

private:
  /// Applies \p F to every (our field, other's field) pair; the single
  /// field list keeps copy and sum in sync.
  template <typename Fn> void forEach(const ExecStats &O, Fn F) {
    F(CmdsExecuted, O.CmdsExecuted);
    F(Branches, O.Branches);
    F(PathsFinished, O.PathsFinished);
    F(PathsVanished, O.PathsVanished);
    F(PathsErrored, O.PathsErrored);
    F(PathsBounded, O.PathsBounded);
    F(ActionCalls, O.ActionCalls);
    F(ProcCalls, O.ProcCalls);
    F(SolverQueries, O.SolverQueries);
    F(SolverCacheHits, O.SolverCacheHits);
    F(SolverIncReuses, O.SolverIncReuses);
    F(SolverNs, O.SolverNs);
    F(EngineNs, O.EngineNs);
  }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_STATS_H
