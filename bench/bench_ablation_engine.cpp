//===- bench/bench_ablation_engine.cpp ------------------------------------===//
//
// Ablation of the engine improvements §4.1 credits for the ~2x speedup of
// Gillian-JS over JaVerT 2.0: expression simplification, the
// simplification memo, solver result caching, independence slicing, the
// syntactic solver layer, and incremental Z3 sessions. Each row disables
// one ingredient on the
// full Buckets workload and reports the solver cache hit rate; a final
// JSON line carries the per-configuration solver-layer statistics.
//
// A second block ablates the *path-selection strategy* (DESIGN.md §4e):
// for each strategy it sweeps the per-test path budget geometrically and
// reports the smallest budget (and its wall time) that reaches full
// achievable branch coverage on a Buckets target, and that finds the
// first seeded bug in the buggy Collections library. --quick skips the
// sweep (CI's strategy matrix only validates the JSON shape); --strategy
// selects the strategy of the "parallel" row.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"
#include "targets/suite_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

using namespace gillian;
using namespace gillian::targets;

namespace {

struct RunResult {
  double Seconds = 0;
  uint64_t SpuriousAlarms = 0; ///< potential-bug reports (AllowAlarms rows)
  SolverStats Solver;
};

/// Runs the whole Buckets workload under \p Opts. The workload is
/// bug-free, so a reported bug normally aborts the ablation — except for
/// configurations that knowingly over-approximate (no Z3 fallback:
/// Unknown branch conditions stay feasible, so unverifiable assertion
/// alarms are expected); those pass \p AllowAlarms and the row reports
/// the alarm count instead.
RunResult runAll(const EngineOptions &Opts, bool AllowAlarms = false) {
  RunResult Res;
  auto T0 = std::chrono::steady_clock::now();
  for (const BucketsSuite &S : bucketsSuites()) {
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = mjs::compileMjsSource(Src);
    if (!P) {
      std::fprintf(stderr, "compile error: %s\n", P.error().c_str());
      std::exit(1);
    }
    SuiteResult R = runSuite<mjs::MjsSMem>(S.Name, *P, Opts);
    if (!R.clean()) {
      if (!AllowAlarms) {
        std::fprintf(stderr, "unexpected bug in ablation run: %s\n",
                     R.Bugs[0].Message.c_str());
        std::exit(1);
      }
      Res.SpuriousAlarms += R.Bugs.size();
    }
    Res.Solver += R.Solver;
  }
  Res.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  return Res;
}

/// One strategy's sweep result on one target.
struct SweepPoint {
  bool Reached = false;    ///< goal reached within the budget ceiling
  uint64_t Budget = 0;     ///< smallest per-test MaxPaths that reached it
  uint64_t Paths = 0;      ///< paths actually recorded at that budget
  double Seconds = 0;      ///< wall time of the reaching run
};

/// Runs \p P's suite under \p S at one worker with per-test path budget
/// \p Budget, from cold caches and fresh coverage.
template <SymbolicMemoryModel M>
SuiteResult budgetedRun(std::string_view Name, const Prog &P,
                        SelectionStrategy S, uint64_t Budget,
                        double &SecondsOut) {
  bench::coldStart();
  obs::BranchCoverage::instance().reset();
  EngineOptions O;
  O.Scheduler.Strategy = S;
  O.Scheduler.Workers = 1; // deterministic: strategy order, no task races
  O.MaxPaths = Budget;
  auto T0 = std::chrono::steady_clock::now();
  SuiteResult R = runSuite<M>(Name, P, O);
  SecondsOut = bench::seconds(T0);
  return R;
}

/// Sweeps the per-test path budget geometrically until \p Reached says
/// the goal is met (full coverage, or a bug found).
template <SymbolicMemoryModel M, typename ReachedFn>
SweepPoint sweepBudget(std::string_view Name, const Prog &P,
                       SelectionStrategy S, uint64_t MaxBudget,
                       ReachedFn Reached) {
  SweepPoint Out;
  for (uint64_t B = 1; B <= MaxBudget; B *= 2) {
    double Sec = 0;
    SuiteResult R = budgetedRun<M>(Name, P, S, B, Sec);
    if (Reached(R)) {
      Out.Reached = true;
      Out.Budget = B;
      Out.Paths = R.PathsExplored + R.BoundedPaths;
      Out.Seconds = Sec;
      return Out;
    }
  }
  Out.Budget = MaxBudget;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bool Quick = false;
  {
    int Out = 1;
    for (int In = 1; In < argc; ++In) {
      if (std::strcmp(argv[In], "--quick") == 0)
        Quick = true;
      else
        argv[Out++] = argv[In];
    }
    argc = Out;
  }
  bench::setupObs(Args);
  struct Config {
    const char *Name;
    bool InQuick; ///< part of the fast CI subset
    std::function<EngineOptions()> Make;
    bool AllowAlarms = false; ///< over-approximating row: tolerate alarms
  };
  const Config Configs[] = {
      {"full (Gillian)", true, [] { return EngineOptions(); }},
      {"no simplifier cache", false,
       [] {
         EngineOptions O;
         O.UseSimplifierCache = false;
         return O;
       }},
      {"no solver cache", false,
       [] {
         EngineOptions O;
         O.Solver.UseCache = false;
         return O;
       }},
      {"no slicing", false,
       [] {
         EngineOptions O;
         O.Solver.UseSlicing = false;
         return O;
       }},
      {"no syntactic layer", false,
       [] {
         EngineOptions O;
         O.Solver.UseSyntactic = false;
         return O;
       }},
      {"no incremental sessions", false,
       [] {
         EngineOptions O;
         O.Solver.UseIncremental = false;
         return O;
       }},
      {"no native solver", false,
       [] {
         EngineOptions O;
         O.Solver.UseNative = false;
         return O;
       }},
      // Every callee body re-executed at every call site — the ablation
      // of the procedure summary cache (DESIGN.md §4g). Identical
      // results by the summary_differential_test invariant; the delta is
      // pure re-execution cost.
      {"no procedure summaries", false,
       [] {
         EngineOptions O;
         O.UseSummaries = false;
         return O;
       }},
      // The decidable (equality/disequality) subset never leaves the
      // process; arithmetic queries answer Unknown instead of reaching
      // Z3, so this row also measures how much of the workload the
      // native layer covers on its own.
      {"native only, no Z3 fallback on decidable subset", false,
       [] {
         EngineOptions O;
         O.Solver.UseZ3 = false;
         return O;
       },
       /*AllowAlarms=*/true},
      // The async batched query service at the row's worker count: same
      // layer stack, solves routed through the dedup/subsumption queue.
      {"async solver service", false,
       [&Args] {
         EngineOptions O;
         O.Scheduler.Workers = Args.Workers;
         O.Scheduler.Strategy = Args.Strategy;
         O.Solver.AsyncSolvers = Args.Async ? Args.Async : 2;
         return O;
       }},
      {"legacy JaVerT 2.0", false,
       [] { return EngineOptions::legacyJaVerT2(); }},
      {"parallel", true,
       [&Args] {
         EngineOptions O;
         O.Scheduler.Workers = Args.Workers;
         O.Scheduler.Strategy = Args.Strategy;
         O.Solver.UseNative = Args.Native;
         O.Solver.AsyncSolvers = Args.Async;
         return O;
       }},
      // The coverage-guided frontier at the same worker count — the
      // strategy ablation row of this PR's tentpole, kept in the main
      // table so one run shows its end-to-end cost next to oldest-first.
      {"parallel coverage-guided", false,
       [&Args] {
         EngineOptions O;
         O.Scheduler.Workers = Args.Workers;
         O.Scheduler.Strategy = SelectionStrategy::CoverageGuided;
         return O;
       }},
  };

  std::printf("Engine ablation on the full Buckets workload "
              "(11 suites, 74 symbolic tests)%s\n",
              Quick ? " [--quick subset]" : "");
  std::printf("%-24s %10s %10s %9s\n", "Configuration", "Time", "vs full",
              "HitRate");
  double Base = 0;
  std::string ConfigsJson;
  for (const Config &C : Configs) {
    if (Quick && !C.InQuick)
      continue;
    // Cold caches per configuration: runSuite feeds the process-wide
    // solver cache, which would otherwise warm every later row.
    bench::coldStart();
    EngineOptions O = C.Make();
    if (!Args.Summaries)
      O.UseSummaries = false; // --no-summaries ablates every row at once
    RunResult R = runAll(O, C.AllowAlarms);
    if (Base == 0)
      Base = R.Seconds;
    std::printf("%-24s %9.3fs %9.2fx %8.1f%%%s\n", C.Name, R.Seconds,
                Base > 0 ? R.Seconds / Base : 0.0,
                100.0 * R.Solver.cacheHitRate(),
                R.SpuriousAlarms
                    ? ("  [" + std::to_string(R.SpuriousAlarms) +
                       " unverifiable alarms]")
                          .c_str()
                    : "");
    obs::JsonWriter Row;
    Row.beginObject();
    Row.field("name", C.Name);
    Row.field("strategy", strategyName(O.Scheduler.Strategy));
    Row.field("workers", static_cast<uint64_t>(
                             O.Scheduler.Workers ? O.Scheduler.Workers : 1));
    Row.field("spurious_alarms", R.SpuriousAlarms);
    Row.field("time_s", R.Seconds, 6);
    Row.key("solver");
    Row.raw(solverStatsJson(R.Solver));
    Row.endObject();
    if (!ConfigsJson.empty())
      ConfigsJson += ",";
    ConfigsJson += Row.take();
  }

  // Strategy ablation: smallest per-test path budget reaching (a) full
  // achievable branch coverage on a Buckets target and (b) the first
  // seeded bug in the buggy Collections library — the discovery-order
  // metrics the EXPERIMENTS.md table reports. Skipped under --quick.
  std::string StrategyJson;
  std::string BucketsTargetName, BugTargetName;
  if (!Quick) {
    // Buckets target: bst when present — the front suite (array)
    // reaches full coverage at budget 1 under every strategy, leaving
    // the sweep nothing to separate; bst needs several paths per test.
    const std::vector<BucketsSuite> &AllBuckets = bucketsSuites();
    auto BIt = std::find_if(
        AllBuckets.begin(), AllBuckets.end(),
        [](const BucketsSuite &S) { return S.Name == "bst"; });
    const BucketsSuite &BS =
        BIt != AllBuckets.end() ? *BIt : AllBuckets.front();
    BucketsTargetName = std::string(BS.Name);
    std::string BSrc =
        std::string(bucketsLibrary()) + "\n" + std::string(BS.Source);
    Result<Prog> BP = mjs::compileMjsSource(BSrc);
    if (!BP) {
      std::fprintf(stderr, "compile error: %s\n", BP.error().c_str());
      return 1;
    }
    // Achievable coverage: unbounded oldest-first run.
    uint64_t Achievable = 0, AchTotal = 0;
    {
      double Sec = 0;
      budgetedRun<mjs::MjsSMem>(BS.Name, *BP, SelectionStrategy::OldestFirst,
                                0, Sec);
      obs::BranchCoverage::instance().totals(Achievable, AchTotal);
    }
    // Bug target: the first buggy-Collections suite that reports a bug
    // on an unbounded run.
    Result<Prog> GP = Err("no buggy suite found");
    for (const CollectionsSuite &CS : collectionsSuites()) {
      std::string Src = std::string(collectionsBuggyLibrary()) + "\n" +
                        std::string(CS.Source);
      Result<Prog> P = mc::compileMcSource(Src);
      if (!P)
        continue;
      double Sec = 0;
      SuiteResult R = budgetedRun<mc::McSMem>(
          CS.Name, *P, SelectionStrategy::OldestFirst, 0, Sec);
      if (!R.Bugs.empty()) {
        GP = std::move(P);
        BugTargetName = std::string(CS.Name);
        break;
      }
    }

    std::printf("\nStrategy ablation (one worker, geometric per-test path "
                "budget sweep)\n");
    std::printf("  Buckets target '%s': %llu achievable branch outcomes; "
                "bug target '%s'\n",
                BucketsTargetName.c_str(),
                static_cast<unsigned long long>(Achievable),
                BugTargetName.c_str());
    std::printf("%-10s %12s %10s %12s %10s\n", "Strategy", "CovBudget",
                "CovTime", "BugBudget", "BugTime");
    const SelectionStrategy Strategies[] = {
        SelectionStrategy::OldestFirst, SelectionStrategy::RandomPath,
        SelectionStrategy::SubtreeSize, SelectionStrategy::CoverageGuided};
    for (SelectionStrategy S : Strategies) {
      SweepPoint Cov = sweepBudget<mjs::MjsSMem>(
          BS.Name, *BP, S, 4096, [&](const SuiteResult &R) {
            uint64_t C = 0, T = 0;
            (void)R;
            obs::BranchCoverage::instance().totals(C, T);
            return C >= Achievable;
          });
      SweepPoint Bug;
      if (GP)
        Bug = sweepBudget<mc::McSMem>(
            BugTargetName, *GP, S, 4096,
            [](const SuiteResult &R) { return !R.Bugs.empty(); });
      std::printf("%-10s %12llu %9.3fs %12llu %9.3fs%s\n", strategyName(S),
                  static_cast<unsigned long long>(Cov.Budget), Cov.Seconds,
                  static_cast<unsigned long long>(Bug.Budget), Bug.Seconds,
                  Cov.Reached && Bug.Reached ? "" : "  [goal not reached]");
      obs::JsonWriter Row;
      Row.beginObject();
      Row.field("strategy", strategyName(S));
      Row.field("coverage_budget", Cov.Budget);
      Row.field("coverage_paths", Cov.Paths);
      Row.field("coverage_time_s", Cov.Seconds, 6);
      Row.field("coverage_reached", Cov.Reached);
      Row.field("bug_budget", Bug.Budget);
      Row.field("bug_paths", Bug.Paths);
      Row.field("bug_time_s", Bug.Seconds, 6);
      Row.field("bug_found", Bug.Reached);
      Row.endObject();
      if (!StrategyJson.empty())
        StrategyJson += ",";
      StrategyJson += Row.take();
    }
  }

  std::printf("\nPaper shape check: the legacy configuration is the "
              "slowest (§4.1 credits simplification and caching for the "
              "J2 -> GJS speedup). In our engine the solver result cache "
              "is the dominant ingredient: without it, repeated aliasing "
              "and branch-feasibility queries pay SMT round-trips.\n");
  if (Args.Json) {
    obs::JsonWriter W;
    W.beginObject();
    W.field("bench", "ablation_engine");
    W.field("strategy", strategyName(Args.Strategy));
    W.field("workers", static_cast<uint64_t>(Args.Workers));
    W.field("quick", Quick);
    W.key("configs");
    W.beginArray();
    W.raw(ConfigsJson);
    W.endArray();
    W.key("strategy_ablation");
    W.beginObject();
    W.field("buckets_target", BucketsTargetName);
    W.field("bug_target", BugTargetName);
    W.key("rows");
    W.beginArray();
    W.raw(StrategyJson);
    W.endArray();
    W.endObject();
    W.key("coverage");
    W.raw(obs::BranchCoverage::instance().json());
    W.key("obs");
    W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
    W.endObject();
    std::printf("\n%s\n", W.take().c_str());
  }
  bench::finishObs(Args);
  return 0;
}
