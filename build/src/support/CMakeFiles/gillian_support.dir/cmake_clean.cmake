file(REMOVE_RECURSE
  "CMakeFiles/gillian_support.dir/diagnostics.cpp.o"
  "CMakeFiles/gillian_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/gillian_support.dir/interner.cpp.o"
  "CMakeFiles/gillian_support.dir/interner.cpp.o.d"
  "CMakeFiles/gillian_support.dir/lexer.cpp.o"
  "CMakeFiles/gillian_support.dir/lexer.cpp.o.d"
  "libgillian_support.a"
  "libgillian_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
