//===- gil/expr.cpp -------------------------------------------------------===//

#include "gil/expr.h"

#include <algorithm>
#include <cassert>

using namespace gillian;

struct Expr::Node {
  ExprKind Kind;
  uint8_t Op = 0; ///< UnOpKind or BinOpKind, depending on Kind
  Value Lit;
  InternedString Var;
  std::vector<Expr> Kids;
  size_t Hash = 0;
};

namespace {

size_t mix(size_t H, size_t X) {
  return (H ^ X) * 0x9E3779B97F4A7C15ull + 0x632BE59BD9B4E019ull;
}

} // namespace

Expr Expr::lit(Value V) {
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::Lit;
  N->Hash = mix(1, V.hash());
  N->Lit = std::move(V);
  Expr E;
  E.N = std::move(N);
  return E;
}

Expr Expr::pvar(InternedString X) {
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::PVar;
  N->Var = X;
  N->Hash = mix(2, X.id());
  Expr E;
  E.N = std::move(N);
  return E;
}

Expr Expr::lvar(InternedString X) {
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::LVar;
  N->Var = X;
  N->Hash = mix(3, X.id());
  Expr E;
  E.N = std::move(N);
  return E;
}

Expr Expr::unOp(UnOpKind Op, Expr E) {
  assert(E && "unOp child must be non-null");
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::UnOp;
  N->Op = static_cast<uint8_t>(Op);
  N->Hash = mix(mix(4, N->Op), E.hash());
  N->Kids.push_back(std::move(E));
  Expr R;
  R.N = std::move(N);
  return R;
}

Expr Expr::binOp(BinOpKind Op, Expr A, Expr B) {
  assert(A && B && "binOp children must be non-null");
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::BinOp;
  N->Op = static_cast<uint8_t>(Op);
  N->Hash = mix(mix(mix(5, N->Op), A.hash()), B.hash());
  N->Kids.push_back(std::move(A));
  N->Kids.push_back(std::move(B));
  Expr R;
  R.N = std::move(N);
  return R;
}

Expr Expr::list(std::vector<Expr> Elems) {
  auto N = std::make_shared<Node>();
  N->Kind = ExprKind::List;
  size_t H = 6;
  for (const Expr &E : Elems) {
    assert(E && "list elements must be non-null");
    H = mix(H, E.hash());
  }
  N->Hash = mix(H, Elems.size());
  N->Kids = std::move(Elems);
  Expr R;
  R.N = std::move(N);
  return R;
}

ExprKind Expr::kind() const {
  assert(N && "kind() on null Expr");
  return N->Kind;
}

const Value &Expr::litValue() const {
  assert(N && N->Kind == ExprKind::Lit && "not a literal");
  return N->Lit;
}

InternedString Expr::varName() const {
  assert(N && (N->Kind == ExprKind::PVar || N->Kind == ExprKind::LVar) &&
         "not a variable");
  return N->Var;
}

UnOpKind Expr::unOpKind() const {
  assert(N && N->Kind == ExprKind::UnOp && "not a unary operator");
  return static_cast<UnOpKind>(N->Op);
}

BinOpKind Expr::binOpKind() const {
  assert(N && N->Kind == ExprKind::BinOp && "not a binary operator");
  return static_cast<BinOpKind>(N->Op);
}

size_t Expr::numChildren() const { return N ? N->Kids.size() : 0; }

const Expr &Expr::child(size_t I) const {
  assert(N && I < N->Kids.size() && "child index out of range");
  return N->Kids[I];
}

size_t Expr::hash() const { return N ? N->Hash : 0; }

bool gillian::operator==(const Expr &A, const Expr &B) {
  if (A.N == B.N)
    return true;
  if (!A.N || !B.N)
    return false;
  if (A.N->Hash != B.N->Hash || A.N->Kind != B.N->Kind || A.N->Op != B.N->Op)
    return false;
  switch (A.N->Kind) {
  case ExprKind::Lit:
    return A.N->Lit == B.N->Lit;
  case ExprKind::PVar:
  case ExprKind::LVar:
    return A.N->Var == B.N->Var;
  case ExprKind::UnOp:
  case ExprKind::BinOp:
  case ExprKind::List: {
    if (A.N->Kids.size() != B.N->Kids.size())
      return false;
    for (size_t I = 0, E = A.N->Kids.size(); I != E; ++I)
      if (A.N->Kids[I] != B.N->Kids[I])
        return false;
    return true;
  }
  }
  return false;
}

/// True for unary operators spelled like function calls ("typeof(e)").
static bool isKeywordUnOp(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg:
  case UnOpKind::Not:
  case UnOpKind::BitNot:
    return false;
  default:
    return true;
  }
}

/// True for binary operators spelled like function calls ("l_nth(a,b)").
static bool isKeywordBinOp(BinOpKind Op) {
  return Op == BinOpKind::ListNth || Op == BinOpKind::StrNth;
}

std::string Expr::toString() const {
  if (!N)
    return "<null-expr>";
  switch (N->Kind) {
  case ExprKind::Lit:
    return N->Lit.toString();
  case ExprKind::PVar:
  case ExprKind::LVar:
    return std::string(N->Var.str());
  case ExprKind::UnOp: {
    UnOpKind Op = unOpKind();
    std::string C = N->Kids[0].toString();
    if (isKeywordUnOp(Op))
      return std::string(unOpSpelling(Op)) + "(" + C + ")";
    return "(" + std::string(unOpSpelling(Op)) + " " + C + ")";
  }
  case ExprKind::BinOp: {
    BinOpKind Op = binOpKind();
    std::string A = N->Kids[0].toString(), B = N->Kids[1].toString();
    if (isKeywordBinOp(Op))
      return std::string(binOpSpelling(Op)) + "(" + A + ", " + B + ")";
    return "(" + A + " " + std::string(binOpSpelling(Op)) + " " + B + ")";
  }
  case ExprKind::List: {
    std::string Out = "[";
    for (size_t I = 0, E = N->Kids.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += N->Kids[I].toString();
    }
    return Out + "]";
  }
  }
  return "<bad-expr>";
}

void Expr::collectLVars(std::set<InternedString> &Out) const {
  if (!N)
    return;
  if (N->Kind == ExprKind::LVar) {
    Out.insert(N->Var);
    return;
  }
  for (const Expr &K : N->Kids)
    K.collectLVars(Out);
}

void Expr::collectPVars(std::set<InternedString> &Out) const {
  if (!N)
    return;
  if (N->Kind == ExprKind::PVar) {
    Out.insert(N->Var);
    return;
  }
  for (const Expr &K : N->Kids)
    K.collectPVars(Out);
}

bool Expr::hasLVars() const {
  if (!N)
    return false;
  if (N->Kind == ExprKind::LVar)
    return true;
  for (const Expr &K : N->Kids)
    if (K.hasLVars())
      return true;
  return false;
}

Expr Expr::substPVars(
    const std::function<Expr(InternedString)> &Lookup) const {
  if (!N)
    return Expr();
  switch (N->Kind) {
  case ExprKind::Lit:
  case ExprKind::LVar:
    return *this;
  case ExprKind::PVar:
    return Lookup(N->Var);
  case ExprKind::UnOp: {
    Expr C = N->Kids[0].substPVars(Lookup);
    if (!C)
      return Expr();
    if (C == N->Kids[0])
      return *this;
    return unOp(unOpKind(), C);
  }
  case ExprKind::BinOp: {
    Expr A = N->Kids[0].substPVars(Lookup);
    Expr B = N->Kids[1].substPVars(Lookup);
    if (!A || !B)
      return Expr();
    if (A == N->Kids[0] && B == N->Kids[1])
      return *this;
    return binOp(binOpKind(), A, B);
  }
  case ExprKind::List: {
    std::vector<Expr> Kids;
    Kids.reserve(N->Kids.size());
    bool Changed = false;
    for (const Expr &K : N->Kids) {
      Expr S = K.substPVars(Lookup);
      if (!S)
        return Expr();
      Changed |= S != K;
      Kids.push_back(std::move(S));
    }
    if (!Changed)
      return *this;
    return list(std::move(Kids));
  }
  }
  return Expr();
}

Expr Expr::substLVars(
    const std::function<Expr(InternedString)> &Lookup) const {
  if (!N)
    return Expr();
  switch (N->Kind) {
  case ExprKind::Lit:
  case ExprKind::PVar:
    return *this;
  case ExprKind::LVar: {
    Expr R = Lookup(N->Var);
    return R ? R : *this;
  }
  case ExprKind::UnOp: {
    Expr C = N->Kids[0].substLVars(Lookup);
    if (C == N->Kids[0])
      return *this;
    return unOp(unOpKind(), C);
  }
  case ExprKind::BinOp: {
    Expr A = N->Kids[0].substLVars(Lookup);
    Expr B = N->Kids[1].substLVars(Lookup);
    if (A == N->Kids[0] && B == N->Kids[1])
      return *this;
    return binOp(binOpKind(), A, B);
  }
  case ExprKind::List: {
    std::vector<Expr> Kids;
    Kids.reserve(N->Kids.size());
    bool Changed = false;
    for (const Expr &K : N->Kids) {
      Expr S = K.substLVars(Lookup);
      Changed |= S != K;
      Kids.push_back(std::move(S));
    }
    if (!Changed)
      return *this;
    return list(std::move(Kids));
  }
  }
  return Expr();
}

Result<Value> Expr::evalConcrete(
    const std::function<const Value *(InternedString)> &StoreLookup) const {
  assert(N && "evaluating null Expr");
  switch (N->Kind) {
  case ExprKind::Lit:
    return N->Lit;
  case ExprKind::PVar: {
    const Value *V = StoreLookup(N->Var);
    if (!V)
      return Err("unbound program variable '" + std::string(N->Var.str()) +
                 "'");
    return *V;
  }
  case ExprKind::LVar:
    return Err("logical variable '" + std::string(N->Var.str()) +
               "' in concrete evaluation");
  case ExprKind::UnOp: {
    Result<Value> C = N->Kids[0].evalConcrete(StoreLookup);
    if (!C)
      return C;
    return evalUnOp(unOpKind(), *C);
  }
  case ExprKind::BinOp: {
    // Short-circuit boolean operators so guards like (i < len && nth(l, i))
    // do not evaluate the out-of-bounds side.
    BinOpKind Op = binOpKind();
    Result<Value> A = N->Kids[0].evalConcrete(StoreLookup);
    if (!A)
      return A;
    if (Op == BinOpKind::And && A->isBool() && !A->asBool())
      return Value::boolV(false);
    if (Op == BinOpKind::Or && A->isBool() && A->asBool())
      return Value::boolV(true);
    Result<Value> B = N->Kids[1].evalConcrete(StoreLookup);
    if (!B)
      return B;
    return evalBinOp(Op, *A, *B);
  }
  case ExprKind::List: {
    std::vector<Value> Elems;
    Elems.reserve(N->Kids.size());
    for (const Expr &K : N->Kids) {
      Result<Value> V = K.evalConcrete(StoreLookup);
      if (!V)
        return V;
      Elems.push_back(V.take());
    }
    return Value::listV(std::move(Elems));
  }
  }
  return Err("unknown expression kind");
}

Result<Value> Expr::evalClosed() const {
  return evalConcrete([](InternedString) { return nullptr; });
}

/// Structural three-way comparison used only to break hash ties; returns
/// <0, 0, >0.
static int cmpExpr(const Expr &A, const Expr &B) {
  if (A == B)
    return 0;
  if (A.kind() != B.kind())
    return static_cast<int>(A.kind()) < static_cast<int>(B.kind()) ? -1 : 1;
  switch (A.kind()) {
  case ExprKind::Lit:
    return A.litValue() < B.litValue() ? -1 : 1;
  case ExprKind::PVar:
  case ExprKind::LVar:
    return A.varName() < B.varName() ? -1 : 1;
  case ExprKind::UnOp:
    if (A.unOpKind() != B.unOpKind())
      return static_cast<int>(A.unOpKind()) < static_cast<int>(B.unOpKind())
                 ? -1
                 : 1;
    return cmpExpr(A.child(0), B.child(0));
  case ExprKind::BinOp:
    if (A.binOpKind() != B.binOpKind())
      return static_cast<int>(A.binOpKind()) <
                     static_cast<int>(B.binOpKind())
                 ? -1
                 : 1;
    if (int C = cmpExpr(A.child(0), B.child(0)))
      return C;
    return cmpExpr(A.child(1), B.child(1));
  case ExprKind::List: {
    size_t N = std::min(A.numChildren(), B.numChildren());
    for (size_t I = 0; I < N; ++I)
      if (int C = cmpExpr(A.child(I), B.child(I)))
        return C;
    if (A.numChildren() != B.numChildren())
      return A.numChildren() < B.numChildren() ? -1 : 1;
    return 0;
  }
  }
  return 0;
}

bool ExprOrdering::operator()(const Expr &A, const Expr &B) const {
  if (A.hash() != B.hash())
    return A.hash() < B.hash();
  return cmpExpr(A, B) < 0;
}
