//===- tests/targets/native_differential_test.cpp -------------------------===//
//
// Verdict-identity of the native theory layer and the async query service
// on the evaluation workloads: every MJS (Buckets) and MC (Collections)
// example suite, plus solver-shape-diverse While programs, explored with
// the native layer ON and OFF, at workers ∈ {1, 4}, under the oldest-first
// and coverage-guided strategies, yields the identical multiset of
// (outcome kind, outcome value, final path condition) signatures — and the
// same verified counter-models. Both are pure performance transforms: the
// native layer answers Unknown (and delegates to Z3) on anything it cannot
// decide with a proof or a verified model, and the async service only
// moves where the same solve closure runs.
//
// A randomized differential rides along: equality/disequality walks over a
// small variable universe, native verdict vs the cold Z3 backend — the
// native layer must never contradict it.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "solver/native/native_session.h"
#include "solver/z3_backend.h"
#include "targets/suite_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

struct NativeRunConfig {
  uint32_t Workers = 1;
  SelectionStrategy Strategy = SelectionStrategy::OldestFirst;
  bool Native = false;
  uint32_t Async = 0;
};

struct RunTraces {
  std::vector<std::string> Sigs; ///< sorted path signatures
  uint64_t NativeQueries = 0;
  uint64_t NativeDecided = 0;
};

/// Runs every `test_*` procedure of \p P and renders each finished path
/// as "test|kind|value|path-condition|model?" (same signature scheme as
/// the incremental differential, so failures read identically).
template <typename M>
RunTraces suiteTraces(const Prog &P, const NativeRunConfig &C) {
  EngineOptions Opts;
  Opts.Scheduler.Workers = C.Workers;
  Opts.Scheduler.Strategy = C.Strategy;
  Opts.Solver.UseNative = C.Native;
  Opts.Solver.AsyncSolvers = C.Async;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  RunTraces Out;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    int ModelChecks = 0;
    for (TraceResult<St> &R : *Traces) {
      std::string Sig = T + "|" + std::string(outcomeKindName(R.Kind)) +
                        "|" + R.Val.toString() + "|" +
                        R.Final.pathCondition().toString();
      const PathCondition &PC = R.Final.pathCondition();
      if (PC.size() > 0 && ModelChecks < 3) {
        ++ModelChecks;
        Sig += Slv.verifiedModel(PC).has_value() ? "|model" : "|nomodel";
      }
      Out.Sigs.push_back(std::move(Sig));
    }
  }
  std::sort(Out.Sigs.begin(), Out.Sigs.end());
  Out.NativeQueries = Slv.stats().NativeQueries;
  Out.NativeDecided =
      Slv.stats().NativeSat.load() + Slv.stats().NativeUnsat.load();
  return Out;
}

template <typename M>
void expectNativeTransparent(const Prog &P, std::string_view Name) {
  for (uint32_t Workers : {1u, 4u}) {
    for (SelectionStrategy Strategy : {SelectionStrategy::OldestFirst,
                                       SelectionStrategy::CoverageGuided}) {
      NativeRunConfig C;
      C.Workers = Workers;
      C.Strategy = Strategy;
      C.Native = false;
      RunTraces Off = suiteTraces<M>(P, C);
      C.Native = true;
      RunTraces On = suiteTraces<M>(P, C);
      EXPECT_FALSE(Off.Sigs.empty()) << Name;
      EXPECT_EQ(Off.Sigs, On.Sigs)
          << Name << " at workers=" << Workers << " strategy="
          << strategyName(Strategy)
          << ": the native layer changed an outcome";
      EXPECT_EQ(Off.NativeQueries, 0u) << Name;
    }
  }
  // Async service transparency rides on the worker dimension: same
  // outcomes when undecided queries route through the service.
  NativeRunConfig C;
  C.Workers = 4;
  C.Native = true;
  RunTraces Sync = suiteTraces<M>(P, C);
  C.Async = 2;
  RunTraces Async = suiteTraces<M>(P, C);
  EXPECT_EQ(Sync.Sigs, Async.Sigs)
      << Name << ": the async solver service changed an outcome";
}

class BucketsNativeTest : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsNativeTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

/// While programs picked for solver-shape diversity (as in the
/// incremental differential), plus a disequality-chain shape that the
/// native layer decides end-to-end.
const char *const WhileSources[] = {
    "function test_branch() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x < 8);\n"
    "  y := 0;\n"
    "  if (x < 4) { y := x + 1; }\n"
    "  if (3 < x) { y := x - 1; }\n"
    "  assert (0 <= y && y < 7);\n"
    "  return y;\n}\n",
    "function test_diseq_chain() {\n"
    "  a := fresh_num(); b := fresh_num(); c := fresh_num();\n"
    "  assume (0.5 <= a && a < 100.0);\n"
    "  assume (0.5 <= b && b < 100.0);\n"
    "  assume (0.5 <= c && c < 100.0);\n"
    "  assume (!(a == b) && !(b == c) && !(a == c));\n"
    "  d := 0;\n"
    "  if (a < b) { d := d + 1; }\n"
    "  if (b < c) { d := d + 1; }\n"
    "  assert (d <= 2);\n"
    "  return d;\n}\n",
    "function test_violation() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x <= 100);\n"
    "  assert (x < 100);\n"
    "  return x;\n}\n",
};

} // namespace

TEST_P(BucketsNativeTest, VerdictsMatchWithNativeOnAndOff) {
  const BucketsSuite &S = GetParam();
  std::string Src =
      std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectNativeTransparent<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsNativeTest, ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsNativeTest, VerdictsMatchWithNativeOnAndOff) {
  const CollectionsSuite &S = GetParam();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectNativeTransparent<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsNativeTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(WhileNativeTest, VerdictsMatchWithNativeOnAndOff) {
  for (const char *Src : WhileSources) {
    Result<Prog> P = whilelang::compileWhileSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    expectNativeTransparent<whilelang::WhileSMem>(*P, "while");
  }
}

TEST(WhileNativeTest, NativeLayerActuallyEngages) {
  // Guard against the differential passing vacuously: with the layer on,
  // queries must reach it, and on the disequality-chain program it must
  // *decide* some of them (not just fall through).
  Result<Prog> P = whilelang::compileWhileSource(WhileSources[1]);
  ASSERT_TRUE(P.ok()) << P.error();
  NativeRunConfig C;
  C.Native = true;
  RunTraces On = suiteTraces<whilelang::WhileSMem>(*P, C);
  EXPECT_GT(On.NativeQueries, 0u);
  EXPECT_GT(On.NativeDecided, 0u);
}

//===----------------------------------------------------------------------===//
// Randomized equality/disequality walks vs the cold Z3 backend
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic xorshift64* — fixed seed, so a failure reproduces.
struct Rng {
  uint64_t S;
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545F4914F6CDD1Dull;
  }
  uint64_t below(uint64_t N) { return next() % N; }
};

PathCondition randomEqDiseqWalk(Rng &R, int Vars, int Conjuncts) {
  std::vector<Expr> Xs;
  for (int I = 0; I < Vars; ++I)
    Xs.push_back(Expr::lvar("#v" + std::to_string(I)));
  PathCondition PC;
  for (int I = 0; I < Conjuncts; ++I) {
    Expr A = Xs[R.below(Xs.size())];
    Expr B = R.below(3) == 0 ? Expr::intE(static_cast<int64_t>(R.below(3)))
                             : Xs[R.below(Xs.size())];
    Expr Atom = Expr::eq(A, B);
    PC.add(R.below(2) == 0 ? Atom : Expr::notE(Atom));
  }
  return PC;
}

} // namespace

TEST(NativeFuzzTest, NeverContradictsZ3OnEqDiseqWalks) {
  if (!z3Available())
    GTEST_SKIP() << "built without Z3";
  Rng R{0x9E3779B97F4A7C15ull};
  native::NativeSessionPool &Pool = native::NativeSessionPool::forThread();
  Pool.reset();
  SolverStats St;
  int Decided = 0;
  for (int Iter = 0; Iter < 200; ++Iter) {
    PathCondition PC = randomEqDiseqWalk(R, /*Vars=*/4, /*Conjuncts=*/6);
    if (PC.isTriviallyFalse() || PC.empty())
      continue;
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types))
      continue; // both layers would answer Unsat upstream of this test
    SatResult Native = Pool.checkSat(PC, Types, St);
    SatResult Z3 = checkSatZ3(PC, Types, /*WantModel=*/false).Verdict;
    if (Native == SatResult::Sat)
      EXPECT_NE(Z3, SatResult::Unsat) << PC.toString();
    if (Native == SatResult::Unsat)
      EXPECT_NE(Z3, SatResult::Sat) << PC.toString();
    if (Native != SatResult::Unknown)
      ++Decided;
  }
  // The walks are pure equality logic: the native layer must decide the
  // overwhelming majority, or it is not pulling its weight.
  EXPECT_GT(Decided, 150);
}
