//===- tests/solver/simplifier_test.cpp -----------------------------------===//

#include "solver/simplifier.h"

#include "gil/parser.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

/// Parses, simplifies and renders — the workhorse for table-driven checks.
std::string simp(std::string_view Src) {
  Result<Expr> E = parseGilExpr(Src);
  EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
  return simplify(*E).toString();
}

/// Like simp, but with the named logical variables typed — the setting the
/// symbolic engine runs in, where types are harvested from the path
/// condition.
std::string simpT(std::string_view Src,
                  std::initializer_list<std::pair<const char *, GilType>>
                      Types) {
  TypeEnv Env;
  for (auto &[Name, T] : Types)
    Env.assign(InternedString::get(Name), T);
  Result<Expr> E = parseGilExpr(Src);
  EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
  return simplify(*E, &Env).toString();
}

} // namespace

TEST(Simplifier, ConstantFolding) {
  EXPECT_EQ(simp("1 + 2 * 3"), "7");
  EXPECT_EQ(simp("\"a\" @+ \"b\""), "\"ab\"");
  EXPECT_EQ(simp("3 < 5"), "true");
  EXPECT_EQ(simp("len([1, 2, 3])"), "3");
  EXPECT_EQ(simp("typeof(\"x\")"), "^Str");
}

TEST(Simplifier, FaultingExpressionsAreNotFolded) {
  // 1/0 faults at runtime; the simplifier must leave it alone.
  EXPECT_EQ(simp("1 / 0"), "(1 / 0)");
  EXPECT_EQ(simp("l_nth([1], 5)"), "l_nth([1], 5)");
}

TEST(Simplifier, BooleanIdentities) {
  EXPECT_EQ(simp("true && #b"), "#b");
  EXPECT_EQ(simp("#b && true"), "#b");
  EXPECT_EQ(simp("false && #b"), "false");
  EXPECT_EQ(simp("#b || false"), "#b");
  EXPECT_EQ(simp("true || #b"), "true");
}

TEST(Simplifier, DiscardingRulesRequireTotalOperand) {
  // (1/0 == 1) && false would fault concretely; must NOT fold to false.
  EXPECT_EQ(simp("(1 / 0 == 1) && false"), "(((1 / 0) == 1) && false)");
  // A total operand can be discarded.
  EXPECT_EQ(simp("(#x == 1) && false"), "false");
}

TEST(Simplifier, EqualityRules) {
  EXPECT_EQ(simp("#x == #x"), "true");
  EXPECT_EQ(simp("$a == $b"), "false") << "distinct symbols are distinct";
  EXPECT_EQ(simp("1 == 1.0"), "false") << "structural equality, no coercion";
  // Statically different types (needs #s : Str so slen is total).
  EXPECT_EQ(simpT("slen(#s) == \"a\"", {{"#s", GilType::Str}}), "false");
  // Without typing, the potentially-faulting slen blocks the rewrite.
  EXPECT_EQ(simp("slen(#s) == \"a\""), "(slen(#s) == \"a\")");
}

TEST(Simplifier, ListEqualityDecomposes) {
  // Pointer-shaped lists: [b1, o1] == [b2, o2] decomposes element-wise.
  EXPECT_EQ(simp("[$a, #x] == [$a, 3]"), "(#x == 3)");
  EXPECT_EQ(simp("[$a, #x] == [$b, #x]"), "false");
  EXPECT_EQ(simp("[#x] == [#x, #y]"), "false") << "length mismatch";
}

TEST(Simplifier, IntIdentities) {
  auto IntX = {std::pair<const char *, GilType>{"#x", GilType::Int}};
  EXPECT_EQ(simpT("(#x + 0) + 0", IntX), "#x");
  EXPECT_EQ(simpT("1 * (#x * 1)", IntX), "#x");
  EXPECT_EQ(simpT("#x - 0", IntX), "#x");
  EXPECT_EQ(simpT("#x - #x", IntX), "0");
  // Num identities must NOT fire: x + 0 is not the identity on -0.0, and
  // our rules require Int typing.
  EXPECT_EQ(simp("to_num(#x) + 0"), "(to_num(#x) + 0)");
}

TEST(Simplifier, OffsetChainsCanonicalise) {
  // ((p + 8) + 8) -> p + 16 — pointer offset arithmetic in MC. Requires
  // Int typing of the base, as harvested from the path condition.
  auto IntP = {std::pair<const char *, GilType>{"#p", GilType::Int}};
  auto IntI = {std::pair<const char *, GilType>{"#i", GilType::Int}};
  EXPECT_EQ(simpT("((#p + 8) + 8)", IntP), "(#p + 16)");
  EXPECT_EQ(simpT("(#p + 8) - 8", IntP), "#p");
  EXPECT_EQ(simpT("(#i + 3) == 7", IntI), "(#i == 4)");
  EXPECT_EQ(simpT("(#i + 3) < 7", IntI), "(#i < 4)");
}

TEST(Simplifier, UntypedOperandsBlockIntIdentities) {
  // Without typing, Int-only identities must not fire (a Num or Str #x
  // would change meaning).
  EXPECT_EQ(simp("#x - #x"), "(#x - #x)");
  EXPECT_EQ(simp("((#p + 8) + 8)"), "((#p + 8) + 8)");
  EXPECT_EQ(simp("#x + 0"), "(#x + 0)");
}

TEST(Simplifier, ListPrimitives) {
  EXPECT_EQ(simp("hd([#x, 2])"), "#x");
  EXPECT_EQ(simp("tl([1, #y])"), "[#y]");
  EXPECT_EQ(simp("l_nth([#a, #b, #c], 1)"), "#b");
  EXPECT_EQ(simp("[1] ++ [#x]"), "[1, #x]");
  EXPECT_EQ(simp("#x :: [2, 3]"), "[#x, 2, 3]");
  EXPECT_EQ(simp("len([#x] ++ #rest)"), "(len(#rest) + 1)")
      << "literal moved right by canonicalisation";
}

TEST(Simplifier, NotNormalisation) {
  EXPECT_EQ(simp("!(3 < 5)"), "false");
  EXPECT_EQ(simp("!!(#x == 1)"), "(#x == 1)");
  // !(a < b) over Int -> b <= a.
  EXPECT_EQ(simp("!(to_int(#x) < 3)"), "(3 <= to_int(#x))");
}

TEST(Simplifier, Idempotent) {
  for (const char *Src :
       {"((#p + 8) + 8)", "[$a, #x] == [$a, 3]", "len([#x] ++ #rest)",
        "true && (#b || false)", "(1 / 0)"}) {
    Result<Expr> E = parseGilExpr(Src);
    ASSERT_TRUE(E.ok());
    Expr S1 = simplify(*E);
    Expr S2 = simplify(S1);
    EXPECT_EQ(S1, S2) << Src;
  }
}

TEST(Simplifier, CacheHitsOnRepeatedQueries) {
  resetSimplifyCache();
  Result<Expr> E = parseGilExpr("(#x + 1) + 1 == 5");
  ASSERT_TRUE(E.ok());
  Expr S1 = simplifyCached(*E);
  Expr S2 = simplifyCached(*E);
  EXPECT_EQ(S1, S2);
  SimplifyCacheStats St = simplifyCacheStats();
  EXPECT_GE(St.Hits, 1u);
  EXPECT_GE(St.Misses, 1u);
}

TEST(Simplifier, SemanticsPreservedOnClosedExprs) {
  // Property: for closed total expressions, simplify must not change the
  // evaluated value.
  for (const char *Src :
       {"1 + 2 * 3 - 4", "(2 < 3) && !(4 < 3)", "hd([7, 8]) + len([1, 2])",
        "\"a\" @+ (\"b\" @+ \"c\")", "to_int(5.9) * 2",
        "l_nth([10, 20, 30], 1 + 1)"}) {
    Result<Expr> E = parseGilExpr(Src);
    ASSERT_TRUE(E.ok());
    Result<Value> Before = E->evalClosed();
    Result<Value> After = simplify(*E).evalClosed();
    ASSERT_TRUE(Before.ok() && After.ok()) << Src;
    EXPECT_EQ(*Before, *After) << Src;
  }
}
