//===- engine/memlib/freeable.h - Use-after-dispose tracking ---*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The freeable combinator: use-after-dispose fault tracking, in the two
/// isomorphic representations the models need.
///
///  * Freeable<Cell> — the cell form: a payload plus a freed bit. This is
///    the shape of MC's blocks (CompCert's "freed" blocks keep their
///    identity but fault on access) and of the standalone kit model.
///
///  * SFreedSet / CFreedSet — the key-index form used by PMaps whose
///    freed cells drop their payload: the freed keys move into a side
///    index so the alias branch loop only walks live entries. While's
///    `Disposed` and MJS's `Deleted` sets are exactly this; the symbolic
///    guard below is their (previously triplicated) pre-pass that emits a
///    fault branch for every stored key the queried location may equal
///    under the path condition.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_FREEABLE_H
#define GILLIAN_ENGINE_MEMLIB_FREEABLE_H

#include "engine/action_args.h"
#include "engine/memlib/branch.h"
#include "engine/state.h"
#include "solver/model.h"
#include "support/cow_map.h"

namespace gillian::memlib {

//===----------------------------------------------------------------------===//
// Key-index form
//===----------------------------------------------------------------------===//

/// Concrete freed-key index.
class CFreedSet {
public:
  bool contains(InternedString K) const { return Keys.contains(K); }
  void mark(InternedString K) { Keys.set(K, true); }
  const CowMap<InternedString, bool> &keys() const { return Keys; }

  friend bool operator==(const CFreedSet &A, const CFreedSet &B) {
    return A.Keys == B.Keys;
  }

private:
  CowMap<InternedString, bool> Keys;
};

/// Symbolic freed-key index with the shared use-after-dispose guard.
class SFreedSet {
public:
  using Map = CowMap<Expr, bool, ExprOrdering>;

  const Map &keys() const { return Keys; }
  bool empty() const { return Keys.empty(); }
  void mark(const Expr &K) { Keys.set(K, true); }

  /// Emits a fault branch (message \p Msg) for every freed key that
  /// \p Loc may alias under the path condition. Returns false when the
  /// alias is definite — the action is over, the caller returns its
  /// branches. Otherwise \p LiveOut accumulates the "aliases none of the
  /// freed keys" condition under which the action proceeds.
  template <typename M>
  bool guard(BranchCtx<M> &Ctx, const Expr &Loc, const std::string &Msg,
             Expr &LiveOut) const {
    for (const auto &[D, Unused] : Keys) {
      (void)Unused;
      Expr Cond;
      switch (decideEq(Loc, D, Ctx.PC, Ctx.S, Cond)) {
      case Tri::Yes:
        Ctx.error(Msg);
        return false;
      case Tri::No:
        break;
      case Tri::Maybe:
        Ctx.error(Msg, Cond);
        LiveOut = conj(LiveOut, Expr::notE(Cond));
        break;
      }
    }
    return true;
  }

  /// I(·) on the index: every freed key must evaluate to a symbol.
  Result<CFreedSet> interpret(const Model &Eps, const char *What) const {
    CFreedSet Out;
    for (const auto &[DE, Unused] : Keys) {
      (void)Unused;
      Result<Value> D = Eps.eval(DE);
      if (!D)
        return Err(std::string("interpretation failure on ") + What + " " +
                   DE.toString());
      if (!D->isSym())
        return Err(std::string(What) + " interprets to a non-symbol");
      Out.mark(D->asSym());
    }
    return Out;
  }

  friend bool operator==(const SFreedSet &A, const SFreedSet &B) {
    return A.Keys == B.Keys;
  }

private:
  Map Keys;
};

//===----------------------------------------------------------------------===//
// Cell form
//===----------------------------------------------------------------------===//

inline InternedString actFreeableFree() { return InternedString::get("ffree"); }

/// Freeable<Cell>: the payload keeps its identity after free, but every
/// inner-cell action on a freed payload is a memory fault, and a double
/// free is a memory fault. Action set: the inner cell's actions plus
/// ffree [].
template <typename Cell> struct Freeable {
  static bool hasAction(InternedString Act) {
    return Act == actFreeableFree() || Cell::hasAction(Act);
  }

  class Concrete {
  public:
    using CellT = typename Cell::Concrete;

    Concrete() = default;
    explicit Concrete(CellT V) : Val(std::move(V)) {}

    const CellT &value() const { return Val; }
    CellT &value() { return Val; }
    bool freed() const { return Freed; }
    void markFreed() { Freed = true; }

    Result<Value> execAction(InternedString Act, const Value &Arg) {
      if (Act == actFreeableFree()) {
        Result<std::vector<Value>> A = splitArgs(Arg, 0);
        if (!A)
          return Err(A.error());
        if (Freed)
          return Err("memory fault: double free");
        Freed = true;
        return Value::boolV(true);
      }
      if (Freed)
        return Err("memory fault: use after free");
      return Val.execAction(Act, Arg);
    }

    std::string toString() const {
      return Val.toString() + (Freed ? " [freed]" : "");
    }

    friend bool operator==(const Concrete &A, const Concrete &B) {
      return A.Freed == B.Freed && A.Val == B.Val;
    }

  private:
    CellT Val;
    bool Freed = false;
  };

  class Symbolic {
  public:
    using CellT = typename Cell::Symbolic;

    Symbolic() = default;
    explicit Symbolic(CellT V) : Val(std::move(V)) {}

    const CellT &value() const { return Val; }
    CellT &value() { return Val; }
    bool freed() const { return Freed; }

    Result<std::vector<SymActionBranch<Symbolic>>>
    execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
               Solver &S) const {
      std::vector<SymActionBranch<Symbolic>> Out;
      if (Act == actFreeableFree()) {
        Result<std::vector<Expr>> A = splitArgsE(Arg, 0);
        if (!A)
          return Err(A.error());
        if (Freed) {
          Out.push_back({*this, Expr::strE("memory fault: double free"),
                         Expr(), /*IsError=*/true});
          return Out;
        }
        Symbolic Next = *this;
        Next.Freed = true;
        Out.push_back({std::move(Next), Expr::boolE(true), Expr(), false});
        return Out;
      }
      if (Freed) {
        Out.push_back({*this, Expr::strE("memory fault: use after free"),
                       Expr(), /*IsError=*/true});
        return Out;
      }
      Result<std::vector<SymActionBranch<CellT>>> Inner =
          Val.execAction(Act, Arg, PC, S);
      if (!Inner)
        return Err(Inner.error());
      for (SymActionBranch<CellT> &B : *Inner) {
        Symbolic Next = *this;
        Next.Val = std::move(B.Mem);
        Out.push_back({std::move(Next), std::move(B.Ret), std::move(B.Cond),
                       B.IsError});
      }
      return Out;
    }

    Result<Concrete> interpret(const Model &Eps) const {
      Result<typename Cell::Concrete> V = Val.interpret(Eps);
      if (!V)
        return Err(V.error());
      Concrete Out(V.take());
      if (Freed)
        Out.markFreed();
      return Out;
    }

    std::string toString() const {
      return Val.toString() + (Freed ? " [freed]" : "");
    }

    friend bool operator==(const Symbolic &A, const Symbolic &B) {
      return A.Freed == B.Freed && A.Val == B.Val;
    }

  private:
    CellT Val;
    bool Freed = false;
  };
};

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_FREEABLE_H
