//===- support/lexer.h - Shared tokenizer ----------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared tokenizer used by all four front ends (textual GIL, While, MJS
/// and MC). The token set is the union of what those grammars need;
/// keywords are recognised by the individual parsers, not here.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_LEXER_H
#define GILLIAN_SUPPORT_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gillian {

enum class TokenKind {
  Eof,
  Ident,   ///< identifier, possibly prefixed with '$' (symbols) or '#' (lvars)
  Int,     ///< integer literal
  Float,   ///< floating-point literal (contains '.' or exponent)
  String,  ///< double-quoted string literal (Text holds the decoded value)
  Punct,   ///< operator / punctuation (Text holds the spelling)
  Error,   ///< lexical error (Text holds the message)
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;   ///< spelling (decoded for strings)
  int64_t IntVal = 0; ///< value for Int tokens
  double FloatVal = 0;///< value for Float tokens
  int Line = 1;
  int Col = 1;

  bool is(TokenKind K) const { return Kind == K; }
  bool isPunct(std::string_view P) const {
    return Kind == TokenKind::Punct && Text == P;
  }
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::Ident && Text == S;
  }
};

/// Tokenizes \p Source in one pass.
///
/// Supports //-line and /*-block*/ comments, decimal integer and float
/// literals, C-style string escapes, and maximal-munch multi-character
/// punctuation (e.g. ":=", "==", "===", "<=", "&&", "->", "@+").
/// Lexical errors become a single Error token at the failure position.
std::vector<Token> tokenize(std::string_view Source);

} // namespace gillian

#endif // GILLIAN_SUPPORT_LEXER_H
