//===- solver/native/clause_store.h - Watched-literal clauses --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The propositional side of the native solver (DESIGN.md §4f): a CNF-ish
/// clause store with two-watched-literal unit propagation, VSIDS-style
/// activity scoring with phase saving, and a trail whose marks back both
/// the session's push/pop prefix frames and the search's chronological
/// backtracking — the architecture of the SAT-solver exemplars referenced
/// in ROADMAP.md (watched literals, activity scores, snapshot stacks),
/// sized for path-condition skeletons rather than industrial CNF.
///
/// Conventions: a literal is `var << 1 | sign` (sign bit set = negated).
/// Unit clauses are not stored — their literal is enqueued directly; the
/// trail mark of the owning frame removes the assignment on pop. Stored
/// clauses always watch positions 0 and 1, swapped in place during
/// propagation.
///
/// The store knows nothing about decision levels: the session records
/// `(trail size, equality-core mark)` pairs at frame pushes and at search
/// decisions and rolls both back together.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_NATIVE_CLAUSE_STORE_H
#define GILLIAN_SOLVER_NATIVE_CLAUSE_STORE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gillian::native {

using BVar = uint32_t;
using Lit = uint32_t;
inline constexpr BVar InvalidBVar = 0xFFFFFFFFu;

inline Lit mkLit(BVar V, bool Neg = false) {
  return (V << 1) | (Neg ? 1u : 0u);
}
inline BVar litVar(Lit L) { return L >> 1; }
inline bool litSign(Lit L) { return (L & 1u) != 0; } ///< true = negated
inline Lit litNot(Lit L) { return L ^ 1u; }

enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

class ClauseStore {
public:
  BVar newVar();
  size_t numVars() const { return Assign.size(); }
  size_t numClauses() const { return Clauses.size(); }

  LBool value(BVar V) const { return Assign[V]; }
  LBool valueLit(Lit L) const {
    LBool V = Assign[litVar(L)];
    if (V == LBool::Undef)
      return V;
    return (V == LBool::True) != litSign(L) ? LBool::True : LBool::False;
  }

  /// Adds a clause (duplicates removed; tautologies dropped). Literals
  /// already false under the current assignment stay in the clause — the
  /// watch scheme only requires the two watched positions to be chosen
  /// sanely, which this does. Returns false when the clause is false under
  /// the current assignment with no unassigned literal (conflict).
  bool addClause(std::vector<Lit> Lits);

  /// Enqueues an assignment (decision, external fact, or unit). Returns
  /// false when the literal is already false.
  bool enqueue(Lit L);

  /// Two-watched-literal propagation to fixpoint from the queue head.
  /// Returns false on conflict (the trail keeps everything assigned up to
  /// it; the caller rolls back via trail marks).
  bool propagate();

  const std::vector<Lit> &trail() const { return Trail; }
  /// Unassigns every trail literal past \p N (saving phases) and rewinds
  /// the propagation queue head.
  void shrinkTrailTo(size_t N);

  /// Snapshot for the session's push/pop frames. Only meaningful outside
  /// a search (no live decisions).
  struct Mark {
    size_t Clauses = 0;
    size_t TrailSz = 0;
  };
  Mark mark() const { return {Clauses.size(), Trail.size()}; }
  /// Removes clauses added after \p M (detaching their watches) and
  /// shrinks the trail. Variables are monotone — a popped frame's atoms
  /// stay allocated but unassigned.
  void popTo(const Mark &M);
  void clear();

  // VSIDS-style activity: bumped on conflicts, decayed periodically, used
  // to order search decisions. Linear argmax scan — path-condition
  // skeletons have few variables, so a heap would cost more than it saves.
  void bump(BVar V);
  void decay() { ActivityInc /= 0.95; }
  /// Highest-activity unassigned variable among those with a set bit in
  /// \p Relevant (variables occurring in live clauses); InvalidBVar when
  /// every relevant variable is assigned.
  BVar pickUnassigned(const std::vector<uint8_t> &Relevant) const;
  bool savedPhase(BVar V) const { return Phase[V] != 0; }

  /// Collects the variables occurring in live stored clauses into a
  /// per-variable bitmap (the search's decision candidates).
  void relevantVars(std::vector<uint8_t> &Out) const;

private:
  struct Clause {
    std::vector<Lit> Lits; ///< Lits[0], Lits[1] are the watched positions
  };

  void detachClause(uint32_t Idx);

  std::vector<Clause> Clauses;
  std::vector<std::vector<uint32_t>> Watches; ///< by literal
  std::vector<LBool> Assign;                  ///< by variable
  std::vector<double> Activity;               ///< by variable
  std::vector<uint8_t> Phase;                 ///< by variable (last value)
  std::vector<Lit> Trail;
  size_t QHead = 0;
  double ActivityInc = 1.0;
};

} // namespace gillian::native

#endif // GILLIAN_SOLVER_NATIVE_CLAUSE_STORE_H
