//===- engine/memlib/memlib.h - Memory-model construction kit --*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the memory-model construction kit.
///
/// The paper's thesis is that a language instantiates Gillian by supplying
/// a memory model — a type plus an action interpretation (Defs 2.3/2.4) —
/// and the platform supplies everything else. In practice the memory
/// models themselves share most of their structure, so this library
/// factors *that* layer too, as a small algebra of combinators. Each
/// combinator is a paired Concrete/Symbolic type satisfying the engine's
/// `ConcreteMemoryModel` / `SymbolicMemoryModel` concepts, with the §3.3
/// interpretation I(·) from the symbolic side to the concrete side,
/// equality, and printing all derived generically:
///
///   ExprCell            a single mutable cell (leaf)        cell.h
///   Freeable<Cell>      payload + freed bit; use-after-free
///                       faults                              freeable.h
///   PMap<Cell>          partial map keyed by expressions;
///                       owns THE may-alias branch loop
///                       ([S-Lookup]/[S-Mutate-*])           pmap.h
///   Product<A, B>       two components, action routing      product.h
///
/// Shared infrastructure:
///
///   alias.h   three-valued alias decision (Tri / decide / decideEq) and
///             path-condition-aware conjunction
///   branch.h  BranchCtx (error/ok/feasible/checkOrError) and the shared
///             symbolic-size-allocation diagnostic
///   print.h   printEntries / printObject — the two printing shapes every
///             model uses (formats are summary-store-key compatible)
///
/// The While, MJS and MC models are dispatch layers over this kit, and
/// `src/linear/memory.h` shows a whole new language memory in one file of
/// composition. See DESIGN.md §4h for the algebra and a walkthrough of
/// adding a model.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_MEMLIB_H
#define GILLIAN_ENGINE_MEMLIB_MEMLIB_H

#include "engine/memlib/alias.h"
#include "engine/memlib/branch.h"
#include "engine/memlib/cell.h"
#include "engine/memlib/freeable.h"
#include "engine/memlib/pmap.h"
#include "engine/memlib/print.h"
#include "engine/memlib/product.h"

#endif // GILLIAN_ENGINE_MEMLIB_MEMLIB_H
