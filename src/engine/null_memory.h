//===- engine/null_memory.h - The trivial memory model ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The empty instantiation: a memory model with no actions. Useful for
/// executing pure GIL programs (no memory interaction) and as the smallest
/// possible example of the MemoryModel interfaces.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_NULL_MEMORY_H
#define GILLIAN_ENGINE_NULL_MEMORY_H

#include "engine/state.h"

namespace gillian {

struct NullCMem {
  Result<Value> execAction(InternedString Act, const Value &) {
    return Err("the null memory model has no action '" +
               std::string(Act.str()) + "'");
  }
  friend bool operator==(const NullCMem &, const NullCMem &) { return true; }
};

struct NullSMem {
  Result<std::vector<SymActionBranch<NullSMem>>>
  execAction(InternedString Act, const Expr &, const PathCondition &,
             Solver &) const {
    return Err("the null memory model has no action '" +
               std::string(Act.str()) + "'");
  }
  friend bool operator==(const NullSMem &, const NullSMem &) { return true; }
};

static_assert(ConcreteMemoryModel<NullCMem>);
static_assert(SymbolicMemoryModel<NullSMem>);

} // namespace gillian

#endif // GILLIAN_ENGINE_NULL_MEMORY_H
