//===- targets/suite_runner.h - Evaluation suite driver --------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one evaluation suite (a compiled program whose `test_*`
/// procedures are symbolic unit tests) and aggregates per-suite results:
/// test count, executed GIL commands, bug reports — the columns of
/// Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_TARGETS_SUITE_RUNNER_H
#define GILLIAN_TARGETS_SUITE_RUNNER_H

#include "engine/scheduler/scheduler_options.h"
#include "engine/test_runner.h"
#include "obs/exporters.h"
#include "obs/introspect/introspect_server.h"
#include "obs/introspect/metrics_registry.h"
#include "obs/journal/journal.h"
#include "obs/trace_ring.h"
#include "solver/solver_cache.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace gillian::targets {

struct SuiteResult {
  std::string Name;
  uint64_t Tests = 0;
  uint64_t GilCmds = 0;       ///< the "GIL Cmds" column of Tables 1/2
  uint64_t PathsExplored = 0;
  uint64_t BoundedPaths = 0;
  std::vector<BugReport> Bugs;
  ExecStats Exec;     ///< aggregated engine counters (incl. solver time)
  SolverStats Solver; ///< the suite solver's per-layer counts and times

  bool clean() const { return Bugs.empty(); }
};

/// Names of the `test_*` procedures of \p P, in declaration order.
inline std::vector<std::string> testProcs(const Prog &P) {
  std::vector<std::string> Out;
  for (const auto &[Name, Proc] : P.procs()) {
    (void)Proc;
    std::string_view S = Name.str();
    if (S.substr(0, 5) == "test_")
      Out.emplace_back(S);
  }
  return Out;
}

/// Runs every `test_*` procedure of \p P symbolically over memory model M.
template <SymbolicMemoryModel M>
SuiteResult runSuite(std::string_view Name, const Prog &P,
                     const EngineOptions &Opts) {
  SuiteResult R;
  R.Name = std::string(Name);
  // GILLIAN_SERVE=host:port turns on live introspection for any process
  // that runs a suite (the test runner has no CLI of its own).
  obs::maybeStartEnvIntrospection();
  // GILLIAN_TRACE_OUT=path enables the flight recorder and writes the
  // chrome://tracing JSON at process exit — the --trace-out= of processes
  // without a CLI, like GILLIAN_SERVE above.
  obs::maybeEnableEnvTrace();
  // GILLIAN_JOURNAL=path likewise enables the lossless execution journal
  // and writes the binary journal file at process exit.
  obs::journal::maybeEnableEnvJournal();
  // GILLIAN_STRATEGY=oldest|random|subtree|coverage overrides the
  // exploration order the same way — e.g. running the whole ctest tier
  // under a non-default strategy without recompiling.
  EngineOptions EOpts = Opts;
  if (const char *Env = std::getenv("GILLIAN_STRATEGY")) {
    if (auto S = parseStrategy(Env))
      EOpts.Scheduler.Strategy = *S;
    else
      std::fprintf(stderr,
                   "[suite] ignoring unknown GILLIAN_STRATEGY=%s "
                   "(want oldest|random|subtree|coverage)\n",
                   Env);
  }
  // The query cache is the process-wide shared instance: canonical path
  // conditions are program-independent facts, so warm re-runs of a suite
  // (and parallel workers within one) reuse each other's verdicts. Tests
  // needing cold-cache numbers call SolverCache::process().clear().
  Solver Slv(Opts.Solver, SolverCache::process());
  // While this suite runs, its live engine/solver counters are scrapeable
  // on /metrics, labelled by suite (relaxed-atomic reads, so mid-run
  // scrapes are safe). The RAII scope unregisters before R/Slv die.
  obs::ScopedMetricsSource LiveMetrics([&R, &Slv](obs::PromWriter &W) {
    obs::PromLabels L{{"suite", R.Name}};
    obs::counterSetInto(W, R.Exec, L);
    obs::counterSetInto(W, Slv.stats(), L);
  });
  for (const std::string &T : testProcs(P)) {
    SymbolicTestResult TR = runSymbolicTest<M>(P, T, EOpts, Slv);
    ++R.Tests;
    R.GilCmds += TR.Stats.CmdsExecuted;
    R.PathsExplored += TR.Stats.PathsFinished + TR.Stats.PathsErrored +
                       TR.Stats.PathsVanished;
    R.BoundedPaths += TR.PathsBounded;
    R.Exec += TR.Stats;
    for (BugReport &B : TR.Bugs) {
      B.Message = T + ": " + B.Message;
      R.Bugs.push_back(std::move(B));
    }
  }
  R.Solver = Slv.stats();
  return R;
}

} // namespace gillian::targets

#endif // GILLIAN_TARGETS_SUITE_RUNNER_H
