//===- obs/coverage.cpp ---------------------------------------------------===//

#include "obs/coverage.h"

#include <algorithm>

using namespace gillian;
using namespace gillian::obs;

BranchCoverage &BranchCoverage::instance() {
  static BranchCoverage C;
  return C;
}

void BranchCoverage::registerProc(uint32_t ProcId, uint32_t BranchSites) {
  Shard &S = shardFor(ProcId);
  std::lock_guard<std::mutex> Lock(S.Mu);
  ProcCell &C = S.Procs[ProcId];
  if (BranchSites > C.Sites)
    C.Sites = BranchSites;
}

void BranchCoverage::recordImpl(uint32_t ProcId, uint32_t CmdIdx,
                                uint8_t Bits) {
  Shard &S = shardFor(ProcId);
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Procs[ProcId].Mask[CmdIdx] |= Bits;
}

uint8_t BranchCoverage::coveredBits(uint32_t ProcId,
                                    uint32_t CmdIdx) const {
  const Shard &S = shardFor(ProcId);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto PIt = S.Procs.find(ProcId);
  if (PIt == S.Procs.end())
    return 0;
  auto MIt = PIt->second.Mask.find(CmdIdx);
  return MIt == PIt->second.Mask.end() ? 0 : MIt->second;
}

std::vector<BranchCoverage::ProcCoverage> BranchCoverage::snapshot() const {
  std::vector<ProcCoverage> Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[ProcId, C] : S.Procs) {
      if (C.Sites == 0 && C.Mask.empty())
        continue;
      ProcCoverage P;
      P.Proc = std::string(InternedString::fromRaw(ProcId).str());
      // A site observed beyond the registered count (should not happen,
      // but a stale registration must not yield >100% coverage) widens
      // the total.
      P.Sites = std::max<uint32_t>(C.Sites,
                                   static_cast<uint32_t>(C.Mask.size()));
      for (const auto &[Idx, Bits] : C.Mask) {
        (void)Idx;
        if (Bits) {
          ++P.SitesExecuted;
          P.OutcomesCovered += (Bits & BranchFalseBit ? 1 : 0) +
                               (Bits & BranchTrueBit ? 1 : 0);
        }
      }
      Out.push_back(std::move(P));
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const ProcCoverage &A, const ProcCoverage &B) {
              return A.Proc < B.Proc;
            });
  return Out;
}

void BranchCoverage::totals(uint64_t &Covered, uint64_t &Total) const {
  Covered = Total = 0;
  for (const ProcCoverage &P : snapshot()) {
    Covered += P.OutcomesCovered;
    Total += P.outcomesTotal();
  }
}

void BranchCoverage::jsonInto(JsonWriter &W) const {
  std::vector<ProcCoverage> Procs = snapshot();
  uint64_t Covered = 0, Total = 0;
  W.beginObject();
  W.key("procs");
  W.beginArray();
  for (const ProcCoverage &P : Procs) {
    Covered += P.OutcomesCovered;
    Total += P.outcomesTotal();
    W.beginObject();
    W.field("proc", P.Proc);
    W.field("branch_sites", static_cast<uint64_t>(P.Sites));
    W.field("sites_executed", static_cast<uint64_t>(P.SitesExecuted));
    W.field("outcomes_covered", static_cast<uint64_t>(P.OutcomesCovered));
    W.field("outcomes_total", static_cast<uint64_t>(P.outcomesTotal()));
    W.endObject();
  }
  W.endArray();
  W.field("outcomes_covered", Covered);
  W.field("outcomes_total", Total);
  W.endObject();
}

std::string BranchCoverage::json() const {
  JsonWriter W;
  jsonInto(W);
  return W.take();
}

void BranchCoverage::reset() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Procs.clear();
  }
}
