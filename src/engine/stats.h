//===- engine/stats.h - Execution statistics -------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters reported by the evaluation harness. "GIL commands" is the
/// metric of Tables 1 and 2 in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_STATS_H
#define GILLIAN_ENGINE_STATS_H

#include <cstdint>

namespace gillian {

struct ExecStats {
  uint64_t CmdsExecuted = 0; ///< GIL commands (the Tables 1/2 metric)
  uint64_t Branches = 0;     ///< points where execution split
  uint64_t PathsFinished = 0;
  uint64_t PathsVanished = 0;
  uint64_t PathsErrored = 0;
  uint64_t PathsBounded = 0; ///< cut by loop/step budgets
  uint64_t ActionCalls = 0;
  uint64_t ProcCalls = 0;

  // Solver effort attributed to this execution (filled by the symbolic
  // test runner from SolverStats deltas; zero for concrete runs).
  uint64_t SolverQueries = 0;
  uint64_t SolverCacheHits = 0; ///< full-query + per-slice cache hits
  uint64_t SolverNs = 0;        ///< wall-time spent inside the solver
  uint64_t EngineNs = 0;        ///< wall-time of the exploration loop

  ExecStats &operator+=(const ExecStats &O) {
    CmdsExecuted += O.CmdsExecuted;
    Branches += O.Branches;
    PathsFinished += O.PathsFinished;
    PathsVanished += O.PathsVanished;
    PathsErrored += O.PathsErrored;
    PathsBounded += O.PathsBounded;
    ActionCalls += O.ActionCalls;
    ProcCalls += O.ProcCalls;
    SolverQueries += O.SolverQueries;
    SolverCacheHits += O.SolverCacheHits;
    SolverNs += O.SolverNs;
    EngineNs += O.EngineNs;
    return *this;
  }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_STATS_H
