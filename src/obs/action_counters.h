//===- obs/action_counters.h - Per-language action counts ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic counters for symbolic memory actions, keyed by (language,
/// action name) — the per-language action profile of ISSUE 4. Unlike the
/// static CounterSet schemas, the key space here is open (every memory
/// model and every future language brings its own action vocabulary), so
/// this is a small sharded concurrent map from interned action names to
/// atomic counters.
///
/// Totals are schedule-independent for the same reason ExecStats is: the
/// set of executed actions depends only on the explored paths, not on the
/// thread interleaving.
///
/// bump() is one shard-mutex acquisition + one relaxed add — noise next
/// to the memory action it accounts (which allocates, simplifies and
/// typically queries the solver). Gated behind ObsConfig::actionCounters.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_ACTION_COUNTERS_H
#define GILLIAN_OBS_ACTION_COUNTERS_H

#include "obs/json_writer.h"
#include "obs/obs_config.h"
#include "support/interner.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gillian::obs {

class ActionCounters {
public:
  static ActionCounters &instance();

  /// Adds one execution of \p Action in language \p Lang. \p Lang must be
  /// a string with static storage duration (the memory models pass
  /// literals).
  static void bump(const char *Lang, InternedString Action) {
    if (!ObsConfig::actionCounters())
      return;
    instance().bumpImpl(Lang, Action);
  }

  /// Snapshot: language -> action -> count, deterministically ordered.
  std::map<std::string, std::map<std::string, uint64_t>> snapshot() const;

  /// `{"mjs":{"getprop":123,...},"mc":{...}}` — keys sorted, so output is
  /// reproducible.
  void jsonInto(JsonWriter &W) const;
  std::string json() const;

  void reset();

private:
  struct Entry {
    const char *Lang;
    InternedString Action;
    std::atomic<uint64_t> Count{0};
  };
  struct Shard {
    mutable std::mutex Mu;
    /// Interned names are unique pointers, so (Lang ptr, Action) pairs
    /// key exactly.
    std::vector<std::unique_ptr<Entry>> Entries;
  };

  void bumpImpl(const char *Lang, InternedString Action);
  Shard &shardFor(InternedString Action) {
    return Shards[std::hash<InternedString>()(Action) >> 60];
  }

  static constexpr size_t NumShards = 16;
  mutable std::mutex SnapshotMu; ///< serialises snapshot vs reset
  std::array<Shard, NumShards> Shards;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_ACTION_COUNTERS_H
