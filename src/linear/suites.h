//===- linear/suites.h - Linear-memory symbolic test suites ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic test suites for the linear memory model, written directly in
/// textual GIL (the linear "language" has no front end of its own — its
/// programs are GIL over the grow/msize/load/store actions, which is the
/// point of the one-file-model quickstart). linearSuites() is clean;
/// linearSeededSuites() seeds an off-by-one out-of-bounds read and a
/// negative grow, which the engine must re-detect with verified
/// counter-models.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_LINEAR_SUITES_H
#define GILLIAN_LINEAR_SUITES_H

#include <string_view>
#include <vector>

namespace gillian::linear {

struct LinearSuite {
  std::string_view Name;
  std::string_view Source;
};

/// Clean suites (expected: zero bug reports, all paths returned).
const std::vector<LinearSuite> &linearSuites();

/// Suites with seeded faults (expected: each test finds its bug).
const std::vector<LinearSuite> &linearSeededSuites();

} // namespace gillian::linear

#endif // GILLIAN_LINEAR_SUITES_H
