//===- tests/targets/legacy/while_memory.h ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/while_lang/memory.h as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::whilelang -> gillian::legacy.
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- while_lang/memory.h - While memories (Fig. 3, §3.3) -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete and symbolic While memory models of §2.4 and their
/// interpretation function I_W of §3.3.
///
/// Concrete memories µ : U × S ⇀ V map (location symbol, property name)
/// pairs to values; symbolic memories µ̂ : Ê × S ⇀ Ê map (location
/// *expression*, property name) pairs to expressions. Objects have static
/// (concrete-string) properties. Disposed locations are tracked so that
/// use-after-dispose is a detectable memory fault.
///
/// Symbolic actions implement the branching rules of Fig. 3: lookup and
/// mutate branch over every stored location that may alias the queried
/// one under the current path condition ([S-Lookup], [S-Mutate-Present]),
/// with a residual branch for absent locations ([S-Mutate-Absent], and an
/// error branch for lookups that can miss).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_LEGACY_WHILE_MEMORY_H
#define GILLIAN_LEGACY_WHILE_MEMORY_H

#include "engine/state.h"
#include "gil/expr.h"
#include "solver/model.h"
#include "solver/solver.h"
#include "support/cow_map.h"

namespace gillian::legacy {

/// Concrete While memory (Def 2.3 instance).
class WhileCMem {
public:
  using PropMap = CowMap<InternedString, Value>;

  /// A_While = {lookup, mutate, dispose}; Err(...) is a memory fault.
  Result<Value> execAction(InternedString Act, const Value &Arg);

  // Introspection / construction (tests and memory interpretation).
  const CowMap<InternedString, PropMap> &objects() const { return Objects; }
  bool isDisposed(InternedString Loc) const { return Disposed.contains(Loc); }
  void setProp(InternedString Loc, InternedString P, Value V);
  void markDisposed(InternedString Loc) { Disposed.set(Loc, true); }

  friend bool operator==(const WhileCMem &A, const WhileCMem &B) {
    return A.Objects == B.Objects && A.Disposed == B.Disposed;
  }

  std::string toString() const;

private:
  Result<Value> lookup(const Value &Loc, const Value &Prop);
  Result<Value> mutate(const Value &Loc, const Value &Prop, const Value &V);
  Result<Value> dispose(const Value &Loc);

  CowMap<InternedString, PropMap> Objects;
  CowMap<InternedString, bool> Disposed;
};

/// Symbolic While memory (Def 2.4 instance).
class WhileSMem {
public:
  using PropMap = CowMap<InternedString, Expr>;
  using ObjMap = CowMap<Expr, PropMap, ExprOrdering>;

  Result<std::vector<SymActionBranch<WhileSMem>>>
  execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
             Solver &S) const;

  const ObjMap &objects() const { return Objects; }
  const CowMap<Expr, bool, ExprOrdering> &disposed() const {
    return Disposed;
  }
  void setProp(const Expr &Loc, InternedString P, Expr V);

  std::string toString() const;

private:
  std::vector<SymActionBranch<WhileSMem>>
  lookup(const Expr &Loc, InternedString Prop, const PathCondition &PC,
         Solver &S) const;
  std::vector<SymActionBranch<WhileSMem>>
  mutate(const Expr &Loc, InternedString Prop, const Expr &V,
         const PathCondition &PC, Solver &S) const;
  std::vector<SymActionBranch<WhileSMem>>
  dispose(const Expr &Loc, const PathCondition &PC, Solver &S) const;

  ObjMap Objects;
  CowMap<Expr, bool, ExprOrdering> Disposed;
};

static_assert(ConcreteMemoryModel<WhileCMem>);
static_assert(SymbolicMemoryModel<WhileSMem>);

/// The memory interpretation function I_W of §3.3: evaluates every
/// location expression and stored expression under ε, producing a concrete
/// memory. Fails when ε does not determine a well-formed memory (a free
/// variable, or two symbolic locations collapsing onto one concrete
/// location — the ⊎ of the [Union] rule being undefined).
Result<WhileCMem> interpretMemory(const Model &Eps, const WhileSMem &SMem);

} // namespace gillian::legacy

#endif // GILLIAN_LEGACY_WHILE_MEMORY_H
