//===- obs/sched_counters.h - Work-stealing scheduler counters -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel scheduler's counter set. It lives here (rather than next
/// to the thread pool) because the thread pool is a header-only template
/// below the engine library, and the unified stats exporter needs a
/// non-template home for the one global instance.
///
/// Steal totals are inherently schedule-dependent (an 1-worker run steals
/// nothing), which is exactly why they live in their own set instead of
/// ExecStats: the schedule-independence tests compare ExecStats and the
/// action counters across worker counts, and these stay out of that
/// comparison by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_SCHED_COUNTERS_H
#define GILLIAN_OBS_SCHED_COUNTERS_H

#include "obs/counters.h"

namespace gillian::obs {

struct SchedCounters : CounterSet<SchedCounters> {
  /// Successful steal operations (one per batch taken from a victim).
  Counter Steals{*this, "steals", "scheduler"};
  /// Tasks moved by those steals.
  Counter StolenTasks{*this, "stolen_tasks", "scheduler"};
  /// Victim queue depth summed at each steal — divide by Steals for the
  /// mean backlog a thief found.
  Counter StealQueueDepth{*this, "steal_queue_depth_sum", "scheduler"};
  /// Tasks pushed to worker-local queues.
  Counter TasksSpawned{*this, "tasks_spawned", "scheduler"};
  /// Sampled frontier size: tasks queued or executing across the pool
  /// (the thread pool's Pending count). A Gauge, so it never enters
  /// cross-instance merges — an instantaneous depth cannot be summed.
  /// Maintained with commutative add/sub mirroring Pending (never a raw
  /// set), so concurrent pushes cannot publish out-of-order stale values
  /// and the gauge reads 0 once the pool has quiesced.
  Gauge FrontierSize{*this, "frontier_size", "scheduler"};
  /// Sampled worker count of the live (or last) pool.
  Gauge PoolWorkers{*this, "pool_workers", "scheduler"};
  /// Numeric SelectionStrategy id of the live (or last) pool; the
  /// human-readable name is published via scheduleStrategyLabel().
  Gauge Strategy{*this, "strategy", "scheduler"};
};

/// The process-wide instance the thread pool records into.
inline SchedCounters &schedCounters() {
  static SchedCounters C;
  return C;
}

/// The human-readable selection-strategy name of the live (or last)
/// exploration pool — a pointer to a string literal, so a relaxed atomic
/// pointer is a safe process-wide slot. Set by the pool constructor (the
/// engine layer owns the strategy names; obs only republishes the label
/// on /metrics and /progress).
inline std::atomic<const char *> &scheduleStrategyLabelSlot() {
  static std::atomic<const char *> L{"oldest"};
  return L;
}
inline void setScheduleStrategyLabel(const char *Name) {
  scheduleStrategyLabelSlot().store(Name, std::memory_order_relaxed);
}
inline const char *scheduleStrategyLabel() {
  return scheduleStrategyLabelSlot().load(std::memory_order_relaxed);
}

} // namespace gillian::obs

#endif // GILLIAN_OBS_SCHED_COUNTERS_H
