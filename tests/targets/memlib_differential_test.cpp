//===- tests/targets/memlib_differential_test.cpp -------------------------===//
//
// Bit-identity of the memlib re-founding (DESIGN.md §4h): the While, MJS
// and MC memory models rebuilt on the combinator kit must behave exactly
// like the pre-memlib implementations — same ordered sequence of
// (outcome kind, outcome value, final path condition) signatures, same
// engine-layer ExecStats — on the full evaluation workloads (Buckets,
// Collections, object-heavy While programs), at workers ∈ {1, 4} under
// the oldest-first and coverage-guided strategies.
//
// The old implementations are verbatim snapshots under tests/targets/
// legacy/ (namespace gillian::legacy), compiled into this binary only.
// An engagement guard asserts the workloads actually execute memory
// actions, so the differential cannot pass vacuously.
//
//===----------------------------------------------------------------------===//

#include "legacy/mc_memory.h"
#include "legacy/mjs_memory.h"
#include "legacy/while_memory.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"
#include "targets/suite_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

struct RunOutcome {
  /// Path signatures in the engine's result order — NOT sorted: the kit
  /// must reproduce the exact branch evaluation order, not just the
  /// multiset of outcomes.
  std::vector<std::string> Sigs;
  uint64_t Cmds = 0, Branches = 0, ProcCalls = 0, ActionCalls = 0;
  uint64_t Finished = 0, Errored = 0, Vanished = 0, Bounded = 0;
};

template <typename M>
RunOutcome suiteOutcome(const Prog &P, uint32_t Workers,
                        SelectionStrategy Strategy) {
  EngineOptions Opts;
  Opts.Scheduler.Workers = Workers;
  Opts.Scheduler.Strategy = Strategy;
  Solver Slv(Opts.Solver);
  ExecStats Stats;
  using St = SymbolicState<M>;
  RunOutcome Out;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    for (TraceResult<St> &R : *Traces)
      Out.Sigs.push_back(T + "|" + std::string(outcomeKindName(R.Kind)) +
                         "|" + R.Val.toString() + "|" +
                         R.Final.pathCondition().toString());
  }
  Out.Cmds = Stats.CmdsExecuted.load();
  Out.Branches = Stats.Branches.load();
  Out.ProcCalls = Stats.ProcCalls.load();
  Out.ActionCalls = Stats.ActionCalls.load();
  Out.Finished = Stats.PathsFinished.load();
  Out.Errored = Stats.PathsErrored.load();
  Out.Vanished = Stats.PathsVanished.load();
  Out.Bounded = Stats.PathsBounded.load();
  return Out;
}

/// Runs \p P on the legacy model \p Old and the memlib model \p New under
/// every (workers, strategy) configuration and asserts identity.
template <typename Old, typename New>
void expectBitIdentical(const Prog &P, std::string_view Name) {
  for (uint32_t Workers : {1u, 4u}) {
    for (SelectionStrategy Strategy : {SelectionStrategy::OldestFirst,
                                       SelectionStrategy::CoverageGuided}) {
      RunOutcome Legacy = suiteOutcome<Old>(P, Workers, Strategy);
      RunOutcome Memlib = suiteOutcome<New>(P, Workers, Strategy);
      std::string Where =
          std::string(Name) + " at workers=" + std::to_string(Workers) +
          " strategy=" + std::string(strategyName(Strategy));
      EXPECT_FALSE(Legacy.Sigs.empty()) << Where;
      EXPECT_GT(Legacy.ActionCalls, 0u)
          << Where << ": workload executes no memory actions — the "
                      "differential would be vacuous";
      EXPECT_EQ(Legacy.Sigs, Memlib.Sigs)
          << Where << ": the memlib model changed an outcome, a fault "
                      "message, a path condition, or the branch order";
      EXPECT_EQ(Legacy.Cmds, Memlib.Cmds) << Where;
      EXPECT_EQ(Legacy.Branches, Memlib.Branches) << Where;
      EXPECT_EQ(Legacy.ProcCalls, Memlib.ProcCalls) << Where;
      EXPECT_EQ(Legacy.ActionCalls, Memlib.ActionCalls) << Where;
      EXPECT_EQ(Legacy.Finished, Memlib.Finished) << Where;
      EXPECT_EQ(Legacy.Errored, Memlib.Errored) << Where;
      EXPECT_EQ(Legacy.Vanished, Memlib.Vanished) << Where;
      EXPECT_EQ(Legacy.Bounded, Memlib.Bounded) << Where;
    }
  }
}

class BucketsMemlibTest : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsMemlibTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

/// While programs shaped to hit every action and fault path of the object
/// memory: symbolic-valued mutation, use-after-dispose, double dispose,
/// missing properties, and dispose under symbolic control flow.
const char *const WhileSources[] = {
    "function test_obj_paths() {\n"
    "  o := { x: 0, y: 7 };\n"
    "  v := fresh_int();\n"
    "  assume (0 <= v && v < 3);\n"
    "  o.x := v;\n"
    "  a := o.x;\n"
    "  assert (a == v);\n"
    "  if (a == 2) { dispose o; return 1; }\n"
    "  b := o.y;\n"
    "  return a + b;\n}\n",
    "function test_use_after_dispose() {\n"
    "  o := { x: 1 };\n"
    "  dispose o;\n"
    "  a := o.x;\n"
    "  return a;\n}\n",
    "function test_double_dispose() {\n"
    "  o := { x: 1 };\n"
    "  dispose o;\n"
    "  dispose o;\n"
    "  return 0;\n}\n",
    "function test_missing_prop() {\n"
    "  o := { x: 1 };\n"
    "  c := fresh_int();\n"
    "  if (c == 0) { a := o.nope; return a; }\n"
    "  b := o.x;\n"
    "  return b;\n}\n",
};

} // namespace

TEST_P(BucketsMemlibTest, LegacyAndMemlibModelsAgree) {
  const BucketsSuite &S = GetParam();
  std::string Src =
      std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectBitIdentical<legacy::MjsSMem, mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsMemlibTest, ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsMemlibTest, LegacyAndMemlibModelsAgree) {
  const CollectionsSuite &S = GetParam();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectBitIdentical<legacy::McSMem, mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsMemlibTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(WhileMemlibTest, LegacyAndMemlibModelsAgree) {
  for (const char *Src : WhileSources) {
    Result<Prog> P = whilelang::compileWhileSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    expectBitIdentical<legacy::WhileSMem, whilelang::WhileSMem>(*P, "while");
  }
}

TEST(WhileMemlibTest, SeededBucketsFindingsSurviveTheRefactor) {
  // The §4.1 findings on the buggy Buckets library must be re-detected
  // with the same messages by both model generations — the fault-path
  // half of the differential, on the workload that matters.
  std::vector<BucketsSuite> Suites = bucketsSuites();
  ASSERT_FALSE(Suites.empty());
  std::string Src = std::string(bucketsBuggyLibrary()) + "\n" +
                    std::string(Suites.front().Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectBitIdentical<legacy::MjsSMem, mjs::MjsSMem>(*P, "buckets-buggy");
}
