//===- obs/query_profile.h - Solver hot-query attribution ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver hot-query profiler (DESIGN.md §4d): attributes solver wall
/// time, verdicts, and cache / incremental-session misses to the
/// *originating GIL site* — the (procedure, command index) whose
/// execution issued the query. "Which assume in which procedure is eating
/// the Z3 budget" is the first question of every long-run investigation,
/// and neither SolverStats (per layer, no location) nor the span table
/// (per layer, no location) can answer it.
///
/// Attribution is a thread-local origin slot: the interpreter's step()
/// publishes (current procedure id, command index) before executing a
/// command via the RAII QueryOriginScope (three word-sized writes — cheap
/// enough for the per-command path), and Solver::checkSat /
/// verifiedModel read it when they record. Queries issued outside any
/// command (e.g. warm-start cache loads) fall into the "unattributed"
/// bucket, so coverage of the attribution itself is measurable — the
/// bench acceptance check compares attributed time against the solver
/// span's wall time.
///
/// Sites are keyed by the dense InternedString id of the procedure plus
/// the command index, sharded 16 ways; record() is one shard-mutex
/// acquisition + a handful of plain adds, noise next to the query it
/// accounts (simplifier + cache + possibly an SMT round-trip).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_QUERY_PROFILE_H
#define GILLIAN_OBS_QUERY_PROFILE_H

#include "obs/json_writer.h"
#include "support/interner.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gillian::obs {

/// The GIL site on whose behalf the current thread is querying the
/// solver. Proc is an InternedString id (0 = none).
struct QueryOrigin {
  uint32_t ProcId = 0;
  uint32_t CmdIdx = 0;
};

namespace detail {
QueryOrigin &currentQueryOrigin();
} // namespace detail

/// RAII publication of the executing GIL site. Constructed by the
/// interpreter at the top of step() (and by the test runner around
/// counter-model search); nested scopes restore the outer origin, so a
/// procedure call's inner commands attribute to the *inner* site.
class QueryOriginScope {
public:
  QueryOriginScope(uint32_t ProcId, uint32_t CmdIdx)
      : Slot(detail::currentQueryOrigin()), Saved(Slot) {
    Slot.ProcId = ProcId;
    Slot.CmdIdx = CmdIdx;
  }
  ~QueryOriginScope() { Slot = Saved; }

  QueryOriginScope(const QueryOriginScope &) = delete;
  QueryOriginScope &operator=(const QueryOriginScope &) = delete;

private:
  QueryOrigin &Slot;
  QueryOrigin Saved;
};

/// Solver verdict as seen by the profiler (mirror of SatResult, kept here
/// so obs does not depend on the solver library).
enum class QueryVerdict : uint8_t { Sat, Unsat, Unknown };

class QueryProfiler {
public:
  static QueryProfiler &instance();

  /// Records one solver query of \p WallNs nanoseconds against the
  /// calling thread's current origin. \p CacheHit marks a full-query
  /// result-cache hit; \p SessionResets counts incremental sessions that
  /// had to discard their asserted prefix during this query.
  void record(uint64_t WallNs, QueryVerdict V, bool CacheHit,
              uint64_t SessionResets);

  /// One site's accumulated profile.
  struct Site {
    std::string Proc;
    uint32_t CmdIdx = 0;
    uint64_t Calls = 0;
    uint64_t WallNs = 0;
    uint64_t Sat = 0;
    uint64_t Unsat = 0;
    uint64_t Unknown = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t SessionResets = 0;
  };

  /// The \p N sites with the largest accumulated wall time, descending.
  std::vector<Site> topN(size_t N) const;

  /// Total wall time recorded against a known site / against no site.
  uint64_t attributedNs() const;
  uint64_t unattributedNs() const;
  /// Total queries recorded (attributed or not).
  uint64_t queries() const;

  /// `[{"proc":...,"cmd_idx":...,"calls":...,"wall_ns":...,...},...]` —
  /// the top-\p N table, wall-time descending, spliced into
  /// solverStatsJson and the bench JSON lines.
  void jsonInto(JsonWriter &W, size_t N) const;
  std::string json(size_t N) const;

  void reset();

private:
  struct SiteCell {
    uint32_t ProcId;
    uint32_t CmdIdx;
    uint64_t Calls = 0;
    uint64_t WallNs = 0;
    uint64_t Sat = 0;
    uint64_t Unsat = 0;
    uint64_t Unknown = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t SessionResets = 0;
  };
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<uint64_t, SiteCell> Sites; ///< key: ProcId<<32|Cmd
  };

  static uint64_t keyOf(const QueryOrigin &O) {
    return (static_cast<uint64_t>(O.ProcId) << 32) | O.CmdIdx;
  }
  Shard &shardFor(uint64_t Key) {
    return Shards[(Key * 0x9E3779B97F4A7C15ull) >> 60];
  }

  std::vector<Site> snapshotSorted() const;

  static constexpr size_t NumShards = 16;
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> UnattributedNs{0};
  std::atomic<uint64_t> UnattributedQueries{0};
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_QUERY_PROFILE_H
