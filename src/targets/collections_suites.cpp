//===- targets/collections_suites.cpp -------------------------------------===//
//
// Symbolic test suites for the Collections-C-style library: one suite per
// Table 2 row. The paper's suite had 161 tests built over two weeks; ours
// keeps the same rows and testing discipline (symbolic payloads,
// assertion-based oracles, UB surfacing through the memory model) at a
// smaller per-row count — see EXPERIMENTS.md for the mapping.
//
//===----------------------------------------------------------------------===//

#include "targets/collections_mc.h"

using namespace gillian::targets;

namespace {

constexpr std::string_view ArraySuite = R"mc(
fn test_arr_add_get() -> i64 {
  var v: i64 = symb_i64();
  var a: ptr<Array> = arr_new(2);
  arr_add(a, v);
  assert(arr_get(a, 0) == v);
  assert(a->size == 1);
  return 0;
}
fn test_arr_growth_preserves_elements() -> i64 {
  var v: i64 = symb_i64();
  var a: ptr<Array> = arr_new(2);
  arr_add(a, v);
  arr_add(a, v + 1);
  arr_add(a, v + 2);   // forces expand past capacity 2
  assert(a->capacity == 4);
  assert(arr_get(a, 0) == v);
  assert(arr_get(a, 2) == v + 2);
  return 0;
}
fn test_arr_fill_to_capacity_boundary() -> i64 {
  // The exact boundary the seeded off-by-one corrupts: size == capacity.
  var a: ptr<Array> = arr_new(2);
  arr_add(a, 1);
  arr_add(a, 2);       // size == capacity == 2: next add must expand
  arr_add(a, 3);
  assert(arr_get(a, 2) == 3);
  return 0;
}
fn test_arr_set_overwrites() -> i64 {
  var v: i64 = symb_i64();
  var w: i64 = symb_i64();
  var a: ptr<Array> = arr_new(2);
  arr_add(a, v);
  arr_set(a, 0, w);
  assert(arr_get(a, 0) == w);
  return 0;
}
fn test_arr_remove_shifts() -> i64 {
  var a: ptr<Array> = arr_new(4);
  arr_add(a, 10); arr_add(a, 20); arr_add(a, 30);
  var v: i64 = arr_remove_at(a, 1);
  assert(v == 20);
  assert(arr_get(a, 1) == 30);
  assert(a->size == 2);
  return 0;
}
fn test_arr_index_of_symbolic() -> i64 {
  var v: i64 = symb_i64();
  var w: i64 = symb_i64();
  assume(v != w);
  var a: ptr<Array> = arr_new(2);
  arr_add(a, v);
  arr_add(a, w);
  assert(arr_index_of(a, w) == 1);
  assert(arr_index_of(a, v) == 0);
  return 0;
}
fn test_arr_destroy_releases() -> i64 {
  var a: ptr<Array> = arr_new(2);
  arr_add(a, 1);
  arr_destroy(a);
  return 0;
}
fn test_arr_capacity_exact() -> i64 {
  var a: ptr<Array> = arr_new(3);
  assert(allocsize(a->buffer) == 3 * sizeof(i64));
  return 0;
}
)mc";

constexpr std::string_view DequeSuite = R"mc(
fn test_dq_fifo() -> i64 {
  var v: i64 = symb_i64();
  var d: ptr<Deque> = dq_new(4);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_last(d, v);
  dq_add_last(d, v + 1);
  assert(dq_remove_first(d, ok) == v);
  assert(dq_remove_first(d, ok) == v + 1);
  assert(ok[0] == 1);
  return 0;
}
fn test_dq_double_ended() -> i64 {
  var v: i64 = symb_i64();
  var d: ptr<Deque> = dq_new(4);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_first(d, v);
  dq_add_last(d, v + 1);
  dq_add_first(d, v - 1);
  assert(dq_remove_first(d, ok) == v - 1);
  assert(dq_remove_last(d, ok) == v + 1);
  assert(dq_remove_first(d, ok) == v);
  return 0;
}
fn test_dq_wraparound() -> i64 {
  var d: ptr<Deque> = dq_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_last(d, 1);
  dq_add_last(d, 2);
  dq_remove_first(d, ok);
  dq_add_last(d, 3);   // wraps in the 2-slot ring
  assert(dq_remove_first(d, ok) == 2);
  assert(dq_remove_first(d, ok) == 3);
  return 0;
}
fn test_dq_growth_keeps_order() -> i64 {
  var d: ptr<Deque> = dq_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_last(d, 1);
  dq_add_last(d, 2);
  dq_add_last(d, 3);   // grow
  assert(d->cap == 4);
  assert(dq_remove_first(d, ok) == 1);
  assert(dq_remove_first(d, ok) == 2);
  assert(dq_remove_first(d, ok) == 3);
  return 0;
}
fn test_dq_empty_remove() -> i64 {
  var d: ptr<Deque> = dq_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_remove_first(d, ok);
  assert(ok[0] == 0);
  dq_remove_last(d, ok);
  assert(ok[0] == 0);
  return 0;
}
fn test_dq_clear_resets() -> i64 {
  var d: ptr<Deque> = dq_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_last(d, 5);
  dq_clear(d);
  assert(d->size == 0);
  dq_add_last(d, 7);
  assert(dq_remove_first(d, ok) == 7);
  return 0;
}
fn test_dq_grow_from_wrapped_state() -> i64 {
  var d: ptr<Deque> = dq_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  dq_add_last(d, 1);
  dq_add_last(d, 2);
  dq_remove_first(d, ok);
  dq_add_last(d, 3);   // head = 1, wrapped
  dq_add_last(d, 4);   // grow while wrapped: must relinearise
  assert(dq_remove_first(d, ok) == 2);
  assert(dq_remove_first(d, ok) == 3);
  assert(dq_remove_first(d, ok) == 4);
  return 0;
}
)mc";

constexpr std::string_view ListSuite = R"mc(
fn test_list_add_get() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<List> = list_new();
  list_add_last(l, v);
  assert(list_get(l, 0) == v);
  assert(l->size == 1);
  return 0;
}
fn test_list_order() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<List> = list_new();
  list_add_last(l, v);
  list_add_last(l, v + 1);
  list_add_first(l, v - 1);
  assert(list_get(l, 0) == v - 1);
  assert(list_get(l, 1) == v);
  assert(list_get(l, 2) == v + 1);
  return 0;
}
fn test_list_contains_symbolic() -> i64 {
  var v: i64 = symb_i64();
  var w: i64 = symb_i64();
  assume(v != w);
  var l: ptr<List> = list_new();
  list_add_last(l, v);
  list_add_last(l, v + 1);
  if (w == v + 1) {
    assert(list_contains(l, w) == 1);
  } else {
    assert(list_contains(l, w) == 0);
  }
  return 0;
}
fn test_list_remove_first_frees() -> i64 {
  var l: ptr<List> = list_new();
  var ok: ptr<i64> = alloc(i64, 1);
  list_add_last(l, 1);
  list_add_last(l, 2);
  assert(list_remove_first(l, ok) == 1);
  assert(l->size == 1);
  assert(list_get(l, 0) == 2);
  return 0;
}
fn test_list_remove_from_empty() -> i64 {
  var l: ptr<List> = list_new();
  var ok: ptr<i64> = alloc(i64, 1);
  list_remove_first(l, ok);
  assert(ok[0] == 0);
  return 0;
}
fn test_list_reverse() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<List> = list_new();
  list_add_last(l, v);
  list_add_last(l, v + 1);
  list_add_last(l, v + 2);
  list_reverse(l);
  assert(list_get(l, 0) == v + 2);
  assert(list_get(l, 2) == v);
  return 0;
}
fn test_list_prev_links_consistent() -> i64 {
  var l: ptr<List> = list_new();
  list_add_last(l, 1);
  list_add_last(l, 2);
  assert(l->tail->prev->val == 1);
  assert(l->head->next->val == 2);
  assert(l->head->prev == null);
  assert(l->tail->next == null);
  return 0;
}
fn test_list_singleton_tail_is_head() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<List> = list_new();
  list_add_first(l, v);
  assert(l->head == l->tail);
  assert(list_contains(l, v) == 1);
  return 0;
}
)mc";

constexpr std::string_view SlistSuite = R"mc(
fn test_sl_push_pop_lifo() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<SList> = sl_new();
  var ok: ptr<i64> = alloc(i64, 1);
  sl_push(l, v);
  sl_push(l, v + 1);
  assert(sl_pop(l, ok) == v + 1);
  assert(sl_pop(l, ok) == v);
  assert(l->size == 0);
  return 0;
}
fn test_sl_pop_empty() -> i64 {
  var l: ptr<SList> = sl_new();
  var ok: ptr<i64> = alloc(i64, 1);
  sl_pop(l, ok);
  assert(ok[0] == 0);
  return 0;
}
fn test_sl_get_walks() -> i64 {
  var l: ptr<SList> = sl_new();
  sl_push(l, 3);
  sl_push(l, 2);
  sl_push(l, 1);
  assert(sl_get(l, 0) == 1);
  assert(sl_get(l, 1) == 2);
  assert(sl_get(l, 2) == 3);
  return 0;
}
fn test_sl_index_of() -> i64 {
  var v: i64 = symb_i64();
  var w: i64 = symb_i64();
  assume(v != w);
  var l: ptr<SList> = sl_new();
  sl_push(l, v);
  sl_push(l, w);   // list: w, v
  assert(sl_index_of(l, v) == 1);
  assert(sl_index_of(l, w) == 0);
  return 0;
}
fn test_sl_index_of_missing() -> i64 {
  var v: i64 = symb_i64();
  var l: ptr<SList> = sl_new();
  sl_push(l, v);
  assert(sl_index_of(l, v + 1) == -1);
  return 0;
}
fn test_sl_pop_frees_nodes() -> i64 {
  var l: ptr<SList> = sl_new();
  var ok: ptr<i64> = alloc(i64, 1);
  sl_push(l, 1);
  var n: ptr<SNode> = l->head;
  sl_pop(l, ok);
  assert(l->head == null);
  return 0;
}
)mc";

constexpr std::string_view RbufSuite = R"mc(
fn test_rb_roundtrip() -> i64 {
  var v: i64 = symb_i64();
  var r: ptr<RBuf> = rb_new(2);
  var ok: ptr<i64> = alloc(i64, 1);
  rb_enqueue(r, v);
  assert(rb_dequeue(r, ok) == v);
  assert(ok[0] == 1);
  return 0;
}
fn test_rb_drops_when_full() -> i64 {
  var r: ptr<RBuf> = rb_new(2);
  assert(rb_enqueue(r, 1) == 1);
  assert(rb_enqueue(r, 2) == 1);
  assert(rb_enqueue(r, 3) == 0);
  assert(r->size == 2);
  return 0;
}
fn test_rb_allocation_matches_capacity() -> i64 {
  // The over-allocation audit: the buffer must be exactly cap slots (the
  // §4.2 over-allocation finding was benign for behaviour, caught by
  // capacity inspection).
  var r: ptr<RBuf> = rb_new(3);
  assert(allocsize(r->data) == 3 * sizeof(i64));
  return 0;
}
)mc";

constexpr std::string_view QueueSuite = R"mc(
fn test_q_fifo_symbolic() -> i64 {
  var v: i64 = symb_i64();
  var q: ptr<Deque> = q_new();
  var ok: ptr<i64> = alloc(i64, 1);
  q_enqueue(q, v);
  q_enqueue(q, v * 2);
  assert(q_dequeue(q, ok) == v);
  assert(q_dequeue(q, ok) == v * 2);
  return 0;
}
fn test_q_empty() -> i64 {
  var q: ptr<Deque> = q_new();
  var ok: ptr<i64> = alloc(i64, 1);
  q_dequeue(q, ok);
  assert(ok[0] == 0);
  return 0;
}
fn test_q_interleaved() -> i64 {
  var q: ptr<Deque> = q_new();
  var ok: ptr<i64> = alloc(i64, 1);
  q_enqueue(q, 1);
  assert(q_dequeue(q, ok) == 1);
  q_enqueue(q, 2);
  q_enqueue(q, 3);
  assert(q_dequeue(q, ok) == 2);
  assert(q_dequeue(q, ok) == 3);
  return 0;
}
fn test_q_growth() -> i64 {
  var q: ptr<Deque> = q_new();
  var ok: ptr<i64> = alloc(i64, 1);
  for (var i: i64 = 0; i < 6; i = i + 1) { q_enqueue(q, i); }
  for (var j: i64 = 0; j < 6; j = j + 1) { assert(q_dequeue(q, ok) == j); }
  return 0;
}
)mc";

constexpr std::string_view StackSuite = R"mc(
fn test_st_lifo_symbolic() -> i64 {
  var v: i64 = symb_i64();
  var s: ptr<Array> = st_new();
  var ok: ptr<i64> = alloc(i64, 1);
  st_push(s, v);
  st_push(s, v + 1);
  assert(st_pop(s, ok) == v + 1);
  assert(st_pop(s, ok) == v);
  return 0;
}
fn test_st_pop_empty() -> i64 {
  var s: ptr<Array> = st_new();
  var ok: ptr<i64> = alloc(i64, 1);
  st_pop(s, ok);
  assert(ok[0] == 0);
  return 0;
}
)mc";

constexpr std::string_view PqueueSuite = R"mc(
fn test_pq_pop_order_symbolic() -> i64 {
  var a: i64 = symb_i64();
  var b: i64 = symb_i64();
  var p: ptr<Array> = pq_new();
  var ok: ptr<i64> = alloc(i64, 1);
  pq_push(p, a);
  pq_push(p, b);
  var x: i64 = pq_pop(p, ok);
  var y: i64 = pq_pop(p, ok);
  assert(x <= y);
  return 0;
}
fn test_pq_three_sorted() -> i64 {
  var v: i64 = symb_i64();
  assume(-4 <= v && v <= 4);
  var p: ptr<Array> = pq_new();
  var ok: ptr<i64> = alloc(i64, 1);
  pq_push(p, 0);
  pq_push(p, v);
  pq_push(p, 2);
  var x: i64 = pq_pop(p, ok);
  var y: i64 = pq_pop(p, ok);
  var z: i64 = pq_pop(p, ok);
  assert(x <= y && y <= z);
  return 0;
}
)mc";

constexpr std::string_view TreetblSuite = R"mc(
fn test_tt_put_get() -> i64 {
  var k: i64 = symb_i64();
  var v: i64 = symb_i64();
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_put(t, k, v);
  assert(tt_get(t, k, ok) == v);
  assert(ok[0] == 1);
  return 0;
}
fn test_tt_get_missing() -> i64 {
  var k: i64 = symb_i64();
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_get(t, k, ok);
  assert(ok[0] == 0);
  return 0;
}
fn test_tt_overwrite_same_key() -> i64 {
  var k: i64 = symb_i64();
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_put(t, k, 1);
  tt_put(t, k, 2);
  assert(tt_get(t, k, ok) == 2);
  assert(t->size == 1);
  return 0;
}
fn test_tt_two_symbolic_keys() -> i64 {
  var a: i64 = symb_i64();
  var b: i64 = symb_i64();
  assume(a != b);
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_put(t, a, 10);
  tt_put(t, b, 20);
  assert(tt_get(t, a, ok) == 10);
  assert(tt_get(t, b, ok) == 20);
  assert(t->size == 2);
  return 0;
}
fn test_tt_min_key() -> i64 {
  var a: i64 = symb_i64();
  var b: i64 = symb_i64();
  assume(a < b);
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_put(t, b, 0);
  tt_put(t, a, 0);
  assert(tt_min_key(t, ok) == a);
  return 0;
}
fn test_tt_min_of_empty() -> i64 {
  var t: ptr<TreeTbl> = tt_new();
  var ok: ptr<i64> = alloc(i64, 1);
  tt_min_key(t, ok);
  assert(ok[0] == 0);
  return 0;
}
)mc";

constexpr std::string_view TreesetSuite = R"mc(
fn test_ts_add_contains() -> i64 {
  var v: i64 = symb_i64();
  var s: ptr<TreeTbl> = ts_new();
  assert(ts_add(s, v) == 1);
  assert(ts_contains(s, v) == 1);
  return 0;
}
fn test_ts_no_duplicates() -> i64 {
  var v: i64 = symb_i64();
  var s: ptr<TreeTbl> = ts_new();
  ts_add(s, v);
  assert(ts_add(s, v) == 0);
  assert(ts_size(s) == 1);
  return 0;
}
fn test_ts_membership_split() -> i64 {
  var v: i64 = symb_i64();
  var w: i64 = symb_i64();
  var s: ptr<TreeTbl> = ts_new();
  ts_add(s, v);
  if (v == w) {
    assert(ts_contains(s, w) == 1);
  } else {
    assert(ts_contains(s, w) == 0);
  }
  return 0;
}
fn test_ts_three_members() -> i64 {
  var s: ptr<TreeTbl> = ts_new();
  ts_add(s, 2); ts_add(s, 1); ts_add(s, 3);
  assert(ts_contains(s, 1) == 1);
  assert(ts_contains(s, 2) == 1);
  assert(ts_contains(s, 3) == 1);
  assert(ts_contains(s, 4) == 0);
  assert(ts_size(s) == 3);
  return 0;
}
)mc";

} // namespace

const std::vector<CollectionsSuite> &
gillian::targets::collectionsSuites() {
  static const std::vector<CollectionsSuite> Suites = {
      {"array", ArraySuite},   {"deque", DequeSuite},
      {"list", ListSuite},     {"pqueue", PqueueSuite},
      {"queue", QueueSuite},   {"rbuf", RbufSuite},
      {"slist", SlistSuite},   {"stack", StackSuite},
      {"treetbl", TreetblSuite}, {"treeset", TreesetSuite},
  };
  return Suites;
}
