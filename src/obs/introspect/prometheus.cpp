//===- obs/introspect/prometheus.cpp --------------------------------------===//

#include "obs/introspect/prometheus.h"

#include <cctype>
#include <cstdio>

using namespace gillian::obs;

std::string gillian::obs::promEscapeLabelValue(std::string_view V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    switch (C) {
    case '\\': Out += "\\\\"; break;
    case '"': Out += "\\\""; break;
    case '\n': Out += "\\n"; break;
    default: Out += C;
    }
  }
  return Out;
}

std::string gillian::obs::promSanitizeName(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  // Metric names must be non-empty and must not start with a digit.
  if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), '_');
  return Out;
}

void PromWriter::typeLine(std::string_view Family, const char *Type) {
  auto [It, Inserted] = TypedFamilies.emplace(Family);
  (void)It;
  if (!Inserted)
    return;
  Out += "# TYPE ";
  Out += Family;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

void PromWriter::sample(std::string_view Name, const PromLabels &Labels,
                        std::string_view Rendered) {
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    bool First = true;
    for (const auto &[K, V] : Labels) {
      if (!First)
        Out += ',';
      First = false;
      Out += K;
      Out += "=\"";
      Out += promEscapeLabelValue(V);
      Out += '"';
    }
    Out += '}';
  }
  Out += ' ';
  Out += Rendered;
  Out += '\n';
}

void PromWriter::counter(std::string_view Family, uint64_t Value,
                         const PromLabels &Labels) {
  // Counter families carry the _total suffix on samples; the TYPE line
  // names the suffixed family too (exposition-format convention for the
  // plain counter type).
  std::string Suffixed(Family);
  Suffixed += "_total";
  typeLine(Suffixed, "counter");
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  sample(Suffixed, Labels, Buf);
}

void PromWriter::gauge(std::string_view Family, double Value,
                       const PromLabels &Labels) {
  typeLine(Family, "gauge");
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  sample(Family, Labels, Buf);
}

void PromWriter::gauge(std::string_view Family, uint64_t Value,
                       const PromLabels &Labels) {
  typeLine(Family, "gauge");
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  sample(Family, Labels, Buf);
}
