//===- engine/stats.h - Execution statistics -------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters reported by the evaluation harness. "GIL commands" is the
/// metric of Tables 1 and 2 in the paper.
///
/// ExecStats is an obs::CounterSet: every field self-registers its JSON
/// name and category, so copy, merge and JSON emission are schema walks —
/// adding a counter is the one declaration line. Counters are relaxed
/// atomics so one ExecStats instance can be shared by every worker of the
/// parallel exploration scheduler and still sum exactly — the counts are
/// schedule-independent, only the interleaving of increments varies.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_STATS_H
#define GILLIAN_ENGINE_STATS_H

#include "obs/counters.h"

namespace gillian {

struct ExecStats : obs::CounterSet<ExecStats> {
  /// GIL commands (Tables 1/2).
  obs::Counter CmdsExecuted{*this, "cmds_executed", "engine"};
  /// Points where execution split.
  obs::Counter Branches{*this, "branches", "engine"};
  obs::Counter PathsFinished{*this, "paths_finished", "engine"};
  obs::Counter PathsVanished{*this, "paths_vanished", "engine"};
  obs::Counter PathsErrored{*this, "paths_errored", "engine"};
  /// Paths cut by loop/step budgets.
  obs::Counter PathsBounded{*this, "paths_bounded", "engine"};
  obs::Counter ActionCalls{*this, "action_calls", "engine"};
  obs::Counter ProcCalls{*this, "proc_calls", "engine"};

  // Solver effort attributed to this execution (filled by the symbolic
  // test runner from SolverStats deltas; zero for concrete runs).
  obs::Counter SolverQueries{*this, "solver_queries", "engine"};
  /// Full-query + slice cache hits.
  obs::Counter SolverCacheHits{*this, "solver_cache_hits", "engine"};
  /// Z3 answers on a reused incremental prefix.
  obs::Counter SolverIncReuses{*this, "solver_inc_reuses", "engine"};
  /// Wall-time inside the solver (fed by the Solver span's slot).
  obs::Counter SolverNs{*this, "solver_ns", "engine"};
  /// Wall-time of the exploration loop (fed by the Explore span's slot).
  obs::Counter EngineNs{*this, "engine_ns", "engine"};

  ExecStats() = default;
  ExecStats(const ExecStats &O) { copyFrom(O); }

  ExecStats &operator=(const ExecStats &O) {
    copyFrom(O);
    return *this;
  }

  ExecStats &operator+=(const ExecStats &O) {
    addFrom(O);
    return *this;
  }

  /// Explicit name for summing per-worker snapshots into an aggregate.
  void merge(const ExecStats &O) { *this += O; }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_STATS_H
