//===- tests/obs/obs_test.cpp ---------------------------------------------===//
//
// Unit tests of the observability core: the streaming JSON writer, the
// self-registering counter sets, RAII span nesting (self vs total time),
// the flight-recorder ring (wrap keeps the newest events), the recorder's
// drain ordering, and the chrome://tracing exporter's output shape.
//
//===----------------------------------------------------------------------===//

#include "obs/action_counters.h"
#include "obs/counters.h"
#include "obs/exporters.h"
#include "obs/json_writer.h"
#include "obs/obs_config.h"
#include "obs/span.h"
#include "obs/trace_ring.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::obs;

namespace {

/// Restores the global obs switches after a test that flips them.
class ObsConfigGuard {
public:
  ObsConfigGuard() : Saved(ObsConfig::get()) {}
  ~ObsConfigGuard() { ObsConfig::set(Saved); }

private:
  ObsOptions Saved;
};

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriterTest, ObjectsArraysAndCommaPlacement) {
  JsonWriter W;
  W.beginObject();
  W.field("a", static_cast<uint64_t>(1));
  W.field("b", "two");
  W.key("c");
  W.beginArray();
  W.value(static_cast<uint64_t>(3));
  W.value(false);
  W.beginObject();
  W.field("d", 2.5, 2);
  W.endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"a\":1,\"b\":\"two\",\"c\":[3,false,{\"d\":2.50}]}");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  JsonWriter W;
  W.beginObject();
  W.field("k\"1", "a\\b\n\t\r");
  W.field("k2", std::string_view("\x01", 1));
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"k\\\"1\":\"a\\\\b\\n\\t\\r\",\"k2\":\"\\u0001\"}");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(JsonWriterTest, RawSplicesPreRenderedValues) {
  JsonWriter Inner;
  Inner.beginObject();
  Inner.field("x", static_cast<uint64_t>(7));
  Inner.endObject();
  JsonWriter W;
  W.beginObject();
  W.key("first");
  W.raw(Inner.str());
  W.key("second");
  W.raw(Inner.str());
  W.endObject();
  EXPECT_EQ(W.str(), "{\"first\":{\"x\":7},\"second\":{\"x\":7}}");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(JsonValidateTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(validateJson("{"));
  EXPECT_FALSE(validateJson("{\"a\":}"));
  EXPECT_FALSE(validateJson("{\"a\":1,}"));
  EXPECT_FALSE(validateJson("[1 2]"));
  EXPECT_FALSE(validateJson("{\"a\":1}garbage"));
  EXPECT_FALSE(validateJson("\"unterminated"));
  EXPECT_TRUE(validateJson("{\"a\":[1,2.5,-3e2,null,true,\"s\"]}"));
}

//===----------------------------------------------------------------------===//
// CounterSet
//===----------------------------------------------------------------------===//

struct ProbeStats : CounterSet<ProbeStats> {
  Counter Alpha{*this, "alpha", "one"};
  Counter Beta{*this, "beta", "one"};
  Counter Gamma{*this, "gamma", "two"};

  ProbeStats() = default;
  ProbeStats(const ProbeStats &O) { copyFrom(O); }
  ProbeStats &operator=(const ProbeStats &O) {
    copyFrom(O);
    return *this;
  }
};

TEST(CounterSetTest, SchemaRegistersEveryFieldOnce) {
  const CounterSchema &S = ProbeStats::schema();
  ASSERT_EQ(S.fields().size(), 3u);
  EXPECT_STREQ(S.fields()[0].Name, "alpha");
  EXPECT_STREQ(S.fields()[0].Category, "one");
  EXPECT_STREQ(S.fields()[1].Name, "beta");
  EXPECT_STREQ(S.fields()[2].Name, "gamma");
  EXPECT_STREQ(S.fields()[2].Category, "two");
  // Constructing more instances must not grow the schema (the probe runs
  // once, under the build scope).
  ProbeStats A, B;
  (void)A;
  (void)B;
  EXPECT_EQ(ProbeStats::schema().fields().size(), 3u);
}

TEST(CounterSetTest, CopyMergeDeltaResetAreSchemaWalks) {
  ProbeStats A;
  ++A.Alpha;
  A.Beta += 5;
  A.Gamma.fetch_add(2);
  ProbeStats B = A; // copyFrom
  EXPECT_EQ(B.Alpha.load(), 1u);
  EXPECT_EQ(B.Beta.load(), 5u);
  EXPECT_EQ(B.Gamma.load(), 2u);
  B.addFrom(A);
  EXPECT_EQ(B.Alpha.load(), 2u);
  EXPECT_EQ(B.Beta.load(), 10u);
  ProbeStats D = B.deltaSince(A);
  EXPECT_EQ(D.Alpha.load(), 1u);
  EXPECT_EQ(D.Beta.load(), 5u);
  EXPECT_EQ(D.Gamma.load(), 2u);
  B.resetCounters();
  EXPECT_EQ(B.Alpha.load(), 0u);
  EXPECT_EQ(B.Gamma.load(), 0u);
}

struct MixedStats : CounterSet<MixedStats> {
  Counter Events{*this, "events", "mixed"};
  Gauge Level{*this, "level", "mixed"};

  MixedStats() = default;
  MixedStats(const MixedStats &O) { copyFrom(O); }
  MixedStats &operator=(const MixedStats &O) {
    copyFrom(O);
    return *this;
  }
};

TEST(GaugeTest, SchemaRecordsFieldKind) {
  const CounterSchema &S = MixedStats::schema();
  ASSERT_EQ(S.fields().size(), 2u);
  EXPECT_EQ(S.fields()[0].Kind, FieldKind::Counter);
  EXPECT_EQ(S.fields()[1].Kind, FieldKind::Gauge);
}

TEST(GaugeTest, AddFromSkipsGauges) {
  MixedStats A, B;
  A.Events += 3;
  A.Level.set(7);
  B.Events += 10;
  B.Level.set(2);
  B.addFrom(A);
  // Counters sum; the destination's sampled last-value stays put (summing
  // two instantaneous readings is meaningless).
  EXPECT_EQ(B.Events.load(), 13u);
  EXPECT_EQ(B.Level.load(), 2u);
}

TEST(GaugeTest, DeltaSinceCarriesNewerGaugeValue) {
  MixedStats Before;
  Before.Events += 5;
  Before.Level.set(100);
  MixedStats After;
  After.Events += 12;
  After.Level.set(3);
  MixedStats D = After.deltaSince(Before);
  EXPECT_EQ(D.Events.load(), 7u);
  // Not 3 - 100 underflowed: the newer sampled value passes through.
  EXPECT_EQ(D.Level.load(), 3u);
}

TEST(GaugeTest, CopyAndResetIncludeGauges) {
  MixedStats A;
  A.Events += 2;
  A.Level.set(9);
  MixedStats B = A;
  EXPECT_EQ(B.Level.load(), 9u);
  B.resetCounters();
  EXPECT_EQ(B.Events.load(), 0u);
  EXPECT_EQ(B.Level.load(), 0u);
}

TEST(CounterSetTest, CountersJsonEmitsEveryRegisteredField) {
  ProbeStats A;
  A.Alpha += 41;
  ++A.Alpha;
  std::string J = A.countersJson();
  EXPECT_TRUE(validateJson(J));
  EXPECT_EQ(J, "{\"alpha\":42,\"beta\":0,\"gamma\":0}");
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(SpanTest, NestedSelfTimesSumToOuterTotal) {
  ObsConfigGuard Guard;
  ObsOptions O;
  O.Timing = true;
  O.Trace = false;
  ObsConfig::set(O);
  SpanSnapshot Before = SpanTable::global().snapshot();
  {
    Span Outer(SpanKind::Explore);
    {
      Span Inner(SpanKind::Solver);
      // A little busy-work so the inner span is non-zero.
      volatile uint64_t Sink = 0;
      for (int I = 0; I < 10000; ++I)
        Sink = Sink + static_cast<uint64_t>(I);
    }
  }
  SpanSnapshot D = SpanTable::global().snapshot() - Before;
  EXPECT_EQ(D.count(SpanKind::Explore), 1u);
  EXPECT_EQ(D.count(SpanKind::Solver), 1u);
  // The inner span has no children: self == total.
  EXPECT_EQ(D.selfNs(SpanKind::Solver), D.totalNs(SpanKind::Solver));
  // The outer span's self time excludes the nested span exactly, so the
  // two layers' self times reconstruct the outer wall time.
  EXPECT_GE(D.totalNs(SpanKind::Explore), D.totalNs(SpanKind::Solver));
  EXPECT_EQ(D.selfNs(SpanKind::Explore) + D.selfNs(SpanKind::Solver),
            D.totalNs(SpanKind::Explore));
  EXPECT_EQ(D.sumSelfNs(), D.totalNs(SpanKind::Explore));
  EXPECT_TRUE(validateJson(D.json()));
}

TEST(SpanTest, SlotReceivesTotalNanoseconds) {
  ObsConfigGuard Guard;
  ObsOptions O;
  O.Timing = true;
  ObsConfig::set(O);
  ProbeStats S;
  SpanSnapshot Before = SpanTable::global().snapshot();
  {
    Span Sp(SpanKind::ColdZ3, &S.Alpha);
  }
  SpanSnapshot D = SpanTable::global().snapshot() - Before;
  EXPECT_EQ(S.Alpha.load(), D.totalNs(SpanKind::ColdZ3));
}

TEST(SpanTest, DisabledTimingRecordsNothing) {
  ObsConfigGuard Guard;
  ObsOptions O;
  O.Timing = false;
  ObsConfig::set(O);
  SpanSnapshot Before = SpanTable::global().snapshot();
  {
    Span Sp(SpanKind::Explore);
    DetailSpan DS(SpanKind::Step);
  }
  SpanSnapshot D = SpanTable::global().snapshot() - Before;
  EXPECT_EQ(D.count(SpanKind::Explore), 0u);
  EXPECT_EQ(D.count(SpanKind::Step), 0u);
}

TEST(SpanTest, DetailSpansFireOnlyWhenEnabled) {
  ObsConfigGuard Guard;
  ObsOptions O;
  O.Timing = true;
  O.DetailedSpans = false;
  ObsConfig::set(O);
  SpanSnapshot Before = SpanTable::global().snapshot();
  {
    DetailSpan DS(SpanKind::Step);
  }
  SpanSnapshot D1 = SpanTable::global().snapshot() - Before;
  EXPECT_EQ(D1.count(SpanKind::Step), 0u);
  ObsConfig::setDetailedSpans(true);
  {
    DetailSpan DS(SpanKind::Step);
  }
  SpanSnapshot D2 = SpanTable::global().snapshot() - Before;
  EXPECT_EQ(D2.count(SpanKind::Step), 1u);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(TraceRingTest, WrapOverwritesOldestKeepsNewest) {
  TraceRing Ring(8);
  for (uint64_t I = 0; I < 20; ++I) {
    TraceEvent E{};
    E.TsNs = I;
    E.Kind = TraceEventKind::BranchTaken;
    Ring.record(E);
  }
  EXPECT_EQ(Ring.size(), 8u);
  EXPECT_EQ(Ring.recorded(), 20u);
  std::vector<TraceEvent> Out;
  Ring.drainInto(Out);
  ASSERT_EQ(Out.size(), 8u);
  // Oldest first, and the survivors are exactly the 8 newest events.
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(Out[I].TsNs, 12 + I);
  EXPECT_EQ(Ring.size(), 0u);
}

TEST(TraceRingTest, PartialFillDrainsInOrder) {
  TraceRing Ring(8);
  for (uint64_t I = 0; I < 3; ++I) {
    TraceEvent E{};
    E.TsNs = 100 + I;
    Ring.record(E);
  }
  std::vector<TraceEvent> Out;
  Ring.drainInto(Out);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].TsNs, 100u);
  EXPECT_EQ(Out[2].TsNs, 102u);
}

TEST(TraceRecorderTest, RecordsGateOnConfigAndDrainSortsByTime) {
  ObsConfigGuard Guard;
  TraceRecorder &R = TraceRecorder::instance();
  R.reset();
  // Disabled: record() must be a no-op.
  ObsConfig::setTrace(false);
  TraceRecorder::record(TraceEventKind::Steal, 0, 1, 2);
  EXPECT_TRUE(R.drain().empty());

  R.enable();
  TraceRecorder::record(TraceEventKind::BranchTaken, 0, 2);
  TraceRecorder::record(TraceEventKind::PathFinished, 1);
  TraceRecorder::record(TraceEventKind::Steal, 0, 3, 7);
  std::vector<TraceEvent> Events = R.drain();
  R.disable();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Kind, TraceEventKind::BranchTaken);
  EXPECT_EQ(Events[0].A, 2u);
  EXPECT_EQ(Events[1].Kind, TraceEventKind::PathFinished);
  EXPECT_EQ(Events[1].Arg0, 1u);
  EXPECT_EQ(Events[2].Kind, TraceEventKind::Steal);
  EXPECT_EQ(Events[2].B, 7u);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TsNs, Events[I].TsNs);
  // Drained means drained.
  EXPECT_TRUE(R.drain().empty());
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(ExportersTest, ChromeTraceIsValidJsonWithBalancedSpans) {
  ObsConfigGuard Guard;
  TraceRecorder &R = TraceRecorder::instance();
  R.reset();
  R.enable();
  {
    Span Outer(SpanKind::Explore);
    {
      Span Inner(SpanKind::Solver);
    }
    TraceRecorder::record(TraceEventKind::BranchTaken, 0, 2);
  }
  std::vector<TraceEvent> Events = R.drain();
  R.disable();
  ASSERT_FALSE(Events.empty());
  std::string J = chromeTraceJson(Events);
  EXPECT_TRUE(validateJson(J)) << J;
  // Two spans -> two "B" and two "E" phase records; the instant event
  // renders as phase "i".
  auto countSub = [&](const std::string &Needle) {
    size_t N = 0;
    for (size_t P = J.find(Needle); P != std::string::npos;
         P = J.find(Needle, P + Needle.size()))
      ++N;
    return N;
  };
  EXPECT_EQ(countSub("\"ph\":\"B\""), 2u);
  EXPECT_EQ(countSub("\"ph\":\"E\""), 2u);
  EXPECT_EQ(countSub("\"ph\":\"i\""), 1u);
  EXPECT_NE(J.find("\"explore\""), std::string::npos);
  EXPECT_NE(J.find("\"solver\""), std::string::npos);
}

TEST(ExportersTest, ObsStatsJsonIsValid) {
  std::string J = obsStatsJson(SpanTable::global().snapshot());
  EXPECT_TRUE(validateJson(J)) << J;
  EXPECT_NE(J.find("\"spans\""), std::string::npos);
  EXPECT_NE(J.find("\"actions\""), std::string::npos);
  EXPECT_NE(J.find("\"scheduler\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Action counters
//===----------------------------------------------------------------------===//

TEST(ActionCountersTest, BumpSnapshotAndJson) {
  ObsConfigGuard Guard;
  ObsOptions O;
  ObsConfig::set(O); // ActionCounters defaults on
  InternedString Act = InternedString::get("obs_test_action");
  ActionCounters::bump("obs_test_lang", Act);
  ActionCounters::bump("obs_test_lang", Act);
  auto Snap = ActionCounters::instance().snapshot();
  ASSERT_TRUE(Snap.count("obs_test_lang"));
  EXPECT_GE(Snap["obs_test_lang"]["obs_test_action"], 2u);
  std::string J = ActionCounters::instance().json();
  EXPECT_TRUE(validateJson(J)) << J;
  EXPECT_NE(J.find("\"obs_test_action\""), std::string::npos);
}

} // namespace
