//===- gil/parser.cpp -----------------------------------------------------===//

#include "gil/parser.h"

#include "support/diagnostics.h"
#include "support/lexer.h"

#include <limits>
#include <optional>

using namespace gillian;

namespace {

/// Binding powers for infix operators, loosest first.
enum Prec : int {
  PrecNone = 0,
  PrecOr,      // ||
  PrecAnd,     // &&
  PrecEq,      // == !=
  PrecCmp,     // < <= > >=
  PrecBitOr,   // | ^^
  PrecBitAnd,  // &
  PrecShift,   // << >>
  PrecCons,    // :: ++ @+ (right-assoc for ::)
  PrecAdd,     // + -
  PrecMul,     // * / %
};

struct InfixInfo {
  BinOpKind Op;
  Prec Level;
  bool SwapOperands = false; ///< for '>' and '>=' (sugar for swapped < <=)
  bool Negate = false;       ///< for '!=' (sugar for !(==))
  bool RightAssoc = false;   ///< for '::'
};

std::optional<InfixInfo> infixInfo(const Token &T) {
  if (!T.is(TokenKind::Punct))
    return std::nullopt;
  const std::string &S = T.Text;
  if (S == "||") return InfixInfo{BinOpKind::Or, PrecOr};
  if (S == "&&") return InfixInfo{BinOpKind::And, PrecAnd};
  if (S == "==" || S == "===") return InfixInfo{BinOpKind::Eq, PrecEq};
  if (S == "!=" || S == "!==")
    return InfixInfo{BinOpKind::Eq, PrecEq, false, true};
  if (S == "<") return InfixInfo{BinOpKind::Lt, PrecCmp};
  if (S == "<=") return InfixInfo{BinOpKind::Le, PrecCmp};
  if (S == ">") return InfixInfo{BinOpKind::Lt, PrecCmp, true};
  if (S == ">=") return InfixInfo{BinOpKind::Le, PrecCmp, true};
  if (S == "|") return InfixInfo{BinOpKind::BitOr, PrecBitOr};
  if (S == "^^") return InfixInfo{BinOpKind::BitXor, PrecBitOr};
  if (S == "&") return InfixInfo{BinOpKind::BitAnd, PrecBitAnd};
  if (S == "<<") return InfixInfo{BinOpKind::Shl, PrecShift};
  if (S == ">>") return InfixInfo{BinOpKind::Shr, PrecShift};
  if (S == "::") return InfixInfo{BinOpKind::Cons, PrecCons, false, false, true};
  if (S == "++") return InfixInfo{BinOpKind::ListConcat, PrecCons};
  if (S == "@+") return InfixInfo{BinOpKind::StrCat, PrecCons};
  if (S == "+") return InfixInfo{BinOpKind::Add, PrecAdd};
  if (S == "-") return InfixInfo{BinOpKind::Sub, PrecAdd};
  if (S == "*") return InfixInfo{BinOpKind::Mul, PrecMul};
  if (S == "/") return InfixInfo{BinOpKind::Div, PrecMul};
  if (S == "%") return InfixInfo{BinOpKind::Mod, PrecMul};
  return std::nullopt;
}

std::optional<UnOpKind> keywordUnOp(std::string_view S) {
  if (S == "typeof") return UnOpKind::TypeOf;
  if (S == "len") return UnOpKind::ListLen;
  if (S == "slen") return UnOpKind::StrLen;
  if (S == "hd") return UnOpKind::Head;
  if (S == "tl") return UnOpKind::Tail;
  if (S == "to_num") return UnOpKind::ToNum;
  if (S == "to_int") return UnOpKind::ToInt;
  if (S == "num_to_str") return UnOpKind::NumToStr;
  if (S == "str_to_num") return UnOpKind::StrToNum;
  return std::nullopt;
}

std::optional<BinOpKind> keywordBinOp(std::string_view S) {
  if (S == "l_nth") return BinOpKind::ListNth;
  if (S == "s_nth") return BinOpKind::StrNth;
  return std::nullopt;
}

std::optional<GilType> typeLiteral(std::string_view S) {
  if (S == "Int") return GilType::Int;
  if (S == "Num") return GilType::Num;
  if (S == "Str") return GilType::Str;
  if (S == "Bool") return GilType::Bool;
  if (S == "Sym") return GilType::Sym;
  if (S == "Type") return GilType::Type;
  if (S == "Proc") return GilType::Proc;
  if (S == "List") return GilType::List;
  return std::nullopt;
}

class Parser {
public:
  explicit Parser(std::string_view Src)
      : Owned(tokenize(Src)), Toks(&Owned) {}
  /// Borrowing constructor for parseExprAt: no token copy.
  Parser(const std::vector<Token> &Toks, size_t Pos)
      : Toks(&Toks), Pos(Pos) {}

  /// Exposed for parseExprAt.
  Result<Expr> parseOneExpr(size_t &OutPos) {
    Expr E = parseExpr();
    OutPos = Pos;
    if (!E)
      return Err(ErrMsg);
    return E;
  }

  Result<Prog> parseProg() {
    Prog P;
    while (!cur().is(TokenKind::Eof)) {
      Result<Proc> R = parseProc();
      if (!R)
        return Err(R.error());
      P.add(R.take());
    }
    if (!ErrMsg.empty())
      return Err(ErrMsg);
    return P;
  }

  Result<Expr> parseWholeExpr() {
    Expr E = parseExpr();
    if (!E)
      return Err(ErrMsg);
    if (!cur().is(TokenKind::Eof))
      return Err(diagAtToken(cur(), "trailing input after expression"));
    return E;
  }

private:
  std::vector<Token> Owned;
  const std::vector<Token> *Toks;
  size_t Pos = 0;
  std::string ErrMsg;

  const Token &cur() const { return (*Toks)[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks->size() ? (*Toks)[I] : Toks->back();
  }
  void bump() {
    if (Pos + 1 < Toks->size())
      ++Pos;
  }

  /// Records an error (first one wins) and returns a null expression.
  Expr error(const std::string &Msg) {
    if (ErrMsg.empty())
      ErrMsg = diagAtToken(cur(), Msg);
    return Expr();
  }

  bool expectPunct(std::string_view P) {
    if (cur().isPunct(P)) {
      bump();
      return true;
    }
    error("expected '" + std::string(P) + "'");
    return false;
  }

  std::optional<std::string> expectIdent(const char *What) {
    if (cur().is(TokenKind::Ident)) {
      std::string S = cur().Text;
      bump();
      return S;
    }
    error(std::string("expected ") + What);
    return std::nullopt;
  }

  // ---- Expressions -----------------------------------------------------

  Expr parseExpr(int MinPrec = PrecNone + 1) {
    Expr Lhs = parseUnary();
    if (!Lhs)
      return Expr();
    while (true) {
      auto Info = infixInfo(cur());
      if (!Info || Info->Level < MinPrec)
        return Lhs;
      bump();
      int NextMin = Info->RightAssoc ? Info->Level : Info->Level + 1;
      Expr Rhs = parseExpr(NextMin);
      if (!Rhs)
        return Expr();
      Expr A = Info->SwapOperands ? Rhs : Lhs;
      Expr B = Info->SwapOperands ? Lhs : Rhs;
      Expr E = Expr::binOp(Info->Op, A, B);
      Lhs = Info->Negate ? Expr::notE(E) : E;
    }
  }

  Expr parseUnary() {
    if (cur().isPunct("-")) {
      bump();
      Expr E = parseUnary();
      if (!E)
        return Expr();
      // Fold negated numeric literals so printed negative constants
      // ("-2") parse back to the literal the printer saw, keeping
      // toString/parse a round trip for persisted expressions.
      if (E.isLit() && E.litValue().isInt())
        return Expr::intE(-E.litValue().asInt());
      if (E.isLit() && E.litValue().isNum())
        return Expr::numE(-E.litValue().asNum());
      return Expr::unOp(UnOpKind::Neg, E);
    }
    if (cur().isPunct("!")) {
      bump();
      Expr E = parseUnary();
      return E ? Expr::notE(E) : Expr();
    }
    if (cur().isPunct("~")) {
      bump();
      Expr E = parseUnary();
      return E ? Expr::unOp(UnOpKind::BitNot, E) : Expr();
    }
    return parsePrimary();
  }

  Expr parsePrimary() {
    const Token &T = cur();
    switch (T.Kind) {
    case TokenKind::Int: {
      Expr E = Expr::intE(T.IntVal);
      bump();
      return E;
    }
    case TokenKind::Float: {
      Expr E = Expr::numE(T.FloatVal);
      bump();
      return E;
    }
    case TokenKind::String: {
      Expr E = Expr::strE(T.Text);
      bump();
      return E;
    }
    case TokenKind::Ident:
      return parseIdentExpr();
    case TokenKind::Punct:
      if (T.Text == "(") {
        bump();
        Expr E = parseExpr();
        if (!E || !expectPunct(")"))
          return Expr();
        return E;
      }
      if (T.Text == "[") {
        bump();
        std::vector<Expr> Elems;
        if (!cur().isPunct("]")) {
          while (true) {
            Expr E = parseExpr();
            if (!E)
              return Expr();
            Elems.push_back(E);
            if (cur().isPunct(",")) {
              bump();
              continue;
            }
            break;
          }
        }
        if (!expectPunct("]"))
          return Expr();
        // Fold all-literal lists to a literal list value — the form the
        // simplifier produces at runtime — so printed lists like "[3]"
        // parse back to the expression the printer saw (persisted
        // summary/cache keys must round-trip structurally).
        bool AllLit = true;
        for (const Expr &E : Elems)
          AllLit &= E.isLit();
        if (AllLit) {
          std::vector<Value> Vals;
          Vals.reserve(Elems.size());
          for (const Expr &E : Elems)
            Vals.push_back(E.litValue());
          return Expr::lit(Value::listV(std::move(Vals)));
        }
        return Expr::list(std::move(Elems));
      }
      if (T.Text == "^") {
        bump();
        auto Name = expectIdent("type name after '^'");
        if (!Name)
          return Expr();
        auto Ty = typeLiteral(*Name);
        if (!Ty)
          return error("unknown type name '" + *Name + "'");
        return Expr::lit(Value::typeV(*Ty));
      }
      if (T.Text == "&") {
        bump();
        auto Name = expectIdent("procedure name after '&'");
        if (!Name)
          return Expr();
        return Expr::lit(Value::procV(*Name));
      }
      return error("expected an expression");
    default:
      return error("expected an expression");
    }
  }

  Expr parseIdentExpr() {
    std::string Name = cur().Text;
    // Literals spelled as identifiers.
    if (Name == "true") {
      bump();
      return Expr::boolE(true);
    }
    if (Name == "false") {
      bump();
      return Expr::boolE(false);
    }
    if (Name == "inf") {
      bump();
      return Expr::numE(std::numeric_limits<double>::infinity());
    }
    if (Name == "nan") {
      bump();
      return Expr::numE(std::numeric_limits<double>::quiet_NaN());
    }
    if (Name[0] == '#') {
      bump();
      return Expr::lvar(Name);
    }
    if (Name[0] == '$') {
      bump();
      return Expr::lit(Value::symV(Name));
    }
    if (auto Op = keywordUnOp(Name); Op && peek().isPunct("(")) {
      bump();
      bump();
      Expr E = parseExpr();
      if (!E || !expectPunct(")"))
        return Expr();
      return Expr::unOp(*Op, E);
    }
    if (auto Op = keywordBinOp(Name); Op && peek().isPunct("(")) {
      bump();
      bump();
      Expr A = parseExpr();
      if (!A || !expectPunct(","))
        return Expr();
      Expr B = parseExpr();
      if (!B || !expectPunct(")"))
        return Expr();
      return Expr::binOp(*Op, A, B);
    }
    bump();
    return Expr::pvar(Name);
  }

  // ---- Commands and procedures -----------------------------------------

  Result<Proc> parseProc() {
    if (!cur().isIdent("proc"))
      return Err(diagAtToken(cur(), "expected 'proc'"));
    bump();
    auto Name = expectIdent("procedure name");
    if (!Name)
      return Err(ErrMsg);
    if (!expectPunct("("))
      return Err(ErrMsg);
    auto Param = expectIdent("parameter name");
    if (!Param)
      return Err(ErrMsg);
    if (!expectPunct(")") || !expectPunct("{"))
      return Err(ErrMsg);

    Proc P;
    P.Name = InternedString::get(*Name);
    P.Param = InternedString::get(*Param);
    while (!cur().isPunct("}")) {
      if (cur().is(TokenKind::Eof))
        return Err(diagAtToken(cur(), "unterminated procedure body"));
      // Optional numeric label, validated against the command index.
      if (cur().is(TokenKind::Int) && peek().isPunct(":")) {
        if (cur().IntVal != static_cast<int64_t>(P.Body.size()))
          return Err(diagAtToken(
              cur(), "label " + std::to_string(cur().IntVal) +
                         " does not match command index " +
                         std::to_string(P.Body.size())));
        bump();
        bump();
      }
      auto C = parseCmd();
      if (!C)
        return Err(C.error());
      P.Body.push_back(C.take());
      if (!expectPunct(";"))
        return Err(ErrMsg);
    }
    bump(); // '}'
    return P;
  }

  Result<Cmd> parseCmd() {
    if (cur().isIdent("ifgoto")) {
      bump();
      Expr E = parseExpr();
      if (!E)
        return Err(ErrMsg);
      if (!cur().is(TokenKind::Int))
        return Err(diagAtToken(cur(), "expected jump target"));
      size_t Target = static_cast<size_t>(cur().IntVal);
      bump();
      return Cmd::ifGoto(E, Target);
    }
    if (cur().isIdent("goto")) {
      bump();
      if (!cur().is(TokenKind::Int))
        return Err(diagAtToken(cur(), "expected jump target"));
      size_t Target = static_cast<size_t>(cur().IntVal);
      bump();
      return Cmd::ifGoto(Expr::boolE(true), Target);
    }
    if (cur().isIdent("return")) {
      bump();
      Expr E = parseExpr();
      if (!E)
        return Err(ErrMsg);
      return Cmd::ret(E);
    }
    if (cur().isIdent("fail")) {
      bump();
      Expr E = parseExpr();
      if (!E)
        return Err(ErrMsg);
      return Cmd::fail(E);
    }
    if (cur().isIdent("vanish")) {
      bump();
      return Cmd::vanish();
    }

    auto X = expectIdent("assignment target");
    if (!X)
      return Err(ErrMsg);
    InternedString Target = InternedString::get(*X);
    if (!expectPunct(":="))
      return Err(ErrMsg);

    // x := @action(e)
    if (cur().isPunct("@")) {
      bump();
      auto Act = expectIdent("action name after '@'");
      if (!Act || !expectPunct("("))
        return Err(ErrMsg);
      Expr Arg = parseExpr();
      if (!Arg || !expectPunct(")"))
        return Err(ErrMsg);
      return Cmd::action(Target, InternedString::get(*Act), Arg);
    }
    // x := usym(j) / isym(j)
    if ((cur().isIdent("usym") || cur().isIdent("isym")) &&
        peek().isPunct("(")) {
      bool IsUSym = cur().Text == "usym";
      bump();
      bump();
      if (!cur().is(TokenKind::Int))
        return Err(diagAtToken(cur(), "expected allocation site"));
      uint32_t Site = static_cast<uint32_t>(cur().IntVal);
      bump();
      if (!expectPunct(")"))
        return Err(ErrMsg);
      return IsUSym ? Cmd::uSym(Target, Site) : Cmd::iSym(Target, Site);
    }

    Expr E = parseExpr();
    if (!E)
      return Err(ErrMsg);
    // x := e(e') — dynamic procedure call.
    if (cur().isPunct("(")) {
      bump();
      Expr Arg = parseExpr();
      if (!Arg || !expectPunct(")"))
        return Err(ErrMsg);
      return Cmd::call(Target, E, Arg);
    }
    return Cmd::assign(Target, E);
  }
};

} // namespace

Result<Prog> gillian::parseGilProg(std::string_view Source) {
  return Parser(Source).parseProg();
}

Result<Expr> gillian::parseGilExpr(std::string_view Source) {
  return Parser(Source).parseWholeExpr();
}

Result<Expr> gillian::parseExprAt(const std::vector<Token> &Toks,
                                  size_t &Pos) {
  Parser P(Toks, Pos);
  return P.parseOneExpr(Pos);
}
