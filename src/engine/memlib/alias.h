//===- engine/memlib/alias.h - May-alias classification --------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver-driven condition classification shared by every symbolic
/// memory combinator: a branch condition is definitely true, definitely
/// false, or contingent under the current path condition. This is the
/// "π ∧ π' SAT" side condition of the Fig. 3 action rules, factored out of
/// the three hand-written memory models (While's aliasKind, MJS's
/// equalUnder, MC's condTri were byte-for-byte the same decision).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_ALIAS_H
#define GILLIAN_ENGINE_MEMLIB_ALIAS_H

#include "gil/expr.h"
#include "solver/simplifier.h"
#include "solver/solver.h"

namespace gillian::memlib {

/// Three-valued verdict on a condition under a path condition.
enum class Tri { Yes, No, Maybe };

/// Classifies \p C under \p PC: simplification first (a definite verdict
/// needs no solver), then a satisfiability check on π ∧ C. On Maybe,
/// \p CondOut receives the simplified condition for the branch's π'.
inline Tri decide(Expr C, const PathCondition &PC, Solver &S, Expr &CondOut) {
  C = simplify(C);
  if (C.isTrue())
    return Tri::Yes;
  if (C.isFalse())
    return Tri::No;
  PathCondition Ext = PC;
  Ext.add(C);
  if (!S.maybeSat(Ext))
    return Tri::No;
  CondOut = C;
  return Tri::Maybe;
}

/// Classifies the aliasing condition A == B under \p PC — the core
/// question of the [S-Lookup]/[S-Mutate-*] branch loops.
inline Tri decideEq(const Expr &A, const Expr &B, const PathCondition &PC,
                    Solver &S, Expr &CondOut) {
  return decide(Expr::eq(A, B), PC, S, CondOut);
}

/// Simplified conjunction. Note simplify(true ∧ C) == simplify(C), so
/// accumulating from an initial `true` literal is exact (no spurious
/// conjuncts reach the path condition).
inline Expr conj(const Expr &A, const Expr &B) {
  return simplify(Expr::andE(A, B));
}

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_ALIAS_H
