# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/gil_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/while_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/mjs_test[1]_include.cmake")
include("/root/repo/build/tests/targets_buckets_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/targets_collections_test[1]_include.cmake")
