file(REMOVE_RECURSE
  "CMakeFiles/while_test.dir/while/compiler_test.cpp.o"
  "CMakeFiles/while_test.dir/while/compiler_test.cpp.o.d"
  "CMakeFiles/while_test.dir/while/memory_test.cpp.o"
  "CMakeFiles/while_test.dir/while/memory_test.cpp.o.d"
  "CMakeFiles/while_test.dir/while/symbolic_test.cpp.o"
  "CMakeFiles/while_test.dir/while/symbolic_test.cpp.o.d"
  "while_test"
  "while_test.pdb"
  "while_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/while_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
