//===- solver/incremental_session.cpp -------------------------------------===//

#include "solver/incremental_session.h"

#include "obs/trace_ring.h"
#include "solver/solver.h"

#include <atomic>

#ifdef GILLIAN_HAVE_Z3

#include "solver/z3_encoder.h"

#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

using namespace gillian;

namespace {
constexpr auto Relaxed = std::memory_order_relaxed;
}

struct IncrementalSession::Impl {
  /// One query's delta: the conjuncts asserted (or dropped) in this push
  /// scope, the type assumptions they were encoded under, and whether any
  /// of them had no encoding.
  struct Frame {
    std::vector<Expr> Conjuncts;
    std::vector<std::pair<InternedString, std::optional<GilType>>> Assumptions;
    bool Dropped = false;
  };

  z3::solver Solver;
  Z3EncodingMemo Memo;
  std::vector<Frame> Frames;
  /// Union of every live frame's conjuncts (frames are disjoint by
  /// construction: a delta never repeats an asserted conjunct).
  std::unordered_set<Expr> Asserted;

  Impl() : Solver(threadZ3Context()) {}

  /// Is \p F sound to keep for a query with conjunct set \p Query under
  /// \p Types? Every frame conjunct must still be a query conjunct, and
  /// the types its encoding depended on must be unchanged — a variable the
  /// frame saw as unconstrained (encoded with the Int-default sort, or
  /// dropped as untypeable) must still be unconstrained, and a pinned one
  /// pinned to the same type.
  bool frameReusable(const Frame &F, const std::unordered_set<Expr> &Query,
                     const TypeEnv &Types) const {
    for (const Expr &C : F.Conjuncts)
      if (!Query.count(C))
        return false;
    for (const auto &[Var, T] : F.Assumptions)
      if (Types.lookup(Var) != T)
        return false;
    return true;
  }

  /// Longest reusable frame prefix for \p Query, and the number of query
  /// conjuncts it covers.
  std::pair<size_t, size_t>
  reusablePrefix(const std::unordered_set<Expr> &Query,
                 const TypeEnv &Types) const {
    size_t Keep = 0, Retained = 0;
    for (const Frame &F : Frames) {
      if (!frameReusable(F, Query, Types))
        break;
      ++Keep;
      Retained += F.Conjuncts.size();
    }
    return {Keep, Retained};
  }

  void hardReset() {
    Solver = z3::solver(threadZ3Context());
    Frames.clear();
    Asserted.clear();
  }
};

IncrementalSession::IncrementalSession() : P(std::make_unique<Impl>()) {}
IncrementalSession::~IncrementalSession() = default;

size_t IncrementalSession::depth() const { return P->Frames.size(); }
size_t IncrementalSession::assertedConjuncts() const {
  return P->Asserted.size();
}
size_t IncrementalSession::encodeMemoSize() const { return P->Memo.size(); }

void IncrementalSession::reset() { P->hardReset(); }

size_t IncrementalSession::reusableConjuncts(const PathCondition &PC,
                                             const TypeEnv &Types) const {
  std::unordered_set<Expr> Query(PC.conjuncts().begin(), PC.conjuncts().end());
  return P->reusablePrefix(Query, Types).second;
}

SatResult IncrementalSession::checkSat(const PathCondition &PC,
                                       const TypeEnv &Types,
                                       double ResetThreshold,
                                       SolverStats &Stats) {
  Impl &I = *P;
  try {
    std::unordered_set<Expr> Query(PC.conjuncts().begin(),
                                   PC.conjuncts().end());
    auto [Keep, Retained] = I.reusablePrefix(Query, Types);

    // Divergence: pop what no longer belongs. When the surviving share is
    // below the threshold, re-asserting from scratch is cheaper than it
    // looks (encoding is memoised) and sheds learnt clauses from the
    // abandoned branch, so reset entirely.
    if (Keep < I.Frames.size() &&
        static_cast<double>(Retained) <
            ResetThreshold * static_cast<double>(PC.size())) {
      Keep = 0;
      Retained = 0;
    }
    if (size_t Popped = I.Frames.size() - Keep) {
      Stats.IncPoppedFrames.fetch_add(Popped, Relaxed);
      if (Keep == 0) {
        obs::TraceRecorder::record(obs::TraceEventKind::SessionReset, 0,
                                   static_cast<uint32_t>(Popped));
        I.hardReset();
        Stats.IncResets.fetch_add(1, Relaxed);
      } else {
        I.Solver.pop(static_cast<unsigned>(Popped));
        for (size_t F = Keep; F < I.Frames.size(); ++F)
          for (const Expr &C : I.Frames[F].Conjuncts)
            I.Asserted.erase(C);
        I.Frames.resize(Keep);
      }
    }

    std::vector<Expr> Delta;
    for (const Expr &C : PC.conjuncts())
      if (!I.Asserted.count(C))
        Delta.push_back(C);

    uint64_t Hits0 = I.Memo.Hits, Misses0 = I.Memo.Misses;
    if (!Delta.empty()) {
      I.Solver.push();
      Impl::Frame F;
      Encoder Enc(threadZ3Context(), Types, &I.Memo);
      std::set<InternedString> Vars;
      for (const Expr &C : Delta) {
        F.Conjuncts.push_back(C);
        C.collectLVars(Vars);
        try {
          I.Solver.add(Enc.encode(C));
        } catch (const Unsupported &) {
          F.Dropped = true;
        }
      }
      F.Assumptions.reserve(Vars.size());
      for (InternedString V : Vars)
        F.Assumptions.emplace_back(V, Types.lookup(V));
      for (const Expr &C : F.Conjuncts)
        I.Asserted.insert(C);
      I.Frames.push_back(std::move(F));
    }
    Stats.EncodeMemoHits.fetch_add(I.Memo.Hits - Hits0, Relaxed);
    Stats.EncodeMemoMisses.fetch_add(I.Memo.Misses - Misses0, Relaxed);

    Stats.IncQueries.fetch_add(1, Relaxed);
    if (Retained) {
      Stats.IncExtends.fetch_add(1, Relaxed);
      Stats.IncReusedConjuncts.fetch_add(Retained, Relaxed);
      Stats.IncPrefixDepth.fetch_add(Keep, Relaxed);
    }

    z3::check_result R = I.Solver.check();
    if (R == z3::unsat)
      return SatResult::Unsat; // asserted subset already contradictory
    if (R == z3::unknown)
      return SatResult::Unknown;
    for (const Impl::Frame &F : I.Frames)
      if (F.Dropped)
        return SatResult::Unknown; // weakened formula: Sat is not trusted
    return SatResult::Sat;
  } catch (const z3::exception &) {
    // The solver state may be mid-scope; discard it rather than risk a
    // stack that no longer matches the frame bookkeeping.
    obs::TraceRecorder::record(obs::TraceEventKind::SessionReset, 0,
                               static_cast<uint32_t>(I.Frames.size()));
    try {
      I.hardReset();
    } catch (...) {
    }
    return SatResult::Unknown;
  }
}

#else // !GILLIAN_HAVE_Z3

using namespace gillian;

struct IncrementalSession::Impl {};

IncrementalSession::IncrementalSession() = default;
IncrementalSession::~IncrementalSession() = default;
size_t IncrementalSession::depth() const { return 0; }
size_t IncrementalSession::assertedConjuncts() const { return 0; }
size_t IncrementalSession::encodeMemoSize() const { return 0; }
void IncrementalSession::reset() {}
size_t IncrementalSession::reusableConjuncts(const PathCondition &,
                                             const TypeEnv &) const {
  return 0;
}
SatResult IncrementalSession::checkSat(const PathCondition &, const TypeEnv &,
                                       double, SolverStats &) {
  return SatResult::Unknown;
}

#endif // GILLIAN_HAVE_Z3

namespace {
/// Bumped by invalidateAll(); every pool compares on use and lazily drops
/// its sessions when behind (Z3 handles are destructed by their owner).
std::atomic<uint64_t> PoolGeneration{0};
} // namespace

gillian::IncrementalSessionPool &gillian::IncrementalSessionPool::forThread() {
#ifdef GILLIAN_HAVE_Z3
  // Touch the thread's Z3 context first: thread-local destruction runs in
  // reverse construction order, so the context outlives the pool's
  // solvers, which reference it.
  (void)threadZ3Context();
#endif
  static thread_local IncrementalSessionPool P;
  return P;
}

void gillian::IncrementalSessionPool::invalidateAll() {
  PoolGeneration.fetch_add(1, std::memory_order_relaxed);
}

void gillian::IncrementalSessionPool::maybeGenerationReset() {
  uint64_t G = PoolGeneration.load(std::memory_order_relaxed);
  if (G != LocalGen) {
    Pool.clear();
    LocalGen = G;
  }
}

void gillian::IncrementalSessionPool::reset() {
  Pool.clear();
  LocalGen = PoolGeneration.load(std::memory_order_relaxed);
}

size_t gillian::IncrementalSessionPool::sessions() {
  maybeGenerationReset();
  return Pool.size();
}

SatResult gillian::IncrementalSessionPool::checkSat(const PathCondition &PC,
                                                    const TypeEnv &Types,
                                                    double ResetThreshold,
                                                    SolverStats &Stats) {
  maybeGenerationReset();
  // Route to the session sharing the most conjuncts — the approximate
  // prefix trie: divergent paths (and the independence slices of one
  // query) each keep their own hot prefix.
  size_t BestIdx = Pool.size();
  size_t BestScore = 0;
  for (size_t Idx = 0; Idx < Pool.size(); ++Idx) {
    size_t Score = Pool[Idx]->reusableConjuncts(PC, Types);
    if (Score > BestScore) {
      BestScore = Score;
      BestIdx = Idx;
    }
  }
  if (BestIdx == Pool.size()) {
    if (Pool.size() < MaxSessions) {
      Pool.push_back(std::make_unique<IncrementalSession>());
    } else {
      // Nothing shares: evict the least-recently-used session. Reset it
      // here, explicitly — the query shares zero conjuncts with its
      // state, so correctness must not depend on checkSat's
      // reset-threshold value (a threshold of 0 would otherwise pop the
      // stale frames one by one).
      BestIdx = 0;
      Pool[BestIdx]->reset();
      obs::TraceRecorder::record(obs::TraceEventKind::CacheEvict, 0,
                                 static_cast<uint32_t>(Pool.size()));
    }
  }
  if (BestIdx < Pool.size()) {
    // Move to the MRU slot (back).
    auto S = std::move(Pool[BestIdx]);
    Pool.erase(Pool.begin() + static_cast<std::ptrdiff_t>(BestIdx));
    Pool.push_back(std::move(S));
  }
  return Pool.back()->checkSat(PC, Types, ResetThreshold, Stats);
}
