//===- engine/scheduler/exploration_scheduler.h - Parallel DFS -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExplorationScheduler: drives Interpreter<St>::step from a work-stealing
/// thread pool. Configurations after a branch point are path-disjoint —
/// their states share only immutable copy-on-write structure and the
/// thread-safe solver — so each can execute on any worker with no
/// coordination.
///
/// Determinism. Results are merged in *branch-trace* order, not completion
/// order. Every task carries a PathId: the sequence of branch indices
/// taken at each multi-successor step since the root. A step with one
/// output keeps its task's id (ids grow with the number of branch points,
/// not the number of commands); a step with k >= 2 outputs — counting both
/// finished paths and live successors, in the production order of the
/// semantics — extends the id with 0..k-1. Because a task's id is either
/// terminated (the task finished) or extended (it branched), never both,
/// no result id is a proper prefix of another, and lexicographic order on
/// ids is a strict total order over results that depends only on the
/// program and the state model — not on thread scheduling. Running the
/// same exploration at any worker count yields the same result sequence.
///
/// Strategies. The SelectionStrategy decides which configuration runs
/// next — which successor a worker keeps stepping after a branch, what
/// its frontier hands back, and what thieves take (frontier.h) — but
/// never *whether* a configuration runs: exploration stays exhaustive, so
/// the outcome set and the branch-trace-sorted result sequence are
/// strategy-independent. What a strategy changes is discovery order,
/// which is exactly what budgets, time-to-first-bug, and
/// time-to-full-coverage observe. Priorities are computed here (the
/// scheduler knows the interpreter and the coverage signals); the
/// frontier only orders by them.
///
/// Budgets. MaxSteps/MaxPaths are enforced from relaxed atomic counters:
/// a task that observes an exhausted budget finishes Bound, with the
/// outcome value naming which budget tripped. The *set* of outcomes
/// therefore remains schedule-independent only for programs that stay
/// within budget (which side of the cut a given path lands on is a race
/// by construction), and the recorded result count can overshoot
/// MaxPaths by up to the number of in-flight tasks — each worker
/// observes the exhausted budget only at its next step boundary.
/// Explorations that hit a budget should use Workers = 1 when exact cut
/// placement matters.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H
#define GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H

#include "engine/interpreter.h"
#include "engine/scheduler/frontier.h"
#include "engine/scheduler/scheduler_options.h"
#include "engine/scheduler/thread_pool.h"
#include "obs/coverage.h"
#include "obs/journal/journal.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

namespace gillian {

template <StateModel St> class ExplorationScheduler {
public:
  using Config = typename Interpreter<St>::Config;
  /// Branch-trace id: the index taken at each multi-successor step since
  /// the root. Lexicographic order on ids is the deterministic result
  /// order (see file comment).
  using PathId = std::vector<uint32_t>;

  ExplorationScheduler(Interpreter<St> &I, const SchedulerOptions &SOpts)
      : I(I), SOpts(SOpts) {}

  /// Explores every path reachable from \p Init on a pool of
  /// SOpts.Workers threads; returns finished paths in branch-trace order.
  std::vector<TraceResult<St>> explore(Config Init) {
    obs::Span ExploreSpan(obs::SpanKind::Explore, &I.stats().EngineNs);
    size_t N = SOpts.Workers ? SOpts.Workers : 1;
    LocalResults.assign(N, {});
    RngStates.assign(N, 0);
    for (size_t W = 0; W < N; ++W)
      RngStates[W] = mixSeed(SOpts.Seed, 0xC0FFEE + W) | 1;

    ThreadPool<PathTask> Pool(N, SOpts.StealBatch, SOpts.Strategy,
                              SOpts.Seed);
    Pool.inject(PathTask{std::move(Init), {}});
    Pool.run([this](PathTask T, typename ThreadPool<PathTask>::Worker &W) {
      runTask(std::move(T), W);
    });

    // Merge per-worker buffers and impose the schedule-independent order.
    std::vector<std::pair<PathId, TraceResult<St>>> All;
    size_t Total = 0;
    for (auto &L : LocalResults)
      Total += L.size();
    All.reserve(Total);
    for (auto &L : LocalResults)
      for (auto &E : L)
        All.push_back(std::move(E));
    std::sort(All.begin(), All.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });

    std::vector<TraceResult<St>> Out;
    Out.reserve(All.size());
    for (auto &E : All)
      Out.push_back(std::move(E.second));
    return Out;
  }

private:
  struct PathTask {
    Config C;
    PathId Id;
  };

  /// Which budget (if any) is exhausted — kept distinct so the Bound
  /// outcome can say what actually tripped.
  enum class BudgetKind : uint8_t { None, Steps, Paths };

  /// A finished path before it is paired with its id.
  struct Done {
    OutcomeKind K;
    typename St::ValueT V;
    St S;
  };

  /// Buffers step() outputs in production order; branch indices are
  /// assigned from the buffer positions afterwards.
  struct BufferSink {
    std::vector<std::variant<Config, Done>> Outs;
    void cont(Config C) { Outs.emplace_back(std::move(C)); }
    void done(OutcomeKind K, typename St::ValueT V, St S) {
      Outs.emplace_back(Done{K, std::move(V), std::move(S)});
    }
  };

  /// Sink used for budget cuts: emits directly into a worker's buffer
  /// under the cut task's id.
  struct BoundSink {
    ExplorationScheduler &Sched;
    size_t WIdx;
    PathId Id;
    void cont(Config) {}
    void done(OutcomeKind K, typename St::ValueT V, St S) {
      Sched.record(WIdx, std::move(Id),
                   TraceResult<St>{K, std::move(V), std::move(S)});
    }
  };

  void record(size_t WIdx, PathId Id, TraceResult<St> R) {
    LocalResults[WIdx].push_back({std::move(Id), std::move(R)});
    ResultCount.fetch_add(1, std::memory_order_relaxed);
  }

  BudgetKind overBudget() const {
    const EngineOptions &Opts = I.options();
    if (Opts.MaxSteps &&
        Steps.load(std::memory_order_relaxed) >= Opts.MaxSteps)
      return BudgetKind::Steps;
    if (Opts.MaxPaths &&
        ResultCount.load(std::memory_order_relaxed) >= Opts.MaxPaths)
      return BudgetKind::Paths;
    return BudgetKind::None;
  }

  /// The strategy score of \p T — higher runs earlier. Only the priority
  /// strategies look at it; the frontier ignores it otherwise.
  ///
  ///  * SubtreeSize: (remaining loop budget + 1) / (branch depth + 1),
  ///    fixed-point — a shallow fork with loop budget to burn heads a
  ///    larger unexplored subtree than a deep one near its bound.
  ///  * CoverageGuided: the same estimate, plus a dominating boost when
  ///    the next reachable IfGoto of the configuration still has an
  ///    uncovered outcome (fed live from obs::BranchCoverage, the PR 5
  ///    signal) — frontier entries that can extend coverage run before
  ///    everything that cannot.
  uint64_t priorityOf(const PathTask &T) const {
    switch (SOpts.Strategy) {
    case SelectionStrategy::OldestFirst:
    case SelectionStrategy::RandomPath:
      return 0;
    case SelectionStrategy::SubtreeSize:
      return subtreeEstimate(T);
    case SelectionStrategy::CoverageGuided: {
      // Depth as the base, not the subtree estimate: early on every
      // branch site is uncovered and the boost bit ties, so the
      // tie-break decides the shape of the search. Depth keeps it
      // DFS-like — completing whole paths (and therefore covering whole
      // outcome chains) as fast as oldest-first — while the boost bit
      // redirects the frontier to uncovered sites once coverage
      // accumulates.
      uint64_t Pri = uint64_t(T.Id.size());
      if (auto Site = I.nextBranchSite(T.C))
        if (obs::BranchCoverage::instance().hasUncoveredOutcome(
                Site->first, Site->second))
          Pri |= uint64_t(1) << 62; // dominates every depth
      return Pri;
    }
    }
    return 0;
  }

  uint64_t subtreeEstimate(const PathTask &T) const {
    uint32_t Bound = I.options().LoopBound;
    uint64_t RemLoop =
        T.C.Backjumps < Bound ? uint64_t(Bound - T.C.Backjumps) : 0;
    if (RemLoop > (uint64_t(1) << 20))
      RemLoop = uint64_t(1) << 20; // keep the estimate below the boost bit
    return ((RemLoop + 1) << 32) / (T.Id.size() + 1);
  }

  /// Deterministic per-worker generator (seeded from SchedulerOptions)
  /// used by RandomPath to choose which successor to keep stepping.
  uint64_t nextRandom(size_t WIdx, size_t Bound) {
    uint64_t X = RngStates[WIdx];
    X ^= X >> 12;
    X ^= X << 25;
    X ^= X >> 27;
    RngStates[WIdx] = X;
    return (X * 0x2545F4914F6CDD1Dull) % Bound;
  }

  /// Executes one task to completion: steps inline while there is a
  /// single successor (no queue churn on straight-line code), and at
  /// branch points keeps one successor — which one is the strategy's
  /// call: the *last* (matching the sequential worklist's
  /// pop-from-the-back) for OldestFirst, a seeded random pick for
  /// RandomPath, the best-scored one for the priority strategies — while
  /// spawning the others, tagged with their scores, for the frontier to
  /// order and thieves to take.
  void runTask(PathTask T, typename ThreadPool<PathTask>::Worker &W) {
    while (true) {
      BudgetKind Cut = overBudget();
      if (Cut != BudgetKind::None) {
        Interpreter<St>::journalEnd(T.C, OutcomeKind::Bound,
                                    Cut == BudgetKind::Steps
                                        ? obs::journal::BudgetKind::Steps
                                        : obs::journal::BudgetKind::Paths);
        BoundSink BS{*this, W.index(), std::move(T.Id)};
        I.finish(BS, OutcomeKind::Bound,
                 St::errorValue(Cut == BudgetKind::Steps
                                    ? "step budget exhausted"
                                    : "path budget exhausted"),
                 std::move(T.C.State));
        return;
      }
      Steps.fetch_add(1, std::memory_order_relaxed);

      BufferSink Sink;
      I.step(std::move(T.C), Sink);
      auto &Outs = Sink.Outs;
      if (Outs.empty())
        return; // e.g. a memory action with zero feasible branches

      // Fast path: exactly one live successor — same path, same id.
      if (Outs.size() == 1 &&
          std::holds_alternative<Config>(Outs.front())) {
        T.C = std::move(std::get<Config>(Outs.front()));
        continue;
      }

      bool Multi = Outs.size() >= 2;
      // Record finished paths and collect the live successors (with
      // their branch-trace ids assigned from production order — the id
      // scheme never depends on the strategy).
      std::vector<PathTask> Live;
      uint32_t K = 0;
      for (auto &O : Outs) {
        PathId Id = T.Id;
        if (Multi)
          Id.push_back(K);
        ++K;
        if (std::holds_alternative<Done>(O)) {
          Done &D = std::get<Done>(O);
          record(W.index(), std::move(Id),
                 TraceResult<St>{D.K, std::move(D.V), std::move(D.S)});
        } else {
          Live.push_back(
              PathTask{std::move(std::get<Config>(O)), std::move(Id)});
        }
      }
      if (Live.empty())
        return; // every output finished

      // The strategy keeps one successor hot; the rest go to the
      // frontier, scored.
      size_t Keep = Live.size() - 1; // OldestFirst: depth-first worklist
      switch (SOpts.Strategy) {
      case SelectionStrategy::OldestFirst:
        break;
      case SelectionStrategy::RandomPath:
        Keep = Live.size() > 1 ? nextRandom(W.index(), Live.size())
                               : Live.size() - 1;
        break;
      case SelectionStrategy::SubtreeSize:
      case SelectionStrategy::CoverageGuided: {
        uint64_t Best = 0;
        for (size_t J = 0; J < Live.size(); ++J) {
          uint64_t Pri = priorityOf(Live[J]);
          // >= : ties keep the *last* successor, the jump side — into
          // the loop, like OldestFirst — so equal scores degrade to
          // depth-first completion instead of draining short exits.
          if (J == 0 || Pri >= Best) {
            Best = Pri;
            Keep = J;
          }
        }
        break;
      }
      }
      for (size_t J = 0; J < Live.size(); ++J) {
        if (J == Keep)
          continue;
        uint64_t Pri = priorityOf(Live[J]);
        if (obs::journal::enabled())
          obs::journal::emitSpawn(Live[J].C.JPath, Live[J].C.JSteps,
                                  Live[J].C.CurProc.id(),
                                  static_cast<uint32_t>(Live[J].C.I), Pri);
        W.spawn(std::move(Live[J]), Pri);
      }
      T = std::move(Live[Keep]);
    }
  }

  Interpreter<St> &I;
  SchedulerOptions SOpts;
  std::atomic<uint64_t> Steps{0};
  std::atomic<uint64_t> ResultCount{0};
  /// One result buffer per worker; merged after quiescence. Indexed by
  /// worker id, so no locking.
  std::vector<std::vector<std::pair<PathId, TraceResult<St>>>> LocalResults;
  /// One RandomPath generator state per worker (exclusive access by that
  /// worker; seeded deterministically from SOpts.Seed).
  std::vector<uint64_t> RngStates;
};

/// Entry point used by the test runner and benches: dispatches between
/// the classic sequential worklist (bit-identical results, including
/// order) and the strategy-aware scheduler, per \p I's SchedulerOptions
/// (a non-default SelectionStrategy engages the scheduler even at one
/// worker).
template <StateModel St>
Result<std::vector<TraceResult<St>>>
runExploration(Interpreter<St> &I, InternedString Entry,
               typename St::ValueT Arg, St Init) {
  const SchedulerOptions &S = I.options().Scheduler;
  if (!S.parallel())
    return I.run(Entry, std::move(Arg), std::move(Init));
  Result<typename Interpreter<St>::Config> Start =
      I.makeInitialConfig(Entry, std::move(Arg), std::move(Init));
  if (!Start)
    return Err(Start.error());
  ExplorationScheduler<St> Sched(I, S);
  return Sched.explore(Start.take());
}

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H
