//===- engine/scheduler/exploration_scheduler.h - Parallel DFS -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExplorationScheduler: drives Interpreter<St>::step from a work-stealing
/// thread pool. Configurations after a branch point are path-disjoint —
/// their states share only immutable copy-on-write structure and the
/// thread-safe solver — so each can execute on any worker with no
/// coordination.
///
/// Determinism. Results are merged in *branch-trace* order, not completion
/// order. Every task carries a PathId: the sequence of branch indices
/// taken at each multi-successor step since the root. A step with one
/// output keeps its task's id (ids grow with the number of branch points,
/// not the number of commands); a step with k >= 2 outputs — counting both
/// finished paths and live successors, in the production order of the
/// semantics — extends the id with 0..k-1. Because a task's id is either
/// terminated (the task finished) or extended (it branched), never both,
/// no result id is a proper prefix of another, and lexicographic order on
/// ids is a strict total order over results that depends only on the
/// program and the state model — not on thread scheduling. Running the
/// same exploration at any worker count yields the same result sequence.
///
/// Budgets. MaxSteps/MaxPaths are enforced from relaxed atomic counters:
/// a task that observes an exhausted budget finishes Bound. The *set* of
/// outcomes therefore remains schedule-independent only for programs that
/// stay within budget (which side of the cut a given path lands on is a
/// race by construction); explorations that hit a budget should use
/// Workers = 1 when exact cut placement matters.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H
#define GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H

#include "engine/interpreter.h"
#include "engine/scheduler/scheduler_options.h"
#include "engine/scheduler/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

namespace gillian {

template <StateModel St> class ExplorationScheduler {
public:
  using Config = typename Interpreter<St>::Config;
  /// Branch-trace id: the index taken at each multi-successor step since
  /// the root. Lexicographic order on ids is the deterministic result
  /// order (see file comment).
  using PathId = std::vector<uint32_t>;

  ExplorationScheduler(Interpreter<St> &I, const SchedulerOptions &SOpts)
      : I(I), SOpts(SOpts) {}

  /// Explores every path reachable from \p Init on a pool of
  /// SOpts.Workers threads; returns finished paths in branch-trace order.
  std::vector<TraceResult<St>> explore(Config Init) {
    obs::Span ExploreSpan(obs::SpanKind::Explore, &I.stats().EngineNs);
    size_t N = SOpts.Workers ? SOpts.Workers : 1;
    LocalResults.assign(N, {});

    ThreadPool<PathTask> Pool(N, SOpts.StealBatch);
    Pool.inject(PathTask{std::move(Init), {}});
    Pool.run([this](PathTask T, typename ThreadPool<PathTask>::Worker &W) {
      runTask(std::move(T), W);
    });

    // Merge per-worker buffers and impose the schedule-independent order.
    std::vector<std::pair<PathId, TraceResult<St>>> All;
    size_t Total = 0;
    for (auto &L : LocalResults)
      Total += L.size();
    All.reserve(Total);
    for (auto &L : LocalResults)
      for (auto &E : L)
        All.push_back(std::move(E));
    std::sort(All.begin(), All.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });

    std::vector<TraceResult<St>> Out;
    Out.reserve(All.size());
    for (auto &E : All)
      Out.push_back(std::move(E.second));
    return Out;
  }

private:
  struct PathTask {
    Config C;
    PathId Id;
  };

  /// A finished path before it is paired with its id.
  struct Done {
    OutcomeKind K;
    typename St::ValueT V;
    St S;
  };

  /// Buffers step() outputs in production order; branch indices are
  /// assigned from the buffer positions afterwards.
  struct BufferSink {
    std::vector<std::variant<Config, Done>> Outs;
    void cont(Config C) { Outs.emplace_back(std::move(C)); }
    void done(OutcomeKind K, typename St::ValueT V, St S) {
      Outs.emplace_back(Done{K, std::move(V), std::move(S)});
    }
  };

  /// Sink used for budget cuts: emits directly into a worker's buffer
  /// under the cut task's id.
  struct BoundSink {
    ExplorationScheduler &Sched;
    size_t WIdx;
    PathId Id;
    void cont(Config) {}
    void done(OutcomeKind K, typename St::ValueT V, St S) {
      Sched.record(WIdx, std::move(Id),
                   TraceResult<St>{K, std::move(V), std::move(S)});
    }
  };

  void record(size_t WIdx, PathId Id, TraceResult<St> R) {
    LocalResults[WIdx].push_back({std::move(Id), std::move(R)});
    ResultCount.fetch_add(1, std::memory_order_relaxed);
  }

  bool overBudget() const {
    const EngineOptions &Opts = I.options();
    return (Opts.MaxSteps &&
            Steps.load(std::memory_order_relaxed) >= Opts.MaxSteps) ||
           (Opts.MaxPaths &&
            ResultCount.load(std::memory_order_relaxed) >= Opts.MaxPaths);
  }

  /// Executes one task to completion: steps inline while there is a
  /// single successor (no queue churn on straight-line code), and at
  /// branch points continues depth-first with the *last* successor —
  /// matching the sequential worklist's pop-from-the-back — while
  /// spawning the others for thieves to pick up.
  void runTask(PathTask T, typename ThreadPool<PathTask>::Worker &W) {
    while (true) {
      if (overBudget()) {
        BoundSink BS{*this, W.index(), std::move(T.Id)};
        I.finish(BS, OutcomeKind::Bound,
                 St::errorValue("step budget exhausted"),
                 std::move(T.C.State));
        return;
      }
      Steps.fetch_add(1, std::memory_order_relaxed);

      BufferSink Sink;
      I.step(std::move(T.C), Sink);
      auto &Outs = Sink.Outs;
      if (Outs.empty())
        return; // e.g. a memory action with zero feasible branches

      // Fast path: exactly one live successor — same path, same id.
      if (Outs.size() == 1 &&
          std::holds_alternative<Config>(Outs.front())) {
        T.C = std::move(std::get<Config>(Outs.front()));
        continue;
      }

      bool Multi = Outs.size() >= 2;
      std::optional<PathTask> Continue;
      uint32_t K = 0;
      for (auto &O : Outs) {
        PathId Id = T.Id;
        if (Multi)
          Id.push_back(K);
        ++K;
        if (std::holds_alternative<Done>(O)) {
          Done &D = std::get<Done>(O);
          record(W.index(), std::move(Id),
                 TraceResult<St>{D.K, std::move(D.V), std::move(D.S)});
        } else {
          if (Continue)
            W.spawn(std::move(*Continue));
          Continue =
              PathTask{std::move(std::get<Config>(O)), std::move(Id)};
        }
      }
      if (!Continue)
        return; // every output finished
      T = std::move(*Continue);
    }
  }

  Interpreter<St> &I;
  SchedulerOptions SOpts;
  std::atomic<uint64_t> Steps{0};
  std::atomic<uint64_t> ResultCount{0};
  /// One result buffer per worker; merged after quiescence. Indexed by
  /// worker id, so no locking.
  std::vector<std::vector<std::pair<PathId, TraceResult<St>>>> LocalResults;
};

/// Entry point used by the test runner and benches: dispatches between
/// the classic sequential worklist (bit-identical results, including
/// order) and the parallel scheduler, per \p I's SchedulerOptions.
template <StateModel St>
Result<std::vector<TraceResult<St>>>
runExploration(Interpreter<St> &I, InternedString Entry,
               typename St::ValueT Arg, St Init) {
  const SchedulerOptions &S = I.options().Scheduler;
  if (!S.parallel())
    return I.run(Entry, std::move(Arg), std::move(Init));
  Result<typename Interpreter<St>::Config> Start =
      I.makeInitialConfig(Entry, std::move(Arg), std::move(Init));
  if (!Start)
    return Err(Start.error());
  ExplorationScheduler<St> Sched(I, S);
  return Sched.explore(Start.take());
}

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_EXPLORATION_SCHEDULER_H
