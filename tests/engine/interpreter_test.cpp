//===- tests/engine/interpreter_test.cpp ----------------------------------===//
//
// Golden tests for the Fig. 1 transition rules, exercised through both the
// concrete and the symbolic instantiation of the single interpreter
// template (over the null memory model).
//
//===----------------------------------------------------------------------===//

#include "engine/interpreter.h"

#include "engine/null_memory.h"
#include "engine/test_runner.h"
#include "gil/parser.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

Prog parseProg(std::string_view Src) {
  Result<Prog> P = parseGilProg(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  return P.ok() ? P.take() : Prog();
}

/// Runs concretely (null memory) and returns the single trace.
TraceResult<ConcreteState<NullCMem>> runC(const Prog &P,
                                          std::string_view Entry = "main",
                                          Value Arg = Value::listV({})) {
  EngineOptions Opts;
  ExecStats Stats;
  auto R = runConcrete<NullCMem>(P, Entry, Opts, Stats,
                                 ConcreteState<NullCMem>(), std::move(Arg));
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.take();
}

/// Runs symbolically (null memory) and returns all traces.
std::vector<TraceResult<SymbolicState<NullSMem>>>
runS(const Prog &P, const EngineOptions &Opts, Solver &Slv,
     std::string_view Entry = "main") {
  using St = SymbolicState<NullSMem>;
  ExecStats Stats;
  Interpreter<St> I(P, Opts, Stats);
  auto R = I.run(InternedString::get(Entry), Expr::list({}),
                 St(NullSMem(), &Slv, &Opts));
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : std::vector<TraceResult<St>>();
}

} // namespace

TEST(Interpreter, AssignmentAndTopReturn) {
  Prog P = parseProg("proc main(a) { x := 40; y := x + 2; return y; }");
  auto T = runC(P);
  EXPECT_EQ(T.Kind, OutcomeKind::Return);
  EXPECT_EQ(T.Val.asInt(), 42);
}

TEST(Interpreter, IfGotoTakesCorrectBranch) {
  Prog P = parseProg(R"(
    proc main(a) {
      0: x := 7;
      1: ifgoto (x < 10) 3;
      2: return "big";
      3: return "small";
    })");
  EXPECT_EQ(runC(P).Val.asStr().str(), "small");
}

TEST(Interpreter, ConcreteNonBoolConditionIsError) {
  Prog P = parseProg("proc main(a) { ifgoto 3 0; return 0; }");
  auto T = runC(P);
  EXPECT_EQ(T.Kind, OutcomeKind::Error);
}

TEST(Interpreter, CallReturnRestoresCallerStore) {
  Prog P = parseProg(R"(
    proc main(a) {
      x := 10;
      r := "inc"([x]);
      return r + x;   // x must still be 10 after the call
    }
    proc inc(args) {
      x := l_nth(args, 0);
      return x + 1;
    })");
  auto T = runC(P);
  ASSERT_EQ(T.Kind, OutcomeKind::Return);
  EXPECT_EQ(T.Val.asInt(), 21);
}

TEST(Interpreter, DynamicCalleeViaProcValue) {
  Prog P = parseProg(R"(
    proc main(a) { f := &g; r := f(0); return r; }
    proc g(x) { return 99; })");
  EXPECT_EQ(runC(P).Val.asInt(), 99);
}

TEST(Interpreter, CallToUnknownProcedureIsError) {
  Prog P = parseProg("proc main(a) { r := \"nope\"(0); return r; }");
  EXPECT_EQ(runC(P).Kind, OutcomeKind::Error);
}

TEST(Interpreter, FailProducesErrorOutcomeWithValue) {
  Prog P = parseProg("proc main(a) { fail [\"err\", 42]; }");
  auto T = runC(P);
  ASSERT_EQ(T.Kind, OutcomeKind::Error);
  ASSERT_TRUE(T.Val.isList());
  EXPECT_EQ(T.Val.asList()[1].asInt(), 42);
}

TEST(Interpreter, VanishProducesNoResult) {
  Prog P = parseProg("proc main(a) { vanish; }");
  EngineOptions Opts;
  ExecStats Stats;
  Interpreter<ConcreteState<NullCMem>> I(P, Opts, Stats);
  auto R = I.run(InternedString::get("main"), Value::listV({}),
                 ConcreteState<NullCMem>());
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R->size(), 1u);
  EXPECT_EQ((*R)[0].Kind, OutcomeKind::Vanish);
  EXPECT_EQ(Stats.PathsVanished, 1u);
}

TEST(Interpreter, RecursionWithStack) {
  Prog P = parseProg(R"(
    proc main(a) { r := "fact"([5]); return r; }
    proc fact(args) {
      n := l_nth(args, 0);
      ifgoto (n <= 1) 4;
      r := "fact"([n - 1]);
      return n * r;
      return 1;
    })");
  EXPECT_EQ(runC(P).Val.asInt(), 120);
}

TEST(Interpreter, FallingOffEndIsError) {
  Prog P = parseProg("proc main(a) { x := 1; }");
  EXPECT_EQ(runC(P).Kind, OutcomeKind::Error);
}

TEST(Interpreter, NullMemoryRejectsActions) {
  Prog P = parseProg("proc main(a) { x := @boom(0); return x; }");
  auto T = runC(P);
  EXPECT_EQ(T.Kind, OutcomeKind::Error);
}

TEST(Interpreter, USymISymConcreteAllocation) {
  Prog P = parseProg(
      "proc main(a) { u := usym(0); v := usym(0); i := isym(1); "
      "return [u, v, i]; }");
  auto T = runC(P);
  ASSERT_EQ(T.Kind, OutcomeKind::Return);
  const auto &L = T.Val.asList();
  EXPECT_TRUE(L[0].isSym());
  EXPECT_NE(L[0], L[1]) << "uSym must be fresh per allocation";
  EXPECT_EQ(L[2], Value::intV(0)) << "unscripted concrete iSym default";
}

// --- Symbolic-side behaviour ---------------------------------------------

TEST(Interpreter, SymbolicBranchingExploresBothSides) {
  Prog P = parseProg(R"(
    proc main(a) {
      0: x := isym(0);
      1: ifgoto (typeof(x) == ^Int) 3;
      2: vanish;
      3: ifgoto (x < 5) 5;
      4: return "big";
      5: return "small";
    })");
  EngineOptions Opts;
  Solver Slv;
  auto Traces = runS(P, Opts, Slv);
  int Returns = 0, Vanished = 0;
  for (auto &T : Traces) {
    if (T.Kind == OutcomeKind::Return)
      ++Returns;
    if (T.Kind == OutcomeKind::Vanish)
      ++Vanished;
  }
  EXPECT_EQ(Returns, 2) << "both sides of x < 5 are satisfiable";
  EXPECT_EQ(Vanished, 1);
}

TEST(Interpreter, SymbolicInfeasibleBranchIsPruned) {
  Prog P = parseProg(R"(
    proc main(a) {
      0: x := isym(0);
      1: ifgoto (typeof(x) == ^Int) 3;
      2: vanish;
      3: ifgoto (x < 5) 5;
      4: return "ge5";
      5: ifgoto (10 < x) 7;
      6: return "le5";
      7: fail "unreachable: x < 5 && x > 10";
    })");
  EngineOptions Opts;
  Solver Slv;
  auto Traces = runS(P, Opts, Slv);
  for (auto &T : Traces)
    EXPECT_NE(T.Kind, OutcomeKind::Error)
        << "contradictory branch must be pruned";
}

TEST(Interpreter, LoopBoundCutsSymbolicLoops) {
  Prog P = parseProg(R"(
    proc main(a) {
      0: x := isym(0);
      1: ifgoto (typeof(x) == ^Int) 3;
      2: vanish;
      3: ifgoto (x <= 0) 6;
      4: x := x - 1;
      5: goto 3;
      6: return x;
    })");
  EngineOptions Opts;
  Opts.LoopBound = 5;
  Solver Slv;
  auto Traces = runS(P, Opts, Slv);
  uint64_t Bounded = 0, Returned = 0;
  for (auto &T : Traces) {
    if (T.Kind == OutcomeKind::Bound)
      ++Bounded;
    if (T.Kind == OutcomeKind::Return)
      ++Returned;
  }
  EXPECT_GE(Returned, 1u);
  EXPECT_GE(Bounded, 1u) << "unbounded symbolic loop must hit the bound";
}

TEST(Interpreter, PerFrameLoopBudget) {
  // Two sequential bounded loops inside a callee must not exhaust the
  // caller's budget: the frame save/restore keeps budgets per invocation.
  Prog P = parseProg(R"(
    proc main(a) {
      r := "spin"([3]);
      s := "spin"([3]);
      return r + s;
    }
    proc spin(args) {
      n := l_nth(args, 0);
      ifgoto (n <= 0) 4;
      n := n - 1;
      goto 1;
      return 0;
    })");
  EngineOptions Opts;
  Opts.LoopBound = 4; // enough for one spin(3), reused per call
  Solver Slv;
  auto Traces = runS(P, Opts, Slv);
  ASSERT_EQ(Traces.size(), 1u);
  EXPECT_EQ(Traces[0].Kind, OutcomeKind::Return);
}

TEST(Interpreter, StatsCountCommands) {
  Prog P = parseProg("proc main(a) { x := 1; y := 2; return x + y; }");
  EngineOptions Opts;
  ExecStats Stats;
  Interpreter<ConcreteState<NullCMem>> I(P, Opts, Stats);
  auto R = I.run(InternedString::get("main"), Value::listV({}),
                 ConcreteState<NullCMem>());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Stats.CmdsExecuted, 3u);
  EXPECT_EQ(Stats.PathsFinished, 1u);
}

TEST(Interpreter, UnknownEntryIsEngineError) {
  Prog P = parseProg("proc main(a) { return 0; }");
  EngineOptions Opts;
  ExecStats Stats;
  Interpreter<ConcreteState<NullCMem>> I(P, Opts, Stats);
  auto R = I.run(InternedString::get("nope"), Value::listV({}),
                 ConcreteState<NullCMem>());
  EXPECT_FALSE(R.ok());
}
