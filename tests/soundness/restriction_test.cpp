//===- tests/soundness/restriction_test.cpp -------------------------------===//
//
// Executable §3.1: the restriction axioms (Def 3.1) and compatibility
// properties (Def 3.4) on symbolic states, plus monotonicity of action
// execution w.r.t. restriction (Def 3.2).
//
//===----------------------------------------------------------------------===//

#include "engine/state.h"

#include "engine/null_memory.h"
#include "gil/parser.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

EngineOptions Opts;
Solver *solver() {
  static Solver S;
  return &S;
}

using St = SymbolicState<WhileSMem>;

St stateWithPC(std::initializer_list<const char *> Conjuncts) {
  St S(WhileSMem(), solver(), &Opts);
  for (const char *C : Conjuncts) {
    Result<Expr> E = parseGilExpr(C);
    EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
    S.addToPathCondition(*E);
  }
  return S;
}

bool pcEqual(const St &A, const St &B) {
  return A.refines(B) && B.refines(A);
}

} // namespace

TEST(Restriction, Idempotence) {
  // x |x = x (Def 3.1).
  St X = stateWithPC({"typeof(#a) == ^Int", "0 <= #a"});
  St XX = X;
  XX.restrictWith(X);
  EXPECT_TRUE(pcEqual(XX, X));
}

TEST(Restriction, RightCommutativity) {
  // (x |y) |z = (x |z) |y.
  St X = stateWithPC({"typeof(#a) == ^Int"});
  St Y = stateWithPC({"0 <= #a"});
  St Z = stateWithPC({"#a <= 10"});
  St A = X, B = X;
  A.restrictWith(Y);
  A.restrictWith(Z);
  B.restrictWith(Z);
  B.restrictWith(Y);
  EXPECT_TRUE(pcEqual(A, B));
}

TEST(Restriction, Weakening) {
  // x |y |z = x  =>  x |y = x and x |z = x.
  St Y = stateWithPC({"0 <= #a"});
  St Z = stateWithPC({"#a <= 10"});
  St X = stateWithPC({"0 <= #a", "#a <= 10", "typeof(#a) == ^Int"});
  St XYZ = X;
  XYZ.restrictWith(Y);
  XYZ.restrictWith(Z);
  ASSERT_TRUE(pcEqual(XYZ, X)) << "precondition of the axiom";
  St XY = X;
  XY.restrictWith(Y);
  EXPECT_TRUE(pcEqual(XY, X));
  St XZ = X;
  XZ.restrictWith(Z);
  EXPECT_TRUE(pcEqual(XZ, X));
}

TEST(Restriction, InducedPreorder) {
  // x2 ⊑ x1 iff x2 |x1 = x2: stronger states refine weaker ones.
  St Weak = stateWithPC({"typeof(#a) == ^Int"});
  St Strong = stateWithPC({"typeof(#a) == ^Int", "5 <= #a"});
  EXPECT_TRUE(Strong.refines(Weak));
  EXPECT_FALSE(Weak.refines(Strong));
  St SW = Strong;
  SW.restrictWith(Weak);
  EXPECT_TRUE(pcEqual(SW, Strong)) << "restricting by weaker adds nothing";
}

TEST(Restriction, CompatRestrictionIncreasesPrecision) {
  // ⇃-≤ compat (Def 3.4): x1 ⇃x2 describes no more models than x1. We
  // check the model-theoretic statement directly: every verified model of
  // the restricted PC satisfies the original PC.
  St X1 = stateWithPC({"typeof(#a) == ^Int", "0 <= #a"});
  St X2 = stateWithPC({"#a <= 3"});
  St R = X1;
  R.restrictWith(X2);
  std::optional<Model> M = solver()->verifiedModel(R.pathCondition());
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->satisfies(X1.pathCondition()));
  EXPECT_TRUE(M->satisfies(X2.pathCondition()));
}

TEST(Restriction, MonotoneUnderAssume) {
  // Def 3.2: action execution only refines states (σ' ⊑ σ). assume is the
  // A_proper action that grows the PC.
  St S = stateWithPC({"typeof(#a) == ^Int"});
  Result<std::optional<St>> Next =
      S.assumeValue(parseGilExpr("3 <= #a").take());
  ASSERT_TRUE(Next.ok());
  ASSERT_TRUE(Next->has_value());
  EXPECT_TRUE((*Next)->refines(S));
  EXPECT_FALSE(S.refines(**Next));
}

TEST(Restriction, MonotoneUnderMemoryActions) {
  // A branching lookup strengthens each branch with its condition.
  St S = stateWithPC({"typeof(#l) == ^Sym"});
  WhileSMem &M = S.memory();
  M.setProp(Expr::lit(Value::symV("$a")), InternedString::get("p"),
            Expr::intE(1));
  M.setProp(Expr::lit(Value::symV("$b")), InternedString::get("p"),
            Expr::intE(2));
  auto Branches = S.execAction(
      actLookup(), Expr::list({Expr::lvar("#l"), Expr::strE("p")}));
  ASSERT_TRUE(Branches.ok());
  ASSERT_GE(Branches->size(), 2u);
  for (auto &B : *Branches)
    EXPECT_TRUE(B.State.refines(S))
        << "every action branch must refine its source state";
}

TEST(Restriction, AllocatorKnowledgeAccumulates) {
  // Restriction carries allocation knowledge (Def 3.3): restricting an
  // early state by a later one transfers the later allocation counters.
  St Early = stateWithPC({});
  St Late = Early;
  (void)Late.allocUSym(7);
  (void)Late.allocISym(7);
  ASSERT_TRUE(Late.refines(Early));
  St Restricted = Early;
  Restricted.restrictWith(Late);
  EXPECT_TRUE(Restricted.allocator().record().refines(
      Late.allocator().record()));
}

TEST(Restriction, StrengtheningProperty) {
  // Strengthening (Def 3.4): restricting both sides of a refinement by
  // respectively stronger conditions preserves the refinement.
  St X1 = stateWithPC({"typeof(#a) == ^Int"});
  St X2 = stateWithPC({"typeof(#a) == ^Int", "0 <= #a"}); // X2 ≤ X1
  St Y1 = stateWithPC({"#a <= 10"});
  St Y2 = stateWithPC({"#a <= 10", "#a <= 5"}); // Y2 ⊑ Y1
  St L = X2;
  L.restrictWith(Y2);
  St R = X1;
  R.restrictWith(Y1);
  EXPECT_TRUE(L.refines(R));
}
