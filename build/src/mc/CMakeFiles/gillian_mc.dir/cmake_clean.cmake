file(REMOVE_RECURSE
  "CMakeFiles/gillian_mc.dir/compiler.cpp.o"
  "CMakeFiles/gillian_mc.dir/compiler.cpp.o.d"
  "CMakeFiles/gillian_mc.dir/memory.cpp.o"
  "CMakeFiles/gillian_mc.dir/memory.cpp.o.d"
  "CMakeFiles/gillian_mc.dir/parser.cpp.o"
  "CMakeFiles/gillian_mc.dir/parser.cpp.o.d"
  "CMakeFiles/gillian_mc.dir/types.cpp.o"
  "CMakeFiles/gillian_mc.dir/types.cpp.o.d"
  "libgillian_mc.a"
  "libgillian_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
