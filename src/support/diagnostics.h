//===- support/diagnostics.h - Parser diagnostics --------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers for formatting front-end diagnostics with source
/// positions, shared by all parsers.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_DIAGNOSTICS_H
#define GILLIAN_SUPPORT_DIAGNOSTICS_H

#include "support/lexer.h"

#include <string>

namespace gillian {

/// Formats "line L:C: Message" in the style shared by all front ends.
std::string diagAt(int Line, int Col, const std::string &Message);

/// Formats a diagnostic anchored at \p Tok, describing it when useful.
std::string diagAtToken(const Token &Tok, const std::string &Message);

} // namespace gillian

#endif // GILLIAN_SUPPORT_DIAGNOSTICS_H
