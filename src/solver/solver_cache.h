//===- solver/solver_cache.h - Sharded concurrent result cache -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical-form solver result cache, factored out of the Solver so
/// it can be (a) shared process-wide across suite runs — Table 1/2 re-runs
/// and A/B configurations start warm instead of re-deriving every verdict
/// — and (b) shared *concurrently* by the workers of the parallel
/// exploration scheduler.
///
/// Concurrency is by N-way striping: the commutative path-condition hash
/// (order-insensitive by construction, see path_condition.h) selects a
/// shard, and each shard guards its own unordered_map with its own mutex.
/// Workers exploring path-disjoint states rarely produce the *same*
/// canonical query at the same instant, so contention concentrates on
/// distinct shards and the stripes behave like a lock-free map in
/// practice. Two workers racing on one fresh query may both miss and both
/// solve — duplicated work, never a wrong answer, because only decided
/// (schedule-independent) verdicts are ever inserted.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_SOLVER_CACHE_H
#define GILLIAN_SOLVER_SOLVER_CACHE_H

#include "solver/path_condition.h"
#include "solver/syntactic.h"

#include <array>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace gillian {

/// A sharded, mutex-striped map from canonical path conditions to decided
/// Sat/Unsat verdicts. Unknown must never be inserted (it is retriable);
/// insert() enforces this. All operations are thread-safe.
class SolverCache {
public:
  SolverCache() = default;
  SolverCache(const SolverCache &) = delete;
  SolverCache &operator=(const SolverCache &) = delete;

  /// The cached verdict for \p PC, if any.
  std::optional<SatResult> lookup(const PathCondition &PC) const;

  /// Records a *decided* verdict. Unknown is ignored (never cached: a
  /// later identical query may be decided once Z3 or a verified syntactic
  /// model succeeds). Racing inserts of the same key are benign: both
  /// racers derived the verdict from the same canonical query.
  void insert(const PathCondition &PC, SatResult R);

  /// Drops every entry (all shards). For tests needing isolation and for
  /// A/B benchmarks that must not start warm.
  void clear();

  /// Total entries across shards (approximate under concurrent writes).
  size_t size() const;

  /// Applies \p F to every (condition, verdict) entry, one shard at a
  /// time under that shard's lock. Used by the persistence layer
  /// (Solver::saveCache); \p F must not call back into this cache.
  template <typename Fn> void forEachEntry(Fn F) const {
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (const auto &[PC, R] : S.Map)
        F(PC, R);
    }
  }

  /// The process-wide shared instance used by the suite runners, so
  /// repeated runSuite calls start warm (ROADMAP "cache sharing across
  /// suite runs").
  static SolverCache &process();

private:
  static constexpr size_t NumShards = 16;

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<PathCondition, SatResult> Map;
  };

  Shard &shardFor(const PathCondition &PC) const {
    // The PC hash commutes over conjuncts; multiply-shift spreads its low
    // entropy across the shard index bits.
    return Shards[(PC.hash() * 0x9E3779B97F4A7C15ull) >> 60];
  }

  mutable std::array<Shard, NumShards> Shards;
};

} // namespace gillian

#endif // GILLIAN_SOLVER_SOLVER_CACHE_H
