file(REMOVE_RECURSE
  "libgillian_mc.a"
)
