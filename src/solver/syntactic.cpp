//===- solver/syntactic.cpp -----------------------------------------------===//

#include "solver/syntactic.h"

#include <limits>
#include <map>
#include <set>
#include <unordered_map>

using namespace gillian;

std::string_view gillian::satResultName(SatResult R) {
  switch (R) {
  case SatResult::Sat: return "sat";
  case SatResult::Unsat: return "unsat";
  case SatResult::Unknown: return "unknown";
  }
  return "<bad-sat-result>";
}

namespace {

constexpr int64_t IntMin = std::numeric_limits<int64_t>::min();
constexpr int64_t IntMax = std::numeric_limits<int64_t>::max();

/// Equality classes over expressions (treated as opaque terms except for
/// literals), plus per-class integer intervals and literal bindings.
class Egraph {
public:
  /// Returns the node id for \p E, creating it on first sight.
  int node(const Expr &E) {
    auto It = Ids.find(E);
    if (It != Ids.end())
      return It->second;
    int Id = static_cast<int>(Parent.size());
    Ids.emplace(E, Id);
    Parent.push_back(Id);
    Lit.emplace_back();
    Lo.push_back(IntMin);
    Hi.push_back(IntMax);
    Terms.push_back(E);
    if (E.isLit())
      Lit.back() = E.litValue();
    return Id;
  }

  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Merges two classes; returns false on literal conflict or interval
  /// emptiness.
  bool merge(int A, int B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return true;
    Parent[B] = A;
    if (Lit[A] && Lit[B] && !(*Lit[A] == *Lit[B]))
      return false;
    if (!Lit[A])
      Lit[A] = Lit[B];
    Lo[A] = std::max(Lo[A], Lo[B]);
    Hi[A] = std::min(Hi[A], Hi[B]);
    return checkClass(A);
  }

  /// Tightens the interval of \p X's class; returns false if it empties or
  /// contradicts the class literal.
  bool bound(int X, int64_t NewLo, int64_t NewHi) {
    int R = find(X);
    Lo[R] = std::max(Lo[R], NewLo);
    Hi[R] = std::min(Hi[R], NewHi);
    return checkClass(R);
  }

  const std::optional<Value> &litOf(int X) { return Lit[find(X)]; }
  int64_t loOf(int X) { return Lo[find(X)]; }
  int64_t hiOf(int X) { return Hi[find(X)]; }

  const std::unordered_map<Expr, int> &ids() const { return Ids; }

private:
  bool checkClass(int R) {
    if (Lo[R] > Hi[R])
      return false;
    if (Lit[R] && Lit[R]->isInt() &&
        (Lit[R]->asInt() < Lo[R] || Lit[R]->asInt() > Hi[R]))
      return false;
    return true;
  }

  std::unordered_map<Expr, int> Ids;
  std::vector<int> Parent;
  std::vector<std::optional<Value>> Lit;
  std::vector<int64_t> Lo, Hi;
  std::vector<Expr> Terms;
};

/// Shared analysis driving both checkSatSyntactic and
/// proposeModelSyntactic.
struct Analysis {
  Egraph G;
  TypeEnv Types;
  std::vector<std::pair<int, int>> Diseqs;
  /// a <= b (or a < b when Strict) order facts between arbitrary terms,
  /// feeding the order-cycle check (x <= y && y < x is unsatisfiable for
  /// every GIL comparison domain).
  struct OrderEdge {
    int A, B;
    bool Strict;
    bool AntisymSafe; ///< a <= b <= a => a == b holds for this edge
  };
  std::vector<OrderEdge> Order;
  /// Suggestion-only edges from negated Num comparisons: !(a <= b) hints
  /// b < a for model proposal, but is NOT a sound deduction (NaN makes
  /// both comparisons false), so these never feed the cycle check.
  std::vector<OrderEdge> SuggestOrder;
  bool Contradiction = false;

  /// Decomposes e + c (Int) so interval facts about the base propagate.
  static bool splitOffset(const Expr &E, Expr &Base, int64_t &Off) {
    if (E.kind() == ExprKind::BinOp && E.binOpKind() == BinOpKind::Add &&
        E.child(1).isLit() && E.child(1).litValue().isInt()) {
      Base = E.child(0);
      Off = E.child(1).litValue().asInt();
      return true;
    }
    Base = E;
    Off = 0;
    return false;
  }

  void assumeTrue(const Expr &E) {
    if (Contradiction || !E)
      return;
    if (E.isTrue())
      return;
    if (E.isFalse()) {
      Contradiction = true;
      return;
    }
    if (E.kind() == ExprKind::BinOp) {
      BinOpKind Op = E.binOpKind();
      const Expr &A = E.child(0), &B = E.child(1);
      switch (Op) {
      case BinOpKind::And:
        assumeTrue(A);
        assumeTrue(B);
        return;
      case BinOpKind::Eq: {
        // Decompose (base + c) == d into interval facts too.
        Expr BaseA, BaseB;
        int64_t OffA, OffB;
        bool ShiftA = splitOffset(A, BaseA, OffA);
        (void)ShiftA;
        bool ShiftB = splitOffset(B, BaseB, OffB);
        (void)ShiftB;
        if (OffA == 0 && OffB == 0) {
          if (!G.merge(G.node(A), G.node(B)))
            Contradiction = true;
          return;
        }
        // base_a + off_a == lit  ->  base_a == lit - off_a
        if (B.isLit() && B.litValue().isInt()) {
          Expr Rhs = Expr::intE(B.litValue().asInt() - OffA);
          if (!G.merge(G.node(BaseA), G.node(Rhs)))
            Contradiction = true;
          return;
        }
        if (!G.merge(G.node(A), G.node(B)))
          Contradiction = true;
        return;
      }
      case BinOpKind::Lt:
      case BinOpKind::Le: {
        int64_t Slack = Op == BinOpKind::Lt ? 1 : 0;
        Expr BaseA, BaseB;
        int64_t OffA, OffB;
        splitOffset(A, BaseA, OffA);
        splitOffset(B, BaseB, OffB);
        // Integer interval reasoning is only sound for Int-typed bases: a
        // Num variable strictly between two integers must not be refuted.
        if (B.isLit() && B.litValue().isInt() &&
            staticType(BaseA, Types) == GilType::Int) {
          // base_a <= lit - off_a - slack
          if (!G.bound(G.node(BaseA), IntMin,
                       B.litValue().asInt() - OffA - Slack))
            Contradiction = true;
          return;
        }
        if (A.isLit() && A.litValue().isInt() &&
            staticType(BaseB, Types) == GilType::Int) {
          if (!G.bound(G.node(BaseB), A.litValue().asInt() - OffB + Slack,
                       IntMax))
            Contradiction = true;
          return;
        }
        // var-to-var comparisons: record an order edge; cycles through a
        // strict edge are contradictions (checked in run()). The edge is
        // antisymmetry-safe (a <= b <= a implies a == b) only for Int and
        // Str operands: structurally, Num has 0.0 <= -0.0 <= 0.0 with
        // 0.0 != -0.0.
        if (Op == BinOpKind::Lt && A == B) {
          Contradiction = true;
          return;
        }
        auto TA2 = staticType(A, Types), TB2 = staticType(B, Types);
        bool Safe = (TA2 == GilType::Int && TB2 == GilType::Int) ||
                    (TA2 == GilType::Str && TB2 == GilType::Str);
        Order.push_back({G.node(A), G.node(B), Op == BinOpKind::Lt, Safe});
        return;
      }
      default:
        break;
      }
    }
    if (E.kind() == ExprKind::UnOp && E.unOpKind() == UnOpKind::Not) {
      const Expr &C = E.child(0);
      if (C.kind() == ExprKind::BinOp && C.binOpKind() == BinOpKind::Eq) {
        Diseqs.emplace_back(G.node(C.child(0)), G.node(C.child(1)));
        return;
      }
      if (C.kind() == ExprKind::BinOp && (C.binOpKind() == BinOpKind::Lt ||
                                          C.binOpKind() == BinOpKind::Le)) {
        // !(a <= b) suggests b < a (and !(a < b) suggests b <= a) for the
        // model proposer only.
        SuggestOrder.push_back({G.node(C.child(1)), G.node(C.child(0)),
                                C.binOpKind() == BinOpKind::Le, false});
        // Still record the opaque boolean fact for congruence.
      }
      if (C.isLVar()) {
        if (!G.merge(G.node(C), G.node(Expr::boolE(false))))
          Contradiction = true;
        return;
      }
      // Opaque negated fact: remember the term equals false.
      if (!G.merge(G.node(C), G.node(Expr::boolE(false))))
        Contradiction = true;
      return;
    }
    if (E.isLVar()) {
      if (!G.merge(G.node(E), G.node(Expr::boolE(true))))
        Contradiction = true;
      return;
    }
    // Opaque boolean term assumed true.
    if (!G.merge(G.node(E), G.node(Expr::boolE(true))))
      Contradiction = true;
  }

  /// Detects strict cycles in the <=-order graph over equality-class
  /// representatives (plus implied edges between numeric literals): a
  /// cycle containing a strict edge refutes the condition, and terms in a
  /// pure <=-cycle are all equal (conflicting with recorded
  /// disequalities or distinct literals).
  void checkOrderCycles() {
    if (Order.empty())
      return;
    // Collect participating representatives.
    std::map<int, int> Idx; // representative -> dense index
    auto denseOf = [&](int Node) {
      int R = G.find(Node);
      auto [It, _] = Idx.emplace(R, static_cast<int>(Idx.size()));
      return It->second;
    };
    struct DenseEdge {
      int A, B;
      bool Strict;
      bool Safe;
    };
    std::vector<DenseEdge> Edges;
    for (const OrderEdge &E : Order)
      Edges.push_back({denseOf(E.A), denseOf(E.B), E.Strict,
                       E.AntisymSafe});
    // Implied edges between numeric literal classes (safe only between
    // Int literals, where structural equality matches numeric equality).
    struct NumLit {
      int Dense;
      double D;
      bool IsInt;
    };
    std::vector<NumLit> NumLits;
    for (auto &[Rep, Dense] : Idx) {
      const std::optional<Value> &L = G.litOf(Rep);
      if (L && L->isNumeric())
        NumLits.push_back({Dense, L->asDouble(), L->isInt()});
    }
    for (size_t I = 0; I != NumLits.size(); ++I)
      for (size_t J = 0; J != NumLits.size(); ++J)
        if (I != J && NumLits[I].D <= NumLits[J].D)
          Edges.push_back({NumLits[I].Dense, NumLits[J].Dense,
                           NumLits[I].D < NumLits[J].D,
                           NumLits[I].IsInt && NumLits[J].IsInt});
    size_t N = Idx.size();
    // Floyd-Warshall-style closure on (reachable, strictly-reachable);
    // N is small (terms mentioned in comparisons of one path condition).
    if (N > 256)
      return; // degrade gracefully on huge conditions
    auto closure = [N](std::vector<uint8_t> &Reach) {
      for (size_t K = 0; K < N; ++K)
        for (size_t I = 0; I < N; ++I) {
          uint8_t IK = Reach[I * N + K];
          if (!IK)
            continue;
          for (size_t J = 0; J < N; ++J) {
            uint8_t KJ = Reach[K * N + J];
            if (!KJ)
              continue;
            uint8_t Via = std::max(IK, KJ) == 2 ? 2 : 1;
            uint8_t &R = Reach[I * N + J];
            if (Via > R)
              R = Via;
          }
        }
    };
    std::vector<uint8_t> Reach(N * N, 0); // 1 = <=, 2 = < (all edges)
    std::vector<uint8_t> Safe(N * N, 0);  // antisymmetry-safe edges only
    for (const DenseEdge &E : Edges) {
      uint8_t V = E.Strict ? 2 : 1;
      size_t I = static_cast<size_t>(E.A) * N + E.B;
      Reach[I] = std::max(Reach[I], V);
      if (E.Safe)
        Safe[I] = std::max(Safe[I], V);
    }
    closure(Reach);
    closure(Safe);
    for (size_t I = 0; I < N; ++I)
      if (Reach[I * N + I] == 2) {
        Contradiction = true; // a < a through the cycle
        return;
      }
    // Pure <=-cycles equate their members: check diseqs and literals.
    std::map<int, int> DenseOfRep;
    for (auto &[Rep, Dense] : Idx)
      DenseOfRep[Rep] = Dense;
    for (auto [A, B] : Diseqs) {
      auto IA = DenseOfRep.find(G.find(A));
      auto IB = DenseOfRep.find(G.find(B));
      if (IA == DenseOfRep.end() || IB == DenseOfRep.end())
        continue;
      size_t X = static_cast<size_t>(IA->second);
      size_t Y = static_cast<size_t>(IB->second);
      if (X != Y && Safe[X * N + Y] == 1 && Safe[Y * N + X] == 1) {
        Contradiction = true; // a <= b <= a with a != b (Int/Str order)
        return;
      }
    }
  }

  void run(const PathCondition &PC) {
    if (PC.isTriviallyFalse()) {
      Contradiction = true;
      return;
    }
    if (!inferTypes(PC.conjuncts(), Types)) {
      Contradiction = true;
      return;
    }
    for (const Expr &C : PC.conjuncts()) {
      assumeTrue(C);
      if (Contradiction)
        return;
    }
    checkOrderCycles();
    if (Contradiction)
      return;
    // Disequality check after all merges.
    for (auto [A, B] : Diseqs) {
      if (G.find(A) == G.find(B)) {
        Contradiction = true;
        return;
      }
      const auto &LA = G.litOf(A);
      const auto &LB = G.litOf(B);
      if (LA && LB && *LA == *LB) {
        Contradiction = true;
        return;
      }
    }
  }
};

} // namespace

std::vector<std::vector<Expr>>
gillian::sliceConjunctsByVars(const PathCondition &PC) {
  const std::vector<Expr> &Cs = PC.conjuncts();
  const size_t N = Cs.size();
  std::vector<int> Parent(N);
  for (size_t I = 0; I != N; ++I)
    Parent[I] = static_cast<int>(I);
  auto find = [&Parent](int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto unite = [&](int A, int B) { Parent[find(B)] = find(A); };

  // Conjuncts sharing a logical variable join the variable owner's group;
  // ground conjuncts (no LVars) pool into a single group.
  std::map<InternedString, int> OwnerOfVar;
  int GroundOwner = -1;
  std::set<InternedString> Vars;
  for (size_t I = 0; I != N; ++I) {
    Vars.clear();
    Cs[I].collectLVars(Vars);
    if (Vars.empty()) {
      if (GroundOwner < 0)
        GroundOwner = static_cast<int>(I);
      else
        unite(GroundOwner, static_cast<int>(I));
      continue;
    }
    for (InternedString V : Vars) {
      auto [It, Fresh] = OwnerOfVar.emplace(V, static_cast<int>(I));
      if (!Fresh)
        unite(It->second, static_cast<int>(I));
    }
  }

  // Emit groups ordered by their first conjunct; within a group the
  // canonical conjunct order of PC is preserved.
  std::map<int, size_t> GroupOfRoot;
  std::vector<std::vector<Expr>> Groups;
  for (size_t I = 0; I != N; ++I) {
    int R = find(static_cast<int>(I));
    auto [It, Fresh] = GroupOfRoot.emplace(R, Groups.size());
    if (Fresh)
      Groups.emplace_back();
    Groups[It->second].push_back(Cs[I]);
  }
  return Groups;
}

SatResult gillian::checkSatSyntactic(const PathCondition &PC) {
  if (PC.empty())
    return SatResult::Sat;
  Analysis A;
  A.run(PC);
  if (A.Contradiction)
    return SatResult::Unsat;
  return SatResult::Unknown;
}

std::optional<Model> gillian::proposeModelSyntactic(const PathCondition &PC) {
  Analysis A;
  A.run(PC);
  if (A.Contradiction)
    return std::nullopt;

  std::set<InternedString> LVars;
  PC.collectLVars(LVars);

  // Order-aware numeric suggestions: propagate lower bounds along the
  // <=-graph (strict edges add 1) from literal anchors and unanchored
  // sources, then upper bounds downwards. The result is a candidate that
  // satisfies chains like a <= b < c without an SMT call; the caller
  // verifies it by evaluation, so imperfect suggestions only cost a
  // fallback.
  std::map<int, double> Suggested; // representative -> value
  std::vector<Analysis::OrderEdge> AllOrder = A.Order;
  AllOrder.insert(AllOrder.end(), A.SuggestOrder.begin(),
                  A.SuggestOrder.end());
  if (!AllOrder.empty() && AllOrder.size() < 512) {
    std::map<int, double> Low, High;
    auto reps = [&](int N) { return A.G.find(N); };
    std::set<int> Nodes;
    for (const auto &E : AllOrder) {
      Nodes.insert(reps(E.A));
      Nodes.insert(reps(E.B));
    }
    for (int R : Nodes) {
      const std::optional<Value> &L = A.G.litOf(R);
      if (L && L->isNumeric()) {
        Low[R] = L->asDouble();
        High[R] = L->asDouble();
      }
    }
    for (size_t Round = 0; Round <= Nodes.size(); ++Round) {
      bool Changed = false;
      for (const auto &E : AllOrder) {
        int RA = reps(E.A), RB = reps(E.B);
        double W = E.Strict ? 1.0 : 0.0;
        auto LA = Low.find(RA);
        if (LA != Low.end()) {
          double Cand = LA->second + W;
          auto [It, Ins] = Low.emplace(RB, Cand);
          if (!Ins && Cand > It->second) {
            It->second = Cand;
            Changed = true;
          } else if (Ins) {
            Changed = true;
          }
        }
        auto HB = High.find(RB);
        if (HB != High.end()) {
          double Cand = HB->second - W;
          auto [It, Ins] = High.emplace(RA, Cand);
          if (!Ins && Cand < It->second) {
            It->second = Cand;
            Changed = true;
          } else if (Ins) {
            Changed = true;
          }
        }
      }
      if (!Changed)
        break;
    }
    for (int R : Nodes) {
      auto L = Low.find(R), H = High.find(R);
      if (L != Low.end() && H != High.end() && L->second > H->second)
        continue; // inconsistent window; let verification/Z3 decide
      if (L != Low.end())
        Suggested[R] = L->second;
      else if (H != High.end())
        Suggested[R] = H->second;
    }
    // Seed unanchored order sources at 0 and re-run one lower-bound pass
    // so fully-relative chains (a < b < c with no literals) get values.
    bool Seeded = false;
    for (int R : Nodes)
      if (!Suggested.count(R)) {
        Suggested[R] = 0;
        Seeded = true;
      }
    if (Seeded) {
      for (size_t Round = 0; Round <= Nodes.size(); ++Round) {
        bool Changed = false;
        for (const auto &E : AllOrder) {
          int RA = reps(E.A), RB = reps(E.B);
          double W = E.Strict ? 1.0 : 0.0;
          auto IA = Suggested.find(RA), IB = Suggested.find(RB);
          if (IA != Suggested.end() && IB != Suggested.end() &&
              IB->second < IA->second + W) {
            // Only lift nodes that are not literal-anchored.
            const std::optional<Value> &L = A.G.litOf(RB);
            if (!(L && L->isNumeric())) {
              IB->second = IA->second + W;
              Changed = true;
            }
          }
        }
        if (!Changed)
          break;
      }
    }
  }

  Model M;
  uint32_t FreshSym = 0;
  // Distinct default integers per disequality-entangled class would need a
  // real solver; pick class literals when available, else spread values by
  // class id to make x != y defaults likely to verify.
  for (InternedString X : LVars) {
    Expr V = Expr::lvar(X);
    auto It = A.G.ids().find(V);
    std::optional<Value> Bound;
    int64_t Lo = IntMin, Hi = IntMax, ClassId = 0;
    if (It != A.G.ids().end()) {
      int Id = It->second;
      if (const auto &L = A.G.litOf(Id))
        Bound = *L;
      Lo = A.G.loOf(Id);
      Hi = A.G.hiOf(Id);
      ClassId = A.G.find(Id);
    }
    if (Bound) {
      M.bind(X, *Bound);
      continue;
    }
    GilType T = A.Types.lookup(X).value_or(GilType::Int);
    auto Sug = Suggested.find(ClassId);
    switch (T) {
    case GilType::Int: {
      int64_t Pick = 0;
      if (Sug != Suggested.end())
        Pick = static_cast<int64_t>(Sug->second);
      if (Lo != IntMin && Lo > Pick)
        Pick = Lo;
      if (Hi != IntMax && Hi < Pick)
        Pick = Hi;
      // Spread untouched variables so simple disequalities hold.
      if (Lo == IntMin && Hi == IntMax && Sug == Suggested.end())
        Pick = ClassId;
      M.bind(X, Value::intV(Pick));
      break;
    }
    case GilType::Num:
      M.bind(X, Sug != Suggested.end()
                    ? Value::numV(Sug->second)
                    : Value::numV(static_cast<double>(ClassId)));
      break;
    case GilType::Str:
      M.bind(X, Value::strV("s" + std::to_string(ClassId)));
      break;
    case GilType::Bool:
      M.bind(X, Value::boolV(true));
      break;
    case GilType::Sym:
      M.bind(X, Value::symV("$model_" + std::to_string(FreshSym++)));
      break;
    case GilType::Type:
      M.bind(X, Value::typeV(GilType::Int));
      break;
    case GilType::Proc:
      M.bind(X, Value::procV("main"));
      break;
    case GilType::List:
      M.bind(X, Value::listV({}));
      break;
    }
  }
  return M;
}
