//===- obs/journal/journal.cpp - Lossless execution journal ---------------===//

#include "obs/journal/journal.h"

#include "obs/json_writer.h"
#include "obs/journal/journal_io.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

namespace gillian::obs::journal {

namespace detail {
std::atomic<bool> EnabledFlag{false};
} // namespace detail

const char *verdictLayerName(VerdictLayer L) {
  switch (L) {
  case VerdictLayer::None:
    return "none";
  case VerdictLayer::Trivial:
    return "trivial";
  case VerdictLayer::Cache:
    return "cache";
  case VerdictLayer::Syntactic:
    return "syntactic";
  case VerdictLayer::Native:
    return "native";
  case VerdictLayer::Incremental:
    return "incremental";
  case VerdictLayer::Z3:
    return "z3";
  case VerdictLayer::Async:
    return "async";
  }
  return "?";
}

const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::None:
    return "none";
  case Verdict::Sat:
    return "sat";
  case Verdict::Unsat:
    return "unsat";
  case Verdict::Unknown:
    return "unknown";
  }
  return "?";
}

const char *budgetKindName(BudgetKind B) {
  switch (B) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::Steps:
    return "steps";
  case BudgetKind::Paths:
    return "paths";
  case BudgetKind::Loop:
    return "loop";
  case BudgetKind::Depth:
    return "depth";
  }
  return "?";
}

const char *pathOutcomeName(uint8_t K) {
  switch (static_cast<PathOutcome>(K)) {
  case PathOutcome::Return:
    return "return";
  case PathOutcome::Error:
    return "error";
  case PathOutcome::Vanish:
    return "vanish";
  case PathOutcome::Bound:
    return "bound";
  }
  return "?";
}

JournalStats &journalStats() {
  static JournalStats S;
  return S;
}

QueryAttribution &queryAttribution() {
  static thread_local QueryAttribution QA;
  return QA;
}

namespace {

/// Fixed-capacity append-only chunk. The owning thread writes Ev[N] and
/// then publishes with Count.store(N + 1, release); snapshot() acquires
/// Count and reads only the published prefix, so no event is ever torn.
constexpr size_t ChunkCap = 4096;

struct Chunk {
  std::atomic<uint32_t> Count{0};
  std::array<Event, ChunkCap> Ev;
};

struct Registry {
  std::mutex Mu;
  std::vector<std::unique_ptr<Chunk>> Chunks;
  std::atomic<uint64_t> Epoch{1};
  std::atomic<uint64_t> NextId{1};
  std::atomic<uint64_t> Emitted{0};
};

Registry &registry() {
  static Registry *R = new Registry; // leaked: emitters may outlive statics
  return *R;
}

/// Per-thread cursor into the registry. Epoch-stamped so a reset() (which
/// drops all chunks) invalidates every thread's cached chunk pointer: the
/// next emit on any thread sees the stale epoch and re-acquires.
struct TlsSlot {
  Chunk *Cur = nullptr;
  uint64_t Epoch = 0;
};

thread_local TlsSlot Tls;

Chunk *freshChunk() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Chunks.push_back(std::make_unique<Chunk>());
  journalStats().Chunks.set(R.Chunks.size());
  Tls.Cur = R.Chunks.back().get();
  Tls.Epoch = R.Epoch.load(std::memory_order_relaxed);
  return Tls.Cur;
}

} // namespace

void setEnabled(bool On) {
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
  journalStats().Enabled.set(On ? 1 : 0);
}

void reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Chunks.clear();
  R.Epoch.fetch_add(1, std::memory_order_relaxed);
  R.NextId.store(1, std::memory_order_relaxed);
  R.Emitted.store(0, std::memory_order_relaxed);
  journalStats().Chunks.set(0);
}

uint64_t allocPathIds(uint32_t N) {
  return registry().NextId.fetch_add(N, std::memory_order_relaxed);
}

void emit(const Event &E) {
  if (!enabled()) // belt-and-braces: emission is a strict no-op when off
    return;
  Registry &R = registry();
  Chunk *C = Tls.Cur;
  if (!C || Tls.Epoch != R.Epoch.load(std::memory_order_relaxed))
    C = freshChunk();
  uint32_t N = C->Count.load(std::memory_order_relaxed);
  if (N == ChunkCap) {
    C = freshChunk();
    N = 0;
  }
  C->Ev[N] = E;
  C->Count.store(N + 1, std::memory_order_release);
  R.Emitted.fetch_add(1, std::memory_order_relaxed);
  ++journalStats().Events;
}

uint64_t eventsEmitted() {
  return registry().Emitted.load(std::memory_order_relaxed);
}

std::vector<Event> snapshot() {
  Registry &R = registry();
  std::vector<Event> Out;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (const std::unique_ptr<Chunk> &C : R.Chunks) {
      uint32_t N = C->Count.load(std::memory_order_acquire);
      Out.insert(Out.end(), C->Ev.begin(), C->Ev.begin() + N);
    }
  }
  std::sort(Out.begin(), Out.end(), canonicalLess);
  return Out;
}

std::string statsJson() {
  uint64_t Emitted = eventsEmitted();
  uint64_t Captured = snapshot().size();
  JsonWriter W;
  W.beginObject();
  W.field("enabled", enabled());
  W.field("events", Emitted);
  W.field("captured", Captured);
  // Drop-guard: the journal is lossless by construction; at quiescence
  // every emitted event is visible in a snapshot.
  W.field("lossless", Emitted == Captured);
  W.field("bytes_written", journalStats().BytesWritten.load());
  W.field("files_written", journalStats().FilesWritten.load());
  W.endObject();
  return W.take();
}

namespace {

std::string &envJournalPath() {
  static std::string Path;
  return Path;
}

void writeEnvJournalAtExit() {
  const std::string &Path = envJournalPath();
  if (Path.empty())
    return;
  uint64_t Bytes = 0;
  std::string Err;
  if (!writeJournalFile(capture(), Path, &Bytes, &Err)) {
    std::fprintf(stderr, "[obs] journal write failed: %s\n", Err.c_str());
    return;
  }
  std::fprintf(stderr, "[obs] wrote journal to %s (%llu events, %llu bytes)\n",
               Path.c_str(), static_cast<unsigned long long>(eventsEmitted()),
               static_cast<unsigned long long>(Bytes));
}

} // namespace

void maybeEnableEnvJournal() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Env = std::getenv("GILLIAN_JOURNAL");
    if (!Env || !*Env)
      return;
    envJournalPath() = Env;
    setEnabled(true);
    std::atexit(writeEnvJournalAtExit);
  });
}

} // namespace gillian::obs::journal
