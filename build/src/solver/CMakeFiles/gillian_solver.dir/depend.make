# Empty dependencies file for gillian_solver.
# This may be replaced when dependencies are built.
