//===- engine/memlib/product.h - Product combinator ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Product<A, B>: two independent memory components side by side. Actions
/// route by name — A is consulted first, so its action set shadows B's on
/// a clash. Equality, printing, and the §3.3 interpretation all derive
/// componentwise; a Product never branches by itself, it only forwards the
/// branch sets of its components (rewrapping their memories).
///
/// This is the combinator behind "a heap plus a metadata table" (MJS) and
/// "a cell array plus a size register" (linear).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_PRODUCT_H
#define GILLIAN_ENGINE_MEMLIB_PRODUCT_H

#include "engine/memlib/branch.h"
#include "engine/state.h"
#include "solver/model.h"

#include <string>
#include <utility>

namespace gillian::memlib {

template <typename A, typename B> struct Product {
  static bool hasAction(InternedString Act) {
    return A::hasAction(Act) || B::hasAction(Act);
  }

  class Concrete {
  public:
    using FirstT = typename A::Concrete;
    using SecondT = typename B::Concrete;

    Concrete() = default;
    Concrete(FirstT F, SecondT S)
        : First(std::move(F)), Second(std::move(S)) {}

    const FirstT &first() const { return First; }
    FirstT &first() { return First; }
    const SecondT &second() const { return Second; }
    SecondT &second() { return Second; }

    Result<Value> execAction(InternedString Act, const Value &Arg) {
      if (A::hasAction(Act))
        return First.execAction(Act, Arg);
      return Second.execAction(Act, Arg);
    }

    std::string toString() const {
      return "<" + First.toString() + ", " + Second.toString() + ">";
    }

    friend bool operator==(const Concrete &X, const Concrete &Y) {
      return X.First == Y.First && X.Second == Y.Second;
    }

  private:
    FirstT First;
    SecondT Second;
  };

  class Symbolic {
  public:
    using FirstT = typename A::Symbolic;
    using SecondT = typename B::Symbolic;

    Symbolic() = default;
    Symbolic(FirstT F, SecondT S)
        : First(std::move(F)), Second(std::move(S)) {}

    const FirstT &first() const { return First; }
    FirstT &first() { return First; }
    const SecondT &second() const { return Second; }
    SecondT &second() { return Second; }

    Result<std::vector<SymActionBranch<Symbolic>>>
    execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
               Solver &S) const {
      std::vector<SymActionBranch<Symbolic>> Out;
      if (A::hasAction(Act)) {
        Result<std::vector<SymActionBranch<FirstT>>> Inner =
            First.execAction(Act, Arg, PC, S);
        if (!Inner)
          return Err(Inner.error());
        for (SymActionBranch<FirstT> &Br : *Inner) {
          Symbolic Next = *this;
          Next.First = std::move(Br.Mem);
          Out.push_back({std::move(Next), std::move(Br.Ret),
                         std::move(Br.Cond), Br.IsError});
        }
        return Out;
      }
      Result<std::vector<SymActionBranch<SecondT>>> Inner =
          Second.execAction(Act, Arg, PC, S);
      if (!Inner)
        return Err(Inner.error());
      for (SymActionBranch<SecondT> &Br : *Inner) {
        Symbolic Next = *this;
        Next.Second = std::move(Br.Mem);
        Out.push_back({std::move(Next), std::move(Br.Ret),
                       std::move(Br.Cond), Br.IsError});
      }
      return Out;
    }

    /// Componentwise I(·).
    Result<Concrete> interpret(const Model &Eps) const {
      Result<typename A::Concrete> F = First.interpret(Eps);
      if (!F)
        return Err(F.error());
      Result<typename B::Concrete> Sc = Second.interpret(Eps);
      if (!Sc)
        return Err(Sc.error());
      return Concrete(F.take(), Sc.take());
    }

    std::string toString() const {
      return "<" + First.toString() + ", " + Second.toString() + ">";
    }

    friend bool operator==(const Symbolic &X, const Symbolic &Y) {
      return X.First == Y.First && X.Second == Y.Second;
    }

  private:
    FirstT First;
    SecondT Second;
  };
};

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_PRODUCT_H
