# Empty compiler generated dependencies file for targets_buckets_test.
# This may be replaced when dependencies are built.
