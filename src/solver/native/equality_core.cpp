//===- solver/native/equality_core.cpp ------------------------------------===//

#include "solver/native/equality_core.h"

using namespace gillian;
using namespace gillian::native;

TermId EqualityCore::intern(const Expr &E) {
  auto It = InternMap.find(E);
  if (It != InternMap.end())
    return It->second;

  Term T;
  T.E = E;
  switch (E.kind()) {
  case ExprKind::Lit:
  case ExprKind::LVar:
  case ExprKind::PVar:
    break; // atomic terms: no children, OpSig stays 0
  case ExprKind::UnOp:
    T.OpSig = 0x100u | static_cast<uint64_t>(E.unOpKind());
    break;
  case ExprKind::BinOp:
    T.OpSig = 0x200u | static_cast<uint64_t>(E.binOpKind());
    break;
  case ExprKind::List:
    // Lists of different lengths must not be congruent, so fold the arity
    // into the signature.
    T.OpSig = 0x300u | (static_cast<uint64_t>(E.numChildren()) << 16);
    break;
  }
  if (T.OpSig != 0) {
    T.Children.reserve(E.numChildren());
    for (size_t I = 0; I < E.numChildren(); ++I)
      T.Children.push_back(intern(E.child(I)));
  }

  TermId Id = static_cast<TermId>(Terms.size());
  Terms.push_back(std::move(T));
  Parent.push_back(Id);
  Rank.push_back(0);
  ClassLit.push_back(E.kind() == ExprKind::Lit ? Id : InvalidTerm);
  if (Terms[Id].OpSig != 0)
    Apps.push_back(Id);
  InternMap.emplace(E, Id);
  return Id;
}

TermId EqualityCore::find(TermId T) const {
  // No path compression: compression writes would need their own trail
  // entries. Chains stay short (union by rank).
  while (Parent[T] != T)
    T = Parent[T];
  return T;
}

const Value *EqualityCore::classValue(TermId T) const {
  TermId L = ClassLit[find(T)];
  return L == InvalidTerm ? nullptr : &Terms[L].E.litValue();
}

bool EqualityCore::unionReps(TermId RA, TermId RB) {
  if (RA == RB)
    return true;
  // Conflict pre-checks mutate nothing, so a failed union needs no undo of
  // its own (earlier merges of the same assert batch still do).
  TermId LA = ClassLit[RA], LB = ClassLit[RB];
  if (LA != InvalidTerm && LB != InvalidTerm &&
      !(Terms[LA].E.litValue() == Terms[LB].E.litValue()))
    return false;
  for (const auto &[X, Y] : Diseqs) {
    TermId RX = find(X), RY = find(Y);
    if ((RX == RA && RY == RB) || (RX == RB && RY == RA))
      return false;
  }

  if (Rank[RA] < Rank[RB])
    std::swap(RA, RB); // RA becomes the surviving root
  Trail.push_back({TrailEntry::Union, RB, RA, Rank[RA], ClassLit[RA]});
  Parent[RB] = RA;
  if (Rank[RA] == Rank[RB])
    ++Rank[RA];
  if (ClassLit[RA] == InvalidTerm)
    ClassLit[RA] = ClassLit[RB];
  return true;
}

bool EqualityCore::propagateCongruence() {
  // Fixpoint over application pairs. Quadratic in the (small) number of
  // applications a path condition mentions; runs only when a merge
  // happened, and each iteration performs at least one merge.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Apps.size(); ++I) {
      for (size_t J = I + 1; J < Apps.size(); ++J) {
        const Term &A = Terms[Apps[I]], &B = Terms[Apps[J]];
        if (A.OpSig != B.OpSig || A.Children.size() != B.Children.size())
          continue;
        TermId RA = find(Apps[I]), RB = find(Apps[J]);
        if (RA == RB)
          continue;
        bool Congruent = true;
        for (size_t K = 0; K < A.Children.size(); ++K)
          if (find(A.Children[K]) != find(B.Children[K])) {
            Congruent = false;
            break;
          }
        if (!Congruent)
          continue;
        if (!unionReps(RA, RB))
          return false;
        Changed = true;
      }
    }
  }
  return true;
}

bool EqualityCore::assertEq(TermId A, TermId B) {
  if (!unionReps(find(A), find(B)))
    return false;
  return propagateCongruence();
}

bool EqualityCore::assertDiseq(TermId A, TermId B) {
  if (find(A) == find(B))
    return false;
  Trail.push_back({TrailEntry::Diseq});
  Diseqs.emplace_back(A, B);
  return true;
}

bool EqualityCore::impliedDistinct(TermId A, TermId B) const {
  TermId RA = find(A), RB = find(B);
  if (RA == RB)
    return false;
  TermId LA = ClassLit[RA], LB = ClassLit[RB];
  if (LA != InvalidTerm && LB != InvalidTerm &&
      !(Terms[LA].E.litValue() == Terms[LB].E.litValue()))
    return true;
  for (const auto &[X, Y] : Diseqs) {
    TermId RX = find(X), RY = find(Y);
    if ((RX == RA && RY == RB) || (RX == RB && RY == RA))
      return true;
  }
  return false;
}

void EqualityCore::undoTo(size_t Mark) {
  while (Trail.size() > Mark) {
    const TrailEntry &E = Trail.back();
    if (E.K == TrailEntry::Union) {
      Parent[E.ChildRoot] = E.ChildRoot;
      Rank[E.ParentRoot] = E.OldRank;
      ClassLit[E.ParentRoot] = E.OldClassLit;
    } else {
      Diseqs.pop_back();
    }
    Trail.pop_back();
  }
}

void EqualityCore::clear() {
  Terms.clear();
  Parent.clear();
  Rank.clear();
  ClassLit.clear();
  Apps.clear();
  Diseqs.clear();
  Trail.clear();
  InternMap.clear();
}

void EqualityCore::diseqNeighborReps(TermId T, std::vector<TermId> &Out) const {
  TermId R = find(T);
  for (const auto &[X, Y] : Diseqs) {
    TermId RX = find(X), RY = find(Y);
    if (RX == R)
      Out.push_back(RY);
    else if (RY == R)
      Out.push_back(RX);
  }
}
