//===- solver/path_condition.h - Path conditions π ∈ Π ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Path conditions (§2.3): boolean logical expressions that bookkeep the
/// constraints on logical variables that led execution to the current
/// symbolic state. Stored as a deduplicated conjunct list; conjunctions
/// are flattened on insertion and a literal `false` collapses the whole
/// condition.
///
/// Path conditions are the classical instance of the paper's *restriction*
/// concept (§3.1): restricting a state by another strengthens its path
/// condition (see SymbolicState::restrict).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_PATH_CONDITION_H
#define GILLIAN_SOLVER_PATH_CONDITION_H

#include "gil/expr.h"

#include <vector>

namespace gillian {

class PathCondition {
public:
  /// The trivially-true path condition.
  PathCondition() = default;

  /// Conjoins \p E (already simplified by the caller or not — literal
  /// `true` is dropped, conjunctions are flattened, duplicates skipped).
  void add(const Expr &E);

  /// Conjoins every conjunct of \p Other (the π ∧ π' of Def 2.6 and the
  /// restriction operator of §3.1).
  void addAll(const PathCondition &Other);

  /// True when a literal `false` has been added: the condition is known
  /// unsatisfiable without consulting a solver.
  bool isTriviallyFalse() const { return TriviallyFalse; }

  const std::vector<Expr> &conjuncts() const { return Conjuncts; }
  size_t size() const { return Conjuncts.size(); }
  bool empty() const { return Conjuncts.empty() && !TriviallyFalse; }

  /// Single conjunction expression (for printing / Z3 round-trips).
  Expr asExpr() const;

  /// Structural containment: every conjunct of \p Other appears here.
  /// This is the ⊑ pre-order induced by path-condition restriction.
  bool contains(const PathCondition &Other) const;

  size_t hash() const { return Hash; }
  friend bool operator==(const PathCondition &A, const PathCondition &B) {
    return A.TriviallyFalse == B.TriviallyFalse && A.Conjuncts == B.Conjuncts;
  }

  std::string toString() const;

  /// Adds all logical variables mentioned by any conjunct.
  void collectLVars(std::set<InternedString> &Out) const;

private:
  std::vector<Expr> Conjuncts;
  bool TriviallyFalse = false;
  size_t Hash = 0x243F6A8885A308D3ull;
};

} // namespace gillian

template <> struct std::hash<gillian::PathCondition> {
  size_t operator()(const gillian::PathCondition &P) const noexcept {
    return P.hash();
  }
};

#endif // GILLIAN_SOLVER_PATH_CONDITION_H
