//===- obs/introspect/introspect_server.h - Live endpoints -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-introspection endpoint set (DESIGN.md §4d), one router over
/// the embedded HttpServer:
///
///   /metrics  — Prometheus text exposition, generated generically from
///               the counter registry (scheduler counters + gauges,
///               progress counters, per-worker deque depths), the span
///               table (per-layer total/self ns and counts), the
///               per-(language, action) counters, the solver hot-query
///               profiler's top sites, branch coverage, and every
///               currently-registered live MetricsRegistry source.
///   /stats    — the unified obsStatsJson object (spans/actions/scheduler).
///   /trace    — on-demand flight-recorder drain as chrome://tracing JSON.
///               Draining CONSUMES the buffered events (flight-recorder
///               semantics); two consecutive scrapes see disjoint windows.
///   /progress — paths finished, frontier size, per-worker queue depths,
///               rolling paths/s and queries/s over a ~10 s window.
///   /healthz  — "ok", 200 (liveness for CI and load balancers).
///
/// Everything rendered is a relaxed-atomic or shard-locked snapshot, so
/// scraping mid-exploration is safe by construction — that is the entire
/// point of the feature.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_INTROSPECT_INTROSPECT_SERVER_H
#define GILLIAN_OBS_INTROSPECT_INTROSPECT_SERVER_H

#include "obs/introspect/http_server.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace gillian::obs {

/// The process-global rolling-rate window, in milliseconds (default
/// 10000, clamped to >= 100). Every RateTracker reads it at each
/// sample(), so changing it mid-run takes effect on the next scrape —
/// the --metrics-window= bench flag sets it once at startup.
void setMetricsWindowMs(uint64_t Ms);
uint64_t metricsWindowMs();

/// Rolling paths/s and queries/s from the process-wide progress counters:
/// each sample() appends (now, paths, queries) and reports the mean rate
/// over the retained window (metricsWindowMs()). Thread-safe; 0.0 until
/// two samples exist.
class RateTracker {
public:
  struct Rates {
    double PathsPerSec = 0.0;
    double QueriesPerSec = 0.0;
  };
  Rates sample();

private:
  struct Point {
    uint64_t Ns;
    uint64_t Paths;
    uint64_t Queries;
  };
  std::mutex Mu;
  std::deque<Point> Window;
};

/// Renders the full /metrics exposition (see file comment). Exposed as a
/// free function so tests can check the format without a socket.
std::string metricsExposition();

/// Renders the /progress JSON object: {"paths_finished":N,
/// "solver_queries":N,"tests_started":N,"frontier_size":N,
/// "workers":[d0,d1,...],"paths_per_sec":R,"queries_per_sec":R,
/// "coverage":{"outcomes_covered":N,"outcomes_total":N}}.
std::string progressJson(RateTracker &Rates);

/// Splits "host:port" (e.g. "127.0.0.1:0"). Returns false on a missing
/// colon or a port outside [0, 65535].
bool parseHostPort(const std::string &Spec, std::string &Host,
                   uint16_t &Port);

/// The assembled server: HttpServer + router + rate tracker. One instance
/// per process is the intended shape (the underlying stats are global),
/// but nothing enforces it — tests run several.
class IntrospectServer {
public:
  /// Binds and serves; returns the bound port (0 on failure). Port 0
  /// requests an ephemeral port — read the result.
  uint16_t start(const std::string &Host, uint16_t Port);
  /// As above from a "host:port" spec.
  uint16_t start(const std::string &Spec);
  void stop() { Server.stop(); }

  bool running() const { return Server.running(); }
  uint16_t port() const { return Server.port(); }
  uint64_t requestsServed() const { return Server.requestsServed(); }
  uint64_t lastRequestNs() const { return Server.lastRequestNs(); }

private:
  HttpResponse route(const HttpRequest &Req);

  HttpServer Server;
  RateTracker Rates;
};

/// The process-wide server instance the drivers and the GILLIAN_SERVE
/// hook share (so --serve and the env var cannot double-bind).
IntrospectServer &processIntrospectServer();

/// Starts the process-wide server on \p Spec ("host:port", port 0 =
/// ephemeral), announces `[obs] introspection server listening on
/// http://host:port` on stderr (CI parses this line to discover the
/// ephemeral port), and enables the flight recorder so /trace has events.
/// Returns the bound port; 0 on failure. If the server is already
/// running, returns its port without rebinding.
uint16_t startProcessIntrospection(const std::string &Spec);

/// startProcessIntrospection($GILLIAN_SERVE) if the variable is set —
/// the hook that gives the *test runner* (the suite/symbolic-test layer,
/// which has no CLI of its own) a serve switch. Checked once per process.
void maybeStartEnvIntrospection();

} // namespace gillian::obs

#endif // GILLIAN_OBS_INTROSPECT_INTROSPECT_SERVER_H
