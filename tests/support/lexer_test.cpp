//===- tests/support/lexer_test.cpp ---------------------------------------===//

#include "support/lexer.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

std::vector<Token> lexOk(std::string_view Src) {
  std::vector<Token> T = tokenize(Src);
  EXPECT_FALSE(T.empty());
  EXPECT_TRUE(T.back().is(TokenKind::Eof)) << "lexical error: "
                                           << T.back().Text;
  return T;
}

} // namespace

TEST(Lexer, IdentifiersAndPrefixes) {
  auto T = lexOk("foo _bar $sym #lvar x1$y");
  ASSERT_EQ(T.size(), 6u); // 5 idents + eof
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_EQ(T[1].Text, "_bar");
  EXPECT_EQ(T[2].Text, "$sym");
  EXPECT_EQ(T[3].Text, "#lvar");
  EXPECT_EQ(T[4].Text, "x1$y");
}

TEST(Lexer, IntAndFloatLiterals) {
  auto T = lexOk("42 3.5 1e3 7");
  EXPECT_TRUE(T[0].is(TokenKind::Int));
  EXPECT_EQ(T[0].IntVal, 42);
  EXPECT_TRUE(T[1].is(TokenKind::Float));
  EXPECT_DOUBLE_EQ(T[1].FloatVal, 3.5);
  EXPECT_TRUE(T[2].is(TokenKind::Float));
  EXPECT_DOUBLE_EQ(T[2].FloatVal, 1000.0);
  EXPECT_TRUE(T[3].is(TokenKind::Int));
}

TEST(Lexer, DotWithoutDigitIsNotAFloat) {
  auto T = lexOk("1.x");
  EXPECT_TRUE(T[0].is(TokenKind::Int));
  EXPECT_TRUE(T[1].isPunct("."));
  EXPECT_EQ(T[2].Text, "x");
}

TEST(Lexer, StringEscapes) {
  auto T = lexOk(R"("a\nb\"c\\d")");
  ASSERT_TRUE(T[0].is(TokenKind::String));
  EXPECT_EQ(T[0].Text, "a\nb\"c\\d");
}

TEST(Lexer, UnterminatedStringIsError) {
  auto T = tokenize("\"abc");
  EXPECT_TRUE(T.back().is(TokenKind::Error));
}

TEST(Lexer, UnknownEscapeIsError) {
  auto T = tokenize(R"("a\qb")");
  EXPECT_TRUE(T.back().is(TokenKind::Error));
}

TEST(Lexer, MaximalMunchPunctuation) {
  auto T = lexOk("a:=b==c===d<=e&&f");
  std::vector<std::string> Puncts;
  for (const Token &Tok : T)
    if (Tok.is(TokenKind::Punct))
      Puncts.push_back(Tok.Text);
  EXPECT_EQ(Puncts, (std::vector<std::string>{":=", "==", "===", "<=", "&&"}));
}

TEST(Lexer, CommentsAreSkipped) {
  auto T = lexOk("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(Lexer, LineAndColumnTracking) {
  auto T = lexOk("a\n  b");
  EXPECT_EQ(T[0].Line, 1);
  EXPECT_EQ(T[0].Col, 1);
  EXPECT_EQ(T[1].Line, 2);
  EXPECT_EQ(T[1].Col, 3);
}

TEST(Lexer, UnexpectedCharacterIsError) {
  auto T = tokenize("a ` b");
  EXPECT_TRUE(T.back().is(TokenKind::Error));
  EXPECT_NE(T.back().Text.find('`'), std::string::npos);
}

TEST(Lexer, ExponentNotConsumedAsIdent) {
  // "1e" followed by non-digit: the 'e' must start an identifier.
  auto T = lexOk("1e x");
  EXPECT_TRUE(T[0].is(TokenKind::Int));
  EXPECT_EQ(T[1].Text, "e");
}
