//===- while_lang/parser.h - While parser ----------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete syntax for the While language of §2.2:
///
///   function main() {
///     x := fresh_int();
///     assume (0 <= x && x < 10);
///     o := { a: x, b: "hi" };
///     y := o.a;          // property lookup
///     o.b := y + 1;      // property mutation
///     if (y < 5) { r := double(y); } else { r := y; }
///     while (0 < r) { r := r - 1; }
///     dispose o;
///     assert (r == 0);
///     return r;
///   }
///   function double(n) { return 2 * n; }   // sugar: expression body also ok
///
/// Expressions are the GIL expression grammar (shared parser).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_WHILE_PARSER_H
#define GILLIAN_WHILE_PARSER_H

#include "support/result.h"
#include "while_lang/ast.h"

#include <string_view>

namespace gillian::whilelang {

Result<Program> parseWhile(std::string_view Source);

} // namespace gillian::whilelang

#endif // GILLIAN_WHILE_PARSER_H
