//===- engine/summary/summary_store.h - Procedure summary cache *- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The procedure summary cache (DESIGN.md §4g): a process-wide sharded
/// store memoising the *terminal symbolic states* of eligible procedure
/// calls, replayed at Call sites instead of re-executing the body — the
/// summaries-as-cache reading of Gillian part ii's compositional
/// summaries (PAPERS.md).
///
/// Eligibility is conservative and syntactic, decided once per procedure:
/// the body may contain only assignments, *forward* conditional gotos
/// (loop-freedom by back-edge rejection), return, fail and vanish. No
/// Action commands (the heap is never touched, so no footprint needs to
/// enter the key), no nested calls, no symbol allocation. Within that
/// fragment every execution tree is finite, every split is a two-way
/// IfGoto, and replaying the recorded tree in the interpreter's emission
/// order reproduces result ordering, ExecStats and BranchCoverage
/// bit-identically to re-execution (the invariant summary_differential_
/// test enforces).
///
/// The key is (procedure fingerprint, evaluated argument expression,
/// entry path-condition slice): the slice keeps exactly the caller
/// conjunct groups — sliceConjunctsByVars components — that share a
/// logical variable with the argument, so two calls with the same
/// argument under *independently differing* path conditions share one
/// summary. Thread-safety follows the 16-way sharded SolverCache;
/// persistence reuses the crash-safe pid-temp + rename idiom of
/// Solver::saveCache, so a second suite run warm-starts across both the
/// solver and summary layers.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SUMMARY_SUMMARY_STORE_H
#define GILLIAN_ENGINE_SUMMARY_SUMMARY_STORE_H

#include "gil/prog.h"
#include "obs/summary_stats.h"
#include "solver/path_condition.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gillian {

class Solver;

/// What a recorded path terminated with. Split/Dead are interior shapes:
/// a Split is a both-feasible IfGoto (exactly two children), a Dead node
/// is a both-infeasible IfGoto (the path emits nothing, exactly like the
/// assume-pruned original).
enum class SummaryNodeKind : uint8_t { Return, Error, Vanish, Split, Dead };

/// One branch-coverage event to replay: the IfGoto command index, the
/// false/true feasibility bits it reported, and the edge's cumulative
/// command count through the IfGoto itself — what CmdsExecuted must
/// grow by if replay's feasibility re-check prunes the path right here.
struct SummaryCovEvent {
  uint32_t CmdIdx = 0;
  uint32_t Bits = 0;
  uint64_t CmdsAt = 0;
};

/// One edge of the recorded execution tree: the straight-line run from a
/// split (or the entry) to the next split or terminal.
struct SummaryNode {
  /// Path-condition conjunct batches this edge added, one batch per
  /// assumeValue the recorder performed, each in canonical order. Batch 0
  /// is the branch-in delta (empty for the root): the parent Split
  /// splices and feasibility-checks it before emitting the child, exactly
  /// where re-execution's IfGoto would have queried; later batches are
  /// the edge's single-feasible IfGoto deltas, checked in sequence during
  /// the child's own replay step. Replaying the same conjuncts with the
  /// same full-path-condition queries at the same points reproduces
  /// re-execution's prune decisions bit-exactly.
  std::vector<std::vector<Expr>> Batches;
  /// IfGoto coverage events observed along the edge (including the
  /// terminal split, when Kind == Split).
  std::vector<SummaryCovEvent> Cov;
  /// GIL commands the edge executed (replay adds them to CmdsExecuted so
  /// the Tables 1/2 metric stays bit-identical to re-execution).
  uint64_t Cmds = 0;
  SummaryNodeKind Kind = SummaryNodeKind::Dead;
  /// Return value / error value for terminal kinds; null otherwise.
  Expr Val;
  uint32_t FalseChild = 0; ///< Kind == Split only
  uint32_t TrueChild = 0;  ///< Kind == Split only
};

/// A memoised procedure execution: the tree of terminal outcomes reached
/// from one (argument, entry-slice) class. Negative entries mark keys
/// whose recording blew the node/step caps — lookups return them so call
/// sites skip straight to real execution without re-recording.
struct SummaryEntry {
  InternedString ProcName;
  uint64_t Fingerprint = 0;
  bool Negative = false;
  /// Tree nodes; index 0 is the root. Children always follow parents.
  std::vector<SummaryNode> Nodes;
  /// Terminal (Return/Error/Vanish) node count.
  uint32_t Outcomes = 0;
  /// Estimated resident size, for the gillian_summary_bytes gauge.
  size_t Bytes = 0;
};

/// Cache key: procedure identity by body fingerprint (stable across
/// programs and processes, unlike interned ids), the evaluated argument
/// expression, and the argument-reachable slice of the caller's entry
/// path condition.
struct SummaryKey {
  uint64_t Fingerprint = 0;
  Expr Arg;
  PathCondition Slice;

  size_t hash() const;
  friend bool operator==(const SummaryKey &A, const SummaryKey &B) {
    return A.Fingerprint == B.Fingerprint && A.Arg == B.Arg &&
           A.Slice.hash() == B.Slice.hash() &&
           A.Slice.conjuncts() == B.Slice.conjuncts();
  }
};

/// True iff \p P is in the summarisable fragment: non-empty body of
/// assignments, strictly-forward IfGotos, return, fail and vanish only.
bool summaryEligible(const Proc &P);

/// Content fingerprint of \p P (name, parameter, rendered body). Two
/// textually identical procedures — e.g. the MJS runtime linked into
/// every compiled program — fingerprint equal, so summaries transfer
/// across programs and across persisted processes.
uint64_t summaryFingerprint(const Proc &P);

/// The slice of \p Caller relevant to \p Arg: the union of the
/// variable-connected conjunct groups (sliceConjunctsByVars) that share a
/// logical variable with \p Arg. Groups preserve canonical order, so the
/// result is rebuilt with fromSortedConjuncts without re-canonicalising.
PathCondition summarySliceForArg(const PathCondition &Caller,
                                 const Expr &Arg);

/// Conjuncts present in canonical list \p After but not in \p Before
/// (both sorted by ExprOrdering) — the merge-walk delta the recorder uses
/// to attribute new conjuncts to tree edges.
std::vector<Expr> summaryNewConjuncts(const std::vector<Expr> &Before,
                                      const std::vector<Expr> &After);

/// Estimated resident bytes of \p E (expression nodes counted shallowly).
size_t summaryEntryBytes(const SummaryEntry &E);

/// The process-wide sharded summary store. Same shape as SolverCache:
/// 16 shards keyed by the top hash bits, shared_ptr values so readers
/// never block on a writer, a generation counter bumped by clear() so
/// in-flight holders simply finish with their snapshot.
class ProcedureSummaryStore {
public:
  std::shared_ptr<const SummaryEntry> lookup(const SummaryKey &K) const;

  /// Inserts (or replaces) the entry for \p K, keeping the entry/byte
  /// gauges exact under replacement.
  void insert(const SummaryKey &K, std::shared_ptr<const SummaryEntry> E);

  /// Drops every entry and bumps the generation. Registered as a
  /// Solver::resetCache() hook, so "cold" means cold across the solver
  /// *and* summary layers.
  void clear();

  size_t size() const;
  size_t bytes() const { return BytesTotal.load(std::memory_order_relaxed); }
  uint64_t generation() const {
    return Generation.load(std::memory_order_relaxed);
  }

  /// Persists the store to \p Path — same crash-safe discipline as
  /// Solver::saveCache (pid-suffixed temp, flush check, atomic rename).
  /// Returns entries written, or -1 on I/O failure.
  long save(const std::string &Path) const;
  /// Seeds the store from a file written by save(). Expressions are
  /// re-parsed and path conditions re-canonicalised; malformed entries
  /// are skipped. Returns entries loaded, or -1 if \p Path can't be read.
  long load(const std::string &Path);

  /// The process-wide instance every engine run shares (warm across
  /// suites, like SolverCache::process()).
  static ProcedureSummaryStore &process();

private:
  struct KeyHash {
    size_t operator()(const SummaryKey &K) const { return K.hash(); }
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<SummaryKey, std::shared_ptr<const SummaryEntry>,
                       KeyHash>
        Map;
  };

  static constexpr size_t NumShards = 16;
  Shard &shardFor(size_t Hash) const {
    return Shards[(Hash * 0x9E3779B97F4A7C15ull) >> 60];
  }

  mutable Shard Shards[NumShards];
  std::atomic<size_t> BytesTotal{0};
  std::atomic<uint64_t> Generation{0};
};

/// Colds every engine-layer memoisation in one call: the solver's caches
/// (Solver::resetCache — result cache, simplifier memo, incremental and
/// native sessions) plus the process-wide summary store. resetCache()
/// alone already colds the summary store through the registered hook;
/// this spelling exists so engine code has a name for the whole-stack
/// reset that doesn't rely on knowing the hook is installed.
void resetEngineCaches(Solver &S);

} // namespace gillian

#endif // GILLIAN_ENGINE_SUMMARY_SUMMARY_STORE_H
