#!/usr/bin/env bash
#===- scripts/prom_lint.sh - Prometheus exposition linter ----------------===#
#
# Grep-level lint of a Prometheus text-exposition (version 0.0.4) file, as
# scraped from the /metrics endpoint. Checks:
#
#   1. the file is non-empty;
#   2. every line is a comment or a "name[{labels}] value" sample;
#   3. no metric family has two TYPE lines;
#   4. every sample's family was TYPE-declared before use;
#   5. counter samples carry the _total suffix, and no gauge does
#      (by the TYPE declarations themselves);
#   6. no two samples share the same name + label set.
#
# Usage: prom_lint.sh <exposition-file>
#
#===----------------------------------------------------------------------===#
set -euo pipefail

f="${1:?usage: prom_lint.sh <exposition-file>}"
fail() { echo "prom_lint: $f: $1" >&2; exit 1; }

[ -s "$f" ] || fail "empty or missing"

# 2. Line shapes: "# ..." comments, or "name value" / "name{labels} value"
# with a numeric value (int, float, exponent, +/-Inf, NaN).
bad=$(grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? ([-+]?[0-9][0-9.eE+-]*|[-+]?Inf|NaN)$)' "$f" || true)
[ -z "$bad" ] || fail "malformed lines:
$bad"

# 3. One TYPE line per family.
dup=$(grep '^# TYPE ' "$f" | awk '{print $3}' | sort | uniq -d)
[ -z "$dup" ] || fail "families with duplicate TYPE lines: $dup"

# 4. Every sample's family is TYPE-declared.
undeclared=$(grep -v '^#' "$f" | sed -E 's/\{.*//; s/ .*//' | sort -u |
  while read -r name; do
    grep -q "^# TYPE $name " "$f" || echo "$name"
  done)
[ -z "$undeclared" ] || fail "samples without a TYPE line: $undeclared"

# 5. Counter families end in _total; gauge families do not.
badctr=$(grep '^# TYPE ' "$f" | awk '$4 == "counter" && $3 !~ /_total$/ {print $3}')
[ -z "$badctr" ] || fail "counter families missing _total suffix: $badctr"
badgauge=$(grep '^# TYPE ' "$f" | awk '$4 == "gauge" && $3 ~ /_total$/ {print $3}')
[ -z "$badgauge" ] || fail "gauge families with counter suffix: $badgauge"

# 6. No duplicate series (same name + labels).
dupseries=$(grep -v '^#' "$f" | sed -E 's/ [^ ]+$//' | sort | uniq -d)
[ -z "$dupseries" ] || fail "duplicate series:
$dupseries"

echo "prom_lint: $f: OK ($(grep -c '^# TYPE ' "$f") families, $(grep -vc '^#' "$f") samples)"
