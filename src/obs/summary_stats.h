//===- obs/summary_stats.h - Process-wide summary-cache counters *- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters of the procedure summary cache
/// (src/engine/summary/, DESIGN.md §4g). The store itself lives in the
/// engine library; its counters live in obs — like NativeGlobalStats —
/// so both the introspection server and solverStatsJson can render them
/// without a dependency on the engine.
///
/// Category "summary" yields the `gillian_summary_*` metric families
/// (`gillian_summary_hits_total`, `gillian_summary_entries`, ...).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_SUMMARY_STATS_H
#define GILLIAN_OBS_SUMMARY_STATS_H

#include "obs/counters.h"

namespace gillian::obs {

struct SummaryGlobalStats : CounterSet<SummaryGlobalStats> {
  /// Call sites answered by replaying a cached summary.
  Counter Hits{*this, "hits", "summary"};
  /// Eligible calls that recorded a fresh summary (then replayed it).
  Counter Misses{*this, "misses", "summary"};
  /// Calls to procedures outside the eligible fragment (or to keys with a
  /// negative marker from an earlier recording overflow).
  Counter Ineligible{*this, "ineligible", "summary"};
  /// Terminal outcomes spliced into callers by replay.
  Counter ReplayedOutcomes{*this, "replayed_outcomes", "summary"};
  /// Recordings abandoned by the node/step caps (negative-cached).
  Counter RecordOverflows{*this, "record_overflows", "summary"};
  /// Replayed paths dropped by the feasibility insurance check.
  Counter ReplayInfeasible{*this, "replay_infeasible", "summary"};

  /// Entries resident in the process-wide store.
  Gauge Entries{*this, "entries", "summary"};
  /// Estimated bytes held by those entries.
  Gauge Bytes{*this, "bytes", "summary"};

  SummaryGlobalStats() = default;
  SummaryGlobalStats(const SummaryGlobalStats &O) { copyFrom(O); }
  SummaryGlobalStats &operator=(const SummaryGlobalStats &O) {
    copyFrom(O);
    return *this;
  }

  /// Fraction of summary-eligible calls answered from the store; 0 when
  /// no eligible call happened.
  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// The process-wide instance (relaxed atomics; safe from any thread).
inline SummaryGlobalStats &summaryGlobalStats() {
  static SummaryGlobalStats S;
  return S;
}

} // namespace gillian::obs

#endif // GILLIAN_OBS_SUMMARY_STATS_H
