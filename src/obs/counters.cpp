//===- obs/counters.cpp ---------------------------------------------------===//

#include "obs/counters.h"

namespace gillian::obs::detail {

SchemaBuildScope *&activeSchemaBuild() {
  thread_local SchemaBuildScope *Active = nullptr;
  return Active;
}

} // namespace gillian::obs::detail
