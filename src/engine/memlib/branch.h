//===- engine/memlib/branch.h - Branch emission context --------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BranchCtx bundles the plumbing every symbolic action needs: the source
/// memory, the path condition, the solver, and the accumulating branch
/// vector. On top of it sit the two branch-emission idioms of the Fig. 3
/// rules:
///
///  * error/ok — push a fault or success branch under a condition;
///  * checkOrError — split on a boolean side condition (bounds, alignment,
///    interior-pointer, ...), emitting the fault branch for the worlds
///    where it fails and continuing under the strengthened condition.
///
/// This is the layer the MC model's ActionCtx grew ad hoc; it is now
/// shared by all models built from memlib combinators.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_BRANCH_H
#define GILLIAN_ENGINE_MEMLIB_BRANCH_H

#include "engine/memlib/alias.h"
#include "engine/state.h"

#include <string>
#include <vector>

namespace gillian::memlib {

/// Returns the structured diagnostic for an allocation-sized action whose
/// size argument is symbolic. One message, produced by the combinator
/// layer, shared by every model that allocates (MC `alloc`, linear
/// `grow`): keeping it central means the "open research problem" of
/// symbolic-size allocation (EXPERIMENTS.md) is a single grep away from
/// every place it bites.
inline std::string symbolicSizeError(std::string_view Action,
                                     const Expr &Size) {
  return "unsupported: " + std::string(Action) +
         " with symbolic size " + Size.toString() +
         " (symbolic-size allocation is an open research problem; see "
         "EXPERIMENTS.md 'Known deviations' and paper §4.2 'Current "
         "Limitations')";
}

/// Per-action branching context over a symbolic memory model \p M.
template <typename M> struct BranchCtx {
  const M &Self; ///< the pre-action memory (error branches keep it)
  const PathCondition &PC;
  Solver &S;
  std::vector<SymActionBranch<M>> Out;

  BranchCtx(const M &Self, const PathCondition &PC, Solver &S)
      : Self(Self), PC(PC), S(S) {}

  /// Emits a memory-fault branch under \p Cond (null = unconditional).
  void error(std::string Msg, Expr Cond = Expr()) {
    Out.push_back(
        {Self, Expr::strE(std::move(Msg)), std::move(Cond), /*IsError=*/true});
  }

  /// Emits a success branch with memory \p Next and return value \p Ret.
  void ok(M Next, Expr Ret, Expr Cond = Expr()) {
    Out.push_back({std::move(Next), std::move(Ret), std::move(Cond), false});
  }

  /// Is π ∧ Cond satisfiable? The gate on every residual branch.
  bool feasible(const Expr &Cond) {
    PathCondition Ext = PC;
    Ext.add(Cond);
    return S.maybeSat(Ext);
  }

  /// Splits on a boolean side condition: \p OnTrue runs under
  /// Under ∧ Cond; the fault branch is emitted under Under ∧ ¬Cond when
  /// that world is possible.
  template <typename Fn>
  void checkOrError(Expr Cond, const Expr &Under, const std::string &Msg,
                    Fn OnTrue) {
    Expr C;
    Tri T = decide(Cond, PC, S, C);
    if (T == Tri::No) {
      error(Msg, Under);
      return;
    }
    Expr NotC;
    if (T == Tri::Maybe) {
      Tri TN = decide(Expr::notE(Cond), PC, S, NotC);
      if (TN != Tri::No)
        error(Msg, simplify(Expr::andE(Under, Expr::notE(Cond))));
      OnTrue(simplify(Expr::andE(Under, Cond)));
      return;
    }
    OnTrue(Under);
  }
};

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_BRANCH_H
