//===- gil/parser.h - Textual GIL parser -----------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parser for the textual GIL syntax produced by Prog::toString /
/// Cmd::toString / Expr::toString, so GIL programs can be written by hand,
/// stored as goldens, and round-tripped in tests.
///
/// Grammar sketch (see tests/gil/parser_test.cpp for worked examples):
///
///   prog  ::= proc*
///   proc  ::= 'proc' IDENT '(' IDENT ')' '{' (label? cmd ';')* '}'
///   label ::= INT ':'
///   cmd   ::= IDENT ':=' expr
///           | IDENT ':=' expr '(' expr ')'           -- dynamic call
///           | IDENT ':=' '@' IDENT '(' expr ')'      -- action
///           | IDENT ':=' 'usym' '(' INT ')'
///           | IDENT ':=' 'isym' '(' INT ')'
///           | 'ifgoto' expr INT | 'goto' INT
///           | 'return' expr | 'fail' expr | 'vanish'
///   expr  ::= literals, pvars, '#'-lvars, '$'-symbols, '^'-type literals,
///             '&'-proc literals, '['e,..']' lists, unary - ! ~,
///             keyword ops (typeof/len/slen/hd/tl/to_num/to_int/
///             num_to_str/str_to_num/l_nth/s_nth), and infix operators
///             with conventional precedence.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_GIL_PARSER_H
#define GILLIAN_GIL_PARSER_H

#include "gil/prog.h"
#include "support/lexer.h"
#include "support/result.h"

#include <string_view>

namespace gillian {

/// Parses a complete GIL program.
Result<Prog> parseGilProg(std::string_view Source);

/// Parses a single GIL expression (the whole input must be consumed).
Result<Expr> parseGilExpr(std::string_view Source);

/// Parses one expression from a token stream starting at Toks[Pos],
/// advancing Pos past it. Shared by the While/MJS/MC front ends, whose
/// expression grammar coincides with GIL's.
Result<Expr> parseExprAt(const std::vector<Token> &Toks, size_t &Pos);

} // namespace gillian

#endif // GILLIAN_GIL_PARSER_H
