
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/model.cpp" "src/solver/CMakeFiles/gillian_solver.dir/model.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/model.cpp.o.d"
  "/root/repo/src/solver/path_condition.cpp" "src/solver/CMakeFiles/gillian_solver.dir/path_condition.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/path_condition.cpp.o.d"
  "/root/repo/src/solver/simplifier.cpp" "src/solver/CMakeFiles/gillian_solver.dir/simplifier.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/simplifier.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "src/solver/CMakeFiles/gillian_solver.dir/solver.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/solver.cpp.o.d"
  "/root/repo/src/solver/syntactic.cpp" "src/solver/CMakeFiles/gillian_solver.dir/syntactic.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/syntactic.cpp.o.d"
  "/root/repo/src/solver/type_infer.cpp" "src/solver/CMakeFiles/gillian_solver.dir/type_infer.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/type_infer.cpp.o.d"
  "/root/repo/src/solver/z3_backend.cpp" "src/solver/CMakeFiles/gillian_solver.dir/z3_backend.cpp.o" "gcc" "src/solver/CMakeFiles/gillian_solver.dir/z3_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gil/CMakeFiles/gillian_gil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gillian_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
