//===- support/interner.h - Global string interning -----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide string interner. GIL values, program variables, logical
/// variables, procedure identifiers and action names are all interned so
/// that the hot paths of the symbolic interpreter compare 32-bit ids
/// instead of strings.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_INTERNER_H
#define GILLIAN_SUPPORT_INTERNER_H

#include <cstdint>
#include <string>
#include <string_view>

namespace gillian {

/// An interned string. Equality and hashing are O(1); the spelling can be
/// recovered with str(). Id 0 is reserved for the empty string.
class InternedString {
public:
  constexpr InternedString() : Id(0) {}

  /// Interns \p S (thread-safe) and returns its handle.
  static InternedString get(std::string_view S);

  /// Returns the spelling of this interned string. The returned view is
  /// valid for the lifetime of the process.
  std::string_view str() const;

  uint32_t id() const { return Id; }
  bool empty() const { return Id == 0; }

  /// Rebuilds a handle from a raw id previously obtained via id(). Only for
  /// storage round-trips; the id must have come from this process.
  static constexpr InternedString fromRaw(uint32_t Id) {
    return InternedString(Id);
  }

  friend bool operator==(InternedString A, InternedString B) {
    return A.Id == B.Id;
  }
  friend bool operator!=(InternedString A, InternedString B) {
    return A.Id != B.Id;
  }
  /// Orders by id (interning order), not lexicographically. Use str() when
  /// a stable human-facing order is needed.
  friend bool operator<(InternedString A, InternedString B) {
    return A.Id < B.Id;
  }

private:
  explicit constexpr InternedString(uint32_t Id) : Id(Id) {}
  uint32_t Id;
};

} // namespace gillian

template <> struct std::hash<gillian::InternedString> {
  size_t operator()(gillian::InternedString S) const noexcept {
    // Fibonacci hashing of the dense id space.
    return static_cast<size_t>(S.id()) * 0x9E3779B97F4A7C15ull;
  }
};

#endif // GILLIAN_SUPPORT_INTERNER_H
