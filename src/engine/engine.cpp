//===- engine/engine.cpp --------------------------------------------------===//

#include "engine/interpreter.h"

using namespace gillian;

std::string_view gillian::outcomeKindName(OutcomeKind K) {
  switch (K) {
  case OutcomeKind::Return: return "return";
  case OutcomeKind::Error: return "error";
  case OutcomeKind::Vanish: return "vanish";
  case OutcomeKind::Bound: return "bound";
  }
  return "<bad-outcome>";
}
