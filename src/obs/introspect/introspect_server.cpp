//===- obs/introspect/introspect_server.cpp -------------------------------===//

#include "obs/introspect/introspect_server.h"

#include "obs/action_counters.h"
#include "obs/coverage.h"
#include "obs/exporters.h"
#include "obs/introspect/metrics_registry.h"
#include "obs/introspect/prometheus.h"
#include "obs/journal/analysis.h"
#include "obs/journal/journal.h"
#include "obs/native_stats.h"
#include "obs/progress.h"
#include "obs/query_profile.h"
#include "obs/sched_counters.h"
#include "obs/span.h"
#include "obs/summary_stats.h"
#include "obs/trace_ring.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace gillian::obs;

namespace {
uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> MetricsWindow{10000}; // ms
} // namespace

void gillian::obs::setMetricsWindowMs(uint64_t Ms) {
  MetricsWindow.store(Ms < 100 ? 100 : Ms, std::memory_order_relaxed);
}

uint64_t gillian::obs::metricsWindowMs() {
  return MetricsWindow.load(std::memory_order_relaxed);
}

RateTracker::Rates RateTracker::sample() {
  ProgressCounters &P = progressCounters();
  Point Now{nowNs(), P.PathsFinished.load(), P.SolverQueries.load()};
  const uint64_t WindowNs = metricsWindowMs() * 1000000ull;

  std::lock_guard<std::mutex> Lock(Mu);
  while (!Window.empty() && Now.Ns - Window.front().Ns > WindowNs)
    Window.pop_front();
  Rates R;
  if (!Window.empty() && Now.Ns > Window.front().Ns) {
    const Point &Old = Window.front();
    double Dt = static_cast<double>(Now.Ns - Old.Ns) * 1e-9;
    R.PathsPerSec = static_cast<double>(Now.Paths - Old.Paths) / Dt;
    R.QueriesPerSec = static_cast<double>(Now.Queries - Old.Queries) / Dt;
  }
  Window.push_back(Now);
  if (Window.size() > 256) // bound memory under scrape storms
    Window.pop_front();
  return R;
}

std::string gillian::obs::metricsExposition() {
  PromWriter W;

  // Registry-driven sets: every field appears with zero exporter edits.
  counterSetInto(W, schedCounters());
  counterSetInto(W, progressCounters());
  // Native theory layer + async solver service (process-wide aggregate —
  // still rendered after per-suite sources unregister, like the profiler).
  counterSetInto(W, nativeGlobalStats());
  // Procedure summary cache (process-wide store; DESIGN.md §4g).
  counterSetInto(W, summaryGlobalStats());
  // Execution journal self-accounting (DESIGN.md §4i).
  counterSetInto(W, journal::journalStats());

  // The active path-selection strategy, info-metric style: the numeric
  // gillian_scheduler_strategy gauge above carries the enum value; this
  // series carries the human-readable name as a label, value always 1.
  W.gauge("gillian_scheduler_strategy_info", uint64_t(1),
          {{"strategy", scheduleStrategyLabel()}});

  // Per-worker deque depths — a dynamic gauge family.
  WorkerDepthGauges &D = WorkerDepthGauges::instance();
  uint32_t Tracked = D.tracked();
  for (uint32_t I = 0; I < Tracked; ++I)
    W.gauge("gillian_scheduler_worker_queue_depth", D.depth(I),
            {{"worker", std::to_string(I)}});

  // Span table: monotone per-layer time and counts, labelled by kind.
  SpanSnapshot Spans = SpanTable::global().snapshot();
  for (size_t I = 0; I < NumSpanKinds; ++I) {
    SpanKind K = static_cast<SpanKind>(I);
    if (Spans.count(K) == 0)
      continue;
    PromLabels L{{"kind", std::string(spanKindName(K))}};
    W.counter("gillian_span_total_ns", Spans.totalNs(K), L);
    W.counter("gillian_span_self_ns", Spans.selfNs(K), L);
    W.counter("gillian_span_count", Spans.count(K), L);
  }

  // Per-(language, action) symbolic-memory counters.
  for (const auto &[Lang, Actions] : ActionCounters::instance().snapshot())
    for (const auto &[Action, N] : Actions)
      W.counter("gillian_actions_executed", N,
                {{"lang", Lang}, {"action", Action}});

  // Solver hot-query profiler: the top sites by wall time, plus the
  // attribution coverage pair.
  QueryProfiler &QP = QueryProfiler::instance();
  for (const QueryProfiler::Site &S : QP.topN(16)) {
    PromLabels L{{"proc", S.Proc}, {"cmd_idx", std::to_string(S.CmdIdx)}};
    W.counter("gillian_solver_hot_query_wall_ns", S.WallNs, L);
    W.counter("gillian_solver_hot_query_calls", S.Calls, L);
    W.counter("gillian_solver_hot_query_cache_misses", S.CacheMisses, L);
  }
  W.counter("gillian_solver_query_attributed_ns", QP.attributedNs());
  W.counter("gillian_solver_query_unattributed_ns", QP.unattributedNs());

  // Target-program branch coverage: totals + per-procedure series.
  BranchCoverage &Cov = BranchCoverage::instance();
  uint64_t Covered = 0, Total = 0;
  for (const BranchCoverage::ProcCoverage &P : Cov.snapshot()) {
    PromLabels L{{"proc", P.Proc}};
    W.gauge("gillian_coverage_branch_outcomes_covered",
            static_cast<uint64_t>(P.OutcomesCovered), L);
    // "possible", not "total": the _total suffix is reserved for counters
    // in the exposition format (scripts/prom_lint.sh enforces this).
    W.gauge("gillian_coverage_branch_outcomes_possible",
            static_cast<uint64_t>(P.outcomesTotal()), L);
    Covered += P.OutcomesCovered;
    Total += P.outcomesTotal();
  }
  W.gauge("gillian_coverage_outcomes_covered", Covered);
  W.gauge("gillian_coverage_outcomes_possible", Total);

  // Live per-run sources (ExecStats / SolverStats of whatever is running).
  MetricsRegistry::instance().render(W);

  return W.take();
}

std::string gillian::obs::progressJson(RateTracker &Rates) {
  RateTracker::Rates R = Rates.sample();
  ProgressCounters &P = progressCounters();
  WorkerDepthGauges &D = WorkerDepthGauges::instance();
  SchedCounters &Sched = schedCounters();

  JsonWriter W;
  W.beginObject();
  W.field("paths_finished", P.PathsFinished.load());
  W.field("solver_queries", P.SolverQueries.load());
  W.field("tests_started", P.TestsStarted.load());
  W.field("frontier_size", Sched.FrontierSize.load());
  W.field("pool_workers", Sched.PoolWorkers.load());
  W.field("strategy", scheduleStrategyLabel());
  W.key("workers");
  W.beginArray();
  uint32_t Tracked = D.tracked();
  for (uint32_t I = 0; I < Tracked; ++I)
    W.value(D.depth(I));
  W.endArray();
  W.field("paths_per_sec", R.PathsPerSec, 3);
  W.field("queries_per_sec", R.QueriesPerSec, 3);
  W.field("window_ms", metricsWindowMs());
  uint64_t Covered = 0, Total = 0;
  BranchCoverage::instance().totals(Covered, Total);
  W.key("coverage");
  W.beginObject();
  W.field("outcomes_covered", Covered);
  W.field("outcomes_total", Total);
  W.endObject();
  W.endObject();
  return W.take();
}

bool gillian::obs::parseHostPort(const std::string &Spec, std::string &Host,
                                 uint16_t &Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0)
    return false;
  Host = Spec.substr(0, Colon);
  const std::string PortStr = Spec.substr(Colon + 1);
  if (PortStr.empty())
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(PortStr.c_str(), &End, 10);
  if (End == nullptr || *End != '\0' || V > 65535)
    return false;
  Port = static_cast<uint16_t>(V);
  return true;
}

HttpResponse IntrospectServer::route(const HttpRequest &Req) {
  HttpResponse R;
  if (Req.Target == "/healthz") {
    R.Body = "ok\n";
  } else if (Req.Target == "/metrics") {
    R.ContentType = "text/plain; version=0.0.4; charset=utf-8";
    R.Body = metricsExposition();
  } else if (Req.Target == "/stats") {
    R.ContentType = "application/json";
    R.Body = obsStatsJson(SpanTable::global().snapshot());
    R.Body += '\n';
  } else if (Req.Target == "/trace") {
    R.ContentType = "application/json";
    R.Body = chromeTraceJson(TraceRecorder::instance().drain());
    R.Body += '\n';
  } else if (Req.Target == "/progress") {
    R.ContentType = "application/json";
    R.Body = progressJson(Rates);
    R.Body += '\n';
  } else if (Req.Target == "/tree") {
    // Live path tree from the in-process journal: /tree?depth=N (default
    // 4). {"enabled":false,...} when the journal is off.
    size_t Depth = 4;
    size_t Q = Req.Query.find("depth=");
    if (Q != std::string::npos) {
      unsigned long V = std::strtoul(Req.Query.c_str() + Q + 6, nullptr, 10);
      if (V > 0)
        Depth = V;
    }
    R.ContentType = "application/json";
    R.Body = journal::liveTreeJson(Depth);
    R.Body += '\n';
  } else {
    R.Status = 404;
    R.Body = "not found\n";
  }
  return R;
}

uint16_t IntrospectServer::start(const std::string &Host, uint16_t Port) {
  return Server.start(Host, Port,
                      [this](const HttpRequest &Req) { return route(Req); });
}

uint16_t IntrospectServer::start(const std::string &Spec) {
  std::string Host;
  uint16_t Port = 0;
  if (!parseHostPort(Spec, Host, Port))
    return 0;
  return start(Host, Port);
}

IntrospectServer &gillian::obs::processIntrospectServer() {
  static IntrospectServer S;
  return S;
}

uint16_t gillian::obs::startProcessIntrospection(const std::string &Spec) {
  IntrospectServer &S = processIntrospectServer();
  if (S.running())
    return S.port();
  std::string Host;
  uint16_t Port = 0;
  if (!parseHostPort(Spec, Host, Port)) {
    std::fprintf(stderr, "[obs] invalid serve spec '%s' (want host:port)\n",
                 Spec.c_str());
    return 0;
  }
  uint16_t Bound = S.start(Host, Port);
  if (Bound == 0) {
    std::fprintf(stderr, "[obs] failed to bind introspection server on %s\n",
                 Spec.c_str());
    return 0;
  }
  // /trace is useless without events; serving implies recording.
  TraceRecorder::instance().enable();
  std::fprintf(stderr,
               "[obs] introspection server listening on http://%s:%u\n",
               Host.c_str(), static_cast<unsigned>(Bound));
  return Bound;
}

void gillian::obs::maybeStartEnvIntrospection() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    if (const char *Spec = std::getenv("GILLIAN_SERVE"))
      if (*Spec)
        startProcessIntrospection(Spec);
  });
}
