file(REMOVE_RECURSE
  "libgillian_while.a"
)
