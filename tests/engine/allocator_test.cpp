//===- tests/engine/allocator_test.cpp ------------------------------------===//

#include "engine/allocator.h"

#include <gtest/gtest.h>

using namespace gillian;

TEST(Allocator, SiteIndexedFreshness) {
  SymbolicAllocator A;
  Value U0 = A.allocUSym(0);
  Value U1 = A.allocUSym(0);
  Value U2 = A.allocUSym(1);
  EXPECT_NE(U0, U1);
  EXPECT_NE(U0, U2);
  EXPECT_EQ(U0.asSym().str(), "$u_0_0");
  EXPECT_EQ(U1.asSym().str(), "$u_0_1");
  EXPECT_EQ(U2.asSym().str(), "$u_1_0");
}

TEST(Allocator, ISymProducesLogicalVariables) {
  SymbolicAllocator A;
  Expr I = A.allocISym(3);
  ASSERT_TRUE(I.isLVar());
  EXPECT_EQ(I.varName().str(), "#i_3_0");
}

TEST(Allocator, ConcreteMatchesSymbolicNaming) {
  // Allocator interpretation (Def 3.8): the concrete allocator's uSym
  // picks exactly the symbol the symbolic allocator picks, so I(ε, ·) on
  // locations is the identity on symbols.
  SymbolicAllocator S;
  ConcreteAllocator C;
  for (uint32_t Site : {0u, 0u, 2u, 0u, 2u})
    EXPECT_EQ(S.allocUSym(Site), C.allocUSym(Site));
}

TEST(Allocator, ScriptedISymDirectsConcreteRun) {
  ConcreteAllocator C;
  C.scriptISym(1, 0, Value::strV("directed"));
  EXPECT_EQ(C.allocISym(1).asStr().str(), "directed");
  // Unscripted allocations fall back to the arbitrary default.
  EXPECT_EQ(C.allocISym(1), Value::intV(0));
}

TEST(AllocRecord, RestrictionAxioms) {
  // Def 3.1: idempotence, right-commutativity, weakening — on allocation
  // records with the per-site-max restriction.
  AllocRecord A, B, C;
  A.next(0);
  B.next(0);
  B.next(0);
  C.next(1);

  // Idempotence: x |x = x.
  AllocRecord AA = A;
  AA.restrictWith(A);
  EXPECT_EQ(AA, A);

  // Right commutativity: (x |y) |z = (x |z) |y.
  AllocRecord X1 = A, X2 = A;
  X1.restrictWith(B);
  X1.restrictWith(C);
  X2.restrictWith(C);
  X2.restrictWith(B);
  EXPECT_EQ(X1, X2);

  // Weakening: x |y |z = x  =>  x |y = x.
  AllocRecord Y = B; // B already dominates A
  AllocRecord BA = B;
  BA.restrictWith(A);
  ASSERT_EQ(BA, B);
  AllocRecord W = B;
  W.restrictWith(A);
  W.restrictWith(A);
  EXPECT_EQ(W, B);
  (void)Y;
}

TEST(AllocRecord, RestrictionMonotoneUnderAllocation) {
  // Def 3.3: allocation only refines the record (ξ' ⊑ ξ).
  AllocRecord R;
  AllocRecord Before = R;
  R.next(4);
  EXPECT_TRUE(R.refines(Before));
  EXPECT_FALSE(Before.refines(R));
}

TEST(AllocRecord, RefinesIsPreorder) {
  AllocRecord A, B;
  EXPECT_TRUE(A.refines(A));
  A.next(0);
  B.next(0);
  B.next(1);
  EXPECT_TRUE(B.refines(A));
  AllocRecord C = B;
  C.next(0);
  EXPECT_TRUE(C.refines(B));
  EXPECT_TRUE(C.refines(A)) << "transitivity";
}
