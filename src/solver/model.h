//===- solver/model.h - Logical environments ε -----------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logical environments ε : X̂ ⇀ V (§3.2), mapping logical variables to
/// concrete values. Models double as (a) the counter-models reported for
/// failed assertions, and (b) the interpretation environments used by the
/// §3 soundness machinery (memory interpretation functions I(ε, ·) and the
/// restricted-soundness replay tests).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_MODEL_H
#define GILLIAN_SOLVER_MODEL_H

#include "gil/expr.h"
#include "solver/path_condition.h"

#include <map>
#include <optional>

namespace gillian {

/// A logical environment ε. Total on the variables it binds; evaluation
/// under a model fails on unbound logical variables.
class Model {
public:
  void bind(InternedString LVar, Value V) { Env[LVar] = std::move(V); }
  const Value *lookup(InternedString LVar) const {
    auto It = Env.find(LVar);
    return It == Env.end() ? nullptr : &It->second;
  }
  const std::map<InternedString, Value> &bindings() const { return Env; }
  bool empty() const { return Env.empty(); }

  /// JêKε: substitutes bound logical variables and evaluates. Fails if the
  /// expression still contains free variables or faults.
  Result<Value> eval(const Expr &E) const;

  /// True iff every conjunct of \p PC evaluates to `true` under this
  /// model. This is the no-false-positives gate: a bug report is only
  /// emitted when its counter-model passes this check.
  bool satisfies(const PathCondition &PC) const;

  std::string toString() const;

private:
  std::map<InternedString, Value> Env;
};

} // namespace gillian

#endif // GILLIAN_SOLVER_MODEL_H
