//===- support/rng.h - Deterministic RNG for tests -------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64) used by property-based tests and
/// workload generators so runs are reproducible without seeding global
/// state.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_RNG_H
#define GILLIAN_SUPPORT_RNG_H

#include <cstdint>

namespace gillian {

/// splitmix64: tiny, fast, and statistically fine for test-case generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  bool flip() { return (next() & 1) != 0; }

private:
  uint64_t State;
};

} // namespace gillian

#endif // GILLIAN_SUPPORT_RNG_H
