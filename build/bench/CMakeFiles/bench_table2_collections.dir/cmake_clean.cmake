file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_collections.dir/bench_table2_collections.cpp.o"
  "CMakeFiles/bench_table2_collections.dir/bench_table2_collections.cpp.o.d"
  "bench_table2_collections"
  "bench_table2_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
