file(REMOVE_RECURSE
  "libgillian_solver.a"
)
