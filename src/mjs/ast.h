//===- mjs/ast.h - MJS, the Gillian-JS target language ---------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MJS is the JavaScript-like language of our Gillian-JS reproduction
/// (§4.1). It has the memory-model shape that makes JS interesting for
/// Gillian — dynamic objects, *computed* property names, property
/// deletion, object metadata — together with dynamic typing, JS-style
/// truthiness and coercing `+`. Numbers are IEEE doubles (GIL Num);
/// `undefined` and `null` are the uninterpreted symbols $undefined and
/// $null, exactly as the paper describes instantiation-specific constants.
///
/// Deliberate restrictions (documented in DESIGN.md): no closures or
/// `this` — the Buckets-style library is written in function style — and
/// `==` is strict (===).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MJS_AST_H
#define GILLIAN_MJS_AST_H

#include "support/interner.h"

#include <memory>
#include <string>
#include <vector>

namespace gillian::mjs {

enum class JsExprKind : uint8_t {
  Num,      ///< numeric literal (double)
  Str,      ///< string literal
  Bool,     ///< true / false
  Undefined,///< undefined
  Null,     ///< null
  Var,      ///< identifier
  Unary,    ///< ! - typeof
  Binary,   ///< + - * / % == != === !== < <= > >= && ||
  Member,   ///< o.p (static) and o[e] (computed)
  Call,     ///< f(e...)
  Object,   ///< { p: e, ... }
  Array,    ///< [e, ...]
};

enum class JsUnOp : uint8_t { Not, Neg, TypeOf };

enum class JsBinOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne,          ///< strict, like === / !==
  Lt, Le, Gt, Ge,
  And, Or,         ///< short-circuiting on truthiness
};

struct JsExpr;
using JsExprPtr = std::shared_ptr<JsExpr>;

struct JsExpr {
  JsExprKind Kind;
  double NumVal = 0;
  std::string StrVal;       ///< Str literal / Var name / static member name
  bool BoolVal = false;
  JsUnOp UOp = JsUnOp::Not;
  JsBinOp BOp = JsBinOp::Add;
  JsExprPtr Lhs, Rhs;       ///< Unary child in Lhs; Member base in Lhs,
                            ///< computed index in Rhs (null when static)
  std::string Callee;       ///< Call
  std::vector<JsExprPtr> Args; ///< Call args / Array elements
  std::vector<std::pair<std::string, JsExprPtr>> Props; ///< Object literal
  int Line = 0;
};

enum class JsStmtKind : uint8_t {
  VarDecl,   ///< var x = e;
  Assign,    ///< x = e;
  MemberSet, ///< o.p = e;  /  o[i] = e;
  Delete,    ///< delete o.p;  /  delete o[i];
  ExprStmt,  ///< e;  (for call side effects)
  If,
  While,
  For,       ///< for (init; cond; step) { ... }
  Return,
  Assume,    ///< Assume(e);
  Assert,    ///< Assert(e);
  SymbInput, ///< var x = symb_number() / symb_string() / symb_bool() /
             ///< symb_any();
};

struct JsStmt {
  JsStmtKind Kind;
  std::string Name;       ///< VarDecl/Assign/SymbInput target
  JsExprPtr E;            ///< main expression / condition
  JsExprPtr Obj, Idx, Val;///< MemberSet / Delete parts (Idx null = static,
                          ///< with Name holding the property)
  std::vector<JsStmt> Then, Else, Init, Step;
  std::string SymbKind;   ///< "number" / "string" / "bool" / "any"
  int Line = 0;
};

struct JsFunc {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<JsStmt> Body;
};

struct JsProgram {
  std::vector<JsFunc> Funcs;

  const JsFunc *find(std::string_view Name) const {
    for (const JsFunc &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace gillian::mjs

#endif // GILLIAN_MJS_AST_H
