//===- tests/targets/legacy/while_memory.cpp ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/while_lang/memory.cpp as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::whilelang -> gillian::legacy.
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- while_lang/memory.cpp ----------------------------------------------===//

#include "while_memory.h"

#include "engine/action_args.h"
#include "obs/action_counters.h"
#include "solver/simplifier.h"
#include "while_lang/compiler.h"

using namespace gillian;
using namespace gillian::whilelang; // action names (compiler.h)
using namespace gillian::legacy;

//===----------------------------------------------------------------------===//
// Concrete memory
//===----------------------------------------------------------------------===//

void WhileCMem::setProp(InternedString Loc, InternedString P, Value V) {
  const PropMap *Props = Objects.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Objects.set(Loc, std::move(NewProps));
}

Result<Value> WhileCMem::execAction(InternedString Act, const Value &Arg) {
  if (Act == actLookup()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    return lookup((*A)[0], (*A)[1]);
  }
  if (Act == actMutate()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    return mutate((*A)[0], (*A)[1], (*A)[2]);
  }
  if (Act == actDispose()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    return dispose((*A)[0]);
  }
  return Err("unknown While action '" + std::string(Act.str()) + "'");
}

Result<Value> WhileCMem::lookup(const Value &Loc, const Value &Prop) {
  // [C-Lookup]: µ = _ ⊎ l.p -> v.
  if (!Loc.isSym())
    return Err("memory fault: lookup on non-location " + Loc.toString());
  if (!Prop.isStr())
    return Err("memory fault: non-string property " + Prop.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: lookup on disposed object " + Loc.toString());
  const PropMap *Props = Objects.lookup(Loc.asSym());
  if (!Props)
    return Err("memory fault: lookup on unknown object " + Loc.toString());
  const Value *V = Props->lookup(Prop.asStr());
  if (!V)
    return Err("memory fault: object " + Loc.toString() +
               " has no property " + Prop.toString());
  return *V;
}

Result<Value> WhileCMem::mutate(const Value &Loc, const Value &Prop,
                                const Value &V) {
  // [C-Mutate-Present] / [C-Mutate-Absent].
  if (!Loc.isSym())
    return Err("memory fault: mutate on non-location " + Loc.toString());
  if (!Prop.isStr())
    return Err("memory fault: non-string property " + Prop.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: mutate on disposed object " + Loc.toString());
  setProp(Loc.asSym(), Prop.asStr(), V);
  return V;
}

Result<Value> WhileCMem::dispose(const Value &Loc) {
  if (!Loc.isSym())
    return Err("memory fault: dispose on non-location " + Loc.toString());
  if (Disposed.contains(Loc.asSym()))
    return Err("memory fault: double dispose of " + Loc.toString());
  if (!Objects.contains(Loc.asSym()))
    return Err("memory fault: dispose of unknown object " + Loc.toString());
  Objects.erase(Loc.asSym());
  Disposed.set(Loc.asSym(), true);
  return Value::boolV(true);
}

std::string WhileCMem::toString() const {
  std::string Out = "{";
  for (const auto &[Loc, Props] : Objects) {
    Out += " " + std::string(Loc.str()) + " -> {";
    for (const auto &[P, V] : Props)
      Out += " " + std::string(P.str()) + ": " + V.toString() + ";";
    Out += " }";
  }
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Symbolic memory
//===----------------------------------------------------------------------===//

namespace {

/// Classifies the aliasing condition Loc == Key under PC: definitely true,
/// definitely false, or contingent (in which case the branch carries the
/// equality as its π', per [S-Lookup]).
enum class AliasKind { Yes, No, Maybe };

AliasKind aliasKind(const Expr &Loc, const Expr &Key, const PathCondition &PC,
                    Solver &S, Expr &CondOut) {
  Expr C = simplify(Expr::eq(Loc, Key));
  if (C.isTrue())
    return AliasKind::Yes;
  if (C.isFalse())
    return AliasKind::No;
  PathCondition Ext = PC;
  Ext.add(C);
  if (!S.maybeSat(Ext))
    return AliasKind::No;
  CondOut = C;
  return AliasKind::Maybe;
}

} // namespace

void WhileSMem::setProp(const Expr &Loc, InternedString P, Expr V) {
  const PropMap *Props = Objects.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Objects.set(Loc, std::move(NewProps));
}

Result<std::vector<SymActionBranch<WhileSMem>>>
WhileSMem::execAction(InternedString Act, const Expr &Arg,
                      const PathCondition &PC, Solver &S) const {
  obs::ActionCounters::bump("while", Act);
  if (Act == actLookup()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> P = concreteStr((*A)[1]);
    if (!P)
      return Err(P.error());
    return lookup((*A)[0], *P, PC, S);
  }
  if (Act == actMutate()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 3);
    if (!A)
      return Err(A.error());
    Result<InternedString> P = concreteStr((*A)[1]);
    if (!P)
      return Err(P.error());
    return mutate((*A)[0], *P, (*A)[2], PC, S);
  }
  if (Act == actDispose()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 1);
    if (!A)
      return Err(A.error());
    return dispose((*A)[0], PC, S);
  }
  return Err("unknown While action '" + std::string(Act.str()) + "'");
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::lookup(const Expr &Loc, InternedString Prop,
                  const PathCondition &PC, Solver &S) const {
  std::vector<SymActionBranch<WhileSMem>> Out;
  // Disposed aliases fault.
  Expr NotDisposedCond = Expr::boolE(true);
  for (const auto &[D, _] : Disposed) {
    Expr Cond;
    switch (aliasKind(Loc, D, PC, S, Cond)) {
    case AliasKind::Yes:
      Out.push_back({*this,
                     Expr::strE("memory fault: lookup on disposed object"),
                     Expr(), /*IsError=*/true});
      return Out;
    case AliasKind::No:
      break;
    case AliasKind::Maybe:
      Out.push_back({*this,
                     Expr::strE("memory fault: lookup on disposed object"),
                     Cond, /*IsError=*/true});
      NotDisposedCond =
          simplify(Expr::andE(NotDisposedCond, Expr::notE(Cond)));
      break;
    }
  }

  // [S-Lookup]: branch over every potentially-aliasing stored location.
  Expr MissCond = NotDisposedCond;
  for (const auto &[Key, Props] : Objects) {
    Expr Cond;
    AliasKind K = aliasKind(Loc, Key, PC, S, Cond);
    if (K == AliasKind::No)
      continue;
    Expr Taken = K == AliasKind::Yes
                     ? NotDisposedCond
                     : simplify(Expr::andE(NotDisposedCond, Cond));
    const Expr *V = Props.lookup(Prop);
    if (V) {
      Out.push_back({*this, *V, Taken, /*IsError=*/false});
    } else {
      Out.push_back({*this,
                     Expr::strE("memory fault: object has no property " +
                                std::string(Prop.str())),
                     Taken, /*IsError=*/true});
    }
    if (K == AliasKind::Yes)
      return Out; // a definite alias: no other branch is reachable
    MissCond = simplify(Expr::andE(MissCond, Expr::notE(Cond)));
  }
  // Residual branch: no stored location matches -> fault.
  if (!MissCond.isFalse()) {
    PathCondition Ext = PC;
    Ext.add(MissCond);
    if (S.maybeSat(Ext))
      Out.push_back({*this, Expr::strE("memory fault: lookup on unknown object"),
                     MissCond, /*IsError=*/true});
  }
  return Out;
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::mutate(const Expr &Loc, InternedString Prop, const Expr &V,
                  const PathCondition &PC, Solver &S) const {
  std::vector<SymActionBranch<WhileSMem>> Out;
  Expr NotDisposedCond = Expr::boolE(true);
  for (const auto &[D, _] : Disposed) {
    Expr Cond;
    switch (aliasKind(Loc, D, PC, S, Cond)) {
    case AliasKind::Yes:
      Out.push_back({*this,
                     Expr::strE("memory fault: mutate on disposed object"),
                     Expr(), /*IsError=*/true});
      return Out;
    case AliasKind::No:
      break;
    case AliasKind::Maybe:
      Out.push_back({*this,
                     Expr::strE("memory fault: mutate on disposed object"),
                     Cond, /*IsError=*/true});
      NotDisposedCond =
          simplify(Expr::andE(NotDisposedCond, Expr::notE(Cond)));
      break;
    }
  }

  // [S-Mutate-Present]: update every potentially-aliasing object.
  Expr AbsentCond = NotDisposedCond;
  for (const auto &[Key, Props] : Objects) {
    (void)Props;
    Expr Cond;
    AliasKind K = aliasKind(Loc, Key, PC, S, Cond);
    if (K == AliasKind::No)
      continue;
    WhileSMem Next = *this;
    Next.setProp(Key, Prop, V);
    Expr Taken = K == AliasKind::Yes
                     ? NotDisposedCond
                     : simplify(Expr::andE(NotDisposedCond, Cond));
    Out.push_back({std::move(Next), Expr::boolE(true), Taken,
                   /*IsError=*/false});
    if (K == AliasKind::Yes)
      return Out;
    AbsentCond = simplify(Expr::andE(AbsentCond, Expr::notE(Cond)));
  }
  // [S-Mutate-Absent]: the location is new; extend the memory.
  if (!AbsentCond.isFalse()) {
    PathCondition Ext = PC;
    Ext.add(AbsentCond);
    if (S.maybeSat(Ext)) {
      WhileSMem Next = *this;
      Next.setProp(Loc, Prop, V);
      Out.push_back({std::move(Next), Expr::boolE(true), AbsentCond,
                     /*IsError=*/false});
    }
  }
  return Out;
}

std::vector<SymActionBranch<WhileSMem>>
WhileSMem::dispose(const Expr &Loc, const PathCondition &PC,
                   Solver &S) const {
  std::vector<SymActionBranch<WhileSMem>> Out;
  Expr NotDisposedCond = Expr::boolE(true);
  for (const auto &[D, _] : Disposed) {
    Expr Cond;
    switch (aliasKind(Loc, D, PC, S, Cond)) {
    case AliasKind::Yes:
      Out.push_back({*this, Expr::strE("memory fault: double dispose"),
                     Expr(), /*IsError=*/true});
      return Out;
    case AliasKind::No:
      break;
    case AliasKind::Maybe:
      Out.push_back({*this, Expr::strE("memory fault: double dispose"), Cond,
                     /*IsError=*/true});
      NotDisposedCond =
          simplify(Expr::andE(NotDisposedCond, Expr::notE(Cond)));
      break;
    }
  }

  Expr MissCond = NotDisposedCond;
  for (const auto &[Key, Props] : Objects) {
    (void)Props;
    Expr Cond;
    AliasKind K = aliasKind(Loc, Key, PC, S, Cond);
    if (K == AliasKind::No)
      continue;
    WhileSMem Next = *this;
    Next.Objects.erase(Key);
    Next.Disposed.set(Key, true);
    Expr Taken = K == AliasKind::Yes
                     ? NotDisposedCond
                     : simplify(Expr::andE(NotDisposedCond, Cond));
    Out.push_back({std::move(Next), Expr::boolE(true), Taken,
                   /*IsError=*/false});
    if (K == AliasKind::Yes)
      return Out;
    MissCond = simplify(Expr::andE(MissCond, Expr::notE(Cond)));
  }
  if (!MissCond.isFalse()) {
    PathCondition Ext = PC;
    Ext.add(MissCond);
    if (S.maybeSat(Ext))
      Out.push_back({*this,
                     Expr::strE("memory fault: dispose of unknown object"),
                     MissCond, /*IsError=*/true});
  }
  return Out;
}

std::string WhileSMem::toString() const {
  std::string Out = "{";
  for (const auto &[Loc, Props] : Objects) {
    Out += " " + Loc.toString() + " -> {";
    for (const auto &[P, V] : Props)
      Out += " " + std::string(P.str()) + ": " + V.toString() + ";";
    Out += " }";
  }
  return Out + " }";
}

//===----------------------------------------------------------------------===//
// Memory interpretation I_W (§3.3)
//===----------------------------------------------------------------------===//

Result<WhileCMem> gillian::legacy::interpretMemory(const Model &Eps,
                                                      const WhileSMem &SMem) {
  WhileCMem Out;
  for (const auto &[LocE, Props] : SMem.objects()) {
    Result<Value> Loc = Eps.eval(LocE);
    if (!Loc)
      return Err("interpretation failure on location " + LocE.toString() +
                 ": " + Loc.error());
    if (!Loc->isSym())
      return Err("location " + LocE.toString() +
                 " interprets to a non-symbol " + Loc->toString());
    if (Out.objects().contains(Loc->asSym()))
      return Err("locations collapse under the model: " + Loc->toString());
    // Ensure the object exists even when it has no properties.
    for (const auto &[P, VE] : Props) {
      Result<Value> V = Eps.eval(VE);
      if (!V)
        return Err("interpretation failure on " + VE.toString() + ": " +
                   V.error());
      Out.setProp(Loc->asSym(), P, V.take());
    }
    if (Props.empty())
      Out.setProp(Loc->asSym(), InternedString::get("__exists"),
                  Value::boolV(true));
  }
  for (const auto &[DE, _] : SMem.disposed()) {
    Result<Value> D = Eps.eval(DE);
    if (!D)
      return Err("interpretation failure on disposed location " +
                 DE.toString());
    if (!D->isSym())
      return Err("disposed location interprets to a non-symbol");
    Out.markDisposed(D->asSym());
  }
  return Out;
}
