//===- mjs/compiler.h - MJS -> GIL compiler --------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MJS-to-GIL compiler (the Gillian-JS compiler of §4.1). Memory
/// operations compile to the eight-action JS memory model, the control
/// flow of MJS compiles trivially to GIL gotos, and the dynamic semantics
/// (truthiness, coercing `+`, typeof, property keys) compile to calls into
/// the GIL runtime library — the paper's "trusted compiler preserving the
/// TL memory model and semantics" discipline.
///
/// Expressions are linearised (A-normal form): member accesses, calls and
/// literals that need heap allocation compile to temporaries; pure
/// arithmetic stays expression-level, preceded by compiler-emitted type
/// guards that the type-aware simplifier folds away whenever the path
/// condition pins operand types.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MJS_COMPILER_H
#define GILLIAN_MJS_COMPILER_H

#include "gil/prog.h"
#include "mjs/ast.h"
#include "support/result.h"

namespace gillian::mjs {

/// Compiles \p P and links the MJS runtime into the result.
Result<Prog> compileMjs(const JsProgram &P);

/// Parses and compiles in one step.
Result<Prog> compileMjsSource(std::string_view Source);

} // namespace gillian::mjs

#endif // GILLIAN_MJS_COMPILER_H
