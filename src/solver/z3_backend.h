//===- solver/z3_backend.h - SMT backend over libz3 ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT layer of the first-order solver. GIL expressions are encoded
/// into Z3 terms using the type assignment produced by inferTypes: Int as
/// SMT Int, Num as Real, Bool as Bool, Str as String, and Sym/Type/Proc as
/// tagged integers (uninterpreted symbols are pairwise-distinct by
/// construction since they encode as their interned ids).
///
/// Conjuncts that do not encode (lists, bit-level operators on symbolic
/// operands, ...) are *dropped* before solving. Dropping weakens the
/// formula, so:
///  - Unsat answers remain sound (a subset already contradicts);
///  - Sat answers are downgraded to Unknown when anything was dropped, and
///    all models are verified by evaluation before being trusted.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_Z3_BACKEND_H
#define GILLIAN_SOLVER_Z3_BACKEND_H

#include "solver/model.h"
#include "solver/syntactic.h"
#include "solver/type_infer.h"

#include <optional>

namespace gillian {

/// Result of a Z3 query: the verdict, an optional candidate model (to be
/// verified by the caller), and whether any conjunct had to be dropped.
struct Z3Outcome {
  SatResult Verdict = SatResult::Unknown;
  std::optional<Model> CandidateModel;
  bool DroppedConjuncts = false;
};

/// True when this build carries the Z3 backend.
bool z3Available();

/// Checks \p PC with Z3 under the typing \p Types. When \p WantModel is
/// set and the query is satisfiable, a candidate model is extracted.
Z3Outcome checkSatZ3(const PathCondition &PC, const TypeEnv &Types,
                     bool WantModel);

} // namespace gillian

#endif // GILLIAN_SOLVER_Z3_BACKEND_H
