//===- obs/introspect/sampler.cpp -----------------------------------------===//

#include "obs/introspect/sampler.h"

#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "obs/progress.h"
#include "obs/sched_counters.h"

#include <chrono>

#include <fcntl.h>
#include <unistd.h>

using namespace gillian::obs;

namespace {
uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

HeartbeatSampler::Snapshot HeartbeatSampler::snap() const {
  ProgressCounters &P = progressCounters();
  return {nowNs(), P.PathsFinished.load(), P.SolverQueries.load()};
}

bool HeartbeatSampler::start(const std::string &Path, uint64_t Interval) {
  if (Running.load(std::memory_order_acquire))
    return false;
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd < 0)
    return false;
  IntervalMs = Interval < 10 ? 10 : Interval;
  StartNs = nowNs();
  Ticks.store(0, std::memory_order_relaxed);
  StopRequested = false;
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { loop(); });
  return true;
}

void HeartbeatSampler::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    StopRequested = true;
  }
  Cv.notify_all();
  if (Thread.joinable())
    Thread.join();
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

void HeartbeatSampler::writeLine(const Snapshot &Prev, const Snapshot &Now) {
  SchedCounters &Sched = schedCounters();
  WorkerDepthGauges &D = WorkerDepthGauges::instance();
  ProgressCounters &P = progressCounters();

  double Dt = Now.Ns > Prev.Ns
                  ? static_cast<double>(Now.Ns - Prev.Ns) * 1e-9
                  : 0.0;
  JsonWriter W;
  W.beginObject();
  W.field("t_ms", (Now.Ns - StartNs) / 1000000);
  W.field("paths_finished", Now.Paths);
  W.field("solver_queries", Now.Queries);
  W.field("tests_started", P.TestsStarted.load());
  W.field("paths_per_sec",
          Dt > 0.0 ? static_cast<double>(Now.Paths - Prev.Paths) / Dt : 0.0,
          3);
  W.field("queries_per_sec",
          Dt > 0.0 ? static_cast<double>(Now.Queries - Prev.Queries) / Dt
                   : 0.0,
          3);
  RateTracker::Rates WR = WindowRates.sample();
  W.field("paths_per_sec_window", WR.PathsPerSec, 3);
  W.field("queries_per_sec_window", WR.QueriesPerSec, 3);
  W.field("window_ms", metricsWindowMs());
  W.field("frontier_size", Sched.FrontierSize.load());
  W.field("pool_workers", Sched.PoolWorkers.load());
  W.field("strategy", scheduleStrategyLabel());
  W.key("workers");
  W.beginArray();
  uint32_t Tracked = D.tracked();
  for (uint32_t I = 0; I < Tracked; ++I)
    W.value(D.depth(I));
  W.endArray();
  uint64_t Covered = 0, Total = 0;
  BranchCoverage::instance().totals(Covered, Total);
  W.field("coverage_covered", Covered);
  W.field("coverage_total", Total);
  W.endObject();

  std::string Line = W.take();
  Line += '\n';
  // Single write() per line: JSONL lines from one sampler never interleave.
  [[maybe_unused]] ssize_t N = ::write(Fd, Line.data(), Line.size());
  Ticks.fetch_add(1, std::memory_order_relaxed);
}

void HeartbeatSampler::loop() {
  Snapshot Prev = snap();
  writeLine(Prev, Prev); // baseline line (rates 0)
  for (;;) {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Cv.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                    [this] { return StopRequested; }))
      break;
    Lock.unlock();
    Snapshot Now = snap();
    writeLine(Prev, Now);
    Prev = Now;
  }
  // Final line so a run shorter than one interval still records its end
  // state (and the last partial interval is not lost on long runs).
  Snapshot Now = snap();
  if (Now.Ns != Prev.Ns)
    writeLine(Prev, Now);
}
