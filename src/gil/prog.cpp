//===- gil/prog.cpp -------------------------------------------------------===//

#include "gil/prog.h"

using namespace gillian;

Cmd Cmd::assign(InternedString X, Expr E) {
  Cmd C;
  C.Kind = CmdKind::Assign;
  C.X = X;
  C.E = std::move(E);
  return C;
}

Cmd Cmd::ifGoto(Expr E, size_t Target) {
  Cmd C;
  C.Kind = CmdKind::IfGoto;
  C.E = std::move(E);
  C.Target = Target;
  return C;
}

Cmd Cmd::call(InternedString X, Expr Callee, Expr Arg) {
  Cmd C;
  C.Kind = CmdKind::Call;
  C.X = X;
  C.E = std::move(Callee);
  C.Arg = std::move(Arg);
  return C;
}

Cmd Cmd::ret(Expr E) {
  Cmd C;
  C.Kind = CmdKind::Return;
  C.E = std::move(E);
  return C;
}

Cmd Cmd::fail(Expr E) {
  Cmd C;
  C.Kind = CmdKind::Fail;
  C.E = std::move(E);
  return C;
}

Cmd Cmd::vanish() {
  Cmd C;
  C.Kind = CmdKind::Vanish;
  return C;
}

Cmd Cmd::action(InternedString X, InternedString Action, Expr Arg) {
  Cmd C;
  C.Kind = CmdKind::Action;
  C.X = X;
  C.Action = Action;
  C.E = std::move(Arg);
  return C;
}

Cmd Cmd::uSym(InternedString X, uint32_t Site) {
  Cmd C;
  C.Kind = CmdKind::USym;
  C.X = X;
  C.Site = Site;
  return C;
}

Cmd Cmd::iSym(InternedString X, uint32_t Site) {
  Cmd C;
  C.Kind = CmdKind::ISym;
  C.X = X;
  C.Site = Site;
  return C;
}

std::string Cmd::toString() const {
  switch (Kind) {
  case CmdKind::Assign:
    return std::string(X.str()) + " := " + E.toString();
  case CmdKind::IfGoto:
    return "ifgoto " + E.toString() + " " + std::to_string(Target);
  case CmdKind::Call:
    return std::string(X.str()) + " := " + E.toString() + "(" +
           Arg.toString() + ")";
  case CmdKind::Return:
    return "return " + E.toString();
  case CmdKind::Fail:
    return "fail " + E.toString();
  case CmdKind::Vanish:
    return "vanish";
  case CmdKind::Action:
    return std::string(X.str()) + " := @" + std::string(Action.str()) + "(" +
           E.toString() + ")";
  case CmdKind::USym:
    return std::string(X.str()) + " := usym(" + std::to_string(Site) + ")";
  case CmdKind::ISym:
    return std::string(X.str()) + " := isym(" + std::to_string(Site) + ")";
  }
  return "<bad-cmd>";
}

std::string Prog::toString() const {
  std::string Out;
  for (const auto &[Name, P] : Procs) {
    Out += "proc " + std::string(P.Name.str()) + "(" +
           std::string(P.Param.str()) + ") {\n";
    for (size_t I = 0, E = P.Body.size(); I != E; ++I)
      Out += "  " + std::to_string(I) + ": " + P.Body[I].toString() + ";\n";
    Out += "}\n\n";
  }
  return Out;
}
