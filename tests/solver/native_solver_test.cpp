//===- tests/solver/native_solver_test.cpp --------------------------------===//
//
// Units for the native theory solver (src/solver/native/): the watched-
// literal clause store, the undoable equality core, the session's frame
// reuse and verdicts, the async query service's dedup/subsumption, and the
// Solver::resetCache regression (native state must go cold too).
//
//===----------------------------------------------------------------------===//

#include "solver/native/clause_store.h"
#include "solver/native/equality_core.h"
#include "solver/native/native_session.h"
#include "solver/native/query_service.h"
#include "solver/solver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace gillian;
using namespace gillian::native;

namespace {

//===----------------------------------------------------------------------===//
// ClauseStore
//===----------------------------------------------------------------------===//

TEST(ClauseStoreTest, UnitPropagationChains) {
  ClauseStore CS;
  BVar A = CS.newVar(), B = CS.newVar(), C = CS.newVar();
  // (a) ∧ (¬a ∨ b) ∧ (¬b ∨ c) propagates to a=b=c=true.
  EXPECT_TRUE(CS.addClause({mkLit(A)}));
  EXPECT_TRUE(CS.addClause({mkLit(A, true), mkLit(B)}));
  EXPECT_TRUE(CS.addClause({mkLit(B, true), mkLit(C)}));
  EXPECT_TRUE(CS.propagate());
  EXPECT_EQ(CS.value(A), LBool::True);
  EXPECT_EQ(CS.value(B), LBool::True);
  EXPECT_EQ(CS.value(C), LBool::True);
}

TEST(ClauseStoreTest, PropagationConflict) {
  ClauseStore CS;
  BVar A = CS.newVar(), B = CS.newVar(), C = CS.newVar();
  // Assert the unit last so the conflict surfaces inside propagate(), not
  // eagerly at addClause time: a forces b forces c, contradicting ¬a ∨ ¬c.
  EXPECT_TRUE(CS.addClause({mkLit(A, true), mkLit(B)}));
  EXPECT_TRUE(CS.addClause({mkLit(B, true), mkLit(C)}));
  EXPECT_TRUE(CS.addClause({mkLit(A, true), mkLit(C, true)}));
  EXPECT_TRUE(CS.enqueue(mkLit(A)));
  EXPECT_FALSE(CS.propagate());
}

TEST(ClauseStoreTest, ConflictDetectedAtAssertTime) {
  ClauseStore CS;
  BVar A = CS.newVar(), B = CS.newVar();
  EXPECT_TRUE(CS.addClause({mkLit(A)}));
  EXPECT_TRUE(CS.addClause({mkLit(A, true), mkLit(B)})); // eagerly forces b
  // Every literal already false under the eager assignments: conflict now.
  EXPECT_FALSE(CS.addClause({mkLit(A, true), mkLit(B, true)}));
}

TEST(ClauseStoreTest, TautologyAndDuplicateHandling) {
  ClauseStore CS;
  BVar A = CS.newVar();
  // a ∨ ¬a is dropped; a ∨ a collapses to the unit a.
  EXPECT_TRUE(CS.addClause({mkLit(A), mkLit(A, true)}));
  EXPECT_EQ(CS.numClauses(), 0u);
  EXPECT_TRUE(CS.addClause({mkLit(A), mkLit(A)}));
  EXPECT_EQ(CS.numClauses(), 0u); // unit: enqueued, not stored
  EXPECT_EQ(CS.value(A), LBool::True);
}

TEST(ClauseStoreTest, PopToRestoresClausesAndTrail) {
  ClauseStore CS;
  BVar A = CS.newVar(), B = CS.newVar();
  EXPECT_TRUE(CS.addClause({mkLit(A), mkLit(B)}));
  ClauseStore::Mark M = CS.mark();
  EXPECT_TRUE(CS.addClause({mkLit(A, true)}));
  EXPECT_TRUE(CS.propagate());
  EXPECT_EQ(CS.value(B), LBool::True); // forced by ¬a and (a ∨ b)
  CS.popTo(M);
  EXPECT_EQ(CS.numClauses(), 1u);
  EXPECT_EQ(CS.value(A), LBool::Undef);
  EXPECT_EQ(CS.value(B), LBool::Undef);
  // The surviving clause still propagates correctly after the pop.
  EXPECT_TRUE(CS.enqueue(mkLit(A, true)));
  EXPECT_TRUE(CS.propagate());
  EXPECT_EQ(CS.value(B), LBool::True);
}

TEST(ClauseStoreTest, PhaseSavingRemembersLastValue) {
  ClauseStore CS;
  BVar A = CS.newVar();
  EXPECT_TRUE(CS.savedPhase(A)); // default phase: positive
  CS.enqueue(mkLit(A, true));
  CS.shrinkTrailTo(0);
  EXPECT_FALSE(CS.savedPhase(A));
}

//===----------------------------------------------------------------------===//
// EqualityCore
//===----------------------------------------------------------------------===//

TEST(EqualityCoreTest, EqualityChainAndDiseqConflict) {
  EqualityCore EC;
  TermId X = EC.intern(Expr::lvar("#x"));
  TermId Y = EC.intern(Expr::lvar("#y"));
  TermId Z = EC.intern(Expr::lvar("#z"));
  EXPECT_TRUE(EC.assertEq(X, Y));
  EXPECT_TRUE(EC.assertEq(Y, Z));
  EXPECT_TRUE(EC.impliedEqual(X, Z));
  EXPECT_FALSE(EC.assertDiseq(X, Z)); // x=y=z contradicts x≠z
}

TEST(EqualityCoreTest, DistinctLiteralsConflict) {
  EqualityCore EC;
  TermId X = EC.intern(Expr::lvar("#x"));
  TermId One = EC.intern(Expr::intE(1));
  TermId Two = EC.intern(Expr::intE(2));
  EXPECT_TRUE(EC.assertEq(X, One));
  size_t M = EC.mark();
  EXPECT_FALSE(EC.assertEq(X, Two));
  EC.undoTo(M);
  ASSERT_NE(EC.classValue(EC.find(X)), nullptr);
  EXPECT_EQ(*EC.classValue(EC.find(X)), Value::intV(1));
  EXPECT_TRUE(EC.impliedDistinct(One, Two));
}

TEST(EqualityCoreTest, CongruenceClosure) {
  EqualityCore EC;
  // x = y implies x+1 = y+1 by congruence; with x+1 ≠ y+1 recorded first,
  // asserting x = y must conflict.
  Expr X = Expr::lvar("#x"), Y = Expr::lvar("#y");
  TermId FX = EC.intern(Expr::add(X, Expr::intE(1)));
  TermId FY = EC.intern(Expr::add(Y, Expr::intE(1)));
  TermId TX = EC.intern(X), TY = EC.intern(Y);
  EXPECT_TRUE(EC.assertDiseq(FX, FY));
  size_t M = EC.mark();
  EXPECT_FALSE(EC.assertEq(TX, TY));
  EC.undoTo(M);
  EXPECT_FALSE(EC.impliedEqual(FX, FY));
}

TEST(EqualityCoreTest, UndoRestoresClassesExactly) {
  EqualityCore EC;
  TermId X = EC.intern(Expr::lvar("#x"));
  TermId Y = EC.intern(Expr::lvar("#y"));
  size_t M = EC.mark();
  EXPECT_TRUE(EC.assertEq(X, Y));
  EXPECT_TRUE(EC.impliedEqual(X, Y));
  EC.undoTo(M);
  EXPECT_FALSE(EC.impliedEqual(X, Y));
  EXPECT_EQ(EC.find(X), X);
  EXPECT_EQ(EC.find(Y), Y);
}

//===----------------------------------------------------------------------===//
// NativeSession
//===----------------------------------------------------------------------===//

PathCondition pcOf(std::initializer_list<Expr> Es) {
  PathCondition PC;
  for (const Expr &E : Es)
    PC.add(E);
  return PC;
}

TEST(NativeSessionTest, DecidesEqualityConflictUnsat) {
  NativeSession S;
  SolverStats St;
  TypeEnv Types;
  PathCondition PC = pcOf({Expr::eq(Expr::lvar("#x"), Expr::intE(1)),
                           Expr::eq(Expr::lvar("#x"), Expr::intE(2))});
  EXPECT_EQ(S.checkSat(PC, Types, St), SatResult::Unsat);
}

TEST(NativeSessionTest, DecidesDiseqChainSat) {
  // The bst/pqueue outlier shape: Num-typed variables in a bounded window,
  // ordered and pairwise distinct. The syntactic core cannot certify this
  // (its proposal collides); the native layer must, with a verified model.
  NativeSession S;
  SolverStats St;
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b"), C = Expr::lvar("#c");
  PathCondition PC = pcOf({
      Expr::le(Expr::numE(0.5), A), Expr::lt(A, Expr::numE(100.0)),
      Expr::le(Expr::numE(0.5), B), Expr::lt(B, Expr::numE(100.0)),
      Expr::le(Expr::numE(0.5), C), Expr::lt(C, Expr::numE(100.0)),
      Expr::notE(Expr::eq(A, B)), Expr::notE(Expr::eq(B, C)),
      Expr::notE(Expr::eq(A, C))});
  TypeEnv Types;
  ASSERT_TRUE(inferTypes(PC.conjuncts(), Types));
  EXPECT_EQ(S.checkSat(PC, Types, St), SatResult::Sat);
  EXPECT_GT(St.ModelsVerified.load(), 0u);
}

TEST(NativeSessionTest, TransitiveDiseqThroughEqualitiesUnsat) {
  NativeSession S;
  SolverStats St;
  TypeEnv Types;
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b"), C = Expr::lvar("#c");
  PathCondition PC = pcOf({Expr::eq(A, B), Expr::eq(B, C),
                           Expr::notE(Expr::eq(A, C))});
  EXPECT_EQ(S.checkSat(PC, Types, St), SatResult::Unsat);
}

TEST(NativeSessionTest, ReusesFramePrefixAcrossQueries) {
  NativeSession S;
  SolverStats St;
  TypeEnv Types;
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b");
  PathCondition P1 = pcOf({Expr::eq(A, Expr::intE(1))});
  ASSERT_TRUE(inferTypes(P1.conjuncts(), Types));
  EXPECT_EQ(S.checkSat(P1, Types, St), SatResult::Sat);
  EXPECT_EQ(S.depth(), 1u);

  // Re-asking the identical condition reuses every frame — this holds
  // regardless of where ExprOrdering places conjuncts.
  uint64_t ReusedBefore = St.NativeConjunctsReused.load();
  EXPECT_EQ(S.checkSat(P1, Types, St), SatResult::Sat);
  EXPECT_EQ(St.NativeConjunctsReused.load(), ReusedBefore + P1.size());
  EXPECT_EQ(S.depth(), 1u);

  // Extending query: the shared canonical prefix (if any — the new
  // conjunct may sort first) is reused, the delta pushed on top.
  PathCondition P2 = P1;
  P2.add(Expr::eq(B, Expr::intE(2)));
  size_t SharedPrefix = 0;
  while (SharedPrefix < P1.size() &&
         P1.conjuncts()[SharedPrefix] == P2.conjuncts()[SharedPrefix])
    ++SharedPrefix;
  EXPECT_EQ(S.reusableConjuncts(P2), SharedPrefix);
  ReusedBefore = St.NativeConjunctsReused.load();
  TypeEnv T2;
  ASSERT_TRUE(inferTypes(P2.conjuncts(), T2));
  EXPECT_EQ(S.checkSat(P2, T2, St), SatResult::Sat);
  EXPECT_EQ(St.NativeConjunctsReused.load(), ReusedBefore + SharedPrefix);
  EXPECT_EQ(S.assertedConjuncts(), P2.size());

  // Diverging query: frames past the shared prefix pop, verdict correct.
  PathCondition P3 = P1;
  P3.add(Expr::notE(Expr::eq(A, Expr::intE(1))));
  TypeEnv T3;
  EXPECT_EQ(S.checkSat(P3, T3, St), SatResult::Unsat);
}

TEST(NativeSessionTest, ConflictedPrefixAnswersExtensionsUnsat) {
  NativeSession S;
  SolverStats St;
  TypeEnv Types;
  Expr A = Expr::lvar("#a");
  PathCondition P1 = pcOf({Expr::eq(A, Expr::intE(1)),
                           Expr::eq(A, Expr::intE(2))});
  EXPECT_EQ(S.checkSat(P1, Types, St), SatResult::Unsat);
  PathCondition P2 = P1;
  P2.add(Expr::eq(Expr::lvar("#b"), Expr::intE(3)));
  EXPECT_EQ(S.checkSat(P2, Types, St), SatResult::Unsat);
}

TEST(NativeSessionTest, DisjunctionSearchFindsVerifiedModel) {
  NativeSession S;
  SolverStats St;
  Expr A = Expr::lvar("#a");
  // (a = 1 ∨ a = 2) ∧ a ≠ 1 forces a = 2 through search + theory.
  PathCondition PC = pcOf({Expr::orE(Expr::eq(A, Expr::intE(1)),
                                     Expr::eq(A, Expr::intE(2))),
                           Expr::notE(Expr::eq(A, Expr::intE(1)))});
  TypeEnv Types;
  ASSERT_TRUE(inferTypes(PC.conjuncts(), Types));
  EXPECT_EQ(S.checkSat(PC, Types, St), SatResult::Sat);
}

TEST(NativeSessionTest, ArithmeticFallsThroughUnknown) {
  NativeSession S;
  SolverStats St;
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b");
  // a + b == 10 is not decidable by the boolean/equality skeleton alone:
  // the model constructor has no arithmetic, so Unknown (delegate to Z3)
  // is the only sound answer here.
  PathCondition PC = pcOf({Expr::eq(Expr::add(A, B), Expr::intE(10)),
                           Expr::notE(Expr::eq(A, B)),
                           Expr::lt(A, B)});
  TypeEnv Types;
  ASSERT_TRUE(inferTypes(PC.conjuncts(), Types));
  EXPECT_NE(S.checkSat(PC, Types, St), SatResult::Unsat);
}

TEST(NativeSessionPoolTest, InvalidateAllDropsSessionsLazily) {
  NativeSessionPool &P = NativeSessionPool::forThread();
  P.reset();
  SolverStats St;
  TypeEnv Types;
  PathCondition PC = pcOf({Expr::eq(Expr::lvar("#x"), Expr::intE(1))});
  ASSERT_TRUE(inferTypes(PC.conjuncts(), Types));
  P.checkSat(PC, Types, St);
  EXPECT_GE(P.sessions(), 1u);
  NativeSessionPool::invalidateAll();
  EXPECT_EQ(P.sessions(), 0u);
}

//===----------------------------------------------------------------------===//
// Solver integration
//===----------------------------------------------------------------------===//

SolverOptions nativeOnlyOptions() {
  SolverOptions O;
  O.UseCache = false;
  O.UseSyntactic = false;
  O.UseSlicing = false;
  O.UseZ3 = false;
  O.UseNative = true;
  return O;
}

TEST(SolverNativeTest, NativeLayerDecidesWithoutZ3) {
  Solver S(nativeOnlyOptions());
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b");
  PathCondition PC = pcOf({Expr::eq(A, B),
                           Expr::notE(Expr::eq(A, B))});
  EXPECT_EQ(S.checkSat(PC), SatResult::Unsat);
  EXPECT_EQ(S.stats().Z3Calls.load(), 0u);
  EXPECT_GT(S.stats().NativeQueries.load(), 0u);
  EXPECT_GT(S.stats().NativeUnsat.load(), 0u);
}

TEST(SolverNativeTest, DiseqChainNeedsNoZ3RoundTrip) {
  // The BM_NativeDiseqChain acceptance shape at the Solver level: the
  // full default stack, native on — zero Z3 round-trips.
  SolverOptions O; // defaults: everything on
  O.UseCache = false;
  Solver S(O);
  S.resetCache();
  Expr A = Expr::lvar("#a"), B = Expr::lvar("#b"), C = Expr::lvar("#c");
  PathCondition PC = pcOf({
      Expr::le(Expr::numE(0.5), A), Expr::lt(A, Expr::numE(100.0)),
      Expr::le(Expr::numE(0.5), B), Expr::lt(B, Expr::numE(100.0)),
      Expr::le(Expr::numE(0.5), C), Expr::lt(C, Expr::numE(100.0)),
      Expr::notE(Expr::eq(A, B)), Expr::notE(Expr::eq(B, C)),
      Expr::notE(Expr::eq(A, C))});
  EXPECT_EQ(S.checkSat(PC), SatResult::Sat);
  EXPECT_EQ(S.stats().Z3Calls.load(), 0u);
}

TEST(SolverNativeTest, ResetCacheColdsNativeAndAsyncState) {
  // Regression (ISSUE 7 satellite): resetCache must also cold the native
  // clause stores and quiesce the async service, not only the result
  // cache and the incremental Z3 sessions.
  SolverOptions O = nativeOnlyOptions();
  O.AsyncSolvers = 2;
  Solver S(O);
  PathCondition PC = pcOf({Expr::eq(Expr::lvar("#x"), Expr::intE(1))});
  EXPECT_EQ(S.checkSat(PC), SatResult::Sat);
  EXPECT_GT(S.stats().AsyncSubmitted.load() +
                S.stats().AsyncInlineRuns.load(),
            0u);

  S.resetCache();
  // Native sessions of this thread are gone...
  EXPECT_EQ(native::NativeSessionPool::forThread().sessions(), 0u);
  // ...the async service is quiescent...
  EXPECT_EQ(SolverService::process().queueDepth(), 0u);
  // ...and the next query rebuilds state from scratch with the same
  // verdict (no stale frames answering for a cleared store).
  EXPECT_EQ(S.checkSat(PC), SatResult::Sat);
}

//===----------------------------------------------------------------------===//
// Async query service
//===----------------------------------------------------------------------===//

TEST(SolverServiceTest, DeduplicatesConcurrentIdenticalQueries) {
  SolverService &Svc = SolverService::process();
  Svc.flush();

  PathCondition PC = pcOf({Expr::eq(Expr::lvar("#q"), Expr::intE(7))});
  std::atomic<uint64_t> Solves{0};
  int Owner = 0;
  SolverService::SolveFn Slow = [&](const PathCondition &) {
    Solves.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return SatResult::Sat;
  };

  SolverStats St;
  constexpr int Callers = 6;
  std::vector<std::thread> Ts;
  std::vector<SatResult> Rs(Callers, SatResult::Unknown);
  for (int I = 0; I < Callers; ++I)
    Ts.emplace_back([&, I] {
      Rs[I] = Svc.checkSat(&Owner, PC, /*MaxWorkers=*/2, Slow, St);
    });
  for (std::thread &T : Ts)
    T.join();

  for (SatResult R : Rs)
    EXPECT_EQ(R, SatResult::Sat);
  // At least one submission deduplicated onto an in-flight future; the
  // solve count is strictly below the caller count.
  EXPECT_LT(Solves.load(), static_cast<uint64_t>(Callers));
  EXPECT_GT(St.AsyncDedupHits.load(), 0u);
  Svc.flush();
}

TEST(SolverServiceTest, InlineWhenDisabledOrOnWorker) {
  SolverService &Svc = SolverService::process();
  SolverStats St;
  int Owner = 0;
  PathCondition PC = pcOf({Expr::eq(Expr::lvar("#q"), Expr::intE(1))});
  bool Ran = false;
  SatResult R = Svc.checkSat(&Owner, PC, /*MaxWorkers=*/0,
                             [&](const PathCondition &) {
                               Ran = true;
                               return SatResult::Unsat;
                             },
                             St);
  EXPECT_TRUE(Ran);
  EXPECT_EQ(R, SatResult::Unsat);
  EXPECT_GT(St.AsyncInlineRuns.load(), 0u);
  EXPECT_FALSE(SolverService::onWorkerThread());
}

} // namespace
