file(REMOVE_RECURSE
  "CMakeFiles/gil_test.dir/gil/expr_test.cpp.o"
  "CMakeFiles/gil_test.dir/gil/expr_test.cpp.o.d"
  "CMakeFiles/gil_test.dir/gil/ops_test.cpp.o"
  "CMakeFiles/gil_test.dir/gil/ops_test.cpp.o.d"
  "CMakeFiles/gil_test.dir/gil/parser_test.cpp.o"
  "CMakeFiles/gil_test.dir/gil/parser_test.cpp.o.d"
  "CMakeFiles/gil_test.dir/gil/value_test.cpp.o"
  "CMakeFiles/gil_test.dir/gil/value_test.cpp.o.d"
  "gil_test"
  "gil_test.pdb"
  "gil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
