file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_buckets.dir/bench_table1_buckets.cpp.o"
  "CMakeFiles/bench_table1_buckets.dir/bench_table1_buckets.cpp.o.d"
  "bench_table1_buckets"
  "bench_table1_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
