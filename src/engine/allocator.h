//===- engine/allocator.h - Built-in fresh-value allocators ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gillian's built-in allocators (Def 2.2). An allocation record ξ keeps
/// per-site counters; alloc(j) at site j yields a deterministic fresh name
/// `$u_<j>_<k>` (uninterpreted symbols) or `#i_<j>_<k>` (interpreted
/// symbols, i.e. fresh logical variables).
///
/// Determinism is the implementation of the paper's allocator-restriction
/// story (Def 3.3 / Def 3.8): the concrete replay of a symbolic trace uses
/// the *same* site-indexed naming, so the uninterpreted symbols allocated
/// concretely coincide with the symbolic ones, and interpreted symbols are
/// resolved through a value script populated from the model ε (the
/// allocator analogue of strengthening an initial state with the final
/// path condition).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_ALLOCATOR_H
#define GILLIAN_ENGINE_ALLOCATOR_H

#include "gil/expr.h"
#include "gil/value.h"
#include "support/cow_map.h"

#include <map>
#include <string>

namespace gillian {

/// Shared per-site counter record (the |AL| of Def 2.2).
class AllocRecord {
public:
  /// Next index at site \p Site, advancing the record.
  uint32_t next(uint32_t Site) {
    const uint32_t *C = Counters.lookup(Site);
    uint32_t K = C ? *C : 0;
    Counters.set(Site, K + 1);
    return K;
  }

  uint32_t countAt(uint32_t Site) const {
    const uint32_t *C = Counters.lookup(Site);
    return C ? *C : 0;
  }

  /// Allocator restriction (Def 3.3): strengthen this record with the
  /// information of \p Other by taking per-site maxima. Monotonic w.r.t.
  /// allocation, idempotent, right-commutative (Def 3.1).
  void restrictWith(const AllocRecord &Other) {
    for (const auto &[Site, K] : Other.Counters)
      if (countAt(Site) < K)
        Counters.set(Site, K);
  }

  /// The ⊑ pre-order induced by restriction: this record knows at least as
  /// much as \p Other (pointwise >= counters).
  bool refines(const AllocRecord &Other) const {
    for (const auto &[Site, K] : Other.Counters)
      if (countAt(Site) < K)
        return false;
    return true;
  }

  friend bool operator==(const AllocRecord &A, const AllocRecord &B) {
    // Compare modulo zero entries.
    return A.refines(B) && B.refines(A);
  }

  /// Per-site counters (site -> number of allocations); used by the
  /// soundness replay harness to enumerate the interpreted symbols a
  /// symbolic trace allocated.
  const CowMap<uint32_t, uint32_t> &sites() const { return Counters; }

private:
  CowMap<uint32_t, uint32_t> Counters;
};

/// Deterministic fresh-name builders shared by both allocators.
inline std::string uSymName(uint32_t Site, uint32_t K) {
  return "$u_" + std::to_string(Site) + "_" + std::to_string(K);
}
inline std::string iSymName(uint32_t Site, uint32_t K) {
  return "#i_" + std::to_string(Site) + "_" + std::to_string(K);
}

/// The symbolic allocator: uSym picks a fresh uninterpreted symbol, iSym a
/// fresh logical variable (§2.3 [uSym/iSym]).
class SymbolicAllocator {
public:
  Value allocUSym(uint32_t Site) {
    return Value::symV(uSymName(Site, Rec.next(Site)));
  }
  Expr allocISym(uint32_t Site) {
    return Expr::lvar(iSymName(Site, Rec.next(Site)));
  }

  AllocRecord &record() { return Rec; }
  const AllocRecord &record() const { return Rec; }

private:
  AllocRecord Rec;
};

/// The concrete allocator: uSym picks the same deterministic fresh symbol
/// as the symbolic allocator; iSym picks an "arbitrary value" — by default
/// Int 0, overridable per (site, index) through a script so that replay
/// tests can direct concrete runs with model values.
class ConcreteAllocator {
public:
  Value allocUSym(uint32_t Site) {
    return Value::symV(uSymName(Site, Rec.next(Site)));
  }

  Value allocISym(uint32_t Site) {
    uint32_t K = Rec.next(Site);
    auto It = Script.find({Site, K});
    if (It != Script.end())
      return It->second;
    return Value::intV(0);
  }

  /// Directs the (Site, K)-th interpreted allocation to return \p V.
  void scriptISym(uint32_t Site, uint32_t K, Value V) {
    Script[{Site, K}] = std::move(V);
  }

  AllocRecord &record() { return Rec; }
  const AllocRecord &record() const { return Rec; }

private:
  AllocRecord Rec;
  std::map<std::pair<uint32_t, uint32_t>, Value> Script;
};

} // namespace gillian

#endif // GILLIAN_ENGINE_ALLOCATOR_H
