//===- tests/targets/collections_test.cpp ---------------------------------===//
//
// The §4.2 evaluation as a test: every Collections suite verifies on the
// healthy library; the four seeded finding-analogues are re-detected on
// the buggy variant with confirmed counter-models; unaffected suites stay
// clean (no false positives).
//
//===----------------------------------------------------------------------===//

#include "targets/collections_mc.h"

#include "mc/compiler.h"
#include "mc/memory.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mc;
using namespace gillian::targets;

namespace {

Prog compileSuite(std::string_view Library, std::string_view Suite) {
  std::string Src = std::string(Library) + "\n" + std::string(Suite);
  Result<Prog> P = compileMcSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  return P.ok() ? P.take() : Prog();
}

SuiteResult runOn(std::string_view Library, const CollectionsSuite &S) {
  Prog P = compileSuite(Library, S.Source);
  EngineOptions Opts;
  return runSuite<McSMem>(S.Name, P, Opts);
}

const CollectionsSuite &suite(std::string_view Name) {
  for (const CollectionsSuite &S : collectionsSuites())
    if (S.Name == Name)
      return S;
  static CollectionsSuite Empty{"", ""};
  ADD_FAILURE() << "no suite named " << Name;
  return Empty;
}

class CollectionsSuiteTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

} // namespace

TEST_P(CollectionsSuiteTest, HealthyLibraryVerifies) {
  const CollectionsSuite &S = GetParam();
  SuiteResult R = runOn(collectionsLibrary(), S);
  EXPECT_GE(R.Tests, 2u);
  EXPECT_TRUE(R.clean()) << R.Bugs[0].Message << "\n  PC: "
                         << R.Bugs[0].PathCond;
  EXPECT_EQ(R.BoundedPaths, 0u);
  EXPECT_GT(R.GilCmds, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsSuiteTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(CollectionsBugs, Finding1_ArrayOffByOneOverflow) {
  SuiteResult R = runOn(collectionsBuggyLibrary(), suite("array"));
  ASSERT_FALSE(R.clean());
  bool FoundOob = false, Confirmed = false;
  for (const BugReport &B : R.Bugs) {
    FoundOob |= B.Message.find("out-of-bounds") != std::string::npos;
    Confirmed |= B.Confirmed;
  }
  EXPECT_TRUE(FoundOob) << R.Bugs[0].Message;
  EXPECT_TRUE(Confirmed);
}

TEST(CollectionsBugs, Finding2_ListPointerComparisonUB) {
  SuiteResult R = runOn(collectionsBuggyLibrary(), suite("list"));
  ASSERT_FALSE(R.clean());
  bool FoundUb = false;
  for (const BugReport &B : R.Bugs)
    FoundUb |= B.Message.find("different objects") != std::string::npos;
  EXPECT_TRUE(FoundUb) << R.Bugs[0].Message;
}

TEST(CollectionsBugs, Finding3_FreedPointerComparison) {
  SuiteResult R = runOn(collectionsBuggyLibrary(), suite("deque"));
  ASSERT_FALSE(R.clean());
  bool FoundFreed = false;
  for (const BugReport &B : R.Bugs)
    FoundFreed |= B.Message.find("freed pointer") != std::string::npos;
  EXPECT_TRUE(FoundFreed) << R.Bugs[0].Message;
}

TEST(CollectionsBugs, Finding4_RingBufferOverAllocation) {
  SuiteResult R = runOn(collectionsBuggyLibrary(), suite("rbuf"));
  ASSERT_FALSE(R.clean());
  bool FoundAudit = false;
  for (const BugReport &B : R.Bugs)
    FoundAudit |=
        B.Message.find("test_rb_allocation_matches_capacity") !=
        std::string::npos;
  EXPECT_TRUE(FoundAudit)
      << "the capacity audit must flag the benign over-allocation: "
      << R.Bugs[0].Message;
}

TEST(CollectionsBugs, UnaffectedSuitesStayClean) {
  // treetbl / treeset / slist never touch the seeded code paths.
  for (const char *Name : {"treetbl", "treeset", "slist"}) {
    SuiteResult R = runOn(collectionsBuggyLibrary(), suite(Name));
    EXPECT_TRUE(R.clean()) << Name << ": " << R.Bugs[0].Message;
  }
}
