//===- bench/bench_engine_scaling.cpp -------------------------------------===//
//
// Path-count scaling of the symbolic engine (google-benchmark): programs
// with parameterised branching/loop depth, supporting the paper's "the
// analysis can scale to larger codebases" claim by showing time grows
// with the number of explored paths, not with dead program size.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "engine/test_runner.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include <chrono>
#include <cstdio>
#include <string>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

/// N sequential symbolic branches: 2^N paths.
std::string diamondProgram(int N) {
  std::string Src = "function main() {\n  s := 0;\n";
  for (int I = 0; I < N; ++I) {
    Src += "  x" + std::to_string(I) + " := fresh_int();\n";
    Src += "  if (0 < x" + std::to_string(I) + ") { s := s + 1; }\n";
  }
  Src += "  assert (0 <= s && s <= " + std::to_string(N) + ");\n";
  Src += "  return s;\n}\n";
  return Src;
}

/// A loop over a symbolic bound in [0, N): N return paths.
std::string loopProgram(int N) {
  return "function main() {\n"
         "  n := fresh_int();\n"
         "  assume (0 <= n && n < " +
         std::to_string(N) +
         ");\n"
         "  i := 0; s := 0;\n"
         "  while (i < n) { s := s + i; i := i + 1; }\n"
         "  assert (s * 2 == n * (n - 1));\n"
         "  return s;\n}\n";
}

/// Dead code: L straight-line functions that are never called.
std::string deadCodeProgram(int L) {
  std::string Src = "function main() { x := fresh_int(); "
                    "assume (0 <= x); assert (0 <= x); return x; }\n";
  for (int I = 0; I < L; ++I)
    Src += "function dead" + std::to_string(I) +
           "(a) { b := a * 2; c := b + 3; return c; }\n";
  return Src;
}

SymbolicTestResult
runProgram(const std::string &Src, uint32_t Workers = 1,
           SelectionStrategy Strategy = SelectionStrategy::OldestFirst,
           bool Native = true, uint32_t Async = 0, bool Summaries = true) {
  Result<Prog> P = compileWhileSource(Src);
  if (!P)
    std::abort();
  EngineOptions Opts;
  Opts.UseSummaries = Summaries;
  Opts.LoopBound = 64;
  Opts.Scheduler.Workers = Workers;
  Opts.Scheduler.Strategy = Strategy;
  Opts.Solver.UseNative = Native;
  Opts.Solver.AsyncSolvers = Async;
  Solver Slv(Opts.Solver);
  SymbolicTestResult R = runSymbolicTest<WhileSMem>(*P, "main", Opts, Slv);
  if (!R.ok())
    std::abort();
  return R;
}

/// Report the solver-layer share of the last run as benchmark counters:
/// where the time goes (solver vs engine) and how well the cache works.
void setSolverCounters(benchmark::State &State,
                       const SymbolicTestResult &R) {
  State.counters["solver_queries"] =
      static_cast<double>(R.Solver.Queries);
  State.counters["solver_hit_rate"] = R.Solver.cacheHitRate();
  State.counters["solver_ms"] = 1e-6 * static_cast<double>(R.Solver.TotalNs);
  State.counters["z3_calls"] = static_cast<double>(R.Solver.Z3Calls);
  State.counters["inc_session_hit_rate"] = R.Solver.sessionHitRate();
  State.counters["inc_prefix_depth"] = R.Solver.meanPrefixDepth();
}

} // namespace

static void BM_DiamondPaths(benchmark::State &State) {
  std::string Src = diamondProgram(static_cast<int>(State.range(0)));
  SymbolicTestResult Last;
  for (auto _ : State)
    Last = runProgram(Src);
  State.SetLabel(std::to_string(1ll << State.range(0)) + " paths");
  setSolverCounters(State, Last);
}
BENCHMARK(BM_DiamondPaths)->DenseRange(2, 8, 2);

static void BM_SymbolicLoopUnroll(benchmark::State &State) {
  std::string Src = loopProgram(static_cast<int>(State.range(0)));
  SymbolicTestResult Last;
  for (auto _ : State)
    Last = runProgram(Src);
  State.SetLabel(std::to_string(State.range(0)) + " unrollings");
  setSolverCounters(State, Last);
}
BENCHMARK(BM_SymbolicLoopUnroll)->DenseRange(4, 32, 4);

static void BM_DeadCodeIsFree(benchmark::State &State) {
  // Time must stay flat as dead program size grows: exploration cost
  // follows paths, not program size.
  std::string Src = deadCodeProgram(static_cast<int>(State.range(0)));
  SymbolicTestResult Last;
  for (auto _ : State)
    Last = runProgram(Src);
  State.SetLabel(std::to_string(State.range(0)) + " dead functions");
  setSolverCounters(State, Last);
}
BENCHMARK(BM_DeadCodeIsFree)->RangeMultiplier(4)->Range(1, 256);

static void BM_ParallelDiamond(benchmark::State &State) {
  // The 256-path diamond on the work-stealing scheduler at 1/2/4/8
  // workers; speedup over the workers=1 row tracks core count.
  std::string Src = diamondProgram(8);
  SymbolicTestResult Last;
  for (auto _ : State)
    Last = runProgram(Src, static_cast<uint32_t>(State.range(0)));
  State.SetLabel(std::to_string(State.range(0)) + " workers");
  setSolverCounters(State, Last);
}
BENCHMARK(BM_ParallelDiamond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// After the google-benchmark report, sweep the worker count over a fixed
// 1024-path workload and emit one machine-readable JSON line with the
// per-count wall time and cache hit rate (for CI scaling dashboards).
int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bench::setupObs(Args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!Args.Json) {
    bench::finishObs(Args);
    return 0;
  }

  std::string Src = diamondProgram(10);
  std::string SweepJson;
  double BaseSec = 0;
  std::vector<uint32_t> Sweep{1u, 2u, 4u, 8u};
  if (std::find(Sweep.begin(), Sweep.end(), Args.Workers) == Sweep.end()) {
    Sweep.push_back(Args.Workers);
    std::sort(Sweep.begin(), Sweep.end());
  }
  for (uint32_t Workers : Sweep) {
    bench::coldStart(); // cold per count: same starting state for all
    auto T0 = std::chrono::steady_clock::now();
    SymbolicTestResult R = runProgram(Src, Workers, Args.Strategy,
                                      Args.Native, Args.Async,
                                      Args.Summaries);
    double Sec = bench::seconds(T0);
    if (Workers == 1)
      BaseSec = Sec;
    obs::JsonWriter Row;
    Row.beginObject();
    Row.field("workers", Workers);
    Row.field("time_s", Sec, 6);
    Row.field("speedup", Sec > 0 ? BaseSec / Sec : 0.0, 3);
    Row.field("cache_hit_rate", R.Solver.cacheHitRate(), 4);
    Row.field("solver_queries",
              static_cast<uint64_t>(R.Solver.Queries));
    Row.field("inc_session_hit_rate", R.Solver.sessionHitRate(), 4);
    Row.field("inc_mean_prefix_depth", R.Solver.meanPrefixDepth(), 2);
    Row.field("encode_memo_hits",
              static_cast<uint64_t>(R.Solver.EncodeMemoHits));
    Row.endObject();
    if (!SweepJson.empty())
      SweepJson += ",";
    SweepJson += Row.take();
  }
  obs::JsonWriter W;
  W.beginObject();
  W.field("bench", "engine_scaling");
  W.field("workload", "diamond_10");
  W.field("paths", 1024);
  W.field("strategy", strategyName(Args.Strategy));
  W.field("summaries", Args.Summaries);
  W.key("worker_sweep");
  W.beginArray();
  W.raw(SweepJson);
  W.endArray();
  W.key("coverage");
  W.raw(obs::BranchCoverage::instance().json());
  W.key("obs");
  W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
  W.endObject();
  std::printf("\n%s\n", W.take().c_str());
  bench::finishObs(Args);
  return 0;
}
