//===- obs/json_writer.h - Minimal streaming JSON writer -------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON emitter of the codebase. Every machine-readable line — the
/// registry-driven stats objects, the chrome://tracing export, the bench
/// drivers' trailing JSON — is built through this writer instead of
/// hand-maintained snprintf format strings, so adding a counter (or a
/// whole counter set) never edits a format string again.
///
/// The writer is deliberately tiny: objects, arrays, string escaping,
/// comma placement. It produces a single line (no pretty-printing) because
/// the consumers are `jq` pipelines and trace viewers, not humans.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_JSON_WRITER_H
#define GILLIAN_OBS_JSON_WRITER_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace gillian::obs {

/// Streaming JSON writer with automatic comma placement. Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.field("tests", 74);
///   W.key("solver"); W.raw(statsJson);   // splice a pre-rendered object
///   W.endObject();
///   std::string Line = W.take();
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Emits the key of a key/value pair; the next emitted value (or
  /// container) is its value.
  void key(std::string_view K) {
    comma();
    appendQuoted(K);
    Out += ':';
    PendingValue = true;
  }

  void value(uint64_t V) {
    comma();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
    Out += Buf;
  }
  void value(int64_t V) {
    comma();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
    Out += Buf;
  }
  void value(uint32_t V) { value(static_cast<uint64_t>(V)); }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(double V, int Precision = 6) {
    comma();
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
    Out += Buf;
  }
  void value(bool V) {
    comma();
    Out += V ? "true" : "false";
  }
  void value(std::string_view V) {
    comma();
    appendQuoted(V);
  }
  void value(const char *V) { value(std::string_view(V)); }

  template <typename T> void field(std::string_view K, T V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, double V, int Precision) {
    key(K);
    value(V, Precision);
  }

  /// Splices pre-rendered JSON (e.g. a counter set's registry-emitted
  /// object) as the next value.
  void raw(std::string_view Json) {
    comma();
    Out += Json;
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }
  bool empty() const { return Out.empty(); }

private:
  void comma() {
    if (PendingValue) {
      PendingValue = false; // value completes the pair the key opened
      return;
    }
    if (NeedComma)
      Out += ',';
    NeedComma = true;
  }
  void open(char C) {
    comma();
    Out += C;
    NeedComma = false;
  }
  void close(char C) {
    Out += C;
    NeedComma = true;
    PendingValue = false;
  }
  void appendQuoted(std::string_view S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"': Out += "\\\""; break;
      case '\\': Out += "\\\\"; break;
      case '\n': Out += "\\n"; break;
      case '\t': Out += "\\t"; break;
      case '\r': Out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  std::string Out;
  bool NeedComma = false;
  bool PendingValue = false;
};

/// Structural JSON validation (objects, arrays, strings, numbers, bools,
/// null; no depth or size limits beyond the stack). Used by the obs tests
/// to assert that every exporter emits parseable JSON without shelling out
/// to jq.
bool validateJson(std::string_view Json);

} // namespace gillian::obs

#endif // GILLIAN_OBS_JSON_WRITER_H
