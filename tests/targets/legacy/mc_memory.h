//===- tests/targets/legacy/mc_memory.h ---------------------------------===//
//
// VERBATIM SNAPSHOT of src/mc/memory.h as of the memlib refactor, kept
// solely so memlib_differential_test can replay suites on the pre-memlib
// action implementations and assert bit-identical branch sequences.
// Namespace renamed gillian::mc -> gillian::legacy (Chunk types shared).
// Do not edit: this file intentionally preserves the old code paths.
//
//===----------------------------------------------------------------------===//

//===- mc/memory.h - MC memories (CompCert-style, §4.2) --------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C memory models of §4.2, built from the paper's description of the
/// CompCert memory (and CompCertS for the symbolic side):
///
///  * memory = separated blocks; each block an array of byte-sized memory
///    values with a permission per byte;
///  * pointers are block-offset pairs — GIL lists [block, offset] with the
///    block an uninterpreted symbol;
///  * a memory value is a byte, the special `undefined` (uninitialised
///    memory), or a fragment [v, k, n] denoting the k-th of n bytes of a
///    value (CompCertS-style symbolic memory values — concrete integers
///    and floats encode to real bytes, symbolic scalars and pointers to
///    fragments);
///  * load/store take a chunk [sz, al, kind] and perform the SLoad checks:
///    liveness, bounds, alignment, permission, then byte decoding.
///
/// Undefined behaviour — out-of-bounds access, use-after-free, double
/// free, uninitialised reads, unaligned access, insufficient permissions,
/// relational comparison of pointers into different blocks, any comparison
/// with a dangling pointer — surfaces as memory-fault branches, which is
/// how the §4.2 Collections-C findings are detected.
///
/// Actions: alloc, free, load, store, memcpy, memset, blockSize, dropPerm,
/// comparePtr, validPtr (a 10-action core of CompCert's sixteen; the
/// omitted ones concern the global environment and concurrency, which GIL
/// does not model — see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_LEGACY_MC_MEMORY_H
#define GILLIAN_LEGACY_MC_MEMORY_H

#include "engine/state.h"
#include "mc/types.h"
#include "solver/model.h"
#include "support/cow_map.h"

#include <memory>

namespace gillian::legacy {

using gillian::mc::Chunk;    // shared chunk descriptor (mc/types.h)
using gillian::mc::ChunkKind;

// Action names.
InternedString actAlloc();
InternedString actFree();
InternedString actLoad();
InternedString actStore();
InternedString actMemcpy();
InternedString actMemset();
InternedString actBlockSize();
InternedString actDropPerm();
InternedString actComparePtr();
InternedString actValidPtr();

/// Permissions, as integers in ascending permissiveness (§4.2).
enum class Perm : uint8_t { None = 0, Readable = 1, Writable = 2 };

/// The null pointer: [$null, 0].
Value nullPtr();
Expr nullPtrE();

/// Builds a chunk descriptor value [sz, al, kind] for action arguments.
Value chunkValue(const Chunk &C);

//===----------------------------------------------------------------------===//
// Concrete memory
//===----------------------------------------------------------------------===//

/// One byte of concrete memory.
struct CMemVal {
  enum Kind : uint8_t { Undef, Byte, Frag } K = Undef;
  uint8_t B = 0;       ///< Byte payload
  Value FragVal;       ///< Frag: the carried value
  ChunkKind FragKind = ChunkKind::Int;
  uint8_t FragIdx = 0; ///< k
  uint8_t FragLen = 0; ///< n
};

struct CBlock {
  int64_t Size = 0;
  std::vector<CMemVal> Bytes;
  std::vector<uint8_t> Perms;
  bool Freed = false;
};

class McCMem {
public:
  Result<Value> execAction(InternedString Act, const Value &Arg);

  const CBlock *findBlock(InternedString B) const {
    const std::shared_ptr<const CBlock> *P = Blocks.lookup(B);
    return P ? P->get() : nullptr;
  }
  /// Registers a block (used by tests and memory interpretation).
  void putBlock(InternedString B, CBlock Blk) {
    Blocks.set(B, std::make_shared<const CBlock>(std::move(Blk)));
  }

  std::string toString() const;

private:
  Result<Value> doLoad(const Value &ChunkV, const Value &B, const Value &Off);
  Result<Value> doStore(const Value &ChunkV, const Value &B,
                        const Value &Off, const Value &V);
  Result<Value> doComparePtr(const Value &Op, const Value &P1,
                             const Value &P2);

  CowMap<InternedString, std::shared_ptr<const CBlock>> Blocks;
};

//===----------------------------------------------------------------------===//
// Symbolic memory
//===----------------------------------------------------------------------===//

/// One byte of symbolic memory: a concrete byte, or the k-th fragment of
/// a symbolic value [e, k, n] (CompCertS representation).
struct SMemVal {
  enum Kind : uint8_t { Byte, Frag } K = Byte;
  uint8_t B = 0;
  Expr FragVal;
  ChunkKind FragKind = ChunkKind::Int;
  uint8_t FragIdx = 0;
  uint8_t FragLen = 0;
};

struct SBlock {
  int64_t Size = 0; ///< block sizes are concrete (alloc of symbolic size is
                    ///< out of scope, as in the paper's "Current
                    ///< Limitations")
  CowMap<int64_t, SMemVal> Bytes; ///< sparse; absent = uninitialised
  CowMap<int64_t, uint8_t> PermOverrides; ///< absent = Writable
  bool Freed = false;
};

class McSMem {
public:
  Result<std::vector<SymActionBranch<McSMem>>>
  execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
             Solver &S) const;

  const SBlock *findBlock(const Expr &B) const {
    const std::shared_ptr<const SBlock> *P = Blocks.lookup(B);
    return P ? P->get() : nullptr;
  }
  void putBlock(const Expr &B, SBlock Blk) {
    Blocks.set(B, std::make_shared<const SBlock>(std::move(Blk)));
  }
  const CowMap<Expr, std::shared_ptr<const SBlock>, ExprOrdering> &
  blocks() const {
    return Blocks;
  }

  std::string toString() const;

private:
  struct ActionCtx;

  CowMap<Expr, std::shared_ptr<const SBlock>, ExprOrdering> Blocks;
};

static_assert(ConcreteMemoryModel<McCMem>);
static_assert(SymbolicMemoryModel<McSMem>);

/// Memory interpretation I_C (Def 3.7 instance): evaluates block names and
/// stored fragments under ε.
Result<McCMem> interpretMemory(const Model &Eps, const McSMem &SMem);

} // namespace gillian::legacy

#endif // GILLIAN_LEGACY_MC_MEMORY_H
