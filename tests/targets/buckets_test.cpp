//===- tests/targets/buckets_test.cpp -------------------------------------===//
//
// The §4.1 evaluation as a test: every Buckets suite runs clean on the
// healthy library (bounded verification), and the seeded §4.1-style bugs
// are re-detected with confirmed counter-models on the buggy variant —
// with zero false positives elsewhere.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"

#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::targets;

namespace {

Prog compileSuite(std::string_view Library, std::string_view Suite) {
  std::string Src = std::string(Library) + "\n" + std::string(Suite);
  Result<Prog> P = compileMjsSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  return P.ok() ? P.take() : Prog();
}

class BucketsSuiteTest : public ::testing::TestWithParam<BucketsSuite> {};

} // namespace

TEST_P(BucketsSuiteTest, HealthyLibraryVerifies) {
  const BucketsSuite &S = GetParam();
  Prog P = compileSuite(bucketsLibrary(), S.Source);
  EngineOptions Opts;
  SuiteResult R = runSuite<MjsSMem>(S.Name, P, Opts);
  EXPECT_GE(R.Tests, 4u);
  EXPECT_TRUE(R.clean()) << R.Bugs[0].Message << "\n  PC: "
                         << R.Bugs[0].PathCond << "\n  model: "
                         << R.Bugs[0].CounterModel;
  EXPECT_EQ(R.BoundedPaths, 0u)
      << "suites are written to terminate within the loop bound";
  EXPECT_GT(R.GilCmds, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsSuiteTest, ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(BucketsTotals, SeventyFourTestsAsInTable1) {
  uint64_t Total = 0;
  for (const BucketsSuite &S : bucketsSuites()) {
    Prog P = compileSuite(bucketsLibrary(), S.Source);
    Total += testProcs(P).size();
  }
  EXPECT_EQ(Total, 74u) << "Table 1 reports 74 symbolic tests";
}

TEST(BucketsBugs, SeededLlistOffByOneIsDetected) {
  // Bug 1: ll_indexOf walks one node past the end; searching for an
  // absent value dereferences null.
  const BucketsSuite *Llist = nullptr;
  for (const BucketsSuite &S : bucketsSuites())
    if (S.Name == "llist")
      Llist = &S;
  ASSERT_NE(Llist, nullptr);
  Prog P = compileSuite(bucketsBuggyLibrary(), Llist->Source);
  EngineOptions Opts;
  SuiteResult R = runSuite<MjsSMem>("llist-buggy", P, Opts);
  ASSERT_FALSE(R.clean()) << "the seeded off-by-one must be found";
  bool Confirmed = false;
  for (const BugReport &B : R.Bugs)
    Confirmed |= B.Confirmed;
  EXPECT_TRUE(Confirmed) << "detection must come with a counter-model";
}

TEST(BucketsBugs, SeededHeapComparisonIsDetected) {
  // Bug 2: sift-down consults the wrong child; a three-element pop order
  // check fails for some inputs.
  const BucketsSuite *Heap = nullptr;
  for (const BucketsSuite &S : bucketsSuites())
    if (S.Name == "heap")
      Heap = &S;
  ASSERT_NE(Heap, nullptr);
  Prog P = compileSuite(bucketsBuggyLibrary(), Heap->Source);
  EngineOptions Opts;
  SuiteResult R = runSuite<MjsSMem>("heap-buggy", P, Opts);
  ASSERT_FALSE(R.clean());
  bool Confirmed = false;
  for (const BugReport &B : R.Bugs)
    Confirmed |= B.Confirmed;
  EXPECT_TRUE(Confirmed);
}

TEST(BucketsBugs, UnaffectedSuitesStayCleanOnBuggyLibrary) {
  // No false positives: structures that do not touch the seeded code
  // paths still verify on the buggy library.
  for (const BucketsSuite &S : bucketsSuites()) {
    if (S.Name == "llist" || S.Name == "heap" || S.Name == "pqueue" ||
        S.Name == "stack" || S.Name == "queue")
      continue; // these sit on the seeded structures
    Prog P = compileSuite(bucketsBuggyLibrary(), S.Source);
    EngineOptions Opts;
    SuiteResult R = runSuite<MjsSMem>(std::string(S.Name) + "-buggy", P,
                                      Opts);
    EXPECT_TRUE(R.clean()) << S.Name << ": " << R.Bugs[0].Message;
  }
}
