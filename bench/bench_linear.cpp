//===- bench/bench_linear.cpp ---------------------------------------------===//
//
// The fourth memory-model instantiation (Wasm-style linear memory, built
// from the memlib combinator kit) on its GIL test suites: per-suite test
// counts, executed GIL commands and times, sequential and parallel, then
// the seeded suite to show the off-by-one read and the negative grow are
// re-detected. The row shape mirrors Tables 1/2 so the instantiation can
// sit next to the three paper models in EXPERIMENTS.md.
//
// With --json the binary emits one JSON object with per-suite rows, a
// total block, branch coverage, and the observability counters — the
// `.obs.actions.linear` block is what CI asserts on to prove the linear
// action labels flow end-to-end.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "gil/parser.h"
#include "linear/memory.h"
#include "linear/suites.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace gillian;
using namespace gillian::linear;
using namespace gillian::targets;

namespace {

using bench::coldStart;
using bench::seconds;

} // namespace

int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bench::setupObs(Args);
  const uint32_t ParWorkers = Args.Workers;
  const SelectionStrategy ParStrategy = Args.Strategy;
  std::printf("Linear-memory instantiation: GIL symbolic test suites "
              "(Gillian-Linear)\n");
  std::printf("%-10s %4s %12s %10s %10s %8s %9s\n", "Name", "#T", "GIL Cmds",
              "Time", "Time(P)", "ParSpd", "HitRate");

  uint64_t TotalTests = 0, TotalCmds = 0, HealthyBugs = 0;
  double TotalTime = 0, TotalTimePar = 0;
  SolverStats TotalSolver;
  std::string SuitesJson;
  for (const LinearSuite &S : linearSuites()) {
    Result<Prog> P = parseGilProg(S.Source);
    if (!P) {
      std::fprintf(stderr, "parse error in %s: %s\n",
                   std::string(S.Name).c_str(), P.error().c_str());
      return 1;
    }
    coldStart();
    EngineOptions Opts;
    Opts.UseSummaries = Args.Summaries;
    auto T0 = std::chrono::steady_clock::now();
    SuiteResult R = runSuite<LinearSMem>(S.Name, *P, Opts);
    double Sec = seconds(T0);

    coldStart();
    EngineOptions ParOpts;
    ParOpts.UseSummaries = Args.Summaries;
    ParOpts.Scheduler.Workers = ParWorkers;
    ParOpts.Scheduler.Strategy = ParStrategy;
    ParOpts.Solver.UseNative = Args.Native;
    ParOpts.Solver.AsyncSolvers = Args.Async;
    T0 = std::chrono::steady_clock::now();
    SuiteResult RPar = runSuite<LinearSMem>(S.Name, *P, ParOpts);
    double SecPar = seconds(T0);

    std::printf("%-10s %4llu %12llu %9.3fs %9.3fs %7.2fx %8.1f%%\n",
                std::string(S.Name).c_str(),
                static_cast<unsigned long long>(R.Tests),
                static_cast<unsigned long long>(R.GilCmds), Sec, SecPar,
                SecPar > 0 ? Sec / SecPar : 0.0,
                100.0 * R.Solver.cacheHitRate());
    obs::JsonWriter Row;
    Row.beginObject();
    Row.field("name", std::string_view(S.Name));
    Row.field("tests", R.Tests);
    Row.field("gil_cmds", R.GilCmds);
    Row.field("time_s", Sec, 6);
    Row.field("time_par_s", SecPar, 6);
    Row.field("par_workers", ParWorkers);
    Row.field("par_strategy", strategyName(ParStrategy));
    Row.key("solver");
    Row.raw(solverStatsJson(R.Solver));
    Row.endObject();
    if (!SuitesJson.empty())
      SuitesJson += ",";
    SuitesJson += Row.take();
    TotalTests += R.Tests;
    TotalCmds += R.GilCmds;
    TotalTime += Sec;
    TotalTimePar += SecPar;
    TotalSolver += R.Solver;
    HealthyBugs += R.Bugs.size() + RPar.Bugs.size();
  }
  std::printf("%-10s %4llu %12llu %9.3fs %9.3fs %7.2fx %8.1f%%\n", "Total",
              static_cast<unsigned long long>(TotalTests),
              static_cast<unsigned long long>(TotalCmds), TotalTime,
              TotalTimePar,
              TotalTimePar > 0 ? TotalTime / TotalTimePar : 0.0,
              100.0 * TotalSolver.cacheHitRate());

  // The seeded suite: both planted faults must be re-detected.
  std::printf("\nFindings on the seeded suite:\n");
  uint64_t SeededBugs = 0;
  bool SawOob = false, SawNegGrow = false;
  for (const LinearSuite &S : linearSeededSuites()) {
    Result<Prog> P = parseGilProg(S.Source);
    if (!P)
      continue;
    EngineOptions Opts;
    SuiteResult R = runSuite<LinearSMem>(S.Name, *P, Opts);
    SeededBugs += R.Bugs.size();
    for (const BugReport &B : R.Bugs) {
      if (B.Message.find("out-of-bounds load") != std::string::npos)
        SawOob = true;
      if (B.Message.find("grow by negative size") != std::string::npos)
        SawNegGrow = true;
      std::printf("  %s%s\n", B.Message.c_str(),
                  B.Confirmed ? "  [counter-model verified]"
                              : "  [unconfirmed]");
    }
  }

  std::printf("\nHealthy-suite bug reports: %llu (expected 0)\n",
              static_cast<unsigned long long>(HealthyBugs));
  std::printf("Shape check: off-by-one read %s, negative grow %s; clean "
              "suites verify.\n",
              SawOob ? "re-detected" : "MISSED",
              SawNegGrow ? "re-detected" : "MISSED");
  if (Args.Json) {
    obs::JsonWriter W;
    W.beginObject();
    W.field("bench", "linear");
    W.field("strategy", strategyName(ParStrategy));
    W.field("summaries", Args.Summaries);
    W.key("suites");
    W.beginArray();
    W.raw(SuitesJson);
    W.endArray();
    W.key("total");
    W.beginObject();
    W.field("tests", TotalTests);
    W.field("gil_cmds", TotalCmds);
    W.field("time_s", TotalTime, 6);
    W.field("time_par_s", TotalTimePar, 6);
    W.field("par_workers", ParWorkers);
    W.field("par_strategy", strategyName(ParStrategy));
    W.field("seeded_bugs", SeededBugs);
    W.key("solver");
    W.raw(solverStatsJson(TotalSolver));
    W.endObject();
    W.key("coverage");
    W.raw(obs::BranchCoverage::instance().json());
    W.key("obs");
    W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
    W.endObject();
    std::printf("\n%s\n", W.take().c_str());
  }
  bench::finishObs(Args);
  return HealthyBugs == 0 && SawOob && SawNegGrow ? 0 : 1;
}
