//===- mjs/parser.h - MJS parser -------------------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete syntax for MJS (JavaScript-flavoured):
///
///   function ll_add(lst, v) {
///     var node = { value: v, next: null };
///     if (lst.head === null) { lst.head = node; }
///     else {
///       var cur = lst.head;
///       while (cur.next !== null) { cur = cur.next; }
///       cur.next = node;
///     }
///     lst.size = lst.size + 1;
///     return lst;
///   }
///
///   function test_ll_add() {
///     var v = symb_number();
///     var lst = ll_new();
///     ll_add(lst, v);
///     Assert(ll_get(lst, 0) === v);
///   }
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MJS_PARSER_H
#define GILLIAN_MJS_PARSER_H

#include "mjs/ast.h"
#include "support/result.h"

#include <string_view>

namespace gillian::mjs {

Result<JsProgram> parseMjs(std::string_view Source);

} // namespace gillian::mjs

#endif // GILLIAN_MJS_PARSER_H
