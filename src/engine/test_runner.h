//===- engine/test_runner.h - Symbolic unit testing ------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing symbolic testing layer: runs one symbolic unit test
/// (a GIL procedure with symbolic inputs and assume/assert annotations,
/// §1) and classifies the outcomes:
///
///  * failures (assert violations, memory faults, runtime type errors) are
///    reported with a *verified* counter-model whenever the solver can
///    produce one — the gate that keeps the §3 no-false-positives
///    guarantee: a report is Confirmed only if a concrete valuation of the
///    final path condition was exhibited and checked by evaluation;
///  * paths cut by the loop/step budget are reported separately, so a run
///    with zero failures and zero bounded paths is a (bounded) verification
///    verdict for the assertions.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_TEST_RUNNER_H
#define GILLIAN_ENGINE_TEST_RUNNER_H

#include "engine/interpreter.h"
#include "engine/scheduler/exploration_scheduler.h"
#include "obs/progress.h"
#include "obs/query_profile.h"

#include <string>
#include <vector>

namespace gillian {

/// One reported failure.
struct BugReport {
  std::string Message;     ///< rendering of the error value
  std::string PathCond;    ///< final path condition
  bool Confirmed = false;  ///< a verified counter-model exists
  std::string CounterModel;///< rendering of the model (when Confirmed)
};

/// Aggregate result of one symbolic test.
struct SymbolicTestResult {
  std::string Name;
  uint64_t PathsReturned = 0;
  uint64_t PathsVanished = 0;
  uint64_t PathsBounded = 0;
  std::vector<BugReport> Bugs;
  ExecStats Stats;
  /// Solver effort attributable to this test alone (delta of the shared
  /// solver's counters across the run, including counter-model search).
  SolverStats Solver;

  bool ok() const { return Bugs.empty(); }
  /// True when the run is a bounded-verification verdict (no failures and
  /// no path was cut by a budget).
  bool verified() const { return Bugs.empty() && PathsBounded == 0; }
  bool hasConfirmedBug() const {
    for (const BugReport &B : Bugs)
      if (B.Confirmed)
        return true;
    return false;
  }
};

/// Runs the symbolic test \p Entry of \p P over the memory model M.
template <SymbolicMemoryModel M>
SymbolicTestResult
runSymbolicTest(const Prog &P, std::string_view Entry,
                const EngineOptions &Opts, Solver &Slv,
                M InitialMemory = M()) {
  SymbolicTestResult R;
  R.Name = std::string(Entry);
  ++obs::progressCounters().TestsStarted;
  // Snapshot the (shared, suite-wide) solver counters so the per-layer
  // timing and hit-rate deltas of this one test can be attributed to it.
  const SolverStats Before = Slv.stats();
  auto Finalize = [&R, &Slv, &Before] {
    R.Solver = Slv.stats() - Before;
    R.Stats.SolverQueries += R.Solver.Queries;
    R.Stats.SolverCacheHits += R.Solver.CacheHits + R.Solver.SliceCacheHits;
    R.Stats.SolverIncReuses += R.Solver.IncExtends;
    R.Stats.SolverNs += R.Solver.TotalNs;
  };
  using St = SymbolicState<M>;
  St Init(std::move(InitialMemory), &Slv, &Opts);
  Interpreter<St> Interp(P, Opts, R.Stats);
  // Dispatches on Opts.Scheduler: the sequential worklist at Workers = 1
  // (bit-identical to the pre-scheduler engine), the work-stealing pool
  // with branch-trace-ordered results otherwise.
  Result<std::vector<TraceResult<St>>> Traces = runExploration(
      Interp, InternedString::get(Entry), Expr::list({}), std::move(Init));
  if (!Traces) {
    BugReport B;
    B.Message = "engine error: " + Traces.error();
    R.Bugs.push_back(std::move(B));
    Finalize();
    return R;
  }
  for (TraceResult<St> &T : *Traces) {
    switch (T.Kind) {
    case OutcomeKind::Return:
      ++R.PathsReturned;
      break;
    case OutcomeKind::Vanish:
      ++R.PathsVanished;
      break;
    case OutcomeKind::Bound:
      ++R.PathsBounded;
      break;
    case OutcomeKind::Error: {
      BugReport B;
      B.Message = T.Val.toString();
      const PathCondition &PC = T.Final.pathCondition();
      B.PathCond = PC.toString();
      // Counter-model search runs outside any interpreter step; attribute
      // it to the test's entry procedure so the hot-query profiler still
      // accounts the time (command index 0 = "the test itself").
      obs::QueryOriginScope Origin(InternedString::get(Entry).id(), 0);
      if (auto Mod = Slv.verifiedModel(PC)) {
        B.Confirmed = true;
        B.CounterModel = Mod->toString();
      }
      R.Bugs.push_back(std::move(B));
      break;
    }
    }
  }
  Finalize();
  return R;
}

/// Runs \p Entry concretely from an empty store/memory; convenience for
/// differential and golden tests.
template <ConcreteMemoryModel M>
Result<TraceResult<ConcreteState<M>>>
runConcrete(const Prog &P, std::string_view Entry, const EngineOptions &Opts,
            ExecStats &Stats, ConcreteState<M> Init = ConcreteState<M>(),
            Value Arg = Value::listV({})) {
  using St = ConcreteState<M>;
  Interpreter<St> Interp(P, Opts, Stats);
  Result<std::vector<TraceResult<St>>> Traces = Interp.run(
      InternedString::get(Entry), std::move(Arg), std::move(Init));
  if (!Traces)
    return Err(Traces.error());
  // Concrete execution of a deterministic program yields at most one
  // non-vanished trace; prefer it.
  for (TraceResult<St> &T : *Traces)
    if (T.Kind != OutcomeKind::Vanish)
      return std::move(T);
  if (!Traces->empty())
    return std::move(Traces->front());
  return Err("concrete execution produced no outcome");
}

} // namespace gillian

#endif // GILLIAN_ENGINE_TEST_RUNNER_H
