//===- tests/linear/linear_test.cpp ---------------------------------------===//
//
// The fourth memory-model instantiation (Wasm-style linear memory, built
// entirely from memlib combinators): direct unit tests of the concrete
// and symbolic actions, the structured symbolic-size diagnostic, the I_L
// interpretation, and the GIL test suites through the full engine.
//
//===----------------------------------------------------------------------===//

#include "linear/memory.h"

#include "gil/parser.h"
#include "linear/suites.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::linear;

namespace {

Value args(std::initializer_list<Value> Vs) { return Value::listV(Vs); }
Expr eargs(std::initializer_list<Expr> Es) { return Expr::list(Es); }

LinearCMem grown(int64_t N) {
  LinearCMem M;
  EXPECT_TRUE(M.execAction(actGrow(), args({Value::intV(N)})).ok());
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Concrete
//===----------------------------------------------------------------------===//

TEST(LinearCMemT, GrowReturnsOldSizeAndMSizeTracks) {
  LinearCMem M;
  Result<Value> R0 = M.execAction(actGrow(), args({Value::intV(4)}));
  ASSERT_TRUE(R0.ok());
  EXPECT_EQ(*R0, Value::intV(0));
  Result<Value> R1 = M.execAction(actGrow(), args({Value::intV(2)}));
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(*R1, Value::intV(4));
  EXPECT_EQ(*M.execAction(actMSize(), args({})), Value::intV(6));
}

TEST(LinearCMemT, StoreLoadRoundTripAndZeroInit) {
  LinearCMem M = grown(4);
  ASSERT_TRUE(
      M.execAction(actStore(), args({Value::intV(2), Value::intV(42)})).ok());
  EXPECT_EQ(*M.execAction(actLoad(), args({Value::intV(2)})),
            Value::intV(42));
  EXPECT_EQ(*M.execAction(actLoad(), args({Value::intV(1)})), Value::intV(0))
      << "never-written cells read 0";
}

TEST(LinearCMemT, OutOfBoundsFaults) {
  LinearCMem M = grown(4);
  Result<Value> R = M.execAction(actLoad(), args({Value::intV(4)}));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("out-of-bounds load"), std::string::npos);
  Result<Value> W =
      M.execAction(actStore(), args({Value::intV(-1), Value::intV(0)}));
  ASSERT_FALSE(W.ok());
  EXPECT_NE(W.error().find("out-of-bounds store"), std::string::npos);
}

TEST(LinearCMemT, NegativeGrowFaults) {
  LinearCMem M;
  Result<Value> R = M.execAction(actGrow(), args({Value::intV(-1)}));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("grow by negative size"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Symbolic
//===----------------------------------------------------------------------===//

TEST(LinearSMemT, SymbolicGrowIsTheStructuredDiagnostic) {
  // The combinator-layer symbolic-size message, verbatim — shared with MC
  // alloc (see branch.h and the matching assertion in mc/memory_test.cpp).
  LinearSMem M;
  Solver S;
  PathCondition PC;
  Expr D = Expr::lvar("#n");
  auto R = M.execAction(actGrow(), eargs({D}), PC, S);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error(), memlib::symbolicSizeError("grow", D));
  EXPECT_NE(R.error().find("unsupported: grow with symbolic size #n"),
            std::string::npos);
  EXPECT_NE(R.error().find("open research problem"), std::string::npos);
  EXPECT_NE(R.error().find("EXPERIMENTS.md 'Known deviations'"),
            std::string::npos);
}

TEST(LinearSMemT, SymbolicOffsetSplitsOnBounds) {
  LinearSMem M;
  Solver S;
  PathCondition PC;
  auto G = M.execAction(actGrow(), eargs({Expr::intE(4)}), PC, S);
  ASSERT_TRUE(G.ok());
  LinearSMem M1 = (*G)[0].Mem;
  PC.add(Expr::hasType(Expr::lvar("#i"), GilType::Int));
  auto R = M1.execAction(actLoad(), eargs({Expr::lvar("#i")}), PC, S);
  ASSERT_TRUE(R.ok());
  int Successes = 0, Errors = 0;
  for (auto &Br : *R)
    Br.IsError ? ++Errors : ++Successes;
  EXPECT_EQ(Successes, 1) << "in-bounds world reads the zero default";
  EXPECT_EQ(Errors, 1) << "out-of-bounds world faults";
  for (auto &Br : *R) {
    if (!Br.IsError) {
      EXPECT_EQ(Br.Ret, Expr::intE(0));
    }
  }
}

TEST(LinearSMemT, SymbolicStoreThenLoadRunsTheAliasLoop) {
  LinearSMem M;
  Solver S;
  PathCondition PC;
  auto G = M.execAction(actGrow(), eargs({Expr::intE(8)}), PC, S);
  ASSERT_TRUE(G.ok());
  LinearSMem M1 = (*G)[0].Mem;
  PC.add(Expr::hasType(Expr::lvar("#i"), GilType::Int));
  PC.add(Expr::le(Expr::intE(0), Expr::lvar("#i")));
  PC.add(Expr::lt(Expr::lvar("#i"), Expr::intE(8)));
  auto St =
      M1.execAction(actStore(), eargs({Expr::lvar("#i"), Expr::intE(42)}),
                    PC, S);
  ASSERT_TRUE(St.ok());
  ASSERT_EQ(St->size(), 1u) << "empty memory: the store extends";
  auto Ld =
      (*St)[0].Mem.execAction(actLoad(), eargs({Expr::lvar("#i")}), PC, S);
  ASSERT_TRUE(Ld.ok());
  ASSERT_EQ(Ld->size(), 1u) << "definite alias with the stored offset";
  EXPECT_FALSE((*Ld)[0].IsError);
  EXPECT_EQ((*Ld)[0].Ret, Expr::intE(42));
}

TEST(LinearSMemT, MayAliasLoadBranchesPerStoredOffset) {
  LinearSMem M;
  M.setSize(8);
  M.setCell(Expr::lvar("#a"), Expr::intE(1));
  M.setCell(Expr::lvar("#b"), Expr::intE(2));
  Solver S;
  PathCondition PC;
  for (const char *V : {"#a", "#b", "#i"}) {
    PC.add(Expr::hasType(Expr::lvar(V), GilType::Int));
    PC.add(Expr::le(Expr::intE(0), Expr::lvar(V)));
    PC.add(Expr::lt(Expr::lvar(V), Expr::intE(8)));
  }
  auto R = M.execAction(actLoad(), eargs({Expr::lvar("#i")}), PC, S);
  ASSERT_TRUE(R.ok());
  // One world per stored offset the load may alias, plus the zero-default
  // miss world — the [S-Lookup] branch set with linear's miss policy.
  int Successes = 0;
  bool SawZeroDefault = false;
  for (auto &Br : *R) {
    EXPECT_FALSE(Br.IsError) << "in-bounds load never faults";
    ++Successes;
    if (Br.Ret == Expr::intE(0))
      SawZeroDefault = true;
  }
  EXPECT_EQ(Successes, 3);
  EXPECT_TRUE(SawZeroDefault);
}

TEST(LinearSMemT, InterpretationRoundTrips) {
  LinearSMem SM;
  SM.setSize(4);
  SM.setCell(Expr::lvar("#i"), Expr::lvar("#v"));
  Model Eps;
  Eps.bind(InternedString::get("#i"), Value::intV(2));
  Eps.bind(InternedString::get("#v"), Value::intV(7));
  Result<LinearCMem> CM = interpretMemory(Eps, SM);
  ASSERT_TRUE(CM.ok()) << CM.error();
  EXPECT_EQ(CM->size(), 4);
  EXPECT_EQ(*CM->execAction(actLoad(), args({Value::intV(2)})),
            Value::intV(7));
}

TEST(LinearSMemT, InterpretationRejectsCollapsesAndEscapes) {
  LinearSMem SM;
  SM.setSize(4);
  SM.setCell(Expr::lvar("#i"), Expr::intE(1));
  SM.setCell(Expr::lvar("#j"), Expr::intE(2));
  Model Collapse;
  Collapse.bind(InternedString::get("#i"), Value::intV(1));
  Collapse.bind(InternedString::get("#j"), Value::intV(1));
  Result<LinearCMem> C1 = interpretMemory(Collapse, SM);
  ASSERT_FALSE(C1.ok());
  EXPECT_NE(C1.error().find("offsets collapse"), std::string::npos);
  Model Escape;
  Escape.bind(InternedString::get("#i"), Value::intV(1));
  Escape.bind(InternedString::get("#j"), Value::intV(9));
  Result<LinearCMem> C2 = interpretMemory(Escape, SM);
  ASSERT_FALSE(C2.ok());
  EXPECT_NE(C2.error().find("outside the memory"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The GIL suites through the full engine
//===----------------------------------------------------------------------===//

TEST(LinearSuites, CleanSuitesVerify) {
  uint64_t Tests = 0;
  for (const LinearSuite &Su : linearSuites()) {
    Result<Prog> P = parseGilProg(Su.Source);
    ASSERT_TRUE(P.ok()) << Su.Name << ": " << P.error();
    EngineOptions Opts;
    targets::SuiteResult R =
        targets::runSuite<LinearSMem>(Su.Name, *P, Opts);
    EXPECT_TRUE(R.clean()) << Su.Name << ": "
                           << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
    EXPECT_EQ(R.BoundedPaths, 0u) << Su.Name;
    Tests += R.Tests;
  }
  EXPECT_EQ(Tests, 8u) << "3 basic + 3 symbolic + 2 bounds";
}

TEST(LinearSuites, SeededFaultsAreDetectedWithCounterModels) {
  for (const LinearSuite &Su : linearSeededSuites()) {
    Result<Prog> P = parseGilProg(Su.Source);
    ASSERT_TRUE(P.ok()) << Su.Name << ": " << P.error();
    EngineOptions Opts;
    targets::SuiteResult R =
        targets::runSuite<LinearSMem>(Su.Name, *P, Opts);
    EXPECT_EQ(R.Bugs.size(), 2u) << "the off-by-one read and the negative "
                                    "grow";
    bool SawOob = false, SawNegGrow = false;
    for (const BugReport &B : R.Bugs) {
      if (B.Message.find("out-of-bounds load") != std::string::npos) {
        SawOob = true;
        EXPECT_TRUE(B.Confirmed) << "bounds fault needs a counter-model";
      }
      if (B.Message.find("grow by negative size") != std::string::npos)
        SawNegGrow = true;
    }
    EXPECT_TRUE(SawOob);
    EXPECT_TRUE(SawNegGrow);
  }
}
