//===- examples/custom_language.cpp ---------------------------------------===//
//
// The tool-developer story (§4.3): instantiating Gillian with a brand-new
// memory model. Everything a new target language needs is in this one
// file:
//
//   1. a concrete memory model (Def 2.3) — here, a machine of named
//      saturating counters whose `dec` action faults below zero;
//   2. a symbolic memory model (Def 2.4) — counters hold logical
//      expressions; `dec` branches on whether the counter may be zero,
//      returning the branch condition π' exactly as the Fig. 3 rules do.
//      The branching is written with the memory-model construction kit
//      (engine/memlib/, DESIGN.md §4h): BranchCtx::checkOrError emits
//      the fault world and the strengthened success world, so the model
//      never touches the solver directly. For the full kit story —
//      expression-keyed maps with the shared may-alias loop — see
//      src/linear/memory.h, the repo's fourth instantiation;
//   3. a program over the new actions, written in textual GIL;
//   4. both engines, obtained by instantiating the same interpreter
//      template with CSC/SSC liftings of the two memories (Defs 2.5/2.6).
//
// Build & run:  ./build/examples/custom_language
//
//===----------------------------------------------------------------------===//

#include "engine/action_args.h"
#include "engine/memlib/memlib.h"
#include "engine/test_runner.h"
#include "gil/parser.h"

#include <cstdio>

using namespace gillian;

namespace {

InternedString actInc() { return InternedString::get("inc"); }
InternedString actDec() { return InternedString::get("dec"); }
InternedString actRead() { return InternedString::get("read"); }

/// Concrete counters: name -> non-negative integer.
struct CounterCMem {
  CowMap<InternedString, Value> Counters;

  Result<Value> execAction(InternedString Act, const Value &Arg) {
    if (!Arg.isList() || Arg.asList().size() != 1 ||
        !Arg.asList()[0].isStr())
      return Err("counter actions expect [name]");
    InternedString Name = Arg.asList()[0].asStr();
    const Value *Cur = Counters.lookup(Name);
    int64_t V = Cur ? Cur->asInt() : 0;
    if (Act == actInc()) {
      Counters.set(Name, Value::intV(V + 1));
      return Value::intV(V + 1);
    }
    if (Act == actDec()) {
      if (V == 0)
        return Err("counter fault: decrement of zero counter " +
                   std::string(Name.str()));
      Counters.set(Name, Value::intV(V - 1));
      return Value::intV(V - 1);
    }
    if (Act == actRead())
      return Value::intV(V);
    return Err("unknown counter action");
  }
};

/// Symbolic counters: name -> integer-valued logical expression. The
/// decrement faults on the (satisfiable) zero world and succeeds on the
/// positive world — a two-branch action in the style of Fig. 3.
struct CounterSMem {
  CowMap<InternedString, Expr> Counters;

  Result<std::vector<SymActionBranch<CounterSMem>>>
  execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
             Solver &S) const {
    Result<std::vector<Expr>> Args = splitArgsE(Arg, 1);
    if (!Args || !(*Args)[0].isLit() || !(*Args)[0].litValue().isStr())
      return Err("counter actions expect [name]");
    InternedString Name = (*Args)[0].litValue().asStr();
    const Expr *CurP = Counters.lookup(Name);
    Expr Cur = CurP ? *CurP : Expr::intE(0);
    memlib::BranchCtx<CounterSMem> C(*this, PC, S);

    if (Act == actRead()) {
      C.ok(*this, Cur);
      return std::move(C.Out);
    }
    if (Act == actInc()) {
      CounterSMem Next = *this;
      Expr NewV = Expr::add(Cur, Expr::intE(1));
      Next.Counters.set(Name, NewV);
      C.ok(std::move(Next), NewV);
      return std::move(C.Out);
    }
    if (Act == actDec()) {
      // One kit call replaces the hand-rolled two-world split: the fault
      // branch is emitted for the worlds where the counter may be zero,
      // and the success branch runs under the strengthened condition.
      C.checkOrError(Expr::notE(Expr::eq(Cur, Expr::intE(0))),
                     Expr::boolE(true),
                     "counter fault: decrement of zero counter",
                     [&](Expr Under) {
                       CounterSMem Next = *this;
                       Expr NewV = Expr::sub(Cur, Expr::intE(1));
                       Next.Counters.set(Name, NewV);
                       C.ok(std::move(Next), NewV, std::move(Under));
                     });
      return std::move(C.Out);
    }
    return Err("unknown counter action");
  }
};

static_assert(ConcreteMemoryModel<CounterCMem>);
static_assert(SymbolicMemoryModel<CounterSMem>);

} // namespace

int main() {
  // The target program, in textual GIL: `n` increments followed by
  // `n + 1` decrements — the last one can fault when the branches align.
  const char *Gil = R"(
    proc main(args) {
      0: n := isym(0);
      1: ifgoto (typeof(n) == ^Int) 3;
      2: vanish;
      3: ifgoto (0 <= n && n <= 2) 5;
      4: vanish;
      5: i := 0;
      6: ifgoto (n <= i) 10;
      7: t := @inc(["c"]);
      8: i := i + 1;
      9: goto 6;
      10: j := 0;
      11: ifgoto (n + 1 <= j) 15;
      12: t := @dec(["c"]);
      13: j := j + 1;
      14: goto 11;
      15: r := @read(["c"]);
      16: return r;
    }
  )";
  Result<Prog> P = parseGilProg(Gil);
  if (!P) {
    std::fprintf(stderr, "GIL parse error: %s\n", P.error().c_str());
    return 1;
  }

  // Concrete run (iSym defaults to 0: one decrement of a zero counter).
  EngineOptions Opts;
  ExecStats CStats;
  auto CR = runConcrete<CounterCMem>(*P, "main", Opts, CStats);
  std::printf("concrete run: %s (%s)\n",
              CR.ok() ? std::string(outcomeKindName(CR->Kind)).c_str()
                      : "engine error",
              CR.ok() ? CR->Val.toString().c_str() : CR.error().c_str());

  // Symbolic run: every n in [0, 2] explored; each world faults on the
  // final decrement.
  Solver Slv(Opts.Solver);
  SymbolicTestResult R = runSymbolicTest<CounterSMem>(*P, "main", Opts, Slv);
  std::printf("symbolic run: %llu returned, %llu bug report(s)\n",
              static_cast<unsigned long long>(R.PathsReturned),
              static_cast<unsigned long long>(R.Bugs.size()));
  for (const BugReport &B : R.Bugs)
    std::printf("  %s%s\n    under: %s\n", B.Message.c_str(),
                B.Confirmed ? " [confirmed]" : "", B.PathCond.c_str());
  std::printf("\nThat is the whole §4.3 workload for a new language: two "
              "memory models and a compiler (here: hand-written GIL).\n");
  return 0;
}
