//===- bench/bench_ablation_engine.cpp ------------------------------------===//
//
// Ablation of the engine improvements §4.1 credits for the ~2x speedup of
// Gillian-JS over JaVerT 2.0: expression simplification, the
// simplification memo, solver result caching, independence slicing, the
// syntactic solver layer, and incremental Z3 sessions. Each row disables
// one ingredient on the
// full Buckets workload and reports the solver cache hit rate; a final
// JSON line carries the per-configuration solver-layer statistics.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "targets/buckets_mjs.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>
#include <functional>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::targets;

namespace {

struct RunResult {
  double Seconds = 0;
  SolverStats Solver;
};

RunResult runAll(const EngineOptions &Opts) {
  RunResult Res;
  auto T0 = std::chrono::steady_clock::now();
  for (const BucketsSuite &S : bucketsSuites()) {
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = compileMjsSource(Src);
    if (!P) {
      std::fprintf(stderr, "compile error: %s\n", P.error().c_str());
      std::exit(1);
    }
    SuiteResult R = runSuite<MjsSMem>(S.Name, *P, Opts);
    if (!R.clean()) {
      std::fprintf(stderr, "unexpected bug in ablation run: %s\n",
                   R.Bugs[0].Message.c_str());
      std::exit(1);
    }
    Res.Solver += R.Solver;
  }
  Res.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  return Res;
}

} // namespace

int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bench::setupObs(Args);
  struct Config {
    const char *Name;
    std::function<EngineOptions()> Make;
  };
  const Config Configs[] = {
      {"full (Gillian)", [] { return EngineOptions(); }},
      {"no simplifier cache",
       [] {
         EngineOptions O;
         O.UseSimplifierCache = false;
         return O;
       }},
      {"no solver cache",
       [] {
         EngineOptions O;
         O.Solver.UseCache = false;
         return O;
       }},
      {"no slicing",
       [] {
         EngineOptions O;
         O.Solver.UseSlicing = false;
         return O;
       }},
      {"no syntactic layer",
       [] {
         EngineOptions O;
         O.Solver.UseSyntactic = false;
         return O;
       }},
      {"no incremental sessions",
       [] {
         EngineOptions O;
         O.Solver.UseIncremental = false;
         return O;
       }},
      {"legacy JaVerT 2.0",
       [] { return EngineOptions::legacyJaVerT2(); }},
      {"parallel",
       [&Args] {
         EngineOptions O;
         O.Scheduler.Workers = Args.Workers;
         return O;
       }},
  };

  std::printf("Engine ablation on the full Buckets workload "
              "(11 suites, 74 symbolic tests)\n");
  std::printf("%-22s %10s %10s %9s\n", "Configuration", "Time", "vs full",
              "HitRate");
  double Base = 0;
  std::string ConfigsJson;
  for (const Config &C : Configs) {
    // Cold caches per configuration: runSuite feeds the process-wide
    // solver cache, which would otherwise warm every later row.
    bench::coldStart();
    RunResult R = runAll(C.Make());
    if (Base == 0)
      Base = R.Seconds;
    std::printf("%-22s %9.3fs %9.2fx %8.1f%%\n", C.Name, R.Seconds,
                Base > 0 ? R.Seconds / Base : 0.0,
                100.0 * R.Solver.cacheHitRate());
    obs::JsonWriter Row;
    Row.beginObject();
    Row.field("name", C.Name);
    Row.field("time_s", R.Seconds, 6);
    Row.key("solver");
    Row.raw(solverStatsJson(R.Solver));
    Row.endObject();
    if (!ConfigsJson.empty())
      ConfigsJson += ",";
    ConfigsJson += Row.take();
  }
  std::printf("\nPaper shape check: the legacy configuration is the "
              "slowest (§4.1 credits simplification and caching for the "
              "J2 -> GJS speedup). In our engine the solver result cache "
              "is the dominant ingredient: without it, repeated aliasing "
              "and branch-feasibility queries pay SMT round-trips.\n");
  if (Args.Json) {
    obs::JsonWriter W;
    W.beginObject();
    W.field("bench", "ablation_engine");
    W.key("configs");
    W.beginArray();
    W.raw(ConfigsJson);
    W.endArray();
    W.key("coverage");
    W.raw(obs::BranchCoverage::instance().json());
    W.key("obs");
    W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
    W.endObject();
    std::printf("\n%s\n", W.take().c_str());
  }
  bench::finishObs(Args);
  return 0;
}
