//===- tests/targets/summary_differential_test.cpp ------------------------===//
//
// Transparency of the procedure summary cache (src/engine/summary/,
// DESIGN.md §4g) on the evaluation workloads: every MJS (Buckets) and MC
// (Collections) example suite, plus call-heavy While programs, explored
// with summaries ON and OFF, at workers ∈ {1, 4}, under the oldest-first
// and coverage-guided strategies, yields the identical *ordered* sequence
// of (outcome kind, outcome value, final path condition) signatures and
// identical engine-layer ExecStats. Replay re-emits the recorded branch
// and coverage events of the memoised body, so result order, PathId
// assignment, CmdsExecuted and Branches are all bit-identical to
// re-execution; only solver-layer counters may differ (skipped queries
// are the point of the cache).
//
// An engagement guard rides along: on the Buckets workload the MJS
// runtime helpers (__mjs_truthy, __mjs_add, ...) are summary-eligible and
// called constantly, so the store must actually record and replay — the
// differential must not pass vacuously.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/summary/summary_store.h"
#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/summary_stats.h"
#include "targets/suite_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

struct SummaryRunConfig {
  uint32_t Workers = 1;
  SelectionStrategy Strategy = SelectionStrategy::OldestFirst;
  bool Summaries = true;
};

struct RunOutcome {
  /// Path signatures in the engine's result order — NOT sorted: replay
  /// must reproduce the exact sequence, not just the multiset.
  std::vector<std::string> Sigs;
  /// Engine-layer counters (the solver-layer ones are *expected* to
  /// differ — the cache exists to skip queries).
  uint64_t Cmds = 0, Branches = 0, ProcCalls = 0, ActionCalls = 0;
  uint64_t Finished = 0, Errored = 0, Vanished = 0, Bounded = 0;
};

/// Runs every `test_*` procedure of \p P from a cold summary store and a
/// private solver cache, rendering each finished path in order.
template <typename M>
RunOutcome suiteOutcome(const Prog &P, const SummaryRunConfig &C) {
  ProcedureSummaryStore::process().clear(); // cold store: runs independent
  EngineOptions Opts;
  Opts.UseSummaries = C.Summaries;
  Opts.Scheduler.Workers = C.Workers;
  Opts.Scheduler.Strategy = C.Strategy;
  Solver Slv(Opts.Solver);
  ExecStats Stats;
  using St = SymbolicState<M>;
  RunOutcome Out;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    for (TraceResult<St> &R : *Traces)
      Out.Sigs.push_back(T + "|" + std::string(outcomeKindName(R.Kind)) +
                         "|" + R.Val.toString() + "|" +
                         R.Final.pathCondition().toString());
  }
  Out.Cmds = Stats.CmdsExecuted.load();
  Out.Branches = Stats.Branches.load();
  Out.ProcCalls = Stats.ProcCalls.load();
  Out.ActionCalls = Stats.ActionCalls.load();
  Out.Finished = Stats.PathsFinished.load();
  Out.Errored = Stats.PathsErrored.load();
  Out.Vanished = Stats.PathsVanished.load();
  Out.Bounded = Stats.PathsBounded.load();
  return Out;
}

template <typename M>
void expectSummariesTransparent(const Prog &P, std::string_view Name) {
  for (uint32_t Workers : {1u, 4u}) {
    for (SelectionStrategy Strategy : {SelectionStrategy::OldestFirst,
                                       SelectionStrategy::CoverageGuided}) {
      SummaryRunConfig C;
      C.Workers = Workers;
      C.Strategy = Strategy;
      C.Summaries = false;
      RunOutcome Off = suiteOutcome<M>(P, C);
      C.Summaries = true;
      RunOutcome On = suiteOutcome<M>(P, C);
      std::string Where =
          std::string(Name) + " at workers=" + std::to_string(Workers) +
          " strategy=" + std::string(strategyName(Strategy));
      EXPECT_FALSE(Off.Sigs.empty()) << Where;
      EXPECT_EQ(Off.Sigs, On.Sigs)
          << Where << ": summary replay changed an outcome or its order";
      EXPECT_EQ(Off.Cmds, On.Cmds) << Where << ": GIL command count drifted";
      EXPECT_EQ(Off.Branches, On.Branches) << Where;
      EXPECT_EQ(Off.ProcCalls, On.ProcCalls) << Where;
      EXPECT_EQ(Off.ActionCalls, On.ActionCalls) << Where;
      EXPECT_EQ(Off.Finished, On.Finished) << Where;
      EXPECT_EQ(Off.Errored, On.Errored) << Where;
      EXPECT_EQ(Off.Vanished, On.Vanished) << Where;
      EXPECT_EQ(Off.Bounded, On.Bounded) << Where;
    }
  }
}

class BucketsSummaryTest : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsSummaryTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

/// While programs shaped to stress the cache: the same helper called from
/// many sites and under many path conditions (slice-keyed hits), a helper
/// whose argument stays concrete (one entry, many replays), and an
/// erroring helper (terminal Error outcomes must splice correctly).
const char *const WhileSources[] = {
    "function test_helper_reuse() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x < 4);\n"
    "  a := clamppos(x);\n"
    "  b := clamppos(x - 1);\n"
    "  c := clamppos(x - 2);\n"
    "  s := a + b + c;\n"
    "  assert (0 <= s);\n"
    "  return s;\n}\n"
    "function clamppos(v) {\n"
    "  if (v < 0) { return 0; }\n"
    "  return v;\n}\n",
    "function test_concrete_args() {\n"
    "  i := 0; s := 0;\n"
    "  while (i < 5) { t := double(i); s := s + t; i := i + 1; }\n"
    "  assert (s == 20);\n"
    "  return s;\n}\n"
    "function double(v) { return v * 2; }\n",
    "function test_error_paths() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x < 3);\n"
    "  y := checked(x);\n"
    "  return y;\n}\n"
    "function checked(v) {\n"
    "  assert (!(v == 2));\n"
    "  return v + 1;\n}\n",
};

} // namespace

TEST_P(BucketsSummaryTest, OutcomesMatchWithSummariesOnAndOff) {
  const BucketsSuite &S = GetParam();
  std::string Src =
      std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectSummariesTransparent<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsSummaryTest, ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsSummaryTest, OutcomesMatchWithSummariesOnAndOff) {
  const CollectionsSuite &S = GetParam();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectSummariesTransparent<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsSummaryTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(WhileSummaryTest, OutcomesMatchWithSummariesOnAndOff) {
  for (const char *Src : WhileSources) {
    Result<Prog> P = whilelang::compileWhileSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    expectSummariesTransparent<whilelang::WhileSMem>(*P, "while");
  }
}

TEST(WhileSummaryTest, SummaryCacheActuallyEngages) {
  // Guard against the differential passing vacuously: on the Buckets
  // workload the MJS runtime helpers are eligible and hot, so with
  // summaries on the store must record entries, take hits, and replay
  // outcomes.
  std::vector<BucketsSuite> Suites = bucketsSuites();
  ASSERT_FALSE(Suites.empty());
  std::string Src = std::string(bucketsLibrary()) + "\n" +
                    std::string(Suites.front().Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  obs::SummaryGlobalStats &G = obs::summaryGlobalStats();
  uint64_t Hits0 = G.Hits.load();
  uint64_t Replayed0 = G.ReplayedOutcomes.load();
  SummaryRunConfig C;
  C.Summaries = true;
  RunOutcome On = suiteOutcome<mjs::MjsSMem>(*P, C);
  EXPECT_FALSE(On.Sigs.empty());
  EXPECT_GT(G.Hits.load(), Hits0)
      << "no summary hit on the Buckets workload: the cache is inert";
  EXPECT_GT(G.ReplayedOutcomes.load(), Replayed0);
  EXPECT_GT(ProcedureSummaryStore::process().size(), 0u);
}
