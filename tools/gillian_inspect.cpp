//===- tools/gillian_inspect.cpp - Execution-journal inspector ------------===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline inspector for execution journals (DESIGN.md §4i):
///
///   gillian-inspect tree <journal> [--depth=N] [--json]
///   gillian-inspect why  <journal> <path-id|branch-trace>
///   gillian-inspect diff <a> <b> [--json] [--top=N]
///
/// Journals come from `--journal-out=` on any bench driver or from
/// GILLIAN_JOURNAL=path on a ctest suite run. A branch trace is
/// "<entry-proc>[#k][:i.j.k]" — the worker/strategy-invariant path name.
///
//===----------------------------------------------------------------------===//

#include "obs/journal/analysis.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gillian::obs::journal;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: gillian-inspect tree <journal> [--depth=N] [--json]\n"
      "       gillian-inspect why  <journal> <path-id|branch-trace>\n"
      "       gillian-inspect diff <a> <b> [--json] [--top=N]\n");
  return 2;
}

bool load(const char *Path, JournalData &D) {
  std::string Err;
  if (!readJournalFile(Path, D, Err)) {
    std::fprintf(stderr, "gillian-inspect: %s: %s\n", Path, Err.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Cmd = Argv[1];
  std::vector<std::string> Pos;
  bool Json = false;
  size_t Depth = 4, Top = 16;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json")
      Json = true;
    else if (A.rfind("--depth=", 0) == 0)
      Depth = std::strtoull(A.c_str() + 8, nullptr, 10);
    else if (A.rfind("--top=", 0) == 0)
      Top = std::strtoull(A.c_str() + 6, nullptr, 10);
    else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "gillian-inspect: unknown flag %s\n", A.c_str());
      return usage();
    } else
      Pos.push_back(A);
  }

  if (Cmd == "tree") {
    if (Pos.size() != 1)
      return usage();
    JournalData D;
    if (!load(Pos[0].c_str(), D))
      return 1;
    std::string Out = Json ? treeJson(D, Depth) : treeText(D, Depth);
    std::fputs(Out.c_str(), stdout);
    if (Json)
      std::fputc('\n', stdout);
    return 0;
  }
  if (Cmd == "why") {
    if (Pos.size() != 2)
      return usage();
    JournalData D;
    if (!load(Pos[0].c_str(), D))
      return 1;
    std::string Out;
    bool Ok = whyText(D, Pos[1], Out);
    std::fputs(Out.c_str(), Ok ? stdout : stderr);
    return Ok ? 0 : 1;
  }
  if (Cmd == "diff") {
    if (Pos.size() != 2)
      return usage();
    JournalData A, B;
    if (!load(Pos[0].c_str(), A) || !load(Pos[1].c_str(), B))
      return 1;
    std::string Out = Json ? diffJson(A, B, Top) : diffText(A, B, Top);
    std::fputs(Out.c_str(), stdout);
    if (Json)
      std::fputc('\n', stdout);
    return 0;
  }
  return usage();
}
