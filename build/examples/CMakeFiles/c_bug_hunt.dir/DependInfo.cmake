
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/c_bug_hunt.cpp" "examples/CMakeFiles/c_bug_hunt.dir/c_bug_hunt.cpp.o" "gcc" "examples/CMakeFiles/c_bug_hunt.dir/c_bug_hunt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/gillian_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gillian_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/gillian_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/gil/CMakeFiles/gillian_gil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gillian_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
