file(REMOVE_RECURSE
  "CMakeFiles/mjs_test.dir/mjs/compiler_test.cpp.o"
  "CMakeFiles/mjs_test.dir/mjs/compiler_test.cpp.o.d"
  "CMakeFiles/mjs_test.dir/mjs/memory_test.cpp.o"
  "CMakeFiles/mjs_test.dir/mjs/memory_test.cpp.o.d"
  "CMakeFiles/mjs_test.dir/mjs/symbolic_test.cpp.o"
  "CMakeFiles/mjs_test.dir/mjs/symbolic_test.cpp.o.d"
  "mjs_test"
  "mjs_test.pdb"
  "mjs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
