# Empty dependencies file for gillian_gil.
# This may be replaced when dependencies are built.
