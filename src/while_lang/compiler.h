//===- while_lang/compiler.h - While -> GIL (Fig. 2) -----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The While-to-GIL compiler of §2.2 (Fig. 2). The action set is
/// A_While = {lookup, mutate, dispose}; object creation uses the built-in
/// allocator via the GIL uSym command, exactly as the [New] rule shows.
/// Multi-parameter functions compile to single-parameter GIL procedures
/// taking a list, with a destructuring prologue.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_WHILE_COMPILER_H
#define GILLIAN_WHILE_COMPILER_H

#include "gil/prog.h"
#include "support/result.h"
#include "while_lang/ast.h"

namespace gillian::whilelang {

/// Action names of the While memory model.
InternedString actLookup();
InternedString actMutate();
InternedString actDispose();

/// Compiles a While program to GIL. Allocation sites are numbered per
/// program, so uSym/iSym sites are stable across compilations of the same
/// source (which the soundness replay tests rely on).
Result<Prog> compileWhile(const Program &P);

/// Parses and compiles in one step.
Result<Prog> compileWhileSource(std::string_view Source);

} // namespace gillian::whilelang

#endif // GILLIAN_WHILE_COMPILER_H
