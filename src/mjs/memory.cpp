//===- mjs/memory.cpp -----------------------------------------------------===//

#include "mjs/memory.h"

#include "engine/action_args.h"
#include "obs/action_counters.h"

using namespace gillian;
using namespace gillian::mjs;
using memlib::BranchCtx;
using memlib::resolveAliases;

InternedString gillian::mjs::actNewObj() { return InternedString::get("newObj"); }
InternedString gillian::mjs::actDelObj() { return InternedString::get("delObj"); }
InternedString gillian::mjs::actGetProp() { return InternedString::get("getProp"); }
InternedString gillian::mjs::actSetProp() { return InternedString::get("setProp"); }
InternedString gillian::mjs::actDelProp() { return InternedString::get("delProp"); }
InternedString gillian::mjs::actHasProp() { return InternedString::get("hasProp"); }
InternedString gillian::mjs::actGetMeta() { return InternedString::get("getMeta"); }
InternedString gillian::mjs::actSetMeta() { return InternedString::get("setMeta"); }

Value gillian::mjs::jsUndefined() { return Value::symV("$undefined"); }
Value gillian::mjs::jsNull() { return Value::symV("$null"); }

//===----------------------------------------------------------------------===//
// Concrete memory
//===----------------------------------------------------------------------===//

void MjsCMem::defineObject(InternedString Loc, Value MetaVal) {
  Heap.set(Loc, PropMap());
  Meta.set(Loc, std::move(MetaVal));
}

void MjsCMem::setProp(InternedString Loc, InternedString P, Value V) {
  const PropMap *Props = Heap.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Heap.set(Loc, std::move(NewProps));
}

Result<InternedString> MjsCMem::liveLoc(const Value &Loc,
                                        const char *What) const {
  if (!Loc.isSym())
    return Err(std::string("TypeError: ") + What + " on non-object " +
               Loc.toString());
  if (Deleted.contains(Loc.asSym()))
    return Err(std::string("TypeError: ") + What + " on deleted object " +
               Loc.toString());
  if (!Heap.contains(Loc.asSym()))
    return Err(std::string("TypeError: ") + What + " on unknown object " +
               Loc.toString());
  return Loc.asSym();
}

Result<Value> MjsCMem::execAction(InternedString Act, const Value &Arg) {
  if (Act == actNewObj()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    if (!(*A)[0].isSym())
      return Err("newObj expects a fresh location symbol");
    defineObject((*A)[0].asSym(), (*A)[1]);
    return (*A)[0];
  }
  if (Act == actDelObj()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "delObj");
    if (!L)
      return Err(L.error());
    Heap.erase(*L);
    Meta.erase(*L);
    Deleted.mark(*L);
    return Value::boolV(true);
  }
  if (Act == actGetProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "getProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name " + (*A)[1].toString() +
                 " is not a string");
    const Value *V = Heap.lookup(*L)->lookup((*A)[1].asStr());
    return V ? *V : jsUndefined();
  }
  if (Act == actSetProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 3);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "setProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name " + (*A)[1].toString() +
                 " is not a string");
    setProp(*L, (*A)[1].asStr(), (*A)[2]);
    return (*A)[2];
  }
  if (Act == actDelProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "delProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name is not a string");
    PropMap Props = *Heap.lookup(*L);
    Props.erase((*A)[1].asStr()); // deleting an absent property is a no-op
    Heap.set(*L, std::move(Props));
    return Value::boolV(true);
  }
  if (Act == actHasProp()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "hasProp");
    if (!L)
      return Err(L.error());
    if (!(*A)[1].isStr())
      return Err("TypeError: property name is not a string");
    return Value::boolV(Heap.lookup(*L)->contains((*A)[1].asStr()));
  }
  if (Act == actGetMeta()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 1);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "getMeta");
    if (!L)
      return Err(L.error());
    const Value *V = Meta.lookup(*L);
    return V ? *V : jsUndefined();
  }
  if (Act == actSetMeta()) {
    Result<std::vector<Value>> A = splitArgs(Arg, 2);
    if (!A)
      return Err(A.error());
    Result<InternedString> L = liveLoc((*A)[0], "setMeta");
    if (!L)
      return Err(L.error());
    Meta.set(*L, (*A)[1]);
    return (*A)[1];
  }
  return Err("unknown MJS action '" + std::string(Act.str()) + "'");
}

std::string MjsCMem::toString() const {
  return memlib::printEntries(Heap, [](InternedString Loc,
                                       const PropMap &Props) {
    return std::string(Loc.str()) + " -> " +
           memlib::printObject(
               Props, [](InternedString P) { return std::string(P.str()); },
               [](const Value &V) { return V.toString(); });
  });
}

//===----------------------------------------------------------------------===//
// Symbolic memory
//===----------------------------------------------------------------------===//

void MjsSMem::defineObject(const Expr &Loc, Expr MetaVal) {
  Heap.set(Loc, PropMap());
  Meta.set(Loc, std::move(MetaVal));
}

void MjsSMem::setProp(const Expr &Loc, const Expr &P, Expr V) {
  const PropMap *Props = Heap.lookup(Loc);
  PropMap NewProps = Props ? *Props : PropMap();
  NewProps.set(P, std::move(V));
  Heap.set(Loc, std::move(NewProps));
}

Result<std::vector<SymActionBranch<MjsSMem>>>
MjsSMem::execAction(InternedString Act, const Expr &Arg,
                    const PathCondition &PC, Solver &S) const {
  obs::ActionCounters::bump("mjs", Act);
  // newObj: registration of a freshly-allocated location; never branches.
  if (Act == actNewObj()) {
    Result<std::vector<Expr>> A = splitArgsE(Arg, 2);
    if (!A)
      return Err(A.error());
    MjsSMem Next = *this;
    Next.defineObject((*A)[0], (*A)[1]);
    std::vector<SymActionBranch<MjsSMem>> Out;
    Out.push_back({std::move(Next), (*A)[0], Expr(), false});
    return Out;
  }

  auto argCount = [&]() -> size_t {
    if (Act == actGetProp() || Act == actDelProp() || Act == actHasProp() ||
        Act == actSetMeta())
      return 2;
    if (Act == actSetProp())
      return 3;
    return 1; // delObj / getMeta
  };
  Result<std::vector<Expr>> A = splitArgsE(Arg, argCount());
  if (!A)
    return Err(A.error());
  const Expr &Loc = (*A)[0];

  BranchCtx<MjsSMem> Ctx(*this, PC, S);
  std::string ActName(Act.str());
  Expr Live = Expr::boolE(true);
  if (!Deleted.guard(Ctx, Loc, "TypeError: " + ActName + " on deleted object",
                     Live))
    return Ctx.Out;

  /// Runs \p Body(objectKey, props, takenCond) for every stored object the
  /// location may alias (the outer resolveAliases level); the no-object
  /// world is a TypeError.
  auto forEachAlias = [&](const char *What, auto Body) {
    resolveAliases(
        Ctx, Heap, Loc, Live, {},
        [&](const Expr &Key, const PropMap &Props, const Expr &Taken, bool) {
          Body(Key, Props, Taken);
        },
        [&](const Expr &Miss) {
          Ctx.error(std::string("TypeError: ") + What + " on unknown object",
                    Miss);
        });
  };

  if (Act == actGetProp()) {
    const Expr &P = (*A)[1];
    forEachAlias("getProp", [&](const Expr &, const PropMap &Props,
                                const Expr &Taken) {
      // [SGetProp]: the inner resolveAliases level branches over stored
      // properties this name may equal; an absent property on an existing
      // object is $undefined (JS semantics), not a fault.
      resolveAliases(
          Ctx, Props, P, Taken, {},
          [&](const Expr &, const Expr &V, const Expr &Br, bool) {
            Ctx.ok(*this, V, Br);
          },
          [&](const Expr &Absent) {
            Ctx.ok(*this, Expr::lit(jsUndefined()), Absent);
          });
    });
    return Ctx.Out;
  }

  if (Act == actSetProp()) {
    const Expr &P = (*A)[1];
    const Expr &V = (*A)[2];
    forEachAlias("setProp", [&](const Expr &Key, const PropMap &Props,
                                const Expr &Taken) {
      resolveAliases(
          Ctx, Props, P, Taken, {},
          [&](const Expr &PK, const Expr &, const Expr &Br, bool) {
            MjsSMem Next = *this;
            Next.setProp(Key, PK, V);
            Ctx.ok(std::move(Next), V, Br);
          },
          [&](const Expr &Fresh) {
            MjsSMem Next = *this;
            Next.setProp(Key, P, V);
            Ctx.ok(std::move(Next), V, Fresh);
          });
    });
    return Ctx.Out;
  }

  if (Act == actDelProp()) {
    const Expr &P = (*A)[1];
    forEachAlias("delProp", [&](const Expr &Key, const PropMap &Props,
                                const Expr &Taken) {
      resolveAliases(
          Ctx, Props, P, Taken, {},
          [&](const Expr &PK, const Expr &, const Expr &Br, bool) {
            MjsSMem Next = *this;
            PropMap NewProps = Props;
            NewProps.erase(PK);
            Next.Heap.set(Key, std::move(NewProps));
            Ctx.ok(std::move(Next), Expr::boolE(true), Br);
          },
          [&](const Expr &Untouched) {
            Ctx.ok(*this, Expr::boolE(true), Untouched);
          });
    });
    return Ctx.Out;
  }

  if (Act == actHasProp()) {
    const Expr &P = (*A)[1];
    forEachAlias("hasProp", [&](const Expr &, const PropMap &Props,
                                const Expr &Taken) {
      resolveAliases(
          Ctx, Props, P, Taken, {},
          [&](const Expr &, const Expr &, const Expr &Br, bool) {
            Ctx.ok(*this, Expr::boolE(true), Br);
          },
          [&](const Expr &Absent) {
            Ctx.ok(*this, Expr::boolE(false), Absent);
          });
    });
    return Ctx.Out;
  }

  if (Act == actDelObj()) {
    forEachAlias("delObj", [&](const Expr &Key, const PropMap &,
                               const Expr &Taken) {
      MjsSMem Next = *this;
      Next.Heap.erase(Key);
      Next.Meta.erase(Key);
      Next.Deleted.mark(Key);
      Ctx.ok(std::move(Next), Expr::boolE(true), Taken);
    });
    return Ctx.Out;
  }

  if (Act == actGetMeta()) {
    forEachAlias("getMeta", [&](const Expr &Key, const PropMap &,
                                const Expr &Taken) {
      const Expr *MV = Meta.lookup(Key);
      Ctx.ok(*this, MV ? *MV : Expr::lit(jsUndefined()), Taken);
    });
    return Ctx.Out;
  }

  if (Act == actSetMeta()) {
    const Expr &V = (*A)[1];
    forEachAlias("setMeta", [&](const Expr &Key, const PropMap &,
                                const Expr &Taken) {
      MjsSMem Next = *this;
      Next.Meta.set(Key, V);
      Ctx.ok(std::move(Next), V, Taken);
    });
    return Ctx.Out;
  }

  return Err("unknown MJS action '" + std::string(Act.str()) + "'");
}

std::string MjsSMem::toString() const {
  return memlib::printEntries(Heap, [](const Expr &Loc,
                                       const PropMap &Props) {
    return Loc.toString() + " -> " +
           memlib::printObject(
               Props, [](const Expr &P) { return P.toString(); },
               [](const Expr &V) { return V.toString(); });
  });
}

//===----------------------------------------------------------------------===//
// Memory interpretation
//===----------------------------------------------------------------------===//

Result<MjsCMem> gillian::mjs::interpretMemory(const Model &Eps,
                                              const MjsSMem &SMem) {
  MjsCMem Out;
  for (const auto &[LocE, Props] : SMem.heap()) {
    Result<Value> Loc = Eps.eval(LocE);
    if (!Loc)
      return Err("interpretation failure on location " + LocE.toString());
    if (!Loc->isSym())
      return Err("location interprets to a non-symbol: " + Loc->toString());
    if (Out.heap().contains(Loc->asSym()))
      return Err("locations collapse under the model");
    Out.defineObject(Loc->asSym(), jsUndefined());
    for (const auto &[PE, VE] : Props) {
      Result<Value> P = Eps.eval(PE);
      Result<Value> V = Eps.eval(VE);
      if (!P || !V)
        return Err("interpretation failure on property of " +
                   LocE.toString());
      if (!P->isStr())
        return Err("property name interprets to a non-string");
      Out.setProp(Loc->asSym(), P->asStr(), V.take());
    }
  }
  for (const auto &[LocE, MetaE] : SMem.metadata()) {
    Result<Value> Loc = Eps.eval(LocE);
    Result<Value> MV = Eps.eval(MetaE);
    if (!Loc || !MV || !Loc->isSym())
      return Err("interpretation failure on metadata");
    Out.setMetaValue(Loc->asSym(), MV.take());
  }
  for (const auto &[DE, _] : SMem.deleted()) {
    Result<Value> D = Eps.eval(DE);
    if (!D || !D->isSym())
      return Err("interpretation failure on deleted location");
    Out.markDeleted(D->asSym());
  }
  return Out;
}
