# Empty dependencies file for gillian_mc.
# This may be replaced when dependencies are built.
