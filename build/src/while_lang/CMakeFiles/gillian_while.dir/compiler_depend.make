# Empty compiler generated dependencies file for gillian_while.
# This may be replaced when dependencies are built.
