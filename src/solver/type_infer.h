//===- solver/type_infer.h - Type inference over logical exprs -*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight type inference for logical variables, used by the solver
/// layers. GIL is dynamically typed, but path conditions in practice pin
/// down the type of almost every logical variable (symbolic-test inputs
/// carry `typeof(#x) == ^T` constraints, and operator usage determines the
/// rest). The Z3 backend requires types to pick sorts; the syntactic
/// solver uses them to refute heterogeneous equalities.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SOLVER_TYPE_INFER_H
#define GILLIAN_SOLVER_TYPE_INFER_H

#include "gil/expr.h"

#include <map>
#include <optional>
#include <vector>

namespace gillian {

/// Maps logical variables to their inferred GIL types. Variables absent
/// from the map have unconstrained type.
class TypeEnv {
public:
  std::optional<GilType> lookup(InternedString LVar) const {
    auto It = Types.find(LVar);
    if (It == Types.end())
      return std::nullopt;
    return It->second;
  }

  /// Records #LVar : T. Returns false on a conflict with an earlier,
  /// different type (which makes the overall constraint set unsatisfiable).
  bool assign(InternedString LVar, GilType T) {
    auto [It, Inserted] = Types.emplace(LVar, T);
    if (Inserted)
      Hash ^= mixEntry(LVar, T);
    return Inserted || It->second == T;
  }

  const std::map<InternedString, GilType> &all() const { return Types; }

  /// Order-independent content hash; used to key per-environment
  /// simplification and encoding memos. XOR-folds a *joint* mix of each
  /// (variable, type) pair: mixing id and type separately would make
  /// environments that swap types between two variables (e.g.
  /// {#x:Int,#y:Num} vs {#x:Num,#y:Int}) collide, and memo layers key on
  /// this value. Collisions are still possible (it is a hash, not an
  /// identity), so soundness-critical consumers must verify contents.
  uint64_t hash() const { return Hash; }

private:
  /// splitmix64 finalizer over the pair, so id and type diffuse together.
  static uint64_t mixEntry(InternedString LVar, GilType T) {
    uint64_t X = static_cast<uint64_t>(LVar.id()) * 0x9E3779B97F4A7C15ull +
                 static_cast<uint64_t>(T) + 0x632BE59Bu;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    return X ^ (X >> 31);
  }

  std::map<InternedString, GilType> Types;
  uint64_t Hash = 0;
};

/// Harvests typing facts from one conjunct assumed true into \p Env
/// (conflicts are ignored — an inconsistent path condition is handled by
/// the solver, not here). Used by SymbolicState to keep an incremental
/// TypeEnv as its path condition grows.
void absorbConjunct(const Expr &Conjunct, TypeEnv &Env);

/// Bottom-up static type of \p E under \p Env; nullopt when undetermined.
std::optional<GilType> staticType(const Expr &E, const TypeEnv &Env);

/// Infers logical-variable types from the conjuncts of a path condition.
///
/// Runs to a fixpoint over: `typeof(#x) == ^T` constraints, equalities
/// whose one side has known type, and operator-imposed operand types.
/// \returns false if a type conflict proves the conjuncts unsatisfiable.
bool inferTypes(const std::vector<Expr> &Conjuncts, TypeEnv &Env);

} // namespace gillian

#endif // GILLIAN_SOLVER_TYPE_INFER_H
