//===- obs/span.h - RAII layer timers with self/total time -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wall-time spans with thread-local nesting — the replacement for
/// the ad-hoc `EngineNs`/`SolverNs` stopwatches that were sprinkled
/// through the interpreter, scheduler and solver.
///
/// Every span records into the process-wide SpanTable under its SpanKind:
///  * total time — wall time between construction and destruction, the
///    classic stopwatch semantics (cumulative across threads under the
///    parallel scheduler, like the old counters);
///  * self time  — total minus the time spent in *nested* spans on the
///    same thread. Self times are mutually exclusive by construction, so
///    summed over all kinds they reproduce the top-level spans' wall time:
///    the per-layer attribution "engine vs simplifier vs cache vs
///    incremental-session vs cold Z3" sums to the measured wall clock
///    (the acceptance check of ISSUE 4).
///
/// A span can additionally feed a Counter slot (total time), which is how
/// the pre-existing per-instance fields — SolverStats::Z3Ns,
/// ExecStats::EngineNs, ... — keep their exact meaning while the global
/// attribution comes for free.
///
/// When tracing is enabled, spans also emit Begin/End events into the
/// flight recorder, which the chrome://tracing exporter renders as the
/// familiar nested flame bars.
///
/// Cost model: a live span is two steady_clock reads plus a handful of
/// relaxed atomic adds; a disabled one (ObsConfig::timing() false) is one
/// relaxed bool load. Per-command spans (Step/Simplify) burn their two
/// clock reads on very hot paths, so they are additionally gated behind
/// ObsConfig::detailedSpans().
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_SPAN_H
#define GILLIAN_OBS_SPAN_H

#include "obs/counters.h"
#include "obs/obs_config.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>

namespace gillian::obs {

/// The instrumented layers. Keep spanKindName() in sync — it is the single
/// source for JSON keys and chrome trace names.
enum class SpanKind : uint8_t {
  Explore,     ///< one exploration (sequential run() or parallel explore())
  Step,        ///< one interpreter step (detailed spans only)
  Simplify,    ///< expression simplification (detailed spans only)
  Solver,      ///< Solver::checkSat / verifiedModel total
  CacheLookup, ///< result-cache probes (full-query and slice)
  Slice,       ///< independence slicing (connected-component split)
  Canon,       ///< canonical slice-key construction
  Syntactic,   ///< syntactic core + syntactic model proposals
  IncExtend,   ///< incremental-session query (scoped Z3 push/pop)
  ColdZ3,      ///< cold re-encode Z3 round-trip
  ModelSearch, ///< counter-model search beyond checkSat
  NativeSolve, ///< native theory layer (clause store + equality core)
  AsyncWait,   ///< blocked on the async solver service's future
};
inline constexpr size_t NumSpanKinds =
    static_cast<size_t>(SpanKind::AsyncWait) + 1;

std::string_view spanKindName(SpanKind K);

/// A value snapshot of the global span table (plain uint64s, copyable).
struct SpanSnapshot {
  std::array<uint64_t, NumSpanKinds> TotalNs{};
  std::array<uint64_t, NumSpanKinds> SelfNs{};
  std::array<uint64_t, NumSpanKinds> Count{};

  uint64_t totalNs(SpanKind K) const {
    return TotalNs[static_cast<size_t>(K)];
  }
  uint64_t selfNs(SpanKind K) const {
    return SelfNs[static_cast<size_t>(K)];
  }
  uint64_t count(SpanKind K) const {
    return Count[static_cast<size_t>(K)];
  }
  /// Sum of self times over every kind — the layers' reconstruction of
  /// the top-level wall time (cumulative across threads).
  uint64_t sumSelfNs() const {
    uint64_t S = 0;
    for (uint64_t V : SelfNs)
      S += V;
    return S;
  }

  SpanSnapshot operator-(const SpanSnapshot &O) const {
    SpanSnapshot D;
    for (size_t I = 0; I < NumSpanKinds; ++I) {
      D.TotalNs[I] = TotalNs[I] - O.TotalNs[I];
      D.SelfNs[I] = SelfNs[I] - O.SelfNs[I];
      D.Count[I] = Count[I] - O.Count[I];
    }
    return D;
  }

  /// `{"explore":{"total_ns":..,"self_ns":..,"count":..},...}`, skipping
  /// kinds that never fired.
  void jsonInto(JsonWriter &W) const;
  std::string json() const;
};

/// The process-wide per-kind accumulator. Recording is relaxed-atomic;
/// snapshots are for quiescent points.
class SpanTable {
public:
  static SpanTable &global();

  void record(SpanKind K, uint64_t TotalNs, uint64_t SelfNs) {
    size_t I = static_cast<size_t>(K);
    Total[I].fetch_add(TotalNs, std::memory_order_relaxed);
    Self[I].fetch_add(SelfNs, std::memory_order_relaxed);
    N[I].fetch_add(1, std::memory_order_relaxed);
  }

  SpanSnapshot snapshot() const;
  void reset();

private:
  std::array<std::atomic<uint64_t>, NumSpanKinds> Total{};
  std::array<std::atomic<uint64_t>, NumSpanKinds> Self{};
  std::array<std::atomic<uint64_t>, NumSpanKinds> N{};
};

namespace detail {
/// Per-thread frame of the innermost live span: nested spans add their
/// total into the parent's ChildNs so the parent can compute self time.
struct SpanFrame {
  uint64_t ChildNs = 0;
  SpanFrame *Parent = nullptr;
};
SpanFrame *&currentSpanFrame();
void spanTraceBegin(SpanKind K);
void spanTraceEnd(SpanKind K);
} // namespace detail

/// The RAII span. \p Slot (optional) additionally receives the total
/// nanoseconds, preserving the semantics of the per-instance stopwatch
/// counters the spans subsume.
class Span {
public:
  explicit Span(SpanKind K, Counter *Slot = nullptr) : Kind(K), Slot(Slot) {
    if (!ObsConfig::timing())
      return;
    Live = true;
    T0 = std::chrono::steady_clock::now();
    detail::SpanFrame *&Cur = detail::currentSpanFrame();
    Frame.Parent = Cur;
    Cur = &Frame;
    if (ObsConfig::trace())
      detail::spanTraceBegin(Kind);
  }

  ~Span() {
    if (!Live)
      return;
    auto Dt = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    detail::currentSpanFrame() = Frame.Parent;
    if (Frame.Parent)
      Frame.Parent->ChildNs += Dt;
    uint64_t SelfNs = Dt >= Frame.ChildNs ? Dt - Frame.ChildNs : 0;
    SpanTable::global().record(Kind, Dt, SelfNs);
    if (Slot)
      Slot->fetch_add(Dt);
    if (ObsConfig::trace())
      detail::spanTraceEnd(Kind);
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  SpanKind Kind;
  Counter *Slot;
  bool Live = false;
  std::chrono::steady_clock::time_point T0;
  detail::SpanFrame Frame;
};

/// A Span that only fires under ObsConfig::detailedSpans() — for
/// per-command-grade layers (Step, Simplify) whose clock reads would not
/// fit the disabled-overhead budget.
class DetailSpan {
public:
  explicit DetailSpan(SpanKind K) {
    if (ObsConfig::detailedSpans())
      Inner.emplace(K);
  }

private:
  std::optional<Span> Inner;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_SPAN_H
