//===- obs/action_counters.cpp --------------------------------------------===//

#include "obs/action_counters.h"

using namespace gillian;
using namespace gillian::obs;

ActionCounters &ActionCounters::instance() {
  static ActionCounters A;
  return A;
}

void ActionCounters::bumpImpl(const char *Lang, InternedString Action) {
  Shard &S = shardFor(Action);
  std::lock_guard<std::mutex> Lock(S.Mu);
  for (auto &E : S.Entries) {
    if (E->Action == Action && E->Lang == Lang) {
      E->Count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  auto E = std::make_unique<Entry>();
  E->Lang = Lang;
  E->Action = Action;
  E->Count.store(1, std::memory_order_relaxed);
  S.Entries.push_back(std::move(E));
}

std::map<std::string, std::map<std::string, uint64_t>>
ActionCounters::snapshot() const {
  std::lock_guard<std::mutex> SLock(SnapshotMu);
  std::map<std::string, std::map<std::string, uint64_t>> Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &E : S.Entries)
      Out[E->Lang][std::string(E->Action.str())] +=
          E->Count.load(std::memory_order_relaxed);
  }
  return Out;
}

void ActionCounters::jsonInto(JsonWriter &W) const {
  for (const auto &[Lang, Actions] : snapshot()) {
    W.key(Lang);
    W.beginObject();
    for (const auto &[Name, Count] : Actions)
      W.field(Name, Count);
    W.endObject();
  }
}

std::string ActionCounters::json() const {
  JsonWriter W;
  W.beginObject();
  jsonInto(W);
  W.endObject();
  return W.take();
}

void ActionCounters::reset() {
  std::lock_guard<std::mutex> SLock(SnapshotMu);
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Entries.clear();
  }
}
