//===- mjs/compiler.cpp ---------------------------------------------------===//

#include "mjs/compiler.h"

#include "mjs/memory.h"
#include "mjs/parser.h"
#include "mjs/runtime.h"

using namespace gillian;
using namespace gillian::mjs;

namespace {

class MjsCompiler {
public:
  Result<Prog> run(const JsProgram &P) {
    Prog Out;
    for (const JsFunc &F : P.Funcs) {
      Result<Proc> R = compileFunc(F);
      if (!R)
        return Err(R.error());
      Out.add(R.take());
    }
    linkRuntime(Out);
    return Out;
  }

private:
  uint32_t NextSite = 0;
  uint32_t NextTemp = 0;
  std::vector<Cmd> Body;

  InternedString freshTemp() {
    return InternedString::get("_t" + std::to_string(NextTemp++));
  }
  size_t pc() const { return Body.size(); }
  void emit(Cmd C) { Body.push_back(std::move(C)); }

  /// fail "TypeError..." unless Cond holds.
  void emitGuard(Expr Cond, const std::string &Msg) {
    size_t Here = pc();
    emit(Cmd::ifGoto(std::move(Cond), Here + 2));
    emit(Cmd::fail(Expr::strE(Msg)));
  }

  Expr numGuarded(const Expr &E) {
    return Expr::hasType(E, GilType::Num);
  }

  /// t := __mjs_truthy(e)  — returns pvar t (a GIL Bool).
  Expr emitTruthy(const Expr &E) {
    InternedString T = freshTemp();
    emit(Cmd::call(T, Expr::strE("__mjs_truthy"), E));
    return Expr::pvar(T);
  }

  //===--------------------------------------------------------------------===
  // Expressions (ANF)
  //===--------------------------------------------------------------------===

  Result<Expr> compileExpr(const JsExprPtr &E) {
    switch (E->Kind) {
    case JsExprKind::Num:
      return Expr::numE(E->NumVal);
    case JsExprKind::Str:
      return Expr::strE(E->StrVal);
    case JsExprKind::Bool:
      return Expr::boolE(E->BoolVal);
    case JsExprKind::Undefined:
      return Expr::lit(jsUndefined());
    case JsExprKind::Null:
      return Expr::lit(jsNull());
    case JsExprKind::Var:
      return Expr::pvar(E->StrVal);
    case JsExprKind::Unary:
      return compileUnary(*E);
    case JsExprKind::Binary:
      return compileBinary(*E);
    case JsExprKind::Member:
      return compileMemberGet(*E);
    case JsExprKind::Call:
      return compileCall(*E);
    case JsExprKind::Object:
      return compileObjectLiteral(*E);
    case JsExprKind::Array:
      return compileArrayLiteral(*E);
    }
    return Err("unknown MJS expression kind");
  }

  Result<Expr> compileUnary(const JsExpr &E) {
    Result<Expr> C = compileExpr(E.Lhs);
    if (!C)
      return C;
    switch (E.UOp) {
    case JsUnOp::Not:
      return Expr::notE(emitTruthy(*C));
    case JsUnOp::Neg:
      emitGuard(numGuarded(*C), "TypeError: unary - requires a number");
      return Expr::unOp(UnOpKind::Neg, *C);
    case JsUnOp::TypeOf: {
      InternedString T = freshTemp();
      emit(Cmd::call(T, Expr::strE("__mjs_typeof"), *C));
      return Expr::pvar(T);
    }
    }
    return Err("unknown unary operator");
  }

  Result<Expr> compileBinary(const JsExpr &E) {
    // Short-circuit operators first: the right operand's side effects run
    // conditionally, and JS returns the *operand value*, not a Bool.
    if (E.BOp == JsBinOp::And || E.BOp == JsBinOp::Or) {
      Result<Expr> A = compileExpr(E.Lhs);
      if (!A)
        return A;
      InternedString T = freshTemp();
      emit(Cmd::assign(T, *A));
      Expr Cond = emitTruthy(Expr::pvar(T));
      // And: skip the rhs when falsy; Or: skip when truthy.
      Expr SkipIf = E.BOp == JsBinOp::And ? Expr::notE(Cond) : Cond;
      size_t SkipIdx = pc();
      emit(Cmd::ifGoto(SkipIf, 0)); // patched below
      Result<Expr> B = compileExpr(E.Rhs);
      if (!B)
        return B;
      emit(Cmd::assign(T, *B));
      Body[SkipIdx].Target = pc();
      return Expr::pvar(T);
    }

    Result<Expr> A = compileExpr(E.Lhs);
    if (!A)
      return A;
    Result<Expr> B = compileExpr(E.Rhs);
    if (!B)
      return B;

    switch (E.BOp) {
    case JsBinOp::Add: {
      InternedString T = freshTemp();
      emit(Cmd::call(T, Expr::strE("__mjs_add"), Expr::list({*A, *B})));
      return Expr::pvar(T);
    }
    case JsBinOp::Sub:
    case JsBinOp::Mul:
    case JsBinOp::Div:
    case JsBinOp::Mod: {
      emitGuard(Expr::andE(numGuarded(*A), numGuarded(*B)),
                "TypeError: arithmetic requires numbers");
      BinOpKind Op = E.BOp == JsBinOp::Sub   ? BinOpKind::Sub
                     : E.BOp == JsBinOp::Mul ? BinOpKind::Mul
                     : E.BOp == JsBinOp::Div ? BinOpKind::Div
                                             : BinOpKind::Mod;
      // Num arithmetic is IEEE-total (x/0 is Infinity), no zero guard.
      return Expr::binOp(Op, *A, *B);
    }
    case JsBinOp::Eq:
      return Expr::eq(*A, *B);
    case JsBinOp::Ne:
      return Expr::notE(Expr::eq(*A, *B));
    case JsBinOp::Lt:
    case JsBinOp::Le:
    case JsBinOp::Gt:
    case JsBinOp::Ge: {
      emitGuard(Expr::orE(Expr::andE(numGuarded(*A), numGuarded(*B)),
                          Expr::andE(Expr::hasType(*A, GilType::Str),
                                     Expr::hasType(*B, GilType::Str))),
                "TypeError: comparison requires two numbers or two strings");
      bool Swap = E.BOp == JsBinOp::Gt || E.BOp == JsBinOp::Ge;
      BinOpKind Op = (E.BOp == JsBinOp::Lt || E.BOp == JsBinOp::Gt)
                         ? BinOpKind::Lt
                         : BinOpKind::Le;
      return Swap ? Expr::binOp(Op, *B, *A) : Expr::binOp(Op, *A, *B);
    }
    default:
      return Err("unhandled binary operator");
    }
  }

  /// Property name: static string or runtime-converted computed key.
  Result<Expr> compilePropName(const JsExpr &Member) {
    if (!Member.Rhs)
      return Expr::strE(Member.StrVal);
    Result<Expr> I = compileExpr(Member.Rhs);
    if (!I)
      return I;
    // Fast path: a literal key converts at compile time.
    if (I->isLit() && I->litValue().isStr())
      return *I;
    if (I->isLit() && I->litValue().isNum()) {
      Result<Value> S = evalUnOp(UnOpKind::NumToStr, I->litValue());
      if (S)
        return Expr::lit(S.take());
    }
    InternedString T = freshTemp();
    emit(Cmd::call(T, Expr::strE("__mjs_topropname"), *I));
    return Expr::pvar(T);
  }

  Result<Expr> compileMemberGet(const JsExpr &E) {
    Result<Expr> Base = compileExpr(E.Lhs);
    if (!Base)
      return Base;
    Result<Expr> P = compilePropName(E);
    if (!P)
      return P;
    InternedString T = freshTemp();
    emit(Cmd::action(T, actGetProp(), Expr::list({*Base, *P})));
    return Expr::pvar(T);
  }

  Result<Expr> compileCall(const JsExpr &E) {
    // Symbolic-input intrinsics are also usable in expression position.
    if (E.Callee == "symb_number" || E.Callee == "symb_string" ||
        E.Callee == "symb_bool" || E.Callee == "symb_any") {
      InternedString T = freshTemp();
      emitSymbInput(T, E.Callee.substr(5));
      return Expr::pvar(T);
    }
    std::vector<Expr> Args;
    for (const JsExprPtr &A : E.Args) {
      Result<Expr> R = compileExpr(A);
      if (!R)
        return R;
      Args.push_back(R.take());
    }
    InternedString T = freshTemp();
    emit(Cmd::call(T, Expr::strE(E.Callee), Expr::list(std::move(Args))));
    return Expr::pvar(T);
  }

  Result<Expr> compileObjectLiteral(const JsExpr &E) {
    InternedString L = freshTemp();
    emit(Cmd::uSym(L, NextSite++));
    emit(Cmd::action(freshTemp(), actNewObj(),
                     Expr::list({Expr::pvar(L), Expr::strE("Object")})));
    for (const auto &[P, V] : E.Props) {
      Result<Expr> R = compileExpr(V);
      if (!R)
        return R;
      emit(Cmd::action(freshTemp(), actSetProp(),
                       Expr::list({Expr::pvar(L), Expr::strE(P), *R})));
    }
    return Expr::pvar(L);
  }

  Result<Expr> compileArrayLiteral(const JsExpr &E) {
    InternedString L = freshTemp();
    emit(Cmd::uSym(L, NextSite++));
    emit(Cmd::action(freshTemp(), actNewObj(),
                     Expr::list({Expr::pvar(L), Expr::strE("Array")})));
    for (size_t I = 0; I != E.Args.size(); ++I) {
      Result<Expr> R = compileExpr(E.Args[I]);
      if (!R)
        return R;
      emit(Cmd::action(freshTemp(), actSetProp(),
                       Expr::list({Expr::pvar(L),
                                   Expr::strE(std::to_string(I)), *R})));
    }
    emit(Cmd::action(freshTemp(), actSetProp(),
                     Expr::list({Expr::pvar(L), Expr::strE("length"),
                                 Expr::numE(static_cast<double>(
                                     E.Args.size()))})));
    return Expr::pvar(L);
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  void emitSymbInput(InternedString X, const std::string &Kind) {
    emit(Cmd::iSym(X, NextSite++));
    std::optional<GilType> T;
    if (Kind == "number")
      T = GilType::Num;
    else if (Kind == "string")
      T = GilType::Str;
    else if (Kind == "bool")
      T = GilType::Bool;
    if (T) {
      size_t Here = pc();
      emit(Cmd::ifGoto(Expr::hasType(Expr::pvar(X), *T), Here + 2));
      emit(Cmd::vanish());
    }
  }

  Result<bool> compileBlock(const std::vector<JsStmt> &Stmts) {
    for (const JsStmt &S : Stmts) {
      Result<bool> R = compileStmt(S);
      if (!R)
        return R;
    }
    return true;
  }

  Result<bool> compileStmt(const JsStmt &S) {
    switch (S.Kind) {
    case JsStmtKind::VarDecl:
    case JsStmtKind::Assign: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      emit(Cmd::assign(InternedString::get(S.Name), *E));
      return true;
    }

    case JsStmtKind::SymbInput:
      emitSymbInput(InternedString::get(S.Name), S.SymbKind);
      return true;

    case JsStmtKind::MemberSet: {
      Result<Expr> Base = compileExpr(S.Obj);
      if (!Base)
        return Err(Base.error());
      JsExpr MemberShim;
      MemberShim.Kind = JsExprKind::Member;
      MemberShim.StrVal = S.Name;
      MemberShim.Rhs = S.Idx;
      Result<Expr> P = compilePropName(MemberShim);
      if (!P)
        return Err(P.error());
      Result<Expr> V = compileExpr(S.Val);
      if (!V)
        return Err(V.error());
      emit(Cmd::action(freshTemp(), actSetProp(),
                       Expr::list({*Base, *P, *V})));
      return true;
    }

    case JsStmtKind::Delete: {
      Result<Expr> Base = compileExpr(S.Obj);
      if (!Base)
        return Err(Base.error());
      JsExpr MemberShim;
      MemberShim.Kind = JsExprKind::Member;
      MemberShim.StrVal = S.Name;
      MemberShim.Rhs = S.Idx;
      Result<Expr> P = compilePropName(MemberShim);
      if (!P)
        return Err(P.error());
      emit(Cmd::action(freshTemp(), actDelProp(), Expr::list({*Base, *P})));
      return true;
    }

    case JsStmtKind::ExprStmt: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      // Side effects already emitted; discard the value via a dead temp.
      emit(Cmd::assign(freshTemp(), *E));
      return true;
    }

    case JsStmtKind::Return: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      emit(Cmd::ret(*E));
      return true;
    }

    case JsStmtKind::Assume: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      Expr C = emitTruthy(*E);
      size_t Here = pc();
      emit(Cmd::ifGoto(C, Here + 2));
      emit(Cmd::vanish());
      return true;
    }

    case JsStmtKind::Assert: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      Expr C = emitTruthy(*E);
      size_t Here = pc();
      emit(Cmd::ifGoto(C, Here + 2));
      emit(Cmd::fail(Expr::strE("assertion failure")));
      return true;
    }

    case JsStmtKind::If: {
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      Expr C = emitTruthy(*E);
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(C, 0)); // patched: THEN
      Result<bool> E1 = compileBlock(S.Else);
      if (!E1)
        return E1;
      size_t GotoEnd = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Body[CondIdx].Target = pc();
      Result<bool> T1 = compileBlock(S.Then);
      if (!T1)
        return T1;
      Body[GotoEnd].Target = pc();
      return true;
    }

    case JsStmtKind::While:
    case JsStmtKind::For: {
      if (S.Kind == JsStmtKind::For) {
        Result<bool> I = compileBlock(S.Init);
        if (!I)
          return I;
      }
      // Loop head re-evaluates the condition (and its truthy call).
      size_t Loop = pc();
      Result<Expr> E = compileExpr(S.E);
      if (!E)
        return Err(E.error());
      Expr C = emitTruthy(*E);
      size_t CondIdx = pc();
      emit(Cmd::ifGoto(C, CondIdx + 2));
      size_t GotoEnd = pc();
      emit(Cmd::ifGoto(Expr::boolE(true), 0)); // patched: END
      Result<bool> B = compileBlock(S.Then);
      if (!B)
        return B;
      if (S.Kind == JsStmtKind::For) {
        Result<bool> St = compileBlock(S.Step);
        if (!St)
          return St;
      }
      emit(Cmd::ifGoto(Expr::boolE(true), Loop));
      Body[GotoEnd].Target = pc();
      return true;
    }
    }
    return Err("unknown MJS statement kind");
  }

  Result<Proc> compileFunc(const JsFunc &F) {
    Body.clear();
    Proc P;
    P.Name = InternedString::get(F.Name);
    P.Param = InternedString::get("_args");
    for (size_t K = 0; K != F.Params.size(); ++K)
      emit(Cmd::assign(InternedString::get(F.Params[K]),
                       Expr::binOp(BinOpKind::ListNth, Expr::pvar(P.Param),
                                   Expr::intE(static_cast<int64_t>(K)))));
    Result<bool> R = compileBlock(F.Body);
    if (!R)
      return Err(R.error());
    emit(Cmd::ret(Expr::lit(jsUndefined())));
    P.Body = std::move(Body);
    Body.clear();
    return P;
  }
};

} // namespace

Result<Prog> gillian::mjs::compileMjs(const JsProgram &P) {
  return MjsCompiler().run(P);
}

Result<Prog> gillian::mjs::compileMjsSource(std::string_view Source) {
  Result<JsProgram> P = parseMjs(Source);
  if (!P)
    return Err("MJS parse error: " + P.error());
  return compileMjs(*P);
}
