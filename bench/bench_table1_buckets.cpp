//===- bench/bench_table1_buckets.cpp -------------------------------------===//
//
// Regenerates Table 1 of the paper (§4.1): symbolic testing of the
// Buckets-style library with Gillian-JS (our MJS instantiation).
//
// Columns, as in the paper: per data structure, the number of symbolic
// tests (#T), the number of executed GIL commands, the time in the
// JaVerT 2.0 baseline configuration (no simplifier, no solver caching),
// and the time in the Gillian configuration. Absolute numbers differ from
// the paper (different hardware, different substrate); the shape to check
// is the J2/GJS ratio (paper: roughly 2x) and the relative per-structure
// ordering.
//
// After the table, one JSON line reports per-suite and total solver-layer
// statistics for both configurations — including the cache hit rate of the
// canonical slicing cache — for A/B runs of cache effectiveness.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "obs/coverage.h"
#include "obs/json_writer.h"
#include "obs/query_profile.h"
#include "obs/span.h"
#include "targets/buckets_mjs.h"
#include "targets/suite_runner.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::targets;

namespace {

struct Row {
  std::string Name;
  uint64_t Tests = 0;
  uint64_t GilCmds = 0;
  double TimeJ2 = 0;
  double TimeGjs = 0;
  double TimePar = 0; ///< Gillian configuration, 4 exploration workers
  uint64_t Bugs = 0;
  SolverStats SolverJ2;
  SolverStats SolverGjs;
  SolverStats SolverPar;
};

using bench::coldStart;
using bench::seconds;

/// Worker count of the parallel configuration; set from --workers
/// (default 4, the acceptance target's core count).
uint32_t ParWorkers = 4;
/// Path-selection strategy of the parallel configuration (--strategy).
SelectionStrategy ParStrategy = SelectionStrategy::OldestFirst;
/// Native theory layer of the parallel configuration (--no-native).
bool ParNative = true;
/// Async solver service threads of the parallel configuration (--async).
uint32_t ParAsync = 0;

std::string rowJson(const Row &R) {
  obs::JsonWriter W;
  W.beginObject();
  W.field("name", R.Name);
  W.field("tests", R.Tests);
  W.field("gil_cmds", R.GilCmds);
  W.field("time_j2_s", R.TimeJ2, 6);
  W.field("time_gjs_s", R.TimeGjs, 6);
  W.field("time_par_s", R.TimePar, 6);
  W.field("par_workers", ParWorkers);
  W.field("par_strategy", strategyName(ParStrategy));
  W.field("par_native", ParNative);
  W.field("par_async", static_cast<uint64_t>(ParAsync));
  W.key("solver_j2");
  W.raw(solverStatsJson(R.SolverJ2));
  W.key("solver_gjs");
  W.raw(solverStatsJson(R.SolverGjs));
  W.key("solver_par");
  W.raw(solverStatsJson(R.SolverPar));
  W.endObject();
  return W.take();
}

/// Accumulates a span-table delta (the sequential-GJS rows only, so the
/// self-time sum is comparable to single-threaded wall clock).
void addInto(obs::SpanSnapshot &Acc, const obs::SpanSnapshot &D) {
  for (size_t I = 0; I < obs::NumSpanKinds; ++I) {
    Acc.TotalNs[I] += D.TotalNs[I];
    Acc.SelfNs[I] += D.SelfNs[I];
    Acc.Count[I] += D.Count[I];
  }
}

} // namespace

int main(int argc, char **argv) {
  const bench::BenchArgs Args = bench::parseBenchArgs(argc, argv);
  bench::setupObs(Args);
  ParWorkers = Args.Workers;
  ParStrategy = Args.Strategy;
  ParNative = Args.Native;
  ParAsync = Args.Async;
  std::printf("Table 1: Buckets.js-style symbolic test suites "
              "(Gillian-JS / MJS)\n");
  std::printf("%-8s %4s %12s %10s %10s %8s %10s %8s %9s\n", "Name", "#T",
              "GIL Cmds", "Time(J2)", "Time(GJS)", "Speedup", "Time(P4)",
              "ParSpd", "HitRate");

  Row Total;
  Total.Name = "Total";
  obs::SpanSnapshot GjsSpans; // span deltas over the sequential GJS rows
  std::string SuitesJson;
  for (const BucketsSuite &S : bucketsSuites()) {
    std::string Src =
        std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
    Result<Prog> P = compileMjsSource(Src);
    if (!P) {
      std::fprintf(stderr, "compile error in %s: %s\n",
                   std::string(S.Name).c_str(), P.error().c_str());
      return 1;
    }

    Row R;
    R.Name = std::string(S.Name);

    // Baseline: the JaVerT 2.0 configuration.
    coldStart();
    EngineOptions J2 = EngineOptions::legacyJaVerT2();
    auto T0 = std::chrono::steady_clock::now();
    SuiteResult RJ2 = runSuite<MjsSMem>(S.Name, *P, J2);
    R.TimeJ2 = seconds(T0);
    R.SolverJ2 = RJ2.Solver;

    // Gillian configuration.
    coldStart();
    EngineOptions Gjs;
    Gjs.UseSummaries = Args.Summaries;
    obs::SpanSnapshot SpansBefore = obs::SpanTable::global().snapshot();
    T0 = std::chrono::steady_clock::now();
    SuiteResult RGjs = runSuite<MjsSMem>(S.Name, *P, Gjs);
    R.TimeGjs = seconds(T0);
    addInto(GjsSpans, obs::SpanTable::global().snapshot() - SpansBefore);
    R.SolverGjs = RGjs.Solver;

    // Gillian configuration, parallel exploration (4 workers).
    coldStart();
    EngineOptions Par;
    Par.UseSummaries = Args.Summaries;
    Par.Scheduler.Workers = ParWorkers;
    Par.Scheduler.Strategy = ParStrategy;
    Par.Solver.UseNative = ParNative;
    Par.Solver.AsyncSolvers = ParAsync;
    T0 = std::chrono::steady_clock::now();
    SuiteResult RPar = runSuite<MjsSMem>(S.Name, *P, Par);
    R.TimePar = seconds(T0);
    R.SolverPar = RPar.Solver;

    R.Tests = RGjs.Tests;
    R.GilCmds = RGjs.GilCmds;
    R.Bugs = RGjs.Bugs.size() + RJ2.Bugs.size() + RPar.Bugs.size();

    std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx %9.3fs %7.2fx "
                "%8.1f%%\n",
                R.Name.c_str(), static_cast<unsigned long long>(R.Tests),
                static_cast<unsigned long long>(R.GilCmds), R.TimeJ2,
                R.TimeGjs, R.TimeGjs > 0 ? R.TimeJ2 / R.TimeGjs : 0.0,
                R.TimePar, R.TimePar > 0 ? R.TimeGjs / R.TimePar : 0.0,
                100.0 * R.SolverGjs.cacheHitRate());

    if (!SuitesJson.empty())
      SuitesJson += ",";
    SuitesJson += rowJson(R);

    Total.Tests += R.Tests;
    Total.GilCmds += R.GilCmds;
    Total.TimeJ2 += R.TimeJ2;
    Total.TimeGjs += R.TimeGjs;
    Total.TimePar += R.TimePar;
    Total.Bugs += R.Bugs;
    Total.SolverJ2 += R.SolverJ2;
    Total.SolverGjs += R.SolverGjs;
    Total.SolverPar += R.SolverPar;
  }
  std::printf("%-8s %4llu %12llu %9.3fs %9.3fs %7.2fx %9.3fs %7.2fx "
              "%8.1f%%\n",
              "Total", static_cast<unsigned long long>(Total.Tests),
              static_cast<unsigned long long>(Total.GilCmds), Total.TimeJ2,
              Total.TimeGjs,
              Total.TimeGjs > 0 ? Total.TimeJ2 / Total.TimeGjs : 0.0,
              Total.TimePar,
              Total.TimePar > 0 ? Total.TimeGjs / Total.TimePar : 0.0,
              100.0 * Total.SolverGjs.cacheHitRate());
  std::printf("\nBug reports on the healthy library: %llu (expected 0 — "
              "the suite is a bounded-verification baseline, as in the "
              "paper, which re-detected only previously-known bugs)\n",
              static_cast<unsigned long long>(Total.Bugs));
  std::printf("Paper shape check: 74 tests; J2 slower than GJS overall and on "
              "the solver-heavy rows (paper: ~2x overall; sub-millisecond "
              "rows are noise-dominated).\n"
              "Our measured gap is larger than the paper's because this "
              "baseline removes result caching entirely, on which our "
              "engine leans harder than JaVerT 2.0 did (J2 cached inside "
              "its custom solver); see bench_ablation_engine for the "
              "decomposition.\n"
              "Time(P4) explores each test on a 4-worker work-stealing "
              "pool sharing one solver cache; ParSpd = Time(GJS)/Time(P4) "
              "tracks core count (expect ~1x on a single-core runner, "
              ">=2x on 4 cores).\n");

  // Per-layer attribution check (ISSUE 4 acceptance): over the
  // single-threaded GJS rows, the mutually-exclusive span self times
  // summed across every layer must reconstruct the measured wall clock
  // to within 10%.
  double SpanSelfSum = GjsSpans.sumSelfNs() / 1e9;
  double SpanCover = Total.TimeGjs > 0 ? SpanSelfSum / Total.TimeGjs : 0.0;
  std::printf("Span attribution (GJS rows): per-layer self times sum to "
              "%.3fs of %.3fs measured wall = %.1f%% coverage (target: "
              "within 10%%)\n",
              SpanSelfSum, Total.TimeGjs, 100.0 * SpanCover);

  // Hot-query attribution check (ISSUE 5 acceptance): the profiler's
  // per-site wall times, summed over the top-N table, must account for
  // >= 80% of the solver wall time the span table measured — i.e. the
  // thread-local origin published by the interpreter reaches essentially
  // every query, and the top sites dominate.
  obs::QueryProfiler &QP = obs::QueryProfiler::instance();
  obs::SpanSnapshot AllSpans = obs::SpanTable::global().snapshot();
  double SolverWall = (AllSpans.totalNs(obs::SpanKind::Solver) +
                       AllSpans.totalNs(obs::SpanKind::ModelSearch)) /
                      1e9;
  constexpr size_t HotTableN = 32;
  uint64_t TopNs = 0;
  std::vector<obs::QueryProfiler::Site> All = QP.topN(SIZE_MAX);
  std::vector<obs::QueryProfiler::Site> Top(
      All.begin(), All.begin() + std::min(All.size(), HotTableN));
  for (const obs::QueryProfiler::Site &S : Top)
    TopNs += S.WallNs;
  // The smallest prefix of the wall-time-sorted site list that reaches
  // the 80% target — how concentrated the solver budget actually is.
  size_t K80 = 0;
  for (uint64_t Acc = 0; K80 < All.size() && Acc < SolverWall * 0.8e9;
       ++K80)
    Acc += All[K80].WallNs;
  double TopCover = SolverWall > 0 ? (TopNs / 1e9) / SolverWall : 0.0;
  double AttrCover =
      SolverWall > 0 ? (QP.attributedNs() / 1e9) / SolverWall : 0.0;
  std::printf("Hot-query attribution: top-%zu of %zu sites carry %.3fs of "
              "%.3fs measured solver wall = %.1f%% (target >= 80%%, reached "
              "at top-%zu); attributed total %.1f%%, unattributed %.3fs\n",
              Top.size(), All.size(), TopNs / 1e9, SolverWall,
              100.0 * TopCover, K80, 100.0 * AttrCover,
              QP.unattributedNs() / 1e9);
  if (!Top.empty()) {
    std::printf("%-28s %6s %10s %8s %8s %8s\n", "Hot site (proc:cmd)",
                "calls", "wall", "sat", "unsat", "miss");
    size_t Shown = std::min<size_t>(Top.size(), 8);
    for (size_t I = 0; I < Shown; ++I) {
      const obs::QueryProfiler::Site &S = Top[I];
      std::printf("%-28s %6llu %9.3fs %8llu %8llu %8llu\n",
                  (S.Proc + ":" + std::to_string(S.CmdIdx)).c_str(),
                  static_cast<unsigned long long>(S.Calls), S.WallNs / 1e9,
                  static_cast<unsigned long long>(S.Sat),
                  static_cast<unsigned long long>(S.Unsat),
                  static_cast<unsigned long long>(S.CacheMisses));
    }
  }

  // Target branch coverage over the whole run (all three configurations
  // explore the same programs, so this is the union).
  uint64_t CovCovered = 0, CovTotal = 0;
  obs::BranchCoverage::instance().totals(CovCovered, CovTotal);
  std::printf("Target branch coverage: %llu / %llu outcomes (%.1f%%)\n",
              static_cast<unsigned long long>(CovCovered),
              static_cast<unsigned long long>(CovTotal),
              CovTotal ? 100.0 * CovCovered / CovTotal : 0.0);

  // Journal-overhead check (ISSUE 10 acceptance; EXPERIMENTS.md): the
  // lossless execution journal must cost <= 3% wall. The first suite is
  // re-run journal-off and journal-on, interleaved, best-of-3 each (the
  // min filters scheduler noise). The check toggles and resets the
  // process journal, so any --journal-out capture of the measured run
  // above is written out first and finishObs is told not to rewrite it.
  bench::BenchArgs FinishArgs = Args;
  if (!Args.JournalOut.empty()) {
    obs::journal::JournalData JD = obs::journal::capture();
    std::string JErr;
    if (obs::journal::writeJournalFile(JD, Args.JournalOut, nullptr, &JErr))
      std::fprintf(stderr, "[bench] wrote journal (%zu events) to %s\n",
                   JD.Events.size(), Args.JournalOut.c_str());
    else
      std::fprintf(stderr, "[bench] failed to write journal to %s: %s\n",
                   Args.JournalOut.c_str(), JErr.c_str());
    FinishArgs.JournalOut.clear();
  }
  double JOff = 1e99, JOn = 1e99;
  uint64_t JEvents = 0;
  {
    // One sequential GJS pass over every suite per measurement: single
    // suites finish in milliseconds, below timer noise at a 3% bound.
    std::vector<std::pair<std::string_view, Prog>> Progs;
    for (const BucketsSuite &S : bucketsSuites()) {
      Result<Prog> P = compileMjsSource(std::string(bucketsLibrary()) + "\n" +
                                        std::string(S.Source));
      if (P.ok())
        Progs.emplace_back(S.Name, std::move(*P));
    }
    auto MeasureOnce = [&](bool JournalOn) {
      coldStart();
      obs::journal::reset();
      obs::journal::setEnabled(JournalOn);
      EngineOptions G;
      G.UseSummaries = Args.Summaries;
      auto T0 = std::chrono::steady_clock::now();
      for (auto &[Name, P] : Progs)
        runSuite<MjsSMem>(Name, P, G);
      double T = seconds(T0);
      if (JournalOn)
        JEvents = obs::journal::eventsEmitted();
      obs::journal::setEnabled(false);
      obs::journal::reset();
      return T;
    };
    for (int I = 0; I < 3 && !Progs.empty(); ++I) {
      JOff = std::min(JOff, MeasureOnce(false));
      JOn = std::min(JOn, MeasureOnce(true));
    }
  }
  double JOverhead = JOff > 0 && JOff < 1e98 ? (JOn - JOff) / JOff : 0.0;
  bool JOk = JOverhead <= 0.03;
  std::printf("Journal overhead (all suites, sequential GJS, best of 3): "
              "off %.3fs, on %.3fs (%llu events) = %+.2f%% "
              "(target <= 3%%: %s)\n",
              JOff, JOn, static_cast<unsigned long long>(JEvents),
              100.0 * JOverhead, JOk ? "ok" : "EXCEEDED");

  if (Args.Json) {
    obs::JsonWriter W;
    W.beginObject();
    W.field("bench", "table1_buckets");
    W.field("strategy", strategyName(ParStrategy));
    W.field("summaries", Args.Summaries);
    W.key("suites");
    W.beginArray();
    W.raw(SuitesJson);
    W.endArray();
    W.key("total");
    W.raw(rowJson(Total));
    W.key("span_check");
    W.beginObject();
    W.field("wall_gjs_s", Total.TimeGjs, 6);
    W.field("span_self_sum_s", SpanSelfSum, 6);
    W.field("cover", SpanCover, 4);
    W.key("spans");
    W.raw(GjsSpans.json());
    W.endObject();
    W.key("hot_query_check");
    W.beginObject();
    W.field("solver_wall_s", SolverWall, 6);
    W.field("top_n", static_cast<uint64_t>(Top.size()));
    W.field("sites", static_cast<uint64_t>(All.size()));
    W.field("top_sites_s", TopNs / 1e9, 6);
    W.field("top_cover", TopCover, 4);
    W.field("sites_for_80pct", static_cast<uint64_t>(K80));
    W.field("attributed_cover", AttrCover, 4);
    W.endObject();
    W.key("journal_check");
    W.beginObject();
    W.field("wall_off_s", JOff, 6);
    W.field("wall_on_s", JOn, 6);
    W.field("events", JEvents);
    W.field("overhead_frac", JOverhead, 4);
    W.field("bound", 0.03, 2);
    W.field("ok", JOk);
    W.endObject();
    W.key("coverage");
    W.raw(obs::BranchCoverage::instance().json());
    W.key("obs");
    W.raw(obs::obsStatsJson(obs::SpanTable::global().snapshot()));
    W.endObject();
    std::printf("\n%s\n", W.take().c_str());
  }
  bench::finishObs(FinishArgs);
  return Total.Bugs == 0 ? 0 : 1;
}
