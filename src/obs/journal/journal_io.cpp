//===- obs/journal/journal_io.cpp - Journal binary file format ------------===//

#include "obs/journal/journal_io.h"

#include "support/interner.h"

#include <cstdio>
#include <unordered_map>

namespace gillian::obs::journal {

namespace {

constexpr char Magic[4] = {'G', 'J', 'L', '1'};
constexpr char EndMagic[4] = {'G', 'J', 'N', 'D'};
constexpr uint64_t FormatVersion = 1;

/// An event encodes to at least 4 raw bytes + 7 one-byte varints; used to
/// bound the claimed event count against the remaining input.
constexpr size_t MinEventBytes = 11;

void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out += static_cast<char>((V & 0x7f) | 0x80);
    V >>= 7;
  }
  Out += static_cast<char>(V);
}

bool getVarint(std::string_view S, size_t &I, uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (I >= S.size())
      return false;
    uint8_t B = static_cast<uint8_t>(S[I++]);
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
  }
  return false; // > 10 bytes: overlong
}

} // namespace

JournalData capture() {
  std::vector<Event> Ev = snapshot();
  JournalData D;
  D.Strings.emplace_back(); // index 0 = ""
  std::unordered_map<uint32_t, uint32_t> Map;
  Map.emplace(0, 0);
  auto Index = [&](uint32_t Interned) -> uint32_t {
    auto [It, Fresh] = Map.try_emplace(
        Interned, static_cast<uint32_t>(D.Strings.size()));
    if (Fresh)
      D.Strings.emplace_back(
          gillian::InternedString::fromRaw(Interned).str());
    return It->second;
  };
  for (Event &E : Ev) {
    E.Proc = Index(E.Proc);
    if (E.Kind == static_cast<uint8_t>(EventKind::Action))
      E.X = Index(E.X);
  }
  D.Events = std::move(Ev);
  return D;
}

std::string serializeJournal(const JournalData &D) {
  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putVarint(Out, FormatVersion);
  putVarint(Out, D.Strings.size());
  for (const std::string &S : D.Strings) {
    putVarint(Out, S.size());
    Out += S;
  }
  putVarint(Out, D.Events.size());
  for (const Event &E : D.Events) {
    Out += static_cast<char>(E.Kind);
    Out += static_cast<char>(E.A);
    Out += static_cast<char>(E.B);
    Out += static_cast<char>(E.C);
    putVarint(Out, E.Path);
    putVarint(Out, E.Aux);
    putVarint(Out, E.WallNs);
    putVarint(Out, E.Step);
    putVarint(Out, E.Proc);
    putVarint(Out, E.Cmd);
    putVarint(Out, E.X);
  }
  Out.append(EndMagic, sizeof(EndMagic));
  return Out;
}

bool parseJournal(std::string_view Bytes, JournalData &Out,
                  std::string &Err) {
  Out = JournalData{};
  if (Bytes.size() < sizeof(Magic) + sizeof(EndMagic) ||
      Bytes.compare(0, sizeof(Magic), Magic, sizeof(Magic)) != 0) {
    Err = "not a journal file (bad magic)";
    return false;
  }
  size_t I = sizeof(Magic);
  uint64_t Version = 0;
  if (!getVarint(Bytes, I, Version) || Version != FormatVersion) {
    Err = "unsupported journal version";
    return false;
  }
  uint64_t NStrings = 0;
  if (!getVarint(Bytes, I, NStrings) || NStrings == 0 ||
      NStrings > Bytes.size()) {
    Err = "corrupt string table header";
    return false;
  }
  Out.Strings.reserve(NStrings);
  for (uint64_t S = 0; S < NStrings; ++S) {
    uint64_t Len = 0;
    if (!getVarint(Bytes, I, Len) || Len > Bytes.size() - I) {
      Err = "truncated string table";
      return false;
    }
    Out.Strings.emplace_back(Bytes.substr(I, Len));
    I += Len;
  }
  if (!Out.Strings.front().empty()) {
    Err = "string table index 0 is not empty";
    return false;
  }
  uint64_t NEvents = 0;
  if (!getVarint(Bytes, I, NEvents) ||
      NEvents > (Bytes.size() - I) / MinEventBytes + 1) {
    Err = "corrupt event count";
    return false;
  }
  Out.Events.reserve(NEvents);
  for (uint64_t N = 0; N < NEvents; ++N) {
    if (Bytes.size() - I < 4) {
      Err = "truncated event stream";
      return false;
    }
    Event E;
    E.Kind = static_cast<uint8_t>(Bytes[I++]);
    E.A = static_cast<uint8_t>(Bytes[I++]);
    E.B = static_cast<uint8_t>(Bytes[I++]);
    E.C = static_cast<uint8_t>(Bytes[I++]);
    if (E.Kind > static_cast<uint8_t>(EventKind::PathEnd)) {
      Err = "unknown event kind";
      return false;
    }
    uint64_t Path = 0, Aux = 0, Wall = 0, Step = 0, Proc = 0, Cmd = 0, X = 0;
    if (!getVarint(Bytes, I, Path) || !getVarint(Bytes, I, Aux) ||
        !getVarint(Bytes, I, Wall) || !getVarint(Bytes, I, Step) ||
        !getVarint(Bytes, I, Proc) || !getVarint(Bytes, I, Cmd) ||
        !getVarint(Bytes, I, X)) {
      Err = "truncated event stream";
      return false;
    }
    if (Step > UINT32_MAX || Proc > UINT32_MAX || Cmd > UINT32_MAX ||
        X > UINT32_MAX) {
      Err = "event field out of range";
      return false;
    }
    if (Proc >= Out.Strings.size() ||
        (E.Kind == static_cast<uint8_t>(EventKind::Action) &&
         X >= Out.Strings.size())) {
      Err = "string-table index out of range";
      return false;
    }
    E.Path = Path;
    E.Aux = Aux;
    E.WallNs = Wall;
    E.Step = static_cast<uint32_t>(Step);
    E.Proc = static_cast<uint32_t>(Proc);
    E.Cmd = static_cast<uint32_t>(Cmd);
    E.X = static_cast<uint32_t>(X);
    Out.Events.push_back(E);
  }
  if (Bytes.size() - I != sizeof(EndMagic) ||
      Bytes.compare(I, sizeof(EndMagic), EndMagic, sizeof(EndMagic)) != 0) {
    Err = "missing journal end frame (truncated file?)";
    return false;
  }
  return true;
}

bool writeJournalFile(const JournalData &D, const std::string &Path,
                      uint64_t *BytesOut, std::string *Err) {
  std::string Bytes = serializeJournal(D);
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Tmp;
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "cannot write " + Path;
    return false;
  }
  journalStats().BytesWritten += Bytes.size();
  ++journalStats().FilesWritten;
  if (BytesOut)
    *BytesOut = Bytes.size();
  return true;
}

bool readJournalFile(const std::string &Path, JournalData &Out,
                     std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Bytes;
  char Buf[1 << 16];
  size_t N = 0;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.append(Buf, N);
  std::fclose(F);
  return parseJournal(Bytes, Out, Err);
}

} // namespace gillian::obs::journal
