//===- examples/js_bug_hunt.cpp -------------------------------------------===//
//
// Gillian-JS in action (§4.1): hunts the two seeded Buckets.js-style bugs
// with symbolic tests over the MJS instantiation, then shows the healthy
// library verifying the same suites — the no-false-positives side.
//
// Build & run:  ./build/examples/js_bug_hunt
//
//===----------------------------------------------------------------------===//

#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "targets/buckets_mjs.h"
#include "targets/suite_runner.h"

#include <cstdio>

using namespace gillian;
using namespace gillian::mjs;
using namespace gillian::targets;

namespace {

void runLibrary(const char *Label, std::string_view Library) {
  std::printf("== %s ==\n", Label);
  for (const BucketsSuite &S : bucketsSuites()) {
    if (S.Name != "llist" && S.Name != "heap")
      continue; // the structures carrying the seeded bugs
    std::string Src =
        std::string(Library) + "\n" + std::string(S.Source);
    Result<Prog> P = compileMjsSource(Src);
    if (!P) {
      std::fprintf(stderr, "compile error: %s\n", P.error().c_str());
      std::exit(1);
    }
    EngineOptions Opts;
    SuiteResult R = runSuite<MjsSMem>(S.Name, *P, Opts);
    std::printf("%-6s: %llu tests, %llu GIL cmds — %s\n",
                std::string(S.Name).c_str(),
                static_cast<unsigned long long>(R.Tests),
                static_cast<unsigned long long>(R.GilCmds),
                R.clean() ? "clean" : "BUGS FOUND");
    for (const BugReport &B : R.Bugs) {
      std::printf("   %s%s\n", B.Message.c_str(),
                  B.Confirmed ? "  [counter-model verified]" : "");
      if (B.Confirmed)
        std::printf("     model: %s\n", B.CounterModel.c_str());
    }
  }
}

} // namespace

int main() {
  runLibrary("Seeded library (the two known Buckets.js-style bugs)",
             bucketsBuggyLibrary());
  std::printf("\n");
  runLibrary("Healthy library (bounded verification)", bucketsLibrary());
  return 0;
}
