//===- tests/mc/memory_test.cpp -------------------------------------------===//
//
// Direct unit tests of the CompCert-style memory actions (§4.2): byte
// encode/decode, chunk checks, permissions, fragments, pointer
// comparison, and the I_C interpretation.
//
//===----------------------------------------------------------------------===//

#include "mc/memory.h"

#include "engine/memlib/branch.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mc;

namespace {

Value args(std::initializer_list<Value> Vs) { return Value::listV(Vs); }
Expr eargs(std::initializer_list<Expr> Es) { return Expr::list(Es); }

Value blockSym(const char *N) { return Value::symV(N); }

McCMem allocated(const char *B, int64_t Size) {
  McCMem M;
  EXPECT_TRUE(
      M.execAction(actAlloc(), args({blockSym(B), Value::intV(Size)})).ok());
  return M;
}

} // namespace

TEST(McCMemT, IntStoreLoadAllChunkSizes) {
  McCMem M = allocated("$b", 16);
  for (auto [Sz, V] : {std::pair<int64_t, int64_t>{1, -5},
                       {4, -70000},
                       {8, (1ll << 40) + 3}}) {
    Chunk C{Sz, Sz, ChunkKind::Int};
    ASSERT_TRUE(M.execAction(actStore(),
                             args({chunkValue(C), blockSym("$b"),
                                   Value::intV(0), Value::intV(V)}))
                    .ok());
    Result<Value> R = M.execAction(
        actLoad(), args({chunkValue(C), blockSym("$b"), Value::intV(0)}));
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(R->asInt(), V) << "chunk size " << Sz;
  }
}

TEST(McCMemT, NarrowStoreTruncates) {
  McCMem M = allocated("$b", 8);
  Chunk C{1, 1, ChunkKind::Int};
  ASSERT_TRUE(M.execAction(actStore(),
                           args({chunkValue(C), blockSym("$b"),
                                 Value::intV(0), Value::intV(0x1FF)}))
                  .ok());
  Result<Value> R = M.execAction(
      actLoad(), args({chunkValue(C), blockSym("$b"), Value::intV(0)}));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asInt(), -1) << "0x1FF truncates to 0xFF = -1 signed";
}

TEST(McCMemT, ByteLevelAccessSeesScalarBytes) {
  // Little-endian byte view of a stored i32 — the CompCert fine-grained
  // access property.
  McCMem M = allocated("$b", 8);
  Chunk C4{4, 4, ChunkKind::Int};
  ASSERT_TRUE(M.execAction(actStore(),
                           args({chunkValue(C4), blockSym("$b"),
                                 Value::intV(0), Value::intV(0x01020304)}))
                  .ok());
  Chunk C1{1, 1, ChunkKind::Int};
  Result<Value> B0 = M.execAction(
      actLoad(), args({chunkValue(C1), blockSym("$b"), Value::intV(0)}));
  Result<Value> B3 = M.execAction(
      actLoad(), args({chunkValue(C1), blockSym("$b"), Value::intV(3)}));
  ASSERT_TRUE(B0.ok() && B3.ok());
  EXPECT_EQ(B0->asInt(), 0x04);
  EXPECT_EQ(B3->asInt(), 0x01);
}

TEST(McCMemT, PointersRoundTripAsFragments) {
  McCMem M = allocated("$b", 16);
  Chunk CP{8, 8, ChunkKind::Ptr};
  Value P = Value::listV({blockSym("$other"), Value::intV(4)});
  ASSERT_TRUE(M.execAction(actStore(), args({chunkValue(CP), blockSym("$b"),
                                             Value::intV(8), P}))
                  .ok());
  Result<Value> R = M.execAction(
      actLoad(), args({chunkValue(CP), blockSym("$b"), Value::intV(8)}));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, P);
  // Reading pointer bytes as an integer is a type-confused load.
  Chunk C8{8, 8, ChunkKind::Int};
  EXPECT_FALSE(
      M.execAction(actLoad(),
                   args({chunkValue(C8), blockSym("$b"), Value::intV(8)}))
          .ok());
}

TEST(McCMemT, TornReadDetected) {
  McCMem M = allocated("$b", 16);
  Chunk CP{8, 8, ChunkKind::Ptr};
  Value P = Value::listV({blockSym("$x"), Value::intV(0)});
  ASSERT_TRUE(M.execAction(actStore(), args({chunkValue(CP), blockSym("$b"),
                                             Value::intV(0), P}))
                  .ok());
  // Overwrite the middle with a byte, then read the pointer back: torn.
  Chunk C1{1, 1, ChunkKind::Int};
  ASSERT_TRUE(M.execAction(actStore(),
                           args({chunkValue(C1), blockSym("$b"),
                                 Value::intV(3), Value::intV(0)}))
                  .ok());
  Result<Value> R = M.execAction(
      actLoad(), args({chunkValue(CP), blockSym("$b"), Value::intV(0)}));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("torn"), std::string::npos);
}

TEST(McCMemT, AlignmentEnforced) {
  McCMem M = allocated("$b", 16);
  Chunk C8{8, 8, ChunkKind::Int};
  Result<Value> R =
      M.execAction(actStore(), args({chunkValue(C8), blockSym("$b"),
                                     Value::intV(4), Value::intV(1)}));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("unaligned"), std::string::npos);
}

TEST(McCMemT, PermissionsGateAccess) {
  McCMem M = allocated("$b", 8);
  Chunk C8{8, 8, ChunkKind::Int};
  ASSERT_TRUE(M.execAction(actStore(),
                           args({chunkValue(C8), blockSym("$b"),
                                 Value::intV(0), Value::intV(7)}))
                  .ok());
  // Drop to Readable: loads fine, stores fault.
  ASSERT_TRUE(M.execAction(actDropPerm(),
                           args({blockSym("$b"), Value::intV(0),
                                 Value::intV(8),
                                 Value::intV(static_cast<int64_t>(
                                     Perm::Readable))}))
                  .ok());
  EXPECT_TRUE(M.execAction(actLoad(), args({chunkValue(C8), blockSym("$b"),
                                            Value::intV(0)}))
                  .ok());
  EXPECT_FALSE(M.execAction(actStore(),
                            args({chunkValue(C8), blockSym("$b"),
                                  Value::intV(0), Value::intV(8)}))
                   .ok());
  // Drop to None: even loads fault. Permissions only decrease.
  ASSERT_TRUE(M.execAction(actDropPerm(),
                           args({blockSym("$b"), Value::intV(0),
                                 Value::intV(8),
                                 Value::intV(static_cast<int64_t>(
                                     Perm::None))}))
                  .ok());
  EXPECT_FALSE(M.execAction(actLoad(), args({chunkValue(C8), blockSym("$b"),
                                             Value::intV(0)}))
                   .ok());
}

TEST(McCMemT, ValidPtrAndBlockSize) {
  McCMem M = allocated("$b", 12);
  EXPECT_EQ(*M.execAction(actBlockSize(), args({blockSym("$b")})),
            Value::intV(12));
  EXPECT_EQ(*M.execAction(actValidPtr(), args({blockSym("$b"),
                                               Value::intV(4),
                                               Value::intV(8)})),
            Value::boolV(true));
  EXPECT_EQ(*M.execAction(actValidPtr(), args({blockSym("$b"),
                                               Value::intV(5),
                                               Value::intV(8)})),
            Value::boolV(false));
}

// --- Symbolic ---------------------------------------------------------------

TEST(McSMemT, SymbolicAllocSizeIsTheStructuredDiagnostic) {
  // The combinator-layer symbolic-size message, verbatim — shared with
  // linear grow (see memlib/branch.h and the matching assertion in
  // linear/linear_test.cpp).
  McSMem M;
  Solver S;
  PathCondition PC;
  Expr B = Expr::lit(Value::symV("$b"));
  Expr N = Expr::lvar("#n");
  auto R = M.execAction(actAlloc(), eargs({B, N}), PC, S);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error(), memlib::symbolicSizeError("alloc", N));
  EXPECT_NE(R.error().find("unsupported: alloc with symbolic size #n"),
            std::string::npos);
  EXPECT_NE(R.error().find("EXPERIMENTS.md 'Known deviations'"),
            std::string::npos);
}

TEST(McSMemT, SymbolicStoreLoadFragmentRoundTrip) {
  McSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#v"), GilType::Int));
  Expr B = Expr::lit(Value::symV("$b"));
  auto A = M.execAction(actAlloc(), eargs({B, Expr::intE(8)}), PC, S);
  ASSERT_TRUE(A.ok());
  const McSMem &M1 = (*A)[0].Mem;
  Chunk C8{8, 8, ChunkKind::Int};
  auto St = M1.execAction(actStore(),
                          eargs({Expr::lit(chunkValue(C8)), B,
                                 Expr::intE(0), Expr::lvar("#v")}),
                          PC, S);
  ASSERT_TRUE(St.ok());
  ASSERT_EQ(St->size(), 1u);
  auto Ld = (*St)[0].Mem.execAction(
      actLoad(), eargs({Expr::lit(chunkValue(C8)), B, Expr::intE(0)}), PC,
      S);
  ASSERT_TRUE(Ld.ok());
  ASSERT_EQ(Ld->size(), 1u);
  EXPECT_EQ((*Ld)[0].Ret, Expr::lvar("#v"));
}

TEST(McSMemT, SymbolicOffsetBranchesOverCandidates) {
  McSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#o"), GilType::Int));
  Expr B = Expr::lit(Value::symV("$b"));
  auto A = M.execAction(actAlloc(), eargs({B, Expr::intE(24)}), PC, S);
  const McSMem &M1 = (*A)[0].Mem;
  Chunk C8{8, 8, ChunkKind::Int};
  // Initialise all three slots so every candidate decodes.
  McSMem M2 = M1;
  for (int I = 0; I < 3; ++I) {
    auto St = M2.execAction(actStore(),
                            eargs({Expr::lit(chunkValue(C8)), B,
                                   Expr::intE(8 * I), Expr::intE(I)}),
                            PC, S);
    ASSERT_TRUE(St.ok());
    M2 = (*St)[0].Mem;
  }
  auto Ld = M2.execAction(
      actLoad(), eargs({Expr::lit(chunkValue(C8)), B, Expr::lvar("#o")}),
      PC, S);
  ASSERT_TRUE(Ld.ok());
  int Successes = 0, Errors = 0;
  for (auto &Br : *Ld)
    Br.IsError ? ++Errors : ++Successes;
  EXPECT_EQ(Successes, 3) << "one world per aligned in-bounds offset";
  EXPECT_GE(Errors, 1) << "the out-of-bounds world";
}

TEST(McSMemT, RelationalCompareBranchesOnBlockEquality) {
  McSMem M;
  Solver S;
  PathCondition PC;
  Expr B = Expr::lit(Value::symV("$b"));
  auto A = M.execAction(actAlloc(), eargs({B, Expr::intE(8)}), PC, S);
  const McSMem &M1 = (*A)[0].Mem;
  Expr P1 = Expr::list({B, Expr::intE(0)});
  Expr P2 = Expr::list({B, Expr::intE(4)});
  auto R = M1.execAction(actComparePtr(),
                         eargs({Expr::strE("lt"), P1, P2}), PC, S);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R->size(), 1u) << "same concrete block: no UB world";
  EXPECT_FALSE((*R)[0].IsError);
  EXPECT_TRUE((*R)[0].Ret.isTrue());
}

TEST(McSMemT, InterpretationEncodesFragmentsAsBytes) {
  // A symbolic i64 fragment interprets to the same bytes a concrete store
  // writes — the agreement the replay tests depend on.
  McSMem SM;
  SBlock B;
  B.Size = 8;
  Chunk C8{8, 8, ChunkKind::Int};
  for (int64_t I = 0; I < 8; ++I) {
    SMemVal V;
    V.K = SMemVal::Frag;
    V.FragVal = Expr::lvar("#v");
    V.FragKind = ChunkKind::Int;
    V.FragIdx = static_cast<uint8_t>(I);
    V.FragLen = 8;
    B.Bytes.set(I, V);
  }
  SM.putBlock(Expr::lit(Value::symV("$b")), std::move(B));
  Model Eps;
  Eps.bind(InternedString::get("#v"), Value::intV(0x0102030405060708));
  Result<McCMem> CM = interpretMemory(Eps, SM);
  ASSERT_TRUE(CM.ok()) << CM.error();
  Result<Value> R = CM->execAction(
      actLoad(), args({chunkValue(C8), blockSym("$b"), Value::intV(0)}));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asInt(), 0x0102030405060708);
  // And the low byte reads as 0x08 (little-endian).
  Chunk C1{1, 1, ChunkKind::Int};
  EXPECT_EQ(CM->execAction(actLoad(), args({chunkValue(C1), blockSym("$b"),
                                            Value::intV(0)}))
                ->asInt(),
            0x08);
}
