//===- examples/quickstart.cpp --------------------------------------------===//
//
// Quickstart: symbolic testing of a While program (the paper's running
// example language, §2.2–§2.4) in ~40 lines of driver code.
//
//   1. write a program with symbolic inputs (fresh_int) and first-order
//      assumptions/assertions — the symbolic unit test style of §1;
//   2. compile it to GIL;
//   3. run the symbolic engine over the While memory model;
//   4. read off the verdict: bounded verification, or bug reports with
//      solver-verified counter-models.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "engine/test_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <cstdio>

using namespace gillian;
using namespace gillian::whilelang;

int main() {
  // A symbolic unit test: abs() should be non-negative... but this
  // version has a seeded boundary bug at x == -10.
  const char *Source = R"(
    function main() {
      x := fresh_int();
      assume (0 - 100 <= x && x <= 100);
      y := abs(x);
      assert (0 <= y);
      assert (y == x || y == 0 - x);
      return y;
    }
    function abs(n) {
      if (n < 0 - 10) { return 0 - n; }   // BUG: should be n < 0
      return n;
    }
  )";

  Result<Prog> Compiled = compileWhileSource(Source);
  if (!Compiled) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.error().c_str());
    return 1;
  }
  std::printf("Compiled GIL (%zu procedures):\n%s\n",
              Compiled->size(), Compiled->toString().c_str());

  EngineOptions Opts;
  Solver Slv(Opts.Solver);
  SymbolicTestResult R =
      runSymbolicTest<WhileSMem>(*Compiled, "main", Opts, Slv);

  std::printf("paths: %llu returned, %llu pruned by assume, "
              "%llu budget-cut\n",
              static_cast<unsigned long long>(R.PathsReturned),
              static_cast<unsigned long long>(R.PathsVanished),
              static_cast<unsigned long long>(R.PathsBounded));
  if (R.verified()) {
    std::printf("VERIFIED (bounded): all assertions hold on every path\n");
    return 0;
  }
  for (const BugReport &B : R.Bugs) {
    std::printf("BUG%s: %s\n", B.Confirmed ? " (confirmed)" : "",
                B.Message.c_str());
    std::printf("  path condition: %s\n", B.PathCond.c_str());
    if (B.Confirmed)
      std::printf("  counter-model:  %s\n", B.CounterModel.c_str());
  }
  return 0;
}
