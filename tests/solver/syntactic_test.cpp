//===- tests/solver/syntactic_test.cpp ------------------------------------===//

#include "solver/syntactic.h"

#include "gil/parser.h"
#include "solver/simplifier.h"

#include <gtest/gtest.h>

using namespace gillian;

namespace {

PathCondition pc(std::initializer_list<const char *> Conjuncts) {
  PathCondition P;
  for (const char *C : Conjuncts) {
    Result<Expr> E = parseGilExpr(C);
    EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
    P.add(simplify(*E));
  }
  return P;
}

} // namespace

TEST(Syntactic, EmptyIsSat) {
  EXPECT_EQ(checkSatSyntactic(PathCondition()), SatResult::Sat);
}

TEST(Syntactic, EqualityConflict) {
  EXPECT_EQ(checkSatSyntactic(pc({"#x == 1", "#x == 2"})), SatResult::Unsat);
  EXPECT_EQ(checkSatSyntactic(pc({"#x == 1", "#y == 1", "#x == #y"})),
            SatResult::Unknown);
}

TEST(Syntactic, DisequalityAgainstMergedClasses) {
  EXPECT_EQ(checkSatSyntactic(pc({"#x == #y", "!(#x == #y)"})),
            SatResult::Unsat);
  EXPECT_EQ(checkSatSyntactic(pc({"#x == 1", "#y == 1", "!(#x == #y)"})),
            SatResult::Unsat);
  EXPECT_EQ(checkSatSyntactic(pc({"!(#x == #y)"})), SatResult::Unknown);
}

TEST(Syntactic, IntIntervalConflicts) {
  EXPECT_EQ(checkSatSyntactic(pc({"typeof(#x) == ^Int", "#x < 3", "5 < #x"})),
            SatResult::Unsat);
  EXPECT_EQ(checkSatSyntactic(pc({"typeof(#x) == ^Int", "#x < 3", "#x == 7"})),
            SatResult::Unsat);
  EXPECT_EQ(
      checkSatSyntactic(pc({"typeof(#x) == ^Int", "3 <= #x", "#x <= 3"})),
      SatResult::Unknown)
      << "x == 3 is satisfiable";
}

TEST(Syntactic, IntervalsThroughOffsets) {
  // (#x + 2) < 3 /\ 5 < #x is unsat over Int.
  EXPECT_EQ(checkSatSyntactic(
                pc({"typeof(#x) == ^Int", "(#x + 2) < 3", "5 < #x"})),
            SatResult::Unsat);
}

TEST(Syntactic, NumVarBetweenIntegersIsNotRefuted) {
  // A Num variable strictly between 5 and 6 is satisfiable; integer
  // interval reasoning must not apply.
  EXPECT_NE(checkSatSyntactic(
                pc({"typeof(#x) == ^Num", "5.0 < #x", "#x < 6.0"})),
            SatResult::Unsat);
  EXPECT_NE(
      checkSatSyntactic(pc({"typeof(#x) == ^Num", "5 <= #x", "#x <= 6"})),
      SatResult::Unsat);
}

TEST(Syntactic, ReflexiveStrictInequalityIsUnsat) {
  EXPECT_EQ(checkSatSyntactic(pc({"#x < #x"})), SatResult::Unsat);
}

TEST(Syntactic, BooleanLiteralsOfLVars) {
  EXPECT_EQ(checkSatSyntactic(pc({"#b", "!#b"})), SatResult::Unsat);
  EXPECT_EQ(checkSatSyntactic(pc({"#b == true", "#b == false"})),
            SatResult::Unsat);
}

TEST(Syntactic, TypeConflictIsUnsat) {
  EXPECT_EQ(checkSatSyntactic(
                pc({"typeof(#x) == ^Int", "typeof(#x) == ^Str"})),
            SatResult::Unsat);
}

TEST(Syntactic, OpaqueTermCongruence) {
  // f-free congruence via opaque terms: len(#l) == 2 and len(#l) == 3.
  EXPECT_EQ(checkSatSyntactic(pc({"len(#l) == 2", "len(#l) == 3"})),
            SatResult::Unsat);
}

TEST(Syntactic, ProposedModelsVerify) {
  for (auto Conjuncts :
       {pc({"typeof(#x) == ^Int", "3 <= #x", "#x <= 7"}),
        pc({"#x == 5", "#y == #x"}),
        pc({"typeof(#s) == ^Str", "#s == \"abc\""}),
        pc({"typeof(#b) == ^Bool", "#b"}),
        pc({"!(#x == #y)"})}) {
    std::optional<Model> M = proposeModelSyntactic(Conjuncts);
    ASSERT_TRUE(M.has_value()) << Conjuncts.toString();
    EXPECT_TRUE(M->satisfies(Conjuncts))
        << Conjuncts.toString() << " model " << M->toString();
  }
}

TEST(Syntactic, NoModelForContradiction) {
  EXPECT_FALSE(proposeModelSyntactic(pc({"#x == 1", "#x == 2"})).has_value());
}

TEST(Syntactic, ModelPicksIntervalPoint) {
  std::optional<Model> M = proposeModelSyntactic(
      pc({"typeof(#x) == ^Int", "10 <= #x", "#x <= 12"}));
  ASSERT_TRUE(M.has_value());
  const Value *V = M->lookup(InternedString::get("#x"));
  ASSERT_NE(V, nullptr);
  EXPECT_GE(V->asInt(), 10);
  EXPECT_LE(V->asInt(), 12);
}
