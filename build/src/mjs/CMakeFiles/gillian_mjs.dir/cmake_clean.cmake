file(REMOVE_RECURSE
  "CMakeFiles/gillian_mjs.dir/compiler.cpp.o"
  "CMakeFiles/gillian_mjs.dir/compiler.cpp.o.d"
  "CMakeFiles/gillian_mjs.dir/memory.cpp.o"
  "CMakeFiles/gillian_mjs.dir/memory.cpp.o.d"
  "CMakeFiles/gillian_mjs.dir/parser.cpp.o"
  "CMakeFiles/gillian_mjs.dir/parser.cpp.o.d"
  "CMakeFiles/gillian_mjs.dir/runtime.cpp.o"
  "CMakeFiles/gillian_mjs.dir/runtime.cpp.o.d"
  "libgillian_mjs.a"
  "libgillian_mjs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_mjs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
