//===- gil/value.h - GIL values (§2.1) -------------------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GIL values, following §2.1 of the paper:
///
///   v ∈ V ≜ n ∈ N | s ∈ S | b ∈ B | ς ∈ U | τ ∈ T | f ∈ F | list of v
///
/// We split the paper's "numbers" into Int (exact 64-bit integers, used by
/// the MC instantiation's byte-level memory) and Num (IEEE doubles, used by
/// MJS), as in the released Gillian implementation. Uninterpreted symbols
/// (ς ∈ U) represent allocation-unique constituents such as object
/// locations and instantiation-specific constants.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_GIL_VALUE_H
#define GILLIAN_GIL_VALUE_H

#include "support/interner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gillian {

/// The GIL type universe (the paper's τ ∈ T). These are first-class values
/// (returned by the typeOf operator) as well as classifiers.
enum class GilType : uint8_t {
  Int,
  Num,
  Str,
  Bool,
  Sym,
  Type,
  Proc,
  List,
};

/// Returns the textual name of \p T ("Int", "Num", ...).
std::string_view typeName(GilType T);

/// An immutable GIL value. Lists share storage, so copies are cheap.
class Value {
public:
  /// Default-constructs the integer 0 (a valid value; Value has no "empty"
  /// state).
  Value() : Kind(GilType::Int) { Payload.I = 0; }

  static Value intV(int64_t I);
  static Value numV(double D);
  static Value strV(std::string_view S);
  static Value strV(InternedString S);
  static Value boolV(bool B);
  /// Uninterpreted symbol ς, identified by an interned name (e.g. "$l_3").
  static Value symV(InternedString Name);
  static Value symV(std::string_view Name);
  static Value typeV(GilType T);
  static Value procV(InternedString F);
  static Value procV(std::string_view F);
  static Value listV(std::vector<Value> Elems);

  GilType type() const { return Kind; }
  bool isInt() const { return Kind == GilType::Int; }
  bool isNum() const { return Kind == GilType::Num; }
  bool isStr() const { return Kind == GilType::Str; }
  bool isBool() const { return Kind == GilType::Bool; }
  bool isSym() const { return Kind == GilType::Sym; }
  bool isType() const { return Kind == GilType::Type; }
  bool isProc() const { return Kind == GilType::Proc; }
  bool isList() const { return Kind == GilType::List; }
  /// True for Int and Num alike.
  bool isNumeric() const { return isInt() || isNum(); }

  int64_t asInt() const {
    assert(isInt() && "not an Int value");
    return Payload.I;
  }
  double asNum() const {
    assert(isNum() && "not a Num value");
    return Payload.D;
  }
  /// Numeric value widened to double (valid for Int and Num).
  double asDouble() const {
    assert(isNumeric() && "not a numeric value");
    return isInt() ? static_cast<double>(Payload.I) : Payload.D;
  }
  bool asBool() const {
    assert(isBool() && "not a Bool value");
    return Payload.B;
  }
  InternedString asStr() const {
    assert(isStr() && "not a Str value");
    return InternedString::fromRaw(Payload.S);
  }
  InternedString asSym() const {
    assert(isSym() && "not a Sym value");
    return InternedString::fromRaw(Payload.S);
  }
  GilType asType() const {
    assert(isType() && "not a Type value");
    return static_cast<GilType>(Payload.T);
  }
  InternedString asProc() const {
    assert(isProc() && "not a Proc value");
    return InternedString::fromRaw(Payload.S);
  }
  const std::vector<Value> &asList() const {
    assert(isList() && "not a List value");
    return *List;
  }

  /// Structural equality across all kinds.
  friend bool operator==(const Value &A, const Value &B);
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  /// An arbitrary-but-total order (kind-major), so values can key ordered
  /// maps. Not the GIL '<' operator — see evalBinOp.
  friend bool operator<(const Value &A, const Value &B);
  // (namespace-scope declarations below keep the out-of-line definitions
  // attached to these friends)

  size_t hash() const;

  /// Renders the value in textual-GIL syntax (round-trips through the GIL
  /// parser).
  std::string toString() const;

private:
  // Interned strings are stored by raw id; InternedString(Payload.S) is
  // reconstructed in the accessors.
  friend class ValueBuilderAccess;

  GilType Kind;
  union {
    int64_t I;
    double D;
    bool B;
    uint32_t S; ///< interned id for Str / Sym / Proc
    uint8_t T;  ///< GilType for Type values
  } Payload;
  std::shared_ptr<const std::vector<Value>> List;
};

bool operator==(const Value &A, const Value &B);
bool operator<(const Value &A, const Value &B);

} // namespace gillian

template <> struct std::hash<gillian::Value> {
  size_t operator()(const gillian::Value &V) const noexcept {
    return V.hash();
  }
};

#endif // GILLIAN_GIL_VALUE_H
