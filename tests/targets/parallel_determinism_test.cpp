//===- tests/targets/parallel_determinism_test.cpp ------------------------===//
//
// The determinism property of the parallel exploration scheduler on the
// evaluation workloads: every MJS (Buckets) and MC (Collections) example
// suite, explored at workers ∈ {1, 2, 8}, yields the identical multiset
// of (outcome kind, outcome value, final path condition) — the parallel
// engine finds exactly the sequential engine's paths, nothing more,
// nothing fewer, with identical values and path conditions.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "targets/suite_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

/// Runs every `test_*` procedure of \p P at the given worker count and
/// renders each finished path as "test|kind|value|path-condition";
/// returns the signatures sorted (a multiset in canonical form).
template <typename M>
std::vector<std::string> suiteTraces(const Prog &P, uint32_t Workers) {
  EngineOptions Opts;
  Opts.Scheduler.Workers = Workers;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  std::vector<std::string> Sigs;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    for (TraceResult<St> &R : *Traces)
      Sigs.push_back(T + "|" + std::string(outcomeKindName(R.Kind)) + "|" +
                     R.Val.toString() + "|" +
                     R.Final.pathCondition().toString());
  }
  std::sort(Sigs.begin(), Sigs.end());
  return Sigs;
}

template <typename M>
void expectScheduleIndependent(const Prog &P, std::string_view Name) {
  std::vector<std::string> Seq = suiteTraces<M>(P, 1);
  EXPECT_FALSE(Seq.empty()) << Name;
  for (uint32_t Workers : {2u, 8u}) {
    std::vector<std::string> Par = suiteTraces<M>(P, Workers);
    EXPECT_EQ(Seq, Par) << Name << " at workers=" << Workers;
  }
}

class BucketsDeterminismTest
    : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsDeterminismTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

} // namespace

TEST_P(BucketsDeterminismTest, TraceMultisetIsWorkerCountInvariant) {
  const BucketsSuite &S = GetParam();
  std::string Src =
      std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectScheduleIndependent<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsDeterminismTest,
    ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsDeterminismTest, TraceMultisetIsWorkerCountInvariant) {
  const CollectionsSuite &S = GetParam();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectScheduleIndependent<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsDeterminismTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });
