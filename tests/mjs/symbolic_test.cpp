//===- tests/mjs/symbolic_test.cpp ----------------------------------------===//
//
// Symbolic testing of MJS: the SGetProp branching behaviour, type-guard
// folding under typed inputs, bug finding with counter-models, and the
// Thm 3.6 replay harness over the JS memory model.
//
//===----------------------------------------------------------------------===//

#include "mjs/compiler.h"

#include "engine/test_runner.h"
#include "mjs/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mjs;

namespace {

SymbolicTestResult runSym(std::string_view Src, const char *Entry = "main",
                          EngineOptions Opts = EngineOptions()) {
  Result<Prog> P = compileMjsSource(Src);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  Solver Slv(Opts.Solver);
  return runSymbolicTest<MjsSMem>(*P, Entry, Opts, Slv);
}

} // namespace

TEST(MjsSymbolic, VerifiesNumericProperty) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      var x = symb_number();
      Assume(0 <= x);
      var y = x + 1;
      Assert(x < y);
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(MjsSymbolic, TypeGuardsFoldForTypedInputs) {
  // With symb_number inputs, every arithmetic type guard should fold
  // statically: no error paths, minimal branching.
  SymbolicTestResult R = runSym(R"(
    function main() {
      var a = symb_number();
      var b = symb_number();
      var c = a * b + a - b;
      Assert(typeof c === "number");
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_EQ(R.PathsReturned, 1u) << "guards must fold; no spurious splits";
}

TEST(MjsSymbolic, UntypedInputSplitsOnAdd) {
  // symb_any flowing into + must split into number/number, string/string
  // and TypeError worlds.
  SymbolicTestResult R = runSym(R"(
    function main() {
      var v = symb_any();
      var w = v + v;
      return w;
    })");
  EXPECT_FALSE(R.ok()) << "the TypeError world is reachable";
  EXPECT_TRUE(R.hasConfirmedBug());
  EXPECT_GE(R.PathsReturned, 2u) << "number and string worlds return";
}

TEST(MjsSymbolic, SymbolicPropertyValueRoundTrips) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      var v = symb_number();
      var o = { data: v, tag: "t" };
      o.data = o.data + 1;
      Assert(o.data === v + 1);
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
}

TEST(MjsSymbolic, ComputedSymbolicKeyBranchesPerSGetProp) {
  // A symbolic string key over an object with two properties: the lookup
  // branches on key equality (the [SGetProp] rule) — hit "a", hit "b", or
  // miss (undefined).
  SymbolicTestResult R = runSym(R"(
    function main() {
      var k = symb_string();
      var o = { a: 1, b: 2 };
      var v = o[k];
      if (v === undefined) { return "miss"; }
      Assert(v === 1 || v === 2);
      return "hit";
    })");
  EXPECT_TRUE(R.ok()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_GE(R.PathsReturned, 3u) << "two hits plus the miss world";
}

TEST(MjsSymbolic, FindsOffByOneInArrayWalk) {
  // Seeded bug: <= walks one past the populated range, reading undefined
  // and faulting in the arithmetic guard.
  SymbolicTestResult R = runSym(R"(
    function main() {
      var a = [1, 2, 3];
      var s = 0;
      for (var i = 0; i <= a.length; i = i + 1) { s = s + a[i]; }
      return s;
    })");
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.hasConfirmedBug());
  EXPECT_NE(R.Bugs[0].Message.find("TypeError"), std::string::npos)
      << R.Bugs[0].Message;
}

TEST(MjsSymbolic, PropertyDeletionFlowsSymbolically) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      var b = symb_bool();
      var o = { v: 1 };
      if (b) { delete o.v; }
      var x = o.v;
      if (b) { Assert(x === undefined); } else { Assert(x === 1); }
      return x;
    })");
  EXPECT_TRUE(R.verified()) << (R.Bugs.empty() ? "" : R.Bugs[0].Message);
  EXPECT_EQ(R.PathsReturned, 2u);
}

TEST(MjsSymbolic, BranchOnSymbolicBoolean) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      var b = symb_bool();
      var r = 0;
      if (b) { r = 1; } else { r = 2; }
      Assert(r === 1 || r === 2);
      return r;
    })");
  EXPECT_TRUE(R.verified());
  EXPECT_EQ(R.PathsReturned, 2u);
}

TEST(MjsSymbolic, AssertWithCounterModelOnStrings) {
  SymbolicTestResult R = runSym(R"(
    function main() {
      var s = symb_string();
      Assume(s === "ok" || s === "bad");
      Assert(s === "ok");
    })");
  ASSERT_FALSE(R.ok());
  ASSERT_TRUE(R.hasConfirmedBug());
  EXPECT_NE(R.Bugs[0].CounterModel.find("bad"), std::string::npos)
      << R.Bugs[0].CounterModel;
}

TEST(MjsSymbolic, LegacyConfigAgreesOnVerdicts) {
  const char *Src = R"(
    function main() {
      var x = symb_number();
      Assume(0 <= x);
      if (10 < x) { Assert(x * 2 > 20); }
      return x;
    })";
  SymbolicTestResult Fast = runSym(Src);
  SymbolicTestResult Slow = runSym(Src, "main",
                                   EngineOptions::legacyJaVerT2());
  EXPECT_EQ(Fast.ok(), Slow.ok());
  EXPECT_EQ(Fast.PathsReturned, Slow.PathsReturned);
}
