//===- engine/memlib/pmap.h - Partial-map combinator -----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The partial-map combinator and, at its heart, THE may-alias branch
/// loop: the one place in the engine that turns "look this key up in a
/// symbolically-keyed map" into the branch set of the paper's [S-Lookup] /
/// [S-Mutate-Present] / [S-Mutate-Absent] rules. Before this library the
/// loop existed seven times across the While, MJS and MC models (object
/// lookup/mutate/dispose, property get/set/delete/has, block resolution);
/// all of them now call resolveAliases.
///
/// The loop, exactly as the rules prescribe:
///
///   for every stored key K:
///     classify (Key == K) under the path condition (alias.h):
///       Yes   -> visit K under the accumulated Live condition; no other
///                entry or the miss world is reachable — stop;
///       No    -> skip;
///       Maybe -> visit K under Live ∧ (Key == K); conjoin
///                ¬(Key == K) into the running miss condition;
///   if the miss world is still possible (π ∧ Miss SAT), emit it.
///
/// What happens on a visit or on a miss is the caller's miss-policy:
/// While lookup faults, MJS getProp returns $undefined, MJS setProp
/// extends the map ([S-Mutate-Absent]), linear load returns 0 (zero-
/// initialised Wasm memory). The loop itself is policy-free.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_MEMLIB_PMAP_H
#define GILLIAN_ENGINE_MEMLIB_PMAP_H

#include "engine/action_args.h"
#include "engine/memlib/branch.h"
#include "engine/memlib/cell.h"
#include "engine/memlib/freeable.h"
#include "engine/memlib/print.h"
#include "engine/state.h"
#include "solver/model.h"
#include "support/cow_map.h"

namespace gillian::memlib {

/// Tuning of the resolve loop.
struct ResolveOpts {
  /// Check for a structural (pointer-equal key) hit before consulting the
  /// solver. MC turns this on — block names are distinct uSym symbols, so
  /// a structural hit is a definite alias and skips the loop entirely.
  /// While/MJS leave it off to keep their historical branch evaluation
  /// order (the solver loop classifies a structural hit as Yes anyway).
  bool StructuralFastPath = false;
};

/// The shared may-alias branch loop over any CowMap keyed by Expr.
/// \p OnAlias(storedKey, storedValue, takenCond, definite) is invoked per
/// possible alias; \p OnMiss(missCond) once if no-alias is feasible.
/// \p Live is the condition already accumulated by the caller (e.g. the
/// SFreedSet guard); conditions passed on are conjoined under it.
template <typename M, typename MapT, typename AliasFn, typename MissFn>
void resolveAliases(BranchCtx<M> &Ctx, const MapT &Map, const Expr &Key,
                    const Expr &Live, const ResolveOpts &Opts,
                    AliasFn OnAlias, MissFn OnMiss) {
  if (Opts.StructuralFastPath) {
    if (const auto *Hit = Map.lookup(Key)) {
      OnAlias(Key, *Hit, Live, /*Definite=*/true);
      return;
    }
  }
  Expr MissCond = Live;
  for (const auto &[K, V] : Map) {
    Expr Cond;
    Tri T = decideEq(Key, K, Ctx.PC, Ctx.S, Cond);
    if (T == Tri::No)
      continue;
    if (T == Tri::Yes) {
      OnAlias(K, V, Live, /*Definite=*/true);
      return; // a definite alias: no other branch is reachable
    }
    OnAlias(K, V, conj(Live, Cond), /*Definite=*/false);
    MissCond = conj(MissCond, Expr::notE(Cond));
  }
  if (MissCond.isFalse())
    return;
  if (Ctx.feasible(MissCond))
    OnMiss(MissCond);
}

//===----------------------------------------------------------------------===//
// PMap<Cell>: the combinator pair
//===----------------------------------------------------------------------===//

inline InternedString actMapGet() { return InternedString::get("mget"); }
inline InternedString actMapSet() { return InternedString::get("mset"); }
inline InternedString actMapHas() { return InternedString::get("mhas"); }
inline InternedString actMapFree() { return InternedString::get("mfree"); }

/// A partial map from locations to cells, with use-after-free tracking in
/// the key-index form (freed cells drop their payload; see freeable.h).
/// Symbolically the map is keyed by arbitrary expressions and every
/// action runs the resolveAliases loop; concretely keys are symbols.
///
/// Action set (the [S-Lookup]/[S-Mutate-*] rules, with faults):
///   mget [k]     — value at k; fault on unknown or freed key
///   mset [k, v]  — write at k, extending on a definite miss
///   mhas [k]     — Bool membership; never faults on a miss
///   mfree [k]    — dispose k; fault on unknown key or double free
template <typename Cell = ExprCell> struct PMap {
  static bool hasAction(InternedString Act) {
    return Act == actMapGet() || Act == actMapSet() || Act == actMapHas() ||
           Act == actMapFree();
  }

  class Concrete {
  public:
    using CellT = typename Cell::Concrete;
    using MapT = CowMap<InternedString, CellT>;

    const MapT &entries() const { return Entries; }
    const CFreedSet &freedSet() const { return Freed; }
    void set(InternedString K, CellT V) { Entries.set(K, std::move(V)); }
    void markFreed(InternedString K) {
      Entries.erase(K);
      Freed.mark(K);
    }

    Result<Value> execAction(InternedString Act, const Value &Arg) {
      size_t N = Act == actMapSet() ? 2 : 1;
      Result<std::vector<Value>> A = splitArgs(Arg, N);
      if (!A)
        return Err(A.error());
      if (!(*A)[0].isSym())
        return Err("memory fault: " + std::string(Act.str()) +
                   " on non-location " + (*A)[0].toString());
      InternedString K = (*A)[0].asSym();
      if (Act == actMapHas())
        return Value::boolV(Entries.contains(K));
      if (Freed.contains(K))
        return Err("memory fault: " + std::string(Act.str()) +
                   " on freed location " + (*A)[0].toString());
      if (Act == actMapGet()) {
        const CellT *C = Entries.lookup(K);
        if (!C)
          return Err("memory fault: mget on unknown location " +
                     (*A)[0].toString());
        return C->read();
      }
      if (Act == actMapSet()) {
        Entries.set(K, CellT((*A)[1]));
        return (*A)[1];
      }
      if (Act == actMapFree()) {
        if (!Entries.contains(K))
          return Err("memory fault: mfree of unknown location " +
                     (*A)[0].toString());
        markFreed(K);
        return Value::boolV(true);
      }
      return Err("unknown PMap action '" + std::string(Act.str()) + "'");
    }

    std::string toString() const;

    friend bool operator==(const Concrete &A, const Concrete &B) {
      return A.Entries == B.Entries && A.Freed == B.Freed;
    }

  private:
    MapT Entries;
    CFreedSet Freed;
  };

  class Symbolic {
  public:
    using CellT = typename Cell::Symbolic;
    using MapT = CowMap<Expr, CellT, ExprOrdering>;

    const MapT &entries() const { return Entries; }
    const SFreedSet &freedSet() const { return Freed; }
    void set(const Expr &K, CellT V) { Entries.set(K, std::move(V)); }
    void markFreed(const Expr &K) {
      Entries.erase(K);
      Freed.mark(K);
    }

    /// The alias loop over this map's entries (see resolveAliases).
    template <typename M, typename AliasFn, typename MissFn>
    void resolve(BranchCtx<M> &Ctx, const Expr &Key, const Expr &Live,
                 const ResolveOpts &Opts, AliasFn OnAlias,
                 MissFn OnMiss) const {
      resolveAliases(Ctx, Entries, Key, Live, Opts, OnAlias, OnMiss);
    }

    Result<std::vector<SymActionBranch<Symbolic>>>
    execAction(InternedString Act, const Expr &Arg, const PathCondition &PC,
               Solver &S) const {
      size_t N = Act == actMapSet() ? 2 : 1;
      Result<std::vector<Expr>> A = splitArgsE(Arg, N);
      if (!A)
        return Err(A.error());
      const Expr &K = (*A)[0];
      std::string ActName(Act.str());
      BranchCtx<Symbolic> Ctx(*this, PC, S);

      if (!hasAction(Act))
        return Err("unknown PMap action '" + ActName + "'");

      Expr Live = Expr::boolE(true);
      // mhas observes freed locations as absent rather than faulting.
      if (Act != actMapHas() &&
          !Freed.guard(Ctx, K,
                       "memory fault: " + ActName + " on freed location",
                       Live))
        return Ctx.Out;

      if (Act == actMapGet()) {
        resolve(
            Ctx, K, Live, ResolveOpts{},
            [&](const Expr &, const CellT &C, const Expr &Taken, bool) {
              Ctx.ok(*this, C.read(), Taken);
            },
            [&](const Expr &Miss) {
              Ctx.error("memory fault: mget on unknown location", Miss);
            });
        return Ctx.Out;
      }
      if (Act == actMapSet()) {
        const Expr &V = (*A)[1];
        resolve(
            Ctx, K, Live, ResolveOpts{},
            [&](const Expr &Key, const CellT &, const Expr &Taken, bool) {
              Symbolic Next = *this;
              Next.Entries.set(Key, CellT(V));
              Ctx.ok(std::move(Next), V, Taken);
            },
            [&](const Expr &Miss) {
              // [S-Mutate-Absent]: extend at the queried key.
              Symbolic Next = *this;
              Next.Entries.set(K, CellT(V));
              Ctx.ok(std::move(Next), V, Miss);
            });
        return Ctx.Out;
      }
      if (Act == actMapHas()) {
        resolve(
            Ctx, K, Live, ResolveOpts{},
            [&](const Expr &, const CellT &, const Expr &Taken, bool) {
              Ctx.ok(*this, Expr::boolE(true), Taken);
            },
            [&](const Expr &Miss) {
              Ctx.ok(*this, Expr::boolE(false), Miss);
            });
        return Ctx.Out;
      }
      // mfree
      resolve(
          Ctx, K, Live, ResolveOpts{},
          [&](const Expr &Key, const CellT &, const Expr &Taken, bool) {
            Symbolic Next = *this;
            Next.markFreed(Key);
            Ctx.ok(std::move(Next), Expr::boolE(true), Taken);
          },
          [&](const Expr &Miss) {
            Ctx.error("memory fault: mfree of unknown location", Miss);
          });
      return Ctx.Out;
    }

    /// Generic I(·): evaluate every key under ε to a distinct symbol, then
    /// interpret each cell — the ⊎-is-undefined check of [Union].
    Result<Concrete> interpret(const Model &Eps) const {
      Concrete Out;
      for (const auto &[KE, C] : Entries) {
        Result<Value> K = Eps.eval(KE);
        if (!K)
          return Err("interpretation failure on location " + KE.toString() +
                     ": " + K.error());
        if (!K->isSym())
          return Err("location " + KE.toString() +
                     " interprets to a non-symbol " + K->toString());
        if (Out.entries().contains(K->asSym()))
          return Err("locations collapse under the model: " + K->toString());
        Result<typename Cell::Concrete> CC = C.interpret(Eps);
        if (!CC)
          return Err(CC.error());
        Out.set(K->asSym(), CC.take());
      }
      Result<CFreedSet> F = Freed.interpret(Eps, "freed location");
      if (!F)
        return Err(F.error());
      for (const auto &[D, Unused] : F->keys()) {
        (void)Unused;
        Out.markFreed(D);
      }
      return Out;
    }

    std::string toString() const;

    friend bool operator==(const Symbolic &A, const Symbolic &B) {
      return A.Entries == B.Entries && A.Freed == B.Freed;
    }

  private:
    MapT Entries;
    SFreedSet Freed;
  };
};

template <typename Cell>
std::string PMap<Cell>::Concrete::toString() const {
  std::string S = printEntries(Entries, [](InternedString K, const CellT &C) {
    return std::string(K.str()) + " -> " + C.toString();
  });
  if (!Freed.keys().empty()) {
    S += " freed:";
    for (const auto &[K, Unused] : Freed.keys()) {
      (void)Unused;
      S += " " + std::string(K.str());
    }
  }
  return S;
}

template <typename Cell>
std::string PMap<Cell>::Symbolic::toString() const {
  std::string S = printEntries(Entries, [](const Expr &K, const CellT &C) {
    return K.toString() + " -> " + C.toString();
  });
  if (!Freed.empty()) {
    S += " freed:";
    for (const auto &[K, Unused] : Freed.keys()) {
      (void)Unused;
      S += " " + K.toString();
    }
  }
  return S;
}

static_assert(ConcreteMemoryModel<PMap<>::Concrete>);
static_assert(SymbolicMemoryModel<PMap<>::Symbolic>);

} // namespace gillian::memlib

#endif // GILLIAN_ENGINE_MEMLIB_PMAP_H
