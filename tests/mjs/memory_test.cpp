//===- tests/mjs/memory_test.cpp ------------------------------------------===//
//
// Direct unit tests of the eight JS memory actions (§4.1), concrete and
// symbolic, including the [SGetProp]-style double branching on both the
// location and the property name, metadata, and interpretation.
//
//===----------------------------------------------------------------------===//

#include "mjs/memory.h"

#include <gtest/gtest.h>

using namespace gillian;
using namespace gillian::mjs;

namespace {

Value args(std::initializer_list<Value> Vs) { return Value::listV(Vs); }
Expr eargs(std::initializer_list<Expr> Es) { return Expr::list(Es); }
InternedString is(std::string_view S) { return InternedString::get(S); }

} // namespace

TEST(MjsCMemT, NewSetGetRoundTrip) {
  MjsCMem M;
  Value L = Value::symV("$o");
  ASSERT_TRUE(M.execAction(actNewObj(), args({L, Value::strV("Object")}))
                  .ok());
  ASSERT_TRUE(
      M.execAction(actSetProp(), args({L, Value::strV("k"), Value::numV(7)}))
          .ok());
  Result<Value> V = M.execAction(actGetProp(), args({L, Value::strV("k")}));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, Value::numV(7));
}

TEST(MjsCMemT, AbsentPropertyIsUndefined) {
  MjsCMem M;
  Value L = Value::symV("$o");
  ASSERT_TRUE(M.execAction(actNewObj(), args({L, Value::strV("Object")}))
                  .ok());
  Result<Value> V = M.execAction(actGetProp(), args({L, Value::strV("x")}));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, jsUndefined());
}

TEST(MjsCMemT, UnknownAndDeletedObjectsFault) {
  MjsCMem M;
  Value L = Value::symV("$o");
  EXPECT_FALSE(
      M.execAction(actGetProp(), args({L, Value::strV("k")})).ok());
  ASSERT_TRUE(M.execAction(actNewObj(), args({L, Value::strV("Object")}))
                  .ok());
  ASSERT_TRUE(M.execAction(actDelObj(), args({L})).ok());
  EXPECT_FALSE(
      M.execAction(actGetProp(), args({L, Value::strV("k")})).ok());
  EXPECT_FALSE(M.execAction(actDelObj(), args({L})).ok())
      << "double deletion";
}

TEST(MjsCMemT, HasAndDelProp) {
  MjsCMem M;
  Value L = Value::symV("$o");
  ASSERT_TRUE(M.execAction(actNewObj(), args({L, Value::strV("Object")}))
                  .ok());
  ASSERT_TRUE(
      M.execAction(actSetProp(), args({L, Value::strV("k"), Value::numV(1)}))
          .ok());
  EXPECT_EQ(*M.execAction(actHasProp(), args({L, Value::strV("k")})),
            Value::boolV(true));
  ASSERT_TRUE(M.execAction(actDelProp(), args({L, Value::strV("k")})).ok());
  EXPECT_EQ(*M.execAction(actHasProp(), args({L, Value::strV("k")})),
            Value::boolV(false));
  // Deleting an absent property is a no-op (JS delete).
  EXPECT_TRUE(M.execAction(actDelProp(), args({L, Value::strV("k")})).ok());
}

TEST(MjsCMemT, Metadata) {
  MjsCMem M;
  Value L = Value::symV("$a");
  ASSERT_TRUE(
      M.execAction(actNewObj(), args({L, Value::strV("Array")})).ok());
  EXPECT_EQ(*M.execAction(actGetMeta(), args({L})), Value::strV("Array"));
  ASSERT_TRUE(
      M.execAction(actSetMeta(), args({L, Value::strV("Frozen")})).ok());
  EXPECT_EQ(*M.execAction(actGetMeta(), args({L})), Value::strV("Frozen"));
}

// --- Symbolic ---------------------------------------------------------------

TEST(MjsSMemT, GetPropBranchesOnLocationAndKey) {
  // [SGetProp]: a symbolic (location, key) pair over two objects with two
  // properties each branches on every (el = e'l ∧ ep = e'p) world plus
  // misses.
  MjsSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#l"), GilType::Sym));
  PC.add(Expr::hasType(Expr::lvar("#k"), GilType::Str));
  M.defineObject(Expr::lit(Value::symV("$a")), Expr::strE("Object"));
  M.setProp(Expr::lit(Value::symV("$a")), Expr::strE("p"), Expr::intE(1));
  M.setProp(Expr::lit(Value::symV("$a")), Expr::strE("q"), Expr::intE(2));
  M.defineObject(Expr::lit(Value::symV("$b")), Expr::strE("Object"));
  M.setProp(Expr::lit(Value::symV("$b")), Expr::strE("p"), Expr::intE(3));

  auto Br = M.execAction(actGetProp(),
                         eargs({Expr::lvar("#l"), Expr::lvar("#k")}), PC, S);
  ASSERT_TRUE(Br.ok());
  int Hits = 0, Undefs = 0, Errors = 0;
  for (auto &B : *Br) {
    if (B.IsError)
      ++Errors;
    else if (B.Ret == Expr::lit(jsUndefined()))
      ++Undefs;
    else
      ++Hits;
  }
  EXPECT_EQ(Hits, 3) << "three stored properties may match";
  EXPECT_EQ(Undefs, 2) << "miss world per aliased object";
  EXPECT_EQ(Errors, 1) << "no-such-object world";
}

TEST(MjsSMemT, SetPropWithSymbolicKeyOverwritesOrExtends) {
  MjsSMem M;
  Solver S;
  PathCondition PC;
  PC.add(Expr::hasType(Expr::lvar("#k"), GilType::Str));
  Expr A = Expr::lit(Value::symV("$a"));
  M.defineObject(A, Expr::strE("Object"));
  M.setProp(A, Expr::strE("p"), Expr::intE(1));

  auto Br = M.execAction(
      actSetProp(), eargs({A, Expr::lvar("#k"), Expr::intE(9)}), PC, S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 2u) << "overwrite-p world and fresh-key world";
  bool SawOverwrite = false, SawExtend = false;
  for (auto &B : *Br) {
    const MjsSMem::PropMap *Props = B.Mem.heap().lookup(A);
    ASSERT_NE(Props, nullptr);
    if (Props->size() == 1)
      SawOverwrite = true;
    if (Props->size() == 2)
      SawExtend = true;
  }
  EXPECT_TRUE(SawOverwrite);
  EXPECT_TRUE(SawExtend);
}

TEST(MjsSMemT, ConcreteKeysStaySingleBranch) {
  MjsSMem M;
  Solver S;
  PathCondition PC;
  Expr A = Expr::lit(Value::symV("$a"));
  M.defineObject(A, Expr::strE("Object"));
  M.setProp(A, Expr::strE("p"), Expr::intE(1));
  auto Br =
      M.execAction(actGetProp(), eargs({A, Expr::strE("p")}), PC, S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 1u) << "fully concrete access must not branch";
  EXPECT_EQ((*Br)[0].Ret, Expr::intE(1));
}

TEST(MjsSMemT, DeletedObjectAliasFaults) {
  MjsSMem M;
  Solver S;
  PathCondition PC;
  Expr A = Expr::lit(Value::symV("$a"));
  M.defineObject(A, Expr::strE("Object"));
  auto Del = M.execAction(actDelObj(), eargs({A}), PC, S);
  ASSERT_TRUE(Del.ok());
  const MjsSMem &M2 = (*Del)[0].Mem;
  auto Br = M2.execAction(actGetProp(), eargs({A, Expr::strE("p")}), PC, S);
  ASSERT_TRUE(Br.ok());
  ASSERT_EQ(Br->size(), 1u);
  EXPECT_TRUE((*Br)[0].IsError);
}

TEST(MjsSMemT, InterpretationRoundTrip) {
  MjsSMem SM;
  Expr A = Expr::lit(Value::symV("$a"));
  SM.defineObject(A, Expr::strE("Object"));
  SM.setProp(A, Expr::strE("p"),
             Expr::add(Expr::lvar("#v"), Expr::numE(1)));
  Model Eps;
  Eps.bind(is("#v"), Value::numV(41));
  Result<MjsCMem> CM = interpretMemory(Eps, SM);
  ASSERT_TRUE(CM.ok()) << CM.error();
  Result<Value> V = CM->execAction(
      actGetProp(), args({Value::symV("$a"), Value::strV("p")}));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, Value::numV(42));
}
