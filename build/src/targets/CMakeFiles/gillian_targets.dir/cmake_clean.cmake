file(REMOVE_RECURSE
  "CMakeFiles/gillian_targets.dir/buckets_mjs.cpp.o"
  "CMakeFiles/gillian_targets.dir/buckets_mjs.cpp.o.d"
  "CMakeFiles/gillian_targets.dir/buckets_suites.cpp.o"
  "CMakeFiles/gillian_targets.dir/buckets_suites.cpp.o.d"
  "CMakeFiles/gillian_targets.dir/collections_mc.cpp.o"
  "CMakeFiles/gillian_targets.dir/collections_mc.cpp.o.d"
  "CMakeFiles/gillian_targets.dir/collections_suites.cpp.o"
  "CMakeFiles/gillian_targets.dir/collections_suites.cpp.o.d"
  "libgillian_targets.a"
  "libgillian_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gillian_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
