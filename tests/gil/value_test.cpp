//===- tests/gil/value_test.cpp -------------------------------------------===//

#include "gil/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace gillian;

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value::intV(-3).asInt(), -3);
  EXPECT_DOUBLE_EQ(Value::numV(2.5).asNum(), 2.5);
  EXPECT_EQ(Value::strV("hi").asStr().str(), "hi");
  EXPECT_TRUE(Value::boolV(true).asBool());
  EXPECT_EQ(Value::symV("$loc").asSym().str(), "$loc");
  EXPECT_EQ(Value::typeV(GilType::Str).asType(), GilType::Str);
  EXPECT_EQ(Value::procV("main").asProc().str(), "main");
  Value L = Value::listV({Value::intV(1), Value::strV("x")});
  ASSERT_EQ(L.asList().size(), 2u);
  EXPECT_EQ(L.asList()[0].asInt(), 1);
}

TEST(Value, StructuralEqualityDoesNotCoerce) {
  // GIL equality is structural: 1 != 1.0, "1" != 1.
  EXPECT_NE(Value::intV(1), Value::numV(1.0));
  EXPECT_NE(Value::strV("1"), Value::intV(1));
  EXPECT_NE(Value::boolV(true), Value::intV(1));
  EXPECT_EQ(Value::intV(1), Value::intV(1));
}

TEST(Value, NanEqualsItselfStructurally) {
  // Bitwise identity, required for the simplifier's Eq(e,e) -> true rule.
  Value N = Value::numV(std::nan(""));
  EXPECT_EQ(N, N);
  EXPECT_EQ(N, Value::numV(std::nan("")));
}

TEST(Value, NegativeZeroDistinctFromPositiveZero) {
  EXPECT_NE(Value::numV(-0.0), Value::numV(0.0));
}

TEST(Value, ListEqualityIsDeep) {
  Value A = Value::listV({Value::intV(1), Value::listV({Value::strV("x")})});
  Value B = Value::listV({Value::intV(1), Value::listV({Value::strV("x")})});
  Value C = Value::listV({Value::intV(1), Value::listV({Value::strV("y")})});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(Value, OrderingIsTotalOnMixedKinds) {
  std::map<Value, int> M;
  M[Value::intV(1)] = 1;
  M[Value::numV(1.0)] = 2;
  M[Value::strV("1")] = 3;
  M[Value::boolV(true)] = 4;
  M[Value::listV({Value::intV(1)})] = 5;
  EXPECT_EQ(M.size(), 5u) << "distinct kinds must be distinct keys";
  EXPECT_EQ(M[Value::intV(1)], 1);
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value::intV(42).toString(), "42");
  EXPECT_EQ(Value::numV(2.5).toString(), "2.5");
  EXPECT_EQ(Value::numV(3.0).toString(), "3.0") << "Num stays visually a Num";
  EXPECT_EQ(Value::boolV(false).toString(), "false");
  EXPECT_EQ(Value::strV("a\"b").toString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::symV("$u_0_1").toString(), "$u_0_1");
  EXPECT_EQ(Value::typeV(GilType::List).toString(), "^List");
  EXPECT_EQ(Value::procV("f").toString(), "&f");
  EXPECT_EQ(Value::listV({Value::intV(1), Value::intV(2)}).toString(),
            "[1, 2]");
}

TEST(Value, NumFormattingRoundTrips) {
  for (double D : {0.1, 1.0 / 3.0, 1e-17, 123456789.123456789, -2.5e300}) {
    std::string S = Value::numV(D).toString();
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), D) << S;
  }
}

TEST(Value, DefaultConstructedIsIntZero) {
  Value V;
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 0);
}

TEST(Value, ListsShareStorageOnCopy) {
  Value A = Value::listV({Value::intV(1), Value::intV(2), Value::intV(3)});
  Value B = A;
  EXPECT_EQ(&A.asList(), &B.asList()) << "copies must share list storage";
}
