file(REMOVE_RECURSE
  "CMakeFiles/c_bug_hunt.dir/c_bug_hunt.cpp.o"
  "CMakeFiles/c_bug_hunt.dir/c_bug_hunt.cpp.o.d"
  "c_bug_hunt"
  "c_bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
