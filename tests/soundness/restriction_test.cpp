//===- tests/soundness/restriction_test.cpp -------------------------------===//
//
// Executable §3.1: the restriction axioms (Def 3.1) and compatibility
// properties (Def 3.4) on symbolic states, plus monotonicity of action
// execution w.r.t. restriction (Def 3.2).
//
// The whole suite is TYPED over the symbolic memory model: the axioms are
// properties of SymbolicState<M> for *any* M, so they run against every
// model generation — the three language models (While, MJS, MC), the
// linear-memory instantiation, and the raw memlib combinators (PMap and a
// Product composition) the models are built from. Per-model knowledge
// (how to seed two may-aliasing entries and which action branches over
// them) lives in the ModelTraits specialisations.
//
//===----------------------------------------------------------------------===//

#include "engine/state.h"

#include "engine/memlib/memlib.h"
#include "gil/parser.h"
#include "linear/memory.h"
#include "mc/memory.h"
#include "mjs/memory.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <string>

using namespace gillian;

namespace {

EngineOptions Opts;
Solver *solver() {
  static Solver S;
  return &S;
}

/// Per-model setup for the branching-action monotonicity test: seed the
/// memory with two entries the queried logical variable may alias, name
/// the action that runs the alias loop over them, and give the PC typing
/// of the query variable.
template <typename M> struct ModelTraits;

template <> struct ModelTraits<whilelang::WhileSMem> {
  static constexpr const char *Name = "While";
  static constexpr const char *PCSetup = "typeof(#l) == ^Sym";
  static void seed(whilelang::WhileSMem &M) {
    M.setProp(Expr::lit(Value::symV("$a")), InternedString::get("p"),
              Expr::intE(1));
    M.setProp(Expr::lit(Value::symV("$b")), InternedString::get("p"),
              Expr::intE(2));
  }
  static InternedString action() { return whilelang::actLookup(); }
  static Expr arg() {
    return Expr::list({Expr::lvar("#l"), Expr::strE("p")});
  }
  static constexpr size_t MinBranches = 2;
};

template <> struct ModelTraits<mjs::MjsSMem> {
  static constexpr const char *Name = "Mjs";
  static constexpr const char *PCSetup = "typeof(#l) == ^Sym";
  static void seed(mjs::MjsSMem &M) {
    M.setProp(Expr::lit(Value::symV("$a")), Expr::strE("p"), Expr::intE(1));
    M.setProp(Expr::lit(Value::symV("$b")), Expr::strE("p"), Expr::intE(2));
  }
  static InternedString action() { return mjs::actGetProp(); }
  static Expr arg() {
    return Expr::list({Expr::lvar("#l"), Expr::strE("p")});
  }
  static constexpr size_t MinBranches = 2;
};

template <> struct ModelTraits<mc::McSMem> {
  static constexpr const char *Name = "Mc";
  static constexpr const char *PCSetup = "typeof(#l) == ^Sym";
  static void seed(mc::McSMem &M) {
    mc::SBlock A;
    A.Size = 8;
    M.putBlock(Expr::lit(Value::symV("$a")), std::move(A));
    mc::SBlock B;
    B.Size = 8;
    M.putBlock(Expr::lit(Value::symV("$b")), std::move(B));
  }
  static InternedString action() { return mc::actFree(); }
  static Expr arg() {
    return Expr::list({Expr::list({Expr::lvar("#l"), Expr::intE(0)})});
  }
  static constexpr size_t MinBranches = 2;
};

template <> struct ModelTraits<linear::LinearSMem> {
  static constexpr const char *Name = "Linear";
  static constexpr const char *PCSetup = "typeof(#i) == ^Int";
  static void seed(linear::LinearSMem &M) {
    M.setSize(8);
    M.setCell(Expr::intE(1), Expr::intE(10));
    M.setCell(Expr::intE(2), Expr::intE(20));
  }
  static InternedString action() { return linear::actLoad(); }
  static Expr arg() { return Expr::list({Expr::lvar("#i")}); }
  static constexpr size_t MinBranches = 2;
};

using KitPMap = memlib::PMap<>::Symbolic;
template <> struct ModelTraits<KitPMap> {
  static constexpr const char *Name = "KitPMap";
  static constexpr const char *PCSetup = "typeof(#l) == ^Sym";
  static void seed(KitPMap &M) {
    M.set(Expr::lit(Value::symV("$a")),
          memlib::ExprCell::Symbolic(Expr::intE(1)));
    M.set(Expr::lit(Value::symV("$b")),
          memlib::ExprCell::Symbolic(Expr::intE(2)));
  }
  static InternedString action() { return memlib::actMapGet(); }
  static Expr arg() { return Expr::list({Expr::lvar("#l")}); }
  static constexpr size_t MinBranches = 2;
};

using KitProduct =
    memlib::Product<memlib::PMap<>, memlib::ExprCell>::Symbolic;
template <> struct ModelTraits<KitProduct> {
  static constexpr const char *Name = "KitProduct";
  static constexpr const char *PCSetup = "typeof(#l) == ^Sym";
  static void seed(KitProduct &M) {
    M.first().set(Expr::lit(Value::symV("$a")),
                  memlib::ExprCell::Symbolic(Expr::intE(1)));
    M.first().set(Expr::lit(Value::symV("$b")),
                  memlib::ExprCell::Symbolic(Expr::intE(2)));
  }
  static InternedString action() { return memlib::actMapGet(); }
  static Expr arg() { return Expr::list({Expr::lvar("#l")}); }
  static constexpr size_t MinBranches = 2;
};

template <typename M> class RestrictionTest : public ::testing::Test {
protected:
  using St = SymbolicState<M>;

  static St stateWithPC(std::initializer_list<const char *> Conjuncts) {
    St S(M(), solver(), &Opts);
    for (const char *C : Conjuncts) {
      Result<Expr> E = parseGilExpr(C);
      EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
      S.addToPathCondition(*E);
    }
    return S;
  }

  static bool pcEqual(const St &A, const St &B) {
    return A.refines(B) && B.refines(A);
  }
};

struct ModelNames {
  template <typename T> static std::string GetName(int) {
    return ModelTraits<T>::Name;
  }
};

using AllModels =
    ::testing::Types<whilelang::WhileSMem, mjs::MjsSMem, mc::McSMem,
                     linear::LinearSMem, KitPMap, KitProduct>;
TYPED_TEST_SUITE(RestrictionTest, AllModels, ModelNames);

} // namespace

TYPED_TEST(RestrictionTest, Idempotence) {
  // x |x = x (Def 3.1).
  auto X = this->stateWithPC({"typeof(#a) == ^Int", "0 <= #a"});
  auto XX = X;
  XX.restrictWith(X);
  EXPECT_TRUE(this->pcEqual(XX, X));
}

TYPED_TEST(RestrictionTest, RightCommutativity) {
  // (x |y) |z = (x |z) |y.
  auto X = this->stateWithPC({"typeof(#a) == ^Int"});
  auto Y = this->stateWithPC({"0 <= #a"});
  auto Z = this->stateWithPC({"#a <= 10"});
  auto A = X, B = X;
  A.restrictWith(Y);
  A.restrictWith(Z);
  B.restrictWith(Z);
  B.restrictWith(Y);
  EXPECT_TRUE(this->pcEqual(A, B));
}

TYPED_TEST(RestrictionTest, Weakening) {
  // x |y |z = x  =>  x |y = x and x |z = x.
  auto Y = this->stateWithPC({"0 <= #a"});
  auto Z = this->stateWithPC({"#a <= 10"});
  auto X = this->stateWithPC({"0 <= #a", "#a <= 10", "typeof(#a) == ^Int"});
  auto XYZ = X;
  XYZ.restrictWith(Y);
  XYZ.restrictWith(Z);
  ASSERT_TRUE(this->pcEqual(XYZ, X)) << "precondition of the axiom";
  auto XY = X;
  XY.restrictWith(Y);
  EXPECT_TRUE(this->pcEqual(XY, X));
  auto XZ = X;
  XZ.restrictWith(Z);
  EXPECT_TRUE(this->pcEqual(XZ, X));
}

TYPED_TEST(RestrictionTest, InducedPreorder) {
  // x2 ⊑ x1 iff x2 |x1 = x2: stronger states refine weaker ones.
  auto Weak = this->stateWithPC({"typeof(#a) == ^Int"});
  auto Strong = this->stateWithPC({"typeof(#a) == ^Int", "5 <= #a"});
  EXPECT_TRUE(Strong.refines(Weak));
  EXPECT_FALSE(Weak.refines(Strong));
  auto SW = Strong;
  SW.restrictWith(Weak);
  EXPECT_TRUE(this->pcEqual(SW, Strong))
      << "restricting by weaker adds nothing";
}

TYPED_TEST(RestrictionTest, CompatRestrictionIncreasesPrecision) {
  // ⇃-≤ compat (Def 3.4): x1 ⇃x2 describes no more models than x1. We
  // check the model-theoretic statement directly: every verified model of
  // the restricted PC satisfies the original PC.
  auto X1 = this->stateWithPC({"typeof(#a) == ^Int", "0 <= #a"});
  auto X2 = this->stateWithPC({"#a <= 3"});
  auto R = X1;
  R.restrictWith(X2);
  std::optional<Model> M = solver()->verifiedModel(R.pathCondition());
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->satisfies(X1.pathCondition()));
  EXPECT_TRUE(M->satisfies(X2.pathCondition()));
}

TYPED_TEST(RestrictionTest, MonotoneUnderAssume) {
  // Def 3.2: action execution only refines states (σ' ⊑ σ). assume is the
  // A_proper action that grows the PC.
  auto S = this->stateWithPC({"typeof(#a) == ^Int"});
  auto Next = S.assumeValue(parseGilExpr("3 <= #a").take());
  ASSERT_TRUE(Next.ok());
  ASSERT_TRUE(Next->has_value());
  EXPECT_TRUE((*Next)->refines(S));
  EXPECT_FALSE(S.refines(**Next));
}

TYPED_TEST(RestrictionTest, MonotoneUnderMemoryActions) {
  // A branching memory action strengthens each branch with its condition
  // — for every model, concrete or combinator-built: the seeded memory
  // holds two entries the queried variable may alias, so the action runs
  // the alias loop and splits.
  using Traits = ModelTraits<TypeParam>;
  auto S = this->stateWithPC({Traits::PCSetup});
  Traits::seed(S.memory());
  auto Branches = S.execAction(Traits::action(), Traits::arg());
  ASSERT_TRUE(Branches.ok()) << (Branches.ok() ? "" : Branches.error());
  ASSERT_GE(Branches->size(), Traits::MinBranches);
  for (auto &B : *Branches)
    EXPECT_TRUE(B.State.refines(S))
        << "every action branch must refine its source state";
}

TYPED_TEST(RestrictionTest, AllocatorKnowledgeAccumulates) {
  // Restriction carries allocation knowledge (Def 3.3): restricting an
  // early state by a later one transfers the later allocation counters.
  auto Early = this->stateWithPC({});
  auto Late = Early;
  (void)Late.allocUSym(7);
  (void)Late.allocISym(7);
  ASSERT_TRUE(Late.refines(Early));
  auto Restricted = Early;
  Restricted.restrictWith(Late);
  EXPECT_TRUE(Restricted.allocator().record().refines(
      Late.allocator().record()));
}

TYPED_TEST(RestrictionTest, StrengtheningProperty) {
  // Strengthening (Def 3.4): restricting both sides of a refinement by
  // respectively stronger conditions preserves the refinement.
  auto X1 = this->stateWithPC({"typeof(#a) == ^Int"});
  auto X2 = this->stateWithPC({"typeof(#a) == ^Int", "0 <= #a"}); // X2 ≤ X1
  auto Y1 = this->stateWithPC({"#a <= 10"});
  auto Y2 = this->stateWithPC({"#a <= 10", "#a <= 5"}); // Y2 ⊑ Y1
  auto L = X2;
  L.restrictWith(Y2);
  auto R = X1;
  R.restrictWith(Y1);
  EXPECT_TRUE(L.refines(R));
}
