//===- obs/journal/analysis.cpp - Journal tree/why/diff analysis ----------===//

#include "obs/journal/analysis.h"

#include "obs/json_writer.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>

namespace gillian::obs::journal {

namespace {

EventKind kindOf(const Event &E) { return static_cast<EventKind>(E.Kind); }
VerdictLayer layerOf(const Event &E) {
  return static_cast<VerdictLayer>(E.C & 0x0f);
}
Verdict verdictOf(const Event &E) {
  return static_cast<Verdict>((E.C >> 4) & 0x0f);
}

std::string fmtMs(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3fms", static_cast<double>(Ns) / 1e6);
  return Buf;
}

std::string siteOf(const JournalData &D, const Event &E) {
  return D.str(E.Proc) + ":" + std::to_string(E.Cmd);
}

} // namespace

PathForest buildForest(const JournalData &D) {
  PathForest F;
  F.Data = &D;
  for (size_t I = 0; I < D.Events.size(); ++I) {
    const Event &E = D.Events[I];
    TreeNode &N = F.Nodes[E.Path];
    N.Id = E.Path;
    N.Events.push_back(I);
    switch (kindOf(E)) {
    case EventKind::Root:
      N.IsRoot = true;
      break;
    case EventKind::Branch:
      if (E.B && E.Aux) { // taken side of a multi-output step: a child
        TreeNode &C = F.Nodes[E.Aux];
        C.Id = E.Aux;
        C.Parent = E.Path;
        C.BranchIdx = E.A;
        C.EdgeEvent = I;
        N.Children.emplace_back(E.A, E.Aux);
      }
      break;
    default:
      break;
    }
  }
  for (auto &[Id, N] : F.Nodes) {
    std::sort(N.Events.begin(), N.Events.end(), [&](size_t L, size_t R) {
      return canonicalLess(D.Events[L], D.Events[R]);
    });
    std::sort(N.Children.begin(), N.Children.end());
    if (N.IsRoot)
      F.Roots.push_back(Id);
  }
  std::sort(F.Roots.begin(), F.Roots.end());
  std::map<std::string, uint32_t> Ordinals;
  for (uint64_t R : F.Roots) {
    const TreeNode &N = F.Nodes[R];
    std::string Proc;
    for (size_t I : N.Events)
      if (kindOf(D.Events[I]) == EventKind::Root)
        Proc = D.str(D.Events[I].Proc);
    F.RootLabels.push_back(Proc + "#" + std::to_string(Ordinals[Proc]++));
  }
  // Post-order rollups. Iterative stack: (id, children-done flag).
  for (uint64_t R : F.Roots) {
    std::vector<std::pair<uint64_t, bool>> Stack{{R, false}};
    while (!Stack.empty()) {
      auto &[Id, Done] = Stack.back();
      TreeNode &N = F.Nodes[Id];
      if (!Done) {
        Done = true;
        for (auto &[Idx, Child] : N.Children)
          Stack.push_back({Child, false});
        continue;
      }
      Stack.pop_back();
      N.SubtreeNodes = 1;
      for (size_t I : N.Events) {
        const Event &E = D.Events[I];
        if (kindOf(E) == EventKind::Branch) {
          N.SubtreeWallNs += E.WallNs;
          if (!E.B)
            ++N.SubtreePrunes;
        } else if (kindOf(E) == EventKind::PathEnd) {
          ++N.SubtreePaths;
        }
      }
      for (auto &[Idx, Child] : N.Children) {
        const TreeNode &C = F.Nodes[Child];
        N.SubtreeWallNs += C.SubtreeWallNs;
        N.SubtreePrunes += C.SubtreePrunes;
        N.SubtreePaths += C.SubtreePaths;
        N.SubtreeNodes += C.SubtreeNodes;
      }
    }
  }
  return F;
}

namespace {

std::string traceOf(const PathForest &F, uint64_t Id) {
  std::vector<uint32_t> Rev;
  const TreeNode *N = &F.Nodes.at(Id);
  while (N->Parent) {
    Rev.push_back(N->BranchIdx);
    N = &F.Nodes.at(N->Parent);
  }
  std::string Out;
  for (auto It = Rev.rbegin(); It != Rev.rend(); ++It) {
    if (!Out.empty())
      Out += '.';
    Out += std::to_string(*It);
  }
  return Out;
}

/// Renders one node line's notable events (prunes + terminations) for the
/// text tree.
void nodeNotesText(const JournalData &D, const TreeNode &N, std::string &Out,
                   const std::string &Indent) {
  for (size_t I : N.Events) {
    const Event &E = D.Events[I];
    if (kindOf(E) == EventKind::Branch && !E.B) {
      Out += Indent + "  pruned side " + std::to_string(E.A) + " at " +
             siteOf(D, E) + " " + verdictName(verdictOf(E)) + "(" +
             verdictLayerName(layerOf(E)) + ") " + fmtMs(E.WallNs) + "\n";
    } else if (kindOf(E) == EventKind::PathEnd) {
      Out += Indent + "  end: " + pathOutcomeName(E.A);
      if (E.B)
        Out += std::string(" [") + budgetKindName(static_cast<BudgetKind>(E.B)) +
               " budget]";
      Out += " at " + siteOf(D, E) + " (" + std::to_string(E.Step) +
             " steps)\n";
    }
  }
}

void treeNodeText(const JournalData &D, const PathForest &F,
                  const TreeNode &N, size_t Depth, size_t Level,
                  std::string &Out) {
  std::string Indent(2 * Level, ' ');
  if (Level > Depth) {
    Out += Indent + "... " + std::to_string(N.SubtreeNodes) + " nodes, " +
           std::to_string(N.SubtreePaths) + " paths, " +
           std::to_string(N.SubtreePrunes) + " prunes, solver " +
           fmtMs(N.SubtreeWallNs) + "\n";
    return;
  }
  if (N.EdgeEvent != SIZE_MAX) {
    const Event &E = D.Events[N.EdgeEvent];
    Out += Indent + "[" + std::to_string(N.BranchIdx) + "] " + siteOf(D, E) +
           " " + verdictName(verdictOf(E)) + "(" +
           verdictLayerName(layerOf(E)) + ") +" + std::to_string(E.X) +
           "pc " + fmtMs(E.WallNs) + " -> " +
           std::to_string(N.SubtreePaths) + " paths, " +
           std::to_string(N.SubtreePrunes) + " prunes, solver " +
           fmtMs(N.SubtreeWallNs) + "\n";
  }
  nodeNotesText(D, N, Out, Indent);
  for (auto &[Idx, Child] : N.Children)
    treeNodeText(D, F, F.Nodes.at(Child), Depth, Level + 1, Out);
}

void treeNodeJson(const JournalData &D, const PathForest &F,
                  const TreeNode &N, size_t Depth, size_t Level,
                  JsonWriter &W) {
  W.beginObject();
  W.field("id", N.Id);
  W.field("trace", traceOf(F, N.Id));
  if (N.EdgeEvent != SIZE_MAX) {
    const Event &E = D.Events[N.EdgeEvent];
    W.field("branch", static_cast<uint64_t>(N.BranchIdx));
    W.field("site", siteOf(D, E));
    W.field("verdict", verdictName(verdictOf(E)));
    W.field("layer", verdictLayerName(layerOf(E)));
    W.field("pc_delta", static_cast<uint64_t>(E.X));
    W.field("edge_wall_ns", E.WallNs);
  }
  W.field("paths", static_cast<uint64_t>(N.SubtreePaths));
  W.field("prunes", static_cast<uint64_t>(N.SubtreePrunes));
  W.field("nodes", static_cast<uint64_t>(N.SubtreeNodes));
  W.field("solver_wall_ns", N.SubtreeWallNs);
  for (size_t I : N.Events) {
    const Event &E = D.Events[I];
    if (kindOf(E) == EventKind::PathEnd) {
      W.field("end", pathOutcomeName(E.A));
      W.field("end_budget", budgetKindName(static_cast<BudgetKind>(E.B)));
      W.field("end_steps", static_cast<uint64_t>(E.Step));
    }
  }
  if (Level >= Depth && !N.Children.empty()) {
    W.field("collapsed", true);
  } else {
    W.key("children");
    W.beginArray();
    for (auto &[Idx, Child] : N.Children)
      treeNodeJson(D, F, F.Nodes.at(Child), Depth, Level + 1, W);
    W.endArray();
  }
  W.endObject();
}

} // namespace

std::string treeText(const JournalData &D, size_t Depth) {
  PathForest F = buildForest(D);
  std::string Out;
  for (size_t I = 0; I < F.Roots.size(); ++I) {
    const TreeNode &N = F.Nodes.at(F.Roots[I]);
    Out += F.RootLabels[I] + " (node " + std::to_string(N.Id) + "): " +
           std::to_string(N.SubtreePaths) + " paths, " +
           std::to_string(N.SubtreePrunes) + " prunes, " +
           std::to_string(N.SubtreeNodes) + " nodes, solver " +
           fmtMs(N.SubtreeWallNs) + "\n";
    nodeNotesText(D, N, Out, "");
    for (auto &[Idx, Child] : N.Children)
      treeNodeText(D, F, F.Nodes.at(Child), Depth, 1, Out);
  }
  if (Out.empty())
    Out = "(empty journal)\n";
  return Out;
}

std::string treeJson(const JournalData &D, size_t Depth, bool Enabled) {
  PathForest F = buildForest(D);
  JsonWriter W;
  W.beginObject();
  W.field("enabled", Enabled);
  W.field("events", D.Events.size());
  W.field("depth", Depth);
  W.key("roots");
  W.beginArray();
  for (size_t I = 0; I < F.Roots.size(); ++I) {
    const TreeNode &N = F.Nodes.at(F.Roots[I]);
    W.beginObject();
    W.field("label", F.RootLabels[I]);
    W.field("id", N.Id);
    W.field("paths", static_cast<uint64_t>(N.SubtreePaths));
    W.field("prunes", static_cast<uint64_t>(N.SubtreePrunes));
    W.field("nodes", static_cast<uint64_t>(N.SubtreeNodes));
    W.field("solver_wall_ns", N.SubtreeWallNs);
    if (Depth == 0 && !N.Children.empty()) {
      W.field("collapsed", true);
    } else {
      W.key("children");
      W.beginArray();
      for (auto &[Idx, Child] : N.Children)
        treeNodeJson(D, F, F.Nodes.at(Child), Depth, 1, W);
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string liveTreeJson(size_t Depth) {
  if (!enabled())
    return "{\"enabled\":false,\"events\":0,\"roots\":[]}";
  return treeJson(capture(), Depth, true);
}

//===----------------------------------------------------------------------===//
// why
//===----------------------------------------------------------------------===//

namespace {

std::string renderEvent(const JournalData &D, const Event &E) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "step %u  ", E.Step);
  std::string Out = Buf;
  switch (kindOf(E)) {
  case EventKind::Root:
    return "root of " + D.str(E.Proc);
  case EventKind::Branch:
    Out += siteOf(D, E) + "  side " + std::to_string(E.A) +
           (E.B ? "  taken  " : "  PRUNED ") + verdictName(verdictOf(E)) +
           "(" + verdictLayerName(layerOf(E)) + ")  +" +
           std::to_string(E.X) + " conjuncts  " + fmtMs(E.WallNs);
    if (E.Aux)
      Out += "  -> node " + std::to_string(E.Aux);
    return Out;
  case EventKind::Action:
    Out += siteOf(D, E) + "  action " + D.str(E.X) + "  " +
           std::to_string(E.A) + " branch(es)";
    if (E.B)
      Out += ", " + std::to_string(E.B) + " error(s)";
    return Out;
  case EventKind::Summary:
    return Out + siteOf(D, E) + "  summary replay (" +
           (E.A ? "hit" : "recorded") + ")";
  case EventKind::Spawn:
    return Out + siteOf(D, E) + "  spawned to frontier (priority " +
           std::to_string(E.Aux) + ")";
  case EventKind::PathEnd:
    Out += siteOf(D, E) + "  end " + pathOutcomeName(E.A);
    if (E.B)
      Out += std::string(" [") + budgetKindName(static_cast<BudgetKind>(E.B)) +
             " budget]";
    return Out;
  }
  return Out + "?";
}

bool resolveQuery(const PathForest &F, const std::string &Query,
                  uint64_t &NodeId, std::string &Err) {
  if (!Query.empty() &&
      std::all_of(Query.begin(), Query.end(),
                  [](unsigned char C) { return std::isdigit(C); })) {
    NodeId = std::strtoull(Query.c_str(), nullptr, 10);
    if (!F.Nodes.count(NodeId)) {
      Err = "no node " + Query + " in journal";
      return false;
    }
    return true;
  }
  // "<proc>[#k][:i.j.k]"
  std::string Label = Query, Trace;
  if (size_t Colon = Query.find(':'); Colon != std::string::npos) {
    Label = Query.substr(0, Colon);
    Trace = Query.substr(Colon + 1);
  }
  if (Label.find('#') == std::string::npos)
    Label += "#0";
  auto It = std::find(F.RootLabels.begin(), F.RootLabels.end(), Label);
  if (It == F.RootLabels.end()) {
    Err = "no root " + Label + " in journal (roots: ";
    for (size_t I = 0; I < F.RootLabels.size() && I < 8; ++I)
      Err += (I ? ", " : "") + F.RootLabels[I];
    Err += F.RootLabels.size() > 8 ? ", ...)" : ")";
    return false;
  }
  uint64_t Cur = F.Roots[static_cast<size_t>(It - F.RootLabels.begin())];
  size_t I = 0;
  while (I < Trace.size()) {
    size_t Dot = Trace.find('.', I);
    if (Dot == std::string::npos)
      Dot = Trace.size();
    uint32_t Idx =
        static_cast<uint32_t>(std::strtoul(Trace.substr(I, Dot - I).c_str(),
                                           nullptr, 10));
    const TreeNode &N = F.Nodes.at(Cur);
    auto Child = std::find_if(N.Children.begin(), N.Children.end(),
                              [&](auto &P) { return P.first == Idx; });
    if (Child == N.Children.end()) {
      Err = "node " + std::to_string(Cur) + " has no child with branch index " +
            std::to_string(Idx);
      return false;
    }
    Cur = Child->second;
    I = Dot + 1;
  }
  NodeId = Cur;
  return true;
}

} // namespace

bool whyText(const JournalData &D, const std::string &Query,
             std::string &Out) {
  PathForest F = buildForest(D);
  uint64_t NodeId = 0;
  std::string Err;
  if (!resolveQuery(F, Query, NodeId, Err)) {
    Out = Err + "\n";
    return false;
  }
  std::vector<uint64_t> Chain;
  for (uint64_t Cur = NodeId; Cur; Cur = F.Nodes.at(Cur).Parent) {
    Chain.push_back(Cur);
    if (F.Nodes.at(Cur).IsRoot)
      break;
  }
  std::reverse(Chain.begin(), Chain.end());
  uint64_t Root = Chain.front();
  auto RootIt = std::find(F.Roots.begin(), F.Roots.end(), Root);
  std::string Label = RootIt != F.Roots.end()
                          ? F.RootLabels[static_cast<size_t>(
                                RootIt - F.Roots.begin())]
                          : "(detached)";
  std::string Trace = traceOf(F, NodeId);
  Out = "path " + Label + (Trace.empty() ? "" : ":" + Trace) + " (node " +
        std::to_string(NodeId) + ")\n";
  for (uint64_t Id : Chain) {
    const TreeNode &N = F.Nodes.at(Id);
    if (Id != NodeId && !N.Children.empty())
      Out += "node " + std::to_string(Id) + " (trace " +
             (traceOf(F, Id).empty() ? "-" : traceOf(F, Id)) + ")\n";
    for (size_t I : N.Events) {
      const Event &E = D.Events[I];
      // On interior nodes only show the decisions up to the taken edge;
      // on the queried node show everything.
      Out += "  " + renderEvent(D, E) + "\n";
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t NLayers = 8;

struct SiteProfile {
  uint64_t LayerCount[NLayers] = {};
  uint64_t WallNs = 0;
  uint64_t Queries = 0;
};

struct RunProfile {
  /// node label ("root#k/trace") -> set of (site, side, taken)
  std::map<std::string, std::map<std::pair<std::string, uint32_t>, bool>>
      Branches;
  std::map<std::string, SiteProfile> Sites;
  size_t Paths = 0;
  size_t Events = 0;
};

RunProfile profile(const JournalData &D) {
  RunProfile P;
  P.Events = D.Events.size();
  PathForest F = buildForest(D);
  std::unordered_map<uint64_t, std::string> RootLabel;
  for (size_t I = 0; I < F.Roots.size(); ++I)
    RootLabel[F.Roots[I]] = F.RootLabels[I];
  for (auto &[Id, N] : F.Nodes) {
    uint64_t Root = Id;
    while (F.Nodes.at(Root).Parent && !F.Nodes.at(Root).IsRoot)
      Root = F.Nodes.at(Root).Parent;
    auto RL = RootLabel.find(Root);
    std::string Key = (RL != RootLabel.end() ? RL->second : "(detached)") +
                      "/" + traceOf(F, Id);
    auto &NodeBranches = P.Branches[Key];
    for (size_t I : N.Events) {
      const Event &E = D.Events[I];
      if (kindOf(E) == EventKind::Branch) {
        NodeBranches[{siteOf(D, E), E.A}] = E.B != 0;
        if (layerOf(E) != VerdictLayer::None) {
          SiteProfile &S = P.Sites[siteOf(D, E)];
          ++S.LayerCount[static_cast<size_t>(layerOf(E))];
          S.WallNs += E.WallNs;
          ++S.Queries;
        }
      } else if (kindOf(E) == EventKind::PathEnd) {
        ++P.Paths;
      }
    }
  }
  return P;
}

struct SiteDelta {
  std::string Site;
  SiteProfile A, B;
  int64_t WallDelta = 0;
  bool LayerShift = false;
};

size_t dominantLayer(const SiteProfile &S) {
  size_t Best = 0;
  for (size_t L = 1; L < NLayers; ++L)
    if (S.LayerCount[L] > S.LayerCount[Best])
      Best = L;
  return Best;
}

std::vector<SiteDelta> siteDeltas(const RunProfile &PA,
                                  const RunProfile &PB) {
  std::set<std::string> Sites;
  for (auto &[S, _] : PA.Sites)
    Sites.insert(S);
  for (auto &[S, _] : PB.Sites)
    Sites.insert(S);
  std::vector<SiteDelta> Out;
  for (const std::string &S : Sites) {
    SiteDelta SD;
    SD.Site = S;
    if (auto It = PA.Sites.find(S); It != PA.Sites.end())
      SD.A = It->second;
    if (auto It = PB.Sites.find(S); It != PB.Sites.end())
      SD.B = It->second;
    SD.WallDelta = static_cast<int64_t>(SD.B.WallNs) -
                   static_cast<int64_t>(SD.A.WallNs);
    // Any change in the per-layer decision histogram counts as a shift —
    // a site sliding from native to Z3 on some (not all) queries is
    // exactly what the diff exists to surface.
    SD.LayerShift = (SD.A.Queries > 0 || SD.B.Queries > 0) &&
                    !std::equal(std::begin(SD.A.LayerCount),
                                std::end(SD.A.LayerCount),
                                std::begin(SD.B.LayerCount));
    Out.push_back(std::move(SD));
  }
  std::sort(Out.begin(), Out.end(), [](const SiteDelta &L, const SiteDelta &R) {
    return std::llabs(L.WallDelta) > std::llabs(R.WallDelta);
  });
  return Out;
}

struct PruneDiff {
  std::vector<std::string> OnlyA, OnlyB, Diverging;
};

PruneDiff pruneDiff(const RunProfile &PA, const RunProfile &PB) {
  PruneDiff PD;
  for (auto &[Key, BA] : PA.Branches) {
    auto It = PB.Branches.find(Key);
    if (It == PB.Branches.end()) {
      PD.OnlyA.push_back(Key);
      continue;
    }
    for (auto &[SiteSide, TakenA] : BA) {
      auto BIt = It->second.find(SiteSide);
      if (BIt != It->second.end() && BIt->second != TakenA)
        PD.Diverging.push_back(Key + " at " + SiteSide.first + " side " +
                               std::to_string(SiteSide.second) + " (" +
                               (TakenA ? "taken" : "pruned") + " -> " +
                               (BIt->second ? "taken" : "pruned") + ")");
    }
  }
  for (auto &[Key, _] : PB.Branches)
    if (!PA.Branches.count(Key))
      PD.OnlyB.push_back(Key);
  return PD;
}

std::string layerHistogram(const SiteProfile &S) {
  std::string Out;
  for (size_t L = 0; L < NLayers; ++L)
    if (S.LayerCount[L]) {
      if (!Out.empty())
        Out += " ";
      Out += std::string(
                 verdictLayerName(static_cast<VerdictLayer>(L))) +
             ":" + std::to_string(S.LayerCount[L]);
    }
  return Out.empty() ? "-" : Out;
}

} // namespace

std::string diffText(const JournalData &A, const JournalData &B, size_t Top) {
  RunProfile PA = profile(A), PB = profile(B);
  PruneDiff PD = pruneDiff(PA, PB);
  std::vector<SiteDelta> SD = siteDeltas(PA, PB);
  std::string Out;
  Out += "journal A: " + std::to_string(PA.Events) + " events, " +
         std::to_string(PA.Paths) + " paths; journal B: " +
         std::to_string(PB.Events) + " events, " + std::to_string(PB.Paths) +
         " paths\n";
  Out += "paths only in A: " + std::to_string(PD.OnlyA.size()) +
         ", only in B: " + std::to_string(PD.OnlyB.size()) +
         ", diverging prunes: " + std::to_string(PD.Diverging.size()) + "\n";
  auto List = [&](const char *Title, const std::vector<std::string> &V) {
    if (V.empty())
      return;
    Out += std::string(Title) + ":\n";
    for (size_t I = 0; I < V.size() && I < Top; ++I)
      Out += "  " + V[I] + "\n";
    if (V.size() > Top)
      Out += "  ... (" + std::to_string(V.size() - Top) + " more)\n";
  };
  List("diverging prunes", PD.Diverging);
  List("paths only in A", PD.OnlyA);
  List("paths only in B", PD.OnlyB);
  Out += "\nverdict-layer shifts (per decision site):\n";
  size_t Shown = 0;
  for (const SiteDelta &S : SD) {
    if (!S.LayerShift || Shown >= Top)
      continue;
    ++Shown;
    Out += "  " + S.Site + "  [" + layerHistogram(S.A) + "] -> [" +
           layerHistogram(S.B) + "]  wall " + fmtMs(S.A.WallNs) + " -> " +
           fmtMs(S.B.WallNs) + "\n";
  }
  if (!Shown)
    Out += "  (none)\n";
  Out += "\ntop per-site solver-wall deltas:\n";
  Shown = 0;
  for (const SiteDelta &S : SD) {
    if (S.WallDelta == 0 || Shown >= Top)
      continue;
    ++Shown;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%+.3fms",
                  static_cast<double>(S.WallDelta) / 1e6);
    Out += "  " + S.Site + "  " + Buf + "  (A " + fmtMs(S.A.WallNs) + " in " +
           std::to_string(S.A.Queries) + "q, B " + fmtMs(S.B.WallNs) +
           " in " + std::to_string(S.B.Queries) + "q)\n";
  }
  if (!Shown)
    Out += "  (none)\n";
  return Out;
}

std::string diffJson(const JournalData &A, const JournalData &B, size_t Top) {
  RunProfile PA = profile(A), PB = profile(B);
  PruneDiff PD = pruneDiff(PA, PB);
  std::vector<SiteDelta> SD = siteDeltas(PA, PB);
  JsonWriter W;
  W.beginObject();
  W.field("events_a", PA.Events);
  W.field("events_b", PB.Events);
  W.field("paths_a", PA.Paths);
  W.field("paths_b", PB.Paths);
  W.field("paths_only_a", PD.OnlyA.size());
  W.field("paths_only_b", PD.OnlyB.size());
  W.field("diverging_prunes", PD.Diverging.size());
  W.key("layer_shifts");
  W.beginArray();
  size_t Shown = 0;
  for (const SiteDelta &S : SD) {
    if (!S.LayerShift || Shown >= Top)
      continue;
    ++Shown;
    W.beginObject();
    W.field("site", S.Site);
    W.field("dominant_a",
            verdictLayerName(static_cast<VerdictLayer>(dominantLayer(S.A))));
    W.field("dominant_b",
            verdictLayerName(static_cast<VerdictLayer>(dominantLayer(S.B))));
    W.field("queries_a", S.A.Queries);
    W.field("queries_b", S.B.Queries);
    W.field("wall_ns_a", S.A.WallNs);
    W.field("wall_ns_b", S.B.WallNs);
    W.endObject();
  }
  W.endArray();
  W.key("wall_deltas");
  W.beginArray();
  Shown = 0;
  for (const SiteDelta &S : SD) {
    if (S.WallDelta == 0 || Shown >= Top)
      continue;
    ++Shown;
    W.beginObject();
    W.field("site", S.Site);
    W.field("wall_delta_ns", static_cast<int64_t>(S.WallDelta));
    W.field("wall_ns_a", S.A.WallNs);
    W.field("wall_ns_b", S.B.WallNs);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// canonical signature
//===----------------------------------------------------------------------===//

std::string canonicalTreeSignature(const JournalData &D) {
  PathForest F = buildForest(D);
  std::string Out;
  std::function<void(const TreeNode &)> Walk = [&](const TreeNode &N) {
    for (size_t I : N.Events) {
      const Event &E = D.Events[I];
      switch (kindOf(E)) {
      case EventKind::Root:
        Out += "R " + D.str(E.Proc) + "\n";
        break;
      case EventKind::Branch:
        // Semantic content only: the run-dependent provenance (verdict,
        // layer, wall, child ids) is excluded by design.
        Out += "B " + std::to_string(E.Step) + " " + siteOf(D, E) + " s" +
               std::to_string(E.A) + (E.B ? " taken" : " pruned") + " +" +
               std::to_string(E.X) + "\n";
        break;
      case EventKind::Action:
        Out += "A " + std::to_string(E.Step) + " " + siteOf(D, E) + " " +
               D.str(E.X) + " n" + std::to_string(E.A) + " e" +
               std::to_string(E.B) + "\n";
        break;
      case EventKind::Summary:
        // Hit/miss is a shared-store race at workers > 1; presence is the
        // invariant.
        Out += "S " + std::to_string(E.Step) + " " + siteOf(D, E) + "\n";
        break;
      case EventKind::Spawn:
        break; // frontier membership is strategy-dependent
      case EventKind::PathEnd:
        Out += "E " + std::to_string(E.Step) + " " +
               pathOutcomeName(E.A) + " " +
               budgetKindName(static_cast<BudgetKind>(E.B)) + "\n";
        break;
      }
    }
    for (auto &[Idx, Child] : N.Children) {
      Out += "(" + std::to_string(Idx) + "\n";
      Walk(F.Nodes.at(Child));
      Out += ")\n";
    }
  };
  for (uint64_t R : F.Roots)
    Walk(F.Nodes.at(R));
  return Out;
}

} // namespace gillian::obs::journal
