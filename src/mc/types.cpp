//===- mc/types.cpp -------------------------------------------------------===//

#include "mc/types.h"

using namespace gillian;
using namespace gillian::mc;

std::string McType::toString() const {
  if (IsStruct)
    return std::string(StructName.str());
  switch (Kind) {
  case ScalarKind::I8: return "i8";
  case ScalarKind::I32: return "i32";
  case ScalarKind::I64: return "i64";
  case ScalarKind::F64: return "f64";
  case ScalarKind::Ptr:
    return Pointee ? "ptr<" + Pointee->toString() + ">" : "ptr";
  }
  return "<bad-type>";
}

Result<int64_t> LayoutTable::sizeOf(const McType &T) const {
  if (!T.isStruct())
    return scalarSize(T.scalarKind());
  const StructLayout *L = find(T.structName());
  if (!L)
    return Err("unknown struct '" + std::string(T.structName().str()) + "'");
  return L->Size;
}

Result<int64_t> LayoutTable::alignOf(const McType &T) const {
  if (!T.isStruct())
    return scalarAlign(T.scalarKind());
  const StructLayout *L = find(T.structName());
  if (!L)
    return Err("unknown struct '" + std::string(T.structName().str()) + "'");
  return L->Align;
}

Result<bool> LayoutTable::add(
    InternedString Name,
    const std::vector<std::pair<InternedString, McType>> &Fs) {
  StructLayout L;
  L.Name = Name;
  int64_t Off = 0, MaxAlign = 1;
  for (const auto &[FName, FType] : Fs) {
    Result<int64_t> Sz = sizeOf(FType);
    Result<int64_t> Al = alignOf(FType);
    if (!Sz)
      return Err("struct " + std::string(Name.str()) + ", field " +
                 std::string(FName.str()) + ": " + Sz.error());
    if (!Al)
      return Err(Al.error());
    Off = (Off + *Al - 1) / *Al * *Al; // align up
    L.Fields.push_back({FName, FType, Off});
    Off += *Sz;
    MaxAlign = std::max(MaxAlign, *Al);
  }
  L.Align = MaxAlign;
  L.Size = (Off + MaxAlign - 1) / MaxAlign * MaxAlign;
  if (L.Size == 0)
    L.Size = MaxAlign; // empty structs still occupy space
  Layouts[Name] = std::move(L);
  return true;
}
