//===- solver/solver.cpp --------------------------------------------------===//

#include "solver/solver.h"

#include "gil/parser.h"
#include "obs/journal/journal.h"
#include "obs/native_stats.h"
#include "obs/progress.h"
#include "obs/summary_stats.h"
#include "obs/query_profile.h"
#include "obs/span.h"
#include "solver/incremental_session.h"
#include "solver/native/native_session.h"
#include "solver/native/query_service.h"
#include "solver/simplifier.h"
#include "solver/z3_backend.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>
#include <vector>

using namespace gillian;
using obs::Span;
using obs::SpanKind;

std::string gillian::solverStatsJson(const SolverStats &S) {
  // Registry-driven: every counter of SolverStats emits itself via the
  // schema walk; only the derived rates are named here.
  obs::JsonWriter W;
  W.beginObject();
  S.countersInto(W);
  W.field("cache_hit_rate", S.cacheHitRate(), 4);
  W.field("inc_session_hit_rate", S.sessionHitRate(), 4);
  W.field("inc_mean_prefix_depth", S.meanPrefixDepth(), 2);
  // The hot-query profiler is process-global (attribution spans every
  // Solver instance of the run); its top sites ride along on every stats
  // emission so a bench JSON line answers "which GIL site burnt the Z3
  // budget" without a second tool.
  obs::QueryProfiler &QP = obs::QueryProfiler::instance();
  W.key("hot_queries");
  QP.jsonInto(W, 8);
  W.field("query_attributed_ns", QP.attributedNs());
  W.field("query_unattributed_ns", QP.unattributedNs());
  // The procedure summary cache is likewise process-global (one sharded
  // store across every engine run); its counters ride along so bench
  // JSON answers "did summaries engage" next to the solver layers they
  // bypass.
  const obs::SummaryGlobalStats &Sum = obs::summaryGlobalStats();
  W.field("summary_hits", Sum.Hits.load());
  W.field("summary_misses", Sum.Misses.load());
  W.field("summary_ineligible", Sum.Ineligible.load());
  W.field("summary_replayed_outcomes", Sum.ReplayedOutcomes.load());
  W.field("summary_record_overflows", Sum.RecordOverflows.load());
  W.field("summary_replay_infeasible", Sum.ReplayInfeasible.load());
  W.field("summary_entries", Sum.Entries.load());
  W.field("summary_bytes", Sum.Bytes.load());
  W.field("summary_hit_rate", Sum.hitRate(), 4);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Auxiliary cache-reset hooks
//===----------------------------------------------------------------------===//

namespace {
std::mutex ResetHooksMutex;
std::vector<void (*)()> ResetHooks;
} // namespace

void gillian::registerCacheResetHook(void (*Hook)()) {
  std::lock_guard<std::mutex> Lock(ResetHooksMutex);
  ResetHooks.push_back(Hook);
}

SatResult Solver::solveLayers(const PathCondition &PC) {
  SatResult R = SatResult::Unknown;
  if (Opts.UseSyntactic) {
    Span T(SpanKind::Syntactic, &Stats.SyntacticNs);
    R = checkSatSyntactic(PC);
    if (R == SatResult::Unsat) {
      ++Stats.SyntacticUnsat;
      obs::journal::noteLayer(obs::journal::VerdictLayer::Syntactic);
    }
    // SAT certification without SMT: propose a candidate model from the
    // syntactic analysis and verify it by evaluating every conjunct —
    // sound by construction, and it short-circuits the Z3 round-trip on
    // the common simple path conditions symbolic execution produces.
    if (R == SatResult::Unknown) {
      if (std::optional<Model> M = proposeModelSyntactic(PC)) {
        ++Stats.ModelsProposed;
        if (M->satisfies(PC)) {
          ++Stats.ModelsVerified;
          ++Stats.SyntacticSat;
          R = SatResult::Sat;
          obs::journal::noteLayer(obs::journal::VerdictLayer::Syntactic);
        }
      }
    }
  }
  if (R == SatResult::Unknown &&
      (Opts.UseNative || (Opts.UseZ3 && z3Available()))) {
    // Type inference is shared by the native layer (model construction)
    // and the Z3 backends (sort assignment); a type conflict among the
    // conjuncts is Unsat without consulting either.
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types)) {
      R = SatResult::Unsat;
      obs::journal::noteLayer(obs::journal::VerdictLayer::Syntactic);
    } else {
      if (Opts.UseNative) {
        // The native theory layer: decides the boolean/equality/
        // disequality skeleton in-process, answers Unknown on anything
        // arithmetic so the SMT layers below stay the authority there.
        Span T(SpanKind::NativeSolve, &Stats.NativeNs);
        obs::NativeGlobalStats &G = obs::nativeGlobalStats();
        ++Stats.NativeQueries;
        ++G.NativeQueries;
        R = native::NativeSessionPool::forThread().checkSat(PC, Types,
                                                            Stats);
        switch (R) {
        case SatResult::Sat:
          ++Stats.NativeSat;
          ++G.NativeSat;
          obs::journal::noteLayer(obs::journal::VerdictLayer::Native);
          break;
        case SatResult::Unsat:
          ++Stats.NativeUnsat;
          ++G.NativeUnsat;
          obs::journal::noteLayer(obs::journal::VerdictLayer::Native);
          break;
        case SatResult::Unknown:
          ++Stats.NativeFallbacks;
          ++G.NativeFallbacks;
          break;
        }
      }
      if (R == SatResult::Unknown && Opts.UseZ3 && z3Available()) {
        Span T(Opts.UseIncremental ? SpanKind::IncExtend : SpanKind::ColdZ3,
               &Stats.Z3Ns);
        ++Stats.Z3Calls;
        if (Opts.UseIncremental) {
          // Layer 2: the thread's incremental session pool pushes only the
          // delta against an already-asserted path-condition prefix.
          R = IncrementalSessionPool::forThread().checkSat(
              PC, Types, Opts.IncrementalResetThreshold, Stats);
          if (R != SatResult::Unknown)
            obs::journal::noteLayer(
                obs::journal::VerdictLayer::Incremental);
        } else {
          R = checkSatZ3(PC, Types, /*WantModel=*/false).Verdict;
          if (R != SatResult::Unknown)
            obs::journal::noteLayer(obs::journal::VerdictLayer::Z3);
        }
      }
    }
  }
  return R;
}

void Solver::resetCache() {
  // Quiesce the async service first: an in-flight solve still touches the
  // caches and sessions being cleared below, and its verdict would be a
  // warm answer leaking into a "cold" measurement.
  native::SolverService::process().flush();
  Cache->clear();
  // Cold also means the upstream simplifier memo and every thread's
  // incremental sessions + encoding memos; other threads' sessions drop
  // lazily (Z3 handles are thread-owned), this thread's immediately.
  resetSimplifyCache();
  IncrementalSessionPool::invalidateAll();
  IncrementalSessionPool::forThread().reset();
  // The native layer's clause stores and equality cores are memoised
  // state of the same kind: invalidate every thread's sessions (lazy
  // drop) and this thread's eagerly.
  native::NativeSessionPool::invalidateAll();
  native::NativeSessionPool::forThread().reset();
  // Upper-layer memoisation stores (the engine's procedure summary
  // store) register themselves here, so "cold" is cold for the whole
  // stack, not just the solver's own layers.
  std::vector<void (*)()> Hooks;
  {
    std::lock_guard<std::mutex> Lock(ResetHooksMutex);
    Hooks = ResetHooks;
  }
  for (void (*Hook)() : Hooks)
    Hook();
}

SatResult Solver::solveSlice(const PathCondition &Slice) {
  if (Opts.UseCache) {
    Span T(SpanKind::CacheLookup);
    ++Stats.SliceCacheLookups;
    if (std::optional<SatResult> Hit = Cache->lookup(Slice)) {
      ++Stats.SliceCacheHits;
      obs::journal::noteLayer(obs::journal::VerdictLayer::Cache);
      return *Hit;
    }
  }
  SatResult R = solveLayers(Slice);
  if (Opts.UseCache)
    Cache->insert(Slice, R); // insert() drops Unknown
  return R;
}

SatResult Solver::checkSatSliced(const PathCondition &PC) {
  std::vector<std::vector<Expr>> Groups;
  {
    Span T(SpanKind::Slice, &Stats.SliceNs);
    Groups = sliceConjunctsByVars(PC);
  }
  if (Groups.size() <= 1)
    return solveLayers(PC); // one component: slicing buys nothing
  ++Stats.SlicedQueries;
  Stats.Slices += Groups.size();

  std::vector<PathCondition> Slices;
  {
    Span T(SpanKind::Canon, &Stats.CanonNs);
    Slices.reserve(Groups.size());
    for (std::vector<Expr> &G : Groups)
      Slices.push_back(PathCondition::fromSortedConjuncts(std::move(G)));
  }

  // Slices are variable-disjoint: any Unsat slice refutes the whole
  // condition, and the condition is Sat only when every slice is.
  bool AllSat = true;
  for (const PathCondition &S : Slices) {
    SatResult R = solveSlice(S);
    if (R == SatResult::Unsat)
      return SatResult::Unsat;
    if (R != SatResult::Sat)
      AllSat = false;
  }
  return AllSat ? SatResult::Sat : SatResult::Unknown;
}

namespace {
obs::QueryVerdict toVerdict(SatResult R) {
  switch (R) {
  case SatResult::Sat: return obs::QueryVerdict::Sat;
  case SatResult::Unsat: return obs::QueryVerdict::Unsat;
  case SatResult::Unknown: break;
  }
  return obs::QueryVerdict::Unknown;
}
} // namespace

SatResult Solver::checkSat(const PathCondition &PC) {
  auto T0 = std::chrono::steady_clock::now();
  // Session resets are read from the shared stats; under the parallel
  // scheduler a concurrent worker's reset can leak into this query's
  // delta — acceptable for a profiler (resets are rare and the wall time,
  // the ranking key, is exact).
  uint64_t ResetsBefore = Stats.IncResets.load();
  obs::journal::QueryAttribution &QA = obs::journal::queryAttribution();
  QA.Layer = static_cast<uint8_t>(obs::journal::VerdictLayer::None);
  bool CacheHit = false;
  SatResult R = checkSatImpl(PC, CacheHit);
  ++obs::progressCounters().SolverQueries;
  uint64_t WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  // Publish the journal's per-thread attribution: one decided query with
  // the last-noted layer as its provenance.
  ++QA.Seq;
  QA.CumWallNs += WallNs;
  QA.Verdict = static_cast<uint8_t>(
      R == SatResult::Sat ? obs::journal::Verdict::Sat
      : R == SatResult::Unsat ? obs::journal::Verdict::Unsat
                              : obs::journal::Verdict::Unknown);
  obs::QueryProfiler::instance().record(WallNs, toVerdict(R), CacheHit,
                                        Stats.IncResets.load() -
                                            ResetsBefore);
  return R;
}

SatResult Solver::checkSatImpl(const PathCondition &PC, bool &CacheHit) {
  Span Total(SpanKind::Solver, &Stats.TotalNs);
  ++Stats.Queries;
  if (PC.isTriviallyFalse()) {
    ++Stats.TrivialAnswers;
    ++Stats.Unsat;
    obs::journal::noteLayer(obs::journal::VerdictLayer::Trivial);
    return SatResult::Unsat;
  }
  if (PC.empty()) {
    ++Stats.TrivialAnswers;
    ++Stats.Sat;
    obs::journal::noteLayer(obs::journal::VerdictLayer::Trivial);
    return SatResult::Sat;
  }

  if (Opts.UseCache) {
    Span T(SpanKind::CacheLookup);
    ++Stats.CacheLookups;
    if (std::optional<SatResult> Hit = Cache->lookup(PC)) {
      ++Stats.CacheHits;
      CacheHit = true;
      obs::journal::noteLayer(obs::journal::VerdictLayer::Cache);
      return *Hit;
    }
  }

  SatResult R;
  if (Opts.AsyncSolvers > 0 && !native::SolverService::onWorkerThread()) {
    // Route the undecided query through the async service: identical and
    // subsumed in-flight queries from sibling scheduler workers resolve
    // from one solve. The closure runs the exact inline pipeline, so
    // options, caches and stats behave identically.
    Span W(SpanKind::AsyncWait, &Stats.AsyncWaitNs);
    R = native::SolverService::process().checkSat(
        this, PC, Opts.AsyncSolvers,
        [this](const PathCondition &Q) {
          return Opts.UseSlicing && Q.size() > 1 ? checkSatSliced(Q)
                                                 : solveLayers(Q);
        },
        Stats);
    // The in-layer decision happened on a service thread; its noteLayer
    // landed on that thread's attribution, not this caller's.
    obs::journal::noteLayer(obs::journal::VerdictLayer::Async);
  } else {
    R = Opts.UseSlicing && PC.size() > 1 ? checkSatSliced(PC)
                                         : solveLayers(PC);
  }

  switch (R) {
  case SatResult::Sat: ++Stats.Sat; break;
  case SatResult::Unsat: ++Stats.Unsat; break;
  case SatResult::Unknown: ++Stats.Unknown; break;
  }
  // Cache only decided verdicts: a cached Unknown would permanently
  // poison a query that a later attempt (e.g. with Z3 available, or via a
  // verified syntactic model) could decide.
  if (Opts.UseCache)
    Cache->insert(PC, R); // insert() drops Unknown
  return R;
}

std::optional<Model> Solver::verifiedModel(const PathCondition &PC) {
  auto T0 = std::chrono::steady_clock::now();
  uint64_t ResetsBefore = Stats.IncResets.load();
  obs::journal::QueryAttribution &QA = obs::journal::queryAttribution();
  QA.Layer = static_cast<uint8_t>(obs::journal::VerdictLayer::None);
  std::optional<Model> M = verifiedModelImpl(PC);
  ++obs::progressCounters().SolverQueries;
  uint64_t WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  // A found model is a Sat verdict; "no model" is Unknown (the search is
  // incomplete by design — it only ever certifies, never refutes).
  ++QA.Seq;
  QA.CumWallNs += WallNs;
  QA.Verdict = static_cast<uint8_t>(M ? obs::journal::Verdict::Sat
                                      : obs::journal::Verdict::Unknown);
  obs::QueryProfiler::instance().record(
      WallNs, M ? obs::QueryVerdict::Sat : obs::QueryVerdict::Unknown,
      /*CacheHit=*/false, Stats.IncResets.load() - ResetsBefore);
  return M;
}

std::optional<Model> Solver::verifiedModelImpl(const PathCondition &PC) {
  Span Total(SpanKind::ModelSearch, &Stats.TotalNs);
  if (PC.isTriviallyFalse())
    return std::nullopt;

  // First try the cheap syntactic proposal.
  if (Opts.UseSyntactic) {
    Span T(SpanKind::Syntactic, &Stats.SyntacticNs);
    if (auto M = proposeModelSyntactic(PC)) {
      ++Stats.ModelsProposed;
      if (M->satisfies(PC)) {
        ++Stats.ModelsVerified;
        obs::journal::noteLayer(obs::journal::VerdictLayer::Syntactic);
        return M;
      }
    }
  }
  if (Opts.UseZ3 && z3Available()) {
    Span T(SpanKind::ColdZ3, &Stats.Z3Ns);
    TypeEnv Types;
    if (!inferTypes(PC.conjuncts(), Types))
      return std::nullopt;
    ++Stats.Z3Calls;
    Z3Outcome Out = checkSatZ3(PC, Types, /*WantModel=*/true);
    if (Out.CandidateModel) {
      ++Stats.ModelsProposed;
      if (Out.CandidateModel->satisfies(PC)) {
        ++Stats.ModelsVerified;
        obs::journal::noteLayer(obs::journal::VerdictLayer::Z3);
        return Out.CandidateModel;
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Result-cache persistence (ROADMAP "persisted solver cache").
//===----------------------------------------------------------------------===//

long Solver::saveCache(const std::string &Path) const {
  // Crash-safe: write a sibling temp file, then rename(2) over the target.
  // A crash (or ENOSPC) mid-write leaves the previous cache file intact —
  // a truncated cache is not just lossy, its last line is usually a
  // half-written condition that loadCache would silently skip, shrinking
  // warm starts forever after.
  const std::string Tmp =
      Path + "." + std::to_string(::getpid()) + ".tmp";
  long N = 0;
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return -1;
    // One line per entry: verdict, tab, the canonical condition rendered
    // through Expr::toString() (which round-trips through parseGilExpr).
    // Unknown is never cached, so only decided verdicts ever reach here.
    Cache->forEachEntry([&](const PathCondition &PC, SatResult R) {
      if (R != SatResult::Sat && R != SatResult::Unsat)
        return;
      Out << (R == SatResult::Sat ? "SAT" : "UNSAT") << '\t'
          << PC.asExpr().toString() << '\n';
      ++N;
    });
    Out.flush();
    if (!Out) {
      std::remove(Tmp.c_str());
      return -1;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return -1;
  }
  return N;
}

long Solver::loadCache(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return -1;
  long N = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Tab = Line.find('\t');
    if (Tab == std::string::npos)
      continue;
    std::string_view Verdict(Line.data(), Tab);
    SatResult R;
    if (Verdict == "SAT")
      R = SatResult::Sat;
    else if (Verdict == "UNSAT")
      R = SatResult::Unsat;
    else
      continue; // Unknown (or garbage) is never persisted nor loaded
    Result<Expr> E = parseGilExpr(std::string_view(Line).substr(Tab + 1));
    if (!E.ok())
      continue; // stale syntax from an older build: skip, don't fail
    // Re-canonicalise through add(): conjunctions split, conjuncts sort
    // and dedup, so the key matches what today's solver would build.
    PathCondition PC;
    PC.add(*E);
    if (PC.empty() || PC.isTriviallyFalse())
      continue; // trivial conditions are answered upstream of the cache
    Cache->insert(PC, R);
    ++N;
  }
  return N;
}
