//===- tests/engine/scheduler_test.cpp ------------------------------------===//
//
// The parallel exploration scheduler: the work-stealing pool executes
// every injected and spawned task exactly once; Workers = 1 dispatches to
// the sequential worklist (bit-identical results, including order); the
// pool-driven modes produce the same outcomes in a deterministic,
// schedule-independent order at every worker count; and engine/solver
// counters are schedule-independent modulo cache-hit attribution.
//
//===----------------------------------------------------------------------===//

#include "engine/scheduler/exploration_scheduler.h"
#include "engine/scheduler/frontier.h"
#include "engine/scheduler/thread_pool.h"

#include "engine/test_runner.h"
#include "obs/sched_counters.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::whilelang;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ExecutesEveryInjectedTask) {
  ThreadPool<int> Pool(4, 4);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    Pool.inject(I);
  Pool.run([&Sum](int T, ThreadPool<int>::Worker &) {
    Sum.fetch_add(T, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, SpawnedTasksAllComplete) {
  // Each task of depth d spawns two of depth d-1: a binary tree of
  // 2^(D+1) - 1 tasks from one root, all discovered dynamically.
  constexpr int D = 10;
  ThreadPool<int> Pool(4, 2);
  std::atomic<uint64_t> Count{0};
  Pool.inject(D);
  Pool.run([&Count](int Depth, ThreadPool<int>::Worker &W) {
    Count.fetch_add(1, std::memory_order_relaxed);
    if (Depth > 0) {
      W.spawn(Depth - 1);
      W.spawn(Depth - 1);
    }
  });
  EXPECT_EQ(Count.load(), (1u << (D + 1)) - 1);
}

TEST(ThreadPool, SingleWorkerAndUnitStealBatchStillDrain) {
  ThreadPool<int> Pool(1, 1);
  std::atomic<int> Count{0};
  Pool.inject(5);
  Pool.run([&Count](int Depth, ThreadPool<int>::Worker &W) {
    Count.fetch_add(1, std::memory_order_relaxed);
    if (Depth > 0)
      W.spawn(Depth - 1);
  });
  EXPECT_EQ(Count.load(), 6);
}

TEST(ThreadPool, StealCountAdaptsToVictimQueueLength) {
  using Pool = ThreadPool<int>;
  // Victim has at least a batch queued: take the full batch.
  EXPECT_EQ(Pool::stealCount(8, 4), 4u);
  EXPECT_EQ(Pool::stealCount(4, 4), 4u);
  EXPECT_EQ(Pool::stealCount(5, 4), 4u);
  // Short victim queue: halve the batch rather than draining it, so the
  // victim keeps local LIFO work.
  EXPECT_EQ(Pool::stealCount(3, 4), 2u);
  EXPECT_EQ(Pool::stealCount(2, 4), 2u);
  EXPECT_EQ(Pool::stealCount(1, 4), 1u);
  EXPECT_EQ(Pool::stealCount(1, 8), 1u);
  EXPECT_EQ(Pool::stealCount(3, 16), 2u);
  // Nothing to steal.
  EXPECT_EQ(Pool::stealCount(0, 4), 0u);
  EXPECT_EQ(Pool::stealCount(0, 1), 0u);
  // Degenerate batch values still make progress and never exceed the
  // queue.
  EXPECT_EQ(Pool::stealCount(5, 0), 1u);
  EXPECT_EQ(Pool::stealCount(5, 1), 1u);
  EXPECT_EQ(Pool::stealCount(2, 3), 1u);
}

TEST(ThreadPool, QuiescesWithNoTasks) {
  ThreadPool<int> Pool(4, 4);
  bool Ran = false;
  Pool.run([&Ran](int, ThreadPool<int>::Worker &) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, AllWorkersParticipateAfterLargeBatchSpawn) {
  // Wakeup regression: a burst of spawns (and the batch-steal surplus a
  // thief re-queues from them) makes many tasks visible at once; every
  // sleeping peer must wake — the old single notify_one could strand
  // sleepers. Each task blocks until all workers have executed at least
  // one task, so a stranded worker deadlocks the rest up to the deadline.
  constexpr size_t NWorkers = 4;
  ThreadPool<int> Pool(NWorkers, 8);
  std::mutex Mu;
  std::condition_variable Cv;
  std::set<size_t> Seen;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Pool.inject(1); // the root; spawns the burst
  Pool.run([&](int IsRoot, ThreadPool<int>::Worker &W) {
    if (IsRoot)
      for (int I = 0; I < 64; ++I)
        W.spawn(0);
    std::unique_lock<std::mutex> Lock(Mu);
    Seen.insert(W.index());
    Cv.notify_all();
    Cv.wait_until(Lock, Deadline,
                  [&] { return Seen.size() >= NWorkers; });
  });
  EXPECT_EQ(Seen.size(), NWorkers)
      << "a worker never woke up to take its share of the batch";
}

TEST(ThreadPool, FrontierSizeGaugeReadsZeroAfterRun) {
  // Gauge-race regression: FrontierSize mirrors Pending with commutative
  // add/sub (a racing set(load-1) published stale values); at quiescence
  // the mirror must land exactly on zero.
  ThreadPool<int> Pool(4, 4);
  for (int I = 0; I < 32; ++I)
    Pool.inject(3);
  Pool.run([](int Depth, ThreadPool<int>::Worker &W) {
    for (int I = 0; I < Depth; ++I)
      W.spawn(Depth - 1);
  });
  EXPECT_EQ(obs::schedCounters().FrontierSize.load(), 0u);
}

//===----------------------------------------------------------------------===//
// Frontier
//===----------------------------------------------------------------------===//

TEST(Frontier, OldestFirstPopsLifoStealsFifo) {
  Frontier<int> F(SelectionStrategy::OldestFirst, 0);
  for (int I = 1; I <= 4; ++I)
    F.push(I, 0);
  std::vector<Frontier<int>::Entry> Stolen;
  EXPECT_EQ(F.stealInto(2, Stolen), 2u);
  ASSERT_EQ(Stolen.size(), 2u);
  EXPECT_EQ(Stolen[0].T, 1); // FIFO: the oldest forks
  EXPECT_EQ(Stolen[1].T, 2);
  EXPECT_EQ(F.pop().value(), 4); // LIFO: the newest fork
  EXPECT_EQ(F.pop().value(), 3);
  EXPECT_FALSE(F.pop().has_value());
}

TEST(Frontier, PriorityStrategiesPopAndStealHighestFirst) {
  for (SelectionStrategy S : {SelectionStrategy::SubtreeSize,
                              SelectionStrategy::CoverageGuided}) {
    Frontier<int> F(S, 0);
    F.push(10, 10);
    F.push(30, 30);
    F.push(20, 20);
    F.push(40, 40);
    std::vector<Frontier<int>::Entry> Stolen;
    EXPECT_EQ(F.stealInto(2, Stolen), 2u);
    ASSERT_EQ(Stolen.size(), 2u);
    EXPECT_EQ(Stolen[0].Pri, 40u) << "thieves take the best-ranked work";
    EXPECT_EQ(Stolen[1].Pri, 30u);
    EXPECT_EQ(F.pop().value(), 20);
    EXPECT_EQ(F.pop().value(), 10);
  }
}

TEST(Frontier, RandomPathSameSeedSamePopSequence) {
  auto popAll = [](uint64_t Seed) {
    Frontier<int> F(SelectionStrategy::RandomPath, Seed);
    for (int I = 0; I < 16; ++I)
      F.push(I, 0);
    std::vector<int> Out;
    while (auto T = F.pop())
      Out.push_back(*T);
    return Out;
  };
  EXPECT_EQ(popAll(42), popAll(42));
  // A different seed permutes 16 elements differently (collision odds are
  // 1/16! for an unbiased pick sequence; these two seeds were checked).
  EXPECT_NE(popAll(42), popAll(43));
}

TEST(Frontier, StealPreservesPriorities) {
  // The thief re-queues the surplus with the priorities the scheduler
  // computed — a heap frontier rebuilt from stolen entries must rank them
  // identically.
  Frontier<int> Victim(SelectionStrategy::SubtreeSize, 0);
  for (int I = 1; I <= 6; ++I)
    Victim.push(I, static_cast<uint64_t>(I) * 7);
  std::vector<Frontier<int>::Entry> Stolen;
  Victim.stealInto(4, Stolen);
  Frontier<int> Thief(SelectionStrategy::SubtreeSize, 1);
  for (auto &E : Stolen)
    Thief.push(E.T, E.Pri);
  EXPECT_EQ(Thief.pop().value(), 6); // Pri 42: best of the stolen four
  EXPECT_EQ(Thief.pop().value(), 5);
}

//===----------------------------------------------------------------------===//
// ExplorationScheduler on While programs
//===----------------------------------------------------------------------===//

// A workload with branch structure at several depths: 3 symbolic booleans
// (8 way split), a data-dependent loop, and an interprocedural call.
constexpr const char *BranchySrc = R"(
  function main() {
    a := fresh_int();
    b := fresh_int();
    c := fresh_int();
    s := 0;
    if (a < 0) { s := s + 1; } else { s := s + 2; }
    if (b < a) { s := s + 10; } else { s := s + 20; }
    if (c < b) { s := s + 100; } else { s := s + 200; }
    n := fresh_int();
    assume (0 <= n && n < 4);
    i := 0;
    while (i < n) { t := step1(i); s := s + t; i := i + 1; }
    assert (0 < s);
    return s;
  }
  function step1(x) {
    if (x == 1) { return 2; }
    return 1;
  })";

using St = SymbolicState<WhileSMem>;

// Runs BranchySrc under \p Opts and renders each finished path as
// "kind|value|path-condition", in the engine's result order.
std::vector<std::string> traceSigs(const EngineOptions &Opts, Solver &Slv,
                                   ExecStats &Stats) {
  Result<Prog> P = compileWhileSource(BranchySrc);
  EXPECT_TRUE(P.ok()) << (P.ok() ? "" : P.error());
  St Init(WhileSMem(), &Slv, &Opts);
  Interpreter<St> Interp(*P, Opts, Stats);
  Result<std::vector<TraceResult<St>>> Traces = runExploration(
      Interp, InternedString::get("main"), Expr::list({}), std::move(Init));
  EXPECT_TRUE(Traces.ok()) << (Traces.ok() ? "" : Traces.error());
  std::vector<std::string> Sigs;
  if (!Traces.ok())
    return Sigs;
  for (TraceResult<St> &T : *Traces)
    Sigs.push_back(std::string(outcomeKindName(T.Kind)) + "|" +
                   T.Val.toString() + "|" +
                   T.Final.pathCondition().toString());
  return Sigs;
}

std::vector<std::string> traceSigs(const EngineOptions &Opts) {
  Solver Slv(Opts.Solver); // private cache: isolated from other tests
  ExecStats Stats;
  return traceSigs(Opts, Slv, Stats);
}

EngineOptions withWorkers(uint32_t Workers, bool SequentialFallback = true) {
  EngineOptions O;
  O.Scheduler.Workers = Workers;
  O.Scheduler.SequentialFallback = SequentialFallback;
  return O;
}

TEST(ExplorationScheduler, WorkersOneIsBitIdenticalToSequential) {
  // Workers = 1 (the default) must take the classic sequential worklist:
  // same results, same order, same counters.
  EngineOptions Default;
  ASSERT_FALSE(Default.Scheduler.parallel());
  std::vector<std::string> Seq = traceSigs(Default);
  std::vector<std::string> One = traceSigs(withWorkers(1));
  EXPECT_FALSE(Seq.empty());
  EXPECT_EQ(Seq, One) << "identical sequences, including order";
}

TEST(ExplorationScheduler, PoolModeMatchesSequentialOutcomes) {
  // The pool merges in branch-trace order — a different (but fixed) order
  // from the sequential worklist — so compare as multisets.
  std::vector<std::string> Seq = traceSigs(withWorkers(1));
  std::vector<std::string> Par = traceSigs(withWorkers(4));
  ASSERT_FALSE(Seq.empty());
  std::sort(Seq.begin(), Seq.end());
  std::vector<std::string> ParSorted = Par;
  std::sort(ParSorted.begin(), ParSorted.end());
  EXPECT_EQ(Seq, ParSorted);
}

TEST(ExplorationScheduler, ResultOrderIsScheduleIndependent) {
  // Branch-trace order depends only on the program: every pool
  // configuration — including a one-worker pool (fallback disabled) —
  // yields the same *sequence*, run after run.
  std::vector<std::string> PoolOfOne = traceSigs(withWorkers(1, false));
  ASSERT_FALSE(PoolOfOne.empty());
  for (uint32_t Workers : {2u, 4u, 8u}) {
    std::vector<std::string> Par = traceSigs(withWorkers(Workers));
    EXPECT_EQ(PoolOfOne, Par) << "workers=" << Workers;
  }
  EXPECT_EQ(PoolOfOne, traceSigs(withWorkers(4))) << "repeat run";
}

TEST(ExplorationScheduler, CountersScheduleIndependentModuloCacheLayer) {
  // Sequential and 4-worker runs execute the same steps and issue the
  // same solver queries with the same verdicts; only *which layer*
  // answered (cache vs Z3) may shift, because workers racing on a miss
  // can duplicate a round-trip whose result the sequential run reused.
  // Summaries off: the process-wide summary store would stay warm across
  // the two runs, so recording queries would hit only the first — the
  // summaries/schedule interplay is summary_differential_test's subject.
  EngineOptions SeqOpts = withWorkers(1);
  SeqOpts.UseSummaries = false;
  Solver SeqSlv(SeqOpts.Solver);
  ExecStats SeqStats;
  std::vector<std::string> Seq = traceSigs(SeqOpts, SeqSlv, SeqStats);

  EngineOptions ParOpts = withWorkers(4);
  ParOpts.UseSummaries = false;
  Solver ParSlv(ParOpts.Solver);
  ExecStats ParStats;
  std::vector<std::string> Par = traceSigs(ParOpts, ParSlv, ParStats);

  ASSERT_EQ(Seq.size(), Par.size());
  EXPECT_EQ(SeqStats.CmdsExecuted.load(), ParStats.CmdsExecuted.load());
  EXPECT_EQ(SeqStats.Branches.load(), ParStats.Branches.load());
  EXPECT_EQ(SeqStats.PathsFinished.load(), ParStats.PathsFinished.load());
  EXPECT_EQ(SeqStats.PathsVanished.load(), ParStats.PathsVanished.load());
  EXPECT_EQ(SeqStats.PathsErrored.load(), ParStats.PathsErrored.load());
  EXPECT_EQ(SeqStats.PathsBounded.load(), ParStats.PathsBounded.load());

  const SolverStats &SS = SeqSlv.stats();
  const SolverStats &PS = ParSlv.stats();
  EXPECT_EQ(SS.Queries.load(), PS.Queries.load())
      << "query count is exploration-driven, not schedule-driven";
  EXPECT_EQ(SS.Sat.load(), PS.Sat.load());
  EXPECT_EQ(SS.Unsat.load(), PS.Unsat.load());
  EXPECT_EQ(SS.Unknown.load(), PS.Unknown.load());
}

TEST(ExplorationScheduler, SymbolicTestRunnerHonorsSchedulerOptions) {
  // End-to-end through runSymbolicTest: the parallel verdict (bugs,
  // outcome counts) matches the sequential one.
  Result<Prog> P = compileWhileSource(R"(
    function main() {
      x := fresh_int();
      assume (0 <= x && x <= 10);
      assert (x < 10);
      return x;
    })");
  ASSERT_TRUE(P.ok()) << P.error();
  EngineOptions SeqOpts = withWorkers(1);
  Solver SeqSlv(SeqOpts.Solver);
  SymbolicTestResult Seq = runSymbolicTest<WhileSMem>(*P, "main", SeqOpts,
                                                      SeqSlv);
  EngineOptions ParOpts = withWorkers(4);
  Solver ParSlv(ParOpts.Solver);
  SymbolicTestResult Par = runSymbolicTest<WhileSMem>(*P, "main", ParOpts,
                                                      ParSlv);
  EXPECT_EQ(Seq.ok(), Par.ok());
  EXPECT_EQ(Seq.Bugs.size(), Par.Bugs.size());
  EXPECT_EQ(Seq.PathsReturned, Par.PathsReturned);
  EXPECT_EQ(Seq.PathsVanished, Par.PathsVanished);
  EXPECT_EQ(Seq.hasConfirmedBug(), Par.hasConfirmedBug());
}

EngineOptions withStrategy(SelectionStrategy S, uint32_t Workers,
                           uint64_t Seed = 0x9E3779B97F4A7C15ull) {
  EngineOptions O;
  O.Scheduler.Strategy = S;
  O.Scheduler.Workers = Workers;
  O.Scheduler.Seed = Seed;
  // Always the pool: OldestFirst at one worker would otherwise take the
  // sequential worklist, whose result order is the worklist's, not the
  // branch-trace order these tests compare.
  O.Scheduler.SequentialFallback = false;
  return O;
}

constexpr SelectionStrategy AllStrategies[] = {
    SelectionStrategy::OldestFirst, SelectionStrategy::RandomPath,
    SelectionStrategy::SubtreeSize, SelectionStrategy::CoverageGuided};

TEST(SelectionStrategies, ResultSequenceIsStrategyAndWorkerIndependent) {
  // The strategy decides *when* each configuration runs, never *whether*:
  // the branch-trace-sorted result sequence must be identical for every
  // strategy at every worker count — bit-for-bit, not just as a multiset.
  std::vector<std::string> Baseline = traceSigs(withWorkers(1, false));
  ASSERT_FALSE(Baseline.empty());
  for (SelectionStrategy S : AllStrategies)
    for (uint32_t Workers : {1u, 2u, 8u})
      EXPECT_EQ(Baseline, traceSigs(withStrategy(S, Workers)))
          << "strategy=" << strategyName(S) << " workers=" << Workers;
}

TEST(SelectionStrategies, NonDefaultStrategyEngagesPoolAtOneWorker) {
  // --strategy=random --workers=1 must run the strategy-aware pool (a
  // pool of one), not silently fall back to the sequential worklist.
  EXPECT_FALSE(withWorkers(1).Scheduler.parallel());
  for (SelectionStrategy S :
       {SelectionStrategy::RandomPath, SelectionStrategy::SubtreeSize,
        SelectionStrategy::CoverageGuided})
    EXPECT_TRUE(withStrategy(S, 1).Scheduler.parallel());
}

TEST(SelectionStrategies, SeededRandomPathIsReproducible) {
  // Sorted results mask the exploration order, so observe it through a
  // path budget: which paths finish before the cut depends on the pick
  // sequence, and a seeded one-worker run must reproduce it exactly.
  EngineOptions A = withStrategy(SelectionStrategy::RandomPath, 1, 42);
  A.MaxPaths = 6;
  EngineOptions B = withStrategy(SelectionStrategy::RandomPath, 1, 42);
  B.MaxPaths = 6;
  std::vector<std::string> First = traceSigs(A);
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, traceSigs(B)) << "same seed, same exploration order";
}

TEST(ExplorationScheduler, BudgetCutNamesTheStepBudget) {
  EngineOptions O = withWorkers(1, false);
  O.MaxSteps = 10;
  bool SawStep = false;
  for (const std::string &Sig : traceSigs(O)) {
    SawStep |= Sig.find("step budget exhausted") != std::string::npos;
    EXPECT_EQ(Sig.find("path budget exhausted"), std::string::npos) << Sig;
  }
  EXPECT_TRUE(SawStep);
}

TEST(ExplorationScheduler, BudgetCutNamesThePathBudget) {
  // Both the pool (strategy scheduler) and the classic sequential
  // worklist must attribute a MaxPaths cut to the path budget — the old
  // message blamed the step budget for every cut.
  for (bool SequentialFallback : {false, true}) {
    EngineOptions O = withWorkers(1, SequentialFallback);
    O.MaxPaths = 3;
    bool SawPath = false;
    for (const std::string &Sig : traceSigs(O)) {
      SawPath |= Sig.find("path budget exhausted") != std::string::npos;
      EXPECT_EQ(Sig.find("step budget exhausted"), std::string::npos)
          << Sig;
    }
    EXPECT_TRUE(SawPath) << "sequential=" << SequentialFallback;
  }
}

TEST(SelectionStrategies, ExplorationFrontierGaugeReadsZeroAfterRun) {
  // End-to-end mirror check: after any strategy's exploration drains,
  // the process-wide frontier gauge is back to exactly zero.
  for (SelectionStrategy S : AllStrategies) {
    traceSigs(withStrategy(S, 4));
    EXPECT_EQ(obs::schedCounters().FrontierSize.load(), 0u)
        << "strategy=" << strategyName(S);
  }
}

TEST(ExplorationScheduler, SharedCacheResetRestoresColdCounts) {
  // resetCache() gives tests isolation from warm shared state: a cleared
  // cache behaves like a fresh one. Sequential runs keep every counter
  // deterministic, so cold and post-reset runs must agree exactly.
  EngineOptions Opts = withWorkers(1);
  SolverCache Shared;
  Solver A(Opts.Solver, Shared);
  ExecStats SA;
  traceSigs(Opts, A, SA);
  // Full-query hits: a warm cache answers whole repeated queries at the
  // top layer (intra-run, the cold run only catches repeats it has
  // already sliced through).
  uint64_t ColdFullHits = A.stats().CacheHits.load();
  uint64_t ColdSliceHits = A.stats().SliceCacheHits.load();
  EXPECT_GT(Shared.size(), 0u);

  // A warm re-run answers repeated queries from the shared cache.
  Solver B(Opts.Solver, Shared);
  ExecStats SB;
  traceSigs(Opts, B, SB);
  EXPECT_GT(B.stats().CacheHits.load(), ColdFullHits);

  // After a reset, a fresh run pays the cold cost again.
  B.resetCache();
  EXPECT_EQ(Shared.size(), 0u);
  Solver C(Opts.Solver, Shared);
  ExecStats SC;
  traceSigs(Opts, C, SC);
  EXPECT_EQ(C.stats().CacheHits.load(), ColdFullHits);
  EXPECT_EQ(C.stats().SliceCacheHits.load(), ColdSliceHits);
}

} // namespace
