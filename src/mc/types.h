//===- mc/types.h - MC types, layout and chunks ----------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of MC, our C-like language (§4.2), and its data
/// layout. Scalar types are i8/i32/i64/f64 plus typed pointers ptr<T>;
/// aggregates are named structs (always manipulated through pointers, as
/// in Collections-C). Layout follows the usual C rules: fields aligned to
/// their natural alignment, struct size padded to the max alignment.
///
/// Memory chunks (the [sz, al, kind] triples of the paper's SLoad rule)
/// describe how a scalar is read from / written to the byte-level memory.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_MC_TYPES_H
#define GILLIAN_MC_TYPES_H

#include "support/interner.h"
#include "support/result.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gillian::mc {

enum class ScalarKind : uint8_t { I8, I32, I64, F64, Ptr };

/// An MC type: a scalar (possibly a typed pointer) or a named struct.
class McType {
public:
  McType() : Kind(ScalarKind::I64), IsStruct(false) {}

  static McType scalar(ScalarKind K) {
    McType T;
    T.Kind = K;
    return T;
  }
  static McType pointer(McType Pointee) {
    McType T;
    T.Kind = ScalarKind::Ptr;
    T.Pointee = std::make_shared<McType>(std::move(Pointee));
    return T;
  }
  static McType structT(InternedString Name) {
    McType T;
    T.IsStruct = true;
    T.StructName = Name;
    return T;
  }

  bool isStruct() const { return IsStruct; }
  bool isPtr() const { return !IsStruct && Kind == ScalarKind::Ptr; }
  bool isInt() const {
    return !IsStruct && (Kind == ScalarKind::I8 || Kind == ScalarKind::I32 ||
                         Kind == ScalarKind::I64);
  }
  bool isFloat() const { return !IsStruct && Kind == ScalarKind::F64; }
  ScalarKind scalarKind() const { return Kind; }
  InternedString structName() const { return StructName; }
  /// Pointee type; untyped (null) for raw pointers.
  const McType *pointee() const { return Pointee.get(); }

  bool operator==(const McType &O) const {
    if (IsStruct != O.IsStruct)
      return false;
    if (IsStruct)
      return StructName == O.StructName;
    if (Kind != O.Kind)
      return false;
    if (Kind != ScalarKind::Ptr)
      return true;
    if (!Pointee || !O.Pointee)
      return !Pointee && !O.Pointee;
    return *Pointee == *O.Pointee;
  }
  bool operator!=(const McType &O) const { return !(*this == O); }

  std::string toString() const;

private:
  ScalarKind Kind;
  bool IsStruct = false;
  InternedString StructName;
  std::shared_ptr<McType> Pointee;
};

/// One field of a struct, after layout.
struct FieldLayout {
  InternedString Name;
  McType Type;
  int64_t Offset;
};

struct StructLayout {
  InternedString Name;
  std::vector<FieldLayout> Fields;
  int64_t Size;
  int64_t Align;

  const FieldLayout *field(InternedString N) const {
    for (const FieldLayout &F : Fields)
      if (F.Name == N)
        return &F;
    return nullptr;
  }
};

/// All struct layouts of one program.
class LayoutTable {
public:
  /// Computes and registers the layout of a struct; fails on unknown
  /// field types or non-scalar fields of unregistered structs.
  Result<bool> add(InternedString Name,
                   const std::vector<std::pair<InternedString, McType>> &Fs);

  const StructLayout *find(InternedString Name) const {
    auto It = Layouts.find(Name);
    return It == Layouts.end() ? nullptr : &It->second;
  }

  /// Size of \p T in bytes (structs by layout; scalars naturally).
  Result<int64_t> sizeOf(const McType &T) const;
  /// Natural alignment of \p T.
  Result<int64_t> alignOf(const McType &T) const;

private:
  std::map<InternedString, StructLayout> Layouts;
};

/// A memory chunk [sz, al, kind] (paper §4.2). Kind distinguishes how the
/// bytes decode: as a (sign-extended) integer, a float, or a pointer.
enum class ChunkKind : uint8_t { Int, Float, Ptr };

struct Chunk {
  int64_t Size;
  int64_t Align;
  ChunkKind Kind;

  static Chunk forScalar(ScalarKind K) {
    switch (K) {
    case ScalarKind::I8: return {1, 1, ChunkKind::Int};
    case ScalarKind::I32: return {4, 4, ChunkKind::Int};
    case ScalarKind::I64: return {8, 8, ChunkKind::Int};
    case ScalarKind::F64: return {8, 8, ChunkKind::Float};
    case ScalarKind::Ptr: return {8, 8, ChunkKind::Ptr};
    }
    return {8, 8, ChunkKind::Int};
  }
};

/// Scalar sizes/alignments shared with the layout engine.
inline int64_t scalarSize(ScalarKind K) { return Chunk::forScalar(K).Size; }
inline int64_t scalarAlign(ScalarKind K) { return Chunk::forScalar(K).Align; }

} // namespace gillian::mc

#endif // GILLIAN_MC_TYPES_H
