//===- obs/native_stats.h - Process-wide native-solver counters *- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters of the native theory layer and the async solver
/// service (src/solver/native/, DESIGN.md §4f). Per-Solver numbers live in
/// SolverStats; this set is the always-on aggregate the /metrics endpoint
/// renders after per-suite sources unregister — the same role the
/// QueryProfiler plays for the `gillian_solver_hot_query_*` series. It
/// lives in obs (not in the solver) so the introspection server can render
/// it without depending on the solver library.
///
/// Category "solver" + `native_*`/`async_*` names yield the
/// `gillian_solver_native_*` / `gillian_solver_async_*` metric families.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_NATIVE_STATS_H
#define GILLIAN_OBS_NATIVE_STATS_H

#include "obs/counters.h"

namespace gillian::obs {

struct NativeGlobalStats : CounterSet<NativeGlobalStats> {
  // Native theory layer (decides / falls through per query).
  Counter NativeQueries{*this, "native_queries", "solver"};
  Counter NativeSat{*this, "native_sat", "solver"};
  Counter NativeUnsat{*this, "native_unsat", "solver"};
  Counter NativeFallbacks{*this, "native_fallbacks", "solver"};

  // Async batched query service.
  Counter AsyncSubmitted{*this, "async_submitted", "solver"};
  Counter AsyncDedupHits{*this, "async_dedup_hits", "solver"};
  Counter AsyncSubsumedHits{*this, "async_subsumed_hits", "solver"};
  Counter AsyncInlineRuns{*this, "async_inline_runs", "solver"};
  Counter AsyncBatches{*this, "async_batches", "solver"};
  Gauge AsyncQueueDepth{*this, "async_queue_depth", "solver"};

  NativeGlobalStats() = default;
  NativeGlobalStats(const NativeGlobalStats &O) { copyFrom(O); }
  NativeGlobalStats &operator=(const NativeGlobalStats &O) {
    copyFrom(O);
    return *this;
  }
};

/// The process-wide instance (relaxed atomics; safe from any thread).
inline NativeGlobalStats &nativeGlobalStats() {
  static NativeGlobalStats S;
  return S;
}

} // namespace gillian::obs

#endif // GILLIAN_OBS_NATIVE_STATS_H
