//===- engine/summary/record.h - Summary recording mini-run ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording pass of the procedure summary cache: a dedicated
/// interpreter over the *eligible fragment* (assignments, forward
/// IfGotos, return/fail/vanish — see summaryEligible) that executes a
/// procedure body once from a synthetic entry state and captures the
/// execution tree as SummaryNodes. It deliberately does NOT reuse
/// Interpreter::step: recording must not touch ExecStats, the trace ring,
/// branch coverage or the progress counters — those effects are produced
/// (bit-identically) by *replay*, on the recording call itself and on
/// every later hit.
///
/// The entry state carries the caller's solver and options, a store that
/// binds the parameter to the already-evaluated argument expression, and
/// a path condition seeded with the key's argument slice — so recorded
/// conjuncts and values are expressed directly over the caller's logical
/// variables and splice back without substitution.
///
/// Tree shape invariant (relied on by Interpreter::replayStep): within
/// the fragment every step emits either one continuation (straight-line),
/// two (a both-feasible IfGoto — always ⟨false, true⟩ in that order, like
/// Interpreter::step), or a terminal — never a mixed done+cont set. So
/// replaying the tree with one node per step() call reproduces both the
/// sequential worklist's LIFO result order and the parallel scheduler's
/// PathId assignment exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SUMMARY_RECORD_H
#define GILLIAN_ENGINE_SUMMARY_RECORD_H

#include "engine/options.h"
#include "engine/summary/summary_store.h"
#include "gil/prog.h"
#include "obs/coverage.h"

#include <memory>
#include <utility>
#include <vector>

namespace gillian::summary {

/// Records the execution tree of eligible procedure \p P from \p EntrySt.
/// Returns the finished entry, or nullptr when the node/step caps blow
/// (the caller negative-caches the key and falls back to real execution).
template <typename St>
std::shared_ptr<SummaryEntry>
recordSummary(St EntrySt, const Proc &P, InternedString Name,
              uint64_t Fingerprint, const EngineOptions &Opts) {
  auto E = std::make_shared<SummaryEntry>();
  E->ProcName = Name;
  E->Fingerprint = Fingerprint;
  E->Nodes.emplace_back();
  // Batch 0 is the branch-in delta; the root enters unconditionally.
  E->Nodes[0].Batches.emplace_back();

  struct Pend {
    St State;
    size_t I;
    uint32_t Node;
  };
  std::vector<Pend> Work;
  Work.push_back(Pend{std::move(EntrySt), 0, 0});

  uint64_t Steps = 0;
  // Writes the terminal shape of node \p Node. Never holds a reference
  // across Nodes growth — the vector reallocates.
  auto Terminal = [&E](uint32_t Node, SummaryNodeKind K, Expr V) {
    E->Nodes[Node].Kind = K;
    E->Nodes[Node].Val = std::move(V);
  };

  while (!Work.empty()) {
    Pend Edge = std::move(Work.back());
    Work.pop_back();
    St State = std::move(Edge.State);
    size_t I = Edge.I;
    const uint32_t Node = Edge.Node;

    for (;;) {
      if (++Steps > Opts.SummaryMaxSteps)
        return nullptr;
      // Off-end check before the command count, mirroring step().
      if (I >= P.Body.size()) {
        Terminal(Node, SummaryNodeKind::Error,
                 St::errorValue("control fell off the end of procedure '" +
                                std::string(Name.str()) + "'"));
        break;
      }
      const Cmd &Command = P.Body[I];
      ++E->Nodes[Node].Cmds;

      if (Command.Kind == CmdKind::Assign) {
        Result<Expr> V = State.evalExpr(Command.E);
        if (!V) {
          Terminal(Node, SummaryNodeKind::Error, St::errorValue(V.error()));
          break;
        }
        State.setVar(Command.X, V.take());
        ++I;
        continue;
      }

      if (Command.Kind == CmdKind::IfGoto) {
        Result<Expr> CondT = State.evalExpr(Command.E);
        if (!CondT) {
          Terminal(Node, SummaryNodeKind::Error,
                   St::errorValue(CondT.error()));
          break;
        }
        Result<Expr> CondF = State.evalExpr(Expr::notE(Command.E));
        Result<std::optional<St>> TrueSt = State.assumeValue(*CondT);
        if (!TrueSt) {
          Terminal(Node, SummaryNodeKind::Error,
                   St::errorValue(TrueSt.error()));
          break;
        }
        std::optional<St> FalseSt;
        if (CondF) {
          Result<std::optional<St>> FS = State.assumeValue(*CondF);
          if (FS)
            FalseSt = std::move(*FS);
        }
        E->Nodes[Node].Cov.push_back(SummaryCovEvent{
            static_cast<uint32_t>(I),
            (FalseSt.has_value() ? obs::BranchFalseBit : 0u) |
                (TrueSt->has_value() ? obs::BranchTrueBit : 0u),
            E->Nodes[Node].Cmds});

        const std::vector<Expr> &Here = State.pathCondition().conjuncts();
        if (FalseSt.has_value() && TrueSt->has_value()) {
          const uint32_t FC = static_cast<uint32_t>(E->Nodes.size());
          E->Nodes.emplace_back();
          const uint32_t TC = static_cast<uint32_t>(E->Nodes.size());
          E->Nodes.emplace_back();
          if (E->Nodes.size() > Opts.SummaryMaxNodes)
            return nullptr;
          // The children's branch-in batches (batch 0): replay splices and
          // feasibility-checks them at the split, where the IfGoto's
          // assumeValue queries ran.
          E->Nodes[FC].Batches.push_back(summaryNewConjuncts(
              Here, FalseSt->pathCondition().conjuncts()));
          E->Nodes[TC].Batches.push_back(summaryNewConjuncts(
              Here, (*TrueSt)->pathCondition().conjuncts()));
          E->Nodes[Node].Kind = SummaryNodeKind::Split;
          E->Nodes[Node].FalseChild = FC;
          E->Nodes[Node].TrueChild = TC;
          Work.push_back(Pend{std::move(*FalseSt), I + 1, FC});
          Work.push_back(Pend{std::move(**TrueSt), Command.Target, TC});
          break;
        }
        if (TrueSt->has_value()) {
          // One batch per single-feasible IfGoto, even when the delta is
          // empty: batch j (j >= 1) pairs with Cov[j-1] during replay.
          E->Nodes[Node].Batches.push_back(summaryNewConjuncts(
              Here, (*TrueSt)->pathCondition().conjuncts()));
          State = std::move(**TrueSt);
          I = Command.Target;
          continue;
        }
        if (FalseSt.has_value()) {
          E->Nodes[Node].Batches.push_back(summaryNewConjuncts(
              Here, FalseSt->pathCondition().conjuncts()));
          State = std::move(*FalseSt);
          ++I;
          continue;
        }
        // Both sides infeasible: the path vanishes without an outcome,
        // exactly like the assume-pruned original.
        E->Nodes[Node].Kind = SummaryNodeKind::Dead;
        break;
      }

      if (Command.Kind == CmdKind::Return || Command.Kind == CmdKind::Fail) {
        Result<Expr> V = State.evalExpr(Command.E);
        if (!V) {
          Terminal(Node, SummaryNodeKind::Error, St::errorValue(V.error()));
          break;
        }
        Terminal(Node,
                 Command.Kind == CmdKind::Return ? SummaryNodeKind::Return
                                                 : SummaryNodeKind::Error,
                 V.take());
        break;
      }

      if (Command.Kind == CmdKind::Vanish) {
        Terminal(Node, SummaryNodeKind::Vanish, St::errorValue("vanish"));
        break;
      }

      // summaryEligible excluded everything else at registration.
      return nullptr;
    }
  }

  for (const SummaryNode &N : E->Nodes)
    if (N.Kind == SummaryNodeKind::Return ||
        N.Kind == SummaryNodeKind::Error || N.Kind == SummaryNodeKind::Vanish)
      ++E->Outcomes;
  E->Bytes = summaryEntryBytes(*E);
  return E;
}

} // namespace gillian::summary

#endif // GILLIAN_ENGINE_SUMMARY_RECORD_H
