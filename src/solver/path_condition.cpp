//===- solver/path_condition.cpp ------------------------------------------===//

#include "solver/path_condition.h"

#include <algorithm>

using namespace gillian;

void PathCondition::add(const Expr &E) {
  if (TriviallyFalse || !E || E.isTrue())
    return;
  if (E.isFalse()) {
    TriviallyFalse = true;
    Conjuncts.clear();
    Hash = 0;
    return;
  }
  if (E.kind() == ExprKind::BinOp && E.binOpKind() == BinOpKind::And) {
    add(E.child(0));
    add(E.child(1));
    return;
  }
  if (std::find(Conjuncts.begin(), Conjuncts.end(), E) != Conjuncts.end())
    return;
  Conjuncts.push_back(E);
  Hash = (Hash ^ E.hash()) * 0x9E3779B97F4A7C15ull;
}

void PathCondition::addAll(const PathCondition &Other) {
  if (Other.TriviallyFalse) {
    TriviallyFalse = true;
    Conjuncts.clear();
    Hash = 0;
    return;
  }
  for (const Expr &E : Other.Conjuncts)
    add(E);
}

Expr PathCondition::asExpr() const {
  if (TriviallyFalse)
    return Expr::boolE(false);
  Expr Out = Expr::boolE(true);
  bool First = true;
  for (const Expr &E : Conjuncts) {
    Out = First ? E : Expr::andE(Out, E);
    First = false;
  }
  return Out;
}

bool PathCondition::contains(const PathCondition &Other) const {
  if (TriviallyFalse)
    return true; // false entails everything
  if (Other.TriviallyFalse)
    return false;
  for (const Expr &E : Other.Conjuncts)
    if (std::find(Conjuncts.begin(), Conjuncts.end(), E) == Conjuncts.end())
      return false;
  return true;
}

std::string PathCondition::toString() const {
  if (TriviallyFalse)
    return "false";
  if (Conjuncts.empty())
    return "true";
  std::string Out;
  for (size_t I = 0, N = Conjuncts.size(); I != N; ++I) {
    if (I)
      Out += " /\\ ";
    Out += Conjuncts[I].toString();
  }
  return Out;
}

void PathCondition::collectLVars(std::set<InternedString> &Out) const {
  for (const Expr &E : Conjuncts)
    E.collectLVars(Out);
}
