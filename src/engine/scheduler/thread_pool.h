//===- engine/scheduler/thread_pool.h - Work-stealing pool -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for dynamically forking task graphs — the
/// substrate of the parallel exploration scheduler. Symbolic execution
/// after a branch point produces *path-disjoint* configurations; each is a
/// task, and stepping a task may spawn more tasks (its branch successors).
///
/// Topology: one strategy-owned frontier per worker (engine/scheduler/
/// frontier.h) plus a global injection queue for roots. What push, pop and
/// steal mean is a property of the SelectionStrategy: the OldestFirst
/// default is the classic LIFO-pop / FIFO-steal deque (a worker pops its
/// newest fork for depth-first locality; thieves take the oldest —
/// shallowest — forks, which head the largest untapped subtrees), while
/// the random/priority strategies pick per their own rules. Steals move up
/// to `StealBatch` configurations so a thief seeds itself instead of
/// returning for every successor; the batch is adaptive — it halves while
/// the victim's frontier is shorter than it (see stealCount), so a
/// nearly-drained victim is not stripped bare. Frontiers are mutex-striped
/// rather than lock-free: exploration tasks are heavyweight (each step
/// runs solver queries), so queue transfer cost is noise — predictable
/// correctness wins.
///
/// Quiescence: `Pending` counts tasks that are queued or executing; it is
/// incremented before a task becomes visible and decremented only after
/// its body (including any spawns) completes, so it can only reach zero
/// when no task exists or can ever exist again. Idle workers sleep on a
/// condition variable versioned by a work epoch — the epoch is read before
/// scanning and bumped under the same mutex by every push, which makes the
/// classic scan/sleep lost-wakeup race impossible. Every newly visible
/// task wakes a peer, and a surplus of more than one (batch steals, burst
/// injection) wakes everyone: a single notify_one for k new tasks used to
/// leave k-1 sleepers parked until the next epoch bump.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H
#define GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H

#include "engine/scheduler/frontier.h"
#include "engine/scheduler/scheduler_options.h"
#include "obs/progress.h"
#include "obs/sched_counters.h"
#include "obs/trace_ring.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace gillian {

template <typename Task> class ThreadPool {
public:
  /// Handle passed to the task body: identifies the executing worker and
  /// lets the body spawn successor tasks onto that worker's own frontier,
  /// with the strategy priority the caller computed for them.
  class Worker {
  public:
    size_t index() const { return Idx; }
    void spawn(Task T, uint64_t Priority = 0) {
      Pool.pushLocal(Idx, std::move(T), Priority);
    }

  private:
    friend class ThreadPool;
    Worker(ThreadPool &Pool, size_t Idx) : Pool(Pool), Idx(Idx) {}
    ThreadPool &Pool;
    size_t Idx;
  };

  ThreadPool(size_t NumWorkers, size_t StealBatch,
             SelectionStrategy Strategy = SelectionStrategy::OldestFirst,
             uint64_t Seed = 0)
      : Workers_(NumWorkers ? NumWorkers : 1),
        StealBatch(StealBatch ? StealBatch : 1) {
    for (size_t I = 0; I < Workers_; ++I)
      Frontiers.emplace_back(Strategy, mixSeed(Seed, I));
    // Publish the pool shape for the live-introspection gauges. One pool
    // is live at a time (explore() constructs, runs, destroys), so the
    // process-wide gauges describe "the" pool.
    obs::SchedCounters &SC = obs::schedCounters();
    SC.PoolWorkers.set(workers());
    SC.Strategy.set(static_cast<uint64_t>(Strategy));
    SC.FrontierSize.set(0); // fresh pool: mirror of Pending restarts at 0
    obs::setScheduleStrategyLabel(strategyName(Strategy));
    obs::WorkerDepthGauges::instance().configure(
        static_cast<uint32_t>(workers()));
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t workers() const { return Workers_; }

  /// Tasks a thief takes from a victim whose frontier holds \p QueueLen
  /// tasks, with configured batch \p Batch: the batch halves while it
  /// exceeds the victim's queue (adaptive — a short frontier is not
  /// stolen bare, leaving the victim its local work), and the result is
  /// clamped to the queue length. Static so the clamp is unit-testable.
  static size_t stealCount(size_t QueueLen, size_t Batch) {
    if (QueueLen == 0)
      return 0;
    size_t B = Batch ? Batch : 1;
    while (B > 1 && QueueLen < B)
      B /= 2;
    return B < QueueLen ? B : QueueLen;
  }

  /// Enqueues a root task on the global injection queue. Thread-safe, but
  /// intended for seeding the pool before run().
  void inject(Task T) {
    Pending.fetch_add(1, std::memory_order_acq_rel);
    obs::schedCounters().FrontierSize.add(1);
    {
      std::lock_guard<std::mutex> Lock(Global.Mu);
      Global.Q.push_back(std::move(T));
    }
    signalWork(1);
  }

  /// Runs \p Body(Task, Worker&) over every injected task and everything
  /// those tasks spawn, on `workers()` threads; returns when the pool is
  /// quiescent (every task executed, nothing left to steal).
  template <typename Body> void run(Body &&B) {
    std::vector<std::thread> Threads;
    Threads.reserve(workers());
    for (size_t I = 0; I < workers(); ++I)
      Threads.emplace_back([this, I, &B] { workerLoop(I, B); });
    for (std::thread &T : Threads)
      T.join();
    assert(Pending.load() == 0 && "pool exited with tasks outstanding");
  }

private:
  using Entry = typename Frontier<Task>::Entry;

  struct GlobalQueue {
    std::mutex Mu;
    std::deque<Task> Q;
  };
  /// A worker's frontier plus its stripe lock, cache-line padded so two
  /// workers' hot locks do not false-share.
  struct alignas(64) WorkerFrontier {
    WorkerFrontier(SelectionStrategy S, uint64_t Seed) : F(S, Seed) {}
    std::mutex Mu;
    Frontier<Task> F;
  };

  void pushLocal(size_t Idx, Task T, uint64_t Pri) {
    Pending.fetch_add(1, std::memory_order_acq_rel);
    obs::schedCounters().FrontierSize.add(1);
    ++obs::schedCounters().TasksSpawned;
    {
      std::lock_guard<std::mutex> Lock(Frontiers[Idx].Mu);
      Frontiers[Idx].F.push(std::move(T), Pri);
      obs::WorkerDepthGauges::instance().set(Idx, Frontiers[Idx].F.size());
    }
    signalWork(1);
  }

  std::optional<Task> popLocal(size_t Idx) {
    std::lock_guard<std::mutex> Lock(Frontiers[Idx].Mu);
    std::optional<Task> T = Frontiers[Idx].F.pop();
    if (T)
      obs::WorkerDepthGauges::instance().set(Idx, Frontiers[Idx].F.size());
    return T;
  }

  std::optional<Task> popGlobal() {
    std::lock_guard<std::mutex> Lock(Global.Mu);
    if (Global.Q.empty())
      return std::nullopt;
    Task T = std::move(Global.Q.front());
    Global.Q.pop_front();
    return T;
  }

  /// Scans the other workers' frontiers round-robin from our right-hand
  /// neighbour; takes up to stealCount(len, StealBatch) tasks from the
  /// first non-empty victim, with *which* tasks defined by the strategy
  /// (oldest for the DFS deque, random picks, or the top of the priority
  /// heap). The first stolen task is returned for execution, the rest
  /// land on our own frontier with their priorities preserved.
  std::optional<Task> steal(size_t Idx) {
    size_t N = workers();
    for (size_t Off = 1; Off < N; ++Off) {
      size_t Victim = (Idx + Off) % N;
      std::vector<Entry> Batch;
      size_t VictimDepth = 0;
      {
        std::lock_guard<std::mutex> Lock(Frontiers[Victim].Mu);
        Frontier<Task> &F = Frontiers[Victim].F;
        VictimDepth = F.size();
        F.stealInto(stealCount(F.size(), StealBatch), Batch);
        if (!Batch.empty())
          obs::WorkerDepthGauges::instance().set(Victim, F.size());
      }
      if (Batch.empty())
        continue;
      obs::SchedCounters &SC = obs::schedCounters();
      ++SC.Steals;
      SC.StolenTasks += Batch.size();
      SC.StealQueueDepth += VictimDepth;
      obs::TraceRecorder::record(obs::TraceEventKind::Steal, 0,
                                 static_cast<uint32_t>(Batch.size()),
                                 VictimDepth);
      if (Batch.size() > 1) {
        {
          std::lock_guard<std::mutex> Lock(Frontiers[Idx].Mu);
          for (size_t K = 1; K < Batch.size(); ++K)
            Frontiers[Idx].F.push(std::move(Batch[K].T), Batch[K].Pri);
          obs::WorkerDepthGauges::instance().set(Idx,
                                                 Frontiers[Idx].F.size());
        }
        // The surplus is now visible in our frontier: wake enough peers
        // to drain it. A single notify_one here used to park the other
        // sleepers until the next epoch bump — lost parallelism after
        // every batch steal.
        signalWork(Batch.size() - 1);
      }
      return std::move(Batch.front().T);
    }
    return std::nullopt;
  }

  /// Publishes \p NewTasks newly visible tasks: bumps the work epoch (so
  /// no concurrent scanner can sleep through them) and wakes one sleeper
  /// per task — all of them when more than one task appeared at once.
  void signalWork(size_t NewTasks) {
    {
      std::lock_guard<std::mutex> Lock(IdleMu);
      ++WorkEpoch;
    }
    if (NewTasks > 1)
      IdleCv.notify_all();
    else
      IdleCv.notify_one();
  }

  template <typename Body> void workerLoop(size_t Idx, Body &B) {
    Worker W(*this, Idx);
    while (true) {
      // Epoch before scanning: any push after this read bumps the epoch,
      // so the wait below cannot miss it.
      uint64_t Epoch;
      {
        std::lock_guard<std::mutex> Lock(IdleMu);
        Epoch = WorkEpoch;
      }
      std::optional<Task> T = popLocal(Idx);
      if (!T)
        T = popGlobal();
      if (!T)
        T = steal(Idx);
      if (T) {
        B(std::move(*T), W);
        // Decrement only after the body ran: spawns inside the body have
        // already incremented Pending, so it hits zero only at true
        // quiescence. The gauge mirrors Pending with a commutative sub —
        // racing a set(load - 1) against concurrent pushes published
        // stale frontier sizes to /progress and /metrics.
        uint64_t Before = Pending.fetch_sub(1, std::memory_order_acq_rel);
        obs::schedCounters().FrontierSize.sub(1);
        if (Before == 1)
          IdleCv.notify_all();
        continue;
      }
      std::unique_lock<std::mutex> Lock(IdleMu);
      IdleCv.wait(Lock, [&] {
        return WorkEpoch != Epoch ||
               Pending.load(std::memory_order_acquire) == 0;
      });
      if (Pending.load(std::memory_order_acquire) == 0)
        return;
    }
  }

  size_t Workers_;
  /// deque, not vector: WorkerFrontier holds a mutex (immovable), and
  /// deque::emplace_back constructs in place without requiring moves.
  std::deque<WorkerFrontier> Frontiers;
  GlobalQueue Global; ///< injection queue (roots)
  size_t StealBatch;
  /// Tasks queued or executing; zero <=> quiescent.
  std::atomic<uint64_t> Pending{0};
  std::mutex IdleMu;
  std::condition_variable IdleCv;
  uint64_t WorkEpoch = 0; ///< guarded by IdleMu
};

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H
