//===- solver/model.cpp ---------------------------------------------------===//

#include "solver/model.h"

using namespace gillian;

Result<Value> Model::eval(const Expr &E) const {
  Expr Subst = E.substLVars([this](InternedString X) -> Expr {
    const Value *V = lookup(X);
    return V ? Expr::lit(*V) : Expr();
  });
  return Subst.evalClosed();
}

bool Model::satisfies(const PathCondition &PC) const {
  if (PC.isTriviallyFalse())
    return false;
  for (const Expr &C : PC.conjuncts()) {
    Result<Value> R = eval(C);
    if (!R || !R->isBool() || !R->asBool())
      return false;
  }
  return true;
}

std::string Model::toString() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[X, V] : Env) {
    if (!First)
      Out += ", ";
    First = false;
    Out += std::string(X.str()) + " -> " + V.toString();
  }
  return Out + "}";
}
