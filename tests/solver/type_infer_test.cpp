//===- tests/solver/type_infer_test.cpp -----------------------------------===//

#include "solver/type_infer.h"

#include "gil/parser.h"

#include <gtest/gtest.h>

#include <utility>

using namespace gillian;

namespace {

Expr parse(std::string_view S) {
  Result<Expr> R = parseGilExpr(S);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return *R;
}

} // namespace

TEST(TypeInfer, TypeOfConstraintPinsVariable) {
  TypeEnv Env;
  ASSERT_TRUE(inferTypes({parse("typeof(#x) == ^Int")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#x")), GilType::Int);
}

TEST(TypeInfer, EqualityPropagatesTypes) {
  TypeEnv Env;
  ASSERT_TRUE(inferTypes({parse("#x == \"abc\""), parse("#y == #x")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#x")), GilType::Str);
  EXPECT_EQ(Env.lookup(InternedString::get("#y")), GilType::Str);
}

TEST(TypeInfer, OperatorUsagePinsOperands) {
  TypeEnv Env;
  ASSERT_TRUE(inferTypes({parse("slen(#s) == 3"), parse("#b && true"),
                          parse("(#i & 7) == 1")},
                         Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#s")), GilType::Str);
  EXPECT_EQ(Env.lookup(InternedString::get("#b")), GilType::Bool);
  EXPECT_EQ(Env.lookup(InternedString::get("#i")), GilType::Int);
}

TEST(TypeInfer, ConflictIsUnsat) {
  TypeEnv Env;
  EXPECT_FALSE(inferTypes(
      {parse("typeof(#x) == ^Int"), parse("typeof(#x) == ^Str")}, Env));
}

TEST(TypeInfer, ConflictViaEqualityChain) {
  TypeEnv Env;
  EXPECT_FALSE(inferTypes(
      {parse("#x == 1"), parse("#y == \"s\""), parse("#x == #y")}, Env));
}

TEST(TypeInfer, FixpointThroughChains) {
  // Type information must flow #a -> #b -> #c regardless of order.
  TypeEnv Env;
  ASSERT_TRUE(inferTypes(
      {parse("#c == #b"), parse("#b == #a"), parse("typeof(#a) == ^Num")},
      Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#c")), GilType::Num);
}

TEST(TypeInfer, StaticTypeOfCompounds) {
  TypeEnv Env;
  Env.assign(InternedString::get("#i"), GilType::Int);
  Env.assign(InternedString::get("#n"), GilType::Num);
  EXPECT_EQ(staticType(parse("#i + 1"), Env), GilType::Int);
  EXPECT_EQ(staticType(parse("#i + #n"), Env), GilType::Num);
  EXPECT_EQ(staticType(parse("#i < 3"), Env), GilType::Bool);
  EXPECT_EQ(staticType(parse("[#i]"), Env), GilType::List);
  EXPECT_EQ(staticType(parse("#unknown"), Env), std::nullopt);
}

TEST(TypeInfer, AbsorbConjunctAccumulates) {
  TypeEnv Env;
  absorbConjunct(parse("typeof(#x) == ^Int"), Env);
  absorbConjunct(parse("#y == #x + 1"), Env);
  EXPECT_EQ(Env.lookup(InternedString::get("#x")), GilType::Int);
  EXPECT_EQ(Env.lookup(InternedString::get("#y")), GilType::Int);
}

TEST(TypeInfer, HashReflectsContentNotOrder) {
  TypeEnv A, B;
  A.assign(InternedString::get("#x"), GilType::Int);
  A.assign(InternedString::get("#y"), GilType::Str);
  B.assign(InternedString::get("#y"), GilType::Str);
  B.assign(InternedString::get("#x"), GilType::Int);
  EXPECT_EQ(A.hash(), B.hash());
  TypeEnv C;
  C.assign(InternedString::get("#x"), GilType::Int);
  EXPECT_NE(A.hash(), C.hash());
}

TEST(TypeInfer, HashDistinguishesSwappedTypings) {
  // Regression: {#x:Int,#y:Num} and {#x:Num,#y:Int} used to collide —
  // XOR-folding separately-mixed id and type washes the pairing out, and
  // the solver's memo layers key on this hash. Each (variable, type) pair
  // must be mixed jointly.
  TypeEnv A, B;
  A.assign(InternedString::get("#x"), GilType::Int);
  A.assign(InternedString::get("#y"), GilType::Num);
  B.assign(InternedString::get("#x"), GilType::Num);
  B.assign(InternedString::get("#y"), GilType::Int);
  EXPECT_NE(A.hash(), B.hash());

  // Same shape, three ways around a cycle of three variables.
  TypeEnv C, D;
  for (auto [V, T] : {std::pair{"#a", GilType::Int},
                      {"#b", GilType::Num},
                      {"#c", GilType::Str}})
    C.assign(InternedString::get(V), T);
  for (auto [V, T] : {std::pair{"#a", GilType::Str},
                      {"#b", GilType::Int},
                      {"#c", GilType::Num}})
    D.assign(InternedString::get(V), T);
  EXPECT_NE(C.hash(), D.hash());
}

TEST(TypeInfer, MixedIntNumComparisonDoesNotPin) {
  // GIL allows ordering comparisons across Int and Num (3 < 3.5), so a
  // comparison with a Num side must not force the other side to Num — and
  // must not conflict with the other side independently being Int.
  TypeEnv Env;
  ASSERT_TRUE(inferTypes({parse("typeof(#n) == ^Num"), parse("#i < #n"),
                          parse("#n <= #j")},
                         Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#n")), GilType::Num);
  EXPECT_EQ(Env.lookup(InternedString::get("#i")), std::nullopt)
      << "comparison operands keep their own numeric type";
  EXPECT_EQ(Env.lookup(InternedString::get("#j")), std::nullopt);

  TypeEnv Env2;
  ASSERT_TRUE(inferTypes({parse("typeof(#n) == ^Num"),
                          parse("typeof(#i) == ^Int"), parse("#i < #n")},
                         Env2))
      << "an Int/Num comparison is not a type conflict";
  EXPECT_EQ(Env2.lookup(InternedString::get("#i")), GilType::Int);
}

TEST(TypeInfer, MixedIntNumArithmeticDoesNotPinSibling) {
  // #i + #m with Int #i stays untyped: the sum may be Num when #m is.
  TypeEnv Env;
  ASSERT_TRUE(inferTypes(
      {parse("typeof(#i) == ^Int"), parse("#x == #i + #m")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#m")), std::nullopt);
  EXPECT_EQ(Env.lookup(InternedString::get("#x")), std::nullopt);
}

TEST(TypeInfer, StringComparisonPropagatesAcrossSides) {
  TypeEnv Env;
  ASSERT_TRUE(inferTypes({parse("#a < \"abc\""), parse("#b <= #a")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#a")), GilType::Str);
  EXPECT_EQ(Env.lookup(InternedString::get("#b")), GilType::Str);
}

TEST(TypeInfer, StringIndexingPinsOperands) {
  // s_nth(S, I): S must be Str, I must be Int, and the result is Str.
  TypeEnv Env;
  ASSERT_TRUE(
      inferTypes({parse("s_nth(#s, #i) == #c"), parse("0 <= #i")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#s")), GilType::Str);
  EXPECT_EQ(Env.lookup(InternedString::get("#i")), GilType::Int);
  EXPECT_EQ(Env.lookup(InternedString::get("#c")), GilType::Str)
      << "the 1-character result types the equated variable";
}

TEST(TypeInfer, StringIndexingConflictsAreUnsat) {
  TypeEnv Env;
  EXPECT_FALSE(inferTypes(
      {parse("typeof(#i) == ^Str"), parse("s_nth(#s, #i) == \"a\"")}, Env))
      << "a Str-typed index contradicts s_nth's Int operand";
  TypeEnv Env2;
  EXPECT_FALSE(inferTypes(
      {parse("typeof(#s) == ^List"), parse("s_nth(#s, 0) == \"a\"")}, Env2));
}

TEST(TypeInfer, NestedConjunction) {
  TypeEnv Env;
  ASSERT_TRUE(inferTypes(
      {parse("(typeof(#x) == ^Int) && (typeof(#y) == ^Bool)")}, Env));
  EXPECT_EQ(Env.lookup(InternedString::get("#x")), GilType::Int);
  EXPECT_EQ(Env.lookup(InternedString::get("#y")), GilType::Bool);
}
