//===- targets/buckets_mjs.h - Buckets-style MJS library -------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4.1 evaluation workload: a Buckets.js-style data-structure library
/// written in MJS, with symbolic test suites mirroring the Table 1 rows
/// (arrays, bag, bst, dict, heap, llist, multi-dict, priority queue,
/// queue, set, stack). Each suite is self-contained: concatenate
/// bucketsLibrary() with the suite source and run every `test_*`
/// procedure symbolically.
///
/// bucketsBuggyLibrary() seeds the two defects our suites re-detect
/// (§4.1 found two known bugs in Buckets.js): an off-by-one in the linked
/// list's indexOf and a wrong-child comparison in the heap's sift-down.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_TARGETS_BUCKETS_MJS_H
#define GILLIAN_TARGETS_BUCKETS_MJS_H

#include <string>
#include <string_view>
#include <vector>

namespace gillian::targets {

/// The full library (MJS source).
std::string_view bucketsLibrary();

/// The library with the two seeded §4.1-style defects.
std::string_view bucketsBuggyLibrary();

struct BucketsSuite {
  std::string_view Name;   ///< Table 1 row name ("llist", "bst", ...)
  std::string_view Source; ///< MJS source defining the test_* procedures
};

/// One suite per Table 1 row.
const std::vector<BucketsSuite> &bucketsSuites();

} // namespace gillian::targets

#endif // GILLIAN_TARGETS_BUCKETS_MJS_H
