//===- support/lexer.cpp -------------------------------------------------===//

#include "support/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

using namespace gillian;

namespace {

/// Multi-character punctuators, longest first so maximal munch works by
/// scanning this table in order.
constexpr std::array<std::string_view, 23> MultiPuncts = {
    "===", "!==", "@+", "^^", ":=", "==", "!=", "<=", ">=", "&&", "||",
    "->",  "=>",  "++", "--", "<<", ">>", "::", "+=", "-=", "*=", "/=",
    "%="};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    while (true) {
      skipTrivia();
      Token T = next();
      bool Done = T.is(TokenKind::Eof) || T.is(TokenKind::Error);
      Toks.push_back(std::move(T));
      if (Done)
        break;
    }
    return Toks;
  }

private:
  std::string_view Src;
  size_t Pos = 0;
  int Line = 1, Col = 1;

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (!atEnd()) {
          advance();
          advance();
        }
        continue;
      }
      break;
    }
  }

  Token make(TokenKind K, std::string Text, int L, int C) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = L;
    T.Col = C;
    return T;
  }

  Token next() {
    int L = Line, C = Col;
    if (atEnd())
      return make(TokenKind::Eof, "", L, C);

    char Ch = peek();

    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_' ||
        Ch == '$' || Ch == '#')
      return lexIdent(L, C);
    if (std::isdigit(static_cast<unsigned char>(Ch)))
      return lexNumber(L, C);
    if (Ch == '"')
      return lexString(L, C);
    return lexPunct(L, C);
  }

  Token lexIdent(int L, int C) {
    size_t Start = Pos;
    // '$' / '#' prefixes mark symbols and logical variables in textual GIL.
    advance();
    while (!atEnd()) {
      char Ch = peek();
      if (std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
          Ch == '$')
        advance();
      else
        break;
    }
    return make(TokenKind::Ident, std::string(Src.substr(Start, Pos - Start)),
                L, C);
  }

  Token lexNumber(int L, int C) {
    size_t Start = Pos;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    bool IsFloat = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      advance();
      if (peek() == '+' || peek() == '-')
        advance();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        IsFloat = true;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      } else {
        Pos = Save; // 'e' starts an identifier, not an exponent
      }
    }
    std::string Spelling(Src.substr(Start, Pos - Start));
    Token T = make(IsFloat ? TokenKind::Float : TokenKind::Int, Spelling, L, C);
    if (IsFloat)
      T.FloatVal = std::strtod(Spelling.c_str(), nullptr);
    else
      T.IntVal = std::strtoll(Spelling.c_str(), nullptr, 10);
    return T;
  }

  Token lexString(int L, int C) {
    advance(); // opening quote
    std::string Value;
    while (!atEnd() && peek() != '"') {
      char Ch = advance();
      if (Ch != '\\') {
        Value.push_back(Ch);
        continue;
      }
      if (atEnd())
        break;
      char Esc = advance();
      switch (Esc) {
      case 'n': Value.push_back('\n'); break;
      case 't': Value.push_back('\t'); break;
      case 'r': Value.push_back('\r'); break;
      case '0': Value.push_back('\0'); break;
      case '\\': Value.push_back('\\'); break;
      case '"': Value.push_back('"'); break;
      default:
        return make(TokenKind::Error,
                    std::string("unknown escape sequence '\\") + Esc + "'", L,
                    C);
      }
    }
    if (atEnd())
      return make(TokenKind::Error, "unterminated string literal", L, C);
    advance(); // closing quote
    return make(TokenKind::String, std::move(Value), L, C);
  }

  Token lexPunct(int L, int C) {
    std::string_view Rest = Src.substr(Pos);
    for (std::string_view P : MultiPuncts) {
      if (Rest.substr(0, P.size()) == P) {
        for (size_t I = 0; I < P.size(); ++I)
          advance();
        return make(TokenKind::Punct, std::string(P), L, C);
      }
    }
    char Ch = advance();
    constexpr std::string_view Singles = "+-*/%<>=!&|(){}[],;:.?@~^";
    if (Singles.find(Ch) != std::string_view::npos)
      return make(TokenKind::Punct, std::string(1, Ch), L, C);
    return make(TokenKind::Error,
                std::string("unexpected character '") + Ch + "'", L, C);
  }
};

} // namespace

std::vector<Token> gillian::tokenize(std::string_view Source) {
  return Lexer(Source).run();
}
