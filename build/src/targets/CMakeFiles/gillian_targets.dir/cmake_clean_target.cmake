file(REMOVE_RECURSE
  "libgillian_targets.a"
)
