//===- obs/journal/journal.h - Lossless execution journal ------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-worker, lock-free, *lossless* structured execution journal
/// (DESIGN.md §4i). Unlike the wrapping TraceRing flight recorder, the
/// journal keeps every event of a run: one compact record per branch
/// decision (site, taken/pruned side, PC-conjunct delta, solver verdict
/// and the layer that decided it, solver wall), per memory action, per
/// summary replay splice, per frontier spawn (with the strategy priority),
/// and per path termination (outcome, budget kind, cumulative steps).
///
/// Storage is per-thread chunked append: the emitting thread writes the
/// event slot and then publishes it with one release store of the chunk
/// count; readers (the /tree endpoint, the capture-at-exit writers) take
/// the chunk registry lock and acquire-load each count, so a mid-run
/// snapshot sees a consistent prefix of every thread's events and never a
/// torn record. Chunks are never recycled while enabled — that is what
/// makes the journal lossless where the trace ring wraps.
///
/// Path identity replicates the scheduler's branch-trace PathId scheme
/// exactly (exploration_scheduler.h): a step with k >= 2 outputs —
/// counting finished paths and live successors, in production order —
/// allocates k fresh node ids for its outputs; a single-output step keeps
/// its node id. Lexicographic branch traces are therefore identical
/// across worker counts and strategies, which is what lets
/// `gillian-inspect diff` align two journals path-by-path.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_JOURNAL_JOURNAL_H
#define GILLIAN_OBS_JOURNAL_JOURNAL_H

#include "obs/counters.h"

#include <atomic>
#include <cstdint>
#include <tuple>
#include <vector>

namespace gillian::obs::journal {

/// Event kinds. The numeric order is part of the canonical event order
/// (Root sorts before the node's decisions, PathEnd after).
enum class EventKind : uint8_t {
  Root = 0,    ///< a fresh exploration root (one per makeInitialConfig)
  Branch = 1,  ///< one side of a branch decision (IfGoto / action / replay)
  Action = 2,  ///< one memory-action execution
  Summary = 3, ///< a summary-cache consult that armed a replay
  Spawn = 4,   ///< a successor handed to the frontier, with its priority
  PathEnd = 5, ///< a path termination (outcome + budget kind)
};

/// Which solver layer produced the verdict of a branch decision — the
/// provenance `gillian-inspect why` and `diff` report. Async marks
/// queries routed through the batching service, whose in-layer decision
/// happens on a service thread and is not attributable to the caller.
enum class VerdictLayer : uint8_t {
  None = 0, ///< no solver query ran (trivially-false prune, concrete run)
  Trivial = 1,
  Cache = 2,
  Syntactic = 3,
  Native = 4,
  Incremental = 5,
  Z3 = 6,
  Async = 7,
};

const char *verdictLayerName(VerdictLayer L);

/// Verdict byte of a branch decision (packed with the layer into Event::C).
enum class Verdict : uint8_t { None = 0, Sat = 1, Unsat = 2, Unknown = 3 };

const char *verdictName(Verdict V);

/// Which budget cut a Bound path (Event::B of PathEnd events).
enum class BudgetKind : uint8_t {
  None = 0,
  Steps = 1,
  Paths = 2,
  Loop = 3,
  Depth = 4,
};

const char *budgetKindName(BudgetKind B);

/// Path outcome (Event::A of PathEnd events). Mirrors the engine's
/// OutcomeKind value-for-value so the interpreter can cast directly; the
/// obs layer must not include engine headers.
enum class PathOutcome : uint8_t {
  Return = 0,
  Error = 1,
  Vanish = 2,
  Bound = 3,
};

const char *pathOutcomeName(uint8_t K);

/// One journal record. 40 bytes of payload; field meaning depends on Kind:
///
///   Kind     Path        Aux             Wall      Proc/Cmd      X        A          B        C
///   Root     root id     0               0         entry proc    0        0          0        0
///   Branch   parent id   child id or 0   solver ns decision site PC delta side idx   taken    verdict<<4|layer
///   Action   node id     child base or 0 0         action site   act name n branches n errors 0
///   Summary  node id     0               0         call site     0        hit        0        0
///   Spawn    node id     priority        0         current site  0        0          0        0
///   PathEnd  node id     0               0         end site      0        outcome    budget   0
///
/// Proc (and X of Action events) hold interned-string ids in the live
/// journal and string-table indices in a JournalData read from a file.
struct Event {
  uint64_t Path = 0;
  uint64_t Aux = 0;
  uint64_t WallNs = 0;
  uint32_t Step = 0; ///< cumulative interpreter steps from the root
  uint32_t Proc = 0;
  uint32_t Cmd = 0;
  uint32_t X = 0;
  uint8_t Kind = 0;
  uint8_t A = 0;
  uint8_t B = 0;
  uint8_t C = 0;
};

/// Canonical event order: by (path node, step, kind, site, production
/// index, ...). Within one node this reconstructs emission order (replay
/// can emit several decisions under one step — their loop-free sites
/// strictly increase); across nodes it is allocation order. The full-field
/// tie-break makes snapshot() a deterministic function of the event
/// multiset plus the node-id assignment, which is what makes the
/// serialized file byte-stable for sequential runs.
inline bool canonicalLess(const Event &L, const Event &R) {
  return std::tie(L.Path, L.Step, L.Kind, L.Proc, L.Cmd, L.A, L.Aux, L.B,
                  L.C, L.X, L.WallNs) <
         std::tie(R.Path, R.Step, R.Kind, R.Proc, R.Cmd, R.A, R.Aux, R.B,
                  R.C, R.X, R.WallNs);
}

/// Journal self-accounting, exported on /metrics as gillian_journal_* and
/// in every bench JSON's obs.journal block.
struct JournalStats : CounterSet<JournalStats> {
  obs::Counter Events{*this, "events", "journal"};
  obs::Counter BytesWritten{*this, "bytes_written", "journal"};
  obs::Counter FilesWritten{*this, "files_written", "journal"};
  obs::Gauge Enabled{*this, "enabled", "journal"};
  obs::Gauge Chunks{*this, "chunks", "journal"};
};

JournalStats &journalStats();

namespace detail {
extern std::atomic<bool> EnabledFlag;
} // namespace detail

/// One relaxed load: the gate every emission site checks first.
inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// Turns recording on/off. Does not clear recorded events (so a bench can
/// pause around a calibration run); reset() clears.
void setEnabled(bool On);

/// Drops every recorded event and restarts node-id allocation at 1. Must
/// only be called at quiescent points (no exploration running) — the
/// bench cold-start / test set-up boundaries.
void reset();

/// Allocates \p N consecutive path-node ids (the k children of a
/// multi-output step); returns the first. Thread-safe.
uint64_t allocPathIds(uint32_t N);

/// Appends \p E to the calling thread's chunk. Callers gate on enabled().
void emit(const Event &E);

/// Lifetime count of emitted events (the drop-guard reference: a lossless
/// journal has snapshot().size() == eventsEmitted() at quiescence).
uint64_t eventsEmitted();

/// A consistent copy of every published event, in canonical order. Safe
/// to call mid-run (sees a prefix of each thread's events).
std::vector<Event> snapshot();

//===----------------------------------------------------------------------===//
// Emission helpers (the interpreter/scheduler/solver call these)
//===----------------------------------------------------------------------===//

inline void emitRoot(uint64_t Path, uint32_t EntryProc) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::Root);
  E.Path = Path;
  E.Proc = EntryProc;
  emit(E);
}

inline void emitBranch(uint64_t Path, uint32_t Step, uint32_t Proc,
                       uint32_t Cmd, uint8_t Side, bool Taken,
                       Verdict V, VerdictLayer L, uint32_t PcDelta,
                       uint64_t WallNs, uint64_t Child) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::Branch);
  E.Path = Path;
  E.Aux = Child;
  E.WallNs = WallNs;
  E.Step = Step;
  E.Proc = Proc;
  E.Cmd = Cmd;
  E.X = PcDelta;
  E.A = Side;
  E.B = Taken ? 1 : 0;
  E.C = static_cast<uint8_t>((static_cast<uint8_t>(V) << 4) |
                             static_cast<uint8_t>(L));
  emit(E);
}

inline void emitAction(uint64_t Path, uint32_t Step, uint32_t Proc,
                       uint32_t Cmd, uint32_t ActionName, uint32_t NBranches,
                       uint32_t NErrors, uint64_t ChildBase) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::Action);
  E.Path = Path;
  E.Aux = ChildBase;
  E.Step = Step;
  E.Proc = Proc;
  E.Cmd = Cmd;
  E.X = ActionName;
  E.A = static_cast<uint8_t>(NBranches > 255 ? 255 : NBranches);
  E.B = static_cast<uint8_t>(NErrors > 255 ? 255 : NErrors);
  emit(E);
}

inline void emitSummary(uint64_t Path, uint32_t Step, uint32_t Proc,
                        uint32_t Cmd, bool Hit) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::Summary);
  E.Path = Path;
  E.Step = Step;
  E.Proc = Proc;
  E.Cmd = Cmd;
  E.A = Hit ? 1 : 0;
  emit(E);
}

inline void emitSpawn(uint64_t Path, uint32_t Step, uint32_t Proc,
                      uint32_t Cmd, uint64_t Priority) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::Spawn);
  E.Path = Path;
  E.Aux = Priority;
  E.Step = Step;
  E.Proc = Proc;
  E.Cmd = Cmd;
  emit(E);
}

inline void emitPathEnd(uint64_t Path, uint32_t Step, uint32_t Proc,
                        uint32_t Cmd, uint8_t Outcome, BudgetKind Budget) {
  Event E;
  E.Kind = static_cast<uint8_t>(EventKind::PathEnd);
  E.Path = Path;
  E.Step = Step;
  E.Proc = Proc;
  E.Cmd = Cmd;
  E.A = Outcome;
  E.B = static_cast<uint8_t>(Budget);
  emit(E);
}

//===----------------------------------------------------------------------===//
// Solver verdict-layer attribution
//===----------------------------------------------------------------------===//

/// Per-thread attribution published by the solver: a monotone query
/// sequence number, cumulative wall time, and the layer/verdict of the
/// last decided query. The interpreter snapshots (Seq, CumWallNs) around
/// each branch-feasibility check; a changed Seq means a query ran and
/// (Layer, LastVerdict) describe its provenance. Same thread-local
/// pattern as obs::QueryOriginScope.
struct QueryAttribution {
  uint64_t Seq = 0;
  uint64_t CumWallNs = 0;
  uint8_t Layer = 0;   ///< VerdictLayer of the last decided query
  uint8_t Verdict = 0; ///< Verdict of the last decided query
};

QueryAttribution &queryAttribution();

/// Called by the solver at each decisive point; the last note before the
/// query returns is the deciding layer (for sliced queries: the layer of
/// the last decisive sub-query — the refuter, for Unsat).
inline void noteLayer(VerdictLayer L) {
  queryAttribution().Layer = static_cast<uint8_t>(L);
}

/// Writes the journal stats block (enabled/events/captured/lossless/
/// bytes_written/files_written) as a JSON object string — the `journal`
/// block of every bench JSON.
std::string statsJson();

/// GILLIAN_JOURNAL=path: enables the journal now and registers an atexit
/// writer, so ctest suite runs can capture journals the way GILLIAN_SERVE
/// starts the introspection server. Checked once per process.
void maybeEnableEnvJournal();

} // namespace gillian::obs::journal

#endif // GILLIAN_OBS_JOURNAL_JOURNAL_H
