//===- support/cow_map.h - Copy-on-write ordered map -----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A copy-on-write wrapper over std::map. Symbolic execution branches
/// duplicate whole states; CowMap makes those duplications O(1) by sharing
/// the underlying map until one of the copies is written to.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_SUPPORT_COW_MAP_H
#define GILLIAN_SUPPORT_COW_MAP_H

#include <cassert>
#include <map>
#include <memory>
#include <utility>

namespace gillian {

/// Ordered map with O(1) copies and copy-on-write mutation.
///
/// Reads never copy. The first mutation after a copy clones the underlying
/// std::map; subsequent mutations on the same (unshared) instance are as
/// cheap as on a plain std::map.
template <typename K, typename V, typename Cmp = std::less<K>> class CowMap {
  using MapT = std::map<K, V, Cmp>;

public:
  using const_iterator = typename MapT::const_iterator;
  using value_type = typename MapT::value_type;

  CowMap() : Impl(std::make_shared<MapT>()) {}

  /// Returns the value bound to \p Key, or null if absent. The pointer is
  /// invalidated by any mutation of this map.
  const V *lookup(const K &Key) const {
    auto It = Impl->find(Key);
    return It == Impl->end() ? nullptr : &It->second;
  }

  bool contains(const K &Key) const { return Impl->count(Key) != 0; }
  size_t size() const { return Impl->size(); }
  bool empty() const { return Impl->empty(); }

  /// Binds \p Key to \p Val, overwriting any previous binding.
  void set(const K &Key, V Val) {
    detach();
    (*Impl)[Key] = std::move(Val);
  }

  /// Removes the binding for \p Key if present; returns whether it was.
  bool erase(const K &Key) {
    if (!contains(Key))
      return false;
    detach();
    Impl->erase(Key);
    return true;
  }

  void clear() { Impl = std::make_shared<MapT>(); }

  const_iterator begin() const { return Impl->begin(); }
  const_iterator end() const { return Impl->end(); }

  /// Structural equality (element-wise); fast path when storage is shared.
  friend bool operator==(const CowMap &A, const CowMap &B) {
    return A.Impl == B.Impl || *A.Impl == *B.Impl;
  }

  /// True if this instance currently shares storage with another copy.
  /// Exposed for tests of the copy-on-write behaviour.
  bool sharesStorage() const { return Impl.use_count() > 1; }

private:
  void detach() {
    if (Impl.use_count() > 1)
      Impl = std::make_shared<MapT>(*Impl);
  }

  std::shared_ptr<MapT> Impl;
};

} // namespace gillian

#endif // GILLIAN_SUPPORT_COW_MAP_H
