file(REMOVE_RECURSE
  "libgillian_engine.a"
)
