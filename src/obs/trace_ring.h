//===- obs/trace_ring.h - Per-thread flight recorder -----------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder: a fixed-size ring buffer of structured events per
/// thread (each ring has exactly one producer — its owning thread),
/// drained either at quiescent points (after the exploration pool has
/// joined, or at bench exit) or *live* by the introspection server's
/// /trace endpoint; a per-ring mutex makes the live drain race-free.
///
/// Events cover the engine-level happenings a perf investigation needs to
/// see in order: branch taken, path finished, work steal, incremental
/// session reset / eviction, span begin/end. Each is 24 bytes — a
/// timestamp, the owning thread's dense id, a kind, and two small
/// arguments whose meaning is per-kind (see TraceEventKind).
///
/// Wrap semantics: when a ring is full the OLDEST events are overwritten —
/// a flight recorder keeps the newest history, because the interesting
/// part of a hang or a perf cliff is its tail.
///
/// Lifecycle: rings are owned by the global TraceRecorder, not by the
/// thread (pool threads die at every explore() quiescence). A thread
/// acquires a ring on first record and returns it to a free list on exit;
/// the events survive and are picked up by the next drain. A reused ring
/// may therefore interleave events of successive (never concurrent)
/// threads — each event carries its thread id, so exporters stay correct.
///
/// Compile-time off switch: building with -DGILLIAN_OBS_NO_TRACE compiles
/// every record site to an empty inline function (the "compile-time no-op
/// sinks" of ISSUE 4); the default build gates on one relaxed atomic load
/// (ObsConfig::trace(), off unless a driver enables it).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_TRACE_RING_H
#define GILLIAN_OBS_TRACE_RING_H

#include "obs/obs_config.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace gillian::obs {

enum class TraceEventKind : uint8_t {
  SpanBegin,    ///< Arg0 = SpanKind
  SpanEnd,      ///< Arg0 = SpanKind
  BranchTaken,  ///< A = number of successors produced by the step
  PathFinished, ///< Arg0 = OutcomeKind
  Steal,        ///< A = stolen batch size, B = victim queue depth before
  SessionReset, ///< A = frames discarded by the incremental session
  CacheEvict,   ///< incremental-session LRU eviction; A = pool size
};
const char *traceEventKindName(TraceEventKind K);

struct TraceEvent {
  uint64_t TsNs; ///< steady-clock ns since the recorder was enabled
  uint64_t B;    ///< per-kind payload (see TraceEventKind)
  uint32_t Tid;  ///< dense per-thread id (not the OS tid)
  uint32_t A;    ///< per-kind payload
  TraceEventKind Kind;
  uint8_t Arg0; ///< per-kind payload (SpanKind / OutcomeKind)
};

/// One single-producer ring. Writes are owner-thread-only; drains may now
/// happen *live* (the introspection server's /trace endpoint scrapes while
/// workers are recording), so each ring carries its own mutex. record()
/// takes it uncontended in the common case — a drain holds any given ring's
/// lock only for the microseconds its copy-out takes, and the lock is only
/// ever reached when tracing is enabled (the ObsConfig::trace() gate sits
/// in front of every record site).
class TraceRing {
public:
  explicit TraceRing(size_t CapacityPow2)
      : Buf(CapacityPow2), Mask(CapacityPow2 - 1) {}

  void record(const TraceEvent &E) {
    std::lock_guard<std::mutex> Lock(Mu);
    Buf[Head & Mask] = E;
    ++Head;
  }

  /// Appends the ring's events (oldest first, newest last) to \p Out and
  /// empties the ring. Safe against a concurrent producer.
  void drainInto(std::vector<TraceEvent> &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    uint64_t N = Head > Buf.size() ? Buf.size() : Head;
    uint64_t Start = Head - N;
    for (uint64_t I = 0; I < N; ++I)
      Out.push_back(Buf[(Start + I) & Mask]);
    Head = 0;
  }

  /// Events currently held (≤ capacity).
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Head > Buf.size() ? Buf.size() : static_cast<size_t>(Head);
  }
  size_t capacity() const { return Buf.size(); }
  /// Total events ever recorded (including overwritten ones).
  uint64_t recorded() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Head;
  }

private:
  mutable std::mutex Mu;
  std::vector<TraceEvent> Buf;
  uint64_t Mask;
  uint64_t Head = 0;
};

/// The global registry of rings plus the record entry points.
class TraceRecorder {
public:
  static TraceRecorder &instance();

  /// Switches tracing on (fresh epoch; existing undrained events are
  /// kept) / off. Ring capacity comes from ObsConfig.
  void enable();
  void disable();

  /// Records one event into the calling thread's ring. No-op when tracing
  /// is disabled.
#ifdef GILLIAN_OBS_NO_TRACE
  static void record(TraceEventKind, uint8_t = 0, uint32_t = 0,
                     uint64_t = 0) {}
#else
  static void record(TraceEventKind K, uint8_t Arg0 = 0, uint32_t A = 0,
                     uint64_t B = 0) {
    if (!ObsConfig::trace())
      return;
    instance().recordImpl(K, Arg0, A, B);
  }
#endif

  /// Drains every ring into one timestamp-sorted vector. Call only at
  /// quiescent points (no exploration in flight).
  std::vector<TraceEvent> drain();

  /// Drops all buffered events and per-thread rings.
  void reset();

private:
  struct ThreadSlot;
  void recordImpl(TraceEventKind K, uint8_t Arg0, uint32_t A, uint64_t B);
  ThreadSlot *acquireSlot();
  void releaseSlot(ThreadSlot *S);

  /// A ring plus the dense id of the thread currently (or last) writing
  /// it. Owned by the recorder; handed to at most one live thread at a
  /// time via the free list.
  struct ThreadSlot {
    std::unique_ptr<TraceRing> Ring;
    uint32_t Tid = 0;
  };

  /// RAII holder living in a thread_local: returns the slot on thread
  /// exit so pool threads recycle rings instead of leaking one per
  /// explore() call.
  struct SlotLease {
    TraceRecorder *R = nullptr;
    ThreadSlot *S = nullptr;
    ~SlotLease() {
      if (R && S)
        R->releaseSlot(S);
    }
  };

  std::mutex Mu; ///< guards Slots/Free/NextTid; never held while recording
  std::vector<std::unique_ptr<ThreadSlot>> Slots;
  std::vector<ThreadSlot *> Free;
  uint32_t NextTid = 0;
  std::atomic<uint64_t> EpochNs{0}; ///< steady-clock origin of timestamps

  friend struct SlotLease;
};

} // namespace gillian::obs

#endif // GILLIAN_OBS_TRACE_RING_H
