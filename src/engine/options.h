//===- engine/options.h - Engine configuration -----------------*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knobs for the symbolic execution engine. The defaults correspond to the
/// paper's Gillian configuration; legacyJaVerT2() reconstructs the
/// JaVerT 2.0 baseline of Table 1 (no expression simplification, no solver
/// result caching — the two engine improvements §4.1 credits for the ~2x
/// speedup).
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_OPTIONS_H
#define GILLIAN_ENGINE_OPTIONS_H

#include "engine/scheduler/scheduler_options.h"
#include "solver/solver.h"

#include <cstdint>

namespace gillian {

struct EngineOptions {
  /// Simplify store expressions and path-condition conjuncts as they are
  /// built (§2.3 [EvalExpr]).
  bool UseSimplifier = true;
  /// Use the process-wide simplification memo.
  bool UseSimplifierCache = true;

  SolverOptions Solver;

  /// Parallel exploration (engine/scheduler/). Workers = 1 keeps the
  /// classic sequential depth-first worklist, bit-identical to the
  /// pre-scheduler engine.
  SchedulerOptions Scheduler;

  /// Memoise terminal symbolic states of eligible (loop-free, heap-free)
  /// procedures in the process-wide ProcedureSummaryStore and replay them
  /// at call sites instead of re-executing the body (DESIGN.md §4g).
  /// Replay is result- and stats-identical to re-execution by
  /// construction; only solver effort differs.
  bool UseSummaries = true;
  /// Recording caps: a procedure whose execution tree exceeds either cap
  /// is negative-cached and always executed for real.
  uint32_t SummaryMaxNodes = 512;
  uint64_t SummaryMaxSteps = 4096;

  /// Bound on back-jumps (loop iterations) per path — the paper's
  /// "unrolling loops up to a bound".
  uint32_t LoopBound = 32;
  /// Global step budget per symbolic run (0 = unlimited).
  uint64_t MaxSteps = 50'000'000;
  /// Bound on explored paths per run (0 = unlimited).
  uint64_t MaxPaths = 0;
  /// Call-stack depth bound.
  uint32_t MaxCallDepth = 256;

  /// The JaVerT 2.0 baseline: basic simplification stays (every symbolic
  /// engine folds constants), but the Gillian improvements §4.1 credits
  /// for the ~2x speedup are off — the simplification memo, solver result
  /// caching, and query slicing (every undecided query goes to the SMT
  /// solver whole, every time).
  static EngineOptions legacyJaVerT2() {
    EngineOptions O;
    O.UseSimplifierCache = false;
    O.UseSummaries = false; // summaries are a Gillian-side improvement
    O.Solver = SolverOptions::legacyJaVerT2();
    return O;
  }
};

} // namespace gillian

#endif // GILLIAN_ENGINE_OPTIONS_H
