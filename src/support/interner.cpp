//===- support/interner.cpp ----------------------------------------------===//

#include "support/interner.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace gillian;

namespace {

/// Backing storage for the process-wide interner. A deque keeps string
/// storage stable so returned string_views never dangle.
struct InternerImpl {
  std::mutex Mu;
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, uint32_t> Ids;

  InternerImpl() {
    Storage.emplace_back("");
    Ids.emplace(Storage.back(), 0);
  }

  uint32_t intern(std::string_view S) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    Storage.emplace_back(S);
    uint32_t Id = static_cast<uint32_t>(Storage.size() - 1);
    Ids.emplace(Storage.back(), Id);
    return Id;
  }

  std::string_view spelling(uint32_t Id) {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id < Storage.size() && "invalid interned string id");
    return Storage[Id];
  }
};

InternerImpl &impl() {
  static InternerImpl I;
  return I;
}

} // namespace

InternedString InternedString::get(std::string_view S) {
  InternedString R;
  R.Id = impl().intern(S);
  return R;
}

std::string_view InternedString::str() const { return impl().spelling(Id); }
