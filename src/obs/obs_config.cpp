//===- obs/obs_config.cpp -------------------------------------------------===//

#include "obs/obs_config.h"

using namespace gillian::obs;

ObsConfig::State &ObsConfig::S() {
  static State St;
  return St;
}

void ObsConfig::set(const ObsOptions &O) {
  State &St = S();
  St.Timing.store(O.Timing, std::memory_order_relaxed);
  St.DetailedSpans.store(O.DetailedSpans, std::memory_order_relaxed);
  St.Trace.store(O.Trace, std::memory_order_relaxed);
  St.ActionCounters.store(O.ActionCounters, std::memory_order_relaxed);
  St.Coverage.store(O.Coverage, std::memory_order_relaxed);
  size_t Cap = O.TraceRingCapacity ? O.TraceRingCapacity : 1;
  // Round up to a power of two so ring indices can mask instead of mod.
  size_t P = 1;
  while (P < Cap && P < (size_t(1) << 20))
    P <<= 1;
  St.TraceRingCapacity.store(P, std::memory_order_relaxed);
}

ObsOptions ObsConfig::get() {
  ObsOptions O;
  O.Timing = timing();
  O.DetailedSpans = detailedSpans();
  O.Trace = trace();
  O.ActionCounters = actionCounters();
  O.Coverage = coverage();
  O.TraceRingCapacity = traceRingCapacity();
  return O;
}
