//===- solver/type_infer.cpp ----------------------------------------------===//

#include "solver/type_infer.h"

using namespace gillian;

std::optional<GilType> gillian::staticType(const Expr &E, const TypeEnv &Env) {
  if (!E)
    return std::nullopt;
  switch (E.kind()) {
  case ExprKind::Lit:
    return E.litValue().type();
  case ExprKind::PVar:
    return std::nullopt; // program variables never appear in pure formulae
  case ExprKind::LVar:
    return Env.lookup(E.varName());
  case ExprKind::List:
    return GilType::List;
  case ExprKind::UnOp:
    switch (E.unOpKind()) {
    case UnOpKind::Neg: {
      auto T = staticType(E.child(0), Env);
      if (T == GilType::Int || T == GilType::Num)
        return T;
      return std::nullopt;
    }
    case UnOpKind::Not:
      return GilType::Bool;
    case UnOpKind::BitNot:
    case UnOpKind::ListLen:
    case UnOpKind::StrLen:
    case UnOpKind::ToInt:
      return GilType::Int;
    case UnOpKind::TypeOf:
      return GilType::Type;
    case UnOpKind::Head:
      return std::nullopt;
    case UnOpKind::Tail:
      return GilType::List;
    case UnOpKind::ToNum:
    case UnOpKind::StrToNum:
      return GilType::Num;
    case UnOpKind::NumToStr:
      return GilType::Str;
    }
    return std::nullopt;
  case ExprKind::BinOp:
    switch (E.binOpKind()) {
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div: {
      auto A = staticType(E.child(0), Env);
      auto B = staticType(E.child(1), Env);
      if (A == GilType::Int && B == GilType::Int)
        return GilType::Int;
      if ((A == GilType::Num && B && (*B == GilType::Int || *B == GilType::Num)) ||
          (B == GilType::Num && A && (*A == GilType::Int || *A == GilType::Num)))
        return GilType::Num;
      return std::nullopt;
    }
    case BinOpKind::Mod: {
      auto A = staticType(E.child(0), Env);
      auto B = staticType(E.child(1), Env);
      if (A == GilType::Int && B == GilType::Int)
        return GilType::Int;
      if (A && B)
        return GilType::Num;
      return std::nullopt;
    }
    case BinOpKind::Eq:
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::And:
    case BinOpKind::Or:
      return GilType::Bool;
    case BinOpKind::StrCat:
    case BinOpKind::StrNth:
      return GilType::Str;
    case BinOpKind::ListNth:
      return std::nullopt;
    case BinOpKind::ListConcat:
    case BinOpKind::Cons:
      return GilType::List;
    case BinOpKind::BitAnd:
    case BinOpKind::BitOr:
    case BinOpKind::BitXor:
    case BinOpKind::Shl:
    case BinOpKind::Shr:
      return GilType::Int;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

namespace {

/// If \p E is an LVar with unknown type, pins it to \p T. Returns false on
/// conflict.
bool pin(const Expr &E, GilType T, TypeEnv &Env, bool &Changed) {
  if (!E.isLVar())
    return true;
  auto Old = Env.lookup(E.varName());
  if (Old) {
    return *Old == T;
  }
  Env.assign(E.varName(), T);
  Changed = true;
  return true;
}

/// Walks an expression that is assumed *true*, harvesting typing facts.
/// Returns false when a definite conflict is found.
bool harvestTruth(const Expr &E, TypeEnv &Env, bool &Changed);

/// Harvests operand-type facts from any subexpression (regardless of the
/// boolean polarity of the enclosing formula): operators constrain their
/// operands wherever they appear.
bool harvestOperands(const Expr &E, TypeEnv &Env, bool &Changed) {
  if (!E)
    return true;
  if (E.kind() == ExprKind::UnOp) {
    const Expr &C = E.child(0);
    switch (E.unOpKind()) {
    case UnOpKind::Not:
      if (!pin(C, GilType::Bool, Env, Changed))
        return false;
      break;
    case UnOpKind::BitNot:
      if (!pin(C, GilType::Int, Env, Changed))
        return false;
      break;
    case UnOpKind::StrLen:
    case UnOpKind::StrToNum:
      if (!pin(C, GilType::Str, Env, Changed))
        return false;
      break;
    case UnOpKind::ListLen:
    case UnOpKind::Head:
    case UnOpKind::Tail:
      if (!pin(C, GilType::List, Env, Changed))
        return false;
      break;
    default:
      break;
    }
  } else if (E.kind() == ExprKind::BinOp) {
    const Expr &A = E.child(0), &B = E.child(1);
    switch (E.binOpKind()) {
    case BinOpKind::And:
    case BinOpKind::Or:
      if (!pin(A, GilType::Bool, Env, Changed) ||
          !pin(B, GilType::Bool, Env, Changed))
        return false;
      break;
    case BinOpKind::StrCat:
      if (!pin(A, GilType::Str, Env, Changed) ||
          !pin(B, GilType::Str, Env, Changed))
        return false;
      break;
    case BinOpKind::StrNth:
      if (!pin(A, GilType::Str, Env, Changed) ||
          !pin(B, GilType::Int, Env, Changed))
        return false;
      break;
    case BinOpKind::ListNth:
      if (!pin(A, GilType::List, Env, Changed) ||
          !pin(B, GilType::Int, Env, Changed))
        return false;
      break;
    case BinOpKind::ListConcat:
      if (!pin(A, GilType::List, Env, Changed) ||
          !pin(B, GilType::List, Env, Changed))
        return false;
      break;
    case BinOpKind::Cons:
      if (!pin(B, GilType::List, Env, Changed))
        return false;
      break;
    case BinOpKind::BitAnd:
    case BinOpKind::BitOr:
    case BinOpKind::BitXor:
    case BinOpKind::Shl:
    case BinOpKind::Shr:
      if (!pin(A, GilType::Int, Env, Changed) ||
          !pin(B, GilType::Int, Env, Changed))
        return false;
      break;
    case BinOpKind::Mod: {
      // Mod on Int when either side is known Int.
      auto TA = staticType(A, Env), TB = staticType(B, Env);
      if (TA == GilType::Int && !pin(B, GilType::Int, Env, Changed))
        return false;
      if (TB == GilType::Int && !pin(A, GilType::Int, Env, Changed))
        return false;
      break;
    }
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div: {
      // Arithmetic operands are numeric; propagate an Int/Num operand's
      // type to an untyped LVar sibling only when the sibling's type is
      // fully determined by the other side being Int (Int op T = Int
      // requires T = Int for closed results... not in general; be
      // conservative and propagate only Int <-> Int pairing through
      // equalities, handled elsewhere).
      auto TA = staticType(A, Env), TB = staticType(B, Env);
      if (TA == GilType::Int && !TB && B.isLVar()) {
        // Mixed Int/Num is legal; do not pin.
      }
      (void)TB;
      break;
    }
    default:
      break;
    }
  }
  for (size_t I = 0, N = E.numChildren(); I != N; ++I)
    if (!harvestOperands(E.child(I), Env, Changed))
      return false;
  return true;
}

bool harvestTruth(const Expr &E, TypeEnv &Env, bool &Changed) {
  if (!E)
    return true;
  // A bare logical variable assumed true is a boolean.
  if (E.isLVar())
    return pin(E, GilType::Bool, Env, Changed);
  if (E.kind() == ExprKind::BinOp) {
    BinOpKind Op = E.binOpKind();
    const Expr &A = E.child(0), &B = E.child(1);
    if (Op == BinOpKind::And)
      return harvestTruth(A, Env, Changed) && harvestTruth(B, Env, Changed);
    if (Op == BinOpKind::Eq) {
      // typeof(#x) == ^T
      if (A.kind() == ExprKind::UnOp && A.unOpKind() == UnOpKind::TypeOf &&
          A.child(0).isLVar() && B.isLit() && B.litValue().isType()) {
        if (!pin(A.child(0), B.litValue().asType(), Env, Changed))
          return false;
      }
      if (B.kind() == ExprKind::UnOp && B.unOpKind() == UnOpKind::TypeOf &&
          B.child(0).isLVar() && A.isLit() && A.litValue().isType()) {
        if (!pin(B.child(0), A.litValue().asType(), Env, Changed))
          return false;
      }
      // #x == e with known-typed e (either direction).
      auto TA = staticType(A, Env), TB = staticType(B, Env);
      if (A.isLVar() && TB && !pin(A, *TB, Env, Changed))
        return false;
      if (B.isLVar() && TA && !pin(B, *TA, Env, Changed))
        return false;
      // Two known different types never compare equal.
      if (TA && TB && *TA != *TB &&
          !(((*TA == GilType::Int && *TB == GilType::Num) ||
             (*TA == GilType::Num && *TB == GilType::Int))))
        return false;
      // Note: Int and Num are *also* never structurally equal in GIL
      // (1 != 1.0), but the engine-facing languages insert coercions, so
      // we refute those via the syntactic solver, not here.
    }
    if (Op == BinOpKind::Lt || Op == BinOpKind::Le) {
      // Comparisons are numeric-or-string; propagate across sides.
      auto TA = staticType(A, Env), TB = staticType(B, Env);
      if (TA == GilType::Str && !pin(B, GilType::Str, Env, Changed))
        return false;
      if (TB == GilType::Str && !pin(A, GilType::Str, Env, Changed))
        return false;
    }
  }
  return harvestOperands(E, Env, Changed);
}

} // namespace

void gillian::absorbConjunct(const Expr &Conjunct, TypeEnv &Env) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    (void)harvestTruth(Conjunct, Env, Changed);
  }
}

bool gillian::inferTypes(const std::vector<Expr> &Conjuncts, TypeEnv &Env) {
  bool Changed = true;
  // Fixpoint; the lattice height is |LVars|, each iteration either pins a
  // new variable or terminates.
  while (Changed) {
    Changed = false;
    for (const Expr &C : Conjuncts)
      if (!harvestTruth(C, Env, Changed))
        return false;
  }
  return true;
}
