//===- tests/solver/incremental_session_test.cpp --------------------------===//
//
// Layer 2 of the solver stack: incremental Z3 sessions. Covers the frame
// lifecycle (pure extension pushes only the delta, divergence pops only
// the diverging frames, low sharing resets the whole session), the
// soundness guards (per-frame type assumptions, per-frame dropped-conjunct
// downgrades), the per-thread session pool (prefix routing, LRU eviction,
// lazy cross-thread invalidation), a randomised differential check against
// the cold one-shot backend, and the Solver::resetCache contract that a
// reset clears every memo layer (result cache, simplifier memo, sessions).
//
//===----------------------------------------------------------------------===//

#include "solver/incremental_session.h"

#include "gil/parser.h"
#include "solver/simplifier.h"
#include "solver/solver.h"
#include "solver/z3_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

using namespace gillian;

namespace {

// Raw parse, no simplification: these tests sit below the simplifier
// layer and must control the exact conjunct set Z3 sees.
PathCondition pc(std::initializer_list<const char *> Conjuncts) {
  PathCondition P;
  for (const char *C : Conjuncts) {
    Result<Expr> E = parseGilExpr(C);
    EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error());
    P.add(*E);
  }
  return P;
}

TypeEnv typesOf(const PathCondition &P) {
  TypeEnv Env;
  EXPECT_TRUE(inferTypes(P.conjuncts(), Env));
  return Env;
}

class IncrementalSessionTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!z3Available())
      GTEST_SKIP() << "built without Z3";
  }

  SatResult check(IncrementalSession &S, const PathCondition &P,
                  double Threshold = 0.25) {
    return S.checkSat(P, typesOf(P), Threshold, Stats);
  }

  SolverStats Stats;
};

} // namespace

TEST_F(IncrementalSessionTest, PureExtensionPushesOnlyTheDelta) {
  IncrementalSession S;
  PathCondition P1 = pc({"typeof(#x) == ^Int", "0 <= #x"});
  PathCondition P2 = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"});
  PathCondition P3 =
      pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10", "#x == 3"});

  EXPECT_EQ(check(S, P1), SatResult::Sat);
  EXPECT_EQ(S.depth(), 1u);
  EXPECT_EQ(S.assertedConjuncts(), 2u);

  EXPECT_EQ(check(S, P2), SatResult::Sat);
  EXPECT_EQ(check(S, P3), SatResult::Sat);
  EXPECT_EQ(S.depth(), 3u) << "one push scope per query delta";
  EXPECT_EQ(S.assertedConjuncts(), 4u);
  EXPECT_EQ(Stats.IncQueries, 3u);
  EXPECT_EQ(Stats.IncExtends, 2u) << "second and third queries extend";
  EXPECT_EQ(Stats.IncResets, 0u) << "pure extension never resets";
  EXPECT_EQ(S.reusableConjuncts(P3, typesOf(P3)), 4u);
}

TEST_F(IncrementalSessionTest, DivergencePopsOnlyDivergingFrames) {
  IncrementalSession S;
  check(S, pc({"typeof(#x) == ^Int", "0 <= #x"}));
  check(S, pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"}));
  check(S, pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10", "#x == 3"}));
  ASSERT_EQ(S.depth(), 3u);

  // Sibling branch: shares {typeof, 0<=, <10}, contradicts with == 11.
  PathCondition Div =
      pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10", "#x == 11"});
  EXPECT_EQ(check(S, Div), SatResult::Unsat);
  EXPECT_EQ(Stats.IncPoppedFrames, 1u) << "only the '== 3' frame pops";
  EXPECT_EQ(Stats.IncResets, 0u) << "3/4 sharing is above the threshold";
  EXPECT_EQ(S.depth(), 3u) << "two kept frames plus the new delta";
  EXPECT_EQ(S.assertedConjuncts(), 4u);
}

TEST_F(IncrementalSessionTest, LowSharingTriggersFullReset) {
  IncrementalSession S;
  check(S, pc({"typeof(#x) == ^Int", "0 <= #x"}));
  check(S, pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"}));
  ASSERT_EQ(S.depth(), 2u);

  // Nothing shared: retained share 0 < threshold -> fresh solver.
  PathCondition Other = pc({"typeof(#y) == ^Int", "#y == 4"});
  EXPECT_EQ(check(S, Other), SatResult::Sat);
  EXPECT_EQ(Stats.IncResets, 1u);
  EXPECT_EQ(S.depth(), 1u);
  EXPECT_EQ(S.assertedConjuncts(), 2u);
}

TEST_F(IncrementalSessionTest, EncodingMemoSurvivesReset) {
  IncrementalSession S;
  PathCondition P = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"});
  check(S, P);
  size_t MemoAfterFirst = S.encodeMemoSize();
  EXPECT_GT(MemoAfterFirst, 0u);
  uint64_t MissesAfterFirst = Stats.EncodeMemoMisses;

  S.reset();
  EXPECT_EQ(S.depth(), 0u);
  EXPECT_EQ(S.encodeMemoSize(), MemoAfterFirst)
      << "the memo is keyed on (expr identity, TypeEnv), not solver state";

  // Re-asserting the identical conjuncts after the reset re-encodes
  // nothing: every term is a memo hit.
  EXPECT_EQ(check(S, P), SatResult::Sat);
  EXPECT_EQ(Stats.EncodeMemoMisses, MissesAfterFirst);
  EXPECT_GT(Stats.EncodeMemoHits, 0u);
}

TEST_F(IncrementalSessionTest, ChangedTypeAssumptionIsNeverReused) {
  // The same conjunct encodes to different sorts under different TypeEnvs
  // (Int -> SMT Int, Num -> Real). A frame asserted under one typing must
  // not be reused under another, even though the conjunct set matches.
  IncrementalSession S;
  PathCondition P1 = pc({"0 <= #x"});
  TypeEnv IntEnv;
  IntEnv.assign(InternedString::get("#x"), GilType::Int);
  EXPECT_EQ(S.checkSat(P1, IntEnv, 0.25, Stats), SatResult::Sat);
  ASSERT_EQ(S.depth(), 1u);

  TypeEnv NumEnv;
  NumEnv.assign(InternedString::get("#x"), GilType::Num);
  EXPECT_EQ(S.reusableConjuncts(P1, IntEnv), 1u);
  EXPECT_EQ(S.reusableConjuncts(P1, NumEnv), 0u)
      << "type assumptions are part of the frame identity";

  PathCondition P2 = pc({"0 <= #x", "#x < 10"});
  EXPECT_EQ(S.checkSat(P2, NumEnv, 0.25, Stats), SatResult::Sat);
  EXPECT_EQ(Stats.IncResets, 1u) << "mismatched typing forces a reset";
  EXPECT_EQ(Stats.IncExtends, 0u);
}

TEST_F(IncrementalSessionTest, SwappedTypingsNeverReuseStaleEncodings) {
  // Regression: environments that swap types between two variables used
  // to collide in TypeEnv::hash (id and type were mixed separately), and
  // the encoding memo — which survives session hard-resets — trusted that
  // hash as equality. Re-querying the same conjunct nodes under the
  // swapped typing then reused Int-sorted constants for Num variables,
  // flipping verdicts. The PathCondition is built once so both queries
  // share node identities, exactly the memo's key.
  IncrementalSession S;
  PathCondition P;
  P.add(parseGilExpr("0 < #x").take());
  P.add(parseGilExpr("#x < 1").take());
  P.add(parseGilExpr("0 <= #y").take());

  TypeEnv IntNum, NumInt;
  IntNum.assign(InternedString::get("#x"), GilType::Int);
  IntNum.assign(InternedString::get("#y"), GilType::Num);
  NumInt.assign(InternedString::get("#x"), GilType::Num);
  NumInt.assign(InternedString::get("#y"), GilType::Int);
  EXPECT_NE(IntNum.hash(), NumInt.hash())
      << "swapped typings must not share a fingerprint";

  EXPECT_EQ(S.checkSat(P, IntNum, 0.25, Stats), SatResult::Unsat)
      << "no integer lies strictly between 0 and 1";
  EXPECT_EQ(S.checkSat(P, NumInt, 0.25, Stats), SatResult::Sat)
      << "but a real one does — stale Int encodings must not be reused";
}

TEST_F(IncrementalSessionTest, DroppedConjunctDowngradesPerFrame) {
  IncrementalSession S;
  PathCondition Base = pc({"typeof(#x) == ^Int", "0 <= #x"});
  EXPECT_EQ(check(S, Base), SatResult::Sat);

  // Shifts on symbolic operands do not encode; the conjunct is dropped
  // inside its own frame and Sat is downgraded while that frame lives.
  PathCondition WithShift =
      pc({"typeof(#x) == ^Int", "0 <= #x", "(#x << 1) == 4"});
  EXPECT_EQ(check(S, WithShift), SatResult::Unknown);

  // Unsat is still sound under dropping: the encodable subset already
  // contradicts.
  PathCondition ShiftUnsat =
      pc({"typeof(#x) == ^Int", "0 <= #x", "(#x << 1) == 4", "#x < 0"});
  EXPECT_EQ(check(S, ShiftUnsat), SatResult::Unsat);

  // Diverging away pops the dropped frame; Sat answers come back.
  PathCondition Clean = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"});
  EXPECT_EQ(check(S, Clean), SatResult::Sat)
      << "the downgrade is per-frame, not sticky for the session";
}

TEST_F(IncrementalSessionTest, DifferentialAgainstColdBackend) {
  // Property test: along a random branch-and-backtrack walk (the engine's
  // query shape), the incremental session's verdict equals the cold
  // one-shot backend's on every query. Sibling branches retype variables
  // across backtracks (Int vs Num `typeof` conjuncts for the *same*
  // variables) — the regime where frame type assumptions and the encoding
  // memo's environment keys must hold — and each distinct conjunct is
  // parsed once, so the memo sees one node identity under changing
  // TypeEnvs, as engine branches sharing a prefix do.
  std::mt19937 Rng(20260806);
  const char *Vars[] = {"#v0", "#v1", "#v2", "#v3"};
  GilType VarType[4] = {GilType::Int, GilType::Num, GilType::Int,
                        GilType::Int};

  // Conjuncts must stay type-consistent with the walk's current typing:
  // equalities pin their LVar side to the other side's type, so they are
  // only generated between same-typed operands (mixed pairs fall back to
  // a comparison, which GIL allows across Int/Num), and shifts only over
  // Int operands. VarMask records the variables a conjunct mentions so a
  // retype can drop the conjuncts whose typing described the old world.
  struct Entry {
    std::string Text;
    unsigned VarMask;
  };
  auto RandConjunct = [&]() -> Entry {
    std::uniform_int_distribution<int> Pick(0, 4);
    std::uniform_int_distribution<int> V(0, 3);
    std::uniform_int_distribution<int> C(-8, 8);
    int IA = V(Rng), IB = V(Rng);
    std::string A = Vars[IA], B = Vars[IB];
    switch (Pick(Rng)) {
    case 0:
      return {std::to_string(C(Rng)) + " <= " + A, 1u << IA};
    case 1:
      return {A + " < " + std::to_string(C(Rng)), 1u << IA};
    case 2:
      if (VarType[IA] == VarType[IB])
        return {A + " == " + B + " + " + std::to_string(C(Rng)),
                (1u << IA) | (1u << IB)};
      return {A + " < " + B, (1u << IA) | (1u << IB)};
    case 3:
      return {A + " == " + std::to_string(C(Rng)) +
                  (VarType[IA] == GilType::Num ? ".5" : ""),
              1u << IA};
    default:
      if (VarType[IA] != GilType::Int)
        return {std::to_string(C(Rng)) + " <= " + A, 1u << IA};
      return {"(" + A + " << 1) == 4", 1u << IA}; // unsupported: drops
    }
  };

  // Parse each distinct conjunct once: identical conjuncts keep one node
  // identity across steps, which is what the identity-keyed encoding
  // memo actually caches on.
  std::map<std::string, Expr> Parsed;
  auto expr = [&Parsed](const std::string &Text) {
    auto It = Parsed.find(Text);
    if (It == Parsed.end())
      It = Parsed.emplace(Text, parseGilExpr(Text).take()).first;
    return It->second;
  };

  IncrementalSession S;
  std::vector<Entry> Stack;
  int Retypes = 0;
  for (int Step = 0; Step < 120; ++Step) {
    std::uniform_int_distribution<int> Act(0, 3);
    if (int A = Act(Rng); A == 0 && !Stack.empty()) {
      std::uniform_int_distribution<size_t> N(1, Stack.size());
      Stack.resize(Stack.size() - N(Rng)); // backtrack
      // The sibling branch sees one variable under the opposite typing;
      // surviving conjuncts that mention it are dropped (they were
      // generated to be consistent with the old typing).
      std::uniform_int_distribution<int> V(0, 3);
      int I = V(Rng);
      VarType[I] =
          VarType[I] == GilType::Int ? GilType::Num : GilType::Int;
      ++Retypes;
      Stack.erase(std::remove_if(Stack.begin(), Stack.end(),
                                 [I](const Entry &E) {
                                   return (E.VarMask >> I) & 1u;
                                 }),
                  Stack.end());
    } else {
      Stack.push_back(RandConjunct());
    }
    PathCondition P;
    for (int I = 0; I < 4; ++I)
      P.add(expr(std::string("typeof(") + Vars[I] + ") == ^" +
                 (VarType[I] == GilType::Int ? "Int" : "Num")));
    for (const Entry &E : Stack)
      P.add(expr(E.Text));
    TypeEnv Types;
    ASSERT_TRUE(inferTypes(P.conjuncts(), Types));
    SatResult Inc = S.checkSat(P, Types, 0.25, Stats);
    SatResult Cold = checkSatZ3(P, Types, /*WantModel=*/false).Verdict;
    ASSERT_EQ(Inc, Cold) << "step " << Step << " PC: " << P.toString();
  }
  EXPECT_GT(Stats.IncExtends, 0u) << "the walk must exercise extension";
  EXPECT_GT(Stats.IncPoppedFrames, 0u) << "... and divergence";
  EXPECT_GT(Retypes, 0) << "... and sibling branches with retyped vars";
}

//===----------------------------------------------------------------------===//
// IncrementalSessionPool
//===----------------------------------------------------------------------===//

TEST_F(IncrementalSessionTest, PoolRoutesPrefixesToSeparateSessions) {
  IncrementalSessionPool Pool;
  PathCondition X1 = pc({"typeof(#x) == ^Int", "0 <= #x"});
  PathCondition X2 = pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10"});
  PathCondition Y1 = pc({"typeof(#y) == ^Int", "#y == 4"});
  PathCondition X3 =
      pc({"typeof(#x) == ^Int", "0 <= #x", "#x < 10", "#x == 3"});

  EXPECT_EQ(Pool.checkSat(X1, typesOf(X1), 0.25, Stats), SatResult::Sat);
  EXPECT_EQ(Pool.checkSat(X2, typesOf(X2), 0.25, Stats), SatResult::Sat);
  EXPECT_EQ(Pool.sessions(), 1u);

  // Nothing shared with X: Y claims a fresh session instead of resetting
  // the hot one...
  EXPECT_EQ(Pool.checkSat(Y1, typesOf(Y1), 0.25, Stats), SatResult::Sat);
  EXPECT_EQ(Pool.sessions(), 2u);
  EXPECT_EQ(Stats.IncResets, 0u);

  // ... so returning to the X prefix is still an extension.
  EXPECT_EQ(Pool.checkSat(X3, typesOf(X3), 0.25, Stats), SatResult::Sat);
  EXPECT_EQ(Pool.sessions(), 2u);
  EXPECT_EQ(Stats.IncExtends, 2u) << "X2 extends X1, X3 extends X2";
}

TEST_F(IncrementalSessionTest, PoolEvictsLeastRecentlyUsedAtCapacity) {
  IncrementalSessionPool Pool;
  const char *Vars[] = {"#a", "#b", "#c", "#d", "#e", "#f"};
  for (const char *V : Vars) {
    PathCondition P;
    P.add(parseGilExpr(std::string("typeof(") + V + ") == ^Int").take());
    P.add(parseGilExpr(std::string("0 <= ") + V).take());
    EXPECT_EQ(Pool.checkSat(P, typesOf(P), 0.25, Stats), SatResult::Sat);
    EXPECT_LE(Pool.sessions(), IncrementalSessionPool::MaxSessions);
  }
  EXPECT_EQ(Pool.sessions(), IncrementalSessionPool::MaxSessions);
}

TEST_F(IncrementalSessionTest, InvalidateAllDropsThreadSessions) {
  IncrementalSessionPool &Pool = IncrementalSessionPool::forThread();
  Pool.reset();
  PathCondition P = pc({"typeof(#x) == ^Int", "0 <= #x"});
  Pool.checkSat(P, typesOf(P), 0.25, Stats);
  ASSERT_GE(Pool.sessions(), 1u);
  IncrementalSessionPool::invalidateAll();
  EXPECT_EQ(Pool.sessions(), 0u)
      << "the generation bump empties the pool on next use";
}

//===----------------------------------------------------------------------===//
// Solver facade integration
//===----------------------------------------------------------------------===//

TEST_F(IncrementalSessionTest, SolverRoutesZ3QueriesThroughSessions) {
  IncrementalSessionPool::forThread().reset();
  Solver S; // UseIncremental defaults on
  PathCondition P =
      pc({"typeof(#x) == ^Int", "typeof(#y) == ^Int", "#x + #y == 10",
          "#x - #y == 4", "!(#y == 3)"});
  EXPECT_EQ(S.checkSat(P), SatResult::Unsat);
  EXPECT_GE(S.stats().IncQueries, 1u);

  SolverOptions Off;
  Off.UseIncremental = false;
  Solver SOff(Off);
  EXPECT_EQ(SOff.checkSat(P), SatResult::Unsat) << "same verdict either way";
  EXPECT_EQ(SOff.stats().IncQueries, 0u);
}

TEST(SolverResetCache, ClearsEveryMemoLayer) {
  // Satellite regression: resetCache must cold every layer — the result
  // cache, the process-wide simplifier memo, and this thread's incremental
  // sessions — not just the verdict cache.
  IncrementalSessionPool::forThread().reset();
  resetSimplifyCache();
  Solver S;
  // Warm the result cache with a syntactically-decided verdict (cached
  // with or without Z3) and the simplifier memo on the way in.
  PathCondition Cheap;
  for (const char *C : {"#x == 1 + 0", "#x == 2"})
    Cheap.add(simplifyCached(parseGilExpr(C).take()));
  EXPECT_EQ(S.checkSat(Cheap), SatResult::Unsat);
  ASSERT_GT(S.cache().size(), 0u);
  ASSERT_GT(simplifyCacheStats().Misses, 0u);
  if (z3Available()) {
    // ... and this thread's session pool with a query only Z3 decides.
    PathCondition Hard;
    for (const char *C : {"typeof(#x) == ^Int", "typeof(#y) == ^Int",
                          "#x + #y == 10", "#x - #y == 4"})
      Hard.add(parseGilExpr(C).take());
    EXPECT_EQ(S.checkSat(Hard), SatResult::Sat);
    ASSERT_GE(IncrementalSessionPool::forThread().sessions(), 1u);
  }

  S.resetCache();
  EXPECT_EQ(S.cache().size(), 0u);
  EXPECT_EQ(simplifyCacheStats().Misses, 0u);
  EXPECT_EQ(simplifyCacheStats().Hits, 0u);
  EXPECT_EQ(IncrementalSessionPool::forThread().sessions(), 0u);
}
