//===- tests/targets/incremental_differential_test.cpp --------------------===//
//
// The soundness property of the incremental solving layer on the
// evaluation workloads: every MJS (Buckets) and MC (Collections) example
// suite, plus a set of While programs exercising branching, loops, and a
// genuine assertion violation, explored with incremental Z3 sessions ON
// and OFF at workers ∈ {1, 4}, yields the identical multiset of
// (outcome kind, outcome value, final path condition) signatures — and
// the same verified counter-models. The incremental layer is a pure
// performance transform: it must never change a verdict.
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"
#include "targets/collections_mc.h"

#include "engine/test_runner.h"
#include "mc/compiler.h"
#include "mc/memory.h"
#include "mjs/compiler.h"
#include "mjs/memory.h"
#include "solver/z3_backend.h"
#include "targets/suite_runner.h"
#include "while_lang/compiler.h"
#include "while_lang/memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace gillian;
using namespace gillian::targets;

namespace {

struct RunTraces {
  std::vector<std::string> Sigs; ///< sorted path signatures
  uint64_t IncQueries = 0;       ///< queries the session layer answered
};

/// Runs every `test_*` procedure of \p P and renders each finished path
/// as "test|kind|value|path-condition|model?". The model marker re-solves
/// the first few non-trivial final path conditions per test for a
/// verified model, so the differential also covers model extraction.
template <typename M>
RunTraces suiteTraces(const Prog &P, uint32_t Workers, bool Incremental) {
  EngineOptions Opts;
  Opts.Scheduler.Workers = Workers;
  Opts.Solver.UseIncremental = Incremental;
  Solver Slv(Opts.Solver); // private cache: runs are independent
  ExecStats Stats;
  using St = SymbolicState<M>;
  RunTraces Out;
  for (const std::string &T : testProcs(P)) {
    St Init(M(), &Slv, &Opts);
    Interpreter<St> Interp(P, Opts, Stats);
    Result<std::vector<TraceResult<St>>> Traces = runExploration(
        Interp, InternedString::get(T), Expr::list({}), std::move(Init));
    EXPECT_TRUE(Traces.ok()) << T << ": "
                             << (Traces.ok() ? "" : Traces.error());
    if (!Traces.ok())
      continue;
    int ModelChecks = 0;
    for (TraceResult<St> &R : *Traces) {
      std::string Sig = T + "|" + std::string(outcomeKindName(R.Kind)) +
                        "|" + R.Val.toString() + "|" +
                        R.Final.pathCondition().toString();
      const PathCondition &PC = R.Final.pathCondition();
      if (PC.size() > 0 && ModelChecks < 3) {
        ++ModelChecks;
        Sig += Slv.verifiedModel(PC).has_value() ? "|model" : "|nomodel";
      }
      Out.Sigs.push_back(std::move(Sig));
    }
  }
  std::sort(Out.Sigs.begin(), Out.Sigs.end());
  Out.IncQueries = Slv.stats().IncQueries;
  return Out;
}

template <typename M>
void expectIncrementalTransparent(const Prog &P, std::string_view Name) {
  for (uint32_t Workers : {1u, 4u}) {
    RunTraces Off = suiteTraces<M>(P, Workers, /*Incremental=*/false);
    RunTraces On = suiteTraces<M>(P, Workers, /*Incremental=*/true);
    EXPECT_FALSE(Off.Sigs.empty()) << Name;
    EXPECT_EQ(Off.Sigs, On.Sigs)
        << Name << " at workers=" << Workers
        << ": incremental sessions changed an outcome";
    EXPECT_EQ(Off.IncQueries, 0u) << Name;
  }
}

class BucketsIncrementalTest
    : public ::testing::TestWithParam<BucketsSuite> {};
class CollectionsIncrementalTest
    : public ::testing::TestWithParam<CollectionsSuite> {};

/// While programs picked for solver-shape diversity: symbolic branching,
/// a loop with an arithmetic invariant, mixed Int/Num typings (so the
/// differential is not blind to typing-dependent encoding reuse — sorts,
/// and hence the session layer's memo keys, depend on the TypeEnv), and
/// an assertion violation whose bug path must be found (and confirmed)
/// identically in both modes.
const char *const WhileSources[] = {
    "function test_branch() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x < 8);\n"
    "  y := 0;\n"
    "  if (x < 4) { y := x + 1; }\n"
    "  if (3 < x) { y := x - 1; }\n"
    "  assert (0 <= y && y < 7);\n"
    "  return y;\n}\n",
    "function test_loop() {\n"
    "  n := fresh_int();\n"
    "  assume (0 <= n && n < 6);\n"
    "  i := 0; s := 0;\n"
    "  while (i < n) { s := s + i; i := i + 1; }\n"
    "  assert (s * 2 == n * (n - 1));\n"
    "  return s;\n}\n",
    "function test_mixed_types() {\n"
    "  x := fresh_int();\n"
    "  n := fresh_num();\n"
    "  assume (0 <= x && x < 3);\n"
    "  assume (0.5 <= n && n < 2.5);\n"
    "  r := 0;\n"
    "  if (x < n) { r := r + 1; }\n"
    "  if (n < x) { r := r + 2; }\n"
    "  assert (r < 3);\n"
    "  return r;\n}\n",
    "function test_violation() {\n"
    "  x := fresh_int();\n"
    "  assume (0 <= x && x <= 100);\n"
    "  assert (x < 100);\n"
    "  return x;\n}\n",
};

} // namespace

TEST_P(BucketsIncrementalTest, VerdictsMatchWithSessionsOnAndOff) {
  const BucketsSuite &S = GetParam();
  std::string Src =
      std::string(bucketsLibrary()) + "\n" + std::string(S.Source);
  Result<Prog> P = mjs::compileMjsSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectIncrementalTransparent<mjs::MjsSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, BucketsIncrementalTest,
    ::testing::ValuesIn(bucketsSuites()),
    [](const ::testing::TestParamInfo<BucketsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST_P(CollectionsIncrementalTest, VerdictsMatchWithSessionsOnAndOff) {
  const CollectionsSuite &S = GetParam();
  std::string Src = std::string(collectionsLibrary()) + "\n" +
                    std::string(S.Source);
  Result<Prog> P = mc::compileMcSource(Src);
  ASSERT_TRUE(P.ok()) << P.error();
  expectIncrementalTransparent<mc::McSMem>(*P, S.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, CollectionsIncrementalTest,
    ::testing::ValuesIn(collectionsSuites()),
    [](const ::testing::TestParamInfo<CollectionsSuite> &Info) {
      return std::string(Info.param.Name);
    });

TEST(WhileIncrementalTest, VerdictsMatchWithSessionsOnAndOff) {
  for (const char *Src : WhileSources) {
    Result<Prog> P = whilelang::compileWhileSource(Src);
    ASSERT_TRUE(P.ok()) << P.error();
    expectIncrementalTransparent<whilelang::WhileSMem>(*P, "while");
  }
}

TEST(WhileIncrementalTest, SessionLayerActuallyEngages) {
  // Guard against the differential passing vacuously: with Z3 present,
  // the incremental runs must route queries through the session layer.
  if (!z3Available())
    GTEST_SKIP() << "built without Z3";
  Result<Prog> P = whilelang::compileWhileSource(WhileSources[1]);
  ASSERT_TRUE(P.ok()) << P.error();
  RunTraces On =
      suiteTraces<whilelang::WhileSMem>(*P, 1, /*Incremental=*/true);
  EXPECT_GT(On.IncQueries, 0u);
}
