//===- tests/solver/cache_persist_test.cpp --------------------------------===//
//
// Persistence of the canonical solver result cache: saveCache/loadCache
// round-trip decided verdicts through a text file, re-canonicalising on
// load so the keys match what the current solver would build; Unknown is
// never persisted; a loaded cache answers queries without touching the
// deeper layers.
//
//===----------------------------------------------------------------------===//

#include "gil/parser.h"
#include "solver/solver.h"
#include "solver/solver_cache.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace gillian;

namespace {

Expr parse(const char *S) {
  Result<Expr> R = parseGilExpr(S);
  EXPECT_TRUE(R.ok()) << S << ": " << (R.ok() ? "" : R.error());
  return *R;
}

PathCondition satPc() {
  PathCondition PC;
  PC.add(parse("typeof(#x) == ^Int"));
  PC.add(parse("0 <= #x"));
  PC.add(parse("#x < 32"));
  return PC;
}

PathCondition unsatPc() {
  PathCondition PC;
  PC.add(parse("typeof(#y) == ^Int"));
  PC.add(parse("#y < 0"));
  PC.add(parse("0 < #y"));
  return PC;
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

} // namespace

TEST(CachePersistTest, SaveLoadRoundTripServesFromCache) {
  const std::string Path = tempPath("gillian_cache_roundtrip.txt");
  {
    Solver S;
    EXPECT_EQ(S.checkSat(satPc()), SatResult::Sat);
    EXPECT_EQ(S.checkSat(unsatPc()), SatResult::Unsat);
    long Saved = S.saveCache(Path);
    EXPECT_GE(Saved, 2);
  }

  // A solver whose only decision procedure is the cache: syntactic, Z3
  // and slicing are all off, so a decided answer proves the loaded entry
  // matched the re-canonicalised key.
  SolverOptions CacheOnly;
  CacheOnly.UseSyntactic = false;
  CacheOnly.UseZ3 = false;
  CacheOnly.UseSlicing = false;
  SolverCache Fresh;
  Solver Loaded(CacheOnly, Fresh);
  long N = Loaded.loadCache(Path);
  EXPECT_GE(N, 2);
  EXPECT_EQ(Fresh.size(), static_cast<size_t>(N));
  EXPECT_EQ(Loaded.checkSat(satPc()), SatResult::Sat);
  EXPECT_EQ(Loaded.checkSat(unsatPc()), SatResult::Unsat);
  EXPECT_EQ(Loaded.stats().Z3Calls.load(), 0u);
  EXPECT_GE(Loaded.stats().CacheHits.load(), 2u);
}

TEST(CachePersistTest, FileHoldsOnlyDecidedVerdictLines) {
  const std::string Path = tempPath("gillian_cache_verdicts.txt");
  Solver S;
  S.checkSat(satPc());
  S.checkSat(unsatPc());
  ASSERT_GE(S.saveCache(Path), 2);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    bool Decided = Line.rfind("SAT\t", 0) == 0 ||
                   Line.rfind("UNSAT\t", 0) == 0;
    EXPECT_TRUE(Decided) << "line " << Lines << ": " << Line;
    EXPECT_EQ(Line.find("UNKNOWN"), std::string::npos);
  }
  EXPECT_GE(Lines, 2u);
}

TEST(CachePersistTest, UndecidedQueriesAreNeverPersisted) {
  // With every decision layer off the solver can only answer Unknown —
  // and Unknown must not reach the persisted file.
  const std::string Path = tempPath("gillian_cache_unknown.txt");
  SolverOptions NoLayers;
  NoLayers.UseSyntactic = false;
  NoLayers.UseNative = false;
  NoLayers.UseZ3 = false;
  NoLayers.UseSlicing = false;
  Solver S(NoLayers);
  EXPECT_EQ(S.checkSat(satPc()), SatResult::Unknown);
  EXPECT_EQ(S.saveCache(Path), 0);
}

/// The sibling temp file saveCache stages its writes through.
std::string tempSibling(const std::string &Path) {
  return Path + "." + std::to_string(::getpid()) + ".tmp";
}

TEST(CachePersistTest, SaveReplacesPartiallyWrittenFileAtomically) {
  // Simulate the crash artefact of a non-atomic saver: the destination
  // holds a truncated cache whose last line is half a condition. A fresh
  // save must fully replace it (not append, not merge), and must leave no
  // staging file behind.
  const std::string Path = tempPath("gillian_cache_atomic.txt");
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "SAT\t(typeof(#old) == ^Int) && (0 <"; // cut mid-write
  }
  Solver S;
  EXPECT_EQ(S.checkSat(satPc()), SatResult::Sat);
  EXPECT_EQ(S.checkSat(unsatPc()), SatResult::Unsat);
  long Saved = S.saveCache(Path);
  EXPECT_GE(Saved, 2);

  struct stat St;
  EXPECT_NE(::stat(tempSibling(Path).c_str(), &St), 0)
      << "staging temp file left behind";

  // Every line of the replaced file is a decided verdict; the truncated
  // remnant is gone, and a load round-trips the full save.
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line))
    EXPECT_EQ(Line.find("#old"), std::string::npos) << Line;
  SolverCache Fresh;
  Solver Loaded(SolverOptions(), Fresh);
  EXPECT_EQ(Loaded.loadCache(Path), Saved);
}

TEST(CachePersistTest, FailedSaveKeepsTargetAndRemovesTemp) {
  // Rename onto an existing non-empty directory fails, exercising the
  // failure path after a fully-successful temp write: saveCache must
  // report -1, clean up its temp, and leave the target untouched.
  const std::string Dir = tempPath("gillian_cache_dir.d");
  ::mkdir(Dir.c_str(), 0755);
  const std::string Inner = Dir + "/occupant";
  {
    std::ofstream Out(Inner, std::ios::trunc);
    Out << "x\n";
  }
  Solver S;
  EXPECT_EQ(S.checkSat(satPc()), SatResult::Sat);
  EXPECT_EQ(S.saveCache(Dir), -1);

  struct stat St;
  EXPECT_NE(::stat(tempSibling(Dir).c_str(), &St), 0)
      << "temp file not cleaned up after failed rename";
  ASSERT_EQ(::stat(Dir.c_str(), &St), 0);
  EXPECT_TRUE(S_ISDIR(St.st_mode));
  EXPECT_EQ(::stat(Inner.c_str(), &St), 0);

  // An unopenable temp location (missing parent directory) also fails
  // cleanly with -1.
  EXPECT_EQ(S.saveCache(::testing::TempDir() +
                        "gillian_no_such_dir/cache.txt"),
            -1);
}

TEST(CachePersistTest, LoadSkipsGarbageAndMissingFilesFail) {
  Solver S;
  EXPECT_EQ(S.loadCache(::testing::TempDir() +
                        "gillian_no_such_cache_file.txt"),
            -1);

  const std::string Path = tempPath("gillian_cache_garbage.txt");
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "SAT\t(0 <= #z) && (typeof(#z) == ^Int)\n"; // good
    Out << "MAYBE\t(0 <= #w)\n";                       // bad verdict
    Out << "no tab separator on this line\n";          // bad shape
    Out << "UNSAT\t)(not an expression\n";             // bad syntax
  }
  SolverCache Fresh;
  Solver Loaded(SolverOptions(), Fresh);
  EXPECT_EQ(Loaded.loadCache(Path), 1);
  EXPECT_EQ(Fresh.size(), 1u);
}
