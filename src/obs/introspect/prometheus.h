//===- obs/introspect/prometheus.h - Text exposition writer ----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text-exposition (version 0.0.4) writer for the /metrics
/// endpoint. Follows the conventions a stock Prometheus server expects:
/// one `# TYPE` line per metric family (emitted once, before the family's
/// first sample, regardless of how many labelled series it has), counters
/// suffixed `_total`, gauges bare, label values escaped (backslash, quote,
/// newline).
///
/// Metric names are derived mechanically from the counter registry —
/// `gillian_<category>_<name>` — via counterSetInto(), so a counter added
/// anywhere in the codebase appears on /metrics with zero exporter edits,
/// the same property obsStatsJson already has for JSON.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_OBS_INTROSPECT_PROMETHEUS_H
#define GILLIAN_OBS_INTROSPECT_PROMETHEUS_H

#include "obs/counters.h"

#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gillian::obs {

/// `{key, value}` pairs rendered as `{key="value",...}`. Values are
/// escaped by the writer; keys must already be valid label names.
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline get backslash escapes.
std::string promEscapeLabelValue(std::string_view V);

/// Sanitises an arbitrary string into a metric-name component:
/// [a-zA-Z0-9_]; every other byte becomes '_'.
std::string promSanitizeName(std::string_view S);

/// Streaming exposition writer. counter()/gauge() take the *base* family
/// name (no `_total`); the writer appends the counter suffix and emits the
/// family's `# TYPE` line exactly once.
class PromWriter {
public:
  void counter(std::string_view Family, uint64_t Value,
               const PromLabels &Labels = {});
  void gauge(std::string_view Family, double Value,
             const PromLabels &Labels = {});
  void gauge(std::string_view Family, uint64_t Value,
             const PromLabels &Labels = {});

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void typeLine(std::string_view Family, const char *Type);
  void sample(std::string_view Name, const PromLabels &Labels,
              std::string_view Rendered);

  std::string Out;
  std::unordered_set<std::string> TypedFamilies;
};

/// Emits every registered field of \p Set as
/// `gillian_<category>_<name>[_total]{labels...}` — counters as counter
/// families, gauges as gauge families. The generic bridge from the
/// CounterSet registry to /metrics.
template <typename Derived>
void counterSetInto(PromWriter &W, const CounterSet<Derived> &Set,
                    const PromLabels &Labels = {}) {
  Set.forEachField([&](const CounterField &F, uint64_t V) {
    std::string Family = "gillian_";
    Family += promSanitizeName(F.Category);
    Family += '_';
    Family += promSanitizeName(F.Name);
    if (F.Kind == FieldKind::Gauge)
      W.gauge(Family, V, Labels);
    else
      W.counter(Family, V, Labels);
  });
}

} // namespace gillian::obs

#endif // GILLIAN_OBS_INTROSPECT_PROMETHEUS_H
