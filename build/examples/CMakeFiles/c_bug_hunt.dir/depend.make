# Empty dependencies file for c_bug_hunt.
# This may be replaced when dependencies are built.
