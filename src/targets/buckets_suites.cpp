//===- targets/buckets_suites.cpp -----------------------------------------===//
//
// Symbolic test suites for the Buckets-style library: one suite per
// Table 1 row, with the same per-row test counts as the paper (74 total).
// Every test takes symbolic inputs, so each exercises many execution
// traces (the paper: "symbolic tests were purposefully written to cover
// multiple execution traces").
//
//===----------------------------------------------------------------------===//

#include "targets/buckets_mjs.h"

using namespace gillian::targets;

namespace {

constexpr std::string_view ArraySuite = R"mjs(
function test_push_grows() {
  var v = symb_number();
  var a = arr_new();
  arr_push(a, v);
  Assert(a.length === 1);
  Assert(a[0] === v);
}
function test_push_pop_roundtrip() {
  var v = symb_number();
  var w = symb_number();
  var a = arr_new();
  arr_push(a, v); arr_push(a, w);
  Assert(arr_pop(a) === w);
  Assert(arr_pop(a) === v);
  Assert(a.length === 0);
}
function test_pop_empty_is_undefined() {
  var a = arr_new();
  Assert(arr_pop(a) === undefined);
}
function test_indexof_finds_first() {
  var v = symb_number();
  var a = arr_new();
  arr_push(a, v); arr_push(a, v);
  Assert(arr_indexOf(a, v) === 0);
}
function test_indexof_missing() {
  var v = symb_number();
  var w = symb_number();
  Assume(v !== w);
  var a = arr_new();
  arr_push(a, v);
  Assert(arr_indexOf(a, w) === -1);
}
function test_contains_after_remove() {
  var v = symb_number();
  var w = symb_number();
  Assume(v !== w);
  var a = arr_new();
  arr_push(a, v); arr_push(a, w);
  Assert(arr_remove(a, v));
  Assert(!arr_contains(a, v));
  Assert(arr_contains(a, w));
  Assert(a.length === 1);
}
function test_removeat_shifts() {
  var a = arr_new();
  arr_push(a, 1); arr_push(a, 2); arr_push(a, 3);
  Assert(arr_removeAt(a, 1));
  Assert(a[0] === 1);
  Assert(a[1] === 3);
  Assert(a.length === 2);
}
function test_reverse_involution() {
  var v = symb_number();
  var w = symb_number();
  var a = arr_new();
  arr_push(a, v); arr_push(a, w); arr_push(a, 3);
  arr_reverse(a);
  Assert(a[0] === 3);
  Assert(a[2] === v);
  arr_reverse(a);
  Assert(a[0] === v);
  Assert(a[1] === w);
}
function test_equals_structural() {
  var v = symb_number();
  var a = arr_new(); var b = arr_new();
  arr_push(a, v); arr_push(b, v);
  Assert(arr_equals(a, b));
  arr_push(b, 0);
  Assert(!arr_equals(a, b));
}
)mjs";

constexpr std::string_view BagSuite = R"mjs(
function test_bag_add_counts() {
  var v = symb_number();
  var b = bag_new();
  bag_add(b, v); bag_add(b, v);
  Assert(bag_count(b, v) === 2);
  Assert(bag_size(b) === 2);
}
function test_bag_distinct_values() {
  var v = symb_number(); var w = symb_number();
  Assume(v !== w);
  var b = bag_new();
  bag_add(b, v); bag_add(b, w);
  Assert(bag_count(b, v) === 1);
  Assert(bag_count(b, w) === 1);
}
function test_bag_remove_decrements() {
  var v = symb_number();
  var b = bag_new();
  bag_add(b, v); bag_add(b, v);
  Assert(bag_remove(b, v));
  Assert(bag_count(b, v) === 1);
}
function test_bag_remove_last_clears() {
  var v = symb_number();
  var b = bag_new();
  bag_add(b, v);
  bag_remove(b, v);
  Assert(bag_count(b, v) === 0);
  Assert(bag_size(b) === 0);
}
function test_bag_remove_missing_fails() {
  var v = symb_number();
  var b = bag_new();
  Assert(!bag_remove(b, v));
}
function test_bag_count_missing_is_zero() {
  var v = symb_number();
  var b = bag_new();
  Assert(bag_count(b, v) === 0);
}
function test_bag_aliasing_keys() {
  // Two symbolic values that may or may not coincide: counts must agree
  // with the equality world.
  var v = symb_number(); var w = symb_number();
  var b = bag_new();
  bag_add(b, v); bag_add(b, w);
  if (v === w) { Assert(bag_count(b, v) === 2); }
  else { Assert(bag_count(b, v) === 1); }
}
)mjs";

constexpr std::string_view BstSuite = R"mjs(
function test_bst_insert_contains() {
  var k = symb_number();
  var t = bst_new();
  Assert(bst_insert(t, k));
  Assert(bst_contains(t, k));
}
function test_bst_missing_key() {
  var k = symb_number(); var m = symb_number();
  Assume(k !== m);
  var t = bst_new();
  bst_insert(t, k);
  Assert(!bst_contains(t, m));
}
function test_bst_duplicate_insert_rejected() {
  var k = symb_number();
  var t = bst_new();
  Assert(bst_insert(t, k));
  Assert(!bst_insert(t, k));
  Assert(t.size === 1);
}
function test_bst_orders_two_keys() {
  var a = symb_number(); var b = symb_number();
  Assume(a < b);
  var t = bst_new();
  bst_insert(t, b); bst_insert(t, a);
  Assert(bst_min(t) === a);
  Assert(bst_max(t) === b);
}
function test_bst_three_key_shape() {
  var t = bst_new();
  bst_insert(t, 2); bst_insert(t, 1); bst_insert(t, 3);
  Assert(t.root.key === 2);
  Assert(t.root.left.key === 1);
  Assert(t.root.right.key === 3);
}
function test_bst_min_of_empty() {
  var t = bst_new();
  Assert(bst_min(t) === undefined);
}
function test_bst_symbolic_insert_order() {
  var a = symb_number(); var b = symb_number(); var c = symb_number();
  Assume(a !== b); Assume(b !== c); Assume(a !== c);
  var t = bst_new();
  bst_insert(t, a); bst_insert(t, b); bst_insert(t, c);
  Assert(t.size === 3);
  Assert(bst_contains(t, a));
  Assert(bst_contains(t, b));
  Assert(bst_contains(t, c));
}
function test_bst_min_le_max() {
  var a = symb_number(); var b = symb_number();
  var t = bst_new();
  bst_insert(t, a); bst_insert(t, b);
  Assert(bst_min(t) <= bst_max(t));
}
function test_bst_contains_on_path_only() {
  var t = bst_new();
  bst_insert(t, 10); bst_insert(t, 5); bst_insert(t, 15);
  var k = symb_number();
  Assume(k !== 10); Assume(k !== 5); Assume(k !== 15);
  Assert(!bst_contains(t, k));
}
function test_bst_size_tracks_inserts() {
  var a = symb_number(); var b = symb_number();
  var t = bst_new();
  bst_insert(t, a);
  var ok = bst_insert(t, b);
  if (a === b) { Assert(!ok); Assert(t.size === 1); }
  else { Assert(ok); Assert(t.size === 2); }
}
function test_bst_left_chain() {
  var t = bst_new();
  bst_insert(t, 3); bst_insert(t, 2); bst_insert(t, 1);
  Assert(t.root.left.left.key === 1);
  Assert(bst_min(t) === 1);
}
)mjs";

constexpr std::string_view DictSuite = R"mjs(
function test_dict_set_get() {
  var v = symb_number();
  var d = d_new();
  d_set(d, "k", v);
  Assert(d_get(d, "k") === v);
}
function test_dict_get_missing() {
  var d = d_new();
  Assert(d_get(d, "nope") === undefined);
}
function test_dict_overwrite_keeps_size() {
  var v = symb_number(); var w = symb_number();
  var d = d_new();
  d_set(d, "k", v);
  d_set(d, "k", w);
  Assert(d_get(d, "k") === w);
  Assert(d_size(d) === 1);
}
function test_dict_symbolic_string_keys() {
  var k = symb_string();
  var d = d_new();
  d_set(d, k, 1);
  Assert(d_contains(d, k));
  Assert(d_get(d, k) === 1);
}
function test_dict_remove() {
  var v = symb_number();
  var d = d_new();
  d_set(d, "a", v);
  d_set(d, "b", v);
  Assert(d_remove(d, "a"));
  Assert(!d_contains(d, "a"));
  Assert(d_contains(d, "b"));
  Assert(d_size(d) === 1);
}
function test_dict_remove_missing() {
  var d = d_new();
  Assert(!d_remove(d, "k"));
}
function test_dict_numeric_keys_coerce() {
  var d = d_new();
  d_set(d, 1, "one");
  Assert(d_get(d, 1) === "one");
  Assert(d_contains(d, 1));
}
)mjs";

constexpr std::string_view HeapSuite = R"mjs(
function test_heap_push_peek_min() {
  var a = symb_number(); var b = symb_number();
  var h = h_new();
  h_push(h, a); h_push(h, b);
  if (a <= b) { Assert(h_peek(h) === a); }
  else { Assert(h_peek(h) === b); }
}
function test_heap_pop_sorted_three() {
  var a = symb_number(); var b = symb_number(); var c = symb_number();
  var h = h_new();
  h_push(h, a); h_push(h, b); h_push(h, c);
  var x = h_pop(h);
  var y = h_pop(h);
  var z = h_pop(h);
  Assert(x <= y);
  Assert(y <= z);
  Assert(h_size(h) === 0);
}
function test_heap_pop_empty() {
  var h = h_new();
  Assert(h_pop(h) === undefined);
}
function test_heap_four_pop_order() {
  // Four elements arranged so the post-pop sift-down must consult the
  // *right* child (internal array [0, 2, v, 3] with v <= 1): the code
  // path carrying the seeded comparison bug.
  var v = symb_number();
  Assume(0 <= v); Assume(v <= 1);
  var h = h_new();
  h_push(h, 0); h_push(h, 2); h_push(h, v); h_push(h, 3);
  var x = h_pop(h);
  var y = h_pop(h);
  var z = h_pop(h);
  var w = h_pop(h);
  Assert(x <= y);
  Assert(y <= z);
  Assert(z <= w);
}
)mjs";

constexpr std::string_view LlistSuite = R"mjs(
function test_ll_add_get() {
  var v = symb_number();
  var l = ll_new();
  ll_add(l, v);
  Assert(ll_get(l, 0) === v);
  Assert(l.size === 1);
}
function test_ll_order_preserved() {
  var a = symb_number(); var b = symb_number();
  var l = ll_new();
  ll_add(l, a); ll_add(l, b);
  Assert(ll_get(l, 0) === a);
  Assert(ll_get(l, 1) === b);
}
function test_ll_addfirst_prepends() {
  var a = symb_number(); var b = symb_number();
  var l = ll_new();
  ll_add(l, a);
  ll_addFirst(l, b);
  Assert(ll_get(l, 0) === b);
  Assert(ll_get(l, 1) === a);
}
function test_ll_get_out_of_range() {
  var l = ll_new();
  ll_add(l, 1);
  Assert(ll_get(l, 1) === undefined);
  Assert(ll_get(l, -1) === undefined);
}
function test_ll_indexof_present() {
  var a = symb_number(); var b = symb_number();
  Assume(a !== b);
  var l = ll_new();
  ll_add(l, a); ll_add(l, b);
  Assert(ll_indexOf(l, b) === 1);
}
function test_ll_indexof_absent() {
  var a = symb_number(); var b = symb_number();
  Assume(a !== b);
  var l = ll_new();
  ll_add(l, a);
  Assert(ll_indexOf(l, b) === -1);
}
function test_ll_removefirst_fifo() {
  var a = symb_number(); var b = symb_number();
  var l = ll_new();
  ll_add(l, a); ll_add(l, b);
  Assert(ll_removeFirst(l) === a);
  Assert(ll_removeFirst(l) === b);
  Assert(ll_removeFirst(l) === undefined);
}
function test_ll_tail_consistency() {
  var v = symb_number();
  var l = ll_new();
  ll_add(l, v);
  ll_removeFirst(l);
  Assert(l.tail === null);
  ll_add(l, v);
  Assert(l.tail.value === v);
}
function test_ll_toarray_roundtrip() {
  var a = symb_number(); var b = symb_number();
  var l = ll_new();
  ll_add(l, a); ll_add(l, b);
  var arr = ll_toArray(l);
  Assert(arr.length === 2);
  Assert(arr[0] === a);
  Assert(arr[1] === b);
}
)mjs";

constexpr std::string_view MdictSuite = R"mjs(
function test_md_add_get() {
  var v = symb_number();
  var m = md_new();
  md_add(m, "k", v);
  var vals = md_get(m, "k");
  Assert(vals.length === 1);
  Assert(vals[0] === v);
}
function test_md_multiple_values_per_key() {
  var v = symb_number(); var w = symb_number();
  var m = md_new();
  md_add(m, "k", v); md_add(m, "k", w);
  Assert(md_count(m, "k") === 2);
}
function test_md_keys_are_independent() {
  var v = symb_number();
  var m = md_new();
  md_add(m, "a", v);
  Assert(md_count(m, "b") === 0);
}
function test_md_remove_value() {
  var v = symb_number(); var w = symb_number();
  Assume(v !== w);
  var m = md_new();
  md_add(m, "k", v); md_add(m, "k", w);
  Assert(md_remove(m, "k", v));
  Assert(md_count(m, "k") === 1);
  Assert(md_get(m, "k")[0] === w);
}
function test_md_remove_last_clears_key() {
  var v = symb_number();
  var m = md_new();
  md_add(m, "k", v);
  Assert(md_remove(m, "k", v));
  Assert(!d_contains(m.dict, "k"));
}
function test_md_remove_missing() {
  var m = md_new();
  Assert(!md_remove(m, "k", 1));
}
)mjs";

constexpr std::string_view PqueueSuite = R"mjs(
function test_pq_dequeue_min_priority() {
  var p = pq_new();
  pq_enqueue(p, 2, "two");
  pq_enqueue(p, 1, "one");
  Assert(pq_dequeue(p) === "one");
  Assert(pq_dequeue(p) === "two");
}
function test_pq_symbolic_priorities() {
  var a = symb_number(); var b = symb_number();
  Assume(a !== b);
  var p = pq_new();
  pq_enqueue(p, a, "a");
  pq_enqueue(p, b, "b");
  var first = pq_dequeue(p);
  if (a < b) { Assert(first === "a"); }
  else { Assert(first === "b"); }
}
function test_pq_fifo_within_priority() {
  var p = pq_new();
  pq_enqueue(p, 1, "first");
  pq_enqueue(p, 1, "second");
  Assert(pq_dequeue(p) === "first");
  Assert(pq_dequeue(p) === "second");
}
function test_pq_empty_dequeue() {
  var p = pq_new();
  Assert(pq_dequeue(p) === undefined);
}
function test_pq_size_tracks() {
  var v = symb_number();
  var p = pq_new();
  pq_enqueue(p, v, "x");
  Assert(pq_size(p) === 1);
  pq_dequeue(p);
  Assert(pq_size(p) === 0);
}
)mjs";

constexpr std::string_view QueueSuite = R"mjs(
function test_q_fifo() {
  var a = symb_number(); var b = symb_number();
  var q = q_new();
  q_enqueue(q, a); q_enqueue(q, b);
  Assert(q_dequeue(q) === a);
  Assert(q_dequeue(q) === b);
}
function test_q_peek_nondestructive() {
  var v = symb_number();
  var q = q_new();
  q_enqueue(q, v);
  Assert(q_peek(q) === v);
  Assert(q_size(q) === 1);
}
function test_q_empty_behaviour() {
  var q = q_new();
  Assert(q_isEmpty(q));
  Assert(q_dequeue(q) === undefined);
  Assert(q_peek(q) === undefined);
}
function test_q_interleaved_ops() {
  var a = symb_number(); var b = symb_number(); var c = symb_number();
  var q = q_new();
  q_enqueue(q, a);
  q_enqueue(q, b);
  Assert(q_dequeue(q) === a);
  q_enqueue(q, c);
  Assert(q_dequeue(q) === b);
  Assert(q_dequeue(q) === c);
}
function test_q_size_counts() {
  var q = q_new();
  q_enqueue(q, 1); q_enqueue(q, 2); q_enqueue(q, 3);
  Assert(q_size(q) === 3);
}
function test_q_drain_then_reuse() {
  var v = symb_number();
  var q = q_new();
  q_enqueue(q, 1);
  q_dequeue(q);
  Assert(q_isEmpty(q));
  q_enqueue(q, v);
  Assert(q_peek(q) === v);
}
)mjs";

constexpr std::string_view SetSuite = R"mjs(
function test_set_add_contains() {
  var v = symb_number();
  var s = set_new();
  Assert(set_add(s, v));
  Assert(set_contains(s, v));
}
function test_set_no_duplicates() {
  var v = symb_number();
  var s = set_new();
  set_add(s, v);
  Assert(!set_add(s, v));
  Assert(set_size(s) === 1);
}
function test_set_remove() {
  var v = symb_number();
  var s = set_new();
  set_add(s, v);
  Assert(set_remove(s, v));
  Assert(!set_contains(s, v));
}
function test_set_symbolic_membership() {
  var v = symb_number(); var w = symb_number();
  var s = set_new();
  set_add(s, v);
  if (v === w) { Assert(set_contains(s, w)); }
  else { Assert(!set_contains(s, w)); }
}
function test_set_union_subsumes() {
  var a = symb_number(); var b = symb_number();
  Assume(a !== b);
  var s = set_new(); var t = set_new();
  set_add(s, a);
  set_add(t, b);
  set_union(s, t);
  Assert(set_contains(s, a));
  Assert(set_contains(s, b));
  Assert(set_size(s) === 2);
}
function test_set_union_idempotent() {
  var v = symb_number();
  var s = set_new(); var t = set_new();
  set_add(s, v); set_add(t, v);
  set_union(s, t);
  Assert(set_size(s) === 1);
}
)mjs";

constexpr std::string_view StackSuite = R"mjs(
function test_st_lifo() {
  var a = symb_number(); var b = symb_number();
  var s = st_new();
  st_push(s, a); st_push(s, b);
  Assert(st_pop(s) === b);
  Assert(st_pop(s) === a);
  Assert(st_isEmpty(s));
}
function test_st_peek_nondestructive() {
  var v = symb_number();
  var s = st_new();
  st_push(s, v);
  Assert(st_peek(s) === v);
  Assert(st_size(s) === 1);
}
function test_st_empty() {
  var s = st_new();
  Assert(st_pop(s) === undefined);
  Assert(st_peek(s) === undefined);
}
function test_st_push_pop_push() {
  var a = symb_number(); var b = symb_number();
  var s = st_new();
  st_push(s, a);
  Assert(st_pop(s) === a);
  st_push(s, b);
  Assert(st_peek(s) === b);
}
)mjs";

} // namespace

const std::vector<BucketsSuite> &gillian::targets::bucketsSuites() {
  static const std::vector<BucketsSuite> Suites = {
      {"array", ArraySuite},   {"bag", BagSuite},     {"bst", BstSuite},
      {"dict", DictSuite},     {"heap", HeapSuite},   {"llist", LlistSuite},
      {"mdict", MdictSuite},   {"pqueue", PqueueSuite},
      {"queue", QueueSuite},   {"set", SetSuite},     {"stack", StackSuite},
  };
  return Suites;
}
