//===- engine/scheduler/thread_pool.h - Work-stealing pool -----*- C++ -*-===//
//
// Part of the Gillian-C++ reproduction of "Gillian, Part I" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for dynamically forking task graphs — the
/// substrate of the parallel exploration scheduler. Symbolic execution
/// after a branch point produces *path-disjoint* configurations; each is a
/// task, and stepping a task may spawn more tasks (its branch successors).
///
/// Topology: one bounded-depth deque per worker plus a global injection
/// queue for roots. A worker pops from the *back* of its own deque (LIFO:
/// depth-first locality, bounded frontier) and steals from the *front* of
/// a victim's deque (FIFO: thieves take the oldest — shallowest — forks,
/// which head the largest untapped subtrees), up to `StealBatch`
/// configurations per steal so a thief seeds itself instead of returning
/// for every successor. The batch is adaptive: it halves while the
/// victim's deque is shorter than it (see stealCount), so a nearly-drained
/// victim is not stripped bare. Deques are mutex-striped rather than lock-free:
/// exploration tasks are heavyweight (each step runs solver queries), so
/// queue transfer cost is noise — predictable correctness wins.
///
/// Quiescence: `Pending` counts tasks that are queued or executing; it is
/// incremented before a task becomes visible and decremented only after
/// its body (including any spawns) completes, so it can only reach zero
/// when no task exists or can ever exist again. Idle workers sleep on a
/// condition variable versioned by a work epoch — the epoch is read before
/// scanning and bumped under the same mutex by every push, which makes the
/// classic scan/sleep lost-wakeup race impossible.
///
//===----------------------------------------------------------------------===//

#ifndef GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H
#define GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H

#include "obs/progress.h"
#include "obs/sched_counters.h"
#include "obs/trace_ring.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace gillian {

template <typename Task> class ThreadPool {
public:
  /// Handle passed to the task body: identifies the executing worker and
  /// lets the body spawn successor tasks onto that worker's own deque.
  class Worker {
  public:
    size_t index() const { return Idx; }
    void spawn(Task T) { Pool.pushLocal(Idx, std::move(T)); }

  private:
    friend class ThreadPool;
    Worker(ThreadPool &Pool, size_t Idx) : Pool(Pool), Idx(Idx) {}
    ThreadPool &Pool;
    size_t Idx;
  };

  ThreadPool(size_t NumWorkers, size_t StealBatch)
      : Deques(NumWorkers ? NumWorkers : 1),
        StealBatch(StealBatch ? StealBatch : 1) {
    // Publish the pool shape for the live-introspection gauges. One pool
    // is live at a time (explore() constructs, runs, destroys), so the
    // process-wide gauges describe "the" pool.
    obs::schedCounters().PoolWorkers.set(workers());
    obs::WorkerDepthGauges::instance().configure(
        static_cast<uint32_t>(workers()));
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t workers() const { return Deques.size(); }

  /// Tasks a thief takes from a victim whose deque holds \p QueueLen
  /// tasks, with configured batch \p Batch: the batch halves while it
  /// exceeds the victim's queue (adaptive — a short deque is not stolen
  /// bare, leaving the victim its depth-first locality), and the result is
  /// clamped to the queue length. Static so the clamp is unit-testable.
  static size_t stealCount(size_t QueueLen, size_t Batch) {
    if (QueueLen == 0)
      return 0;
    size_t B = Batch ? Batch : 1;
    while (B > 1 && QueueLen < B)
      B /= 2;
    return B < QueueLen ? B : QueueLen;
  }

  /// Enqueues a root task on the global injection queue. Thread-safe, but
  /// intended for seeding the pool before run().
  void inject(Task T) {
    obs::schedCounters().FrontierSize.set(
        Pending.fetch_add(1, std::memory_order_acq_rel) + 1);
    {
      std::lock_guard<std::mutex> Lock(Global.Mu);
      Global.Q.push_back(std::move(T));
    }
    signalWork();
  }

  /// Runs \p Body(Task, Worker&) over every injected task and everything
  /// those tasks spawn, on `workers()` threads; returns when the pool is
  /// quiescent (every task executed, nothing left to steal).
  template <typename Body> void run(Body &&B) {
    std::vector<std::thread> Threads;
    Threads.reserve(workers());
    for (size_t I = 0; I < workers(); ++I)
      Threads.emplace_back([this, I, &B] { workerLoop(I, B); });
    for (std::thread &T : Threads)
      T.join();
    assert(Pending.load() == 0 && "pool exited with tasks outstanding");
  }

private:
  struct TaskDeque {
    std::mutex Mu;
    std::deque<Task> Q;
  };

  void pushLocal(size_t Idx, Task T) {
    obs::schedCounters().FrontierSize.set(
        Pending.fetch_add(1, std::memory_order_acq_rel) + 1);
    ++obs::schedCounters().TasksSpawned;
    {
      std::lock_guard<std::mutex> Lock(Deques[Idx].Mu);
      Deques[Idx].Q.push_back(std::move(T));
      obs::WorkerDepthGauges::instance().set(Idx, Deques[Idx].Q.size());
    }
    signalWork();
  }

  std::optional<Task> popLocal(size_t Idx) {
    std::lock_guard<std::mutex> Lock(Deques[Idx].Mu);
    if (Deques[Idx].Q.empty())
      return std::nullopt;
    Task T = std::move(Deques[Idx].Q.back());
    Deques[Idx].Q.pop_back();
    obs::WorkerDepthGauges::instance().set(Idx, Deques[Idx].Q.size());
    return T;
  }

  std::optional<Task> popGlobal() {
    std::lock_guard<std::mutex> Lock(Global.Mu);
    if (Global.Q.empty())
      return std::nullopt;
    Task T = std::move(Global.Q.front());
    Global.Q.pop_front();
    return T;
  }

  /// Scans the other workers' deques round-robin from our right-hand
  /// neighbour; takes up to stealCount(len, StealBatch) tasks from the
  /// first non-empty victim (the batch adapts down for short deques). The
  /// first stolen task is returned for execution, the rest land on our
  /// own deque.
  std::optional<Task> steal(size_t Idx) {
    size_t N = workers();
    for (size_t Off = 1; Off < N; ++Off) {
      size_t Victim = (Idx + Off) % N;
      std::vector<Task> Batch;
      size_t VictimDepth = 0;
      {
        std::lock_guard<std::mutex> Lock(Deques[Victim].Mu);
        auto &Q = Deques[Victim].Q;
        VictimDepth = Q.size();
        for (size_t K = stealCount(Q.size(), StealBatch); K > 0; --K) {
          Batch.push_back(std::move(Q.front()));
          Q.pop_front();
        }
        if (!Batch.empty())
          obs::WorkerDepthGauges::instance().set(Victim, Q.size());
      }
      if (Batch.empty())
        continue;
      obs::SchedCounters &SC = obs::schedCounters();
      ++SC.Steals;
      SC.StolenTasks += Batch.size();
      SC.StealQueueDepth += VictimDepth;
      obs::TraceRecorder::record(obs::TraceEventKind::Steal, 0,
                                 static_cast<uint32_t>(Batch.size()),
                                 VictimDepth);
      if (Batch.size() > 1) {
        std::lock_guard<std::mutex> Lock(Deques[Idx].Mu);
        for (size_t K = 1; K < Batch.size(); ++K)
          Deques[Idx].Q.push_back(std::move(Batch[K]));
        obs::WorkerDepthGauges::instance().set(Idx, Deques[Idx].Q.size());
      }
      if (Batch.size() > 1)
        signalWork(); // surplus is now visible in our deque — wake a peer
      return std::move(Batch.front());
    }
    return std::nullopt;
  }

  void signalWork() {
    {
      std::lock_guard<std::mutex> Lock(IdleMu);
      ++WorkEpoch;
    }
    IdleCv.notify_one();
  }

  template <typename Body> void workerLoop(size_t Idx, Body &B) {
    Worker W(*this, Idx);
    while (true) {
      // Epoch before scanning: any push after this read bumps the epoch,
      // so the wait below cannot miss it.
      uint64_t Epoch;
      {
        std::lock_guard<std::mutex> Lock(IdleMu);
        Epoch = WorkEpoch;
      }
      std::optional<Task> T = popLocal(Idx);
      if (!T)
        T = popGlobal();
      if (!T)
        T = steal(Idx);
      if (T) {
        B(std::move(*T), W);
        // Decrement only after the body ran: spawns inside the body have
        // already incremented Pending, so it hits zero only at true
        // quiescence.
        uint64_t Before = Pending.fetch_sub(1, std::memory_order_acq_rel);
        obs::schedCounters().FrontierSize.set(Before - 1);
        if (Before == 1)
          IdleCv.notify_all();
        continue;
      }
      std::unique_lock<std::mutex> Lock(IdleMu);
      IdleCv.wait(Lock, [&] {
        return WorkEpoch != Epoch ||
               Pending.load(std::memory_order_acquire) == 0;
      });
      if (Pending.load(std::memory_order_acquire) == 0)
        return;
    }
  }

  std::vector<TaskDeque> Deques;
  TaskDeque Global; ///< injection queue (roots)
  size_t StealBatch;
  /// Tasks queued or executing; zero <=> quiescent.
  std::atomic<uint64_t> Pending{0};
  std::mutex IdleMu;
  std::condition_variable IdleCv;
  uint64_t WorkEpoch = 0; ///< guarded by IdleMu
};

} // namespace gillian

#endif // GILLIAN_ENGINE_SCHEDULER_THREAD_POOL_H
