file(REMOVE_RECURSE
  "libgillian_mjs.a"
)
