//===- solver/solver_cache.cpp --------------------------------------------===//

#include "solver/solver_cache.h"

using namespace gillian;

std::optional<SatResult> SolverCache::lookup(const PathCondition &PC) const {
  Shard &S = shardFor(PC);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(PC);
  if (It == S.Map.end())
    return std::nullopt;
  return It->second;
}

void SolverCache::insert(const PathCondition &PC, SatResult R) {
  if (R == SatResult::Unknown)
    return;
  Shard &S = shardFor(PC);
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Map.emplace(PC, R);
}

void SolverCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
  }
}

size_t SolverCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Map.size();
  }
  return N;
}

SolverCache &SolverCache::process() {
  static SolverCache C;
  return C;
}
